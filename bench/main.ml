(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation, plus the ablations of DESIGN.md §4 and Bechamel
   micro-benchmarks of the estimators.

     dune exec bench/main.exe             # everything
     dune exec bench/main.exe table1      # one experiment
     dune exec bench/main.exe quick       # table1 on a small stand-in

   Experiments: table1 fig2 c17 fig1 ablation-opt ablation-weights
   ablation-es ablation-resynth validation tradeoff variants compaction
   logic-vs-iddq schedule routing atpg sizing stability faultsim
   kernels diagnose perf campaign *)

module Table = Iddq_util.Table
module Rng = Iddq_util.Rng
module Circuit = Iddq_netlist.Circuit
module Iscas = Iddq_netlist.Iscas
module Generator = Iddq_netlist.Generator
module Library = Iddq_celllib.Library
module Technology = Iddq_celllib.Technology
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Sensor = Iddq_bic.Sensor
module Es = Iddq_evolution.Es
module Seeds = Iddq_evolution.Seeds
module Part_iddq = Iddq_evolution.Part_iddq
module Standard = Iddq_baseline.Standard
module Annealing = Iddq_baseline.Annealing
module Metrics = Iddq_util.Metrics
module Pipeline = Iddq.Pipeline
module Report = Iddq.Report

let section title =
  Printf.printf "\n==== %s ====\n\n%!" title

let bench_es_params =
  { Es.default_params with Es.max_generations = 250; stall_generations = 50 }

let bench_config =
  { Pipeline.default_config with Pipeline.es_params = bench_es_params }

(* ------------------------------------------------------------------ *)
(* Table 1: standard vs evolution on the ISCAS85 suite                 *)
(* ------------------------------------------------------------------ *)

(* The paper's Table 1 numbers, for side-by-side reference.  Delay and
   test-time rows are only partially legible in the source scan; the
   legible values are ~5.9e-2 % for both methods. *)
let paper_table1 =
  [
    ("C1908", 2, 1.08e6, 8.27e5, 30.6);
    ("C2670", 3, 5.67e5, 4.95e5, 14.5);
    ("C3540", 4, 2.79e6, 2.27e6, 22.9);
    ("C5315", 6, 2.87e6, 2.29e6, 25.3);
    ("C6288", 5, 9.19e5, 7.30e5, 25.9);
    ("C7552", 6, 5.65e6, 4.72e6, 19.7);
  ]

let run_table1 suite =
  section "Table 1: sensor area, delay and test time - standard vs evolution";
  let rows =
    List.map
      (fun (name, circuit) ->
        Printf.printf "partitioning %s (%d gates)...\n%!" name
          (Circuit.num_gates circuit);
        let results =
          Pipeline.compare_methods ~config:bench_config circuit
            [ Pipeline.Evolution; Pipeline.Standard ]
        in
        match results with
        | [ (_, evolution); (_, standard) ] ->
          Report.row_of_results ~circuit_name:name ~standard ~evolution
        | _ -> assert false)
      suite
  in
  print_newline ();
  Table.print (Report.table rows);
  print_newline ();
  (* paper-vs-measured summary *)
  let cmp =
    Table.create
      [
        ("circuit", Table.Left);
        ("#mod paper", Table.Right);
        ("#mod ours", Table.Right);
        ("ovh paper %", Table.Right);
        ("ovh ours %", Table.Right);
        ("shape holds", Table.Left);
      ]
  in
  List.iter
    (fun (r : Report.row) ->
      match
        List.find_opt (fun (n, _, _, _, _) -> n = r.Report.circuit_name) paper_table1
      with
      | None -> ()
      | Some (_, k_paper, _, _, ovh_paper) ->
        Table.add_row cmp
          [
            r.Report.circuit_name;
            string_of_int k_paper;
            string_of_int r.Report.num_modules_evolution;
            Printf.sprintf "%.1f" ovh_paper;
            Printf.sprintf "%.1f" r.Report.area_overhead_percent;
            (if r.Report.area_overhead_percent > 0.0 then "yes (evolution wins)"
             else "NO");
          ])
    rows;
  Table.print cmp

(* ------------------------------------------------------------------ *)
(* Figure 2: partition shape vs required switch size                   *)
(* ------------------------------------------------------------------ *)

let run_fig2 () =
  section "Figure 2: group shape vs BIC sensor area (2-D cell array)";
  let t =
    Table.create
      [
        ("array", Table.Left);
        ("partition", Table.Left);
        ("worst imax (A)", Table.Right);
        ("sensor area", Table.Right);
        ("area ratio", Table.Right);
      ]
  in
  List.iter
    (fun (rows, cols) ->
      let circuit = Generator.cell_array ~rows ~cols in
      let ch = Charac.make ~library:Library.default circuit in
      let assignment ~f =
        let a = Array.make (Circuit.num_gates circuit) 0 in
        for r = 0 to rows - 1 do
          for c = 0 to cols - 1 do
            a.(Generator.cell_array_gate ~rows ~cols ~r ~c) <- f r c
          done
        done;
        a
      in
      let area p =
        List.fold_left (fun acc (_, s) -> acc +. s.Sensor.area) 0.0
          (Partition.sensors p)
      in
      let worst p =
        List.fold_left
          (fun acc m -> Stdlib.max acc (Partition.max_transient_current p m))
          0.0 (Partition.module_ids p)
      in
      let by_rows = Partition.create ch ~assignment:(assignment ~f:(fun r _ -> r)) in
      let by_cols = Partition.create ch ~assignment:(assignment ~f:(fun _ c -> c)) in
      let label = Printf.sprintf "%dx%d" rows cols in
      Table.add_row t
        [
          label; "1 (rows)";
          Printf.sprintf "%.3e" (worst by_rows);
          Printf.sprintf "%.3e" (area by_rows);
          "1.00";
        ];
      Table.add_row t
        [
          label; "2 (columns)";
          Printf.sprintf "%.3e" (worst by_cols);
          Printf.sprintf "%.3e" (area by_cols);
          Printf.sprintf "%.2f" (area by_cols /. area by_rows);
        ])
    [ (3, 3); (6, 6); (9, 12) ];
  Table.print t;
  Printf.printf
    "\nPartition 1 (row-shaped groups) is preferred: its cells never switch\n\
     in the same slot, so the bypass switches stay small (the paper's Fig. 2).\n"

(* ------------------------------------------------------------------ *)
(* Figures 3-5: the C17 worked example                                 *)
(* ------------------------------------------------------------------ *)

let c17_library () =
  (* threshold scaled so discriminability caps modules at 3 gates,
     mirroring the paper's illustration *)
  let technology =
    { Technology.default with Technology.iddq_threshold = 4.0e-9 }
  in
  match
    Library.make ~name:"cmos1u-c17" ~technology
      ~cells:
        (List.map
           (fun k -> (k, Library.cell Library.default k))
           Iddq_netlist.Gate.all_kinds)
      ()
  with
  | Ok l -> l
  | Error e -> failwith e

let run_c17 () =
  section "Figures 3-5: evolution steps on C17";
  let circuit = Iscas.c17 () in
  let ch = Charac.make ~library:(c17_library ()) circuit in
  let rng = Rng.create 42 in
  let starts = Seeds.population ~rng ~module_size:3 ~count:4 ch in
  let params =
    { Es.default_params with Es.max_generations = 120; stall_generations = 30 }
  in
  let best, trace = Part_iddq.optimize ~params ~rng ~starts () in
  let t =
    Table.create
      [ ("generation", Table.Right); ("best cost", Table.Right);
        ("mean cost", Table.Right) ]
  in
  List.iteri
    (fun i (r : Es.generation_report) ->
      if i < 8 || i = List.length trace - 1 then
        Table.add_row t
          [
            string_of_int r.Es.generation;
            Printf.sprintf "%.4f" r.Es.best_cost;
            Printf.sprintf "%.4f" r.Es.mean_cost;
          ])
    trace;
  Table.print t;
  let p = best.Es.solution in
  Printf.printf "\nfinal partition (cost %.4f, %d modules):\n" best.Es.cost
    (Partition.num_modules p);
  List.iter
    (fun m ->
      let names =
        Array.to_list (Partition.members p m)
        |> List.map (fun g -> Circuit.node_name circuit (Circuit.node_of_gate circuit g))
      in
      Printf.printf "  module %d: {%s}\n" m (String.concat "," names))
    (Partition.module_ids p);
  Printf.printf
    "paper optimum: {(10,16,22),(11,19,23)} - two balanced 3-gate modules\n"

(* ------------------------------------------------------------------ *)
(* Figure 1: sensor PASS/FAIL behaviour, exercised end to end          *)
(* ------------------------------------------------------------------ *)

let run_fig1 () =
  section "Figure 1: BIC sensor detection behaviour (defect injection)";
  let circuit = Iscas.c432_like () in
  let result = Pipeline.run ~config:bench_config Pipeline.Evolution circuit in
  let rng = Rng.create 7 in
  let faults =
    Iddq_defects.Fault.random_population ~rng circuit ~count:150
      ~defect_current:2.0e-6
  in
  let vectors = Iddq_patterns.Pattern_gen.random ~rng circuit ~count:64 in
  let r =
    Iddq_defects.Iddq_sim.run_partitioned result.Pipeline.partition ~vectors
      ~faults
  in
  Printf.printf
    "C432 stand-in, %d modules, %d injected defects (2 uA), %d vectors:\n"
    (Partition.num_modules result.Pipeline.partition)
    (List.length faults) (Array.length vectors);
  Printf.printf "  coverage: %.1f%%   total test time: %.3e s\n"
    (100.0 *. r.Iddq_defects.Iddq_sim.coverage)
    r.Iddq_defects.Iddq_sim.test_time

(* ------------------------------------------------------------------ *)
(* Ablation A: optimizers                                              *)
(* ------------------------------------------------------------------ *)

let run_ablation_opt () =
  section "Ablation A: optimizer comparison (C1908 stand-in)";
  let circuit = Iscas.c1908_like () in
  let methods =
    [
      Pipeline.Evolution; Pipeline.Standard; Pipeline.Refined_standard;
      Pipeline.Annealing; Pipeline.Random;
    ]
  in
  let results = Pipeline.compare_methods ~config:bench_config circuit methods in
  let t =
    Table.create
      [
        ("method", Table.Left); ("modules", Table.Right);
        ("cost", Table.Right); ("sensor area", Table.Right);
        ("feasible", Table.Left);
      ]
  in
  List.iter
    (fun (m, (r : Pipeline.t)) ->
      Table.add_row t
        [
          Pipeline.method_to_string m;
          string_of_int (Partition.num_modules r.Pipeline.partition);
          Printf.sprintf "%.2f" r.Pipeline.breakdown.Cost.penalized;
          Printf.sprintf "%.3e" r.Pipeline.breakdown.Cost.sensor_area;
          (if r.Pipeline.breakdown.Cost.feasible then "yes" else "no");
        ])
    results;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Ablation B: cost-weight sensitivity                                 *)
(* ------------------------------------------------------------------ *)

let run_ablation_weights () =
  section "Ablation B: weight sensitivity (C1908 stand-in)";
  let circuit = Iscas.c1908_like () in
  let variants =
    [
      ("paper (9,1e5,1,1,10)", Cost.paper_weights);
      ("equal (1,1,1,1,1)", Cost.equal_weights);
      ( "area-only",
        { Cost.equal_weights with Cost.w_area = 100.0; w_delay = 0.0 } );
      ( "delay-heavy",
        { Cost.paper_weights with Cost.w_delay = 1.0e7 } );
      ( "few-modules",
        { Cost.paper_weights with Cost.w_module_count = 1000.0 } );
    ]
  in
  let t =
    Table.create
      [
        ("weights", Table.Left); ("modules", Table.Right);
        ("sensor area", Table.Right); ("delay ovh %", Table.Right);
        ("test ovh %", Table.Right);
      ]
  in
  List.iter
    (fun (label, weights) ->
      let config = { bench_config with Pipeline.weights } in
      let r = Pipeline.run ~config Pipeline.Evolution circuit in
      let b = r.Pipeline.breakdown in
      Table.add_row t
        [
          label;
          string_of_int (Partition.num_modules r.Pipeline.partition);
          Printf.sprintf "%.3e" b.Cost.sensor_area;
          Printf.sprintf "%.2e" (100.0 *. b.Cost.c2_delay);
          Printf.sprintf "%.2e"
            (100.0
            *. (b.Cost.test_time_per_vector -. b.Cost.nominal_delay)
            /. b.Cost.nominal_delay);
        ])
    variants;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Ablation C: ES control parameters                                   *)
(* ------------------------------------------------------------------ *)

let run_ablation_es () =
  section "Ablation C: evolution-strategy control parameters (C1908 stand-in)";
  let circuit = Iscas.c1908_like () in
  let base = { bench_es_params with Es.max_generations = 150 } in
  let variants =
    [
      ("mu=4 lambda=7 chi=2 (default)", base);
      ("mu=1 lambda=7 chi=2", { base with Es.mu = 1 });
      ("mu=8 lambda=14 chi=4", { base with Es.mu = 8; lambda = 14; chi = 4 });
      ("no Monte-Carlo (chi=0)", { base with Es.chi = 0 });
      ("only Monte-Carlo (lambda=0)", { base with Es.lambda = 0; chi = 9 });
      ("short lifetime (omega=2)", { base with Es.omega = 2 });
    ]
  in
  let t =
    Table.create
      [
        ("parameters", Table.Left); ("generations", Table.Right);
        ("final cost", Table.Right); ("sensor area", Table.Right);
      ]
  in
  List.iter
    (fun (label, es_params) ->
      let config = { bench_config with Pipeline.es_params } in
      let r = Pipeline.run ~config Pipeline.Evolution circuit in
      Table.add_row t
        [
          label;
          string_of_int r.Pipeline.generations;
          Printf.sprintf "%.2f" r.Pipeline.breakdown.Cost.penalized;
          Printf.sprintf "%.3e" r.Pipeline.breakdown.Cost.sensor_area;
        ])
    variants;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Ablation D: cost-aware drive selection (the paper's future work)    *)
(* ------------------------------------------------------------------ *)

let run_ablation_resynth () =
  section
    "Ablation D: cost-aware drive selection after partitioning (paper §6 \
     future work)";
  let t =
    Table.create
      [
        ("circuit", Table.Left); ("swaps", Table.Right);
        ("area before", Table.Right); ("area after", Table.Right);
        ("saved %", Table.Right); ("delay ovh before %", Table.Right);
        ("delay ovh after %", Table.Right); ("nominal D stretched", Table.Left);
      ]
  in
  List.iter
    (fun (name, circuit) ->
      let r = Pipeline.run ~config:bench_config Pipeline.Evolution circuit in
      let res =
        Iddq_resynth.Drive_select.optimize ~max_swaps:128 r.Pipeline.partition
      in
      let before = res.Iddq_resynth.Drive_select.before in
      let after = res.Iddq_resynth.Drive_select.after in
      Table.add_row t
        [
          name;
          string_of_int (List.length res.Iddq_resynth.Drive_select.swaps);
          Printf.sprintf "%.3e" before.Cost.sensor_area;
          Printf.sprintf "%.3e" after.Cost.sensor_area;
          Printf.sprintf "%.1f"
            (100.0 *. (1.0 -. (after.Cost.sensor_area /. before.Cost.sensor_area)));
          Printf.sprintf "%.2e" (100.0 *. before.Cost.c2_delay);
          Printf.sprintf "%.2e" (100.0 *. after.Cost.c2_delay);
          (if after.Cost.nominal_delay > before.Cost.nominal_delay +. 1e-15 then
             "YES (bug)"
           else "no");
        ])
    [ ("C432", Iscas.c432_like ()); ("C1908", Iscas.c1908_like ()) ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Validation: estimator pessimism vs realized switching activity      *)
(* ------------------------------------------------------------------ *)

let run_validation_activity () =
  section "Validation: pessimistic i_DD,max estimator vs realized activity";
  let t =
    Table.create
      [
        ("circuit", Table.Left); ("module", Table.Right);
        ("estimated imax (A)", Table.Right); ("realized imax (A)", Table.Right);
        ("pessimism x", Table.Right);
      ]
  in
  List.iter
    (fun (name, circuit) ->
      let r = Pipeline.run ~config:bench_config Pipeline.Evolution circuit in
      let ch = r.Pipeline.charac in
      let rng = Rng.create 11 in
      let vectors = Iddq_patterns.Pattern_gen.random ~rng circuit ~count:128 in
      List.iter
        (fun m ->
          let gates = Partition.members r.Pipeline.partition m in
          let act = Iddq_analysis.Activity.measure ch ~gates ~vectors in
          let estimated =
            Iddq_analysis.Switching.max_transient_current ch gates
          in
          Table.add_row t
            [
              name; string_of_int m;
              Printf.sprintf "%.3e" estimated;
              Printf.sprintf "%.3e" act.Iddq_analysis.Activity.realized_max;
              Printf.sprintf "%.2f"
                (Iddq_analysis.Activity.pessimism_ratio ch ~gates act);
            ])
        (Partition.module_ids r.Pipeline.partition))
    [ ("C432", Iscas.c432_like ()); ("C1908", Iscas.c1908_like ()) ];
  Table.print t;
  Printf.printf
    "\nThe estimator upper-bounds every realization (ratio >= 1); its margin\n\
     is the safety the paper buys by assuming all reachable transitions\n\
     coincide.  Sensors sized from it never see a larger transient.\n"

(* ------------------------------------------------------------------ *)
(* Granularity trade-off (paper §1: fine vs coarse partitions)         *)
(* ------------------------------------------------------------------ *)

let run_tradeoff () =
  section
    "Granularity trade-off: fine grain = discriminability + speed, coarse \
     grain = area (paper §1)";
  let circuit = Iscas.c3540_like () in
  let ch = Charac.make ~library:Library.default circuit in
  let tech = Charac.technology ch in
  let t =
    Table.create
      [
        ("#modules", Table.Right); ("sensor area", Table.Right);
        ("min discriminability", Table.Right); ("feasible (d>=10)", Table.Left);
        ("worst settling (s)", Table.Right); ("test time/vector (s)", Table.Right);
      ]
  in
  List.iter
    (fun k ->
      let p = Standard.partition_uniform ch ~num_modules:k in
      let b = Cost.evaluate p in
      let sensors = List.map snd (Partition.sensors p) in
      let worst_settle =
        List.fold_left
          (fun acc s -> Stdlib.max acc (Iddq_bic.Test_time.settling tech s))
          0.0 sensors
      in
      Table.add_row t
        [
          string_of_int k;
          Printf.sprintf "%.3e" b.Cost.sensor_area;
          Printf.sprintf "%.1f" b.Cost.min_discriminability;
          (if b.Cost.feasible then "yes" else "no");
          Printf.sprintf "%.3e" worst_settle;
          Printf.sprintf "%.3e" b.Cost.test_time_per_vector;
        ])
    [ 1; 2; 4; 8; 16; 32; 64 ];
  Table.print t;
  Printf.printf
    "\nCoarse partitions are cheapest but fail discriminability; fine\n\
     partitions measure fast and discriminate well but multiply the\n\
     detection circuitry - the trade-off the cost function arbitrates.\n"

(* ------------------------------------------------------------------ *)
(* Sensor variants (paper §1: several sensing devices, each with       *)
(* advantages and disadvantages)                                       *)
(* ------------------------------------------------------------------ *)

let run_variants () =
  section "Sensing-device variants on one C1908 partition (paper §1 refs 7-12)";
  let circuit = Iscas.c1908_like () in
  let base = Pipeline.run ~config:bench_config Pipeline.Evolution circuit in
  let assignment = Partition.assignment base.Pipeline.partition in
  let t =
    Table.create
      [
        ("variant", Table.Left); ("sensor area", Table.Right);
        ("delay ovh %", Table.Right); ("test time/vector (s)", Table.Right);
      ]
  in
  List.iter
    (fun variant ->
      let tech =
        Iddq_bic.Variants.technology_for
          (Library.technology Library.default)
          variant
      in
      let library =
        match Library.with_technology Library.default tech with
        | Ok l -> l
        | Error e -> failwith e
      in
      let ch = Charac.make ~library circuit in
      let p = Partition.create ch ~assignment in
      let b = Cost.evaluate p in
      Table.add_row t
        [
          Iddq_bic.Variants.to_string variant;
          Printf.sprintf "%.3e" b.Cost.sensor_area;
          Printf.sprintf "%.2e" (100.0 *. b.Cost.c2_delay);
          Printf.sprintf "%.3e" b.Cost.test_time_per_vector;
        ])
    Iddq_bic.Variants.all;
  Table.print t;
  Printf.printf
    "\nThe unbypassed pn-junction sensor is nearly free in area but its\n\
     fixed junction drop costs ~15x the delay overhead; the proportional\n\
     sensor pays detection-circuitry area for the fastest settling.\n"

(* ------------------------------------------------------------------ *)
(* Test-set compaction for IDDQ (vector count drives test time)        *)
(* ------------------------------------------------------------------ *)

let run_compaction () =
  section "IDDQ test-set compaction (every vector costs D_BIC + settling)";
  let circuit = Iscas.c432_like () in
  let ch = Charac.make ~library:Library.default circuit in
  let n = Charac.num_gates ch in
  let p = Partition.create ch ~assignment:(Array.init n (fun g -> g mod 2)) in
  let rng = Rng.create 5 in
  let faults =
    Iddq_defects.Fault.random_population ~rng circuit ~count:200
      ~defect_current:2.0e-6
  in
  let vectors = Iddq_patterns.Pattern_gen.random ~rng circuit ~count:96 in
  let m = Iddq_defects.Coverage.detection_matrix p ~vectors ~faults in
  let curve = Iddq_defects.Coverage.coverage_curve m in
  let t =
    Table.create [ ("vectors applied", Table.Right); ("coverage %", Table.Right) ]
  in
  List.iter
    (fun k ->
      Table.add_row t
        [ string_of_int k; Printf.sprintf "%.1f" (100.0 *. curve.(k - 1)) ])
    [ 1; 2; 4; 8; 16; 32; 64; 96 ];
  Table.print t;
  let kept = Iddq_defects.Coverage.compact m in
  let b = Cost.evaluate p in
  let tech = Charac.technology ch in
  let sensors = List.map snd (Partition.sensors p) in
  let time count =
    Iddq_bic.Test_time.total tech ~d_bic:b.Cost.bic_delay ~vectors:count sensors
  in
  Printf.printf
    "\ngreedy compaction: %d of 96 vectors retain the full %.1f%% coverage;\n\
     test time %.3e s -> %.3e s (%.0fx shorter)\n"
    (Array.length kept)
    (100.0
    *. float_of_int (Iddq_defects.Coverage.num_detectable m)
    /. float_of_int (Iddq_defects.Coverage.num_faults m))
    (time 96)
    (time (Array.length kept))
    (96.0 /. float_of_int (Stdlib.max 1 (Array.length kept)))

(* ------------------------------------------------------------------ *)
(* IDDQ complements logic test (paper 1, refs 1-6)                     *)
(* ------------------------------------------------------------------ *)

let run_logic_vs_iddq_on name circuit =
  Printf.printf "-- %s --\n" name;
  let rng = Rng.create 3 in
  let vectors = Iddq_patterns.Pattern_gen.random ~rng circuit ~count:64 in
  (* stuck-at side *)
  let faults = Iddq_defects.Stuck_at.collapsed_fault_list circuit in
  let sa = Iddq_defects.Stuck_at.fault_simulate circuit ~vectors ~faults in
  Printf.printf
    "stuck-at (collapsed list, %d faults): %.1f%% coverage with %d random \
     vectors\n"
    sa.Iddq_defects.Stuck_at.total
    (100.0 *. sa.Iddq_defects.Stuck_at.coverage)
    (Array.length vectors);
  (* bridge side: sample non-feedback gate-to-gate bridges *)
  let n = Circuit.num_gates circuit in
  let bridges = ref [] in
  while List.length !bridges < 150 do
    let a = Circuit.node_of_gate circuit (Rng.int rng n) in
    let b = Circuit.node_of_gate circuit (Rng.int rng n) in
    if a <> b && not (Iddq_defects.Bridge_logic.is_feedback circuit a b) then
      bridges := (a, b) :: !bridges
  done;
  let logic_detected, iddq_detected, both, iddq_only =
    List.fold_left
      (fun (l, i, b, o) (na, nb) ->
        let logic =
          Array.exists
            (Iddq_defects.Bridge_logic.logic_detects circuit ~a:na ~b:nb)
            vectors
        in
        let iddq =
          Array.exists
            (Iddq_defects.Bridge_logic.iddq_detects circuit ~a:na ~b:nb)
            vectors
        in
        ( (if logic then l + 1 else l),
          (if iddq then i + 1 else i),
          (if logic && iddq then b + 1 else b),
          if iddq && not logic then o + 1 else o ))
      (0, 0, 0, 0) !bridges
  in
  let pct x = 100.0 *. float_of_int x /. float_of_int (List.length !bridges) in
  Printf.printf
    "bridging defects (%d sampled, wired-AND model, same vectors):\n\
     \  logic-detectable: %.1f%%   IDDQ-activated: %.1f%%   both: %.1f%%\n\
     \  caught ONLY by IDDQ: %.1f%% - the complementary coverage that\n\
     \  motivates built-in current testing (paper refs 1-6).\n"
    (List.length !bridges) (pct logic_detected) (pct iddq_detected) (pct both)
    (pct iddq_only)

let run_logic_vs_iddq () =
  section
    "IDDQ vs logic (stuck-at) testing: bridges that voltage test misses";
  run_logic_vs_iddq_on "C432 stand-in" (Iscas.c432_like ());
  run_logic_vs_iddq_on "C1908 stand-in" (Iscas.c1908_like ())

(* ------------------------------------------------------------------ *)
(* Measurement scheduling under a sensed-current budget                *)
(* ------------------------------------------------------------------ *)

let run_schedule () =
  section "Measurement scheduling: parallel vs budgeted vs serial strobes";
  let circuit = Iscas.c3540_like () in
  let ch = Charac.make ~library:Library.default circuit in
  let p = Standard.partition_uniform ch ~num_modules:8 in
  let b = Cost.evaluate p in
  let sensors = Partition.sensors p in
  let tech = Charac.technology ch in
  let d_bic = b.Cost.bic_delay in
  let t =
    Table.create
      [
        ("policy", Table.Left); ("sessions", Table.Right);
        ("vector time (s)", Table.Right); ("vs parallel", Table.Right);
      ]
  in
  let parallel = Iddq_bic.Schedule.parallel ~technology:tech ~d_bic sensors in
  let add label (s : Iddq_bic.Schedule.t) =
    Table.add_row t
      [
        label;
        string_of_int (List.length s.Iddq_bic.Schedule.sessions);
        Printf.sprintf "%.3e" s.Iddq_bic.Schedule.vector_time;
        Printf.sprintf "%.2fx"
          (s.Iddq_bic.Schedule.vector_time
          /. parallel.Iddq_bic.Schedule.vector_time);
      ]
  in
  add "parallel (paper model)" parallel;
  let worst_peak =
    List.fold_left
      (fun acc (_, s) -> Stdlib.max acc s.Iddq_bic.Sensor.peak_current)
      0.0 sensors
  in
  List.iter
    (fun scale ->
      add
        (Printf.sprintf "budget = %.1fx worst module" scale)
        (Iddq_bic.Schedule.schedule ~technology:tech ~d_bic
           ~budget:(scale *. worst_peak) sensors))
    [ 2.0; 1.0 ];
  add "serial" (Iddq_bic.Schedule.serial ~technology:tech ~d_bic sensors);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Routing validation: is S(M) a fair proxy for wiring cost?           *)
(* ------------------------------------------------------------------ *)

let run_routing () =
  section
    "Routing check (paper 5: wiring deferred, costs 'not expected to \
     differ'): placed wire lengths per partition";
  let circuit = Iscas.c1908_like () in
  let placement = Iddq_layout.Placement.place circuit in
  let results =
    Pipeline.compare_methods ~config:bench_config circuit
      [ Pipeline.Evolution; Pipeline.Standard ]
  in
  let t =
    Table.create
      [
        ("method", Table.Left); ("sum S(M)", Table.Right);
        ("rail length (pitches)", Table.Right);
        ("sensor chain (pitches)", Table.Right);
      ]
  in
  List.iter
    (fun (m, (r : Pipeline.t)) ->
      let p = r.Pipeline.partition in
      let modules =
        List.map (fun id -> Partition.members p id) (Partition.module_ids p)
      in
      let rail =
        List.fold_left
          (fun acc gates ->
            acc +. Iddq_layout.Placement.module_rail_length placement gates)
          0.0 modules
      in
      let chain = Iddq_layout.Placement.sensor_chain_length placement modules in
      let sep =
        List.fold_left
          (fun acc id -> acc + Partition.separation_total p id)
          0 (Partition.module_ids p)
      in
      Table.add_row t
        [
          Pipeline.method_to_string m;
          string_of_int sep;
          Printf.sprintf "%.1f" rail;
          Printf.sprintf "%.1f" chain;
        ])
    results;
  Table.print t;
  Printf.printf
    "\nBoth partitions route comparably - the paper's expectation when the\n\
     module counts match; at equal rail lengths the sensor area is what\n\
     separates the methods.\n"

(* ------------------------------------------------------------------ *)
(* ATPG: the paper's 'precomputed test vector set', generated          *)
(* ------------------------------------------------------------------ *)

let run_atpg () =
  section "PODEM test generation: building the precomputed vector set";
  let circuit = Iscas.c432_like () in
  let rng = Rng.create 21 in
  let faults = Iddq_defects.Stuck_at.collapsed_fault_list circuit in
  let initial = Iddq_patterns.Pattern_gen.random ~rng circuit ~count:32 in
  let random_only =
    Iddq_defects.Stuck_at.fault_simulate circuit ~vectors:initial ~faults
  in
  let r = Iddq_atpg.Podem.complete_set ~rng ~initial circuit faults in
  Printf.printf
    "stuck-at faults (collapsed): %d\n\
     32 random vectors:     %.1f%% coverage\n\
     + PODEM top-up:        %.1f%% coverage, %.1f%% efficiency\n\
     \                       (%d generated vectors, %d proven untestable, %d aborted)\n"
    (List.length faults)
    (100.0 *. random_only.Iddq_defects.Stuck_at.coverage)
    (100.0 *. r.Iddq_atpg.Podem.coverage)
    (100.0 *. r.Iddq_atpg.Podem.efficiency)
    r.Iddq_atpg.Podem.generated r.Iddq_atpg.Podem.untestable
    r.Iddq_atpg.Podem.aborted;
  (* reuse the set as the IDDQ vector set, as the paper assumes *)
  let ch = Charac.make ~library:Library.default circuit in
  let n = Charac.num_gates ch in
  let p = Partition.create ch ~assignment:(Array.init n (fun g -> g mod 2)) in
  let defects =
    Iddq_defects.Fault.random_population ~rng circuit ~count:200
      ~defect_current:2.0e-6
  in
  let with_atpg =
    Iddq_defects.Iddq_sim.run_partitioned p ~vectors:r.Iddq_atpg.Podem.vectors
      ~faults:defects
  in
  let same_size_random =
    Iddq_patterns.Pattern_gen.random ~rng circuit
      ~count:(Array.length r.Iddq_atpg.Podem.vectors)
  in
  let with_random =
    Iddq_defects.Iddq_sim.run_partitioned p ~vectors:same_size_random
      ~faults:defects
  in
  Printf.printf
    "\nreusing the %d-vector set for the IDDQ measurement (200 bridge/GOS/FG \
     defects):\n\
     \  ATPG-derived set:  %.1f%% IDDQ defect coverage\n\
     \  same-size random:  %.1f%%\n"
    (Array.length r.Iddq_atpg.Podem.vectors)
    (100.0 *. with_atpg.Iddq_defects.Iddq_sim.coverage)
    (100.0 *. with_random.Iddq_defects.Iddq_sim.coverage)

(* ------------------------------------------------------------------ *)
(* Sizing policy: what the estimator's pessimism buys                  *)
(* ------------------------------------------------------------------ *)

let run_sizing () =
  section
    "Sensor sizing policy: pessimistic bound vs probabilistic vs realized \
     activity";
  let circuit = Iscas.c1908_like () in
  let r = Pipeline.run ~config:bench_config Pipeline.Evolution circuit in
  let ch = r.Pipeline.charac in
  let tech = Charac.technology ch in
  let p = r.Pipeline.partition in
  let rng = Rng.create 31 in
  let vectors = Iddq_patterns.Pattern_gen.random ~rng circuit ~count:256 in
  let t =
    Table.create
      [
        ("sizing basis", Table.Left); ("sensor area", Table.Right);
        ("vs pessimistic", Table.Right); ("rail overshoots (256 vecs)", Table.Right);
      ]
  in
  let modules = Partition.module_ids p in
  let activity =
    List.map
      (fun m ->
        (m, Iddq_analysis.Activity.measure ch ~gates:(Partition.members p m) ~vectors))
      modules
  in
  let area_for basis =
    List.fold_left
      (fun acc m ->
        let i = basis m in
        let s =
          Iddq_bic.Sensor.size ~technology:tech ~peak_current:i
            ~module_rail_capacitance:(Partition.rail_capacitance p m)
        in
        acc +. s.Iddq_bic.Sensor.area)
      0.0 modules
  in
  (* how many modules would exceed the rail budget under the observed
     activity if sized for [basis]? *)
  let overshoots basis =
    List.fold_left
      (fun acc m ->
        let design = basis m in
        if design <= 0.0 then acc
        else begin
          let rs = tech.Technology.rail_budget /. design in
          let observed =
            (List.assoc m activity).Iddq_analysis.Activity.realized_max
          in
          if rs *. observed > tech.Technology.rail_budget +. 1e-12 then acc + 1
          else acc
        end)
      0 modules
  in
  let pessimistic m = Partition.max_transient_current p m in
  let probabilistic m =
    Iddq_analysis.Probability.expected_max_current ch (Partition.members p m)
  in
  let realized m = (List.assoc m activity).Iddq_analysis.Activity.realized_max in
  let base = area_for pessimistic in
  List.iter
    (fun (label, basis) ->
      Table.add_row t
        [
          label;
          Printf.sprintf "%.3e" (area_for basis);
          Printf.sprintf "%.2fx" (area_for basis /. base);
          Printf.sprintf "%d/%d" (overshoots basis) (List.length modules);
        ])
    [
      ("pessimistic i_DD,max (paper)", pessimistic);
      ("probabilistic expectation", probabilistic);
      ("realized max (the same 256 vectors)", realized);
    ];
  Table.print t;
  Printf.printf
    "\nSizing below the pessimistic bound shrinks the switches but lets the\n\
     observed transients bounce the rail past r* - the safety the paper's\n\
     estimator buys.  (Sizing at the realized max is tight by construction\n\
     for these vectors and unsafe for any other set.)\n"

(* ------------------------------------------------------------------ *)
(* Stability: the stochastic optimizer across seeds                    *)
(* ------------------------------------------------------------------ *)

let run_stability () =
  section "Seed stability: evolution vs standard across 5 optimizer seeds";
  let circuit = Iscas.c1908_like () in
  let params =
    { bench_es_params with Es.max_generations = 120; stall_generations = 40 }
  in
  let areas = ref [] and overheads = ref [] in
  List.iter
    (fun seed ->
      let config =
        { bench_config with Pipeline.seed; es_params = params }
      in
      let results =
        Pipeline.compare_methods ~config circuit
          [ Pipeline.Evolution; Pipeline.Standard ]
      in
      match results with
      | [ (_, evo); (_, std) ] ->
        let ae = evo.Pipeline.breakdown.Cost.sensor_area in
        let as_ = std.Pipeline.breakdown.Cost.sensor_area in
        areas := ae :: !areas;
        overheads := (100.0 *. (as_ -. ae) /. ae) :: !overheads
      | _ -> assert false)
    [ 1; 7; 42; 101; 9999 ];
  let areas = Array.of_list !areas and overheads = Array.of_list !overheads in
  Printf.printf
    "evolution sensor area: mean %.3e, sd %.2e (%.1f%% of mean)\n\
     standard-over-evolution overhead: mean %.1f%%, min %.1f%%, max %.1f%%\n\
     the headline direction (evolution wins) held on %d/5 seeds\n"
    (Iddq_util.Stats.mean areas)
    (Iddq_util.Stats.stddev areas)
    (100.0 *. Iddq_util.Stats.stddev areas /. Iddq_util.Stats.mean areas)
    (Iddq_util.Stats.mean overheads)
    (fst (Iddq_util.Stats.min_max overheads))
    (snd (Iddq_util.Stats.min_max overheads))
    (Array.fold_left (fun acc o -> if o > 0.0 then acc + 1 else acc) 0 overheads)

(* ------------------------------------------------------------------ *)
(* Co-optimization: alternate partitioning and drive selection         *)
(* ------------------------------------------------------------------ *)

let run_cooptimize () =
  section
    "Co-optimization: alternating the partitioner and drive selection \
     (one step past paper 6)";
  let circuit = Iscas.c1908_like () in
  let rng = Rng.create 42 in
  let params =
    { bench_es_params with Es.max_generations = 120; stall_generations = 40 }
  in
  let t =
    Table.create
      [
        ("round", Table.Left); ("sensor area", Table.Right);
        ("cost", Table.Right); ("low-drive gates", Table.Right);
      ]
  in
  let count_lp ch =
    let n = Charac.num_gates ch in
    let c = ref 0 in
    for g = 0 to n - 1 do
      if Charac.is_low_power ch g then incr c
    done;
    !c
  in
  (* round 0: plain ES *)
  let ch0 = Charac.make ~library:Library.default circuit in
  let starts = Seeds.population ~rng ~count:4 ch0 in
  let best, _ = Part_iddq.optimize ~params ~rng ~starts () in
  let p = ref best.Es.solution in
  let record label =
    let b = Cost.evaluate !p in
    Table.add_row t
      [
        label;
        Printf.sprintf "%.3e" b.Cost.sensor_area;
        Printf.sprintf "%.2f" b.Cost.penalized;
        string_of_int (count_lp (Partition.charac !p));
      ]
  in
  record "0: partition (ES)";
  for round = 1 to 2 do
    (* drive selection on the current partition *)
    let res = Iddq_resynth.Drive_select.optimize ~max_swaps:96 !p in
    p := res.Iddq_resynth.Drive_select.partition;
    record (Printf.sprintf "%d: + drive selection" round);
    (* re-partition on the re-characterized netlist, seeded from the
       current grouping *)
    let ch = Partition.charac !p in
    let seed_partition = Partition.create ch ~assignment:(Partition.assignment !p) in
    let fresh = Seeds.population ~rng ~count:3 ch in
    let best, _ =
      Part_iddq.optimize ~params ~rng ~starts:(seed_partition :: fresh) ()
    in
    p := best.Es.solution;
    record (Printf.sprintf "%d: + re-partition" round)
  done;
  Table.print t;
  Printf.printf
    "\nEach pass keeps helping: drive selection flattens the peaks the\n\
     current partition exposes, and re-partitioning then regroups around\n\
     the new current profile - the paper's 6 loop, closed.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let run_perf () =
  section "Bechamel micro-benchmarks (ns per run)";
  let open Bechamel in
  let circuit = Iscas.c1908_like () in
  let ch = Charac.make ~library:Library.default circuit in
  let n = Charac.num_gates ch in
  let p = Partition.create ch ~assignment:(Array.init n (fun g -> g mod 4)) in
  let rng = Rng.create 1 in
  let u = Charac.undirected ch in
  let vectors = Iddq_patterns.Pattern_gen.random ~rng circuit ~count:1 in
  let tests =
    [
      Test.make ~name:"charac_make_c1908"
        (Staged.stage (fun () -> Charac.make ~library:Library.default circuit));
      Test.make ~name:"cost_evaluate_c1908"
        (Staged.stage (fun () -> Cost.evaluate p));
      Test.make ~name:"move_gate_roundtrip"
        (Staged.stage (fun () ->
             Partition.move_gate p 0 1;
             Partition.move_gate p 0 0));
      Test.make ~name:"separations_from"
        (Staged.stage (fun () ->
             Iddq_netlist.Graph_algo.separations_from u ~cutoff:6 17));
      Test.make ~name:"boundary_gates"
        (Staged.stage (fun () -> Partition.boundary_gates p 0));
      Test.make ~name:"logic_sim_eval_c1908"
        (Staged.stage (fun () ->
             Iddq_patterns.Logic_sim.eval circuit vectors.(0)));
      Test.make ~name:"chain_seed_partition"
        (Staged.stage (fun () ->
             Seeds.chain_partition ~rng:(Rng.create 5) ch));
      Test.make ~name:"es_mutate"
        (Staged.stage (fun () -> Part_iddq.mutate (Rng.create 9) ~step:4 p));
      Test.make ~name:"scoap_c1908"
        (Staged.stage (fun () -> Iddq_analysis.Scoap.compute circuit));
      Test.make ~name:"signal_probabilities"
        (Staged.stage (fun () ->
             Iddq_analysis.Probability.signal_probabilities circuit));
      Test.make ~name:"placement_c1908"
        (Staged.stage (fun () -> Iddq_layout.Placement.place circuit));
      Test.make ~name:"fault_sim_64_vectors"
        (Staged.stage (fun () ->
             let rng2 = Rng.create 2 in
             let vs = Iddq_patterns.Pattern_gen.random ~rng:rng2 circuit ~count:64 in
             Iddq_defects.Stuck_at.fault_simulate circuit ~vectors:vs
               ~faults:
                 [ Iddq_defects.Stuck_at.Stem (Circuit.node_of_gate circuit 50, false) ]));
      Test.make ~name:"podem_one_fault"
        (Staged.stage (fun () ->
             Iddq_atpg.Podem.generate circuit
               (Iddq_defects.Stuck_at.Stem
                  (Circuit.node_of_gate circuit 100, true))));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"iddq" ~fmt:"%s/%s" tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Table.create [ ("benchmark", Table.Left); ("time per run", Table.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
        else Printf.sprintf "%.1f ns" ns
      in
      Table.add_row t [ name; pretty ])
    (List.sort compare !rows);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Smoke: delta vs full cost evaluation accounting (make bench-smoke)  *)
(* ------------------------------------------------------------------ *)

(* Runs the same annealing search twice with the same rng seed — once
   through the full Cost.evaluate per proposal, once through the
   incremental Cost_eval — and reports the Metrics counters of each.
   Because delta evaluation reproduces the full evaluation exactly,
   the two runs visit the same states and must end at the same cost;
   the difference is the work accounted. *)
let run_smoke () =
  section "Smoke: incremental vs full cost evaluation (C7552 stand-in)";
  let circuit = Iscas.c7552_like () in
  let ch = Charac.make ~library:Library.default circuit in
  let start = Seeds.chain_partition ~rng:(Rng.create 42) ~module_size:8 ch in
  let params = { Annealing.default_params with Annealing.steps = 2_000 } in
  Printf.printf "annealing: %d gates, %d start modules, %d steps\n\n"
    (Circuit.num_gates circuit)
    (Partition.num_modules start)
    params.Annealing.steps;
  let measured f =
    let before = Metrics.snapshot Metrics.global in
    let result = f () in
    (result, Metrics.diff (Metrics.snapshot Metrics.global) before)
  in
  let (_, full_best), full_stats =
    measured (fun () ->
        Annealing.optimize ~params ~full_eval:true ~rng:(Rng.create 7) start)
  in
  let (_, delta_best), delta_stats =
    measured (fun () -> Annealing.optimize ~params ~rng:(Rng.create 7) start)
  in
  print_endline "full-eval mode:";
  Table.print (Report.metrics_table full_stats);
  print_endline "\ndelta mode:";
  Table.print (Report.metrics_table delta_stats);
  let full_work = Metrics.equivalent_evals full_stats in
  let delta_work = Metrics.equivalent_evals delta_stats in
  let ratio = full_work /. delta_work in
  Printf.printf
    "\nfinal penalized cost: full=%.6f delta=%.6f (%s)\n"
    full_best.Cost.penalized delta_best.Cost.penalized
    (if delta_best.Cost.penalized <= full_best.Cost.penalized then
       "delta equal or better"
     else "REGRESSION");
  Printf.printf
    "evaluate-equivalents: full-mode %.1f, delta-mode %.1f -> %.1fx fewer (%s)\n"
    full_work delta_work ratio
    (if ratio >= 5.0 then "PASS >= 5x" else "FAIL < 5x");
  (* a short ES run with parallel offspring evaluation, same counters *)
  let es_params =
    {
      Es.default_params with
      Es.max_generations = 15;
      stall_generations = 15;
      domains = 2;
    }
  in
  let rng = Rng.create 11 in
  let starts = Seeds.population ~rng ~module_size:8 ~count:4 ch in
  let (best, _), es_stats =
    measured (fun () ->
        Part_iddq.optimize ~params:es_params ~rng ~starts ())
  in
  Printf.printf
    "\nES (%d domains, %d generations): best cost %.6f\n"
    es_params.Es.domains es_params.Es.max_generations best.Es.cost;
  Table.print (Report.metrics_table es_stats)

(* ------------------------------------------------------------------ *)
(* faultsim: scalar vs 64-way packed (PPSFP) IDDQ fault simulation     *)
(* ------------------------------------------------------------------ *)

(* The campaign grid re-runs IDDQ fault simulation thousands of times;
   this experiment measures what the packed engine buys on one run:
   the same detection matrix, scalar vector-at-a-time vs 64 vectors
   per word with a shared good machine.  Equality of the two matrices
   is asserted (the bench doubles as a coarse differential test); the
   per-circuit numbers land in BENCH_faultsim.json so successive PRs
   can track the perf trajectory. *)
let faultsim_json = "BENCH_faultsim.json"

let run_faultsim () =
  section "faultsim: scalar vs 64-way packed (PPSFP) IDDQ fault simulation";
  let module Coverage = Iddq_defects.Coverage in
  let module Fault_sim = Iddq_defects.Fault_sim in
  let module Fault = Iddq_defects.Fault in
  let module Json = Iddq_util.Json in
  let time_best f =
    (* best of 3 shaves scheduler noise off wall-clock *)
    let best = ref infinity and result = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("gates", Table.Right);
        ("vectors", Table.Right);
        ("faults", Table.Right);
        ("scalar", Table.Right);
        ("packed", Table.Right);
        ("speedup", Table.Right);
        ("packed 4-dom", Table.Right);
        ("drop (1st det)", Table.Right);
        ("equal", Table.Left);
      ]
  in
  let ms s = Printf.sprintf "%.2f ms" (1000.0 *. s) in
  let all_pass = ref true in
  let min_speedup = ref infinity in
  let records =
    List.map
      (fun (name, circuit) ->
        let n_vectors = 1024 and n_faults = 600 in
        let ch = Charac.make ~library:Library.default circuit in
        let n = Charac.num_gates ch in
        let p =
          Partition.create ch ~assignment:(Array.init n (fun g -> g mod 8))
        in
        let rng = Rng.create 42 in
        let faults =
          Fault.random_population ~rng circuit ~count:n_faults
            ~defect_current:2e-6
        in
        let vectors =
          Iddq_patterns.Pattern_gen.random ~rng circuit ~count:n_vectors
        in
        let scalar, t_scalar =
          time_best (fun () ->
              Coverage.detection_matrix_scalar p ~vectors ~faults)
        in
        let packed, t_packed =
          time_best (fun () -> Coverage.detection_matrix p ~vectors ~faults)
        in
        let _, t_packed4 =
          time_best (fun () ->
              Coverage.detection_matrix ~domains:4 p ~vectors ~faults)
        in
        let _, t_drop =
          time_best (fun () -> Fault_sim.first_detections p ~vectors ~faults)
        in
        let same = Coverage.equal scalar packed in
        let speedup = t_scalar /. t_packed in
        let gated = n >= 1000 in
        if gated then min_speedup := Stdlib.min !min_speedup speedup;
        let pass = same && ((not gated) || speedup >= 10.0) in
        if not pass then all_pass := false;
        Table.add_row t
          [
            name;
            string_of_int n;
            string_of_int n_vectors;
            string_of_int n_faults;
            ms t_scalar;
            ms t_packed;
            Printf.sprintf "%.1fx" speedup;
            ms t_packed4;
            ms t_drop;
            (if same then "yes" else "NO");
          ];
        Json.Obj
          [
            ("circuit", Json.String name);
            ("gates", Json.Int n);
            ("vectors", Json.Int n_vectors);
            ("faults", Json.Int n_faults);
            ("scalar_s", Json.Float t_scalar);
            ("packed_s", Json.Float t_packed);
            ("packed_domains4_s", Json.Float t_packed4);
            ("first_detections_s", Json.Float t_drop);
            ("speedup", Json.Float speedup);
            ("matrices_equal", Json.Bool same);
            ("pass", Json.Bool pass);
          ])
      [ ("C1908", Iscas.c1908_like ()); ("C3540", Iscas.c3540_like ()) ]
  in
  Table.print t;
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "faultsim");
        ("records", Json.List records);
        ("pass", Json.Bool !all_pass);
      ]
  in
  (match Iddq_util.Io.write_file_atomic faultsim_json (Json.to_string doc ^ "\n") with
  | Ok () -> Printf.printf "\nwrote %s\n" faultsim_json
  | Error e ->
    Printf.printf "\nFAILED writing %s: %s\n" faultsim_json
      (Iddq_util.Io_error.to_string e));
  Printf.printf "faultsim: min speedup %.1fx on >=1k-gate circuits -> %s\n"
    (if !min_speedup = infinity then 0.0 else !min_speedup)
    (if !all_pass then "PASS >= 10x, matrices identical"
     else "FAIL (needs >= 10x with identical matrices)")

(* ------------------------------------------------------------------ *)
(* kernels: flat CSR/Bigarray engine vs pre-CSR boxed engine at 100k   *)
(* ------------------------------------------------------------------ *)

(* The million-gate question: what does the flattened data layout buy
   once the circuit no longer fits hot in cache?  A generated
   100k-gate DAG is fault-simulated by the pre-CSR boxed packed engine
   (kept verbatim as [detection_matrix_boxed_with]) and by the
   levelized striped kernel; the matrices must be bit-identical and
   the flat engine >= 3x faster.  On top of the end-to-end race, the
   good-machine kernel is swept along two axes — striping width W in
   {1,2,4,8} at one domain, and 1/2/4/8 domains at W=8 — every point
   checked word-identical against the per-block kernel, with the
   levelized kernel's zero-allocation property asserted via
   [Gc.minor_words].  The same run checks the incremental c3
   bookkeeping: a few hundred random partition moves, then every
   module's cached separation total is recomputed from scratch with
   [Graph_algo.module_separation] and must match exactly.  Finally
   [Charac.make] is profiled at one million gates to locate the next
   hotspot.  Numbers land in BENCH_kernels.json. *)
let kernels_json = "BENCH_kernels.json"

let run_kernels () =
  section "kernels: levelized striped fault-sim kernels at 100k gates";
  let module Fault_sim = Iddq_defects.Fault_sim in
  let module Fault = Iddq_defects.Fault in
  let module Graph_algo = Iddq_netlist.Graph_algo in
  let module Level_schedule = Iddq_netlist.Level_schedule in
  let module Domain_pool = Iddq_util.Domain_pool in
  let module P = Iddq_patterns.Parallel_sim in
  let module Json = Iddq_util.Json in
  let time_best f =
    let best = ref infinity and result = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  (* --- throughput: 100k gates, generated in linear time --- *)
  let num_gates = 100_000 and n_vectors = 512 and n_faults = 200 in
  let t0 = Unix.gettimeofday () in
  let rng = Rng.create 42 in
  let circuit =
    Generator.layered_dag ~rng ~name:"K100k" ~num_inputs:256 ~num_outputs:128
      ~num_gates ~depth:60 ()
  in
  let t_gen = Unix.gettimeofday () -. t0 in
  let sched = Level_schedule.of_circuit circuit in
  Printf.printf "generated %d gates in %.2f s (%d levels, widest %d)\n%!"
    num_gates t_gen
    (Level_schedule.num_levels sched)
    (Level_schedule.max_level_width sched);
  let faults =
    Fault.random_population ~rng circuit ~count:n_faults ~defect_current:2e-6
  in
  let vectors =
    Iddq_patterns.Pattern_gen.random ~rng circuit ~count:n_vectors
  in
  let measurable _ = true in
  let boxed, t_boxed =
    time_best (fun () ->
        Fault_sim.detection_matrix_boxed_with circuit ~measurable ~vectors
          ~faults)
  in
  let flat, t_flat =
    time_best (fun () ->
        Fault_sim.detection_matrix_with circuit ~measurable ~vectors ~faults)
  in
  let metrics4 = Iddq_util.Metrics.create () in
  let flat4, t_flat4 =
    time_best (fun () ->
        Fault_sim.detection_matrix_with ~domains:4 ~metrics:metrics4 circuit
          ~measurable ~vectors ~faults)
  in
  let steals4 = (Iddq_util.Metrics.snapshot metrics4).Iddq_util.Metrics.sim_steals in
  let same = Fault_sim.equal boxed flat && Fault_sim.equal boxed flat4 in
  let speedup = t_boxed /. t_flat in
  let gxv = float_of_int num_gates *. float_of_int n_vectors /. t_flat in
  let min_gxv = 1e8 in
  Printf.printf
    "boxed %.1f ms, flat %.1f ms (4 domains %.1f ms, %d chunk steals): %.1fx, \
     %.3g gates*vectors/s, matrices %s\n%!"
    (1000.0 *. t_boxed) (1000.0 *. t_flat) (1000.0 *. t_flat4) steals4 speedup
    gxv
    (if same then "identical" else "DIFFER");
  (* --- good-machine kernel curves: striping width and domains --- *)
  let packed = P.pack_all vectors in
  let n = Iddq_netlist.Circuit.num_nodes circuit in
  let nb = P.num_blocks packed in
  let reference : P.ba =
    Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (n * nb)
  in
  for b = 0 to nb - 1 do
    P.eval_block_into circuit packed ~block:b ~dst:reference ~off:(b * n)
  done;
  let dst : P.ba =
    Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (n * nb)
  in
  let matrix_matches () =
    let ok = ref true in
    for id = 0 to n - 1 do
      for b = 0 to nb - 1 do
        if
          Bigarray.Array1.get dst ((id * nb) + b)
          <> Bigarray.Array1.get reference ((b * n) + id)
        then ok := false
      done
    done;
    !ok
  in
  (* baseline: the per-block W=1 flat kernel (the pre-levelization
     engine), single-domain *)
  let (), t_w1 =
    time_best (fun () ->
        for b = 0 to nb - 1 do
          P.eval_block_into circuit packed ~block:b ~dst:reference ~off:(b * n)
        done)
  in
  Printf.printf "good machine, per-block W=1 baseline: %.1f ms\n%!"
    (1000.0 *. t_w1);
  let curves_ok = ref true in
  let stripe_rows =
    List.map
      (fun w ->
        Bigarray.Array1.fill dst 0L;
        let (), t =
          time_best (fun () -> P.eval_all_into ~stripe:w circuit packed ~dst)
        in
        let ok = matrix_matches () in
        if not ok then curves_ok := false;
        Printf.printf "  striped W=%d, 1 domain: %.1f ms (%.2fx vs W=1)%s\n%!"
          w (1000.0 *. t) (t_w1 /. t)
          (if ok then "" else "  MATRICES DIFFER");
        (w, t))
      [ 1; 2; 4; 8 ]
  in
  let t_best_stripe =
    List.fold_left (fun acc (_, t) -> Stdlib.min acc t) infinity stripe_rows
  in
  let striping_gain = t_w1 /. t_best_stripe in
  let domain_rows =
    List.map
      (fun d ->
        Domain_pool.with_pool ~domains:d (fun pool ->
            Bigarray.Array1.fill dst 0L;
            let (), t =
              time_best (fun () -> P.eval_all_into ~pool circuit packed ~dst)
            in
            let ok = matrix_matches () in
            if not ok then curves_ok := false;
            Printf.printf
              "  striped W=%d, %d domains: %.1f ms (%.2fx vs W=1)%s\n%!"
              P.default_stripe d (1000.0 *. t) (t_w1 /. t)
              (if ok then "" else "  MATRICES DIFFER");
            (d, t)))
      [ 1; 2; 4; 8 ]
  in
  let domains4_gain =
    match List.assoc_opt 4 domain_rows with
    | Some t -> t_w1 /. t
    | None -> 0.0
  in
  (* --- allocation-free levelized kernel (Gc.minor_words delta) --- *)
  P.eval_stripe_into circuit sched packed ~block0:0 ~width:nb ~stride:nb ~dst;
  let words_before = Gc.minor_words () in
  for _ = 1 to 3 do
    P.eval_stripe_into circuit sched packed ~block0:0 ~width:nb ~stride:nb ~dst
  done;
  let alloc_words = Gc.minor_words () -. words_before in
  let alloc_free = alloc_words = 0.0 in
  Printf.printf
    "levelized kernel allocation: %.0f minor words across 3 full-matrix evals\n%!"
    alloc_words;
  (* --- incremental c3: random moves vs full recomputation --- *)
  let rng_c3 = Rng.create 7 in
  let small =
    Generator.layered_dag ~rng:rng_c3 ~name:"Kc3" ~num_inputs:32
      ~num_outputs:16 ~num_gates:1_500 ~depth:25 ()
  in
  let ch = Charac.make ~library:Library.default small in
  let n = Charac.num_gates ch in
  let k = 12 in
  let p = Partition.create ch ~assignment:(Array.init n (fun g -> g mod k)) in
  let n_moves = 400 in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to n_moves do
    let g = Rng.int rng_c3 n in
    let target = Rng.int rng_c3 k in
    if Partition.size p target > 0 && Partition.size p (Partition.module_of_gate p g) > 1
    then Partition.move_gate p g target
  done;
  let t_moves = Unix.gettimeofday () -. t1 in
  let u = Charac.undirected ch in
  let cutoff = Charac.separation_cutoff ch in
  let c3_ok =
    List.for_all
      (fun m ->
        Partition.separation_total p m
        = Graph_algo.module_separation u ~cutoff (Partition.members p m))
      (Partition.module_ids p)
  in
  Printf.printf
    "incremental c3: %d moves on %d gates in %.1f ms, cached totals vs full \
     recomputation: %s\n%!"
    n_moves n (1000.0 *. t_moves)
    (if c3_ok then "bit-identical" else "MISMATCH");
  (* --- Charac.make at one million gates: where does the time go? --- *)
  let m_gates = 1_000_000 in
  let rng_m = Rng.create 11 in
  let t2 = Unix.gettimeofday () in
  let big =
    Generator.layered_dag ~rng:rng_m ~name:"K1M" ~num_inputs:512
      ~num_outputs:256 ~num_gates:m_gates ~depth:60 ()
  in
  let t_big_gen = Unix.gettimeofday () -. t2 in
  (* warm both phases once: the first touch pays heap growth and page
     faults that would otherwise be misattributed to whichever phase
     runs first *)
  ignore (Graph_algo.gate_depths big);
  ignore (Graph_algo.undirected_of_circuit big);
  (* a full collection before each timed phase keeps the previous
     phase's garbage from being collected on this phase's clock *)
  Gc.full_major ();
  let t2 = Unix.gettimeofday () in
  ignore (Graph_algo.gate_depths big);
  let t_depths = Unix.gettimeofday () -. t2 in
  Gc.full_major ();
  let t2 = Unix.gettimeofday () in
  ignore (Graph_algo.undirected_of_circuit big);
  let t_undirected = Unix.gettimeofday () -. t2 in
  Gc.full_major ();
  let t2 = Unix.gettimeofday () in
  ignore (Charac.make ~library:Library.default big);
  let t_charac = Unix.gettimeofday () -. t2 in
  let t_rest = t_charac -. t_depths -. t_undirected in
  Printf.printf
    "Charac.make at %d gates: %.2f s total (generate %.2f s) — gate_depths \
     %.2f s, undirected graph %.2f s, times-bitsets + cells %.2f s\n%!"
    m_gates t_charac t_big_gen t_depths t_undirected t_rest;
  let pass =
    same && !curves_ok && speedup >= 3.0 && gxv >= min_gxv
    && domains4_gain >= 2.0 && striping_gain >= 1.2 && alloc_free && c3_ok
  in
  let curve rows label value =
    Json.List
      (List.map
         (fun (x, t) ->
           Json.Obj
             [
               (label, Json.Int x);
               (value, Json.Float t);
               ("speedup_vs_1", Json.Float (t_w1 /. t));
             ])
         rows)
  in
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "kernels");
        ( "throughput",
          Json.Obj
            [
              ("gates", Json.Int num_gates);
              ("vectors", Json.Int n_vectors);
              ("faults", Json.Int n_faults);
              ("generate_s", Json.Float t_gen);
              ("boxed_s", Json.Float t_boxed);
              ("flat_s", Json.Float t_flat);
              ("flat_domains4_s", Json.Float t_flat4);
              ("domains4_steals", Json.Int steals4);
              ("speedup", Json.Float speedup);
              ("gates_vectors_per_s", Json.Float gxv);
              ("matrices_equal", Json.Bool same);
            ] );
        ( "good_machine",
          Json.Obj
            [
              ("levels", Json.Int (Level_schedule.num_levels sched));
              ("max_level_width", Json.Int (Level_schedule.max_level_width sched));
              ("per_block_w1_s", Json.Float t_w1);
              ("striping", curve stripe_rows "stripe" "seconds");
              ("domain_scaling", curve domain_rows "domains" "seconds");
              ("striping_gain", Json.Float striping_gain);
              ("domains4_gain", Json.Float domains4_gain);
              ("alloc_minor_words", Json.Float alloc_words);
              ("curves_identical", Json.Bool !curves_ok);
            ] );
        ( "incremental_c3",
          Json.Obj
            [
              ("gates", Json.Int n);
              ("modules", Json.Int k);
              ("moves", Json.Int n_moves);
              ("moves_s", Json.Float t_moves);
              ("totals_exact", Json.Bool c3_ok);
            ] );
        ( "charac_1m",
          Json.Obj
            [
              ("gates", Json.Int m_gates);
              ("generate_s", Json.Float t_big_gen);
              ("charac_make_s", Json.Float t_charac);
              ("gate_depths_s", Json.Float t_depths);
              ("undirected_s", Json.Float t_undirected);
              ("times_bitsets_and_cells_s", Json.Float t_rest);
            ] );
        ("pass", Json.Bool pass);
      ]
  in
  (match
     Iddq_util.Io.write_file_atomic kernels_json (Json.to_string doc ^ "\n")
   with
  | Ok () -> Printf.printf "wrote %s\n" kernels_json
  | Error e ->
    Printf.printf "FAILED writing %s: %s\n" kernels_json
      (Iddq_util.Io_error.to_string e));
  Printf.printf "kernels: %s\n"
    (if pass then
       "PASS >= 3x flat, >= 2x @ 4 domains, striping >= 1.2x, alloc-free, \
        matrices identical, c3 exact"
     else
       "FAIL (needs >= 3x flat, >= 2x @ 4 domains, >= 1.2x striping, \
        alloc-free levelized kernel, identical matrices, exact c3)")

(* ------------------------------------------------------------------ *)
(* Campaign: Table 1 through the resumable job runner                   *)
(* ------------------------------------------------------------------ *)

(* The same Table-1 suite as [run_table1], but executed as a campaign:
   every (circuit, method, seed) is an isolated job on a domain pool,
   results land in an append-only JSONL store, and re-running the
   experiment resumes from whatever the store already holds.  Kill it
   mid-run and run it again: only the missing jobs execute. *)
let campaign_store = "bench-campaign.jsonl"

let run_campaign () =
  section "Campaign: Table 1 via the resumable domain-pool runner";
  let module Spec = Iddq_campaign.Spec in
  let module Store = Iddq_campaign.Store in
  let module Runner = Iddq_campaign.Runner in
  let module Summary = Iddq_campaign.Summary in
  let module Job_result = Iddq_campaign.Job_result in
  let spec =
    {
      Spec.default with
      Spec.seeds = [ 1; 7; 42 ];
      max_generations = Some bench_es_params.Es.max_generations;
    }
  in
  let store =
    match Store.open_ campaign_store with
    | Ok s -> s
    | Error e ->
      failwith ("campaign store: " ^ Iddq_util.Io_error.to_string e)
  in
  let total = List.length (Spec.jobs spec) in
  if Store.dropped store > 0 then
    Printf.printf "note: skipped %d corrupt line(s) in %s\n%!"
      (Store.dropped store) campaign_store;
  let seen = ref 0 in
  let on_result (job : Spec.job) (r : Job_result.t) ~fresh =
    incr seen;
    Printf.printf "[%d/%d] %-28s %s%s\n%!" !seen total job.Spec.id
      (match r.Job_result.status with
      | Job_result.Done -> Printf.sprintf "ok (%.2f s)" r.Job_result.elapsed
      | Job_result.Failed msg -> "failed: " ^ msg
      | Job_result.Timeout l -> Printf.sprintf "timeout (> %.1f s)" l)
      (if fresh then "" else "  [stored]")
  in
  let outcome =
    match Runner.run ~domains:2 ~on_result ~store spec with
    | Ok o -> o
    | Error e -> failwith (Runner.error_to_string e)
  in
  Store.close store;
  print_newline ();
  Format.printf "%a" Summary.pp outcome.Runner.results;
  Printf.printf
    "\ncampaign: %d jobs, executed %d, skipped %d (resume) -> %s\n\
     (delete %s to start fresh)\n"
    total outcome.Runner.executed outcome.Runner.skipped campaign_store
    campaign_store

(* ------------------------------------------------------------------ *)
(* diagnose: signature-based localization accuracy vs module count     *)
(* ------------------------------------------------------------------ *)

(* The diagnosis question (DESIGN.md §11): once a partition's sensors
   report pass/fail per vector, how well does the signature localize
   the defect, and how does that resolution grow with module count?
   For each ISCAS85 stand-in and uniform k-module partition we build
   the diagnosis engine, record its ambiguity/diagnosability summary,
   and Monte-Carlo the localization accuracy — noiseless exact
   matching must place the true defect in the top ambiguity class on
   every trial (a structural property: distance 0 iff same class), and
   with every pass/fail cell flipped at 2% the top-3 module accuracy
   must stay >= 0.9 in aggregate.  Numbers land in
   BENCH_diagnose.json. *)
let diagnose_json = "BENCH_diagnose.json"

let run_diagnose () =
  section "diagnose: IDDQ signature localization vs module count";
  let module Diagnose = Iddq_diagnose.Diagnose in
  let module Fault = Iddq_defects.Fault in
  let module Json = Iddq_util.Json in
  let n_vectors = 128 and n_faults = 200 and trials = 40 in
  let eps = 0.02 and top_k = 3 in
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("modules", Table.Right);
        ("detectable", Table.Right);
        ("classes", Table.Right);
        ("E[ambig]", Table.Right);
        ("entropy", Table.Right);
        ("exact top-1", Table.Right);
        ("noisy top-1 mod", Table.Right);
        ("noisy top-3 mod", Table.Right);
      ]
  in
  let exact_ok = ref true in
  let noisy_hits = ref 0 and noisy_trials = ref 0 in
  let records = ref [] in
  List.iter
    (fun (name, circuit) ->
      let ch = Charac.make ~library:Library.default circuit in
      List.iter
        (fun k ->
          let p = Standard.partition_uniform ch ~num_modules:k in
          let rng = Rng.create 42 in
          let faults =
            Fault.random_population ~rng circuit ~count:n_faults
              ~defect_current:2e-6
          in
          let vectors =
            Iddq_patterns.Pattern_gen.random ~rng circuit ~count:n_vectors
          in
          let d = Diagnose.build p ~vectors ~faults in
          let s = Diagnose.diagnosability d in
          let exact = Diagnose.measure_accuracy ~rng ~top_k ~trials d in
          let noisy =
            Diagnose.measure_accuracy ~rng ~epsilon:eps ~top_k ~trials d
          in
          if exact.Diagnose.top1_class < 1.0 then exact_ok := false;
          noisy_hits :=
            !noisy_hits
            + int_of_float
                (Float.round
                   (noisy.Diagnose.topk_module
                   *. float_of_int noisy.Diagnose.trials));
          noisy_trials := !noisy_trials + noisy.Diagnose.trials;
          Table.add_row t
            [
              name;
              string_of_int (Diagnose.num_modules d);
              Printf.sprintf "%d/%d" s.Diagnose.detectable s.Diagnose.faults;
              string_of_int s.Diagnose.classes;
              Printf.sprintf "%.2f" s.Diagnose.expected_ambiguity;
              Printf.sprintf "%.2f b" s.Diagnose.entropy_bits;
              Printf.sprintf "%.2f" exact.Diagnose.top1_class;
              Printf.sprintf "%.2f" noisy.Diagnose.top1_module;
              Printf.sprintf "%.2f" noisy.Diagnose.topk_module;
            ];
          records :=
            Json.Obj
              [
                ("circuit", Json.String name);
                ("modules", Json.Int (Diagnose.num_modules d));
                ("vectors", Json.Int n_vectors);
                ("faults", Json.Int s.Diagnose.faults);
                ("detectable", Json.Int s.Diagnose.detectable);
                ("classes", Json.Int s.Diagnose.classes);
                ("silent", Json.Int s.Diagnose.silent);
                ("expected_ambiguity", Json.Float s.Diagnose.expected_ambiguity);
                ("entropy_bits", Json.Float s.Diagnose.entropy_bits);
                ("diagnosability_cost", Json.Float (Diagnose.c6_diagnosability d));
                ("exact_top1_class", Json.Float exact.Diagnose.top1_class);
                ("exact_top1_module", Json.Float exact.Diagnose.top1_module);
                ("epsilon", Json.Float eps);
                ("noisy_top1_module", Json.Float noisy.Diagnose.top1_module);
                ("noisy_topk_module", Json.Float noisy.Diagnose.topk_module);
                ("top_k", Json.Int top_k);
                ("trials", Json.Int trials);
              ]
            :: !records)
        [ 2; 4; 8; 16 ])
    [
      ("C432", Iscas.c432_like ());
      ("C880", Iscas.c880_like ());
      ("C1908", Iscas.c1908_like ());
      ("C3540", Iscas.c3540_like ());
    ];
  Table.print t;
  let noisy_rate =
    if !noisy_trials = 0 then 0.0
    else float_of_int !noisy_hits /. float_of_int !noisy_trials
  in
  let pass = !exact_ok && noisy_rate >= 0.9 in
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "diagnose");
        ("records", Json.List (List.rev !records));
        ("noisy_topk_aggregate", Json.Float noisy_rate);
        ("pass", Json.Bool pass);
      ]
  in
  (match
     Iddq_util.Io.write_file_atomic diagnose_json (Json.to_string doc ^ "\n")
   with
  | Ok () -> Printf.printf "\nwrote %s\n" diagnose_json
  | Error e ->
    Printf.printf "\nFAILED writing %s: %s\n" diagnose_json
      (Iddq_util.Io_error.to_string e));
  Printf.printf
    "diagnose: exact top-1 class %s, eps=%.2f top-%d module %.3f aggregate -> \
     %s\n"
    (if !exact_ok then "1.00 everywhere" else "BELOW 1.0")
    eps top_k noisy_rate
    (if pass then "PASS exact localization, noisy top-k >= 0.9"
     else "FAIL (needs exact top-1 class 1.0 and noisy top-k >= 0.9)")

(* ------------------------------------------------------------------ *)
(* ATPG test-set generation + minimization (the Atpg facade loop)      *)
(* ------------------------------------------------------------------ *)

let testset_json = "BENCH_testset.json"

let run_testset () =
  section
    "ATPG test-set loop: PODEM top-up + minimization (vectors drive c4)";
  let module Json = Iddq_util.Json in
  let module Atpg = Iddq_atpg.Atpg in
  let module Coverage = Iddq_defects.Coverage in
  let seed = 11 and random_vectors = 32 and max_backtracks = 64 in
  let strategies =
    [ (Atpg.Greedy, "greedy"); (Atpg.Essential, "essential");
      (Atpg.Refined, "refined") ]
  in
  let t =
    Table.create
      [
        ("circuit", Table.Left);
        ("faults", Table.Right);
        ("random cov%", Table.Right);
        ("full cov%", Table.Right);
        ("vectors", Table.Right);
        ("greedy", Table.Right);
        ("essential", Table.Right);
        ("refined", Table.Right);
        ("test time x", Table.Right);
      ]
  in
  let records = ref [] in
  let cov_ok = ref true
  and preserve_ok = ref true
  and refined_ok = ref true
  and det_ok = ref true
  and shrunk = ref 0 in
  List.iter
    (fun (name, circuit) ->
      (* The random-only baseline is the facade's own initial set: the
         facade seeds [Rng.create seed] and draws the random vectors
         first, so this reproduces them exactly. *)
      let rng = Rng.create seed in
      let initial =
        Iddq_patterns.Pattern_gen.random ~rng circuit ~count:random_vectors
      in
      let faults = Iddq_defects.Stuck_at.collapsed_fault_list circuit in
      let random_only =
        Iddq_defects.Stuck_at.fault_simulate circuit ~vectors:initial ~faults
      in
      let config =
        Atpg.config ~max_backtracks ~seed ~random_vectors
          ~strategy:Atpg.Greedy ()
      in
      let t0 = Unix.gettimeofday () in
      let r =
        match Atpg.run_result ~config circuit with
        | Ok r -> r
        | Error e -> failwith (Atpg.error_to_string e)
      in
      let gen_seconds = Unix.gettimeofday () -. t0 in
      if r.Atpg.coverage < random_only.Iddq_defects.Stuck_at.coverage -. 1e-9
      then cov_ok := false;
      (* determinism under a fixed seed (smallest circuit only — the
         rerun doubles the PODEM work) *)
      if name = "C432" then begin
        match Atpg.run_result ~config circuit with
        | Error _ -> det_ok := false
        | Ok r2 ->
          if
            Array.length r2.Atpg.all_vectors
              <> Array.length r.Atpg.all_vectors
            || r2.Atpg.coverage <> r.Atpg.coverage
            || r2.Atpg.selected <> r.Atpg.selected
          then det_ok := false
      end;
      let full_cov =
        if Coverage.num_faults r.Atpg.matrix = 0 then 1.0
        else
          float_of_int (Coverage.num_detectable r.Atpg.matrix)
          /. float_of_int (Coverage.num_faults r.Atpg.matrix)
      in
      let minimized =
        List.map
          (fun (s, sname) ->
            let t0 = Unix.gettimeofday () in
            let sel =
              match Atpg.minimize_result ~strategy:s r.Atpg.matrix with
              | Ok sel -> sel
              | Error e -> failwith (Atpg.error_to_string e)
            in
            let dt = Unix.gettimeofday () -. t0 in
            if
              Float.abs
                (Coverage.coverage_of_selection r.Atpg.matrix sel -. full_cov)
              > 1e-9
            then preserve_ok := false;
            (s, sname, sel, dt))
          strategies
      in
      let size s =
        let _, _, sel, _ =
          List.find (fun (s', _, _, _) -> s' = s) minimized
        in
        Array.length sel
      in
      if size Atpg.Refined > size Atpg.Greedy then refined_ok := false;
      let best =
        List.fold_left
          (fun acc (_, _, sel, _) -> Stdlib.min acc (Array.length sel))
          r.Atpg.vectors_before minimized
      in
      if best < r.Atpg.vectors_before then incr shrunk;
      (* the c4 wiring: vectors saved, priced on this circuit's own
         synthesized design *)
      let time_ratio, time_fields =
        match Pipeline.run_result Pipeline.Standard circuit with
        | Error _ -> (1.0, [])
        | Ok p ->
          let before =
            Pipeline.test_time p ~vectors:r.Atpg.vectors_before
          in
          let after = Pipeline.test_time p ~vectors:(size Atpg.Refined) in
          ( (if after > 0.0 then before /. after else 1.0),
            [
              ("test_time_before_s", Json.Float before);
              ("test_time_after_s", Json.Float after);
              ( "c4_before",
                Json.Float
                  (Pipeline.c4_of_vectors p ~vectors:r.Atpg.vectors_before) );
              ( "c4_after",
                Json.Float
                  (Pipeline.c4_of_vectors p ~vectors:(size Atpg.Refined)) );
            ] )
      in
      Table.add_row t
        [
          name;
          string_of_int (Coverage.num_faults r.Atpg.matrix);
          Printf.sprintf "%.1f"
            (100.0 *. random_only.Iddq_defects.Stuck_at.coverage);
          Printf.sprintf "%.1f" (100.0 *. r.Atpg.coverage);
          string_of_int r.Atpg.vectors_before;
          string_of_int (size Atpg.Greedy);
          string_of_int (size Atpg.Essential);
          string_of_int (size Atpg.Refined);
          Printf.sprintf "%.1fx" time_ratio;
        ];
      records :=
        Json.Obj
          ([
             ("circuit", Json.String name);
             ("faults", Json.Int (Coverage.num_faults r.Atpg.matrix));
             ( "random_coverage",
               Json.Float random_only.Iddq_defects.Stuck_at.coverage );
             ("coverage", Json.Float r.Atpg.coverage);
             ("efficiency", Json.Float r.Atpg.efficiency);
             ("vectors_before", Json.Int r.Atpg.vectors_before);
             ("random", Json.Int r.Atpg.stats.Iddq_atpg.Testset.random);
             ("generated", Json.Int r.Atpg.stats.Iddq_atpg.Testset.generated);
             ( "untestable",
               Json.Int r.Atpg.stats.Iddq_atpg.Testset.untestable );
             ("aborted", Json.Int r.Atpg.stats.Iddq_atpg.Testset.aborted);
             ("generation_seconds", Json.Float gen_seconds);
             ( "strategies",
               Json.List
                 (List.map
                    (fun (_, sname, sel, dt) ->
                      Json.Obj
                        [
                          ("strategy", Json.String sname);
                          ("vectors", Json.Int (Array.length sel));
                          ("seconds", Json.Float dt);
                        ])
                    minimized) );
           ]
          @ time_fields)
        :: !records)
    [
      ("C432", Iscas.c432_like ());
      ("C880", Iscas.c880_like ());
      ("C1908", Iscas.c1908_like ());
      ("C3540", Iscas.c3540_like ());
    ];
  Table.print t;
  let pass =
    !cov_ok && !preserve_ok && !refined_ok && !det_ok && !shrunk >= 3
  in
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "testset");
        ("seed", Json.Int seed);
        ("random_vectors", Json.Int random_vectors);
        ("max_backtracks", Json.Int max_backtracks);
        ("records", Json.List (List.rev !records));
        ("minimized_smaller_on", Json.Int !shrunk);
        ("deterministic", Json.Bool !det_ok);
        ("pass", Json.Bool pass);
      ]
  in
  (match
     Iddq_util.Io.write_file_atomic testset_json (Json.to_string doc ^ "\n")
   with
  | Ok () -> Printf.printf "\nwrote %s\n" testset_json
  | Error e ->
    Printf.printf "\nFAILED writing %s: %s\n" testset_json
      (Iddq_util.Io_error.to_string e));
  Printf.printf
    "testset: coverage %s random baseline, minimized smaller on %d/4, \
     refined <= greedy %s, deterministic %s -> %s\n"
    (if !cov_ok then ">=" else "BELOW")
    !shrunk
    (if !refined_ok then "everywhere" else "VIOLATED")
    (if !det_ok then "yes" else "NO")
    (if pass then "PASS coverage kept, sets shrink, runs reproduce"
     else "FAIL (see BENCH_testset.json)")

(* ------------------------------------------------------------------ *)

let quick_suite () = [ ("C432", Iscas.c432_like ()) ]

let run_all ~quick =
  let suite = if quick then quick_suite () else Iscas.table1_suite () in
  run_table1 suite;
  run_fig2 ();
  run_c17 ();
  run_fig1 ();
  run_ablation_opt ();
  run_ablation_weights ();
  run_ablation_es ();
  run_ablation_resynth ();
  run_validation_activity ();
  run_tradeoff ();
  run_variants ();
  run_compaction ();
  run_logic_vs_iddq ();
  run_schedule ();
  run_routing ();
  run_atpg ();
  run_testset ();
  run_sizing ();
  run_stability ();
  run_cooptimize ();
  run_faultsim ();
  run_kernels ();
  run_diagnose ();
  run_perf ()

let () =
  match Array.to_list Sys.argv with
  | _ :: [] -> run_all ~quick:false
  | _ :: args ->
    List.iter
      (function
        | "all" -> run_all ~quick:false
        | "quick" -> run_table1 (quick_suite ())
        | "table1" -> run_table1 (Iscas.table1_suite ())
        | "fig2" -> run_fig2 ()
        | "c17" -> run_c17 ()
        | "fig1" -> run_fig1 ()
        | "ablation-opt" -> run_ablation_opt ()
        | "ablation-weights" -> run_ablation_weights ()
        | "ablation-es" -> run_ablation_es ()
        | "ablation-resynth" -> run_ablation_resynth ()
        | "validation" -> run_validation_activity ()
        | "tradeoff" -> run_tradeoff ()
        | "variants" -> run_variants ()
        | "compaction" -> run_compaction ()
        | "logic-vs-iddq" -> run_logic_vs_iddq ()
        | "schedule" -> run_schedule ()
        | "routing" -> run_routing ()
        | "atpg" -> run_atpg ()
        | "testset" -> run_testset ()
        | "sizing" -> run_sizing ()
        | "stability" -> run_stability ()
        | "cooptimize" -> run_cooptimize ()
        | "perf" -> run_perf ()
        | "smoke" -> run_smoke ()
        | "faultsim" -> run_faultsim ()
        | "kernels" -> run_kernels ()
        | "diagnose" -> run_diagnose ()
        | "campaign" -> run_campaign ()
        | other ->
          Printf.eprintf
            "unknown experiment %S (try: table1 fig2 c17 fig1 ablation-opt \
             ablation-weights ablation-es ablation-resynth validation tradeoff variants compaction logic-vs-iddq schedule routing atpg testset sizing stability cooptimize faultsim kernels diagnose perf smoke campaign quick all)\n"
            other;
          exit 1)
      args
  | [] -> run_all ~quick:false
