(* Command-line driver: partition a circuit for IDDQ testability and
   report the resulting BIC sensor plan.

     iddq_synth partition --circuit C1908 --method evolution
     iddq_synth partition --bench path/to/netlist.bench --method standard
     iddq_synth compare --circuit C3540
     iddq_synth stats --circuit C7552
     iddq_synth generate --gates 500 --depth 20 --out my.bench *)

module Circuit = Iddq_netlist.Circuit
module Bench_io = Iddq_netlist.Bench_io
module Io_error = Iddq_util.Io_error
module Iscas = Iddq_netlist.Iscas
module Generator = Iddq_netlist.Generator
module Partition = Iddq_core.Partition
module Pipeline = Iddq.Pipeline
module Report = Iddq.Report

open Cmdliner

let load_circuit ~circuit ~bench =
  match circuit, bench with
  | Some name, None -> begin
    match Iscas.by_name name with
    | Some c -> Ok c
    | None ->
      Error
        (Printf.sprintf "unknown circuit %S (try %s)" name
           (String.concat ", " Iscas.names))
  end
  | None, Some path ->
    Result.map_error Io_error.to_string (Bench_io.parse_file path)
  | Some _, Some _ -> Error "give either --circuit or --bench, not both"
  | None, None -> Error "a circuit is required: --circuit NAME or --bench FILE"

let circuit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "circuit" ] ~docv:"NAME"
        ~doc:"Built-in circuit: C17, C432, or the Table-1 suite C1908..C7552.")

let bench_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "bench" ] ~docv:"FILE" ~doc:"ISCAS85 .bench netlist to load.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let module_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "module-size" ] ~docv:"N"
        ~doc:"Target start-module size (default: estimated from the discriminability budget).")

let method_arg =
  let parse s =
    match Pipeline.method_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown method %S" s))
  in
  let print fmt m = Format.pp_print_string fmt (Pipeline.method_to_string m) in
  Arg.(
    value
    & opt (conv (parse, print)) Pipeline.Evolution
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:"Partitioning method: evolution, standard, random, annealing, refined-standard.")

let library_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "library" ] ~docv:"FILE"
        ~doc:"Cell-library file (INI format, see Library_io); default: the               built-in 1um CMOS characterization.")

let load_library = function
  | None -> Iddq_celllib.Library.default
  | Some path -> begin
    match Iddq_celllib.Library_io.parse_file path with
    | Ok lib -> lib
    | Error e ->
      Format.eprintf "error loading library: %s@." (Io_error.to_string e);
      exit 1
  end

let config ~seed ~module_size ~library =
  {
    Pipeline.default_config with
    Pipeline.seed;
    module_size;
    library = load_library library;
  }

let exit_err msg =
  Format.eprintf "error: %s@." msg;
  exit 1

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:"Write the partitioned netlist as Graphviz DOT (modules as clusters).")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-partition" ] ~docv:"FILE"
        ~doc:"Write the resulting partition (net names per module).")

let resynth_arg =
  Arg.(
    value & flag
    & info [ "resynth" ]
        ~doc:"After partitioning, run cost-aware drive selection: re-map \
              peak-defining gates with timing slack to low-drive cells.")

let partition_cmd =
  let run circuit bench method_ seed module_size library resynth dot save =
    match load_circuit ~circuit ~bench with
    | Error e -> exit_err e
    | Ok c ->
      Format.printf "circuit %s: %a@.@." (Circuit.name c) Circuit.pp_stats
        (Circuit.stats c);
      let result =
        Pipeline.run ~config:(config ~seed ~module_size ~library) method_ c
      in
      Format.printf "%a" Report.pp_pipeline result;
      let final_partition =
        if resynth then begin
          let r = Iddq_resynth.Drive_select.optimize result.Pipeline.partition in
          let before = r.Iddq_resynth.Drive_select.before in
          let after = r.Iddq_resynth.Drive_select.after in
          Format.printf
            "@.drive selection: %d gates re-mapped to low drive;@ sensor area \
             %.3e -> %.3e (%.1f%% saved), nominal delay unchanged@."
            (List.length r.Iddq_resynth.Drive_select.swaps)
            before.Iddq_core.Cost.sensor_area after.Iddq_core.Cost.sensor_area
            (100.0
            *. (1.0
               -. after.Iddq_core.Cost.sensor_area
                  /. before.Iddq_core.Cost.sensor_area));
          r.Iddq_resynth.Drive_select.partition
        end
        else result.Pipeline.partition
      in
      let write_or_die what = function
        | Ok () -> ()
        | Error e ->
          exit_err (Printf.sprintf "writing %s: %s" what (Io_error.to_string e))
      in
      Option.iter
        (fun path ->
          write_or_die "DOT"
            (Iddq_netlist.Dot.write_file
               ~module_of_gate:(Partition.module_of_gate final_partition)
               path c);
          Format.printf "wrote DOT to %s@." path)
        dot;
      Option.iter
        (fun path ->
          write_or_die "partition"
            (Iddq_core.Partition_io.write_file path final_partition);
          Format.printf "wrote partition to %s@." path)
        save
  in
  Cmd.v
    (Cmd.info "partition" ~doc:"Partition a circuit and size its BIC sensors.")
    Term.(
      const run $ circuit_arg $ bench_arg $ method_arg $ seed_arg
      $ module_size_arg $ library_arg $ resynth_arg $ dot_arg $ save_arg)

let simulate_cmd =
  let defects =
    Arg.(value & opt int 200 & info [ "defects" ] ~docv:"N" ~doc:"Injected defect count.")
  in
  let vectors =
    Arg.(value & opt int 64 & info [ "vectors" ] ~docv:"N" ~doc:"Random test vectors.")
  in
  let current =
    Arg.(
      value & opt float 2.0
      & info [ "defect-current" ] ~docv:"UA" ~doc:"Defect current in microamperes.")
  in
  let run circuit bench seed module_size library defects vectors current =
    match load_circuit ~circuit ~bench with
    | Error e -> exit_err e
    | Ok c ->
      let result =
        Pipeline.run
          ~config:(config ~seed ~module_size ~library)
          Pipeline.Evolution c
      in
      let rng = Iddq_util.Rng.create (seed + 1) in
      let faults =
        Iddq_defects.Fault.random_population ~rng c ~count:defects
          ~defect_current:(current *. 1.0e-6)
      in
      let vs = Iddq_patterns.Pattern_gen.random ~rng c ~count:vectors in
      let part =
        Iddq_defects.Iddq_sim.run_partitioned result.Pipeline.partition
          ~vectors:vs ~faults
      in
      let single =
        Iddq_defects.Iddq_sim.run_single_sensor result.Pipeline.charac
          ~vectors:vs ~faults
      in
      Format.printf
        "%s: %d modules, %d defects at %.1f uA, %d vectors@.  partitioned \
         BIC: coverage %5.1f%%  test time %.3e s@.  single sensor: coverage \
         %5.1f%%  test time %.3e s@."
        (Circuit.name c)
        (Partition.num_modules result.Pipeline.partition)
        defects current vectors
        (100.0 *. part.Iddq_defects.Iddq_sim.coverage)
        part.Iddq_defects.Iddq_sim.test_time
        (100.0 *. single.Iddq_defects.Iddq_sim.coverage)
        single.Iddq_defects.Iddq_sim.test_time
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Inject IDDQ defects and compare partitioned vs single-sensor coverage.")
    Term.(
      const run $ circuit_arg $ bench_arg $ seed_arg $ module_size_arg
      $ library_arg $ defects $ vectors $ current)

let compare_cmd =
  let all_methods =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Compare all five methods, not just evolution vs standard.")
  in
  let run circuit bench seed module_size library all =
    match load_circuit ~circuit ~bench with
    | Error e -> exit_err e
    | Ok c ->
      Format.printf "circuit %s: %a@.@." (Circuit.name c) Circuit.pp_stats
        (Circuit.stats c);
      let methods =
        if all then
          [
            Pipeline.Evolution; Pipeline.Standard; Pipeline.Refined_standard;
            Pipeline.Annealing; Pipeline.Random;
          ]
        else [ Pipeline.Evolution; Pipeline.Standard ]
      in
      let results =
        Pipeline.compare_methods ~config:(config ~seed ~module_size ~library) c
          methods
      in
      List.iter
        (fun (_, r) -> Format.printf "%a@." Report.pp_pipeline r)
        results;
      (match results with
      | (_, evolution) :: (_, standard) :: _ ->
        let row =
          Report.row_of_results ~circuit_name:(Circuit.name c) ~standard
            ~evolution
        in
        Iddq_util.Table.print (Report.table [ row ])
      | _ -> ())
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Evolution vs standard partitioning on one circuit (a Table-1 row).")
    Term.(
      const run $ circuit_arg $ bench_arg $ seed_arg $ module_size_arg
      $ library_arg $ all_methods)

let atpg_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the vectors (one 0/1 row per vector).")
  in
  let random_count =
    Arg.(
      value & opt int 32
      & info [ "random" ] ~docv:"N" ~doc:"Random vectors before PODEM top-up.")
  in
  let run circuit bench seed random_count out =
    match load_circuit ~circuit ~bench with
    | Error e -> exit_err e
    | Ok c ->
      let rng = Iddq_util.Rng.create seed in
      let faults = Iddq_defects.Stuck_at.collapsed_fault_list c in
      let initial = Iddq_patterns.Pattern_gen.random ~rng c ~count:random_count in
      let r = Iddq_atpg.Podem.complete_set ~rng ~initial c faults in
      Format.printf
        "%s: %d collapsed stuck-at faults@.%d vectors (%d random + %d          generated)@.coverage %.1f%%, efficiency %.1f%% (%d untestable, %d          aborted)@."
        (Circuit.name c) (List.length faults)
        (Array.length r.Iddq_atpg.Podem.vectors)
        random_count r.Iddq_atpg.Podem.generated
        (100.0 *. r.Iddq_atpg.Podem.coverage)
        (100.0 *. r.Iddq_atpg.Podem.efficiency)
        r.Iddq_atpg.Podem.untestable r.Iddq_atpg.Podem.aborted;
      Option.iter
        (fun path ->
          match
            Iddq_patterns.Pattern_io.write_file path r.Iddq_atpg.Podem.vectors
          with
          | Ok () -> Format.printf "wrote vectors to %s@." path
          | Error e ->
            exit_err
              (Printf.sprintf "writing vectors: %s" (Io_error.to_string e)))
        out
  in
  Cmd.v
    (Cmd.info "atpg"
       ~doc:"Generate a stuck-at test set (random vectors + PODEM top-up).")
    Term.(const run $ circuit_arg $ bench_arg $ seed_arg $ random_count $ out)

let dump_library_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Destination library file.")
  in
  let run out =
    match Iddq_celllib.Library_io.write_file out Iddq_celllib.Library.default with
    | Error e ->
      exit_err (Printf.sprintf "writing library: %s" (Io_error.to_string e))
    | Ok () ->
      Format.printf "wrote the default library to %s (edit and pass back with --library)@." out
  in
  Cmd.v
    (Cmd.info "dump-library"
       ~doc:"Write the built-in cell library as an editable file.")
    Term.(const run $ out)

let stats_cmd =
  let run circuit bench =
    match load_circuit ~circuit ~bench with
    | Error e -> exit_err e
    | Ok c ->
      Format.printf "%s: %a@." (Circuit.name c) Circuit.pp_stats
        (Circuit.stats c)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print circuit statistics.")
    Term.(const run $ circuit_arg $ bench_arg)

let generate_cmd =
  let gates = Arg.(value & opt int 500 & info [ "gates" ] ~docv:"N" ~doc:"Gate count.") in
  let depth = Arg.(value & opt int 20 & info [ "depth" ] ~docv:"N" ~doc:"Logic depth.") in
  let inputs = Arg.(value & opt int 32 & info [ "inputs" ] ~docv:"N" ~doc:"Primary inputs.") in
  let outputs = Arg.(value & opt int 16 & info [ "outputs" ] ~docv:"N" ~doc:"Primary outputs.") in
  let out = Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output .bench path.") in
  let run gates depth inputs outputs seed out =
    let rng = Iddq_util.Rng.create seed in
    let c =
      Generator.layered_dag ~rng ~name:(Filename.remove_extension (Filename.basename out))
        ~num_inputs:inputs ~num_outputs:outputs ~num_gates:gates ~depth ()
    in
    match Bench_io.write_file out c with
    | Error e ->
      exit_err (Printf.sprintf "writing netlist: %s" (Io_error.to_string e))
    | Ok () ->
      Format.printf "wrote %s: %a@." out Circuit.pp_stats (Circuit.stats c)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random layered netlist as .bench.")
    Term.(const run $ gates $ depth $ inputs $ outputs $ seed_arg $ out)

(* ------------------------------------------------------------------ *)
(* campaign: the resumable domain-pool sweep                           *)
(* ------------------------------------------------------------------ *)

module Spec = Iddq_campaign.Spec
module Store = Iddq_campaign.Store
module Runner = Iddq_campaign.Runner
module Summary = Iddq_campaign.Summary
module Job_result = Iddq_campaign.Job_result

let campaign_cmd =
  let csv name ~doc =
    Arg.(
      value
      & opt (some string) None
      & info [ name ] ~docv:"LIST" ~doc)
  in
  let spec_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:"Campaign spec file (key = values lines; see the README).  \
                Grid flags below override its entries.")
  in
  let out =
    Arg.(
      value
      & opt string "campaign.jsonl"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Append-only JSONL result store.  Re-running with the same \
                store resumes: completed jobs are skipped, failures re-run.")
  in
  let domains =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"N" ~doc:"Worker domains in the pool.")
  in
  let generations =
    Arg.(
      value
      & opt (some int) None
      & info [ "generations" ] ~docv:"N" ~doc:"Cap on ES generations per job.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-job wall-clock budget; a job past it records a timeout \
                result instead of a measurement.")
  in
  let fresh =
    Arg.(
      value & flag
      & info [ "fresh" ]
          ~doc:"Delete the result store first instead of resuming from it.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-job progress lines.")
  in
  let parse_csv parse_one what = function
    | None -> Ok None
    | Some s ->
      let parts =
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun x -> x <> "")
      in
      let rec go acc = function
        | [] -> Ok (Some (List.rev acc))
        | x :: tl -> begin
          match parse_one x with
          | Some v -> go (v :: acc) tl
          | None -> Error (Printf.sprintf "invalid %s %S" what x)
        end
      in
      go [] parts
  in
  let build_spec ~spec_file ~circuits ~methods ~seeds ~sizes ~generations
      ~timeout =
    let ( let* ) = Result.bind in
    let* base =
      match spec_file with
      | None -> Ok Spec.default
      | Some path ->
        Result.map_error Io_error.to_string (Spec.parse_file path)
    in
    let* circuits =
      parse_csv (fun s -> Some (String.uppercase_ascii s)) "circuit" circuits
    in
    let* methods = parse_csv Pipeline.method_of_string "method" methods in
    let* seeds = parse_csv int_of_string_opt "seed" seeds in
    let* sizes =
      parse_csv
        (function
          | "default" | "auto" | "-" -> Some None
          | s -> Option.map (fun i -> Some i) (int_of_string_opt s))
        "module size" sizes
    in
    let with_ opt f spec = match opt with None -> spec | Some v -> f spec v in
    let spec =
      base
      |> with_ circuits (fun s v -> { s with Spec.circuits = v })
      |> with_ methods (fun s v -> { s with Spec.methods = v })
      |> with_ seeds (fun s v -> { s with Spec.seeds = v })
      |> with_ sizes (fun s v -> { s with Spec.module_sizes = v })
      |> with_ generations (fun s v -> { s with Spec.max_generations = Some v })
      |> with_ timeout (fun s v -> { s with Spec.timeout = Some v })
    in
    let* () = Spec.validate spec in
    Ok spec
  in
  let run spec_file circuits methods seeds sizes generations timeout out
      domains fresh quiet =
    match
      build_spec ~spec_file ~circuits ~methods ~seeds ~sizes ~generations
        ~timeout
    with
    | Error e -> exit_err e
    | Ok spec ->
      if fresh && Sys.file_exists out then Sys.remove out;
      let store =
        match Store.open_ out with
        | Ok s -> s
        | Error e ->
          exit_err (Printf.sprintf "opening store: %s" (Io_error.to_string e))
      in
      if Store.dropped store > 0 then
        Format.printf
          "note: %d corrupt line(s) in %s ignored (interrupted write)@."
          (Store.dropped store) out;
      let total = List.length (Spec.jobs spec) in
      let seen = ref 0 in
      let on_result (job : Spec.job) (r : Job_result.t) ~fresh =
        incr seen;
        if not quiet then begin
          let what =
            match r.Job_result.status with
            | Job_result.Done when not fresh -> "stored (skipped)"
            | Job_result.Done ->
              Printf.sprintf "ok    %d modules  cost %.2f  %.1fs"
                r.Job_result.num_modules r.Job_result.cost r.Job_result.elapsed
            | Job_result.Failed msg -> "FAILED " ^ msg
            | Job_result.Timeout l -> Printf.sprintf "TIMEOUT > %.1fs" l
          in
          Format.printf "[%d/%d] %-32s %s@." !seen total job.Spec.id what
        end
      in
      let outcome = Runner.run ~domains ~on_result ~store spec in
      Store.close store;
      Format.printf "@.%a@." Summary.pp outcome.Runner.results;
      Format.printf
        "campaign: %d jobs, executed %d, skipped %d (resume), ok %d, failed \
         %d, timeout %d -> %s@."
        total outcome.Runner.executed outcome.Runner.skipped outcome.Runner.ok
        outcome.Runner.failed outcome.Runner.timed_out out;
      if outcome.Runner.failed + outcome.Runner.timed_out > 0 then exit 3
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a circuits x methods x seeds x module-sizes sweep over a \
             domain pool with a resumable JSONL result store.")
    Term.(
      const run $ spec_file
      $ csv "circuits" ~doc:"Comma-separated built-in circuit names."
      $ csv "methods" ~doc:"Comma-separated methods (evolution, standard, ...)."
      $ csv "seeds" ~doc:"Comma-separated integer grid seeds."
      $ csv "module-sizes"
          ~doc:"Comma-separated target module sizes; 'default' = estimated."
      $ generations $ timeout $ out $ domains $ fresh $ quiet)

let () =
  let info =
    Cmd.info "iddq_synth" ~version:"0.1.0"
      ~doc:"Synthesis of IDDQ-testable circuits with built-in current sensors."
  in
  exit (Cmd.eval (Cmd.group info
       [ partition_cmd; compare_cmd; simulate_cmd; atpg_cmd; dump_library_cmd;
         stats_cmd; generate_cmd; campaign_cmd ]))
