(* Command-line driver: partition a circuit for IDDQ testability and
   report the resulting BIC sensor plan.

     iddq_synth partition --circuit C1908 --method evolution
     iddq_synth partition --bench path/to/netlist.bench --method standard
     iddq_synth compare --circuit C3540
     iddq_synth stats --circuit C7552
     iddq_synth generate --gates 500 --depth 20 --out my.bench *)

module Circuit = Iddq_netlist.Circuit
module Bench_io = Iddq_netlist.Bench_io
module Io_error = Iddq_util.Io_error
module Iscas = Iddq_netlist.Iscas
module Generator = Iddq_netlist.Generator
module Partition = Iddq_core.Partition
module Pipeline = Iddq.Pipeline
module Report = Iddq.Report
module Diagnose = Iddq_diagnose.Diagnose

open Cmdliner

let load_circuit ~circuit ~bench =
  match circuit, bench with
  | Some name, None -> begin
    match Iscas.by_name name with
    | Some c -> Ok c
    | None ->
      Error
        (Printf.sprintf "unknown circuit %S (try %s)" name
           (String.concat ", " Iscas.names))
  end
  | None, Some path ->
    Result.map_error Io_error.to_string (Bench_io.parse_file path)
  | Some _, Some _ -> Error "give either --circuit or --bench, not both"
  | None, None -> Error "a circuit is required: --circuit NAME or --bench FILE"

let circuit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "circuit" ] ~docv:"NAME"
        ~doc:"Built-in circuit: C17, C432, or the Table-1 suite C1908..C7552.")

let bench_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "bench" ] ~docv:"FILE" ~doc:"ISCAS85 .bench netlist to load.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let module_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "module-size" ] ~docv:"N"
        ~doc:"Target start-module size (default: estimated from the discriminability budget).")

let method_arg =
  let parse s =
    match Pipeline.method_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown method %S" s))
  in
  let print fmt m = Format.pp_print_string fmt (Pipeline.method_to_string m) in
  Arg.(
    value
    & opt (conv (parse, print)) Pipeline.Evolution
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:"Partitioning method: evolution, standard, random, annealing, refined-standard.")

let library_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "library" ] ~docv:"FILE"
        ~doc:"Cell-library file (INI format, see Library_io); default: the               built-in 1um CMOS characterization.")

let load_library = function
  | None -> Iddq_celllib.Library.default
  | Some path -> begin
    match Iddq_celllib.Library_io.parse_file path with
    | Ok lib -> lib
    | Error e ->
      Format.eprintf "error loading library: %s@." (Io_error.to_string e);
      exit 1
  end

let config ~seed ~module_size ~library =
  Pipeline.config ~seed ?module_size ~library:(load_library library) ()

let exit_err msg =
  Format.eprintf "error: %s@." msg;
  exit 1

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:"Write the partitioned netlist as Graphviz DOT (modules as clusters).")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-partition" ] ~docv:"FILE"
        ~doc:"Write the resulting partition (net names per module).")

let resynth_arg =
  Arg.(
    value & flag
    & info [ "resynth" ]
        ~doc:"After partitioning, run cost-aware drive selection: re-map \
              peak-defining gates with timing slack to low-drive cells.")

let partition_cmd =
  let run circuit bench method_ seed module_size library resynth dot save =
    match load_circuit ~circuit ~bench with
    | Error e -> exit_err e
    | Ok c ->
      Format.printf "circuit %s: %a@.@." (Circuit.name c) Circuit.pp_stats
        (Circuit.stats c);
      let result =
        Pipeline.run ~config:(config ~seed ~module_size ~library) method_ c
      in
      Format.printf "%a" Report.pp_pipeline result;
      let final_partition =
        if resynth then begin
          let r = Iddq_resynth.Drive_select.optimize result.Pipeline.partition in
          let before = r.Iddq_resynth.Drive_select.before in
          let after = r.Iddq_resynth.Drive_select.after in
          Format.printf
            "@.drive selection: %d gates re-mapped to low drive;@ sensor area \
             %.3e -> %.3e (%.1f%% saved), nominal delay unchanged@."
            (List.length r.Iddq_resynth.Drive_select.swaps)
            before.Iddq_core.Cost.sensor_area after.Iddq_core.Cost.sensor_area
            (100.0
            *. (1.0
               -. after.Iddq_core.Cost.sensor_area
                  /. before.Iddq_core.Cost.sensor_area));
          r.Iddq_resynth.Drive_select.partition
        end
        else result.Pipeline.partition
      in
      let write_or_die what = function
        | Ok () -> ()
        | Error e ->
          exit_err (Printf.sprintf "writing %s: %s" what (Io_error.to_string e))
      in
      Option.iter
        (fun path ->
          write_or_die "DOT"
            (Iddq_netlist.Dot.write_file
               ~module_of_gate:(Partition.module_of_gate final_partition)
               path c);
          Format.printf "wrote DOT to %s@." path)
        dot;
      Option.iter
        (fun path ->
          write_or_die "partition"
            (Iddq_core.Partition_io.write_file path final_partition);
          Format.printf "wrote partition to %s@." path)
        save
  in
  Cmd.v
    (Cmd.info "partition" ~doc:"Partition a circuit and size its BIC sensors.")
    Term.(
      const run $ circuit_arg $ bench_arg $ method_arg $ seed_arg
      $ module_size_arg $ library_arg $ resynth_arg $ dot_arg $ save_arg)

let simulate_cmd =
  let defects =
    Arg.(value & opt int 200 & info [ "defects" ] ~docv:"N" ~doc:"Injected defect count.")
  in
  let vectors =
    Arg.(value & opt int 64 & info [ "vectors" ] ~docv:"N" ~doc:"Random test vectors.")
  in
  let current =
    Arg.(
      value & opt float 2.0
      & info [ "defect-current" ] ~docv:"UA" ~doc:"Defect current in microamperes.")
  in
  let run circuit bench seed module_size library defects vectors current =
    match load_circuit ~circuit ~bench with
    | Error e -> exit_err e
    | Ok c ->
      let result =
        Pipeline.run
          ~config:(config ~seed ~module_size ~library)
          Pipeline.Evolution c
      in
      let rng = Iddq_util.Rng.create (seed + 1) in
      let faults =
        Iddq_defects.Fault.random_population ~rng c ~count:defects
          ~defect_current:(current *. 1.0e-6)
      in
      let vs = Iddq_patterns.Pattern_gen.random ~rng c ~count:vectors in
      let part =
        Iddq_defects.Iddq_sim.run_partitioned result.Pipeline.partition
          ~vectors:vs ~faults
      in
      let single =
        Iddq_defects.Iddq_sim.run_single_sensor result.Pipeline.charac
          ~vectors:vs ~faults
      in
      Format.printf
        "%s: %d modules, %d defects at %.1f uA, %d vectors@.  partitioned \
         BIC: coverage %5.1f%%  test time %.3e s@.  single sensor: coverage \
         %5.1f%%  test time %.3e s@."
        (Circuit.name c)
        (Partition.num_modules result.Pipeline.partition)
        defects current vectors
        (100.0 *. part.Iddq_defects.Iddq_sim.coverage)
        part.Iddq_defects.Iddq_sim.test_time
        (100.0 *. single.Iddq_defects.Iddq_sim.coverage)
        single.Iddq_defects.Iddq_sim.test_time
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Inject IDDQ defects and compare partitioned vs single-sensor coverage.")
    Term.(
      const run $ circuit_arg $ bench_arg $ seed_arg $ module_size_arg
      $ library_arg $ defects $ vectors $ current)

let diagnose_cmd =
  let defects =
    Arg.(value & opt int 200 & info [ "defects" ] ~docv:"N" ~doc:"Injected defect count.")
  in
  let vectors =
    Arg.(value & opt int 64 & info [ "vectors" ] ~docv:"N" ~doc:"Random test vectors.")
  in
  let current =
    Arg.(
      value & opt float 2.0
      & info [ "defect-current" ] ~docv:"UA" ~doc:"Defect current in microamperes.")
  in
  let epsilon =
    Arg.(
      value & opt float 0.0
      & info [ "epsilon" ] ~docv:"P"
          ~doc:"Per-measurement pass/fail flip probability in [0, 0.5); 0 = \
                noiseless exact matching.")
  in
  let trials =
    Arg.(
      value & opt int 20
      & info [ "trials" ] ~docv:"N" ~doc:"Monte-Carlo localization trials.")
  in
  let top_k =
    Arg.(
      value & opt int 3
      & info [ "top-k" ] ~docv:"K" ~doc:"K for the top-K module accuracy.")
  in
  let run circuit bench method_ seed module_size library defects vectors current
      epsilon trials top_k =
    match load_circuit ~circuit ~bench with
    | Error e -> exit_err e
    | Ok c ->
      if epsilon < 0.0 || epsilon >= 0.5 then
        exit_err "--epsilon must lie in [0, 0.5)";
      let result =
        Pipeline.run ~config:(config ~seed ~module_size ~library) method_ c
      in
      let rng = Iddq_util.Rng.create (seed + 1) in
      let faults =
        Iddq_defects.Fault.random_population ~rng c ~count:defects
          ~defect_current:(current *. 1.0e-6)
      in
      let vs = Iddq_patterns.Pattern_gen.random ~rng c ~count:vectors in
      let d = Diagnose.build result.Pipeline.partition ~vectors:vs ~faults in
      let module_id f = (Diagnose.module_ids d).(Diagnose.fault_module d f) in
      let s = Diagnose.diagnosability d in
      Format.printf
        "%s: %d modules, %d vectors, %d defects at %.1f uA@.  detectable \
         %d/%d  ambiguity classes %d (largest %d, silent %d)@.  expected \
         ambiguity %.2f  resolution entropy %.2f bits  c6 %.3f@."
        (Circuit.name c) (Diagnose.num_modules d) vectors defects current
        s.Diagnose.detectable s.Diagnose.faults s.Diagnose.classes
        s.Diagnose.max_class s.Diagnose.silent s.Diagnose.expected_ambiguity
        s.Diagnose.entropy_bits
        (Diagnose.c6_diagnosability d);
      let acc = Diagnose.measure_accuracy ~rng ~epsilon ~top_k ~trials d in
      Format.printf
        "  localization over %d trials (epsilon %.3f): top-1 ambiguity class \
         %.2f  top-1 module %.2f  top-%d module %.2f@."
        acc.Diagnose.trials epsilon acc.Diagnose.top1_class
        acc.Diagnose.top1_module top_k acc.Diagnose.topk_module;
      (* worked example: diagnose the first detectable defect *)
      let rec first_detectable i =
        if i >= Diagnose.num_faults d then None
        else if Diagnose.detectable d i then Some i
        else first_detectable (i + 1)
      in
      match first_detectable 0 with
      | None -> Format.printf "  no detectable defect to diagnose@."
      | Some truth ->
        let mode =
          if epsilon > 0.0 then Diagnose.Noisy epsilon else Diagnose.Exact
        in
        let obs =
          if epsilon > 0.0 then Diagnose.observe_noisy ~rng ~epsilon d truth
          else Diagnose.predicted d truth
        in
        let ranked = Diagnose.rank ~mode d obs in
        Format.printf "@.  example: defect %d is %a (module %d)@." truth
          (Iddq_defects.Fault.pp c)
          (Diagnose.fault d truth).Iddq_defects.Fault.fault (module_id truth);
        let rec take n = function
          | x :: rest when n > 0 -> x :: take (n - 1) rest
          | _ -> []
        in
        List.iter
          (fun (cand : Diagnose.candidate) ->
            Format.printf
              "    candidate %3d  class %3d  module %2d  distance %3d%s@."
              cand.Diagnose.fault cand.Diagnose.class_id
              (module_id cand.Diagnose.fault)
              cand.Diagnose.distance
              (if epsilon > 0.0 then
                 Printf.sprintf "  log-likelihood %.1f"
                   cand.Diagnose.log_likelihood
               else ""))
          (take 5 ranked)
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:"Rank injected defects against observed IDDQ pass/fail signatures \
             and report ambiguity sets, diagnosability, and localization \
             accuracy.")
    Term.(
      const run $ circuit_arg $ bench_arg $ method_arg $ seed_arg
      $ module_size_arg $ library_arg $ defects $ vectors $ current $ epsilon
      $ trials $ top_k)

let compare_cmd =
  let all_methods =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Compare all five methods, not just evolution vs standard.")
  in
  let run circuit bench seed module_size library all =
    match load_circuit ~circuit ~bench with
    | Error e -> exit_err e
    | Ok c ->
      Format.printf "circuit %s: %a@.@." (Circuit.name c) Circuit.pp_stats
        (Circuit.stats c);
      let methods =
        if all then
          [
            Pipeline.Evolution; Pipeline.Standard; Pipeline.Refined_standard;
            Pipeline.Annealing; Pipeline.Random;
          ]
        else [ Pipeline.Evolution; Pipeline.Standard ]
      in
      let results =
        Pipeline.compare_methods ~config:(config ~seed ~module_size ~library) c
          methods
      in
      List.iter
        (fun (_, r) -> Format.printf "%a@." Report.pp_pipeline r)
        results;
      (match results with
      | (_, evolution) :: (_, standard) :: _ ->
        let row =
          Report.row_of_results ~circuit_name:(Circuit.name c) ~standard
            ~evolution
        in
        Iddq_util.Table.print (Report.table [ row ])
      | _ -> ())
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Evolution vs standard partitioning on one circuit (a Table-1 row).")
    Term.(
      const run $ circuit_arg $ bench_arg $ seed_arg $ module_size_arg
      $ library_arg $ all_methods)

let atpg_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the vectors (one 0/1 row per vector).")
  in
  let random_count =
    Arg.(
      value & opt int 32
      & info [ "random" ] ~docv:"N" ~doc:"Random vectors before PODEM top-up.")
  in
  let run circuit bench seed random_count out =
    match load_circuit ~circuit ~bench with
    | Error e -> exit_err e
    | Ok c -> begin
      let config =
        Iddq_atpg.Atpg.config ~seed ~random_vectors:random_count ()
      in
      match Iddq_atpg.Atpg.run_result ~config c with
      | Error e -> exit_err (Iddq_atpg.Atpg.error_to_string e)
      | Ok r ->
        let stats = r.Iddq_atpg.Atpg.stats in
        Format.printf
          "%s: %d collapsed stuck-at faults@.%d vectors (%d random + %d          generated)@.coverage %.1f%%, efficiency %.1f%% (%d untestable, %d          aborted)@."
          (Circuit.name c)
          (Iddq_defects.Coverage.num_faults r.Iddq_atpg.Atpg.matrix)
          (Array.length r.Iddq_atpg.Atpg.all_vectors)
          random_count stats.Iddq_atpg.Testset.generated
          (100.0 *. r.Iddq_atpg.Atpg.coverage)
          (100.0 *. r.Iddq_atpg.Atpg.efficiency)
          stats.Iddq_atpg.Testset.untestable stats.Iddq_atpg.Testset.aborted;
        Option.iter
          (fun path ->
            match
              Iddq_patterns.Pattern_io.write_file path
                r.Iddq_atpg.Atpg.all_vectors
            with
            | Ok () -> Format.printf "wrote vectors to %s@." path
            | Error e ->
              exit_err
                (Printf.sprintf "writing vectors: %s" (Io_error.to_string e)))
          out
    end
  in
  Cmd.v
    (Cmd.info "atpg"
       ~doc:"Generate a stuck-at test set (random vectors + PODEM top-up).")
    Term.(const run $ circuit_arg $ bench_arg $ seed_arg $ random_count $ out)

let testset_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the minimized vectors (one 0/1 row per vector).")
  in
  let random_count =
    Arg.(
      value & opt int 32
      & info [ "random" ] ~docv:"N" ~doc:"Random vectors before PODEM top-up.")
  in
  let strategy_arg =
    let strategies =
      [
        ("greedy", Iddq_atpg.Atpg.Greedy);
        ("essential", Iddq_atpg.Atpg.Essential);
        ("refined", Iddq_atpg.Atpg.Refined);
      ]
    in
    Arg.(
      value
      & opt (enum strategies) Iddq_atpg.Atpg.Refined
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Minimization strategy: greedy (set-cover baseline), essential \
             (essential vectors + set-cover), refined (set-cover + local \
             refinement).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:"Cap on PODEM target attempts (default: unlimited).")
  in
  let backtracks_arg =
    Arg.(
      value & opt int 2000
      & info [ "max-backtracks" ] ~docv:"N"
          ~doc:"Per-target PODEM backtrack limit.")
  in
  let run circuit bench seed random_count strategy budget max_backtracks out =
    match load_circuit ~circuit ~bench with
    | Error e -> exit_err e
    | Ok c -> begin
      let config =
        Iddq_atpg.Atpg.config ~max_backtracks ?budget ~strategy ~seed
          ~random_vectors:random_count ()
      in
      match Iddq_atpg.Atpg.run_result ~config c with
      | Error e -> exit_err (Iddq_atpg.Atpg.error_to_string e)
      | Ok r ->
        let stats = r.Iddq_atpg.Atpg.stats in
        Format.printf
          "%s: %d collapsed stuck-at faults@.%d vectors generated (%d random \
           + %d PODEM), %d after %s minimization@.coverage %.1f%%, efficiency \
           %.1f%% (%d untestable, %d aborted)@."
          (Circuit.name c)
          (Iddq_defects.Coverage.num_faults r.Iddq_atpg.Atpg.matrix)
          r.Iddq_atpg.Atpg.vectors_before stats.Iddq_atpg.Testset.random
          stats.Iddq_atpg.Testset.generated
          (Array.length r.Iddq_atpg.Atpg.vectors)
          (Iddq_atpg.Atpg.strategy_to_string r.Iddq_atpg.Atpg.strategy)
          (100.0 *. r.Iddq_atpg.Atpg.coverage)
          (100.0 *. r.Iddq_atpg.Atpg.efficiency)
          stats.Iddq_atpg.Testset.untestable stats.Iddq_atpg.Testset.aborted;
        Option.iter
          (fun path ->
            match
              Iddq_patterns.Pattern_io.write_file path r.Iddq_atpg.Atpg.vectors
            with
            | Ok () -> Format.printf "wrote vectors to %s@." path
            | Error e ->
              exit_err
                (Printf.sprintf "writing vectors: %s" (Io_error.to_string e)))
          out
    end
  in
  Cmd.v
    (Cmd.info "testset"
       ~doc:
         "Generate and minimize a stuck-at test set: random vectors + PODEM \
          top-up with fault dropping, then coverage-preserving test-set \
          minimization (greedy set-cover, essential vectors, or local \
          refinement).")
    Term.(
      const run $ circuit_arg $ bench_arg $ seed_arg $ random_count
      $ strategy_arg $ budget_arg $ backtracks_arg $ out)

let dump_library_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Destination library file.")
  in
  let run out =
    match Iddq_celllib.Library_io.write_file out Iddq_celllib.Library.default with
    | Error e ->
      exit_err (Printf.sprintf "writing library: %s" (Io_error.to_string e))
    | Ok () ->
      Format.printf "wrote the default library to %s (edit and pass back with --library)@." out
  in
  Cmd.v
    (Cmd.info "dump-library"
       ~doc:"Write the built-in cell library as an editable file.")
    Term.(const run $ out)

let stats_cmd =
  let run circuit bench =
    match load_circuit ~circuit ~bench with
    | Error e -> exit_err e
    | Ok c ->
      Format.printf "%s: %a@." (Circuit.name c) Circuit.pp_stats
        (Circuit.stats c)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print circuit statistics.")
    Term.(const run $ circuit_arg $ bench_arg)

let generate_cmd =
  let gates = Arg.(value & opt int 500 & info [ "gates" ] ~docv:"N" ~doc:"Gate count.") in
  let depth = Arg.(value & opt int 20 & info [ "depth" ] ~docv:"N" ~doc:"Logic depth.") in
  let inputs = Arg.(value & opt int 32 & info [ "inputs" ] ~docv:"N" ~doc:"Primary inputs.") in
  let outputs = Arg.(value & opt int 16 & info [ "outputs" ] ~docv:"N" ~doc:"Primary outputs.") in
  let out = Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output .bench path.") in
  let run gates depth inputs outputs seed out =
    let rng = Iddq_util.Rng.create seed in
    let c =
      Generator.layered_dag ~rng ~name:(Filename.remove_extension (Filename.basename out))
        ~num_inputs:inputs ~num_outputs:outputs ~num_gates:gates ~depth ()
    in
    match Bench_io.write_file out c with
    | Error e ->
      exit_err (Printf.sprintf "writing netlist: %s" (Io_error.to_string e))
    | Ok () ->
      Format.printf "wrote %s: %a@." out Circuit.pp_stats (Circuit.stats c)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random layered netlist as .bench.")
    Term.(const run $ gates $ depth $ inputs $ outputs $ seed_arg $ out)

(* ------------------------------------------------------------------ *)
(* campaign: the resumable domain-pool sweep                           *)
(* ------------------------------------------------------------------ *)

module Spec = Iddq_campaign.Spec
module Store = Iddq_campaign.Store
module Runner = Iddq_campaign.Runner
module Summary = Iddq_campaign.Summary
module Job_result = Iddq_campaign.Job_result

let campaign_cmd =
  let csv name ~doc =
    Arg.(
      value
      & opt (some string) None
      & info [ name ] ~docv:"LIST" ~doc)
  in
  let spec_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:"Campaign spec file (key = values lines; see the README).  \
                Grid flags below override its entries.")
  in
  let out =
    Arg.(
      value
      & opt string "campaign.jsonl"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Append-only JSONL result store.  Re-running with the same \
                store resumes: completed jobs are skipped, failures re-run.")
  in
  let domains =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"N" ~doc:"Worker domains in the pool.")
  in
  let generations =
    Arg.(
      value
      & opt (some int) None
      & info [ "generations" ] ~docv:"N" ~doc:"Cap on ES generations per job.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-job wall-clock budget; a job past it records a timeout \
                result instead of a measurement.")
  in
  let fresh =
    Arg.(
      value & flag
      & info [ "fresh" ]
          ~doc:"Delete the result store first instead of resuming from it.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-job progress lines.")
  in
  let parse_csv parse_one what = function
    | None -> Ok None
    | Some s ->
      let parts =
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun x -> x <> "")
      in
      let rec go acc = function
        | [] -> Ok (Some (List.rev acc))
        | x :: tl -> begin
          match parse_one x with
          | Some v -> go (v :: acc) tl
          | None -> Error (Printf.sprintf "invalid %s %S" what x)
        end
      in
      go [] parts
  in
  let build_spec ~spec_file ~circuits ~methods ~seeds ~sizes ~generations
      ~timeout =
    let ( let* ) = Result.bind in
    let* base =
      match spec_file with
      | None -> Ok Spec.default
      | Some path ->
        Result.map_error Io_error.to_string (Spec.parse_file path)
    in
    let* circuits =
      parse_csv (fun s -> Some (String.uppercase_ascii s)) "circuit" circuits
    in
    let* methods = parse_csv Pipeline.method_of_string "method" methods in
    let* seeds = parse_csv int_of_string_opt "seed" seeds in
    let* sizes =
      parse_csv
        (function
          | "default" | "auto" | "-" -> Some None
          | s -> Option.map (fun i -> Some i) (int_of_string_opt s))
        "module size" sizes
    in
    let with_ opt f spec = match opt with None -> spec | Some v -> f spec v in
    let spec =
      base
      |> with_ circuits (fun s v -> { s with Spec.circuits = v })
      |> with_ methods (fun s v -> { s with Spec.methods = v })
      |> with_ seeds (fun s v -> { s with Spec.seeds = v })
      |> with_ sizes (fun s v -> { s with Spec.module_sizes = v })
      |> with_ generations (fun s v -> { s with Spec.max_generations = Some v })
      |> with_ timeout (fun s v -> { s with Spec.timeout = Some v })
    in
    let* () = Spec.validate spec in
    Ok spec
  in
  let run spec_file circuits methods seeds sizes generations timeout out
      domains fresh quiet =
    match
      build_spec ~spec_file ~circuits ~methods ~seeds ~sizes ~generations
        ~timeout
    with
    | Error e -> exit_err e
    | Ok spec ->
      if fresh && Sys.file_exists out then Sys.remove out;
      let store =
        match Store.open_ out with
        | Ok s -> s
        | Error e ->
          exit_err (Printf.sprintf "opening store: %s" (Io_error.to_string e))
      in
      if Store.dropped store > 0 then
        Format.printf
          "note: %d corrupt line(s) in %s ignored (interrupted write)@."
          (Store.dropped store) out;
      let total = List.length (Spec.jobs spec) in
      let seen = ref 0 in
      let on_result (job : Spec.job) (r : Job_result.t) ~fresh =
        incr seen;
        if not quiet then begin
          let what =
            match r.Job_result.status with
            | Job_result.Done when not fresh -> "stored (skipped)"
            | Job_result.Done ->
              Printf.sprintf "ok    %d modules  cost %.2f  %.1fs"
                r.Job_result.num_modules r.Job_result.cost r.Job_result.elapsed
            | Job_result.Failed msg -> "FAILED " ^ msg
            | Job_result.Timeout l -> Printf.sprintf "TIMEOUT > %.1fs" l
          in
          Format.printf "[%d/%d] %-32s %s@." !seen total job.Spec.id what
        end
      in
      let outcome =
        match Runner.run ~domains ~on_result ~store spec with
        | Ok o -> o
        | Error e ->
          Store.close store;
          exit_err (Runner.error_to_string e)
      in
      Store.close store;
      Format.printf "@.%a@." Summary.pp outcome.Runner.results;
      Format.printf
        "campaign: %d jobs, executed %d, skipped %d (resume), ok %d, failed \
         %d, timeout %d -> %s@."
        total outcome.Runner.executed outcome.Runner.skipped outcome.Runner.ok
        outcome.Runner.failed outcome.Runner.timed_out out;
      if outcome.Runner.failed + outcome.Runner.timed_out > 0 then exit 3
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a circuits x methods x seeds x module-sizes sweep over a \
             domain pool with a resumable JSONL result store.")
    Term.(
      const run $ spec_file
      $ csv "circuits" ~doc:"Comma-separated built-in circuit names."
      $ csv "methods" ~doc:"Comma-separated methods (evolution, standard, ...)."
      $ csv "seeds" ~doc:"Comma-separated integer grid seeds."
      $ csv "module-sizes"
          ~doc:"Comma-separated target module sizes; 'default' = estimated."
      $ generations $ timeout $ out $ domains $ fresh $ quiet)

(* ------------------------------------------------------------------ *)
(* serve / client / serve-smoke: the resident partition service        *)
(* ------------------------------------------------------------------ *)

module Server = Iddq_server.Server
module Client = Iddq_server.Client
module Protocol = Iddq_server.Protocol
module Json = Iddq_util.Json

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Per-request wall-clock budget; a request past it is answered \
                with a budget_exceeded error.")
  in
  let max_frame =
    Arg.(
      value
      & opt int Iddq_server.Frame.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Frame payload cap; a frame declaring more closes the \
                connection.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains executing requests (min 1).")
  in
  let max_pipeline =
    Arg.(
      value & opt int 8
      & info [ "max-pipeline" ] ~docv:"N"
          ~doc:"Per-connection in-flight request cap; requests beyond it are \
                answered with an overloaded error.")
  in
  let max_queue =
    Arg.(
      value & opt int 256
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Server-wide pending-request cap; requests beyond it are \
                answered with an overloaded error.")
  in
  let cache_entries =
    Arg.(
      value
      & opt int Iddq_server.Cache.default_max_entries
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Session-cache bound per table (circuits, characterizations, \
                vector sets, diagnoses, test sets); least-recently-used \
                entries are evicted beyond it.")
  in
  let run socket budget max_frame workers max_pipeline max_queue cache_entries
      =
    match
      Server.create ~socket ~max_frame ~workers ~max_pipeline ~max_queue
        ?budget ~cache_entries ()
    with
    | Error e -> exit_err (Server.create_error_to_string e)
    | Ok srv ->
      Format.printf "iddq_synth: serving on %s@." socket;
      Format.print_flush ();
      Server.run srv;
      Format.printf "iddq_synth: server stopped@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident partition service: a daemon speaking \
             length-prefixed JSON over a Unix-domain socket, with a session \
             cache keyed by circuit content hash.")
    Term.(
      const run $ socket_arg $ budget $ max_frame $ workers $ max_pipeline
      $ max_queue $ cache_entries)

let client_cmd =
  let run socket =
    match Client.connect ~socket with
    | Error e -> exit_err e
    | Ok cl ->
      let rec loop () =
        match In_channel.input_line stdin with
        | None -> ()
        | Some line when String.trim line = "" -> loop ()
        | Some line -> begin
          match Json.parse line with
          | Error e -> exit_err (Printf.sprintf "bad request JSON: %s" e)
          | Ok j -> begin
            Client.send cl j;
            match Client.recv cl with
            | Error e -> exit_err e
            | Ok resp ->
              print_endline (Json.to_string resp);
              flush stdout;
              loop ()
          end
        end
      in
      loop ();
      Client.close cl
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send requests to a running service: one JSON request per stdin \
             line, one JSON response per stdout line.")
    Term.(const run $ socket_arg)

let serve_smoke_cmd =
  let run () =
    let fail fmt =
      Format.kasprintf (fun s -> exit_err ("serve-smoke: " ^ s)) fmt
    in
    let step s = if Sys.getenv_opt "IDDQ_SMOKE_TRACE" <> None then
        (Printf.eprintf "serve-smoke: %s\n" s; flush stderr)
    in
    let check what = function
      | Ok v -> v
      | Error e -> fail "%s: %s" what e
    in
    let str_field key payload =
      match Option.bind (Json.member key payload) Json.to_str with
      | Some s -> s
      | None -> fail "response lacks string field %S" key
    in
    let counter key payload =
      match
        Option.bind (Json.member "counters" payload) (fun c ->
            Option.bind (Json.member key c) Json.to_int)
      with
      | Some n -> n
      | None -> fail "metrics response lacks counter %S" key
    in
    (* warm the domain machinery before counting descriptors, so only
       the server's own sockets are in the delta *)
    Domain.join (Domain.spawn (fun () -> ()));
    let fds_before = Iddq_util.Io.open_fd_count () in
    let socket = Filename.temp_file "iddq-serve-smoke" ".sock" in
    step "create";
    let srv =
      match Server.create ~socket () with
      | Ok srv -> srv
      | Error e -> fail "create: %s" (Server.create_error_to_string e)
    in
    let server_domain = Domain.spawn (fun () -> Server.run srv) in
    step "connect";
    let a = check "connect" (Client.connect ~socket) in
    (* load -> partition -> partition (cache hit) -> fault_sim -> metrics *)
    step "load";
    let load =
      check "load_circuit"
        (Client.request a
           (Protocol.Load_circuit { name = Some "C432"; bench = None }))
    in
    let handle = str_field "handle" load in
    let partition () =
      check "partition"
        (Client.request a
           (Protocol.Partition
              {
                handle;
                method_ = Pipeline.Evolution;
                seed = 42;
                module_size = None;
                require_feasible = false;
              }))
    in
    step "partition 1";
    let p1 = partition () in
    let metrics () =
      check "metrics" (Client.request a Protocol.Metrics)
    in
    step "metrics 1";
    let hits1 = counter "cache_hits" (metrics ()) in
    step "partition 2";
    let p2 = partition () in
    if Json.to_string p1 <> Json.to_string p2 then
      fail "repeated partition answers differ";
    let m2 = metrics () in
    let hits2 = counter "cache_hits" m2 in
    if hits2 <= hits1 then
      fail
        "second partition did not hit the session cache (hits %d -> %d)"
        hits1 hits2;
    step "fault_sim";
    let sim =
      check "fault_sim"
        (Client.request a
           (Protocol.Fault_sim
              {
                handle;
                method_ = Pipeline.Evolution;
                seed = 42;
                vectors = 32;
                defects = 50;
                defect_current = 2.0e-6;
              }))
    in
    if
      Option.bind (Json.member "partitioned" sim) (fun p ->
          Option.bind (Json.member "coverage" p) Json.to_float)
      = None
    then fail "fault_sim response lacks partitioned coverage";
    (* diagnose twice: the second must reuse the cached engine, and
       noiseless localization must be exact *)
    let diagnose () =
      check "diagnose"
        (Client.request a
           (Protocol.Diagnose
              {
                handle;
                method_ = Pipeline.Evolution;
                seed = 42;
                vectors = 32;
                defects = 50;
                defect_current = 2.0e-6;
                epsilon = 0.0;
                trials = 10;
                top_k = 3;
              }))
    in
    step "diagnose 1";
    let d1 = diagnose () in
    (match
       Option.bind (Json.member "top1_class_accuracy" d1) Json.to_float
     with
    | Some a when a = 1.0 -> ()
    | Some a -> fail "noiseless top-1 ambiguity accuracy %g, expected 1" a
    | None -> fail "diagnose response lacks top1_class_accuracy");
    let hits_d1 = counter "cache_hits" (metrics ()) in
    step "diagnose 2";
    let d2 = diagnose () in
    if Json.to_string d1 <> Json.to_string d2 then
      fail "repeated diagnose answers differ";
    let hits_d2 = counter "cache_hits" (metrics ()) in
    if hits_d2 <= hits_d1 then
      fail "second diagnose did not hit the session cache (hits %d -> %d)"
        hits_d1 hits_d2;
    (* a second client misbehaving must not disturb the first: a
       malformed payload gets a structured error and the stream stays
       in sync; then it vanishes mid-frame *)
    step "client b";
    let b = check "connect(b)" (Client.connect ~socket) in
    Client.send_raw b (Iddq_server.Frame.encode_payload "{not json");
    (match Client.recv b with
    | Ok resp -> begin
      match Protocol.response_payload resp with
      | Error { Protocol.code = Protocol.Malformed_frame; _ } -> ()
      | Error e -> fail "expected malformed_frame, got %s" e.Protocol.message
      | Ok _ -> fail "malformed frame was answered with ok"
    end
    | Error e -> fail "no response to malformed frame: %s" e);
    step "metrics after malformed";
    ignore (check "metrics after malformed" (Client.request b Protocol.Metrics));
    Client.send_raw b "\x00\x00\x00\x10half a frame";
    Client.close b;
    (* the first client keeps working after b's mid-frame disconnect *)
    step "metrics after disconnect";
    ignore (counter "requests" (metrics ()));
    (* campaign submit/status round trip *)
    step "campaign submit";
    let submit =
      check "campaign_submit"
        (Client.request a
           (Protocol.Campaign_submit
              {
                spec = "circuits = C17\nmethods = standard\nseeds = 1\n";
                domains = 1;
              }))
    in
    let campaign = str_field "campaign" submit in
    let rec poll tries =
      if tries = 0 then fail "campaign %s did not finish" campaign;
      let st =
        check "campaign_status"
          (Client.request a (Protocol.Campaign_status { campaign }))
      in
      match str_field "state" st with
      | "running" ->
        Unix.sleepf 0.05;
        poll (tries - 1)
      | "done" -> ()
      | other -> fail "campaign %s: %s" campaign other
    in
    step "campaign poll";
    poll 200;
    step "shutdown";
    ignore
      (check "shutdown" (Client.request a Protocol.Shutdown));
    Client.close a;
    step "join server";
    Domain.join server_domain;
    (match (fds_before, Iddq_util.Io.open_fd_count ()) with
    | Some before, Some after when after > before ->
      fail "descriptor leak: %d open before, %d after" before after
    | _ -> ());
    if Sys.file_exists socket then fail "socket file %s left behind" socket;
    print_endline "serve-smoke: PASS"
  in
  Cmd.v
    (Cmd.info "serve-smoke"
       ~doc:"End-to-end service check: scripted client through load, \
             partition (twice, asserting a session-cache hit), fault_sim, \
             diagnose (twice, asserting the engine is cached and noiseless \
             localization is exact), a misbehaving second client, campaign, \
             shutdown; verifies no descriptor leaks.")
    Term.(const run $ const ())

let loadgen_cmd =
  let socket_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Socket of a running server to drive.  Default: host a \
                private server on a temporary socket for the duration of \
                the run.")
  in
  let clients =
    Arg.(
      value & opt int 64
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let requests =
    Arg.(
      value & opt int 20
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let pipeline =
    Arg.(
      value & opt int 1
      & info [ "pipeline" ] ~docv:"N"
          ~doc:"Client-side in-flight requests per connection.  Keep at or \
                below the server's --max-pipeline for a shed-free run.")
  in
  let floor =
    Arg.(
      value & opt float 0.0
      & info [ "floor" ] ~docv:"RPS"
          ~doc:"Fail unless throughput reaches this many responses per \
                second.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the measured totals as JSON (atomic replace).")
  in
  let run socket clients requests pipeline floor out seed =
    let fail fmt = Format.kasprintf (fun s -> exit_err ("loadgen: " ^ s)) fmt in
    let hosted, socket, stop =
      match socket with
      | Some path -> (false, path, fun () -> ())
      | None ->
        let path = Filename.temp_file "iddq-loadgen" ".sock" in
        let srv =
          match Server.create ~socket:path () with
          | Ok srv -> srv
          | Error e -> fail "%s" (Server.create_error_to_string e)
        in
        let d = Domain.spawn (fun () -> Server.run srv) in
        ( true,
          path,
          fun () ->
            Server.shutdown srv;
            Domain.join d )
    in
    let cfg =
      Iddq_server.Loadgen.config ~socket ~clients ~requests ~pipeline ~seed ()
    in
    let result = Iddq_server.Loadgen.run cfg in
    stop ();
    if hosted && Sys.file_exists socket then Sys.remove socket;
    match result with
    | Error e -> exit_err e
    | Ok totals ->
      Format.printf "%a@." Iddq_server.Loadgen.pp_totals totals;
      Option.iter
        (fun path ->
          match
            Iddq_util.Io.write_file_atomic path
              (Json.to_string (Iddq_server.Loadgen.totals_json cfg totals))
          with
          | Ok () -> Format.printf "wrote %s@." path
          | Error e ->
            fail "writing %s: %s" path (Io_error.to_string e))
        out;
      if totals.Iddq_server.Loadgen.failed > 0 then
        fail "%d requests failed" totals.Iddq_server.Loadgen.failed;
      if totals.Iddq_server.Loadgen.overloaded > 0 then
        fail "%d requests shed (pipeline above the server's depth limit?)"
          totals.Iddq_server.Loadgen.overloaded;
      if totals.Iddq_server.Loadgen.throughput < floor then
        fail "throughput %.1f req/s below the %.1f req/s floor"
          totals.Iddq_server.Loadgen.throughput floor;
      print_endline "loadgen: PASS"
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a server with N concurrent synthetic clients (a mixed \
             characterize/partition/diagnose/campaign-status request \
             stream) and report throughput and latency percentiles.")
    Term.(
      const run $ socket_opt $ clients $ requests $ pipeline $ floor $ out
      $ seed_arg)

(* One list drives both the dispatch table and the no-args synopsis, so
   they cannot drift; the cli-usage test parses the "commands:" line
   and compares it against the documented set. *)
let commands =
  [
    partition_cmd;
    compare_cmd;
    simulate_cmd;
    diagnose_cmd;
    atpg_cmd;
    testset_cmd;
    dump_library_cmd;
    stats_cmd;
    generate_cmd;
    campaign_cmd;
    serve_cmd;
    client_cmd;
    serve_smoke_cmd;
    loadgen_cmd;
  ]

let usage_term =
  Term.(
    const (fun () ->
        print_endline "usage: iddq_synth COMMAND [OPTIONS]";
        print_endline
          ("commands: " ^ String.concat " " (List.map Cmd.name commands));
        print_endline "run 'iddq_synth COMMAND --help' for details";
        Stdlib.exit 2)
    $ const ())

let () =
  let info =
    Cmd.info "iddq_synth" ~version:"0.1.0"
      ~doc:"Synthesis of IDDQ-testable circuits with built-in current sensors."
  in
  exit (Cmd.eval (Cmd.group ~default:usage_term info commands))
