# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-quick bench-smoke campaign-smoke faultsim-smoke kernels-smoke diagnose-smoke testset-smoke fuzz-smoke serve-smoke loadgen-smoke ci examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Every table, figure, ablation and micro-benchmark (several minutes).
bench:
	dune exec bench/main.exe

# Table 1 on a small stand-in only.
bench-quick:
	dune exec bench/main.exe -- quick

# Delta-vs-full evaluation accounting: same annealing run through both
# evaluators, Metrics counters for each, identical-final-cost and
# >= 5x fewer evaluate-equivalents checks (seconds).
bench-smoke:
	dune exec bench/main.exe -- smoke

# Checkpoint/resume check: a tiny campaign run twice against the same
# store.  The first run executes every job on a 2-domain pool; the
# second must find them all on disk and execute nothing (seconds).
# The store lives in a mktemp-derived path (a fixed /tmp name made
# concurrent runs resume from each other's half-written stores) and is
# cleaned up on any exit via trap.
campaign-smoke:
	@store=$$(mktemp /tmp/iddq-campaign-smoke.XXXXXX.jsonl) && \
	trap 'rm -f "$$store"' EXIT INT TERM && \
	rm -f "$$store" && \
	dune exec bin/iddq_synth.exe -- campaign \
	  --circuits C17,C432 --methods evolution,standard --seeds 1,2 \
	  --generations 40 --domains 2 --out "$$store" && \
	dune exec bin/iddq_synth.exe -- campaign \
	  --circuits C17,C432 --methods evolution,standard --seeds 1,2 \
	  --generations 40 --domains 2 --out "$$store" \
	  | grep -q "executed 0, skipped 8"
	@echo "campaign-smoke: resume executed 0 jobs - PASS"

# Packed fault-simulation gate: the 64-way engine must produce a
# detection matrix identical to the scalar oracle and be >= 10x
# faster on the >= 1k-gate circuits; numbers land in
# BENCH_faultsim.json (seconds).
faultsim-smoke:
	dune exec bench/main.exe -- faultsim | grep -q "PASS >= 10x"
	@echo "faultsim-smoke: packed engine >= 10x, matrices identical - PASS"

# Flat-kernel gate: fault-simulate a generated 100k-gate circuit with
# the flat CSR + Bigarray engine; its detection matrix must be
# bit-identical to the boxed-path oracle, >= 3x faster, above the
# gates*vectors/s floor, and the incremental c3 totals must equal full
# recomputation.  Numbers land in BENCH_kernels.json (seconds).
kernels-smoke:
	dune exec bench/main.exe -- kernels | grep -q "PASS >= 3x flat, >= 2x @ 4 domains, striping >= 1.2x, alloc-free"
	@echo "kernels-smoke: flat >= 3x, 4-domain striped >= 2x, striping >= 1.2x, alloc-free, matrices identical, c3 exact - PASS"

# Diagnosis gate: signature-based localization across the ISCAS85
# stand-ins x {2,4,8,16} uniform modules.  Noiseless exact matching
# must put the true defect in its top ambiguity class on every trial,
# and with 2% measurement noise the aggregate top-3 module accuracy
# must stay >= 0.9; accuracy and diagnosability vs module count land
# in BENCH_diagnose.json (seconds).
diagnose-smoke:
	dune exec bench/main.exe -- diagnose | grep -q "PASS exact"
	@echo "diagnose-smoke: exact localization, noisy top-k >= 0.9 - PASS"

# ATPG closed-loop gate: PODEM top-up coverage must be >= the
# random-only baseline on the whole ISCAS85 grid, every minimization
# strategy must preserve the full set's coverage, the minimized set
# must be strictly smaller on >= 3 of the 4 circuits with refined <=
# greedy everywhere, and a re-run under the fixed seed must reproduce
# the set exactly; vectors before/after, per-strategy runtimes and the
# c4/test-time delta land in BENCH_testset.json (a couple of minutes).
testset-smoke:
	dune exec bench/main.exe -- testset | grep -q "PASS coverage kept"
	@echo "testset-smoke: coverage kept, sets shrink, deterministic - PASS"

# Bounded mutation-fuzz pass (fixed seed): >= 10k corrupted variants
# of valid files through all five parsers plus the JSONL store; every
# outcome must be Ok/Error -- no exception, no descriptor leak
# (seconds).
fuzz-smoke:
	dune exec fuzz/fuzz_main.exe -- --iterations 1500 --seed 62498 \
	  | grep -q "fuzz-smoke: PASS"
	@echo "fuzz-smoke: no crashes, no fd leaks - PASS"

# Resident-service check: an in-process daemon on a temp socket, a
# scripted client through load -> partition -> partition (asserting a
# session-cache hit via the Metrics counters) -> fault_sim -> campaign
# -> shutdown, plus a second client sending a malformed frame and
# disconnecting mid-frame without disturbing the first; descriptor
# population must be identical before and after (seconds).
serve-smoke:
	dune exec bin/iddq_synth.exe -- serve-smoke \
	  | grep -q "serve-smoke: PASS"
	@echo "serve-smoke: session cache hit, fault isolation, no fd leaks - PASS"

# Event-loop load gate: a self-hosted server driven by 64 concurrent
# synthetic clients (mixed characterize/partition/diagnose/
# campaign-status/metrics stream, 20 requests each).  Every request
# must be answered, none shed (pipeline depth 1 is under the server's
# limit), and throughput must clear a floor conservative enough for
# the single-core container; throughput and p50/p95/p99 latency land
# in BENCH_serve.json (seconds).
loadgen-smoke:
	dune exec bin/iddq_synth.exe -- loadgen \
	  --clients 64 --requests 20 --pipeline 1 --floor 100 \
	  --out BENCH_serve.json \
	  | grep -q "loadgen: PASS"
	@echo "loadgen-smoke: 64 clients, zero failed/shed, floor cleared - PASS"

# What a per-PR check runs: build, tests, evaluation-count smoke,
# campaign resume smoke, packed fault-sim speedup gate, flat-kernel
# gate, diagnosis accuracy gate, mutation fuzz, resident-service
# smoke, event-loop load gate.
ci: build test bench-smoke campaign-smoke faultsim-smoke kernels-smoke diagnose-smoke testset-smoke fuzz-smoke serve-smoke loadgen-smoke

examples:
	dune exec examples/quickstart.exe
	dune exec examples/iscas_c17.exe
	dune exec examples/array_shape.exe
	dune exec examples/defect_coverage.exe
	dune exec examples/drive_selection.exe
	dune exec examples/testability.exe

doc:
	dune build @doc

clean:
	dune clean
