# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-quick bench-smoke campaign-smoke faultsim-smoke fuzz-smoke serve-smoke ci examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Every table, figure, ablation and micro-benchmark (several minutes).
bench:
	dune exec bench/main.exe

# Table 1 on a small stand-in only.
bench-quick:
	dune exec bench/main.exe -- quick

# Delta-vs-full evaluation accounting: same annealing run through both
# evaluators, Metrics counters for each, identical-final-cost and
# >= 5x fewer evaluate-equivalents checks (seconds).
bench-smoke:
	dune exec bench/main.exe -- smoke

# Checkpoint/resume check: a tiny campaign run twice against the same
# store.  The first run executes every job on a 2-domain pool; the
# second must find them all on disk and execute nothing (seconds).
campaign-smoke:
	rm -f /tmp/iddq-campaign-smoke.jsonl
	dune exec bin/iddq_synth.exe -- campaign \
	  --circuits C17,C432 --methods evolution,standard --seeds 1,2 \
	  --generations 40 --domains 2 --out /tmp/iddq-campaign-smoke.jsonl
	dune exec bin/iddq_synth.exe -- campaign \
	  --circuits C17,C432 --methods evolution,standard --seeds 1,2 \
	  --generations 40 --domains 2 --out /tmp/iddq-campaign-smoke.jsonl \
	  | grep -q "executed 0, skipped 8"
	@rm -f /tmp/iddq-campaign-smoke.jsonl
	@echo "campaign-smoke: resume executed 0 jobs - PASS"

# Packed fault-simulation gate: the 64-way engine must produce a
# detection matrix identical to the scalar oracle and be >= 10x
# faster on the >= 1k-gate circuits; numbers land in
# BENCH_faultsim.json (seconds).
faultsim-smoke:
	dune exec bench/main.exe -- faultsim | grep -q "PASS >= 10x"
	@echo "faultsim-smoke: packed engine >= 10x, matrices identical - PASS"

# Bounded mutation-fuzz pass (fixed seed): >= 10k corrupted variants
# of valid files through all five parsers plus the JSONL store; every
# outcome must be Ok/Error -- no exception, no descriptor leak
# (seconds).
fuzz-smoke:
	dune exec fuzz/fuzz_main.exe -- --iterations 1500 --seed 62498 \
	  | grep -q "fuzz-smoke: PASS"
	@echo "fuzz-smoke: no crashes, no fd leaks - PASS"

# Resident-service check: an in-process daemon on a temp socket, a
# scripted client through load -> partition -> partition (asserting a
# session-cache hit via the Metrics counters) -> fault_sim -> campaign
# -> shutdown, plus a second client sending a malformed frame and
# disconnecting mid-frame without disturbing the first; descriptor
# population must be identical before and after (seconds).
serve-smoke:
	dune exec bin/iddq_synth.exe -- serve-smoke \
	  | grep -q "serve-smoke: PASS"
	@echo "serve-smoke: session cache hit, fault isolation, no fd leaks - PASS"

# What a per-PR check runs: build, tests, evaluation-count smoke,
# campaign resume smoke, packed fault-sim speedup gate, mutation fuzz,
# resident-service smoke.
ci: build test bench-smoke campaign-smoke faultsim-smoke fuzz-smoke serve-smoke

examples:
	dune exec examples/quickstart.exe
	dune exec examples/iscas_c17.exe
	dune exec examples/array_shape.exe
	dune exec examples/defect_coverage.exe
	dune exec examples/drive_selection.exe
	dune exec examples/testability.exe

doc:
	dune build @doc

clean:
	dune clean
