module Coverage = Iddq_defects.Coverage
module Fault = Iddq_defects.Fault
module Variants = Iddq_bic.Variants
module Sensor = Iddq_bic.Sensor
module Test_time = Iddq_bic.Test_time
module Technology = Iddq_celllib.Technology
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Library = Iddq_celllib.Library
module Pattern_gen = Iddq_patterns.Pattern_gen
module Rng = Iddq_util.Rng

let c17 = Iscas.c17 ()
let ch = Charac.make ~library:Library.default c17
let node name = Option.get (Circuit.node_id_of_name c17 name)
let partition () = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |]

let some_faults () =
  [
    { Fault.fault = Fault.Gate_oxide_short (node "10", true); defect_current = 2e-6 };
    { Fault.fault = Fault.Gate_oxide_short (node "23", false); defect_current = 2e-6 };
    { Fault.fault = Fault.Floating_gate (node "16"); defect_current = 2e-6 };
    (* below threshold: undetectable however often activated *)
    { Fault.fault = Fault.Floating_gate (node "19"); defect_current = 1e-9 };
  ]

let test_matrix_basics () =
  let m =
    Coverage.detection_matrix (partition ())
      ~vectors:(Pattern_gen.exhaustive c17)
      ~faults:(some_faults ())
  in
  Alcotest.(check int) "faults" 4 (Coverage.num_faults m);
  Alcotest.(check int) "detectable" 3 (Coverage.num_detectable m)

let test_curve_monotone_and_final () =
  let m =
    Coverage.detection_matrix (partition ())
      ~vectors:(Pattern_gen.exhaustive c17)
      ~faults:(some_faults ())
  in
  let curve = Coverage.coverage_curve m in
  Alcotest.(check int) "length = vectors" 32 (Array.length curve);
  for i = 1 to Array.length curve - 1 do
    Alcotest.(check bool) "monotone" true (curve.(i) >= curve.(i - 1))
  done;
  Alcotest.(check (float 1e-9)) "final = detectable fraction" 0.75
    curve.(Array.length curve - 1)

let test_first_detection_consistent () =
  let m =
    Coverage.detection_matrix (partition ())
      ~vectors:(Pattern_gen.exhaustive c17)
      ~faults:(some_faults ())
  in
  let first = Coverage.first_detection m in
  Alcotest.(check int) "per fault" 4 (Array.length first);
  (* the undetectable one is -1, a floating gate at 2 uA fires on the
     very first vector *)
  Alcotest.(check int) "undetectable" (-1) first.(3);
  Alcotest.(check int) "floating gate immediate" 0 first.(2)

let test_compaction_preserves_coverage () =
  let rng = Rng.create 3 in
  let circuit = Iscas.c432_like () in
  let ch = Charac.make ~library:Library.default circuit in
  let n = Charac.num_gates ch in
  let p = Partition.create ch ~assignment:(Array.init n (fun g -> g mod 2)) in
  let faults =
    Fault.random_population ~rng circuit ~count:120 ~defect_current:2e-6
  in
  let vectors = Pattern_gen.random ~rng circuit ~count:96 in
  let m = Coverage.detection_matrix p ~vectors ~faults in
  let kept = Coverage.compact m in
  Alcotest.(check bool)
    (Printf.sprintf "compacted %d -> %d vectors" 96 (Array.length kept))
    true
    (Array.length kept < 96 && Array.length kept > 0);
  let full = Coverage.coverage_of_selection m (Array.init 96 Fun.id) in
  let compacted = Coverage.coverage_of_selection m kept in
  Alcotest.(check (float 1e-9)) "coverage preserved" full compacted;
  (* kept indices are sorted and within range *)
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "range" true (v >= 0 && v < 96);
      if i > 0 then Alcotest.(check bool) "sorted" true (v > kept.(i - 1)))
    kept

let test_empty_faults () =
  let m =
    Coverage.detection_matrix (partition ())
      ~vectors:(Pattern_gen.exhaustive c17)
      ~faults:[]
  in
  Alcotest.(check int) "compact keeps nothing" 0 (Array.length (Coverage.compact m));
  Alcotest.(check (float 0.0)) "vacuous" 1.0
    (Coverage.coverage_of_selection m [||])

(* ------------- selection / sentinel edge behaviour ------------- *)

let exhaustive_matrix () =
  Coverage.detection_matrix (partition ())
    ~vectors:(Pattern_gen.exhaustive c17)
    ~faults:(some_faults ())

(* The naive model: a fault is covered iff any selected vector detects
   it, read bit by bit through [detects] — an independent path from
   the packed mask + intersects implementation. *)
let naive_coverage m selection =
  let nf = Coverage.num_faults m in
  if nf = 0 then 1.0
  else begin
    let hit = ref 0 in
    for f = 0 to nf - 1 do
      if Array.exists (fun v -> Coverage.detects m ~fault:f ~vector:v) selection
      then incr hit
    done;
    float_of_int !hit /. float_of_int nf
  end

let test_selection_duplicates_and_order () =
  let m = exhaustive_matrix () in
  let canonical = Coverage.coverage_of_selection m [| 0; 3; 7 |] in
  Alcotest.(check (float 0.0)) "duplicates and order are irrelevant" canonical
    (Coverage.coverage_of_selection m [| 7; 3; 0; 3; 7; 7; 0 |]);
  Alcotest.(check (float 0.0)) "matches the naive model"
    (naive_coverage m [| 0; 3; 7 |])
    canonical

let test_selection_out_of_range () =
  let m = exhaustive_matrix () in
  let raises sel =
    match Coverage.coverage_of_selection m sel with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "index = num_vectors raises" true (raises [| 32 |]);
  Alcotest.(check bool) "negative index raises" true (raises [| -1 |]);
  Alcotest.(check bool) "valid prefix does not save it" true
    (raises [| 0; 1; 32 |])

let qcheck_selection_matches_naive =
  let m = exhaustive_matrix () in
  QCheck.Test.make
    ~name:"coverage_of_selection = naive model under duplicates and any order"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 0 48) (int_range 0 31))
    (fun sel ->
      let sel = Array.of_list sel in
      Coverage.coverage_of_selection m sel = naive_coverage m sel)

let qcheck_first_detection_matches_naive =
  QCheck.Test.make
    ~name:"first_detection = naive earliest-vector scan with -1 sentinel"
    ~count:25
    QCheck.(pair (int_range 1 80) (int_range 1 100000))
    (fun (nv, seed) ->
      let rng = Rng.create seed in
      let circuit = Iscas.c432_like () in
      let ch = Charac.make ~library:Library.default circuit in
      let n = Charac.num_gates ch in
      let p =
        Partition.create ch ~assignment:(Array.init n (fun g -> g mod 3))
      in
      let faults =
        (* a mixed population plus guaranteed-silent defects, so the
           -1 sentinel is always exercised *)
        Fault.random_population ~rng circuit ~count:20 ~defect_current:2e-6
        @ Fault.random_population ~rng circuit ~count:5 ~defect_current:1e-12
      in
      let vectors = Pattern_gen.random ~rng circuit ~count:nv in
      let m = Coverage.detection_matrix p ~vectors ~faults in
      let naive f =
        let rec scan v =
          if v >= nv then -1
          else if Coverage.detects m ~fault:f ~vector:v then v
          else scan (v + 1)
        in
        scan 0
      in
      let first = Coverage.first_detection m in
      Array.length first = List.length faults
      && Array.for_all Fun.id (Array.mapi (fun f got -> got = naive f) first))

(* -------------------- sensor variants -------------------- *)

let test_variant_identity () =
  let t = Technology.default in
  Alcotest.(check bool) "bypass is baseline" true
    (Variants.technology_for t Variants.Bypass_mos = t)

let sensor_for tech =
  Sensor.size ~technology:tech ~peak_current:0.02 ~module_rail_capacitance:1e-11

let test_pn_junction_tradeoff () =
  let base = Technology.default in
  let pn = Variants.technology_for base Variants.Pn_junction in
  Alcotest.(check (result unit string)) "still valid" (Ok ())
    (Technology.validate pn);
  let s_base = sensor_for base and s_pn = sensor_for pn in
  (* no bypass: much smaller area, much larger rail perturbation *)
  Alcotest.(check bool) "smaller area" true (s_pn.Sensor.area < s_base.Sensor.area);
  Alcotest.(check bool) "bigger rail drop" true
    (pn.Technology.rail_budget > base.Technology.rail_budget);
  Alcotest.(check bool) "faster settling" true
    (Test_time.settling pn s_pn < Test_time.settling base s_pn)

let test_proportional_tradeoff () =
  let base = Technology.default in
  let prop = Variants.technology_for base Variants.Proportional in
  Alcotest.(check (result unit string)) "still valid" (Ok ())
    (Technology.validate prop);
  Alcotest.(check bool) "bigger detection front-end" true
    (prop.Technology.sensor_area_fixed > base.Technology.sensor_area_fixed);
  Alcotest.(check bool) "cheaper conductance" true
    (prop.Technology.sensor_area_conductance
    < base.Technology.sensor_area_conductance);
  Alcotest.(check bool) "half the settling" true
    (prop.Technology.settling_decades < base.Technology.settling_decades)

let test_variants_all_named () =
  Alcotest.(check int) "three variants" 3 (List.length Variants.all);
  List.iter
    (fun v -> Alcotest.(check bool) "non-empty name" true (Variants.to_string v <> ""))
    Variants.all

let test_library_with_technology () =
  let lib = Library.default in
  let pn = Variants.technology_for (Library.technology lib) Variants.Pn_junction in
  match Library.with_technology lib pn with
  | Ok lib' ->
    Alcotest.(check (float 0.0)) "technology swapped" 0.5
      (Library.technology lib').Technology.rail_budget
  | Error e -> Alcotest.failf "with_technology: %s" e

let test_module_components () =
  (* output cones are connected; a scattered module is not *)
  let p_cones =
    let a = Array.make 6 0 in
    (* {10,16,22} vs {11,19,23} by name *)
    Array.iteri
      (fun g _ ->
        let name = Circuit.node_name c17 (Circuit.node_of_gate c17 g) in
        if List.mem name [ "11"; "19"; "23" ] then a.(g) <- 1)
      a;
    Partition.create ch ~assignment:a
  in
  Alcotest.(check int) "cone connected" 1 (Partition.module_components p_cones 0);
  (* {10, 23} have no undirected edge between them *)
  let p_scatter =
    let a = [| 0; 1; 1; 1; 1; 0 |] in
    Partition.create ch ~assignment:a
  in
  Alcotest.(check int) "scattered module" 2
    (Partition.module_components p_scatter 0)

let tests =
  [
    Alcotest.test_case "matrix basics" `Quick test_matrix_basics;
    Alcotest.test_case "curve monotone" `Quick test_curve_monotone_and_final;
    Alcotest.test_case "first detection" `Quick test_first_detection_consistent;
    Alcotest.test_case "compaction" `Quick test_compaction_preserves_coverage;
    Alcotest.test_case "empty faults" `Quick test_empty_faults;
    Alcotest.test_case "selection duplicates/order" `Quick
      test_selection_duplicates_and_order;
    Alcotest.test_case "selection out of range" `Quick
      test_selection_out_of_range;
    QCheck_alcotest.to_alcotest qcheck_selection_matches_naive;
    QCheck_alcotest.to_alcotest qcheck_first_detection_matches_naive;
    Alcotest.test_case "variant identity" `Quick test_variant_identity;
    Alcotest.test_case "pn junction tradeoff" `Quick test_pn_junction_tradeoff;
    Alcotest.test_case "proportional tradeoff" `Quick test_proportional_tradeoff;
    Alcotest.test_case "variants named" `Quick test_variants_all_named;
    Alcotest.test_case "library with technology" `Quick
      test_library_with_technology;
    Alcotest.test_case "module components" `Quick test_module_components;
  ]
