module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate
module Iscas = Iddq_netlist.Iscas
module Graph_algo = Iddq_netlist.Graph_algo
module Logic_sim = Iddq_patterns.Logic_sim

let test_c17_structure () =
  let c = Iscas.c17 () in
  Alcotest.(check int) "inputs" 5 (Circuit.num_inputs c);
  Alcotest.(check int) "outputs" 2 (Circuit.num_outputs c);
  Alcotest.(check int) "gates" 6 (Circuit.num_gates c);
  Alcotest.(check int) "depth" 3 (Graph_algo.depth c);
  Circuit.iter_gates c (fun _ kind _ ->
      Alcotest.(check bool) "all NAND" true (Gate.equal kind Gate.Nand))

let test_c17_function () =
  (* C17: out22 = NAND(g10, g16), out23 = NAND(g16, g19) with
     g10 = NAND(i1,i3), g11 = NAND(i3,i6), g16 = NAND(i2,g11),
     g19 = NAND(g11,i7).  Check against a reference evaluation over
     all 32 input vectors. *)
  let c = Iscas.c17 () in
  let reference i1 i2 i3 i6 i7 =
    let nand a b = not (a && b) in
    let g10 = nand i1 i3 and g11 = nand i3 i6 in
    let g16 = nand i2 g11 in
    let g19 = nand g11 i7 in
    (nand g10 g16, nand g16 g19)
  in
  for v = 0 to 31 do
    let bit i = (v lsr i) land 1 = 1 in
    let inputs = [| bit 0; bit 1; bit 2; bit 3; bit 4 |] in
    let values = Logic_sim.eval c inputs in
    let out = Logic_sim.output_values c values in
    (* input order in the netlist: 1, 2, 3, 6, 7 *)
    let e22, e23 = reference inputs.(0) inputs.(1) inputs.(2) inputs.(3) inputs.(4) in
    Alcotest.(check bool) (Printf.sprintf "out22 v=%d" v) e22 out.(0);
    Alcotest.(check bool) (Printf.sprintf "out23 v=%d" v) e23 out.(1)
  done

let test_c17_paper_names () =
  let c = Iscas.c17 () in
  Array.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exists") true
        (Circuit.node_id_of_name c name <> None))
    Iscas.c17_paper_gate_names;
  Alcotest.(check int) "six paper gates" 6
    (Array.length Iscas.c17_paper_gate_names)

let check_suite_entry name c ~inputs ~outputs ~gates ~depth =
  Alcotest.(check string) (name ^ " name") name (Circuit.name c);
  Alcotest.(check int) (name ^ " inputs") inputs (Circuit.num_inputs c);
  Alcotest.(check int) (name ^ " outputs") outputs (Circuit.num_outputs c);
  Alcotest.(check int) (name ^ " gates") gates (Circuit.num_gates c);
  Alcotest.(check int) (name ^ " depth") depth (Graph_algo.depth c);
  Alcotest.(check (result unit string)) (name ^ " valid") (Ok ())
    (Circuit.validate c)

let test_suite_characteristics () =
  check_suite_entry "C432" (Iscas.c432_like ()) ~inputs:36 ~outputs:7 ~gates:160
    ~depth:17;
  check_suite_entry "C1908" (Iscas.c1908_like ()) ~inputs:33 ~outputs:25
    ~gates:880 ~depth:40;
  check_suite_entry "C2670" (Iscas.c2670_like ()) ~inputs:233 ~outputs:140
    ~gates:1193 ~depth:32;
  check_suite_entry "C3540" (Iscas.c3540_like ()) ~inputs:50 ~outputs:22
    ~gates:1669 ~depth:47

let test_suite_large_members () =
  check_suite_entry "C5315" (Iscas.c5315_like ()) ~inputs:178 ~outputs:123
    ~gates:2307 ~depth:49;
  check_suite_entry "C6288" (Iscas.c6288_like ()) ~inputs:32 ~outputs:32
    ~gates:2416 ~depth:124;
  check_suite_entry "C7552" (Iscas.c7552_like ()) ~inputs:207 ~outputs:108
    ~gates:3512 ~depth:43

let test_suite_deterministic () =
  let a = Iscas.c1908_like () and b = Iscas.c1908_like () in
  Alcotest.(check string) "identical stand-ins"
    (Iddq_netlist.Bench_io.to_string a)
    (Iddq_netlist.Bench_io.to_string b)

let test_table1_suite_order () =
  let names = List.map fst (Iscas.table1_suite ()) in
  Alcotest.(check (list string)) "publication order"
    [ "C1908"; "C2670"; "C3540"; "C5315"; "C6288"; "C7552" ]
    names

let test_by_name () =
  (match Iscas.by_name "c432" with
  | Some c ->
    Alcotest.(check string) "case-insensitive lookup"
      (Iddq_netlist.Bench_io.to_string (Iscas.c432_like ()))
      (Iddq_netlist.Bench_io.to_string c)
  | None -> Alcotest.fail "c432 should resolve");
  Alcotest.(check bool) "unknown name" true (Iscas.by_name "C9999" = None)

let test_names_catalog () =
  Alcotest.(check int) "eleven circuits" 11 (List.length Iscas.names);
  Alcotest.(check bool) "C17 listed" true (List.mem "C17" Iscas.names);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " resolves") true (Iscas.by_name n <> None))
    Iscas.names

let tests =
  [
    Alcotest.test_case "c17 structure" `Quick test_c17_structure;
    Alcotest.test_case "c17 function" `Quick test_c17_function;
    Alcotest.test_case "c17 paper gate names" `Quick test_c17_paper_names;
    Alcotest.test_case "suite characteristics" `Quick test_suite_characteristics;
    Alcotest.test_case "suite large members" `Slow test_suite_large_members;
    Alcotest.test_case "suite deterministic" `Quick test_suite_deterministic;
    Alcotest.test_case "table1 order" `Quick test_table1_suite_order;
    Alcotest.test_case "by_name lookup" `Quick test_by_name;
    Alcotest.test_case "names catalog" `Slow test_names_catalog;
  ]
