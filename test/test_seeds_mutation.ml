module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Constraints = Iddq_core.Constraints
module Seeds = Iddq_evolution.Seeds
module Part_iddq = Iddq_evolution.Part_iddq
module Es = Iddq_evolution.Es
module Iscas = Iddq_netlist.Iscas
module Generator = Iddq_netlist.Generator
module Library = Iddq_celllib.Library
module Rng = Iddq_util.Rng

let make circuit = Charac.make ~library:Library.default circuit

let test_target_module_size () =
  let ch = make (Iscas.c432_like ()) in
  let s = Seeds.target_module_size ch in
  Alcotest.(check bool)
    (Printf.sprintf "size %d clipped to the circuit" s)
    true
    (s >= 1 && s <= Charac.num_gates ch);
  let tighter = Seeds.target_module_size ~margin:0.3 ch in
  Alcotest.(check bool) "smaller margin, smaller size" true (tighter <= s)

let test_chain_partition_covers () =
  let rng = Rng.create 5 in
  let ch = make (Iscas.c432_like ()) in
  let p = Seeds.chain_partition ~rng ~module_size:20 ch in
  let total =
    List.fold_left (fun acc m -> acc + Partition.size p m) 0
      (Partition.module_ids p)
  in
  Alcotest.(check int) "covers all gates" (Charac.num_gates ch) total;
  List.iter
    (fun m ->
      Alcotest.(check bool) "size within cap" true (Partition.size p m <= 20))
    (Partition.module_ids p);
  Alcotest.(check (result unit string)) "consistent" (Ok ())
    (Partition.check_consistent p)

let test_chain_partition_module_count () =
  let rng = Rng.create 5 in
  let ch = make (Iscas.c432_like ()) in
  let p = Seeds.chain_partition ~rng ~module_size:20 ch in
  (* 160 gates at cap 20: exactly 8 modules *)
  Alcotest.(check int) "ceil(n/size) modules" 8 (Partition.num_modules p)

let test_population_count () =
  let rng = Rng.create 5 in
  let ch = make (Iscas.c17 ()) in
  let pop = Seeds.population ~rng ~module_size:3 ~count:5 ch in
  Alcotest.(check int) "five partitions" 5 (List.length pop)

let test_mutate_preserves_invariants () =
  let rng = Rng.create 5 in
  let ch = make (Iscas.c432_like ()) in
  let p = Seeds.chain_partition ~rng ~module_size:20 ch in
  for _ = 1 to 50 do
    Part_iddq.mutate rng ~step:4 p
  done;
  Alcotest.(check (result unit string)) "still consistent" (Ok ())
    (Partition.check_consistent p);
  let total =
    List.fold_left (fun acc m -> acc + Partition.size p m) 0
      (Partition.module_ids p)
  in
  Alcotest.(check int) "still covers" (Charac.num_gates ch) total

let test_monte_carlo_preserves_invariants () =
  let rng = Rng.create 5 in
  let ch = make (Iscas.c432_like ()) in
  let p = Seeds.chain_partition ~rng ~module_size:20 ch in
  for _ = 1 to 25 do
    Part_iddq.monte_carlo rng p
  done;
  Alcotest.(check (result unit string)) "still consistent" (Ok ())
    (Partition.check_consistent p)

let test_mutate_single_module_noop () =
  let ch = make (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:(Array.make 6 0) in
  let rng = Rng.create 1 in
  Part_iddq.mutate rng ~step:3 p;
  Part_iddq.monte_carlo rng p;
  Alcotest.(check int) "still one module" 1 (Partition.num_modules p)

let test_optimize_improves () =
  let rng = Rng.create 42 in
  let ch = make (Iscas.c432_like ()) in
  let starts = Seeds.population ~rng ~module_size:40 ~count:3 ch in
  let start_cost =
    List.fold_left
      (fun acc p -> Stdlib.min acc (Iddq_core.Cost.evaluate p).Iddq_core.Cost.penalized)
      infinity starts
  in
  let params =
    { Es.default_params with Es.max_generations = 60; stall_generations = 60 }
  in
  let best, trace = Part_iddq.optimize ~params ~rng ~starts () in
  Alcotest.(check bool)
    (Printf.sprintf "improved %.2f -> %.2f" start_cost best.Es.cost)
    true
    (best.Es.cost <= start_cost);
  Alcotest.(check bool) "ran some generations" true (List.length trace > 0);
  Alcotest.(check (result unit string)) "result consistent" (Ok ())
    (Partition.check_consistent best.Es.solution)

let test_optimize_feasible_result () =
  let rng = Rng.create 42 in
  let ch = make (Iscas.c432_like ()) in
  let starts = Seeds.population ~rng ~count:3 ch in
  let params =
    { Es.default_params with Es.max_generations = 40; stall_generations = 40 }
  in
  let best, _ = Part_iddq.optimize ~params ~rng ~starts () in
  Alcotest.(check bool) "feasible" true (Constraints.satisfied best.Es.solution)

let qcheck_seed_feasibility =
  QCheck.Test.make
    ~name:"chain seeds at the estimated size are feasible" ~count:15
    QCheck.(int_range 1 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let circuit =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:8 ~num_outputs:4
          ~num_gates:120 ~depth:12 ()
      in
      let ch = make circuit in
      let p = Seeds.chain_partition ~rng ch in
      Constraints.satisfied p)

let tests =
  [
    Alcotest.test_case "target module size" `Quick test_target_module_size;
    Alcotest.test_case "chain partition covers" `Quick test_chain_partition_covers;
    Alcotest.test_case "chain partition count" `Quick
      test_chain_partition_module_count;
    Alcotest.test_case "population count" `Quick test_population_count;
    Alcotest.test_case "mutate invariants" `Quick test_mutate_preserves_invariants;
    Alcotest.test_case "monte carlo invariants" `Quick
      test_monte_carlo_preserves_invariants;
    Alcotest.test_case "single module noop" `Quick test_mutate_single_module_noop;
    Alcotest.test_case "optimize improves" `Slow test_optimize_improves;
    Alcotest.test_case "optimize feasible" `Slow test_optimize_feasible_result;
    QCheck_alcotest.to_alcotest qcheck_seed_feasibility;
  ]
