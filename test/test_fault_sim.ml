(* Differential tests pinning the 64-way packed IDDQ fault-simulation
   engine (Fault_sim) to the scalar vector-at-a-time oracle, on random
   circuits, partitions and fault populations. *)

module Fault_sim = Iddq_defects.Fault_sim
module Coverage = Iddq_defects.Coverage
module Fault = Iddq_defects.Fault
module Stuck_at = Iddq_defects.Stuck_at
module Iddq_sim = Iddq_defects.Iddq_sim
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Circuit = Iddq_netlist.Circuit
module Generator = Iddq_netlist.Generator
module Iscas = Iddq_netlist.Iscas
module Library = Iddq_celllib.Library
module Pattern_gen = Iddq_patterns.Pattern_gen
module Rng = Iddq_util.Rng
module Bitvec = Iddq_util.Bitvec
module Metrics = Iddq_util.Metrics

(* A random circuit, partition, vector set and fault population; the
   vector count ranges across partial and multiple 64-blocks. *)
let random_case seed =
  let rng = Rng.create seed in
  let gates = 40 + Rng.int rng 120 in
  let c =
    Generator.layered_dag ~rng ~name:"fsim" ~num_inputs:8 ~num_outputs:4
      ~num_gates:gates ~depth:(3 + Rng.int rng 8) ()
  in
  let ch = Charac.make ~library:Library.default c in
  let n = Charac.num_gates ch in
  let k = 2 + Rng.int rng 4 in
  let p = Partition.create ch ~assignment:(Array.init n (fun g -> g mod k)) in
  let faults =
    Fault.random_population ~rng c ~count:(30 + Rng.int rng 60)
      ~defect_current:2e-6
  in
  let vectors = Pattern_gen.random ~rng c ~count:(1 + Rng.int rng 150) in
  (c, p, vectors, faults)

let test_matrix_matches_scalar () =
  for seed = 1 to 12 do
    let _, p, vectors, faults = random_case seed in
    let packed = Coverage.detection_matrix p ~vectors ~faults in
    let scalar = Coverage.detection_matrix_scalar p ~vectors ~faults in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: packed = scalar" seed)
      true
      (Coverage.equal packed scalar)
  done

let test_matrix_domains_invariant () =
  for seed = 1 to 6 do
    let _, p, vectors, faults = random_case seed in
    let one = Coverage.detection_matrix ~domains:1 p ~vectors ~faults in
    let three = Coverage.detection_matrix ~domains:3 p ~vectors ~faults in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: domains=3 = domains=1" seed)
      true (Coverage.equal one three)
  done

let test_first_detections_match_matrix () =
  for seed = 1 to 8 do
    let _, p, vectors, faults = random_case seed in
    let m = Coverage.detection_matrix p ~vectors ~faults in
    let from_matrix = Coverage.first_detection m in
    let dropped = Fault_sim.first_detections ~domains:2 p ~vectors ~faults in
    Alcotest.(check (array int))
      (Printf.sprintf "seed %d: dropping = matrix scan" seed)
      from_matrix dropped
  done

(* The original boxed-bool greedy loop, reproduced as the compaction
   oracle: the popcount rewrite must select the same vectors. *)
let naive_compact m =
  let nf = Coverage.num_faults m in
  let nv = Coverage.num_vectors m in
  let detects f v = Coverage.detects m ~fault:f ~vector:v in
  let covered = Array.make nf false in
  let target = Coverage.num_detectable m in
  let kept = ref [] in
  let covered_count = ref 0 in
  while !covered_count < target do
    let best = ref (-1) and best_gain = ref 0 in
    for v = 0 to nv - 1 do
      let gain = ref 0 in
      for f = 0 to nf - 1 do
        if (not covered.(f)) && detects f v then incr gain
      done;
      if !gain > !best_gain then begin
        best_gain := !gain;
        best := v
      end
    done;
    assert (!best >= 0);
    kept := !best :: !kept;
    for f = 0 to nf - 1 do
      if (not covered.(f)) && detects f !best then begin
        covered.(f) <- true;
        incr covered_count
      end
    done
  done;
  let arr = Array.of_list !kept in
  Array.sort compare arr;
  arr

let test_compact_matches_naive_greedy () =
  for seed = 1 to 8 do
    let _, p, vectors, faults = random_case seed in
    let m = Coverage.detection_matrix p ~vectors ~faults in
    let packed = Coverage.compact m in
    let naive = naive_compact m in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: same selection size" seed)
      (Array.length naive) (Array.length packed);
    Alcotest.(check (array int))
      (Printf.sprintf "seed %d: same selection" seed)
      naive packed;
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "seed %d: coverage preserved" seed)
      (Coverage.coverage_of_selection m
         (Array.init (Coverage.num_vectors m) Fun.id))
      (Coverage.coverage_of_selection m packed)
  done

let test_curve_matches_first_detections () =
  let _, p, vectors, faults = random_case 5 in
  let m = Coverage.detection_matrix p ~vectors ~faults in
  let nf = Coverage.num_faults m in
  let first = Coverage.first_detection m in
  let curve = Coverage.coverage_curve m in
  Alcotest.(check int) "curve length" (Array.length vectors) (Array.length curve);
  Array.iteri
    (fun v cov ->
      let hit = Array.fold_left (fun a f -> if f >= 0 && f <= v then a + 1 else a) 0 first in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "curve at %d" v)
        (float_of_int hit /. float_of_int nf)
        cov)
    curve

let test_run_partitioned_domains_invariant () =
  let _, p, vectors, faults = random_case 7 in
  let base = Iddq_sim.run_partitioned p ~vectors ~faults in
  let pooled = Iddq_sim.run_partitioned ~domains:2 p ~vectors ~faults in
  Alcotest.(check (float 0.0)) "same coverage" base.Iddq_sim.coverage
    pooled.Iddq_sim.coverage;
  List.iter2
    (fun (a : Iddq_sim.detection) (b : Iddq_sim.detection) ->
      Alcotest.(check (option int)) "same detecting vector"
        a.Iddq_sim.detecting_vector b.Iddq_sim.detecting_vector;
      Alcotest.(check (option int)) "same module" a.Iddq_sim.module_id
        b.Iddq_sim.module_id)
    base.Iddq_sim.detections pooled.Iddq_sim.detections

let test_stuck_at_domains_invariant () =
  let c = Iscas.c432_like () in
  let rng = Rng.create 11 in
  let vectors = Pattern_gen.random ~rng c ~count:150 in
  let faults =
    List.filteri (fun i _ -> i mod 7 = 0) (Stuck_at.collapsed_fault_list c)
  in
  let base = Stuck_at.fault_simulate c ~vectors ~faults in
  let pooled = Stuck_at.fault_simulate ~domains:3 c ~vectors ~faults in
  Alcotest.(check int) "same detected" base.Stuck_at.detected
    pooled.Stuck_at.detected;
  Alcotest.(check (array int)) "same first vectors" base.Stuck_at.first_vector
    pooled.Stuck_at.first_vector

let test_metrics_counters () =
  let _, p, vectors, faults = random_case 3 in
  let metrics = Metrics.create () in
  let _ = Coverage.detection_matrix ~metrics p ~vectors ~faults in
  let s = Metrics.snapshot metrics in
  let expected_blocks = (Array.length vectors + 63) / 64 in
  Alcotest.(check int) "good-machine blocks" expected_blocks
    s.Metrics.sim_blocks;
  Alcotest.(check bool) "fault-block passes recorded" true
    (s.Metrics.sim_fault_blocks > 0);
  Alcotest.(check int) "full matrix never drops" 0 s.Metrics.sim_faults_dropped;
  let metrics = Metrics.create () in
  let first = Fault_sim.first_detections ~metrics p ~vectors ~faults in
  let s = Metrics.snapshot metrics in
  let detected =
    Array.fold_left (fun a v -> if v >= 0 then a + 1 else a) 0 first
  in
  Alcotest.(check int) "dropped = detected" detected
    s.Metrics.sim_faults_dropped

let test_empty_cases () =
  let _, p, vectors, _ = random_case 2 in
  (* no faults *)
  let m = Coverage.detection_matrix p ~vectors ~faults:[] in
  Alcotest.(check int) "no rows" 0 (Coverage.num_faults m);
  Alcotest.(check int) "compact empty" 0 (Array.length (Coverage.compact m));
  (* no vectors *)
  let c, p, _, faults = random_case 4 in
  ignore c;
  let m = Coverage.detection_matrix p ~vectors:[||] ~faults in
  Alcotest.(check int) "no detectable" 0 (Coverage.num_detectable m);
  let first = Fault_sim.first_detections p ~vectors:[||] ~faults in
  Array.iter (fun v -> Alcotest.(check int) "all -1" (-1) v) first

(* Bitvec unit checks: the word primitives the engine leans on. *)
let test_bitvec_primitives () =
  Alcotest.(check int) "popcount 0" 0 (Bitvec.popcount64 0L);
  Alcotest.(check int) "popcount -1" 64 (Bitvec.popcount64 Int64.minus_one);
  Alcotest.(check int) "popcount pattern" 32
    (Bitvec.popcount64 0x5555555555555555L);
  Alcotest.(check int) "ctz 0" 64 (Bitvec.ctz64 0L);
  Alcotest.(check int) "ctz 1" 0 (Bitvec.ctz64 1L);
  Alcotest.(check int) "ctz high bit" 63 (Bitvec.ctz64 Int64.min_int);
  let v = Bitvec.create 130 in
  Alcotest.(check int) "empty count" 0 (Bitvec.count v);
  Bitvec.set v 0;
  Bitvec.set v 64;
  Bitvec.set v 129;
  Alcotest.(check int) "count" 3 (Bitvec.count v);
  Alcotest.(check int) "first" 0 (Bitvec.first_set v);
  Alcotest.(check bool) "get" true (Bitvec.get v 64);
  Alcotest.(check bool) "get unset" false (Bitvec.get v 128);
  (* set_word clears bits beyond the length *)
  let w = Bitvec.create 70 in
  Bitvec.set_word w 1 Int64.minus_one;
  Alcotest.(check int) "tail clipped" 6 (Bitvec.count w);
  let collected = ref [] in
  Bitvec.iter_set v (fun i -> collected := i :: !collected);
  Alcotest.(check (list int)) "iter ascending" [ 0; 64; 129 ]
    (List.rev !collected);
  let u = Bitvec.copy v in
  Bitvec.diff_inplace u v;
  Alcotest.(check bool) "diff empties" true (Bitvec.is_empty u);
  Alcotest.(check int) "inter" 3 (Bitvec.inter_count v v);
  Alcotest.(check bool) "intersects self" true (Bitvec.intersects v v);
  Alcotest.(check bool) "no intersect" false (Bitvec.intersects u v)

let tests =
  [
    Alcotest.test_case "bitvec primitives" `Quick test_bitvec_primitives;
    Alcotest.test_case "matrix = scalar oracle" `Quick
      test_matrix_matches_scalar;
    Alcotest.test_case "matrix domain-pool invariant" `Quick
      test_matrix_domains_invariant;
    Alcotest.test_case "first detections = matrix" `Quick
      test_first_detections_match_matrix;
    Alcotest.test_case "compact = naive greedy" `Quick
      test_compact_matches_naive_greedy;
    Alcotest.test_case "curve = first detections" `Quick
      test_curve_matches_first_detections;
    Alcotest.test_case "run_partitioned domain invariant" `Quick
      test_run_partitioned_domains_invariant;
    Alcotest.test_case "stuck-at domain invariant" `Quick
      test_stuck_at_domains_invariant;
    Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "empty cases" `Quick test_empty_cases;
  ]
