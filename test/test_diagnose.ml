(* The diagnosis subsystem: signature ranking, ambiguity classes,
   diagnosability, and the noise model (DESIGN.md §11). *)

module Diagnose = Iddq_diagnose.Diagnose
module Fault = Iddq_defects.Fault
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Library = Iddq_celllib.Library
module Pattern_gen = Iddq_patterns.Pattern_gen
module Bitvec = Iddq_util.Bitvec
module Rng = Iddq_util.Rng

let c17 = Iscas.c17 ()
let ch = Charac.make ~library:Library.default c17
let node name = Option.get (Circuit.node_id_of_name c17 name)
let partition () = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |]

let some_faults () =
  [
    { Fault.fault = Fault.Gate_oxide_short (node "10", true); defect_current = 2e-6 };
    { Fault.fault = Fault.Gate_oxide_short (node "23", false); defect_current = 2e-6 };
    { Fault.fault = Fault.Floating_gate (node "16"); defect_current = 2e-6 };
    (* below threshold: silent however often activated *)
    { Fault.fault = Fault.Floating_gate (node "19"); defect_current = 1e-9 };
  ]

let engine () =
  Diagnose.build (partition ())
    ~vectors:(Pattern_gen.exhaustive c17)
    ~faults:(some_faults ())

(* A larger engine on a C432 stand-in with a k-module uniform split. *)
let big_engine ?(seed = 7) ?(k = 4) ?(defects = 120) ?(vectors = 96) () =
  let circuit = Iscas.c432_like () in
  let ch = Charac.make ~library:Library.default circuit in
  let n = Charac.num_gates ch in
  let p = Partition.create ch ~assignment:(Array.init n (fun g -> g mod k)) in
  let rng = Rng.create seed in
  let faults =
    Fault.random_population ~rng circuit ~count:defects ~defect_current:2e-6
  in
  let vs = Pattern_gen.random ~rng circuit ~count:vectors in
  Diagnose.build p ~vectors:vs ~faults

let test_build_basics () =
  let d = engine () in
  Alcotest.(check int) "faults" 4 (Diagnose.num_faults d);
  Alcotest.(check int) "modules" 2 (Diagnose.num_modules d);
  Alcotest.(check int) "vectors" 32 (Diagnose.num_vectors d);
  Alcotest.(check (array int)) "module ids" [| 0; 1 |] (Diagnose.module_ids d);
  Alcotest.(check bool) "oxide short detectable" true (Diagnose.detectable d 0);
  Alcotest.(check bool) "silent fault undetectable" false
    (Diagnose.detectable d 3)

let test_predicted_shape () =
  let d = engine () in
  let s = Diagnose.predicted d 0 in
  Alcotest.(check int) "rows" 2 (Array.length s.Diagnose.fails);
  Alcotest.(check int) "row length" 32 (Bitvec.length s.Diagnose.fails.(0));
  (* fails only at the fault's own module *)
  let m = Diagnose.fault_module d 0 in
  Alcotest.(check bool) "own module fails" false
    (Bitvec.is_empty s.Diagnose.fails.(m));
  Alcotest.(check bool) "other module silent" true
    (Bitvec.is_empty s.Diagnose.fails.(1 - m))

(* Noiseless observation of any fault: every distance-0 candidate is in
   the true ambiguity class (structurally: distance 0 iff identical
   predicted signature iff same class), and the ranking puts it
   first. *)
let test_exact_rank_recovers_class () =
  let d = engine () in
  for f = 0 to Diagnose.num_faults d - 1 do
    let ranked = Diagnose.rank d (Diagnose.predicted d f) in
    Alcotest.(check bool) "some candidate" true (ranked <> []);
    List.iter
      (fun (c : Diagnose.candidate) ->
        Alcotest.(check int) "distance 0" 0 c.Diagnose.distance;
        Alcotest.(check int)
          (Printf.sprintf "fault %d candidate %d in true class" f
             c.Diagnose.fault)
          (Diagnose.class_of d f) c.Diagnose.class_id)
      ranked
  done

let qcheck_exact_rank_recovers_class_big =
  QCheck.Test.make ~name:"noiseless top candidate is the true class (C432)"
    ~count:10
    QCheck.(int_range 1 100000)
    (fun seed ->
      let d = big_engine ~seed () in
      let faults = Diagnose.num_faults d in
      let ok = ref true in
      for f = 0 to faults - 1 do
        if Diagnose.detectable d f then
          match Diagnose.rank d (Diagnose.predicted d f) with
          | best :: _ ->
            if best.Diagnose.class_id <> Diagnose.class_of d f then ok := false
          | [] -> ok := false
      done;
      !ok)

(* Hamming distance against a naive per-bit count over the full
   modules x vectors grid. *)
let naive_distance d (s : Diagnose.signature) f =
  let p = Diagnose.predicted d f in
  let total = ref 0 in
  Array.iteri
    (fun m row ->
      for v = 0 to Diagnose.num_vectors d - 1 do
        if Bitvec.get row v <> Bitvec.get p.Diagnose.fails.(m) v then
          incr total
      done)
    s.Diagnose.fails;
  !total

let qcheck_distance_matches_naive =
  let d = engine () in
  QCheck.Test.make ~name:"packed distance = naive per-bit Hamming" ~count:100
    QCheck.(pair (int_range 1 100000) (int_range 0 100))
    (fun (seed, density) ->
      let rng = Rng.create seed in
      let fails =
        Array.init (Diagnose.num_modules d) (fun _ ->
            let row = Bitvec.create (Diagnose.num_vectors d) in
            for v = 0 to Diagnose.num_vectors d - 1 do
              if Rng.int rng 101 < density then Bitvec.set row v
            done;
            row)
      in
      let s = { Diagnose.n_vectors = Diagnose.num_vectors d; fails } in
      List.for_all
        (fun f -> Diagnose.distance d s f = naive_distance d s f)
        (List.init (Diagnose.num_faults d) Fun.id))

let test_ambiguity_classes_partition_faults () =
  let d = big_engine () in
  let n = Diagnose.num_faults d in
  let seen = Array.make n 0 in
  for c = 0 to Diagnose.num_classes d - 1 do
    let members = Diagnose.class_members d c in
    Alcotest.(check bool) "non-empty class" true (Array.length members > 0);
    Array.iteri
      (fun i f ->
        seen.(f) <- seen.(f) + 1;
        Alcotest.(check int) "member's class" c (Diagnose.class_of d f);
        if i > 0 then
          Alcotest.(check bool) "ascending members" true (f > members.(i - 1)))
      members
  done;
  Array.iter (fun count -> Alcotest.(check int) "exactly one class" 1 count) seen

(* Two faults share a class iff their predicted signatures are equal. *)
let test_classes_iff_equal_signatures () =
  let d = engine () in
  let equal_sig a b =
    let sa = Diagnose.predicted d a and sb = Diagnose.predicted d b in
    Array.for_all2 Bitvec.equal sa.Diagnose.fails sb.Diagnose.fails
  in
  for a = 0 to Diagnose.num_faults d - 1 do
    for b = 0 to Diagnose.num_faults d - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "faults %d,%d" a b)
        (equal_sig a b)
        (Diagnose.class_of d a = Diagnose.class_of d b)
    done
  done

let test_silent_class () =
  let d = engine () in
  match Diagnose.silent_class d with
  | None -> Alcotest.fail "expected a silent class (fault 3 is sub-threshold)"
  | Some c ->
    Alcotest.(check (array int)) "only the sub-threshold fault" [| 3 |]
      (Diagnose.class_members d c)

let test_diagnosability_summary () =
  let d = big_engine () in
  let s = Diagnose.diagnosability d in
  Alcotest.(check int) "faults" (Diagnose.num_faults d) s.Diagnose.faults;
  Alcotest.(check int) "classes" (Diagnose.num_classes d) s.Diagnose.classes;
  (* recompute both metrics from the class sizes *)
  let sizes =
    List.init (Diagnose.num_classes d) (fun c ->
        Array.length (Diagnose.class_members d c))
  in
  let n = float_of_int s.Diagnose.faults in
  let expected =
    List.fold_left (fun acc k -> acc +. (float_of_int (k * k) /. n)) 0. sizes
  in
  let entropy =
    List.fold_left
      (fun acc k ->
        let p = float_of_int k /. n in
        acc -. (p *. (log p /. log 2.)))
      0. sizes
  in
  Alcotest.(check (float 1e-9)) "expected ambiguity" expected
    s.Diagnose.expected_ambiguity;
  Alcotest.(check (float 1e-9)) "entropy" entropy s.Diagnose.entropy_bits;
  Alcotest.(check int) "max class"
    (List.fold_left max 0 sizes)
    s.Diagnose.max_class;
  Alcotest.(check (float 1e-9)) "c6 = log expected ambiguity" (log expected)
    (Diagnose.c6_diagnosability d);
  Alcotest.(check bool) "expected ambiguity >= 1" true (expected >= 1.0)

let test_noiseless_accuracy_perfect () =
  let d = big_engine () in
  let acc = Diagnose.measure_accuracy ~rng:(Rng.create 11) ~trials:40 d in
  Alcotest.(check int) "trials" 40 acc.Diagnose.trials;
  Alcotest.(check (float 0.0)) "top-1 class" 1.0 acc.Diagnose.top1_class;
  Alcotest.(check (float 0.0)) "top-1 module" 1.0 acc.Diagnose.top1_module;
  Alcotest.(check (float 0.0)) "top-k module" 1.0 acc.Diagnose.topk_module

let test_noisy_accuracy_reasonable () =
  let d = big_engine ~vectors:128 () in
  let acc =
    Diagnose.measure_accuracy ~rng:(Rng.create 11) ~epsilon:0.02 ~top_k:3
      ~trials:40 d
  in
  Alcotest.(check bool)
    (Printf.sprintf "top-3 module %.2f >= 0.9" acc.Diagnose.topk_module)
    true
    (acc.Diagnose.topk_module >= 0.9);
  Alcotest.(check bool) "top-1 module below or equal top-3" true
    (acc.Diagnose.top1_module <= acc.Diagnose.topk_module)

(* In noisy mode the log-likelihood must decrease as distance grows —
   the monotonicity that makes Hamming ranking = ML ranking. *)
let test_noisy_loglik_monotone () =
  let d = big_engine () in
  let rng = Rng.create 5 in
  let truth = 0 in
  let obs = Diagnose.observe_noisy ~rng ~epsilon:0.05 d truth in
  let ranked = Diagnose.rank ~mode:(Diagnose.Noisy 0.05) d obs in
  Alcotest.(check int) "all candidates kept" (Diagnose.num_faults d)
    (List.length ranked);
  let rec check_pairs = function
    | (a : Diagnose.candidate) :: (b : Diagnose.candidate) :: rest ->
      Alcotest.(check bool) "distance ascending" true
        (a.Diagnose.distance <= b.Diagnose.distance);
      Alcotest.(check bool) "log-likelihood descending" true
        (a.Diagnose.log_likelihood >= b.Diagnose.log_likelihood -. 1e-9);
      check_pairs (b :: rest)
    | _ -> ()
  in
  check_pairs ranked

let test_validation () =
  let d = engine () in
  let invalid f =
    match f () with _ -> false | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "epsilon 0.5 rejected" true
    (invalid (fun () ->
         Diagnose.rank ~mode:(Diagnose.Noisy 0.5) d (Diagnose.predicted d 0)));
  Alcotest.(check bool) "epsilon 0 rejected in Noisy" true
    (invalid (fun () ->
         Diagnose.rank ~mode:(Diagnose.Noisy 0.0) d (Diagnose.predicted d 0)));
  Alcotest.(check bool) "negative epsilon rejected" true
    (invalid (fun () ->
         ignore (Diagnose.observe_noisy ~rng:(Rng.create 1) ~epsilon:(-0.1) d 0)));
  let wrong_shape =
    {
      Diagnose.n_vectors = 32;
      fails = [| Bitvec.create 32 |] (* one module instead of two *);
    }
  in
  Alcotest.(check bool) "shape mismatch rejected" true
    (invalid (fun () -> Diagnose.rank d wrong_shape))

let test_top_modules_dedup () =
  let d = big_engine () in
  let obs = Diagnose.predicted d 0 in
  let mods = Diagnose.top_modules ~mode:(Diagnose.Noisy 0.01) d obs in
  Alcotest.(check bool) "at most num_modules entries" true
    (List.length mods <= Diagnose.num_modules d);
  let sorted = List.sort_uniq compare mods in
  Alcotest.(check int) "no duplicates" (List.length mods) (List.length sorted);
  match mods with
  | first :: _ ->
    Alcotest.(check int) "noiseless-consistent best module"
      (Diagnose.module_ids d).(Diagnose.fault_module d 0)
      first
  | [] -> Alcotest.fail "no modules ranked"

let tests =
  [
    Alcotest.test_case "build basics" `Quick test_build_basics;
    Alcotest.test_case "predicted shape" `Quick test_predicted_shape;
    Alcotest.test_case "exact rank recovers class" `Quick
      test_exact_rank_recovers_class;
    QCheck_alcotest.to_alcotest qcheck_exact_rank_recovers_class_big;
    QCheck_alcotest.to_alcotest qcheck_distance_matches_naive;
    Alcotest.test_case "classes partition faults" `Quick
      test_ambiguity_classes_partition_faults;
    Alcotest.test_case "classes iff equal signatures" `Quick
      test_classes_iff_equal_signatures;
    Alcotest.test_case "silent class" `Quick test_silent_class;
    Alcotest.test_case "diagnosability summary" `Quick
      test_diagnosability_summary;
    Alcotest.test_case "noiseless accuracy = 1" `Quick
      test_noiseless_accuracy_perfect;
    Alcotest.test_case "noisy accuracy >= 0.9" `Quick
      test_noisy_accuracy_reasonable;
    Alcotest.test_case "noisy log-likelihood monotone" `Quick
      test_noisy_loglik_monotone;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "top modules dedup" `Quick test_top_modules_dedup;
  ]
