module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate
module Generator = Iddq_netlist.Generator
module Graph_algo = Iddq_netlist.Graph_algo
module Logic_sim = Iddq_patterns.Logic_sim
module Rng = Iddq_util.Rng

let test_layered_dag_exact_counts () =
  let rng = Rng.create 1 in
  let c =
    Generator.layered_dag ~rng ~name:"t" ~num_inputs:10 ~num_outputs:5
      ~num_gates:200 ~depth:15 ()
  in
  Alcotest.(check int) "gates" 200 (Circuit.num_gates c);
  Alcotest.(check int) "inputs" 10 (Circuit.num_inputs c);
  Alcotest.(check int) "outputs" 5 (Circuit.num_outputs c);
  Alcotest.(check int) "depth exact" 15 (Graph_algo.depth c);
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Circuit.validate c)

let test_layered_dag_deterministic () =
  let build () =
    let rng = Rng.create 77 in
    Generator.layered_dag ~rng ~name:"t" ~num_inputs:6 ~num_outputs:3
      ~num_gates:80 ~depth:10 ()
  in
  let a = build () and b = build () in
  Alcotest.(check string) "same netlist"
    (Iddq_netlist.Bench_io.to_string a)
    (Iddq_netlist.Bench_io.to_string b)

let test_layered_dag_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "gates < depth"
    (Invalid_argument "Generator.layered_dag: need num_gates >= depth >= 1")
    (fun () ->
      ignore
        (Generator.layered_dag ~rng ~name:"t" ~num_inputs:4 ~num_outputs:1
           ~num_gates:3 ~depth:5 ()))

let test_cell_array_structure () =
  let rows = 4 and cols = 5 in
  let c = Generator.cell_array ~rows ~cols in
  Alcotest.(check int) "gates" (rows * cols) (Circuit.num_gates c);
  Alcotest.(check int) "inputs" rows (Circuit.num_inputs c);
  Alcotest.(check int) "outputs" rows (Circuit.num_outputs c);
  Alcotest.(check int) "depth = cols" cols (Graph_algo.depth c);
  (* gate-index mapping and per-column depth *)
  let gd = Graph_algo.gate_depths c in
  for r = 0 to rows - 1 do
    for col = 0 to cols - 1 do
      let g = Generator.cell_array_gate ~rows ~cols ~r ~c:col in
      Alcotest.(check int)
        (Printf.sprintf "depth of cell (%d,%d)" r col)
        (col + 1) gd.(g)
    done
  done;
  (* cell kinds cycle with the row *)
  let g_r0 = Generator.cell_array_gate ~rows ~cols ~r:0 ~c:2 in
  let g_r1 = Generator.cell_array_gate ~rows ~cols ~r:1 ~c:2 in
  let g_r2 = Generator.cell_array_gate ~rows ~cols ~r:2 ~c:2 in
  let kind g = Circuit.gate_kind c (Circuit.node_of_gate c g) in
  Alcotest.(check bool) "row 0 NAND" true (Gate.equal (kind g_r0) Gate.Nand);
  Alcotest.(check bool) "row 1 NOR" true (Gate.equal (kind g_r1) Gate.Nor);
  Alcotest.(check bool) "row 2 AND" true (Gate.equal (kind g_r2) Gate.And)

let test_chain_and_tree () =
  let c = Generator.chain ~length:7 () in
  Alcotest.(check int) "chain gates" 7 (Circuit.num_gates c);
  Alcotest.(check int) "chain depth" 7 (Graph_algo.depth c);
  let t = Generator.balanced_tree ~depth:4 () in
  Alcotest.(check int) "tree leaves" 16 (Circuit.num_inputs t);
  Alcotest.(check int) "tree gates" 15 (Circuit.num_gates t);
  Alcotest.(check int) "tree depth" 4 (Graph_algo.depth t)

let multiplier_value c a_val b_val n =
  let inputs = Array.make (2 * n) false in
  for i = 0 to n - 1 do
    inputs.(i) <- (a_val lsr i) land 1 = 1;
    inputs.(n + i) <- (b_val lsr i) land 1 = 1
  done;
  let values = Logic_sim.eval c inputs in
  let out = Logic_sim.output_values c values in
  Array.to_list out
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let test_multiplier_correct () =
  let n = 4 in
  let c = Generator.multiplier_array ~n in
  Alcotest.(check int) "inputs" (2 * n) (Circuit.num_inputs c);
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Circuit.validate c);
  for a = 0 to 15 do
    for b = 0 to 15 do
      Alcotest.(check int)
        (Printf.sprintf "%d * %d" a b)
        (a * b)
        (multiplier_value c a b n)
    done
  done

let qcheck_multiplier =
  QCheck.Test.make ~name:"array multiplier computes products (n=5)" ~count:60
    QCheck.(pair (int_range 0 31) (int_range 0 31))
    (fun (a, b) ->
      let c = Generator.multiplier_array ~n:5 in
      multiplier_value c a b 5 = a * b)

let qcheck_layered_dag_wellformed =
  QCheck.Test.make ~name:"layered dag is valid with exact counts" ~count:40
    QCheck.(triple (int_range 5 120) (int_range 2 10) (int_range 1 100000))
    (fun (gates, depth, seed) ->
      QCheck.assume (gates >= depth);
      let rng = Rng.create seed in
      let c =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:5 ~num_outputs:3
          ~num_gates:gates ~depth ()
      in
      Circuit.num_gates c = gates
      && Graph_algo.depth c = depth
      && Circuit.validate c = Ok ())

let tests =
  [
    Alcotest.test_case "layered dag exact counts" `Quick
      test_layered_dag_exact_counts;
    Alcotest.test_case "layered dag deterministic" `Quick
      test_layered_dag_deterministic;
    Alcotest.test_case "layered dag validation" `Quick test_layered_dag_validation;
    Alcotest.test_case "cell array structure" `Quick test_cell_array_structure;
    Alcotest.test_case "chain and tree" `Quick test_chain_and_tree;
    Alcotest.test_case "multiplier 4x4 exhaustive" `Slow test_multiplier_correct;
    QCheck_alcotest.to_alcotest qcheck_multiplier;
    QCheck_alcotest.to_alcotest qcheck_layered_dag_wellformed;
  ]
