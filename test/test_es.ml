module Es = Iddq_evolution.Es
module Rng = Iddq_util.Rng

(* Toy problem: minimize the sum of absolute values of an int vector.
   Mutation nudges up to [step] coordinates by +-1; Monte-Carlo
   rerolls one coordinate entirely. *)
let toy_problem =
  {
    Es.copy = Array.copy;
    cost = (fun v -> Array.fold_left (fun acc x -> acc +. Float.abs (float_of_int x)) 0.0 v);
    mutate =
      (fun rng ~step v ->
        for _ = 1 to Stdlib.max 1 (Stdlib.min step (Array.length v)) do
          let i = Rng.int rng (Array.length v) in
          v.(i) <- v.(i) + if Rng.bool rng then 1 else -1
        done);
    monte_carlo =
      (fun rng v ->
        let i = Rng.int rng (Array.length v) in
        v.(i) <- Rng.int_in_range rng ~min:(-50) ~max:50);
  }

let start () = [ [| 17; -23; 5; 40; -9 |]; [| -30; 30; -30; 30; -30 |] ]

let params =
  {
    Es.default_params with
    Es.max_generations = 400;
    stall_generations = 400;
  }

let test_converges () =
  let rng = Rng.create 3 in
  let best, trace = Es.run params rng toy_problem (start ()) in
  Alcotest.(check bool)
    (Printf.sprintf "cost %.1f near zero" best.Es.cost)
    true (best.Es.cost <= 2.0);
  Alcotest.(check int) "trace length" 400 (List.length trace)

let test_best_cost_monotone () =
  let rng = Rng.create 5 in
  let _, trace = Es.run params rng toy_problem (start ()) in
  let rec check prev = function
    | [] -> true
    | (r : Es.generation_report) :: rest ->
      r.Es.best_cost <= prev +. 1e-12 && check r.Es.best_cost rest
  in
  Alcotest.(check bool) "best never worsens" true (check infinity trace)

let test_deterministic () =
  let run () =
    let rng = Rng.create 11 in
    let best, _ = Es.run params rng toy_problem (start ()) in
    (best.Es.cost, best.Es.solution)
  in
  let c1, s1 = run () and c2, s2 = run () in
  Alcotest.(check (float 0.0)) "same cost" c1 c2;
  Alcotest.(check bool) "same solution" true (s1 = s2)

let test_inputs_not_mutated () =
  let starts = start () in
  let snapshot = List.map Array.copy starts in
  let rng = Rng.create 1 in
  let _ = Es.run { params with Es.max_generations = 20 } rng toy_problem starts in
  List.iter2
    (fun a b -> Alcotest.(check bool) "start untouched" true (a = b))
    starts snapshot

let test_stall_stops_early () =
  (* a constant cost function stalls immediately *)
  let constant =
    { toy_problem with Es.cost = (fun _ -> 1.0) }
  in
  let rng = Rng.create 2 in
  let _, trace =
    Es.run
      { params with Es.max_generations = 1000; stall_generations = 5 }
      rng constant (start ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "stopped after %d gens" (List.length trace))
    true
    (List.length trace <= 7)

let test_param_validation () =
  let rng = Rng.create 1 in
  let bad p = try ignore (Es.run p rng toy_problem (start ())); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "mu < 1" true (bad { params with Es.mu = 0 });
  Alcotest.(check bool) "no offspring" true (bad { params with Es.lambda = 0; chi = 0 });
  Alcotest.(check bool) "omega < 1" true (bad { params with Es.omega = 0 });
  Alcotest.(check bool) "m < 1" true (bad { params with Es.m_init = 0 });
  Alcotest.(check bool) "no starts" true
    (try ignore (Es.run params rng toy_problem []); false with Invalid_argument _ -> true)

let test_on_generation_callback () =
  let rng = Rng.create 1 in
  let calls = ref 0 in
  let _ =
    Es.run
      ~on_generation:(fun _ -> incr calls)
      { params with Es.max_generations = 13; stall_generations = 100 }
      rng toy_problem (start ())
  in
  Alcotest.(check int) "called each generation" 13 !calls

let test_domains_equivalent () =
  (* offspring are built sequentially and only their costs are
     evaluated in parallel, so the run is identical whatever the
     domain count *)
  let run domains =
    let rng = Rng.create 11 in
    let best, trace =
      Es.run
        { params with Es.max_generations = 60; domains }
        rng toy_problem (start ())
    in
    (best.Es.cost, best.Es.solution, trace)
  in
  let c1, s1, t1 = run 1 and c4, s4, t4 = run 4 in
  Alcotest.(check (float 0.0)) "same best cost" c1 c4;
  Alcotest.(check bool) "same best solution" true (s1 = s4);
  Alcotest.(check bool) "same trace" true (t1 = t4)

let test_domains_validation () =
  let rng = Rng.create 1 in
  Alcotest.(check bool) "domains < 1" true
    (try
       ignore (Es.run { params with Es.domains = 0 } rng toy_problem (start ()));
       false
     with Invalid_argument _ -> true)

let test_aging_turnover () =
  (* with omega = 1 every parent dies after one generation, so the run
     still progresses purely on children *)
  let rng = Rng.create 9 in
  let best, _ =
    Es.run { params with Es.omega = 1; max_generations = 300 } rng toy_problem
      (start ())
  in
  Alcotest.(check bool) "still converges" true (best.Es.cost <= 5.0)

let tests =
  [
    Alcotest.test_case "converges" `Quick test_converges;
    Alcotest.test_case "best monotone" `Quick test_best_cost_monotone;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "inputs not mutated" `Quick test_inputs_not_mutated;
    Alcotest.test_case "stall stops early" `Quick test_stall_stops_early;
    Alcotest.test_case "param validation" `Quick test_param_validation;
    Alcotest.test_case "generation callback" `Quick test_on_generation_callback;
    Alcotest.test_case "aging turnover" `Quick test_aging_turnover;
    Alcotest.test_case "domains equivalent" `Quick test_domains_equivalent;
    Alcotest.test_case "domains validation" `Quick test_domains_validation;
  ]
