module Charac = Iddq_analysis.Charac
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Generator = Iddq_netlist.Generator
module Library = Iddq_celllib.Library

let make circuit = Charac.make ~library:Library.default circuit

let gate_of c name =
  Circuit.gate_of_node c (Option.get (Circuit.node_id_of_name c name))

let slots ch g =
  let out = ref [] in
  Charac.iter_switch_slots ch g (fun s -> out := s :: !out);
  List.rev !out

let test_c17_transition_times () =
  (* Hand-computed T(g) for C17:
     g10 = NAND(i1,i3): {1}
     g11 = NAND(i3,i6): {1}
     g16 = NAND(i2,g11): {1,2}
     g19 = NAND(g11,i7): {1,2}
     g22 = NAND(g10,g16): {2,3}
     g23 = NAND(g16,g19): {2,3} *)
  let circuit = Iscas.c17 () in
  let ch = make circuit in
  let check name expected =
    Alcotest.(check (list int)) ("T(" ^ name ^ ")") expected
      (slots ch (gate_of circuit name))
  in
  check "10" [ 1 ];
  check "11" [ 1 ];
  check "16" [ 1; 2 ];
  check "19" [ 1; 2 ];
  check "22" [ 2; 3 ];
  check "23" [ 2; 3 ]

let test_chain_transition_times () =
  let circuit = Generator.chain ~length:10 () in
  let ch = make circuit in
  for g = 0 to 9 do
    Alcotest.(check (list int))
      (Printf.sprintf "chain gate %d" g)
      [ g + 1 ] (slots ch g)
  done;
  Alcotest.(check int) "depth" 10 (Charac.depth ch)

let test_switch_slot_count () =
  let circuit = Iscas.c17 () in
  let ch = make circuit in
  Alcotest.(check int) "g16 two slots" 2
    (Charac.switch_slot_count ch (gate_of circuit "16"));
  Alcotest.(check int) "g10 one slot" 1
    (Charac.switch_slot_count ch (gate_of circuit "10"))

let test_can_switch_at_bounds () =
  let circuit = Iscas.c17 () in
  let ch = make circuit in
  let g = gate_of circuit "22" in
  Alcotest.(check bool) "slot 0 never" false (Charac.can_switch_at ch g 0);
  Alcotest.(check bool) "slot 2 yes" true (Charac.can_switch_at ch g 2);
  Alcotest.(check bool) "slot 1 no" false (Charac.can_switch_at ch g 1);
  Alcotest.(check bool) "beyond depth no" false (Charac.can_switch_at ch g 99)

let test_electrical_data_derated () =
  (* a 3-input gate must be slower than the base 2-input cell *)
  let b = Iddq_netlist.Builder.create () in
  List.iter (Iddq_netlist.Builder.add_input b) [ "a"; "b"; "c" ];
  Iddq_netlist.Builder.add_gate b "g2" Iddq_netlist.Gate.And [ "a"; "b" ];
  Iddq_netlist.Builder.add_gate b "g3" Iddq_netlist.Gate.And [ "a"; "b"; "c" ];
  Iddq_netlist.Builder.add_output b "g2";
  Iddq_netlist.Builder.add_output b "g3";
  let circuit = Iddq_netlist.Builder.freeze_exn b in
  let ch = make circuit in
  let g2 = gate_of circuit "g2" and g3 = gate_of circuit "g3" in
  Alcotest.(check bool) "3-input slower" true
    (Charac.delay ch g3 > Charac.delay ch g2);
  Alcotest.(check bool) "3-input leakier" true
    (Charac.leakage ch g3 > Charac.leakage ch g2)

let test_undirected_cached () =
  let circuit = Iscas.c17 () in
  let ch = make circuit in
  let u = Charac.undirected ch in
  (* g22 is adjacent to g10 and g16 *)
  let g22 = gate_of circuit "22" in
  let neigh = Iddq_netlist.Graph_algo.neighbours u g22 in
  Alcotest.(check bool) "g22-g10 adjacency" true
    (Array.mem (gate_of circuit "10") neigh);
  Alcotest.(check bool) "g22-g16 adjacency" true
    (Array.mem (gate_of circuit "16") neigh);
  Alcotest.(check int) "cutoff from technology" 6 (Charac.separation_cutoff ch)

let qcheck_transition_times_within_depth =
  QCheck.Test.make ~name:"transition slots lie in [1, gate depth]" ~count:30
    QCheck.(pair (int_range 10 100) (int_range 1 100000))
    (fun (gates, seed) ->
      let rng = Iddq_util.Rng.create seed in
      let circuit =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:5 ~num_outputs:2
          ~num_gates:gates ~depth:(1 + (gates / 10)) ()
      in
      let ch = make circuit in
      let ok = ref true in
      for g = 0 to Charac.num_gates ch - 1 do
        let d = Charac.gate_depth ch g in
        (* the deepest slot is always reachable: some longest path *)
        if not (Charac.can_switch_at ch g d) then ok := false;
        Charac.iter_switch_slots ch g (fun s ->
            if s < 1 || s > d then ok := false)
      done;
      !ok)

let tests =
  [
    Alcotest.test_case "c17 transition times" `Quick test_c17_transition_times;
    Alcotest.test_case "chain transition times" `Quick test_chain_transition_times;
    Alcotest.test_case "switch slot count" `Quick test_switch_slot_count;
    Alcotest.test_case "can_switch_at bounds" `Quick test_can_switch_at_bounds;
    Alcotest.test_case "fanin derating" `Quick test_electrical_data_derated;
    Alcotest.test_case "undirected cached" `Quick test_undirected_cached;
    QCheck_alcotest.to_alcotest qcheck_transition_times_within_depth;
  ]
