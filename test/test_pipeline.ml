module Pipeline = Iddq.Pipeline
module Report = Iddq.Report
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Constraints = Iddq_core.Constraints
module Iscas = Iddq_netlist.Iscas
module Es = Iddq_evolution.Es

let fast_config =
  {
    Pipeline.default_config with
    Pipeline.es_params =
      { Es.default_params with Es.max_generations = 40; stall_generations = 40 };
  }

let test_method_string_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Pipeline.method_to_string m)
        true
        (Pipeline.method_of_string (Pipeline.method_to_string m) = Some m))
    [
      Pipeline.Evolution; Pipeline.Standard; Pipeline.Random;
      Pipeline.Annealing; Pipeline.Refined_standard;
    ];
  Alcotest.(check bool) "unknown" true (Pipeline.method_of_string "nope" = None)

let run_method m =
  Pipeline.run ~config:fast_config m (Iscas.c432_like ())

let check_result name (r : Pipeline.t) =
  Alcotest.(check (result unit string)) (name ^ " consistent") (Ok ())
    (Partition.check_consistent r.Pipeline.partition);
  Alcotest.(check bool) (name ^ " feasible") true
    (Constraints.satisfied r.Pipeline.partition);
  Alcotest.(check int)
    (name ^ " one sensor per module")
    (Partition.num_modules r.Pipeline.partition)
    (List.length r.Pipeline.sensors);
  Alcotest.(check bool) (name ^ " area positive") true
    (r.Pipeline.breakdown.Cost.sensor_area > 0.0)

let test_all_methods_run () =
  List.iter
    (fun m -> check_result (Pipeline.method_to_string m) (run_method m))
    [
      Pipeline.Evolution; Pipeline.Standard; Pipeline.Random;
      Pipeline.Annealing; Pipeline.Refined_standard;
    ]

let test_compare_methods_shares_sizes () =
  let results =
    Pipeline.compare_methods ~config:fast_config (Iscas.c432_like ())
      [ Pipeline.Evolution; Pipeline.Standard ]
  in
  match results with
  | [ (Pipeline.Evolution, evo); (Pipeline.Standard, std) ] ->
    (* the standard baseline runs at the evolution's module sizes *)
    let sizes p =
      List.sort compare
        (List.map (Partition.size p.Pipeline.partition)
           (Partition.module_ids p.Pipeline.partition))
    in
    Alcotest.(check (list int)) "same module sizes" (sizes evo) (sizes std)
  | _ -> Alcotest.fail "unexpected result shape"

let test_evolution_beats_standard_area () =
  (* the paper's headline claim, on the small stand-in *)
  let results =
    Pipeline.compare_methods ~config:fast_config (Iscas.c432_like ())
      [ Pipeline.Evolution; Pipeline.Standard ]
  in
  match results with
  | [ (_, evo); (_, std) ] ->
    let area r = r.Pipeline.breakdown.Cost.sensor_area in
    Alcotest.(check bool)
      (Printf.sprintf "evolution %.3e <= standard %.3e" (area evo) (area std))
      true
      (area evo <= area std *. 1.02)
  | _ -> Alcotest.fail "unexpected result shape"

let test_report_row () =
  let results =
    Pipeline.compare_methods ~config:fast_config (Iscas.c432_like ())
      [ Pipeline.Evolution; Pipeline.Standard ]
  in
  match results with
  | [ (_, evolution); (_, standard) ] ->
    let row = Report.row_of_results ~circuit_name:"C432" ~standard ~evolution in
    Alcotest.(check string) "name" "C432" row.Report.circuit_name;
    Alcotest.(check (float 1e-6)) "overhead formula"
      (100.0
      *. (row.Report.area_standard -. row.Report.area_evolution)
      /. row.Report.area_evolution)
      row.Report.area_overhead_percent;
    let table = Report.table [ row ] in
    let rendered = Iddq_util.Table.render table in
    Alcotest.(check bool) "table mentions the circuit" true
      (String.length rendered > 0)
  | _ -> Alcotest.fail "unexpected result shape"

let test_compare_methods_preserves_order () =
  (* evolution executes first even when listed last, but the returned
     association list preserves the caller's order *)
  let methods = [ Pipeline.Standard; Pipeline.Evolution; Pipeline.Random ] in
  let results =
    Pipeline.compare_methods ~config:fast_config (Iscas.c432_like ()) methods
  in
  Alcotest.(check (list string)) "caller order preserved"
    (List.map Pipeline.method_to_string methods)
    (List.map (fun (m, _) -> Pipeline.method_to_string m) results)

let test_compare_methods_equals_seeded_run () =
  (* the standard leg of compare_methods is exactly a direct Standard
     run whose reference_sizes are the evolution result's sizes *)
  let circuit = Iscas.c432_like () in
  let results =
    Pipeline.compare_methods ~config:fast_config circuit
      [ Pipeline.Evolution; Pipeline.Standard ]
  in
  match results with
  | [ (_, evo); (_, std) ] ->
    let sizes =
      List.map
        (Partition.size evo.Pipeline.partition)
        (Partition.module_ids evo.Pipeline.partition)
    in
    let config = { fast_config with Pipeline.reference_sizes = Some sizes } in
    let direct = Pipeline.run ~config Pipeline.Standard circuit in
    Alcotest.(check bool) "same partition as a directly seeded run" true
      (Partition.assignment std.Pipeline.partition
      = Partition.assignment direct.Pipeline.partition)
  | _ -> Alcotest.fail "unexpected result shape"

let test_deterministic_given_seed () =
  let r1 = run_method Pipeline.Evolution in
  let r2 = run_method Pipeline.Evolution in
  Alcotest.(check bool) "same partition" true
    (Partition.assignment r1.Pipeline.partition
    = Partition.assignment r2.Pipeline.partition)

let test_module_size_config () =
  let config = { fast_config with Pipeline.module_size = Some 20 } in
  let r = Pipeline.run ~config Pipeline.Standard (Iscas.c432_like ()) in
  Alcotest.(check int) "160/20 = 8 modules" 8
    (Partition.num_modules r.Pipeline.partition)

(* ------------------------------------------------------------------ *)
(* Facade: the config builder and result-typed entry points            *)
(* ------------------------------------------------------------------ *)

let test_config_builder_defaults () =
  Alcotest.(check bool) "config () is default_config" true
    (Pipeline.config () = Pipeline.default_config);
  let c = Pipeline.config ~seed:9 ~module_size:12 () in
  Alcotest.(check int) "seed set" 9 c.Pipeline.seed;
  Alcotest.(check bool) "module_size set" true
    (c.Pipeline.module_size = Some 12);
  Alcotest.(check bool) "untouched fields stay default" true
    (c.Pipeline.library == Pipeline.default_config.Pipeline.library
    && c.Pipeline.weights = Pipeline.default_config.Pipeline.weights
    && c.Pipeline.reference_sizes = None)

let fast_es = fast_config.Pipeline.es_params

let test_run_result_ok_matches_run () =
  let config = Pipeline.config ~es_params:fast_es ~seed:42 () in
  match Pipeline.run_result ~config Pipeline.Standard (Iscas.c432_like ()) with
  | Error e -> Alcotest.fail (Pipeline.error_to_string e)
  | Ok r ->
    let direct = Pipeline.run ~config Pipeline.Standard (Iscas.c432_like ()) in
    Alcotest.(check bool) "run_result agrees with run" true
      (Partition.assignment r.Pipeline.partition
      = Partition.assignment direct.Pipeline.partition)

let test_run_result_bad_configs () =
  let circuit = Iscas.c17 () in
  let bad name config =
    match Pipeline.run_result ~config Pipeline.Standard circuit with
    | Error (Pipeline.Bad_config _) -> ()
    | Error e ->
      Alcotest.failf "%s: expected Bad_config, got %s" name
        (Pipeline.error_to_string e)
    | Ok _ -> Alcotest.failf "%s accepted" name
  in
  bad "module_size 0" (Pipeline.config ~module_size:0 ());
  bad "negative reference size" (Pipeline.config ~reference_sizes:[ -1; 7 ] ());
  bad "reference sizes don't sum to gate count"
    (Pipeline.config ~reference_sizes:[ 1; 2 ] ());
  bad "degenerate ES population"
    (Pipeline.config
       ~es_params:{ fast_es with Iddq_evolution.Es.mu = 0 }
       ())

let test_run_raises_what_run_result_returns () =
  let config = Pipeline.config ~module_size:(-3) () in
  match Pipeline.run ~config Pipeline.Standard (Iscas.c17 ()) with
  | _ -> Alcotest.fail "run accepted a bad config"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "message carries the structured error" true
      (String.length msg > String.length "Pipeline.run: ")

let test_run_result_infeasible_reported () =
  (* C17 in one module of 6 gates is produced regardless; with
     require_feasible the caller is told when constraints fail, and
     the error carries the achieved discriminability *)
  let config = Pipeline.config ~es_params:fast_es ~seed:1 () in
  let circuit = Iscas.c432_like () in
  match
    Pipeline.run_result ~config ~require_feasible:true Pipeline.Random circuit
  with
  | Ok r ->
    Alcotest.(check bool) "feasible when no error" true
      (r.Pipeline.breakdown.Cost.feasible)
  | Error (Pipeline.Infeasible { method_; _ }) ->
    Alcotest.(check bool) "infeasible carries the method" true
      (method_ = Pipeline.Random)
  | Error e -> Alcotest.fail (Pipeline.error_to_string e)

let test_compare_methods_result_ok () =
  let config = Pipeline.config ~es_params:fast_es () in
  match
    Pipeline.compare_methods_result ~config (Iscas.c432_like ())
      [ Pipeline.Standard; Pipeline.Evolution ]
  with
  | Error e -> Alcotest.fail (Pipeline.error_to_string e)
  | Ok results ->
    Alcotest.(check (list string)) "order preserved"
      [ "standard"; "evolution" ]
      (List.map (fun (m, _) -> Pipeline.method_to_string m) results)

let tests =
  [
    Alcotest.test_case "method strings" `Quick test_method_string_roundtrip;
    Alcotest.test_case "config builder" `Quick test_config_builder_defaults;
    Alcotest.test_case "run_result ok" `Slow test_run_result_ok_matches_run;
    Alcotest.test_case "run_result bad configs" `Quick
      test_run_result_bad_configs;
    Alcotest.test_case "run raises structured message" `Quick
      test_run_raises_what_run_result_returns;
    Alcotest.test_case "run_result require_feasible" `Slow
      test_run_result_infeasible_reported;
    Alcotest.test_case "compare_methods_result" `Slow
      test_compare_methods_result_ok;
    Alcotest.test_case "all methods run" `Slow test_all_methods_run;
    Alcotest.test_case "compare shares sizes" `Slow test_compare_methods_shares_sizes;
    Alcotest.test_case "evolution beats standard" `Slow
      test_evolution_beats_standard_area;
    Alcotest.test_case "report row" `Slow test_report_row;
    Alcotest.test_case "compare preserves order" `Slow
      test_compare_methods_preserves_order;
    Alcotest.test_case "compare equals seeded run" `Slow
      test_compare_methods_equals_seeded_run;
    Alcotest.test_case "deterministic" `Slow test_deterministic_given_seed;
    Alcotest.test_case "module size config" `Quick test_module_size_config;
  ]
