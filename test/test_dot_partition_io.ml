module Dot = Iddq_netlist.Dot
module Io_error = Iddq_util.Io_error
module Iscas = Iddq_netlist.Iscas
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Partition_io = Iddq_core.Partition_io
module Library = Iddq_celllib.Library

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

let test_dot_plain () =
  let c = Iscas.c17 () in
  let dot = Dot.of_circuit c in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "input box" true (contains dot "\"1\" [shape=box]");
  Alcotest.(check bool) "edge 10 -> 22" true (contains dot "\"10\" -> \"22\"");
  Alcotest.(check bool) "output double circle" true
    (contains dot "doublecircle");
  Alcotest.(check bool) "gate kind label" true (contains dot "NAND");
  Alcotest.(check bool) "closed" true (contains dot "}")

let test_dot_clustered () =
  let c = Iscas.c17 () in
  let ch = Charac.make ~library:Library.default c in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let dot = Dot.of_circuit ~module_of_gate:(Partition.module_of_gate p) c in
  Alcotest.(check bool) "cluster 0" true (contains dot "subgraph cluster_0");
  Alcotest.(check bool) "cluster 1" true (contains dot "subgraph cluster_1");
  Alcotest.(check bool) "fill colours" true (contains dot "fillcolor")

let test_partition_io_roundtrip () =
  let c = Iscas.c17 () in
  let ch = Charac.make ~library:Library.default c in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let text = Partition_io.to_string p in
  match Partition_io.of_string ch text with
  | Error e -> Alcotest.failf "reload failed: %s" (Io_error.to_string e)
  | Ok q ->
    Alcotest.(check int) "modules" (Partition.num_modules p)
      (Partition.num_modules q);
    (* same grouping up to relabelling: compare canonical forms *)
    let canon r =
      List.map
        (fun m -> Array.to_list (Partition.members r m))
        (Partition.module_ids r)
      |> List.sort compare
    in
    Alcotest.(check bool) "same grouping" true (canon p = canon q)

let test_partition_io_errors () =
  let c = Iscas.c17 () in
  let ch = Charac.make ~library:Library.default c in
  let is_err s =
    match Partition_io.of_string ch s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "unknown net" true (is_err "module 0: bogus\n");
  Alcotest.(check bool) "input not a gate" true (is_err "module 0: 1\n");
  Alcotest.(check bool) "duplicate gate" true
    (is_err "module 0: 10 10 11 16 19 22 23\n");
  Alcotest.(check bool) "missing gate" true (is_err "module 0: 10 11\n");
  Alcotest.(check bool) "sparse ids" true
    (is_err "module 1: 10 11 16 19 22 23\n");
  Alcotest.(check bool) "empty" true (is_err "");
  Alcotest.(check bool) "garbage" true (is_err "hello world\n")

let test_partition_io_comments_tolerated () =
  let c = Iscas.c17 () in
  let ch = Charac.make ~library:Library.default c in
  let text = "# header\nmodule 0: 10 16 22  # cone of 22\nmodule 1: 11 19 23\n" in
  match Partition_io.of_string ch text with
  | Error e -> Alcotest.failf "comments broke parse: %s" (Io_error.to_string e)
  | Ok q -> Alcotest.(check int) "two modules" 2 (Partition.num_modules q)

let test_partition_io_file () =
  let c = Iscas.c17 () in
  let ch = Charac.make ~library:Library.default c in
  let p = Partition.create ch ~assignment:[| 0; 0; 0; 1; 1; 1 |] in
  let path = Filename.temp_file "iddq_part" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Partition_io.write_file path p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write_file: %s" (Io_error.to_string e));
      match Partition_io.read_file ch path with
      | Ok q -> Alcotest.(check int) "modules" 2 (Partition.num_modules q)
      | Error e -> Alcotest.failf "read_file: %s" (Io_error.to_string e))

let tests =
  [
    Alcotest.test_case "dot plain" `Quick test_dot_plain;
    Alcotest.test_case "dot clustered" `Quick test_dot_clustered;
    Alcotest.test_case "partition io roundtrip" `Quick test_partition_io_roundtrip;
    Alcotest.test_case "partition io errors" `Quick test_partition_io_errors;
    Alcotest.test_case "partition io comments" `Quick
      test_partition_io_comments_tolerated;
    Alcotest.test_case "partition io file" `Quick test_partition_io_file;
  ]
