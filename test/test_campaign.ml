module Json = Iddq_util.Json
module Iscas = Iddq_netlist.Iscas
module Pipeline = Iddq.Pipeline
module Spec = Iddq_campaign.Spec
module Job_result = Iddq_campaign.Job_result
module Store = Iddq_campaign.Store
module Runner = Iddq_campaign.Runner
module Summary = Iddq_campaign.Summary

let with_temp_store f =
  let path = Filename.temp_file "iddq-campaign-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("floats", Json.List [ Json.Float 0.1; Json.Float 1.0e-9; Json.Float (-3.5) ]);
        ("string", Json.String "plain");
        ("nested", Json.Obj [ ("empty", Json.List []); ("o", Json.Obj []) ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip equal" true (v = v')
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_float_fidelity () =
  (* floats must re-parse bit-exactly and stay floats (never collapse
     to Int), whatever the value *)
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') ->
        Alcotest.(check bool)
          (Printf.sprintf "%.17g survives" f)
          true
          (Int64.bits_of_float f = Int64.bits_of_float f')
      | Ok _ -> Alcotest.fail "float did not re-parse as Float"
      | Error e -> Alcotest.fail e)
    [ 0.1; 1.0; -0.0; 2.32e-3; 1.08e6; 4.163915816625631e-9; Float.pi ];
  (* non-finite floats keep their value through the string sentinels
     rather than degrading to null *)
  List.iter
    (fun (f, sentinel) ->
      Alcotest.(check string)
        (Printf.sprintf "%h sentinel" f)
        sentinel
        (Json.to_string (Json.Float f));
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok v ->
        Alcotest.(check bool)
          (Printf.sprintf "%h decodes back" f)
          true
          (match Json.to_float v with
          | Some f' -> Int64.bits_of_float f = Int64.bits_of_float f'
          | None -> false)
      | Error e -> Alcotest.fail e)
    [
      (Float.nan, "\"nan\"");
      (Float.infinity, "\"inf\"");
      (Float.neg_infinity, "\"-inf\"");
    ];
  Alcotest.(check bool) "int stays int" true
    (Json.parse "12345" = Ok (Json.Int 12345))

let test_json_string_escapes () =
  List.iter
    (fun s ->
      match Json.parse (Json.to_string (Json.String s)) with
      | Ok (Json.String s') -> Alcotest.(check string) "escaped string" s s'
      | Ok _ -> Alcotest.fail "string did not re-parse as String"
      | Error e -> Alcotest.fail e)
    [ "quotes \" and \\ backslash"; "tab\tnewline\ncr\r"; "ctrl \x01\x1f"; "" ]

let test_json_parse_errors () =
  let is_error s =
    match Json.parse s with Ok _ -> false | Error _ -> true
  in
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true (is_error s))
    [
      ""; "{"; "[1,"; "\"unterminated"; "tru"; "{\"a\" 1}"; "1 2";
      "{\"a\":1,}"; "nul"; "[1] trailing";
    ];
  (* accessors are total *)
  Alcotest.(check bool) "member miss" true (Json.member "x" (Json.Obj []) = None);
  Alcotest.(check bool) "to_int of string" true (Json.to_int (Json.String "3") = None);
  Alcotest.(check bool) "to_float of int" true
    (Json.to_float (Json.Int 3) = Some 3.0)

(* ------------------------------------------------------------------ *)
(* Spec                                                                *)
(* ------------------------------------------------------------------ *)

let grid_spec =
  {
    Spec.default with
    Spec.circuits = [ "C17"; "C432" ];
    methods = [ Pipeline.Standard; Pipeline.Evolution ];
    seeds = [ 1; 2 ];
    module_sizes = [ None; Some 8 ];
  }

let test_spec_expansion () =
  let jobs = Spec.jobs grid_spec in
  Alcotest.(check int) "2x2x2x2 grid" 16 (List.length jobs);
  let ids = List.map (fun (j : Spec.job) -> j.Spec.id) jobs in
  Alcotest.(check int) "ids unique" 16 (List.length (List.sort_uniq compare ids));
  (* evolution is hoisted ahead of the standard job it feeds *)
  List.iter
    (fun (j : Spec.job) ->
      match j.Spec.depends_on with
      | None ->
        Alcotest.(check bool) "only standard depends" true
          (j.Spec.method_ = Pipeline.Evolution)
      | Some dep ->
        let dep_index =
          (List.find (fun (d : Spec.job) -> d.Spec.id = dep) jobs).Spec.index
        in
        Alcotest.(check bool) "dependency precedes dependent" true
          (dep_index < j.Spec.index))
    jobs

let test_spec_no_deps_variants () =
  (* without seed_reference_sizes, or without an evolution leg, no job
     waits on another *)
  let independent spec =
    List.for_all
      (fun (j : Spec.job) -> j.Spec.depends_on = None)
      (Spec.jobs spec)
  in
  Alcotest.(check bool) "seeding disabled" true
    (independent { grid_spec with Spec.seed_reference_sizes = false });
  Alcotest.(check bool) "no evolution leg" true
    (independent
       { grid_spec with Spec.methods = [ Pipeline.Standard; Pipeline.Random ] });
  (* duplicate grid entries collapse *)
  let doubled =
    { grid_spec with Spec.circuits = [ "C17"; "C17"; "C432" ]; seeds = [ 1; 1; 2 ] }
  in
  Alcotest.(check int) "duplicates collapsed" 16 (List.length (Spec.jobs doubled))

let test_spec_parse_roundtrip () =
  (match Spec.parse (Spec.to_string grid_spec) with
  | Ok s -> Alcotest.(check bool) "to_string/parse roundtrip" true (s = grid_spec)
  | Error e -> Alcotest.fail (Iddq_util.Io_error.to_string e));
  match
    Spec.parse
      "# comment\n\
       circuits = c17, C432\n\
       methods = evolution, standard\n\
       seeds = 3, 4\n\
       module-sizes = default, 12\n\
       max-generations = 50\n\
       timeout = 1.5\n"
  with
  | Ok s ->
    Alcotest.(check (list string)) "circuits" [ "C17"; "C432" ] s.Spec.circuits;
    Alcotest.(check bool) "sizes" true (s.Spec.module_sizes = [ None; Some 12 ]);
    Alcotest.(check bool) "generations" true (s.Spec.max_generations = Some 50);
    Alcotest.(check bool) "timeout" true (s.Spec.timeout = Some 1.5)
  | Error e -> Alcotest.fail (Iddq_util.Io_error.to_string e)

let test_spec_errors () =
  let rejects text =
    match Spec.parse text with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unknown key" true (rejects "frobnicate = 3\n");
  Alcotest.(check bool) "unknown circuit" true (rejects "circuits = C999\n");
  Alcotest.(check bool) "unknown method" true (rejects "methods = magic\n");
  Alcotest.(check bool) "empty list" true (rejects "seeds =\n");
  Alcotest.(check bool) "validate empty circuits" true
    (Result.is_error (Spec.validate { grid_spec with Spec.circuits = [] }));
  Alcotest.(check bool) "validate bad size" true
    (Result.is_error
       (Spec.validate { grid_spec with Spec.module_sizes = [ Some 0 ] }))

(* ------------------------------------------------------------------ *)
(* Job_result codec                                                    *)
(* ------------------------------------------------------------------ *)

let sample_job () = List.hd (Spec.jobs { grid_spec with Spec.circuits = [ "C17" ] })

let sample_metrics () =
  let m = Iddq_util.Metrics.create () in
  Iddq_util.Metrics.record_full m ~gates:30 ~seconds:1e-4;
  Iddq_util.Metrics.snapshot m

let test_result_codec_roundtrip () =
  let job = sample_job () in
  let metrics = sample_metrics () in
  let check_roundtrip label r =
    match Job_result.of_line (Job_result.to_line r) with
    | Ok r' -> Alcotest.(check bool) (label ^ " roundtrip") true (r = r')
    | Error e -> Alcotest.fail (label ^ ": " ^ e)
  in
  check_roundtrip "failed"
    (Job_result.failure ~job ~derived_seed:17 ~elapsed:0.25 ~metrics
       "Invalid_argument(\"weird \\ chars\n\ttab\")");
  check_roundtrip "timeout"
    (Job_result.timed_out ~job ~derived_seed:17 ~elapsed:2.0 ~metrics ~limit:1.5);
  (* a real Done record, through the pipeline *)
  let circuit = Option.get (Iscas.by_name "C17") in
  let run = Pipeline.run Pipeline.Standard circuit in
  let done_ =
    Job_result.of_run ~job ~derived_seed:17 ~elapsed:0.1 ~metrics run
  in
  check_roundtrip "done" done_;
  Alcotest.(check bool) "done is_ok" true (Job_result.is_ok done_);
  Alcotest.(check bool) "to_line is one line" true
    (not (String.contains (Job_result.to_line done_) '\n'))

let test_result_bad_lines () =
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" line) true
        (Result.is_error (Job_result.of_line line)))
    [ ""; "{}"; "[1,2]"; "{\"job\":\"x\""; "not json at all" ]

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let open_store path =
  match Store.open_ path with
  | Ok s -> s
  | Error e -> Alcotest.failf "Store.open_: %s" (Iddq_util.Io_error.to_string e)

let test_store_latest_wins () =
  with_temp_store (fun path ->
      let job = sample_job () in
      let metrics = sample_metrics () in
      let failed =
        Job_result.failure ~job ~derived_seed:1 ~elapsed:0.0 ~metrics "boom"
      in
      let circuit = Option.get (Iscas.by_name "C17") in
      let ok =
        Job_result.of_run ~job ~derived_seed:1 ~elapsed:0.0 ~metrics
          (Pipeline.run Pipeline.Standard circuit)
      in
      let s = open_store path in
      Store.append s failed;
      Store.append s ok;
      Store.close s;
      let s = open_store path in
      Alcotest.(check int) "one id" 1 (Store.count s);
      Alcotest.(check int) "nothing dropped" 0 (Store.dropped s);
      (match Store.find s job.Spec.id with
      | Some r -> Alcotest.(check bool) "last line wins" true (Job_result.is_ok r)
      | None -> Alcotest.fail "record lost");
      Store.close s)

let test_store_tolerates_truncation () =
  with_temp_store (fun path ->
      let job = sample_job () in
      let metrics = sample_metrics () in
      let s = open_store path in
      Store.append s
        (Job_result.failure ~job ~derived_seed:1 ~elapsed:0.0 ~metrics "kept");
      Store.close s;
      (* simulate a kill mid-write: a half line with no newline *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"job\":\"C17:evolution";
      close_out oc;
      let s = open_store path in
      Alcotest.(check int) "good record kept" 1 (Store.count s);
      Alcotest.(check int) "torn line dropped" 1 (Store.dropped s);
      (* appending after a torn tail still yields parseable lines *)
      Store.append s
        (Job_result.failure ~job ~derived_seed:1 ~elapsed:0.0 ~metrics "after");
      Store.close s;
      let s = open_store path in
      (match Store.find s job.Spec.id with
      | Some { Job_result.status = Job_result.Failed m; _ } ->
        Alcotest.(check string) "append after tear wins" "after" m
      | _ -> Alcotest.fail "lost the post-tear record");
      Store.close s)

let test_result_nonfinite_roundtrip () =
  (* measurements can go non-finite (a degenerate partition's cost);
     the sentinel encoding must carry them through bit-exactly *)
  let job = sample_job () in
  let metrics = sample_metrics () in
  let r =
    {
      (Job_result.failure ~job ~derived_seed:3 ~elapsed:0.0 ~metrics "nf")
      with
      Job_result.cost = Float.nan;
      sensor_area = Float.infinity;
      nominal_delay = Float.neg_infinity;
    }
  in
  match Job_result.of_line (Job_result.to_line r) with
  | Error e -> Alcotest.failf "non-finite record rejected: %s" e
  | Ok r' ->
    (* structural compare: nan = nan under [compare] *)
    Alcotest.(check bool) "bit-exact through codec" true (compare r r' = 0)

(* Satellite: any byte-truncation point loses at most the record being
   written; [dropped] counts the torn tail; a later append never glues
   onto it. *)
let qcheck_store_torn_tail =
  QCheck.Test.make ~name:"store: truncation loses at most the final record"
    ~count:40
    QCheck.(pair (int_range 1 6) (int_range 0 10_000_000))
    (fun (n, cut_raw) ->
      with_temp_store (fun path ->
          let metrics = sample_metrics () in
          let jobs =
            Spec.jobs grid_spec |> List.filteri (fun i _ -> i <= n)
          in
          if List.length jobs < n + 1 then
            QCheck.Test.fail_report "grid_spec has too few jobs";
          let record job msg =
            Job_result.failure ~job ~derived_seed:1 ~elapsed:0.0 ~metrics msg
          in
          let written, fresh_job =
            match List.filteri (fun i _ -> i < n) jobs, List.nth jobs n with
            | w, f -> List.map (fun j -> record j "w") w, f
          in
          Sys.remove path;
          let s = open_store path in
          List.iter (Store.append s) written;
          Store.close s;
          let content =
            match Iddq_util.Io.read_file path with
            | Ok c -> c
            | Error e ->
              QCheck.Test.fail_reportf "read back: %s"
                (Iddq_util.Io_error.to_string e)
          in
          let size = String.length content in
          let cut = cut_raw mod (size + 1) in
          let truncated = String.sub content 0 cut in
          let full_lines =
            String.fold_left
              (fun acc ch -> if ch = '\n' then acc + 1 else acc)
              0 truncated
          in
          let partial = cut > 0 && truncated.[cut - 1] <> '\n' in
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd cut;
          Unix.close fd;
          let s = open_store path in
          let survived = Store.count s = full_lines in
          let counted = Store.dropped s = if partial then 1 else 0 in
          (* the torn tail must never swallow a subsequent append *)
          Store.append s (record fresh_job "appended");
          Store.close s;
          let s = open_store path in
          let appended_back =
            match Store.find s fresh_job.Spec.id with
            | Some { Job_result.status = Job_result.Failed m; _ } ->
              m = "appended"
            | _ -> false
          in
          let recount = Store.count s = full_lines + 1 in
          Store.close s;
          survived && counted && appended_back && recount))

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let tiny_spec =
  {
    Spec.default with
    Spec.circuits = [ "C17"; "C432" ];
    methods = [ Pipeline.Evolution; Pipeline.Standard ];
    seeds = [ 1; 2 ];
    max_generations = Some 20;
  }

let run_spec ?domains ?resolve path spec =
  let store = open_store path in
  Fun.protect
    ~finally:(fun () -> Store.close store)
    (fun () ->
      match Runner.run ?domains ?resolve ~store spec with
      | Ok o -> o
      | Error e -> Alcotest.fail (Runner.error_to_string e))

let signature (results : Job_result.t list) =
  results
  |> List.map (fun r -> Job_result.to_line (Job_result.strip_timing r))
  |> List.sort compare

let test_runner_completes_and_resumes () =
  with_temp_store (fun path ->
      let first = run_spec ~domains:2 path tiny_spec in
      Alcotest.(check int) "all executed" 8 first.Runner.executed;
      Alcotest.(check int) "all ok" 8 first.Runner.ok;
      Alcotest.(check int) "none skipped" 0 first.Runner.skipped;
      let again = run_spec ~domains:2 path tiny_spec in
      Alcotest.(check int) "resume executes nothing" 0 again.Runner.executed;
      Alcotest.(check int) "resume skips all" 8 again.Runner.skipped;
      Alcotest.(check (list string)) "resume returns identical results"
        (signature first.Runner.results)
        (signature again.Runner.results))

let test_runner_deterministic_across_domains () =
  with_temp_store (fun path1 ->
      with_temp_store (fun path3 ->
          let r1 = run_spec ~domains:1 path1 tiny_spec in
          let r3 = run_spec ~domains:3 path3 tiny_spec in
          Alcotest.(check (list string))
            "1 domain and 3 domains agree modulo timing"
            (signature r1.Runner.results)
            (signature r3.Runner.results)))

let test_runner_seeds_standard_from_evolution () =
  with_temp_store (fun path ->
      let outcome = run_spec ~domains:2 path tiny_spec in
      let find method_ circuit =
        List.find
          (fun (r : Job_result.t) ->
            r.Job_result.method_ = method_
            && r.Job_result.circuit = circuit
            && r.Job_result.seed = 1)
          outcome.Runner.results
      in
      let evo = find Pipeline.Evolution "C432" in
      let std = find Pipeline.Standard "C432" in
      Alcotest.(check (list int)) "standard runs at evolution's sizes"
        (List.sort compare evo.Job_result.module_sizes)
        (List.sort compare std.Job_result.module_sizes))

let test_runner_derived_seeds () =
  let jobs = Spec.jobs tiny_spec in
  List.iter
    (fun (j : Spec.job) ->
      Alcotest.(check bool) "non-negative" true (Runner.derived_seed j >= 0);
      Alcotest.(check int) "stable" (Runner.derived_seed j) (Runner.derived_seed j))
    jobs;
  let seeds = List.map Runner.derived_seed jobs in
  Alcotest.(check int) "all distinct" (List.length jobs)
    (List.length (List.sort_uniq compare seeds))

let test_runner_isolates_crash_and_recovers () =
  (* a resolver that raises for one circuit: those jobs record Failed,
     the rest complete; a later run with a healthy resolver re-runs
     only the failures and converges to the uninterrupted aggregate *)
  let crashing name =
    if name = "C432" then failwith "injected resolver crash"
    else Iscas.by_name name
  in
  with_temp_store (fun broken_path ->
      with_temp_store (fun clean_path ->
          let broken = run_spec ~domains:2 ~resolve:crashing broken_path tiny_spec in
          Alcotest.(check int) "campaign survives the crashes" 8
            broken.Runner.executed;
          Alcotest.(check int) "C432 jobs failed" 4 broken.Runner.failed;
          Alcotest.(check int) "C17 jobs unaffected" 4 broken.Runner.ok;
          List.iter
            (fun (r : Job_result.t) ->
              match r.Job_result.status with
              | Job_result.Failed msg ->
                Alcotest.(check bool) "exception text recorded" true
                  (String.length msg > 0)
              | _ -> ())
            broken.Runner.results;
          (* recovery run: only the 4 failures re-execute *)
          let recovered = run_spec ~domains:2 broken_path tiny_spec in
          Alcotest.(check int) "only failures re-run" 4 recovered.Runner.executed;
          Alcotest.(check int) "healthy jobs resumed" 4 recovered.Runner.skipped;
          Alcotest.(check int) "all ok after recovery" 8 recovered.Runner.ok;
          let clean = run_spec ~domains:2 clean_path tiny_spec in
          Alcotest.(check (list string)) "same results as uninterrupted"
            (signature clean.Runner.results)
            (signature recovered.Runner.results);
          Alcotest.(check bool) "same Table-1 aggregate" true
            (Summary.table1_rows recovered.Runner.results
            = Summary.table1_rows clean.Runner.results)))

let test_runner_resumes_after_torn_store () =
  with_temp_store (fun torn_path ->
      with_temp_store (fun clean_path ->
          let clean = run_spec ~domains:2 clean_path tiny_spec in
          let _ = run_spec ~domains:2 torn_path tiny_spec in
          (* kill simulation: chop the file mid-way through its last line *)
          let size = (Unix.stat torn_path).Unix.st_size in
          let fd = Unix.openfile torn_path [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd (size - 40);
          Unix.close fd;
          let resumed = run_spec ~domains:2 torn_path tiny_spec in
          Alcotest.(check bool) "only the torn job re-ran" true
            (resumed.Runner.executed >= 1 && resumed.Runner.executed < 8);
          Alcotest.(check int) "complete again" 8 resumed.Runner.ok;
          Alcotest.(check (list string)) "aggregate matches uninterrupted"
            (signature clean.Runner.results)
            (signature resumed.Runner.results)))

let test_runner_timeout_records_and_reruns () =
  let spec = { tiny_spec with Spec.circuits = [ "C17" ]; Spec.timeout = Some 0.0 } in
  with_temp_store (fun path ->
      let strict = run_spec ~domains:2 path spec in
      Alcotest.(check int) "every job over a zero budget" 4
        strict.Runner.timed_out;
      Alcotest.(check int) "none ok" 0 strict.Runner.ok;
      (* timeouts are not checkpoints: lifting the budget re-runs them *)
      let relaxed = run_spec ~domains:2 path { spec with Spec.timeout = None } in
      Alcotest.(check int) "timed-out jobs re-ran" 4 relaxed.Runner.executed;
      Alcotest.(check int) "now ok" 4 relaxed.Runner.ok)

let test_runner_rejects_invalid_spec () =
  with_temp_store (fun path ->
      let store = open_store path in
      Fun.protect
        ~finally:(fun () -> Store.close store)
        (fun () ->
          match
            Runner.run ~store { tiny_spec with Spec.circuits = [ "C999" ] }
          with
          | Ok _ -> Alcotest.fail "invalid spec accepted"
          | Error (Runner.Invalid_spec msg) ->
            Alcotest.(check bool)
              "error names the circuit" true
              (let re = "C999" in
               let len = String.length re in
               let n = String.length msg in
               let rec contains i =
                 i + len <= n && (String.sub msg i len = re || contains (i + 1))
               in
               contains 0)))

let tests =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json float fidelity" `Quick test_json_float_fidelity;
    Alcotest.test_case "json string escapes" `Quick test_json_string_escapes;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "spec expansion" `Quick test_spec_expansion;
    Alcotest.test_case "spec dependency variants" `Quick test_spec_no_deps_variants;
    Alcotest.test_case "spec parse roundtrip" `Quick test_spec_parse_roundtrip;
    Alcotest.test_case "spec errors" `Quick test_spec_errors;
    Alcotest.test_case "result codec roundtrip" `Quick test_result_codec_roundtrip;
    Alcotest.test_case "result bad lines" `Quick test_result_bad_lines;
    Alcotest.test_case "store latest wins" `Quick test_store_latest_wins;
    Alcotest.test_case "store tolerates truncation" `Quick
      test_store_tolerates_truncation;
    Alcotest.test_case "result non-finite roundtrip" `Quick
      test_result_nonfinite_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_store_torn_tail;
    Alcotest.test_case "runner completes and resumes" `Slow
      test_runner_completes_and_resumes;
    Alcotest.test_case "runner deterministic across domains" `Slow
      test_runner_deterministic_across_domains;
    Alcotest.test_case "runner seeds standard from evolution" `Slow
      test_runner_seeds_standard_from_evolution;
    Alcotest.test_case "runner derived seeds" `Quick test_runner_derived_seeds;
    Alcotest.test_case "runner isolates crashes" `Slow
      test_runner_isolates_crash_and_recovers;
    Alcotest.test_case "runner resumes after torn store" `Slow
      test_runner_resumes_after_torn_store;
    Alcotest.test_case "runner timeout semantics" `Slow
      test_runner_timeout_records_and_reruns;
    Alcotest.test_case "runner rejects invalid spec" `Quick
      test_runner_rejects_invalid_spec;
  ]
