module Fault = Iddq_defects.Fault
module Iddq_sim = Iddq_defects.Iddq_sim
module Logic_sim = Iddq_patterns.Logic_sim
module Pattern_gen = Iddq_patterns.Pattern_gen
module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Library = Iddq_celllib.Library
module Rng = Iddq_util.Rng

let c17 = Iscas.c17 ()
let ch = Charac.make ~library:Library.default c17

let node name = Option.get (Circuit.node_id_of_name c17 name)

let test_bridge_activation () =
  (* bridge between input 1 and input 2: active when they differ *)
  let f = Fault.Bridge (node "1", node "2") in
  let v_same = Logic_sim.eval c17 [| true; true; false; false; false |] in
  let v_diff = Logic_sim.eval c17 [| true; false; false; false; false |] in
  Alcotest.(check bool) "same values: quiet" false (Fault.activated c17 f v_same);
  Alcotest.(check bool) "opposite values: active" true (Fault.activated c17 f v_diff)

let test_gos_activation () =
  let f = Fault.Gate_oxide_short (node "10", true) in
  (* g10 = NAND(1,3): output false iff both true *)
  let v_high = Logic_sim.eval c17 [| false; false; false; false; false |] in
  let v_low = Logic_sim.eval c17 [| true; false; true; false; false |] in
  Alcotest.(check bool) "active when node high" true (Fault.activated c17 f v_high);
  Alcotest.(check bool) "quiet when node low" false (Fault.activated c17 f v_low)

let test_floating_gate_always_active () =
  let f = Fault.Floating_gate (node "16") in
  let v = Logic_sim.eval c17 [| false; true; false; true; false |] in
  Alcotest.(check bool) "always active" true (Fault.activated c17 f v)

let test_location () =
  let g10 = Circuit.gate_of_node c17 (node "10") in
  Alcotest.(check int) "bridge at driving gate" g10
    (Fault.location c17 (Fault.Bridge (node "10", node "1")));
  Alcotest.(check int) "bridge picks the gate-driven net" g10
    (Fault.location c17 (Fault.Bridge (node "1", node "10")));
  Alcotest.(check int) "gos location" g10
    (Fault.location c17 (Fault.Gate_oxide_short (node "10", true)));
  Alcotest.(check bool) "input-input bridge rejected" true
    (try ignore (Fault.location c17 (Fault.Bridge (node "1", node "2"))); false
     with Invalid_argument _ -> true)

let test_random_population () =
  let rng = Rng.create 3 in
  let pop = Fault.random_population ~rng c17 ~count:50 ~defect_current:1e-6 in
  Alcotest.(check int) "count" 50 (List.length pop);
  List.iter
    (fun inj ->
      Alcotest.(check (float 0.0)) "current" 1e-6 inj.Fault.defect_current;
      (* location never raises: bridges always include a gate net *)
      ignore (Fault.location c17 inj.Fault.fault))
    pop

let test_partitioned_detection () =
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let vectors = Pattern_gen.exhaustive c17 in
  (* a 2 uA gate-oxide short is far above the 1 uA threshold and is
     activated by some vector *)
  let faults =
    [ { Fault.fault = Fault.Gate_oxide_short (node "10", true); defect_current = 2e-6 } ]
  in
  let r = Iddq_sim.run_partitioned p ~vectors ~faults in
  Alcotest.(check (float 0.0)) "full coverage" 1.0 r.Iddq_sim.coverage;
  (match r.Iddq_sim.detections with
  | [ d ] ->
    Alcotest.(check bool) "detected" true d.Iddq_sim.detected;
    Alcotest.(check bool) "vector recorded" true (d.Iddq_sim.detecting_vector <> None);
    Alcotest.(check (option int)) "module recorded" (Some 0) d.Iddq_sim.module_id
  | _ -> Alcotest.fail "one detection expected");
  Alcotest.(check bool) "test time positive" true (r.Iddq_sim.test_time > 0.0)

let test_below_threshold_not_detected () =
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let vectors = Pattern_gen.exhaustive c17 in
  let faults =
    [ { Fault.fault = Fault.Gate_oxide_short (node "10", true); defect_current = 1e-8 } ]
  in
  let r = Iddq_sim.run_partitioned p ~vectors ~faults in
  Alcotest.(check (float 0.0)) "missed" 0.0 r.Iddq_sim.coverage

let test_never_activated_not_detected () =
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  (* only vectors where inputs 1 and 3 are both true: g10 stays low,
     so a high-polarity short on g10 never conducts *)
  let vectors =
    [| [| true; false; true; false; false |]; [| true; true; true; true; true |] |]
  in
  let faults =
    [ { Fault.fault = Fault.Gate_oxide_short (node "10", true); defect_current = 5e-6 } ]
  in
  let r = Iddq_sim.run_partitioned p ~vectors ~faults in
  Alcotest.(check (float 0.0)) "not activated, not detected" 0.0
    r.Iddq_sim.coverage

let test_single_sensor_guard_band () =
  (* make the whole-chip leakage matter: leaky library, defect current
     below the guard-banded threshold but above the per-module one *)
  let leaky_cells =
    List.map
      (fun k ->
        let c = Library.cell Library.default k in
        (k, { c with Iddq_celllib.Cell.leakage = 1500.0 *. c.Iddq_celllib.Cell.leakage }))
      Iddq_netlist.Gate.all_kinds
  in
  let leaky =
    match
      Library.make ~name:"leaky" ~technology:(Library.technology Library.default)
        ~cells:leaky_cells ()
    with
    | Ok l -> l
    | Error e -> failwith e
  in
  let ch = Charac.make ~library:leaky c17 in
  (* total leakage = 6 NAND * 180 nA = 1.08 uA; guard band 2 puts the
     single-sensor threshold at 2.16 uA, so a 0.8 uA defect hides
     under it (1.88 uA measured) while a module sensor sees
     0.54 + 0.8 = 1.34 uA >= the 1 uA threshold *)
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let vectors = Pattern_gen.exhaustive c17 in
  let faults =
    [ { Fault.fault = Fault.Gate_oxide_short (node "10", true); defect_current = 0.8e-6 } ]
  in
  let partitioned = Iddq_sim.run_partitioned p ~vectors ~faults in
  let single = Iddq_sim.run_single_sensor ch ~vectors ~faults in
  Alcotest.(check (float 0.0)) "partitioned catches it" 1.0
    partitioned.Iddq_sim.coverage;
  Alcotest.(check (float 0.0)) "single sensor misses it" 0.0
    single.Iddq_sim.coverage

let test_empty_fault_list () =
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let r =
    Iddq_sim.run_partitioned p ~vectors:(Pattern_gen.exhaustive c17) ~faults:[]
  in
  Alcotest.(check (float 0.0)) "vacuous coverage 1" 1.0 r.Iddq_sim.coverage

let tests =
  [
    Alcotest.test_case "bridge activation" `Quick test_bridge_activation;
    Alcotest.test_case "gos activation" `Quick test_gos_activation;
    Alcotest.test_case "floating gate" `Quick test_floating_gate_always_active;
    Alcotest.test_case "location" `Quick test_location;
    Alcotest.test_case "random population" `Quick test_random_population;
    Alcotest.test_case "partitioned detection" `Quick test_partitioned_detection;
    Alcotest.test_case "below threshold" `Quick test_below_threshold_not_detected;
    Alcotest.test_case "never activated" `Quick test_never_activated_not_detected;
    Alcotest.test_case "single sensor guard band" `Quick
      test_single_sensor_guard_band;
    Alcotest.test_case "empty fault list" `Quick test_empty_fault_list;
  ]
