(* Additional cross-module properties. *)

module Partition = Iddq_core.Partition
module Partition_io = Iddq_core.Partition_io
module Charac = Iddq_analysis.Charac
module Standard = Iddq_baseline.Standard
module Schedule = Iddq_bic.Schedule
module Sensor = Iddq_bic.Sensor
module Generator = Iddq_netlist.Generator
module Library = Iddq_celllib.Library
module Technology = Iddq_celllib.Technology
module Rng = Iddq_util.Rng

let make_circuit ~gates ~seed =
  let rng = Rng.create seed in
  Generator.layered_dag ~rng ~name:"q" ~num_inputs:6 ~num_outputs:3
    ~num_gates:gates ~depth:(1 + (gates / 8)) ()

let qcheck_partition_io_roundtrip =
  QCheck.Test.make ~name:"partition save/load preserves grouping and cost"
    ~count:20
    QCheck.(triple (int_range 15 60) (int_range 2 5) (int_range 1 100000))
    (fun (gates, k, seed) ->
      let circuit = make_circuit ~gates ~seed in
      let ch = Charac.make ~library:Library.default circuit in
      let p = Partition.create ch ~assignment:(Array.init gates (fun g -> g mod k)) in
      match Partition_io.of_string ch (Partition_io.to_string p) with
      | Error _ -> false
      | Ok q ->
        let canon r =
          List.map (fun m -> Array.to_list (Partition.members r m)) (Partition.module_ids r)
          |> List.sort compare
        in
        canon p = canon q)

let qcheck_standard_sizes_exact =
  QCheck.Test.make ~name:"standard partitioning honours arbitrary size splits"
    ~count:15
    QCheck.(triple (int_range 20 60) (int_range 2 5) (int_range 1 100000))
    (fun (gates, k, seed) ->
      let circuit = make_circuit ~gates ~seed in
      let ch = Charac.make ~library:Library.default circuit in
      (* a deterministic uneven split summing to [gates] *)
      let base = gates / k in
      let sizes =
        List.init k (fun i ->
            if i = 0 then gates - (base * (k - 1)) else base)
      in
      let p = Standard.partition ch ~module_sizes:sizes in
      List.map (Partition.size p) (Partition.module_ids p) = sizes)

let qcheck_schedule_covers_all_modules =
  QCheck.Test.make
    ~name:"budgeted schedule measures every module exactly once" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 1 12) (float_range 0.001 0.05))
              (float_range 0.01 0.2))
    (fun (peaks, budget) ->
      let tech = Technology.default in
      let sensors =
        List.mapi
          (fun i p ->
            (i, Sensor.size ~technology:tech ~peak_current:p ~module_rail_capacitance:1e-12))
          peaks
      in
      let sched = Schedule.schedule ~technology:tech ~d_bic:5e-8 ~budget sensors in
      let all =
        List.concat_map (fun s -> s.Schedule.members) sched.Schedule.sessions
        |> List.sort compare
      in
      all = List.init (List.length peaks) Fun.id)

let qcheck_sensor_area_antitone_in_rs =
  QCheck.Test.make ~name:"sensor area decreases with rail budget" ~count:100
    QCheck.(pair (float_range 1e-4 0.1) (pair (float_range 0.05 0.3) (float_range 0.05 0.3)))
    (fun (imax, (r1, r2)) ->
      let lo = Stdlib.min r1 r2 and hi = Stdlib.max r1 r2 in
      let area budget =
        (Sensor.size
           ~technology:{ Technology.default with Technology.rail_budget = budget }
           ~peak_current:imax ~module_rail_capacitance:1e-12)
          .Sensor.area
      in
      (* a looser rail budget allows a smaller (cheaper) switch *)
      area hi <= area lo +. 1e-9)

let qcheck_chain_seed_sizes_bounded =
  QCheck.Test.make ~name:"chain seeds never exceed the size cap" ~count:15
    QCheck.(triple (int_range 20 80) (int_range 3 15) (int_range 1 100000))
    (fun (gates, cap, seed) ->
      let circuit = make_circuit ~gates ~seed in
      let ch = Charac.make ~library:Library.default circuit in
      let rng = Rng.create seed in
      let p = Iddq_evolution.Seeds.chain_partition ~rng ~module_size:cap ch in
      List.for_all (fun m -> Partition.size p m <= cap) (Partition.module_ids p))

let tests =
  [
    QCheck_alcotest.to_alcotest qcheck_partition_io_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_standard_sizes_exact;
    QCheck_alcotest.to_alcotest qcheck_schedule_covers_all_modules;
    QCheck_alcotest.to_alcotest qcheck_sensor_area_antitone_in_rs;
    QCheck_alcotest.to_alcotest qcheck_chain_seed_sizes_bounded;
  ]
