module Podem = Iddq_atpg.Podem
module Stuck_at = Iddq_defects.Stuck_at
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Builder = Iddq_netlist.Builder
module Gate = Iddq_netlist.Gate
module Rng = Iddq_util.Rng

let c17 = Iscas.c17 ()
let node name = Option.get (Circuit.node_id_of_name c17 name)

let check_cube_detects c fault = function
  | Podem.Test cube ->
    (* any concretization must detect (the cube is a test cube) *)
    let rng = Rng.create 77 in
    for _ = 1 to 5 do
      let v = Podem.concretize ~rng cube in
      Alcotest.(check bool) "cube detects" true (Stuck_at.detects c fault v)
    done
  | Podem.Untestable -> Alcotest.fail "expected a test, got Untestable"
  | Podem.Aborted -> Alcotest.fail "expected a test, got Aborted"

let test_c17_all_faults_testable () =
  (* C17 is fully testable: PODEM must find a test for every fault *)
  List.iter
    (fun fault ->
      check_cube_detects c17 fault (Podem.generate c17 fault))
    (Stuck_at.full_fault_list c17)

let test_stem_fault_on_input () =
  let fault = Stuck_at.Stem (node "3", false) in
  check_cube_detects c17 fault (Podem.generate c17 fault)

let test_pin_fault () =
  let fault = Stuck_at.Pin { gate = node "16"; pin = 1; value = true } in
  check_cube_detects c17 fault (Podem.generate c17 fault)

let test_redundant_fault_untestable () =
  (* y = OR(a, NOT a) == 1: y/sa1 is undetectable *)
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b "na" Gate.Not [ "a" ];
  Builder.add_gate b "y" Gate.Or [ "a"; "na" ];
  Builder.add_output b "y";
  let c = Builder.freeze_exn b in
  let y = Option.get (Circuit.node_id_of_name c "y") in
  (match Podem.generate c (Stuck_at.Stem (y, true)) with
  | Podem.Untestable -> ()
  | Podem.Test _ -> Alcotest.fail "redundant fault got a test"
  | Podem.Aborted -> Alcotest.fail "tiny circuit aborted");
  (* ... and y/sa0 is easy *)
  check_cube_detects c (Stuck_at.Stem (y, false))
    (Podem.generate c (Stuck_at.Stem (y, false)))

let test_xor_propagation () =
  (* propagation through XOR requires no side values: exercise the
     parity paths *)
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_input b "b";
  Builder.add_input b "c";
  Builder.add_gate b "x1" Gate.Xor [ "a"; "b" ];
  Builder.add_gate b "y" Gate.Xor [ "x1"; "c" ];
  Builder.add_output b "y";
  let c = Builder.freeze_exn b in
  let a = Option.get (Circuit.node_id_of_name c "a") in
  check_cube_detects c (Stuck_at.Stem (a, true))
    (Podem.generate c (Stuck_at.Stem (a, true)))

let test_dont_cares_marked () =
  (* a fault deep on one side should leave unrelated inputs as X *)
  let fault = Stuck_at.Stem (node "22", true) in
  match Podem.generate c17 fault with
  | Podem.Test cube ->
    Alcotest.(check int) "cube width" 5 (Array.length cube);
    Alcotest.(check bool) "at least one assignment" true
      (Array.exists (fun x -> x <> None) cube)
  | Podem.Untestable | Podem.Aborted -> Alcotest.fail "no test for 22/sa1"

let test_complete_set_c17 () =
  let rng = Rng.create 13 in
  let faults = Stuck_at.collapsed_fault_list c17 in
  let r = Podem.complete_set ~rng c17 faults in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 r.Podem.coverage;
  Alcotest.(check (float 1e-9)) "full efficiency" 1.0 r.Podem.efficiency;
  Alcotest.(check int) "nothing untestable" 0 r.Podem.untestable;
  Alcotest.(check int) "nothing aborted" 0 r.Podem.aborted;
  Alcotest.(check bool) "set is small" true (Array.length r.Podem.vectors <= 16)

let test_complete_set_tops_up_random () =
  let rng = Rng.create 17 in
  let circuit = Iscas.c432_like () in
  let faults = Stuck_at.collapsed_fault_list circuit in
  let initial = Iddq_patterns.Pattern_gen.random ~rng circuit ~count:32 in
  let random_only = Stuck_at.fault_simulate circuit ~vectors:initial ~faults in
  let r = Podem.complete_set ~rng ~initial circuit faults in
  Alcotest.(check bool)
    (Printf.sprintf "topped up %.1f%% -> %.1f%%"
       (100.0 *. random_only.Stuck_at.coverage)
       (100.0 *. r.Podem.coverage))
    true
    (r.Podem.coverage > random_only.Stuck_at.coverage);
  Alcotest.(check bool)
    (Printf.sprintf "high ATPG efficiency (%.1f%%)" (100.0 *. r.Podem.efficiency))
    true
    (r.Podem.efficiency > 0.9);
  Alcotest.(check bool) "initial vectors kept" true
    (Array.length r.Podem.vectors >= 32)

let test_complete_set_empty_faults () =
  let rng = Rng.create 1 in
  let r = Podem.complete_set ~rng c17 [] in
  Alcotest.(check (float 0.0)) "vacuous" 1.0 r.Podem.coverage;
  Alcotest.(check int) "no vectors" 0 (Array.length r.Podem.vectors)

let tests =
  [
    Alcotest.test_case "c17 all faults" `Quick test_c17_all_faults_testable;
    Alcotest.test_case "input stem fault" `Quick test_stem_fault_on_input;
    Alcotest.test_case "pin fault" `Quick test_pin_fault;
    Alcotest.test_case "redundant untestable" `Quick
      test_redundant_fault_untestable;
    Alcotest.test_case "xor propagation" `Quick test_xor_propagation;
    Alcotest.test_case "don't cares" `Quick test_dont_cares_marked;
    Alcotest.test_case "complete set c17" `Quick test_complete_set_c17;
    Alcotest.test_case "complete set top-up" `Slow
      test_complete_set_tops_up_random;
    Alcotest.test_case "complete set empty" `Quick test_complete_set_empty_faults;
  ]
