module Cell = Iddq_celllib.Cell
module Library = Iddq_celllib.Library
module Technology = Iddq_celllib.Technology
module Gate = Iddq_netlist.Gate

let test_default_library_valid () =
  let lib = Library.default in
  List.iter
    (fun k ->
      let c = Library.cell lib k in
      Alcotest.(check bool)
        (Gate.to_string k ^ " positive fields")
        true
        (c.Cell.peak_current > 0.0 && c.Cell.leakage > 0.0 && c.Cell.delay > 0.0
        && c.Cell.drive_resistance > 0.0
        && c.Cell.output_capacitance > 0.0
        && c.Cell.rail_capacitance > 0.0 && c.Cell.area > 0.0))
    Gate.all_kinds

let test_leakage_calibration () =
  (* the calibration target of DESIGN.md: with the ISCAS mix, the mean
     gate leakage keeps ~600-gate modules above discriminability 10 at
     the 1 uA threshold *)
  let lib = Library.default in
  let tech = Library.technology lib in
  let mix = Iddq_netlist.Generator.iscas_kind_mix in
  let total_w = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix in
  let mean_leak =
    List.fold_left
      (fun acc (k, w) -> acc +. (w /. total_w *. (Library.cell lib k).Cell.leakage))
      0.0 mix
  in
  let max_gates =
    tech.Technology.iddq_threshold
    /. (tech.Technology.required_discriminability *. mean_leak)
  in
  Alcotest.(check bool)
    (Printf.sprintf "feasible module size %f in [400, 900]" max_gates)
    true
    (max_gates > 400.0 && max_gates < 900.0)

let test_scale_for_fanin () =
  let c = Library.cell Library.default Gate.Nand in
  let c3 = Cell.scale_for_fanin c 3 in
  let c5 = Cell.scale_for_fanin c 5 in
  Alcotest.(check bool) "2-input unchanged" true (Cell.scale_for_fanin c 2 = c);
  Alcotest.(check bool) "delay grows" true (c3.Cell.delay > c.Cell.delay);
  Alcotest.(check bool) "monotone" true (c5.Cell.delay > c3.Cell.delay);
  Alcotest.(check bool) "leakage grows" true (c5.Cell.leakage > c.Cell.leakage);
  Alcotest.(check bool) "area grows" true (c5.Cell.area > c3.Cell.area)

let test_library_missing_kind () =
  let cells =
    List.filter (fun (k, _) -> not (Gate.equal k Gate.Xor))
      (List.map (fun k -> (k, Library.cell Library.default k)) Gate.all_kinds)
  in
  match Library.make ~technology:Technology.default ~cells () with
  | Ok _ -> Alcotest.fail "expected missing-kind error"
  | Error e ->
    Alcotest.(check bool) ("mentions XOR: " ^ e) true
      (String.length e > 0)

let test_library_duplicate_kind () =
  let nand = (Gate.Nand, Library.cell Library.default Gate.Nand) in
  let cells =
    nand :: List.map (fun k -> (k, Library.cell Library.default k)) Gate.all_kinds
  in
  match Library.make ~technology:Technology.default ~cells () with
  | Ok _ -> Alcotest.fail "expected duplicate error"
  | Error e ->
    Alcotest.(check bool) ("mentions twice: " ^ e) true (String.length e > 0)

let test_library_bad_cell () =
  let bad = { (Library.cell Library.default Gate.Nand) with Cell.delay = -1.0 } in
  let cells =
    List.map
      (fun k -> (k, if Gate.equal k Gate.Nand then bad else Library.cell Library.default k))
      Gate.all_kinds
  in
  match Library.make ~technology:Technology.default ~cells () with
  | Ok _ -> Alcotest.fail "expected bad-cell error"
  | Error _ -> ()

let test_technology_validation () =
  Alcotest.(check bool) "default ok" true
    (Technology.validate Technology.default = Ok ());
  let bad = { Technology.default with Technology.rail_budget = 10.0 } in
  Alcotest.(check bool) "rail budget > vdd rejected" true
    (Result.is_error (Technology.validate bad));
  let bad2 = { Technology.default with Technology.required_discriminability = 0.5 } in
  Alcotest.(check bool) "d < 1 rejected" true
    (Result.is_error (Technology.validate bad2));
  let bad3 = { Technology.default with Technology.separation_cutoff = 0 } in
  Alcotest.(check bool) "p < 1 rejected" true
    (Result.is_error (Technology.validate bad3))

let test_cell_for () =
  let lib = Library.default in
  let base = Library.cell lib Gate.And in
  let derated = Library.cell_for lib Gate.And ~fanin:4 in
  Alcotest.(check bool) "derated slower" true (derated.Cell.delay > base.Cell.delay)

let tests =
  [
    Alcotest.test_case "default library valid" `Quick test_default_library_valid;
    Alcotest.test_case "leakage calibration" `Quick test_leakage_calibration;
    Alcotest.test_case "scale for fanin" `Quick test_scale_for_fanin;
    Alcotest.test_case "missing kind" `Quick test_library_missing_kind;
    Alcotest.test_case "duplicate kind" `Quick test_library_duplicate_kind;
    Alcotest.test_case "bad cell" `Quick test_library_bad_cell;
    Alcotest.test_case "technology validation" `Quick test_technology_validation;
    Alcotest.test_case "cell_for derating" `Quick test_cell_for;
  ]
