module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Generator = Iddq_netlist.Generator
module Library = Iddq_celllib.Library
module Rng = Iddq_util.Rng

let make circuit = Charac.make ~library:Library.default circuit

let c17_two_modules () =
  let ch = make (Iscas.c17 ()) in
  (* gates in topo order: 10, 11, 16, 19, 22, 23 *)
  (ch, Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |])

let test_create_basic () =
  let _, p = c17_two_modules () in
  Alcotest.(check int) "modules" 2 (Partition.num_modules p);
  Alcotest.(check (list int)) "ids" [ 0; 1 ] (Partition.module_ids p);
  Alcotest.(check int) "size 0" 3 (Partition.size p 0);
  Alcotest.(check int) "size 1" 3 (Partition.size p 1);
  Alcotest.(check bool) "members 0" true (Partition.members p 0 = [| 0; 2; 4 |]);
  Alcotest.(check (result unit string)) "consistent" (Ok ())
    (Partition.check_consistent p)

let test_create_validation () =
  let ch = make (Iscas.c17 ()) in
  Alcotest.(check bool) "length mismatch rejected" true
    (try
       ignore (Partition.create ch ~assignment:[| 0; 1 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "sparse ids rejected" true
    (try
       ignore (Partition.create ch ~assignment:[| 0; 2; 0; 2; 0; 2 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative id rejected" true
    (try
       ignore (Partition.create ch ~assignment:[| 0; -1; 0; 0; 0; 0 |]);
       false
     with Invalid_argument _ -> true)

let test_move_gate () =
  let _, p = c17_two_modules () in
  Partition.move_gate p 0 1;
  Alcotest.(check int) "module of 0" 1 (Partition.module_of_gate p 0);
  Alcotest.(check int) "size 0 shrank" 2 (Partition.size p 0);
  Alcotest.(check int) "size 1 grew" 4 (Partition.size p 1);
  Alcotest.(check (result unit string)) "aggregates consistent" (Ok ())
    (Partition.check_consistent p);
  (* moving back restores the aggregate state *)
  Partition.move_gate p 0 0;
  Alcotest.(check (result unit string)) "restored" (Ok ())
    (Partition.check_consistent p)

let test_move_to_own_module_noop () =
  let _, p = c17_two_modules () in
  let before = Partition.assignment p in
  Partition.move_gate p 3 1;
  Alcotest.(check bool) "unchanged" true (Partition.assignment p = before)

let test_module_death () =
  let ch = make (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:[| 0; 0; 0; 0; 0; 1 |] in
  Partition.move_gate p 5 0;
  Alcotest.(check int) "one module left" 1 (Partition.num_modules p);
  Alcotest.(check (list int)) "id 1 dead" [ 0 ] (Partition.module_ids p);
  Alcotest.(check int) "dead module size 0" 0 (Partition.size p 1);
  Alcotest.(check (result unit string)) "consistent" (Ok ())
    (Partition.check_consistent p);
  Alcotest.(check bool) "moving to a dead module rejected" true
    (try
       Partition.move_gate p 0 1;
       false
     with Invalid_argument _ -> true)

let test_copy_independent () =
  let _, p = c17_two_modules () in
  let q = Partition.copy p in
  Partition.move_gate p 0 1;
  Alcotest.(check int) "copy untouched" 0 (Partition.module_of_gate q 0);
  Alcotest.(check (result unit string)) "copy consistent" (Ok ())
    (Partition.check_consistent q)

let test_boundary_gates () =
  let circuit = Iscas.c17 () in
  let ch = make circuit in
  (* {10,16,22} vs {11,19,23}: all six gates touch the other cone
     except... 10 connects to 22 (own) and inputs; 10-16? no.  10 is
     inner iff all neighbours are in its module. *)
  let name g = Circuit.node_name circuit (Circuit.node_of_gate circuit g) in
  let assign = Array.make 6 0 in
  Array.iteri
    (fun g _ ->
      if List.mem (name g) [ "11"; "19"; "23" ] then assign.(g) <- 1)
    assign;
  let p = Partition.create ch ~assignment:assign in
  let boundary0 = Partition.boundary_gates p 0 in
  let names0 = Array.to_list boundary0 |> List.map name |> List.sort compare in
  (* 16 = NAND(2, 11) touches 11 and 23; 10 only touches 22; 22
     touches 10 and 16 only.  So boundary of {10,16,22} = {16}. *)
  Alcotest.(check (list string)) "boundary of cone 0" [ "16" ] names0;
  let boundary1 = Partition.boundary_gates p 1 in
  let names1 = Array.to_list boundary1 |> List.map name |> List.sort compare in
  (* 11 feeds 16; 23 reads 16 -> both boundary; 19 only touches 11,23 *)
  Alcotest.(check (list string)) "boundary of cone 1" [ "11"; "23" ] names1

let test_neighbour_modules () =
  let circuit = Iscas.c17 () in
  let ch = make circuit in
  let name g = Circuit.node_name circuit (Circuit.node_of_gate circuit g) in
  let assign = Array.make 6 0 in
  Array.iteri
    (fun g _ -> if List.mem (name g) [ "11"; "19"; "23" ] then assign.(g) <- 1)
    assign;
  let p = Partition.create ch ~assignment:assign in
  let g16 =
    Circuit.gate_of_node circuit (Option.get (Circuit.node_id_of_name circuit "16"))
  in
  Alcotest.(check (list int)) "16 neighbours module 1" [ 1 ]
    (Partition.neighbour_modules p g16);
  let g10 =
    Circuit.gate_of_node circuit (Option.get (Circuit.node_id_of_name circuit "10"))
  in
  Alcotest.(check (list int)) "10 is interior" []
    (Partition.neighbour_modules p g10)

let test_aggregates_match_direct_estimators () =
  let ch, p = c17_two_modules () in
  List.iter
    (fun m ->
      let gates = Partition.members p m in
      Alcotest.(check (float 1e-18)) "leakage"
        (Iddq_analysis.Switching.leakage ch gates)
        (Partition.leakage p m);
      Alcotest.(check (float 1e-15)) "imax"
        (Iddq_analysis.Switching.max_transient_current ch gates)
        (Partition.max_transient_current p m))
    (Partition.module_ids p)

let test_sensors_per_live_module () =
  let _, p = c17_two_modules () in
  Alcotest.(check int) "two sensors" 2 (List.length (Partition.sensors p))

let random_move_sequence ch rng p steps =
  for _ = 1 to steps do
    if Partition.num_modules p >= 2 then begin
      let src = Rng.choose_list rng (Partition.module_ids p) in
      let members = Partition.members p src in
      if Array.length members > 0 then begin
        let g = Rng.choose rng members in
        let target = Rng.choose_list rng (Partition.module_ids p) in
        if target <> Partition.module_of_gate p g then
          Partition.move_gate p g target
      end
    end
  done;
  ignore ch

let qcheck_incremental_consistency =
  QCheck.Test.make
    ~name:"aggregates stay consistent under random move sequences" ~count:25
    QCheck.(triple (int_range 20 80) (int_range 2 6) (int_range 1 100000))
    (fun (gates, k, seed) ->
      let rng = Rng.create seed in
      let circuit =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:6 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let ch = make circuit in
      let assignment = Array.init gates (fun g -> g mod k) in
      let p = Partition.create ch ~assignment in
      random_move_sequence ch rng p 60;
      Partition.check_consistent p = Ok ())

let qcheck_cover_preserved =
  QCheck.Test.make ~name:"moves preserve the disjoint cover" ~count:25
    QCheck.(pair (int_range 20 60) (int_range 1 100000))
    (fun (gates, seed) ->
      let rng = Rng.create seed in
      let circuit =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:6 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let ch = make circuit in
      let p = Partition.create ch ~assignment:(Array.init gates (fun g -> g mod 3)) in
      random_move_sequence ch rng p 40;
      (* every gate in exactly one live module; sizes sum to n *)
      let total =
        List.fold_left (fun acc m -> acc + Partition.size p m) 0
          (Partition.module_ids p)
      in
      total = gates)

let tests =
  [
    Alcotest.test_case "create basic" `Quick test_create_basic;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "move gate" `Quick test_move_gate;
    Alcotest.test_case "move to own module" `Quick test_move_to_own_module_noop;
    Alcotest.test_case "module death" `Quick test_module_death;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "boundary gates" `Quick test_boundary_gates;
    Alcotest.test_case "neighbour modules" `Quick test_neighbour_modules;
    Alcotest.test_case "aggregates match estimators" `Quick
      test_aggregates_match_direct_estimators;
    Alcotest.test_case "sensors per module" `Quick test_sensors_per_live_module;
    QCheck_alcotest.to_alcotest qcheck_incremental_consistency;
    QCheck_alcotest.to_alcotest qcheck_cover_preserved;
  ]
