(* The I/O robustness layer: leak-proof channel handling, atomic
   writes, the bench OUTPUT regression, print/parse round-trip
   properties, and a bounded mutation-fuzz smoke pass. *)

module Io = Iddq_util.Io
module Io_error = Iddq_util.Io_error
module Rng = Iddq_util.Rng
module Bench_io = Iddq_netlist.Bench_io
module Verilog_io = Iddq_netlist.Verilog_io
module Generator = Iddq_netlist.Generator
module Circuit = Iddq_netlist.Circuit
module Library = Iddq_celllib.Library
module Library_io = Iddq_celllib.Library_io
module Pattern_io = Iddq_patterns.Pattern_io
module Harness = Iddq_fuzz.Harness

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Bench OUTPUT handling (regression: add_output was the one Builder
   call not guarded against Invalid_argument)                          *)
(* ------------------------------------------------------------------ *)

let c17_text = Bench_io.to_string (Iddq_netlist.Iscas.c17 ())

let test_bench_duplicate_output () =
  (* duplicate OUTPUT lines are idempotent, not an error *)
  let doubled = c17_text ^ "OUTPUT(22)\nOUTPUT(22)\n" in
  match Bench_io.parse_string doubled with
  | Error e -> Alcotest.failf "duplicate OUTPUT rejected: %s" (Io_error.to_string e)
  | Ok c ->
    let reference =
      match Bench_io.parse_string c17_text with
      | Ok c -> c
      | Error e -> Alcotest.failf "c17 reparse: %s" (Io_error.to_string e)
    in
    Alcotest.(check int) "output count unchanged"
      (Circuit.num_outputs reference)
      (Circuit.num_outputs c)

let test_bench_output_undeclared () =
  (* an OUTPUT naming a net that never gets declared must surface as a
     structured Error from freeze, never an exception *)
  match Bench_io.parse_string (c17_text ^ "OUTPUT(no_such_net)\n") with
  | Ok _ -> Alcotest.fail "undeclared OUTPUT accepted"
  | Error e ->
    let msg = Io_error.to_string e in
    if not (contains msg "no_such_net") then
      Alcotest.failf "error does not name the net: %s" msg

let test_bench_output_malformed () =
  let cases = [ "OUTPUT()\n"; "OUTPUT(a, b)\n"; "OUTPUT\n" ] in
  List.iter
    (fun extra ->
      match Bench_io.parse_string (c17_text ^ extra) with
      | Ok _ -> Alcotest.failf "malformed %S accepted" (String.trim extra)
      | Error _ -> ())
    cases

(* ------------------------------------------------------------------ *)
(* Io primitives                                                       *)
(* ------------------------------------------------------------------ *)

let test_read_file_missing () =
  let path = tmp_path "iddq-no-such-file-421.txt" in
  match Io.read_file path with
  | Ok _ -> Alcotest.fail "read of missing file succeeded"
  | Error e ->
    let msg = Io_error.to_string e in
    if not (contains msg path) then
      Alcotest.failf "error does not carry the path: %s" msg

let no_tmp_leftovers base =
  let dir = Filename.dirname base and leaf = Filename.basename base in
  Array.iter
    (fun f ->
      if
        String.length f > String.length leaf
        && String.sub f 0 (String.length leaf) = leaf
      then Alcotest.failf "scratch file left behind: %s" f)
    (Sys.readdir dir)

let test_write_file_atomic_overwrite () =
  let path = tmp_path "iddq-atomic-overwrite.txt" in
  (match Io.write_file_atomic path "first\n" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "first write: %s" (Io_error.to_string e));
  (match Io.write_file_atomic path "second\n" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "second write: %s" (Io_error.to_string e));
  (match Io.read_file path with
  | Ok s -> Alcotest.(check string) "overwritten" "second\n" s
  | Error e -> Alcotest.failf "read back: %s" (Io_error.to_string e));
  no_tmp_leftovers path;
  Sys.remove path

let test_atomic_preserves_on_crash () =
  (* a callback that dies mid-write must leave the previous artifact
     byte-identical and remove its scratch file *)
  let path = tmp_path "iddq-atomic-crash.txt" in
  (match Io.write_file_atomic path "precious\n" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "seed write: %s" (Io_error.to_string e));
  (try
     ignore
       (Io.with_out_atomic path (fun oc ->
            output_string oc "half-writ";
            raise Exit));
     Alcotest.fail "callback exception swallowed"
   with Exit -> ());
  (match Io.read_file path with
  | Ok s -> Alcotest.(check string) "previous contents intact" "precious\n" s
  | Error e -> Alcotest.failf "read back: %s" (Io_error.to_string e));
  no_tmp_leftovers path;
  Sys.remove path

let test_atomic_missing_dir () =
  match Io.write_file_atomic "/iddq-no-such-dir-421/x.txt" "data" with
  | Ok () -> Alcotest.fail "write into missing directory succeeded"
  | Error _ -> ()

let test_fd_stable_across_failures () =
  match Io.open_fd_count () with
  | None -> () (* no /proc on this platform; the invariant is untestable *)
  | Some before ->
    let missing = tmp_path "iddq-fd-missing.txt" in
    let corrupt = tmp_path "iddq-fd-corrupt.txt" in
    (match Io.write_file_atomic corrupt "%%% definitely not a netlist %%%\n" with
    | Ok () -> ()
    | Error e -> Alcotest.failf "corpus write: %s" (Io_error.to_string e));
    for _ = 1 to 50 do
      ignore (Bench_io.parse_file missing);
      ignore (Bench_io.parse_file corrupt);
      ignore (Verilog_io.parse_file corrupt);
      ignore (Library_io.parse_file corrupt);
      ignore (Pattern_io.read_file ~expected_width:4 corrupt);
      ignore (Iddq_campaign.Spec.parse_file corrupt)
    done;
    Sys.remove corrupt;
    (match Io.open_fd_count () with
    | Some after ->
      Alcotest.(check int) "descriptor count stable" before after
    | None -> Alcotest.fail "/proc/self/fd vanished mid-test")

(* ------------------------------------------------------------------ *)
(* Round-trip properties                                               *)
(* ------------------------------------------------------------------ *)

let make_circuit ~gates ~seed =
  let rng = Rng.create seed in
  Generator.layered_dag ~rng ~name:"rt" ~num_inputs:6 ~num_outputs:3
    ~num_gates:gates ~depth:(1 + (gates / 8)) ()

let qcheck_bench_roundtrip =
  QCheck.Test.make ~name:"bench print/parse is a fixpoint" ~count:25
    QCheck.(pair (int_range 10 80) (int_range 1 100000))
    (fun (gates, seed) ->
      let c = make_circuit ~gates ~seed in
      let text = Bench_io.to_string c in
      match Bench_io.parse_string ~name:(Circuit.name c) text with
      | Error _ -> false
      | Ok c' -> Bench_io.to_string c' = text)

let qcheck_verilog_roundtrip =
  QCheck.Test.make ~name:"verilog print/parse is a fixpoint" ~count:25
    QCheck.(pair (int_range 10 80) (int_range 1 100000))
    (fun (gates, seed) ->
      let c = make_circuit ~gates ~seed in
      let text = Verilog_io.to_string c in
      match Verilog_io.parse_string text with
      | Error _ -> false
      | Ok c' -> Verilog_io.to_string c' = text)

let qcheck_pattern_roundtrip =
  QCheck.Test.make ~name:"pattern set survives print/parse" ~count:40
    QCheck.(pair (int_range 1 16) (pair (int_range 1 40) (int_range 1 100000)))
    (fun (width, (count, seed)) ->
      let rng = Rng.create seed in
      let vs =
        Array.init count (fun _ -> Array.init width (fun _ -> Rng.bool rng))
      in
      match Pattern_io.of_string ~expected_width:width (Pattern_io.to_string vs) with
      | Error _ -> false
      | Ok vs' -> vs = vs')

let test_library_roundtrip () =
  let text = Library_io.to_string Library.default in
  match Library_io.parse_string ~name:(Library.name Library.default) text with
  | Error e -> Alcotest.failf "reparse: %s" (Io_error.to_string e)
  | Ok lib ->
    Alcotest.(check string) "print/parse fixpoint" text (Library_io.to_string lib)

(* ------------------------------------------------------------------ *)
(* Bounded mutation-fuzz smoke (the full pass is `make fuzz-smoke`)    *)
(* ------------------------------------------------------------------ *)

let test_mutation_smoke () =
  let r = Harness.run ~seed:0xF422 ~iterations_per_target:120 () in
  if r.Harness.total < 120 * 7 then
    Alcotest.failf "too few inputs exercised: %d" r.Harness.total;
  if not (Harness.passed r) then begin
    Harness.pp_report stderr r;
    Alcotest.fail "mutation smoke failed (crash or descriptor leak)"
  end

let tests =
  [
    Alcotest.test_case "bench duplicate OUTPUT idempotent" `Quick
      test_bench_duplicate_output;
    Alcotest.test_case "bench undeclared OUTPUT is Error" `Quick
      test_bench_output_undeclared;
    Alcotest.test_case "bench malformed OUTPUT is Error" `Quick
      test_bench_output_malformed;
    Alcotest.test_case "read_file missing carries path" `Quick
      test_read_file_missing;
    Alcotest.test_case "write_file_atomic overwrites cleanly" `Quick
      test_write_file_atomic_overwrite;
    Alcotest.test_case "atomic write preserves target on crash" `Quick
      test_atomic_preserves_on_crash;
    Alcotest.test_case "atomic write into missing dir is Error" `Quick
      test_atomic_missing_dir;
    Alcotest.test_case "no fd leak across failing reads" `Quick
      test_fd_stable_across_failures;
    QCheck_alcotest.to_alcotest qcheck_bench_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_verilog_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_pattern_roundtrip;
    Alcotest.test_case "library print/parse fixpoint" `Quick
      test_library_roundtrip;
    Alcotest.test_case "mutation fuzz smoke" `Slow test_mutation_smoke;
  ]
