module Sensor = Iddq_bic.Sensor
module Test_time = Iddq_bic.Test_time
module Detection = Iddq_bic.Detection
module Technology = Iddq_celllib.Technology
module Charac = Iddq_analysis.Charac
module Library = Iddq_celllib.Library
module Iscas = Iddq_netlist.Iscas

let tech = Technology.default

let test_sizing_meets_rail_budget () =
  let s =
    Sensor.size ~technology:tech ~peak_current:0.01
      ~module_rail_capacitance:5e-12
  in
  Alcotest.(check (float 1e-9)) "rs = r*/imax"
    (tech.Technology.rail_budget /. 0.01)
    s.Sensor.rs;
  Alcotest.(check (float 1e-9)) "perturbation at imax = r*"
    tech.Technology.rail_budget
    (Sensor.rail_perturbation s ~current:0.01);
  Alcotest.(check (float 1e-6)) "area model"
    (tech.Technology.sensor_area_fixed
    +. (tech.Technology.sensor_area_conductance /. s.Sensor.rs))
    s.Sensor.area;
  Alcotest.(check (float 1e-20)) "tau = rs*cs" (s.Sensor.rs *. s.Sensor.cs)
    s.Sensor.tau

let test_sizing_zero_current_clips () =
  let s =
    Sensor.size ~technology:tech ~peak_current:0.0 ~module_rail_capacitance:1e-12
  in
  Alcotest.(check (float 0.0)) "clipped to max_rs" Sensor.max_rs s.Sensor.rs

let test_area_monotone_in_current () =
  let area i =
    (Sensor.size ~technology:tech ~peak_current:i ~module_rail_capacitance:1e-12)
      .Sensor.area
  in
  Alcotest.(check bool) "bigger current -> bigger switch" true
    (area 0.02 > area 0.01)

let test_cs_includes_sensor () =
  let s =
    Sensor.size ~technology:tech ~peak_current:0.01 ~module_rail_capacitance:3e-12
  in
  Alcotest.(check (float 1e-20)) "module + intrinsic"
    (3e-12 +. tech.Technology.sensor_rail_capacitance)
    s.Sensor.cs

let test_for_module () =
  let ch = Charac.make ~library:Library.default (Iscas.c17 ()) in
  let s = Sensor.for_module ch (Array.init 6 Fun.id) in
  let imax =
    Iddq_analysis.Switching.max_transient_current ch (Array.init 6 Fun.id)
  in
  Alcotest.(check (float 1e-9)) "sized for the estimated peak" imax
    s.Sensor.peak_current

let test_settling_and_totals () =
  let s =
    Sensor.size ~technology:tech ~peak_current:0.01 ~module_rail_capacitance:5e-12
  in
  let settle = Test_time.settling tech s in
  Alcotest.(check (float 1e-20)) "k * tau"
    (tech.Technology.settling_decades *. s.Sensor.tau)
    settle;
  let d_bic = 50e-9 in
  Alcotest.(check (float 1e-18)) "per vector = d + worst settle"
    (d_bic +. settle)
    (Test_time.per_vector tech ~d_bic [ s; s ]);
  Alcotest.(check (float 1e-18)) "no sensors: just the delay" d_bic
    (Test_time.per_vector tech ~d_bic []);
  Alcotest.(check (float 1e-16)) "total scales with vectors"
    (100.0 *. (d_bic +. settle))
    (Test_time.total tech ~d_bic ~vectors:100 [ s ]);
  Alcotest.(check (float 1e-18)) "summed module times"
    (2.0 *. (d_bic +. settle))
    (Test_time.summed_module_times tech ~d_bic [ s; s ])

let test_detection_verdicts () =
  Alcotest.(check string) "below threshold passes" "PASS"
    (Detection.verdict_to_string
       (Detection.strobe tech ~measured_current:(0.5 *. tech.Technology.iddq_threshold)));
  Alcotest.(check string) "at threshold fails" "FAIL"
    (Detection.verdict_to_string
       (Detection.strobe tech ~measured_current:tech.Technology.iddq_threshold));
  Alcotest.(check bool) "margin positive on pass" true
    (Detection.margin tech ~measured_current:(0.1 *. tech.Technology.iddq_threshold)
    > 0.0);
  Alcotest.(check bool) "margin negative on fail" true
    (Detection.margin tech ~measured_current:(2.0 *. tech.Technology.iddq_threshold)
    < 0.0)

let test_module_quiescent () =
  let ch = Charac.make ~library:Library.default (Iscas.c17 ()) in
  let gates = Array.init 6 Fun.id in
  let base = Detection.module_quiescent ch gates ~extra_defect_current:0.0 in
  let with_defect =
    Detection.module_quiescent ch gates ~extra_defect_current:1e-6
  in
  Alcotest.(check (float 1e-18)) "adds the defect" (base +. 1e-6) with_defect

let qcheck_rail_budget_never_exceeded =
  QCheck.Test.make
    ~name:"sized sensor never exceeds the rail budget at its design current"
    ~count:300
    QCheck.(float_range 1e-6 1.0)
    (fun imax ->
      let s =
        Sensor.size ~technology:tech ~peak_current:imax
          ~module_rail_capacitance:1e-12
      in
      Sensor.rail_perturbation s ~current:imax
      <= tech.Technology.rail_budget +. 1e-12)

let tests =
  [
    Alcotest.test_case "sizing meets rail budget" `Quick
      test_sizing_meets_rail_budget;
    Alcotest.test_case "zero current clips" `Quick test_sizing_zero_current_clips;
    Alcotest.test_case "area monotone" `Quick test_area_monotone_in_current;
    Alcotest.test_case "cs includes sensor" `Quick test_cs_includes_sensor;
    Alcotest.test_case "for_module" `Quick test_for_module;
    Alcotest.test_case "settling and totals" `Quick test_settling_and_totals;
    Alcotest.test_case "detection verdicts" `Quick test_detection_verdicts;
    Alcotest.test_case "module quiescent" `Quick test_module_quiescent;
    QCheck_alcotest.to_alcotest qcheck_rail_budget_never_exceeded;
  ]
