module Builder = Iddq_netlist.Builder
module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate

let small () =
  let b = Builder.create ~name:"small" () in
  Builder.add_input b "a";
  Builder.add_input b "b";
  Builder.add_gate b "g1" Gate.Nand [ "a"; "b" ];
  Builder.add_gate b "g2" Gate.Not [ "g1" ];
  Builder.add_output b "g2";
  b

let test_freeze_ok () =
  let c = Builder.freeze_exn (small ()) in
  Alcotest.(check int) "nodes" 4 (Circuit.num_nodes c);
  Alcotest.(check int) "inputs" 2 (Circuit.num_inputs c);
  Alcotest.(check int) "gates" 2 (Circuit.num_gates c);
  Alcotest.(check int) "outputs" 1 (Circuit.num_outputs c);
  Alcotest.(check (result unit string)) "validates" (Ok ()) (Circuit.validate c)

let test_forward_references () =
  (* gates may reference nets declared later *)
  let b = Builder.create () in
  Builder.add_gate b "g2" Gate.Not [ "g1" ];
  Builder.add_gate b "g1" Gate.Nand [ "a"; "b" ];
  Builder.add_input b "a";
  Builder.add_input b "b";
  Builder.add_output b "g2";
  let c = Builder.freeze_exn b in
  Alcotest.(check (result unit string)) "validates" (Ok ()) (Circuit.validate c);
  (* topological order: g1 must precede g2 *)
  let id1 = Option.get (Circuit.node_id_of_name c "g1") in
  let id2 = Option.get (Circuit.node_id_of_name c "g2") in
  Alcotest.(check bool) "topo order" true (id1 < id2)

let expect_error b fragment =
  match Builder.freeze b with
  | Ok _ -> Alcotest.fail "expected freeze to fail"
  | Error e ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
      m = 0 || scan 0
    in
    Alcotest.(check bool) (Printf.sprintf "error mentions %S: %s" fragment e)
      true (contains e fragment)

let test_undefined_fanin () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b "g" Gate.Not [ "nope" ];
  Builder.add_output b "g";
  expect_error b "undefined"

let test_cycle_detection () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b "g1" Gate.Nand [ "a"; "g2" ];
  Builder.add_gate b "g2" Gate.Nand [ "a"; "g1" ];
  Builder.add_output b "g1";
  expect_error b "cycle"

let test_no_outputs () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b "g" Gate.Not [ "a" ];
  expect_error b "no outputs"

let test_output_undeclared () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b "g" Gate.Not [ "a" ];
  Builder.add_output b "phantom";
  expect_error b "undeclared"

let test_duplicate_name () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Builder: duplicate declaration of \"a\"") (fun () ->
      Builder.add_input b "a")

let test_bad_arity () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Alcotest.check_raises "NAND with 1 fanin"
    (Invalid_argument "Builder: NAND gate \"g\" with 1 fanins") (fun () ->
      Builder.add_gate b "g" Gate.Nand [ "a" ])

let test_duplicate_output_idempotent () =
  let b = small () in
  Builder.add_output b "g2";
  let c = Builder.freeze_exn b in
  Alcotest.(check int) "still one output" 1 (Circuit.num_outputs c)

let test_accessors () =
  let c = Builder.freeze_exn (small ()) in
  let g1 = Option.get (Circuit.node_id_of_name c "g1") in
  let g2 = Option.get (Circuit.node_id_of_name c "g2") in
  let a = Option.get (Circuit.node_id_of_name c "a") in
  Alcotest.(check bool) "a is input" true (Circuit.is_input c a);
  Alcotest.(check bool) "g1 is gate" true (Circuit.is_gate c g1);
  Alcotest.(check bool) "g2 is output" true (Circuit.is_output c g2);
  Alcotest.(check bool) "g1 not output" false (Circuit.is_output c g1);
  Alcotest.(check int) "g1 fanins" 2 (Circuit.fanin_count c g1);
  Alcotest.(check int) "g1 fanouts" 1 (Circuit.fanout_count c g1);
  Alcotest.(check int) "a fanout = g1" g1 (Circuit.fanouts c a).(0);
  Alcotest.(check bool) "kind" true
    (Gate.equal (Circuit.gate_kind c g1) Gate.Nand);
  (* gate indexing roundtrip *)
  let gi = Circuit.gate_of_node c g1 in
  Alcotest.(check int) "gate index roundtrip" g1 (Circuit.node_of_gate c gi)

let test_gate_fanin_gates () =
  let c = Builder.freeze_exn (small ()) in
  let g1 = Circuit.gate_of_node c (Option.get (Circuit.node_id_of_name c "g1")) in
  let g2 = Circuit.gate_of_node c (Option.get (Circuit.node_id_of_name c "g2")) in
  Alcotest.(check int) "g1 has no gate fanins" 0
    (Array.length (Circuit.gate_fanin_gates c g1));
  Alcotest.(check bool) "g2's gate fanin is g1" true
    (Circuit.gate_fanin_gates c g2 = [| g1 |]);
  Alcotest.(check bool) "g1's gate fanout is g2" true
    (Circuit.gate_fanout_gates c g1 = [| g2 |])

let test_stats () =
  let c = Builder.freeze_exn (small ()) in
  let s = Circuit.stats c in
  Alcotest.(check int) "depth" 2 s.Circuit.s_depth;
  Alcotest.(check int) "gates" 2 s.Circuit.s_gates;
  Alcotest.(check bool) "kind counts" true
    (List.mem (Gate.Nand, 1) s.Circuit.s_kind_counts
    && List.mem (Gate.Not, 1) s.Circuit.s_kind_counts)

let tests =
  [
    Alcotest.test_case "freeze ok" `Quick test_freeze_ok;
    Alcotest.test_case "forward references" `Quick test_forward_references;
    Alcotest.test_case "undefined fanin" `Quick test_undefined_fanin;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "no outputs" `Quick test_no_outputs;
    Alcotest.test_case "undeclared output" `Quick test_output_undeclared;
    Alcotest.test_case "duplicate name" `Quick test_duplicate_name;
    Alcotest.test_case "bad arity" `Quick test_bad_arity;
    Alcotest.test_case "duplicate output" `Quick test_duplicate_output_idempotent;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "gate fanin/fanout gates" `Quick test_gate_fanin_gates;
    Alcotest.test_case "stats" `Quick test_stats;
  ]
