(* Cross-library integration: the full flow wired end to end. *)

module Pipeline = Iddq.Pipeline
module Partition = Iddq_core.Partition
module Partition_io = Iddq_core.Partition_io
module Cost = Iddq_core.Cost
module Charac = Iddq_analysis.Charac
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Es = Iddq_evolution.Es
module Rng = Iddq_util.Rng

let fast_config =
  {
    Pipeline.default_config with
    Pipeline.es_params =
      { Es.default_params with Es.max_generations = 30; stall_generations = 30 };
  }

let test_pipeline_partition_io_cost_stable () =
  (* synthesize -> save -> reload -> identical cost *)
  let r = Pipeline.run ~config:fast_config Pipeline.Evolution (Iscas.c432_like ()) in
  let text = Partition_io.to_string r.Pipeline.partition in
  match Partition_io.of_string r.Pipeline.charac text with
  | Error e -> Alcotest.failf "reload: %s" (Iddq_util.Io_error.to_string e)
  | Ok p ->
    let a = (Cost.evaluate p).Cost.penalized in
    let b = r.Pipeline.breakdown.Cost.penalized in
    Alcotest.(check (float 1e-9)) "cost preserved" b a

let test_pipeline_dot_renders () =
  let circuit = Iscas.c17 () in
  let r = Pipeline.run ~config:fast_config Pipeline.Standard circuit in
  let dot =
    Iddq_netlist.Dot.of_circuit
      ~module_of_gate:(Partition.module_of_gate r.Pipeline.partition)
      circuit
  in
  Alcotest.(check bool) "clusters present" true
    (String.length dot > 100)

let test_pipeline_schedule_consistent () =
  (* the schedule's parallel policy must reproduce the cost model's
     per-vector test time *)
  let r = Pipeline.run ~config:fast_config Pipeline.Standard (Iscas.c432_like ()) in
  let tech = Charac.technology r.Pipeline.charac in
  let sched =
    Iddq_bic.Schedule.parallel ~technology:tech
      ~d_bic:r.Pipeline.breakdown.Cost.bic_delay r.Pipeline.sensors
  in
  Alcotest.(check (float 1e-15)) "parallel schedule = cost model"
    r.Pipeline.breakdown.Cost.test_time_per_vector
    sched.Iddq_bic.Schedule.vector_time

let test_resynth_composes_with_pipeline () =
  let r = Pipeline.run ~config:fast_config Pipeline.Evolution (Iscas.c432_like ()) in
  let res = Iddq_resynth.Drive_select.optimize ~max_swaps:8 r.Pipeline.partition in
  (* the re-characterized partition still passes every invariant *)
  Alcotest.(check (result unit string)) "consistent" (Ok ())
    (Partition.check_consistent res.Iddq_resynth.Drive_select.partition);
  Alcotest.(check bool) "same grouping" true
    (Partition.assignment res.Iddq_resynth.Drive_select.partition
    = Partition.assignment r.Pipeline.partition)

let test_atpg_vectors_feed_iddq_sim () =
  let circuit = Iscas.c17 () in
  let rng = Rng.create 7 in
  let faults = Iddq_defects.Stuck_at.collapsed_fault_list circuit in
  let atpg = Iddq_atpg.Podem.complete_set ~rng circuit faults in
  let ch = Charac.make ~library:Iddq_celllib.Library.default circuit in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let defects =
    [
      {
        Iddq_defects.Fault.fault =
          Iddq_defects.Fault.Floating_gate
            (Option.get (Circuit.node_id_of_name circuit "16"));
        defect_current = 2e-6;
      };
    ]
  in
  let r =
    Iddq_defects.Iddq_sim.run_partitioned p ~vectors:atpg.Iddq_atpg.Podem.vectors
      ~faults:defects
  in
  Alcotest.(check (float 0.0)) "floating gate caught by the ATPG set" 1.0
    r.Iddq_defects.Iddq_sim.coverage

let test_verilog_bench_pipeline_agree () =
  (* the same circuit through either netlist format synthesizes to the
     same cost *)
  let c_bench = Iscas.c17 () in
  let v_text = Iddq_netlist.Verilog_io.to_string c_bench in
  let c_verilog =
    match Iddq_netlist.Verilog_io.parse_string v_text with
    | Ok c -> c
    | Error e -> Alcotest.failf "verilog: %s" (Iddq_util.Io_error.to_string e)
  in
  let cost c =
    (Pipeline.run ~config:fast_config Pipeline.Standard c).Pipeline.breakdown
      .Cost.penalized
  in
  Alcotest.(check (float 1e-9)) "same cost" (cost c_bench) (cost c_verilog)

let test_placement_of_pipeline_modules () =
  let circuit = Iscas.c432_like () in
  let r = Pipeline.run ~config:fast_config Pipeline.Standard circuit in
  let placement = Iddq_layout.Placement.place circuit in
  List.iter
    (fun m ->
      let gates = Partition.members r.Pipeline.partition m in
      let rail = Iddq_layout.Placement.module_rail_length placement gates in
      Alcotest.(check bool) "rail finite and positive" true
        (rail >= 0.0 && Float.is_finite rail))
    (Partition.module_ids r.Pipeline.partition)

let tests =
  [
    Alcotest.test_case "pipeline -> partition_io -> cost" `Quick
      test_pipeline_partition_io_cost_stable;
    Alcotest.test_case "pipeline -> dot" `Quick test_pipeline_dot_renders;
    Alcotest.test_case "pipeline -> schedule" `Quick
      test_pipeline_schedule_consistent;
    Alcotest.test_case "pipeline -> resynth" `Quick
      test_resynth_composes_with_pipeline;
    Alcotest.test_case "atpg -> iddq sim" `Quick test_atpg_vectors_feed_iddq_sim;
    Alcotest.test_case "verilog = bench pipeline" `Quick
      test_verilog_bench_pipeline_agree;
    Alcotest.test_case "pipeline -> placement" `Quick
      test_placement_of_pipeline_modules;
  ]
