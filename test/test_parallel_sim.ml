module P = Iddq_patterns.Parallel_sim
module Logic_sim = Iddq_patterns.Logic_sim
module Pattern_gen = Iddq_patterns.Pattern_gen
module Stuck_at = Iddq_defects.Stuck_at
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Generator = Iddq_netlist.Generator
module Rng = Iddq_util.Rng

let bit word k = Int64.logand (Int64.shift_right_logical word k) 1L = 1L

let test_pack_unpack () =
  let vectors = [| [| true; false |]; [| false; true |]; [| true; true |] |] in
  let packed = P.pack vectors ~start:0 in
  Alcotest.(check int) "one word per input" 2 (Array.length packed);
  Alcotest.(check bool) "v0 i0" true (bit packed.(0) 0);
  Alcotest.(check bool) "v1 i0" false (bit packed.(0) 1);
  Alcotest.(check bool) "v1 i1" true (bit packed.(1) 1);
  Alcotest.(check bool) "v2 i0" true (bit packed.(0) 2);
  Alcotest.(check int64) "mask covers 3" 7L (P.active_mask vectors ~start:0);
  Alcotest.(check int64) "tail mask" 1L (P.active_mask vectors ~start:2)

let test_eval_matches_scalar_c17 () =
  let c = Iscas.c17 () in
  let vectors = Pattern_gen.exhaustive c in
  let packed = P.pack vectors ~start:0 in
  let words = P.eval c packed in
  for k = 0 to 31 do
    let scalar = Logic_sim.eval c vectors.(k) in
    for id = 0 to Circuit.num_nodes c - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "node %d vector %d" id k)
        scalar.(id) (bit words.(id) k)
    done
  done

let test_stuck_node_matches_scalar () =
  let c = Iscas.c17 () in
  let node = Option.get (Circuit.node_id_of_name c "16") in
  let fault = Stuck_at.Stem (node, true) in
  let vectors = Pattern_gen.exhaustive c in
  let packed = P.pack vectors ~start:0 in
  let words = P.eval_with_stuck_node c ~node ~value:true packed in
  for k = 0 to 31 do
    let scalar = Stuck_at.faulty_eval c fault vectors.(k) in
    for id = 0 to Circuit.num_nodes c - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "node %d vector %d" id k)
        scalar.(id) (bit words.(id) k)
    done
  done

let test_stuck_pin_matches_scalar () =
  let c = Iscas.c17 () in
  let gate = Option.get (Circuit.node_id_of_name c "22") in
  let fault = Stuck_at.Pin { gate; pin = 1; value = false } in
  let vectors = Pattern_gen.exhaustive c in
  let packed = P.pack vectors ~start:0 in
  let words = P.eval_with_stuck_pin c ~gate ~pin:1 ~value:false packed in
  for k = 0 to 31 do
    let scalar = Stuck_at.faulty_eval c fault vectors.(k) in
    for id = 0 to Circuit.num_nodes c - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "node %d vector %d" id k)
        scalar.(id) (bit words.(id) k)
    done
  done

let test_output_diff () =
  let c = Iscas.c17 () in
  let vectors = Pattern_gen.exhaustive c in
  let packed = P.pack vectors ~start:0 in
  let good = P.eval c packed in
  Alcotest.(check int64) "no diff against itself" 0L (P.output_diff c good good)

let test_fault_simulate_matches_scalar_detects () =
  (* the packed fault simulator agrees with per-vector detection *)
  let c = Iscas.c432_like () in
  let rng = Rng.create 3 in
  let vectors = Pattern_gen.random ~rng c ~count:100 in
  let faults =
    (* a deterministic sample across the fault list *)
    List.filteri (fun i _ -> i mod 17 = 0) (Stuck_at.collapsed_fault_list c)
  in
  let r = Stuck_at.fault_simulate c ~vectors ~faults in
  List.iteri
    (fun f fault ->
      let expected =
        let rec scan v =
          if v >= Array.length vectors then -1
          else if Stuck_at.detects c fault vectors.(v) then v
          else scan (v + 1)
        in
        scan 0
      in
      Alcotest.(check int)
        (Printf.sprintf "fault %d first vector" f)
        expected
        r.Stuck_at.first_vector.(f))
    faults

let test_zero_fanin_rejected () =
  (* an And/Nand fold over zero fanins would silently yield
     all-ones/all-zeros; both evaluators must raise instead *)
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  let module Gate = Iddq_netlist.Gate in
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Printf.sprintf "eval_word %s [||] rejected" (Gate.to_string kind))
        true
        (raises (fun () -> P.eval_word kind [||]));
      Alcotest.(check bool)
        (Printf.sprintf "Gate.eval %s [||] rejected" (Gate.to_string kind))
        true
        (raises (fun () -> Gate.eval kind [||])))
    Gate.all_kinds;
  (* unary gates with two words are just as invalid *)
  Alcotest.(check bool) "binary NOT rejected" true
    (raises (fun () -> P.eval_word Iddq_netlist.Gate.Not [| 0L; 1L |]));
  (* valid arities still work *)
  Alcotest.(check int64) "and word" 4L
    (P.eval_word Iddq_netlist.Gate.And [| 6L; 12L |])

let qcheck_parallel_equals_scalar =
  QCheck.Test.make ~name:"64-way eval equals scalar eval" ~count:20
    QCheck.(triple (int_range 10 60) (int_range 1 100000) (int_range 0 1000))
    (fun (gates, seed, vseed) ->
      let rng = Rng.create seed in
      let c =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:5 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let vr = Rng.create vseed in
      let vectors = Pattern_gen.random ~rng:vr c ~count:64 in
      let words = P.eval c (P.pack vectors ~start:0) in
      let ok = ref true in
      for k = 0 to 63 do
        let scalar = Logic_sim.eval c vectors.(k) in
        for id = 0 to Circuit.num_nodes c - 1 do
          if scalar.(id) <> bit words.(id) k then ok := false
        done
      done;
      !ok)

(* The satellite property: a packed whole-set evaluation agrees
   bit-for-bit with the scalar simulator on random circuits and random
   vector counts — in particular across the final partial (<64) block —
   and the active mask covers exactly the real vectors. *)
let qcheck_partial_blocks_equal_scalar =
  QCheck.Test.make ~name:"pack_all eval equals scalar incl. partial block"
    ~count:25
    QCheck.(triple (int_range 10 80) (int_range 1 100000) (int_range 1 150))
    (fun (gates, seed, nv) ->
      let rng = Rng.create seed in
      let c =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:6 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let vectors = Pattern_gen.random ~rng c ~count:nv in
      let packed = P.pack_all vectors in
      let ok = ref true in
      if P.n_vectors packed <> nv then ok := false;
      if P.num_blocks packed <> (nv + 63) / 64 then ok := false;
      for b = 0 to P.num_blocks packed - 1 do
        let count = Stdlib.min 64 (nv - (b * 64)) in
        let expected_mask =
          if count = 64 then Int64.minus_one
          else Int64.sub (Int64.shift_left 1L count) 1L
        in
        if P.block_mask packed b <> expected_mask then ok := false;
        let words = P.eval c (P.block packed b) in
        for k = 0 to count - 1 do
          let scalar = Logic_sim.eval c vectors.((b * 64) + k) in
          for id = 0 to Circuit.num_nodes c - 1 do
            if scalar.(id) <> bit words.(id) k then ok := false
          done
        done
      done;
      !ok)

let test_empty_vector_set_is_noop () =
  (* zero-pattern simulation: packing an empty set is a valid no-op,
     not a crash *)
  let empty : bool array array = [||] in
  Alcotest.(check int) "no words" 0 (Array.length (P.pack empty ~start:0));
  Alcotest.(check int64) "no active bits" 0L (P.active_mask empty ~start:0);
  (* fault simulation over zero vectors detects nothing and survives *)
  let c = Iscas.c17 () in
  let report =
    Stuck_at.fault_simulate c ~vectors:empty
      ~faults:(Stuck_at.collapsed_fault_list c)
  in
  Alcotest.(check int) "nothing detected" 0 report.Stuck_at.detected;
  (* start may equal the vector count: an empty tail block *)
  let vectors = [| [| true; false |]; [| false; true |] |] in
  let tail = P.pack vectors ~start:2 in
  Alcotest.(check int) "tail block keeps the width" 2 (Array.length tail);
  Array.iter (fun w -> Alcotest.(check int64) "tail words zero" 0L w) tail;
  Alcotest.(check int64) "tail mask zero" 0L (P.active_mask vectors ~start:2);
  (* out-of-range starts still rejected *)
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative start rejected" true
    (raises (fun () -> P.pack vectors ~start:(-1)));
  Alcotest.(check bool) "start past the end rejected" true
    (raises (fun () -> P.active_mask vectors ~start:3))

let tests =
  [
    Alcotest.test_case "pack/unpack" `Quick test_pack_unpack;
    Alcotest.test_case "empty vector set no-op" `Quick
      test_empty_vector_set_is_noop;
    Alcotest.test_case "eval matches scalar" `Quick test_eval_matches_scalar_c17;
    Alcotest.test_case "stuck node matches scalar" `Quick
      test_stuck_node_matches_scalar;
    Alcotest.test_case "stuck pin matches scalar" `Quick
      test_stuck_pin_matches_scalar;
    Alcotest.test_case "output diff" `Quick test_output_diff;
    Alcotest.test_case "zero-fanin rejected" `Quick test_zero_fanin_rejected;
    Alcotest.test_case "fault sim matches scalar" `Quick
      test_fault_simulate_matches_scalar_detects;
    QCheck_alcotest.to_alcotest qcheck_parallel_equals_scalar;
    QCheck_alcotest.to_alcotest qcheck_partial_blocks_equal_scalar;
  ]
