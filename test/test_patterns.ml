module Logic_sim = Iddq_patterns.Logic_sim
module Pattern_gen = Iddq_patterns.Pattern_gen
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Builder = Iddq_netlist.Builder
module Gate = Iddq_netlist.Gate
module Generator = Iddq_netlist.Generator
module Rng = Iddq_util.Rng

let test_eval_simple () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_input b "b";
  Builder.add_gate b "x" Gate.Xor [ "a"; "b" ];
  Builder.add_output b "x";
  let c = Builder.freeze_exn b in
  let check a bb expected =
    let values = Logic_sim.eval c [| a; bb |] in
    Alcotest.(check bool)
      (Printf.sprintf "xor %b %b" a bb)
      expected
      (Logic_sim.output_values c values).(0)
  in
  check false false false;
  check false true true;
  check true false true;
  check true true false

let test_eval_length_check () =
  let c = Iscas.c17 () in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Logic_sim.eval: input vector length mismatch") (fun () ->
      ignore (Logic_sim.eval c [| true |]))

let test_chain_parity () =
  (* a NOT-chain of even length is the identity, odd length inverts *)
  let even = Generator.chain ~length:8 () in
  let odd = Generator.chain ~length:9 () in
  let out c v =
    (Logic_sim.output_values c (Logic_sim.eval c [| v |])).(0)
  in
  Alcotest.(check bool) "even chain identity" true (out even true);
  Alcotest.(check bool) "odd chain inverts" false (out odd true)

let test_toggles () =
  let c = Generator.chain ~length:5 () in
  let v0 = Logic_sim.eval c [| false |] in
  let v1 = Logic_sim.eval c [| true |] in
  Alcotest.(check int) "all gates toggle" 5 (Logic_sim.toggles c v0 v1);
  Alcotest.(check int) "no toggle" 0 (Logic_sim.toggles c v0 v0);
  Alcotest.(check int) "toggled gates listed" 5
    (Array.length (Logic_sim.toggled_gates c v0 v1))

let test_exhaustive () =
  let c = Iscas.c17 () in
  let vs = Pattern_gen.exhaustive c in
  Alcotest.(check int) "2^5 vectors" 32 (Array.length vs);
  (* all distinct *)
  let as_int v =
    Array.to_list v
    |> List.mapi (fun i b -> if b then 1 lsl i else 0)
    |> List.fold_left ( + ) 0
  in
  let ints = Array.map as_int vs |> Array.to_list |> List.sort_uniq compare in
  Alcotest.(check int) "all distinct" 32 (List.length ints)

let test_exhaustive_limit () =
  let rng = Rng.create 1 in
  let big =
    Generator.layered_dag ~rng ~name:"big" ~num_inputs:25 ~num_outputs:2
      ~num_gates:30 ~depth:3 ()
  in
  Alcotest.check_raises "too many inputs"
    (Invalid_argument "Pattern_gen.exhaustive: too many inputs") (fun () ->
      ignore (Pattern_gen.exhaustive big))

let test_random_patterns () =
  let rng = Rng.create 3 in
  let c = Iscas.c17 () in
  let vs = Pattern_gen.random ~rng c ~count:40 in
  Alcotest.(check int) "count" 40 (Array.length vs);
  Array.iter
    (fun v -> Alcotest.(check int) "width" 5 (Array.length v))
    vs

let test_lfsr () =
  let c = Iscas.c17 () in
  let vs = Pattern_gen.lfsr c ~seed:0xACE1 ~count:50 in
  Alcotest.(check int) "count" 50 (Array.length vs);
  (* an LFSR stream is not constant *)
  let first = vs.(0) in
  Alcotest.(check bool) "stream varies" true
    (Array.exists (fun v -> v <> first) vs);
  Alcotest.check_raises "zero seed" (Invalid_argument "Pattern_gen.lfsr: zero seed")
    (fun () -> ignore (Pattern_gen.lfsr c ~seed:0 ~count:1))

let qcheck_sim_matches_reference_for_tree =
  QCheck.Test.make ~name:"tree of NANDs simulates correctly" ~count:100
    QCheck.(array_of_size (Gen.return 8) bool)
    (fun inputs ->
      let c = Generator.balanced_tree ~depth:3 () in
      let values = Logic_sim.eval c inputs in
      let out = (Logic_sim.output_values c values).(0) in
      let nand a b = not (a && b) in
      let l1 =
        [|
          nand inputs.(0) inputs.(1); nand inputs.(2) inputs.(3);
          nand inputs.(4) inputs.(5); nand inputs.(6) inputs.(7);
        |]
      in
      let l2 = [| nand l1.(0) l1.(1); nand l1.(2) l1.(3) |] in
      out = nand l2.(0) l2.(1))

let tests =
  [
    Alcotest.test_case "eval xor" `Quick test_eval_simple;
    Alcotest.test_case "eval length check" `Quick test_eval_length_check;
    Alcotest.test_case "chain parity" `Quick test_chain_parity;
    Alcotest.test_case "toggles" `Quick test_toggles;
    Alcotest.test_case "exhaustive" `Quick test_exhaustive;
    Alcotest.test_case "exhaustive limit" `Quick test_exhaustive_limit;
    Alcotest.test_case "random patterns" `Quick test_random_patterns;
    Alcotest.test_case "lfsr" `Quick test_lfsr;
    QCheck_alcotest.to_alcotest qcheck_sim_matches_reference_for_tree;
  ]
