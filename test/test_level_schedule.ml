(* Level_schedule invariants: a valid topological levelization
   covering every non-input gate exactly once, on random layered DAGs
   and the ISCAS85 suite, plus the per-circuit cache and the
   Domain_pool chunk scheduler the levelized drivers run on. *)

module Rng = Iddq_util.Rng
module Domain_pool = Iddq_util.Domain_pool
module Circuit = Iddq_netlist.Circuit
module Generator = Iddq_netlist.Generator
module Iscas = Iddq_netlist.Iscas
module Level_schedule = Iddq_netlist.Level_schedule

(* ---------------- random layered DAGs (qcheck) ----------------------- *)

let dag_gen =
  QCheck.make
    ~print:(fun (g, s) -> Printf.sprintf "gates=%d seed=%d" g s)
    QCheck.Gen.(pair (int_range 10 200) (int_range 1 1_000_000))

let qcheck_schedule_valid =
  QCheck.Test.make ~name:"schedule is a valid topological levelization"
    ~count:100 dag_gen (fun (gates, seed) ->
      let rng = Rng.create seed in
      let c =
        Generator.layered_dag ~rng ~name:"lvl" ~num_inputs:5 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let s = Level_schedule.compute c in
      match Level_schedule.validate c s with
      | Error e -> QCheck.Test.fail_reportf "invalid schedule: %s" e
      | Ok () ->
        let n_gates = Circuit.num_nodes c - Circuit.num_inputs c in
        Level_schedule.num_gates s = n_gates
        && Array.length (Level_schedule.order s) = n_gates
        && Array.length (Level_schedule.offsets s)
           = Level_schedule.num_levels s + 1)

let qcheck_schedule_order_properties =
  QCheck.Test.make
    ~name:"order: every prefix closed under fanins, ids ascend per level"
    ~count:60 dag_gen (fun (gates, seed) ->
      let rng = Rng.create seed in
      let c =
        Generator.layered_dag ~rng ~name:"lvl" ~num_inputs:5 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let s = Level_schedule.compute c in
      let order = Level_schedule.order s in
      let offsets = Level_schedule.offsets s in
      (* topological: a gate's fanins are inputs or appear earlier *)
      let placed = Array.make (Circuit.num_nodes c) false in
      let topo = ref true in
      Array.iter
        (fun id ->
          Circuit.iter_fanins c id (fun src ->
              if Circuit.is_gate c src && not placed.(src) then topo := false);
          placed.(id) <- true)
        order;
      (* ascending ids inside each level; widths sum to the gates *)
      let ascending = ref true and total = ref 0 in
      for l = 1 to Level_schedule.num_levels s do
        let w = Level_schedule.level_width s l in
        total := !total + w;
        for k = offsets.(l - 1) + 1 to offsets.(l) - 1 do
          if order.(k - 1) >= order.(k) then ascending := false
        done;
        if w > Level_schedule.max_level_width s then ascending := false
      done;
      !topo && !ascending && !total = Level_schedule.num_gates s)

(* ---------------- ISCAS85 suite ------------------------------------- *)

let test_iscas_schedules () =
  List.iter
    (fun (name, c) ->
      let s = Level_schedule.of_circuit c in
      (match Level_schedule.validate c s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e);
      Alcotest.(check bool)
        (name ^ ": of_circuit memoizes on physical identity")
        true
        (Level_schedule.of_circuit c == s);
      (* inputs at level 0, every gate strictly above *)
      for id = 0 to Circuit.num_nodes c - 1 do
        let l = Level_schedule.level_of_node s id in
        if Circuit.is_input c id then
          Alcotest.(check int) (name ^ ": input level") 0 l
        else if l < 1 then Alcotest.failf "%s: gate %d at level %d" name id l
      done)
    (Iscas.table1_suite ())

let test_c17_depth () =
  (* c17: NAND2 ranks {10,11} -> {16,19} -> {22,23} — logic depth 3,
     the classic sanity anchor for any levelizer *)
  let c = Iscas.c17 () in
  let s = Level_schedule.compute c in
  Alcotest.(check int) "c17 levels" 3 (Level_schedule.num_levels s);
  Alcotest.(check int) "c17 gates" 6 (Level_schedule.num_gates s)

(* ---------------- Domain_pool --------------------------------------- *)

let test_pool_covers_all_chunks () =
  Domain_pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check int) "size" 3 (Domain_pool.size pool);
      for trial = 1 to 3 do
        let n = 1 + (trial * 17) in
        let hits = Array.make n (Atomic.make 0) in
        Array.iteri (fun i _ -> hits.(i) <- Atomic.make 0) hits;
        let steals =
          Domain_pool.run pool ~chunks:n (fun c ->
              ignore (Atomic.fetch_and_add hits.(c) 1))
        in
        Array.iteri
          (fun i h ->
            Alcotest.(check int)
              (Printf.sprintf "trial %d chunk %d ran once" trial i)
              1 (Atomic.get h))
          hits;
        if steals < 0 then Alcotest.fail "negative steals"
      done)

let test_pool_serial_inline () =
  let pool = Domain_pool.create ~domains:1 in
  let sum = ref 0 in
  let steals = Domain_pool.run pool ~chunks:10 (fun c -> sum := !sum + c) in
  Alcotest.(check int) "all chunks on the caller" 45 !sum;
  Alcotest.(check int) "no steals serially" 0 steals;
  Domain_pool.shutdown pool;
  (* run after shutdown still executes, inline *)
  let again = Domain_pool.run pool ~chunks:3 (fun _ -> incr sum) in
  Alcotest.(check int) "inline after shutdown" 48 !sum;
  Alcotest.(check int) "no steals after shutdown" 0 again;
  Domain_pool.shutdown pool

exception Boom

let test_pool_reraises () =
  Domain_pool.with_pool ~domains:2 (fun pool ->
      (match
         Domain_pool.run pool ~chunks:8 (fun c -> if c = 5 then raise Boom)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom -> ());
      (* the pool survives a failed job *)
      let ran = Atomic.make 0 in
      ignore
        (Domain_pool.run pool ~chunks:4 (fun _ ->
             ignore (Atomic.fetch_and_add ran 1)));
      Alcotest.(check int) "pool reusable after exception" 4 (Atomic.get ran))

let tests =
  [
    QCheck_alcotest.to_alcotest qcheck_schedule_valid;
    QCheck_alcotest.to_alcotest qcheck_schedule_order_properties;
    Alcotest.test_case "ISCAS85 schedules validate and cache" `Quick
      test_iscas_schedules;
    Alcotest.test_case "c17 depth anchor" `Quick test_c17_depth;
    Alcotest.test_case "pool runs every chunk exactly once" `Quick
      test_pool_covers_all_chunks;
    Alcotest.test_case "pool serial and post-shutdown inline" `Quick
      test_pool_serial_inline;
    Alcotest.test_case "pool re-raises and survives" `Quick test_pool_reraises;
  ]
