module Charac = Iddq_analysis.Charac
module Timing = Iddq_analysis.Timing
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Drive_select = Iddq_resynth.Drive_select
module Cell = Iddq_celllib.Cell
module Library = Iddq_celllib.Library
module Iscas = Iddq_netlist.Iscas
module Generator = Iddq_netlist.Generator
module Gate = Iddq_netlist.Gate
module Rng = Iddq_util.Rng

let make circuit = Charac.make ~library:Library.default circuit

let test_low_power_variant_properties () =
  let c = Library.cell Library.default Gate.Nand in
  let lp = Cell.low_power_variant c in
  Alcotest.(check bool) "lower peak" true (lp.Cell.peak_current < c.Cell.peak_current);
  Alcotest.(check bool) "slower" true (lp.Cell.delay > c.Cell.delay);
  Alcotest.(check bool) "weaker drive" true
    (lp.Cell.drive_resistance > c.Cell.drive_resistance);
  Alcotest.(check bool) "lower leakage" true (lp.Cell.leakage < c.Cell.leakage)

let test_with_low_power () =
  let ch = make (Iscas.c17 ()) in
  let ch' = Charac.with_low_power ch ~gates:[| 2; 4 |] in
  Alcotest.(check bool) "flagged" true (Charac.is_low_power ch' 2);
  Alcotest.(check bool) "others untouched" false (Charac.is_low_power ch' 0);
  Alcotest.(check bool) "original untouched" false (Charac.is_low_power ch 2);
  Alcotest.(check bool) "peak reduced" true
    (Charac.peak_current ch' 2 < Charac.peak_current ch 2);
  Alcotest.(check (float 1e-18)) "untouched gate identical"
    (Charac.peak_current ch 0) (Charac.peak_current ch' 0);
  (* idempotent *)
  let ch'' = Charac.with_low_power ch' ~gates:[| 2 |] in
  Alcotest.(check (float 1e-18)) "idempotent"
    (Charac.peak_current ch' 2) (Charac.peak_current ch'' 2)

let test_slacks_chain_zero () =
  (* every gate of a single chain is critical: slack 0 *)
  let ch = make (Generator.chain ~length:8 ()) in
  let slacks = Timing.slacks ch ~gate_delay:(Charac.delay ch) in
  Array.iter
    (fun s -> Alcotest.(check (float 1e-15)) "critical" 0.0 s)
    slacks

let test_slacks_unbalanced () =
  (* two parallel paths of different lengths reconverging: the short
     branch has positive slack, the long one none *)
  let b = Iddq_netlist.Builder.create () in
  Iddq_netlist.Builder.add_input b "a";
  Iddq_netlist.Builder.add_gate b "l1" Gate.Not [ "a" ];
  Iddq_netlist.Builder.add_gate b "l2" Gate.Not [ "l1" ];
  Iddq_netlist.Builder.add_gate b "l3" Gate.Not [ "l2" ];
  Iddq_netlist.Builder.add_gate b "s1" Gate.Not [ "a" ];
  Iddq_netlist.Builder.add_gate b "join" Gate.Nand [ "l3"; "s1" ];
  Iddq_netlist.Builder.add_output b "join";
  let circuit = Iddq_netlist.Builder.freeze_exn b in
  let ch = make circuit in
  let slacks = Timing.slacks ch ~gate_delay:(Charac.delay ch) in
  let gate name =
    Iddq_netlist.Circuit.gate_of_node circuit
      (Option.get (Iddq_netlist.Circuit.node_id_of_name circuit name))
  in
  let not_delay = (Library.cell Library.default Gate.Not).Cell.delay in
  Alcotest.(check (float 1e-15)) "long branch critical" 0.0 (slacks.(gate "l2"));
  Alcotest.(check (float 1e-15)) "short branch slack = 2 NOT delays"
    (2.0 *. not_delay)
    (slacks.(gate "s1"));
  Alcotest.(check (float 1e-15)) "join critical" 0.0 (slacks.(gate "join"))

let test_slack_never_negative_vs_longest_path () =
  let rng = Rng.create 12 in
  let circuit =
    Generator.layered_dag ~rng ~name:"t" ~num_inputs:10 ~num_outputs:5
      ~num_gates:200 ~depth:14 ()
  in
  let ch = make circuit in
  let slacks = Timing.slacks ch ~gate_delay:(Charac.delay ch) in
  Array.iter
    (fun s -> Alcotest.(check bool) "slack >= 0" true (s >= -1e-12))
    slacks

let run_resynth () =
  let ch = make (Iscas.c432_like ()) in
  let n = Charac.num_gates ch in
  let p = Partition.create ch ~assignment:(Array.init n (fun g -> g mod 2)) in
  (p, Drive_select.optimize ~max_swaps:24 p)

let test_resynth_never_worsens_cost () =
  let _, r = run_resynth () in
  Alcotest.(check bool) "penalized cost monotone" true
    (r.Drive_select.after.Cost.penalized
    <= r.Drive_select.before.Cost.penalized +. 1e-9)

let test_resynth_reduces_area_when_it_swaps () =
  let _, r = run_resynth () in
  if r.Drive_select.swaps <> [] then
    Alcotest.(check bool) "sensor area shrinks" true
      (r.Drive_select.after.Cost.sensor_area
      < r.Drive_select.before.Cost.sensor_area)

let test_resynth_preserves_nominal_delay () =
  (* swaps are slack-bounded: the longest path must not stretch *)
  let _, r = run_resynth () in
  Alcotest.(check bool) "nominal delay preserved" true
    (r.Drive_select.after.Cost.nominal_delay
    <= r.Drive_select.before.Cost.nominal_delay +. 1e-15)

let test_resynth_respects_budget () =
  let ch = make (Iscas.c432_like ()) in
  let n = Charac.num_gates ch in
  let p = Partition.create ch ~assignment:(Array.init n (fun g -> g mod 2)) in
  let r = Drive_select.optimize ~max_swaps:3 p in
  Alcotest.(check bool) "at most 3 swaps" true
    (List.length r.Drive_select.swaps <= 3)

let test_resynth_input_untouched () =
  let p, r = run_resynth () in
  ignore r;
  Alcotest.(check (result unit string)) "input partition intact" (Ok ())
    (Partition.check_consistent p);
  Alcotest.(check bool) "input charac not low-power" true
    (not (Charac.is_low_power (Partition.charac p) 0))

let test_resynth_swaps_are_low_power () =
  let _, r = run_resynth () in
  List.iter
    (fun (s : Drive_select.swap) ->
      Alcotest.(check bool) "swap applied" true
        (Charac.is_low_power r.Drive_select.charac s.Drive_select.gate))
    r.Drive_select.swaps

let tests =
  [
    Alcotest.test_case "low power variant" `Quick test_low_power_variant_properties;
    Alcotest.test_case "with_low_power" `Quick test_with_low_power;
    Alcotest.test_case "slacks chain" `Quick test_slacks_chain_zero;
    Alcotest.test_case "slacks unbalanced" `Quick test_slacks_unbalanced;
    Alcotest.test_case "slacks non-negative" `Quick
      test_slack_never_negative_vs_longest_path;
    Alcotest.test_case "resynth monotone" `Quick test_resynth_never_worsens_cost;
    Alcotest.test_case "resynth shrinks area" `Quick
      test_resynth_reduces_area_when_it_swaps;
    Alcotest.test_case "resynth preserves delay" `Quick
      test_resynth_preserves_nominal_delay;
    Alcotest.test_case "resynth budget" `Quick test_resynth_respects_budget;
    Alcotest.test_case "resynth input untouched" `Quick test_resynth_input_untouched;
    Alcotest.test_case "resynth swaps flagged" `Quick test_resynth_swaps_are_low_power;
  ]
