module Stuck_at = Iddq_defects.Stuck_at
module Bridge_logic = Iddq_defects.Bridge_logic
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Builder = Iddq_netlist.Builder
module Gate = Iddq_netlist.Gate
module Pattern_gen = Iddq_patterns.Pattern_gen
module Rng = Iddq_util.Rng

let c17 = Iscas.c17 ()
let node name = Option.get (Circuit.node_id_of_name c17 name)

let test_fault_list_sizes () =
  (* 11 nodes -> 22 stem faults; 6 NAND gates x 2 pins x 2 values = 24
     pin faults *)
  let full = Stuck_at.full_fault_list c17 in
  Alcotest.(check int) "full" 46 (List.length full);
  (* collapsing drops the 12 controlling-value (sa0) NAND pin faults *)
  let collapsed = Stuck_at.collapsed_fault_list c17 in
  Alcotest.(check int) "collapsed" 34 (List.length collapsed);
  (* collapsed is a subset of full *)
  List.iter
    (fun f -> Alcotest.(check bool) "subset" true (List.mem f full))
    collapsed

let test_stem_fault_changes_output () =
  (* output 22 stuck at 1: any vector driving 22 to 0 detects it.
     22 = NAND(10,16) is 0 iff 10 = 16 = 1. *)
  let fault = Stuck_at.Stem (node "22", true) in
  (* inputs (1,2,3,6,7): choose 1=0 -> 10=1; 2=0 -> 16=1 *)
  let v = [| false; false; false; false; false |] in
  Alcotest.(check bool) "detected" true (Stuck_at.detects c17 fault v)

let test_input_stem_fault () =
  let fault = Stuck_at.Stem (node "1", true) in
  (* with input 1 = 0 and 3 = 1, g10 flips if 1 is stuck at 1;
     need propagation: 10 feeds 22 with 16 = 1 *)
  let v = [| false; false; true; false; false |] in
  (* 3=1,6=0 -> 11=1; 2=0 -> 16=1: 10 good = NAND(0,1)=1, bad = NAND(1,1)=0;
     22 good = NAND(1,1)=0, bad = NAND(0,1)=1 -> detected *)
  Alcotest.(check bool) "detected at 22" true (Stuck_at.detects c17 fault v)

let test_pin_fault_local () =
  (* a pin fault only affects its own gate, not other readers of the
     stem: stuck pin 0 of gate 16 (reading net 2) *)
  let g16 = node "16" in
  let fault = Stuck_at.Pin { gate = g16; pin = 0; value = true } in
  let v = [| true; false; true; true; true |] in
  let bad = Stuck_at.faulty_eval c17 fault v in
  let good = Iddq_patterns.Logic_sim.eval c17 v in
  (* net 2 itself is unchanged *)
  Alcotest.(check bool) "stem unchanged" true (bad.(node "2") = good.(node "2"));
  (* gate 16: good = NAND(0, x) = 1; bad = NAND(1, 11) *)
  Alcotest.(check bool) "gate output changed" true
    (bad.(g16) <> good.(g16) || good.(node "11") = false)

let test_equivalence_classes_detect_identically () =
  (* a controlling-value pin fault and its output stem fault are
     detected by exactly the same vectors (single-reader pin) *)
  let g10 = node "10" in
  let pin_fault = Stuck_at.Pin { gate = g10; pin = 0; value = false } in
  let stem_fault = Stuck_at.Stem (g10, true) in
  (* NAND input sa0 ==> output sa1 *)
  Array.iter
    (fun v ->
      Alcotest.(check bool) "same detection" (Stuck_at.detects c17 stem_fault v)
        (Stuck_at.detects c17 pin_fault v))
    (Pattern_gen.exhaustive c17)

let test_collapsed_coverage_equals_full () =
  let vectors = Pattern_gen.exhaustive c17 in
  let full =
    Stuck_at.fault_simulate c17 ~vectors ~faults:(Stuck_at.full_fault_list c17)
  in
  let collapsed =
    Stuck_at.fault_simulate c17 ~vectors
      ~faults:(Stuck_at.collapsed_fault_list c17)
  in
  (* C17 is fully testable: exhaustive vectors detect everything *)
  Alcotest.(check (float 1e-9)) "full list 100%" 1.0 full.Stuck_at.coverage;
  Alcotest.(check (float 1e-9)) "collapsed 100%" 1.0 collapsed.Stuck_at.coverage

let test_fault_dropping_first_vector () =
  let vectors = Pattern_gen.exhaustive c17 in
  let faults = Stuck_at.collapsed_fault_list c17 in
  let r = Stuck_at.fault_simulate c17 ~vectors ~faults in
  Alcotest.(check int) "all faults accounted" (List.length faults) r.Stuck_at.total;
  Array.iter
    (fun v ->
      Alcotest.(check bool) "valid first vector" true
        (v >= 0 && v < Array.length vectors))
    r.Stuck_at.first_vector

let test_undetectable_fault () =
  (* a redundant circuit: y = OR(a, NOT a) is constant 1, so y/sa1 is
     undetectable *)
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b "na" Gate.Not [ "a" ];
  Builder.add_gate b "y" Gate.Or [ "a"; "na" ];
  Builder.add_output b "y";
  let c = Builder.freeze_exn b in
  let y = Option.get (Circuit.node_id_of_name c "y") in
  let vectors = Pattern_gen.exhaustive c in
  let r =
    Stuck_at.fault_simulate c ~vectors ~faults:[ Stuck_at.Stem (y, true) ]
  in
  Alcotest.(check int) "undetectable" 0 r.Stuck_at.detected;
  Alcotest.(check int) "one undetected" 1
    (List.length
       (Stuck_at.undetected c ~vectors ~faults:[ Stuck_at.Stem (y, true) ]))

(* ---------------- bridge logic ---------------- *)

let test_feedback_detection () =
  (* 16 feeds 22; bridging 16 with 22 is not a loop (only one
     direction), but bridging 11 with 16 where 16 reads 11...
     still one direction.  A true loop needs mutual reachability,
     impossible in a DAG - so is_feedback is always false here. *)
  Alcotest.(check bool) "DAG has no mutual reachability" false
    (Bridge_logic.is_feedback c17 (node "11") (node "16"));
  Alcotest.(check bool) "self" false
    (Bridge_logic.is_feedback c17 (node "11") (node "11"))

let test_bridge_logic_vs_iddq () =
  (* bridge between nets 10 and 11 (parallel NANDs).  IDDQ detects on
     any vector driving them apart; logic detection additionally needs
     propagation. *)
  let a = node "10" and b = node "11" in
  let vectors = Pattern_gen.exhaustive c17 in
  let iddq = Array.to_list vectors |> List.filter (Bridge_logic.iddq_detects c17 ~a ~b) in
  let logic = Array.to_list vectors |> List.filter (Bridge_logic.logic_detects c17 ~a ~b) in
  Alcotest.(check bool) "IDDQ catches some vectors" true (iddq <> []);
  (* logic detection implies IDDQ activation: a wired-AND only changes
     a value when the two nets differ *)
  List.iter
    (fun v ->
      Alcotest.(check bool) "logic => iddq" true
        (Bridge_logic.iddq_detects c17 ~a ~b v))
    logic;
  Alcotest.(check bool) "IDDQ detects at least as many vectors" true
    (List.length iddq >= List.length logic)

let test_bridge_faulty_eval_forced_values () =
  let a = node "10" and b = node "11" in
  let v = [| true; true; true; false; true |] in
  (* 10 = NAND(1,3) = 0; 11 = NAND(3,6) = 1 -> wired-AND forces both to 0 *)
  match Bridge_logic.faulty_eval c17 ~a ~b v with
  | None -> Alcotest.fail "not a feedback bridge"
  | Some values ->
    Alcotest.(check bool) "a forced" false values.(a);
    Alcotest.(check bool) "b forced" false values.(b)

let test_iscas_new_standins () =
  let check name c ~inputs ~gates ~depth =
    Alcotest.(check string) (name ^ " name") name (Circuit.name c);
    Alcotest.(check int) (name ^ " inputs") inputs (Circuit.num_inputs c);
    Alcotest.(check int) (name ^ " gates") gates (Circuit.num_gates c);
    Alcotest.(check int) (name ^ " depth") depth
      (Iddq_netlist.Graph_algo.depth c)
  in
  check "C499" (Iscas.c499_like ()) ~inputs:41 ~gates:202 ~depth:11;
  check "C880" (Iscas.c880_like ()) ~inputs:60 ~gates:383 ~depth:24;
  check "C1355" (Iscas.c1355_like ()) ~inputs:41 ~gates:546 ~depth:24;
  (* the mixes differ: C499 is XOR-heavy, C1355 NAND-heavy *)
  let count kind c =
    Circuit.fold_gates c ~init:0 ~f:(fun acc _ k ->
        if Gate.equal k kind then acc + 1 else acc)
  in
  Alcotest.(check bool) "C499 XOR-rich" true
    (count Gate.Xor (Iscas.c499_like ()) > 40);
  Alcotest.(check bool) "C1355 NAND-rich" true
    (count Gate.Nand (Iscas.c1355_like ()) > 300)

let qcheck_logic_implies_iddq =
  QCheck.Test.make
    ~name:"wired-AND logic detection implies IDDQ activation" ~count:40
    QCheck.(triple (int_range 10 60) (int_range 1 100000) (int_range 0 1000))
    (fun (gates, seed, vseed) ->
      let rng = Rng.create seed in
      let c =
        Iddq_netlist.Generator.layered_dag ~rng ~name:"q" ~num_inputs:6
          ~num_outputs:3 ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let a = Circuit.node_of_gate c (Rng.int rng (Circuit.num_gates c)) in
      let b = Circuit.node_of_gate c (Rng.int rng (Circuit.num_gates c)) in
      if a = b then true
      else begin
        let vr = Rng.create vseed in
        let v = Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool vr) in
        (not (Bridge_logic.logic_detects c ~a ~b v))
        || Bridge_logic.iddq_detects c ~a ~b v
      end)

let tests =
  [
    Alcotest.test_case "fault list sizes" `Quick test_fault_list_sizes;
    Alcotest.test_case "stem fault" `Quick test_stem_fault_changes_output;
    Alcotest.test_case "input stem fault" `Quick test_input_stem_fault;
    Alcotest.test_case "pin fault local" `Quick test_pin_fault_local;
    Alcotest.test_case "equivalence classes" `Quick
      test_equivalence_classes_detect_identically;
    Alcotest.test_case "collapsed coverage" `Quick
      test_collapsed_coverage_equals_full;
    Alcotest.test_case "fault dropping" `Quick test_fault_dropping_first_vector;
    Alcotest.test_case "undetectable fault" `Quick test_undetectable_fault;
    Alcotest.test_case "feedback detection" `Quick test_feedback_detection;
    Alcotest.test_case "bridge logic vs iddq" `Quick test_bridge_logic_vs_iddq;
    Alcotest.test_case "bridge forced values" `Quick
      test_bridge_faulty_eval_forced_values;
    Alcotest.test_case "new iscas stand-ins" `Quick test_iscas_new_standins;
    QCheck_alcotest.to_alcotest qcheck_logic_implies_iddq;
  ]
