module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Standard = Iddq_baseline.Standard
module Random_part = Iddq_baseline.Random_part
module Annealing = Iddq_baseline.Annealing
module Refine = Iddq_baseline.Refine
module Iscas = Iddq_netlist.Iscas
module Library = Iddq_celllib.Library
module Rng = Iddq_util.Rng

let make circuit = Charac.make ~library:Library.default circuit

let test_standard_sizes_respected () =
  let ch = make (Iscas.c432_like ()) in
  let sizes = [ 50; 50; 60 ] in
  let p = Standard.partition ch ~module_sizes:sizes in
  Alcotest.(check int) "three modules" 3 (Partition.num_modules p);
  Alcotest.(check (list int)) "exact sizes" sizes
    (List.map (Partition.size p) (Partition.module_ids p));
  Alcotest.(check (result unit string)) "consistent" (Ok ())
    (Partition.check_consistent p)

let test_standard_validation () =
  let ch = make (Iscas.c432_like ()) in
  Alcotest.(check bool) "wrong sum rejected" true
    (try ignore (Standard.partition ch ~module_sizes:[ 10; 10 ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-positive rejected" true
    (try ignore (Standard.partition ch ~module_sizes:[ 0; 160 ]); false
     with Invalid_argument _ -> true)

let test_standard_deterministic () =
  let ch = make (Iscas.c432_like ()) in
  let a = Standard.partition ch ~module_sizes:[ 80; 80 ] in
  let b = Standard.partition ch ~module_sizes:[ 80; 80 ] in
  Alcotest.(check bool) "same assignment" true
    (Partition.assignment a = Partition.assignment b)

let test_standard_uniform () =
  let ch = make (Iscas.c432_like ()) in
  let p = Standard.partition_uniform ch ~num_modules:7 in
  Alcotest.(check int) "seven modules" 7 (Partition.num_modules p);
  List.iter
    (fun m ->
      let s = Partition.size p m in
      Alcotest.(check bool) "near-equal" true (s = 22 || s = 23))
    (Partition.module_ids p)

let test_standard_clusters_connected_gates () =
  (* standard clustering should produce lower intra-module separation
     than a random deal at the same sizes *)
  let ch = make (Iscas.c432_like ()) in
  let std = Standard.partition_uniform ch ~num_modules:4 in
  let rng = Rng.create 3 in
  let rnd = Random_part.partition ~rng ch ~num_modules:4 in
  let total p =
    List.fold_left (fun acc m -> acc + Partition.separation_total p m) 0
      (Partition.module_ids p)
  in
  Alcotest.(check bool)
    (Printf.sprintf "S(std)=%d < S(random)=%d" (total std) (total rnd))
    true
    (total std < total rnd)

let test_random_partition () =
  let rng = Rng.create 17 in
  let ch = make (Iscas.c432_like ()) in
  let p = Random_part.partition ~rng ch ~num_modules:5 in
  Alcotest.(check int) "five modules" 5 (Partition.num_modules p);
  let total =
    List.fold_left (fun acc m -> acc + Partition.size p m) 0
      (Partition.module_ids p)
  in
  Alcotest.(check int) "covers" 160 total;
  List.iter
    (fun m -> Alcotest.(check int) "balanced" 32 (Partition.size p m))
    (Partition.module_ids p)

let test_annealing_improves () =
  let rng = Rng.create 23 in
  let ch = make (Iscas.c432_like ()) in
  let start = Random_part.partition ~rng ch ~num_modules:4 in
  let start_cost = (Cost.evaluate start).Cost.penalized in
  let params = { Annealing.default_params with Annealing.steps = 2000 } in
  let best, breakdown = Annealing.optimize ~params ~rng start in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f -> %.2f" start_cost breakdown.Cost.penalized)
    true
    (breakdown.Cost.penalized <= start_cost);
  Alcotest.(check (result unit string)) "consistent" (Ok ())
    (Partition.check_consistent best);
  (* the input partition is untouched *)
  Alcotest.(check (float 1e-9)) "start unchanged" start_cost
    ((Cost.evaluate start).Cost.penalized)

let test_annealing_param_validation () =
  let rng = Rng.create 1 in
  let ch = make (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let bad params =
    try ignore (Annealing.optimize ~params ~rng p); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "T0 <= 0" true
    (bad { Annealing.default_params with Annealing.initial_temperature = 0.0 });
  Alcotest.(check bool) "cooling >= 1" true
    (bad { Annealing.default_params with Annealing.cooling = 1.0 });
  Alcotest.(check bool) "steps < 1" true
    (bad { Annealing.default_params with Annealing.steps = 0 })

let test_annealing_no_self_moves () =
  (* regression: a proposal must never have src = target (a no-op that
     would be counted as an accepted move and burn an evaluation) *)
  let rng = Rng.create 41 in
  let ch = make (Iscas.c432_like ()) in
  let start = Random_part.partition ~rng ch ~num_modules:5 in
  let params = { Annealing.default_params with Annealing.steps = 1500 } in
  let proposals = ref 0 in
  let self_moves = ref 0 in
  let on_move ~step:_ ~gate:_ ~src ~target ~accepted:_ =
    incr proposals;
    if src = target then incr self_moves
  in
  let _ = Annealing.optimize ~params ~on_move ~rng start in
  Alcotest.(check bool) "some proposals made" true (!proposals > 0);
  Alcotest.(check int) "no src = target in the move trace" 0 !self_moves

let test_annealing_delta_equals_full_eval () =
  (* the incremental evaluator reproduces Cost.evaluate exactly, so
     both modes follow the same trajectory from the same rng seed *)
  let ch = make (Iscas.c432_like ()) in
  let start =
    Random_part.partition ~rng:(Rng.create 43) ch ~num_modules:5
  in
  let params = { Annealing.default_params with Annealing.steps = 1000 } in
  let _, full =
    Annealing.optimize ~params ~full_eval:true ~rng:(Rng.create 5) start
  in
  let _, delta = Annealing.optimize ~params ~rng:(Rng.create 5) start in
  Alcotest.(check (float 0.0)) "identical final cost" full.Cost.penalized
    delta.Cost.penalized

let test_refine_monotone () =
  let rng = Rng.create 29 in
  let ch = make (Iscas.c432_like ()) in
  let start = Random_part.partition ~rng ch ~num_modules:4 in
  let start_cost = (Cost.evaluate start).Cost.penalized in
  let refined, breakdown = Refine.optimize ~max_passes:3 start in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f -> %.2f" start_cost breakdown.Cost.penalized)
    true
    (breakdown.Cost.penalized <= start_cost);
  Alcotest.(check (result unit string)) "consistent" (Ok ())
    (Partition.check_consistent refined)

let test_refine_fixpoint_idempotent () =
  let rng = Rng.create 31 in
  let ch = make (Iscas.c17 ()) in
  let start = Random_part.partition ~rng ch ~num_modules:2 in
  let once, b1 = Refine.optimize ~max_passes:50 start in
  let _, b2 = Refine.optimize ~max_passes:50 once in
  Alcotest.(check (float 1e-9)) "already at a local optimum"
    b1.Cost.penalized b2.Cost.penalized

let tests =
  [
    Alcotest.test_case "standard sizes" `Quick test_standard_sizes_respected;
    Alcotest.test_case "standard validation" `Quick test_standard_validation;
    Alcotest.test_case "standard deterministic" `Quick test_standard_deterministic;
    Alcotest.test_case "standard uniform" `Quick test_standard_uniform;
    Alcotest.test_case "standard clusters connected" `Quick
      test_standard_clusters_connected_gates;
    Alcotest.test_case "random partition" `Quick test_random_partition;
    Alcotest.test_case "annealing improves" `Slow test_annealing_improves;
    Alcotest.test_case "annealing validation" `Quick test_annealing_param_validation;
    Alcotest.test_case "annealing no self moves" `Slow test_annealing_no_self_moves;
    Alcotest.test_case "annealing delta = full eval" `Slow
      test_annealing_delta_equals_full_eval;
    Alcotest.test_case "refine monotone" `Slow test_refine_monotone;
    Alcotest.test_case "refine idempotent" `Quick test_refine_fixpoint_idempotent;
  ]
