(* The ATPG closed loop: Coverage minimizers on hand-built and random
   matrices, and the Result-typed Atpg facade's contract. *)

module Atpg = Iddq_atpg.Atpg
module Testset = Iddq_atpg.Testset
module Coverage = Iddq_defects.Coverage
module Fault_sim = Iddq_defects.Fault_sim
module Stuck_at = Iddq_defects.Stuck_at
module Bitvec = Iddq_util.Bitvec
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Rng = Iddq_util.Rng

let matrix ~n_vectors rows_bits =
  let rows =
    Array.map
      (fun bits ->
        let row = Bitvec.create n_vectors in
        List.iter (Bitvec.set row) bits;
        row)
      (Array.of_list rows_bits)
  in
  { Fault_sim.n_vectors; rows }

let ints = Alcotest.(check (list int))
let selection sel = Array.to_list sel

(* v0 detects four faults (the greedy bait), but v1 and v2 are each the
   sole detector of a fault, and together cover everything: greedy
   keeps 3 vectors where the essential-first and refined strategies
   provably reach the 2-vector optimum. *)
let greedy_bait =
  matrix ~n_vectors:3
    [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1 ]; [ 2 ] ]

let test_greedy_suboptimal_on_bait () =
  ints "greedy takes the bait" [ 0; 1; 2 ]
    (selection (Coverage.compact greedy_bait));
  ints "v1,v2 are essential" [ 1; 2 ]
    (selection (Coverage.essential_vectors greedy_bait));
  ints "essential-first reaches the optimum" [ 1; 2 ]
    (selection (Coverage.minimize_essential greedy_bait));
  ints "refinement drops the bait afterwards" [ 1; 2 ]
    (selection (Coverage.minimize_refined greedy_bait))

let test_minimizers_preserve_bait_coverage () =
  List.iter
    (fun strategy ->
      Alcotest.(check (float 1e-9))
        (Testset.strategy_to_string strategy ^ " preserves coverage")
        1.0
        (Coverage.coverage_of_selection greedy_bait
           (Testset.minimize strategy greedy_bait)))
    Testset.strategies

let test_strategy_strings_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Testset.strategy_to_string s ^ " roundtrips")
        true
        (Testset.strategy_of_string (Testset.strategy_to_string s) = Some s))
    Testset.strategies;
  Alcotest.(check bool)
    "unknown strategy rejected" true
    (Testset.strategy_of_string "optimal" = None)

(* Random matrices: every strategy must preserve the full set's
   coverage, return ascending duplicate-free in-range indices, and
   refined must never exceed greedy. *)
let qcheck_minimizers_preserve_coverage =
  QCheck.Test.make
    ~name:"minimized selections preserve full-set coverage" ~count:100
    QCheck.(triple (int_range 1 40) (int_range 1 50) (int_range 1 100000))
    (fun (n_faults, n_vectors, seed) ->
      let rng = Rng.create seed in
      let m =
        {
          Fault_sim.n_vectors;
          rows =
            Array.init n_faults (fun _ ->
                let row = Bitvec.create n_vectors in
                for v = 0 to n_vectors - 1 do
                  if Rng.int rng 4 = 0 then Bitvec.set row v
                done;
                row);
        }
      in
      let full =
        if n_faults = 0 then 1.0
        else
          float_of_int (Coverage.num_detectable m) /. float_of_int n_faults
      in
      let ascending sel =
        let ok = ref true in
        Array.iteri
          (fun i v ->
            if v < 0 || v >= n_vectors then ok := false;
            if i > 0 && sel.(i - 1) >= v then ok := false)
          sel;
        !ok
      in
      let sizes =
        List.map
          (fun strategy ->
            let sel = Testset.minimize strategy m in
            if not (ascending sel) then
              QCheck.Test.fail_reportf "selection not ascending/in-range";
            let cov = Coverage.coverage_of_selection m sel in
            if Float.abs (cov -. full) > 1e-9 then
              QCheck.Test.fail_reportf "%s lost coverage: %f vs %f"
                (Testset.strategy_to_string strategy)
                cov full;
            (strategy, Array.length sel))
          Testset.strategies
      in
      List.assoc Testset.Refined sizes <= List.assoc Testset.Greedy sizes)

(* ------------------------------------------------------------------ *)
(* The facade                                                          *)
(* ------------------------------------------------------------------ *)

let c17 = Iscas.c17 ()

let run_ok ?config c =
  match Atpg.run_result ?config c with
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected error: %s" (Atpg.error_to_string e)

let test_facade_full_coverage_on_c17 () =
  let r = run_ok c17 in
  Alcotest.(check (float 1e-9)) "C17 is fully testable" 1.0 r.Atpg.coverage;
  Alcotest.(check (float 1e-9)) "efficiency 1.0" 1.0 r.Atpg.efficiency;
  Alcotest.(check bool)
    "minimized no larger than generated" true
    (Array.length r.Atpg.vectors <= r.Atpg.vectors_before);
  Alcotest.(check int) "selected indexes the minimized set"
    (Array.length r.Atpg.vectors)
    (Array.length r.Atpg.selected);
  Alcotest.(check int) "all_vectors is the full set" r.Atpg.vectors_before
    (Array.length r.Atpg.all_vectors);
  (* the minimized set really detects every fault *)
  let faults = Stuck_at.collapsed_fault_list c17 in
  let sim = Stuck_at.fault_simulate c17 ~vectors:r.Atpg.vectors ~faults in
  Alcotest.(check (float 1e-9))
    "minimized set re-simulates to full coverage" 1.0
    sim.Stuck_at.coverage

let test_facade_deterministic () =
  let config = Atpg.config ~seed:7 ~random_vectors:8 () in
  let a = run_ok ~config c17 and b = run_ok ~config c17 in
  Alcotest.(check bool) "same vectors" true (a.Atpg.vectors = b.Atpg.vectors);
  Alcotest.(check bool) "same selection" true
    (a.Atpg.selected = b.Atpg.selected);
  Alcotest.(check (float 0.0)) "same coverage" a.Atpg.coverage b.Atpg.coverage

let test_facade_strategies_agree_on_coverage () =
  let base = run_ok c17 in
  List.iter
    (fun strategy ->
      match Atpg.minimize_result ~strategy base.Atpg.matrix with
      | Error e -> Alcotest.failf "minimize: %s" (Atpg.error_to_string e)
      | Ok sel ->
        Alcotest.(check (float 1e-9))
          (Testset.strategy_to_string strategy ^ " preserves coverage")
          base.Atpg.coverage
          (Coverage.coverage_of_selection base.Atpg.matrix sel))
    Testset.strategies

let check_error name expected result =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s -> %s" name (Atpg.error_to_string e))
      true (expected e)

let test_facade_error_paths () =
  check_error "empty fault list"
    (fun e -> e = Atpg.Empty_fault_list)
    (Atpg.generate_result c17 []);
  check_error "zero backtracks"
    (function Atpg.Bad_config _ -> true | _ -> false)
    (Atpg.run_result ~config:(Atpg.config ~max_backtracks:0 ()) c17);
  check_error "zero budget"
    (function Atpg.Bad_config _ -> true | _ -> false)
    (Atpg.run_result ~config:(Atpg.config ~budget:0 ()) c17);
  check_error "negative random vectors"
    (function Atpg.Bad_config _ -> true | _ -> false)
    (Atpg.run_result ~config:(Atpg.config ~random_vectors:(-1) ()) c17);
  check_error "stem fault out of range"
    (function Atpg.Fault_mismatch _ -> true | _ -> false)
    (Atpg.generate_result c17 [ Stuck_at.Stem (Circuit.num_nodes c17, true) ]);
  check_error "pin fault on an input node"
    (function Atpg.Fault_mismatch _ -> true | _ -> false)
    (Atpg.generate_result c17
       [ Stuck_at.Pin { gate = 0; pin = 0; value = true } ]);
  check_error "pin index beyond the gate's fanins"
    (function Atpg.Fault_mismatch _ -> true | _ -> false)
    (Atpg.generate_result c17
       [
         Stuck_at.Pin
           { gate = Circuit.num_inputs c17; pin = 99; value = false };
       ])

let test_facade_budget_exhaustion () =
  (* no random vectors, a one-target budget: C17's 22 collapsed faults
     cannot all be targeted *)
  let config = Atpg.config ~budget:1 ~random_vectors:0 () in
  match Atpg.run_result ~config c17 with
  | Error (Atpg.Budget_exhausted { targeted; remaining }) ->
    Alcotest.(check int) "one target attempted" 1 targeted;
    Alcotest.(check bool) "faults remain" true (remaining > 0)
  | Error e -> Alcotest.failf "wrong error: %s" (Atpg.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Budget_exhausted"

let test_facade_exn_wrappers () =
  (* the raising derivative renders the same structured error *)
  (match Atpg.generate_exn c17 [] with
  | exception Failure msg ->
    Alcotest.(check string) "message is the rendered error"
      (Atpg.error_to_string Atpg.Empty_fault_list)
      msg
  | _ -> Alcotest.fail "expected Failure");
  let r = Atpg.run_exn c17 in
  Alcotest.(check (float 1e-9)) "run_exn succeeds" 1.0 r.Atpg.coverage

let test_facade_matches_deprecated_oracle () =
  (* same seed discipline as Podem.complete_set: random vectors from
     the rng, then top-up; coverage must agree *)
  let config = Atpg.config ~seed:3 ~random_vectors:16 () in
  let r = run_ok ~config c17 in
  let rng = Rng.create 3 in
  let initial = Iddq_patterns.Pattern_gen.random ~rng c17 ~count:16 in
  let oracle =
    Iddq_atpg.Podem.complete_set ~rng ~initial c17
      (Stuck_at.collapsed_fault_list c17)
  in
  Alcotest.(check (float 1e-9))
    "facade coverage = complete_set coverage" oracle.Iddq_atpg.Podem.coverage
    r.Atpg.coverage;
  Alcotest.(check int) "same vector count"
    (Array.length oracle.Iddq_atpg.Podem.vectors)
    r.Atpg.vectors_before

let tests =
  [
    Alcotest.test_case "greedy provably non-optimal matrix" `Quick
      test_greedy_suboptimal_on_bait;
    Alcotest.test_case "bait minimizers preserve coverage" `Quick
      test_minimizers_preserve_bait_coverage;
    Alcotest.test_case "strategy strings roundtrip" `Quick
      test_strategy_strings_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_minimizers_preserve_coverage;
    Alcotest.test_case "facade: full coverage on C17" `Quick
      test_facade_full_coverage_on_c17;
    Alcotest.test_case "facade: deterministic under a seed" `Quick
      test_facade_deterministic;
    Alcotest.test_case "facade: strategy sweep preserves coverage" `Quick
      test_facade_strategies_agree_on_coverage;
    Alcotest.test_case "facade: structured error paths" `Quick
      test_facade_error_paths;
    Alcotest.test_case "facade: budget exhaustion" `Quick
      test_facade_budget_exhaustion;
    Alcotest.test_case "facade: _exn wrappers" `Quick test_facade_exn_wrappers;
    Alcotest.test_case "facade vs deprecated complete_set" `Quick
      test_facade_matches_deprecated_oracle;
  ]
