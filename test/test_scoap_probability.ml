module Scoap = Iddq_analysis.Scoap
module Probability = Iddq_analysis.Probability
module Charac = Iddq_analysis.Charac
module Switching = Iddq_analysis.Switching
module Builder = Iddq_netlist.Builder
module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate
module Iscas = Iddq_netlist.Iscas
module Generator = Iddq_netlist.Generator
module Library = Iddq_celllib.Library
module Rng = Iddq_util.Rng

let node c name = Option.get (Circuit.node_id_of_name c name)

(* y = AND(a, b); z = NOT(y) with z the output *)
let and_not () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_input b "b";
  Builder.add_gate b "y" Gate.And [ "a"; "b" ];
  Builder.add_gate b "z" Gate.Not [ "y" ];
  Builder.add_output b "z";
  Builder.freeze_exn b

let test_scoap_controllability () =
  let c = and_not () in
  let s = Scoap.compute c in
  Alcotest.(check int) "input cc0" 1 (Scoap.cc0 s (node c "a"));
  Alcotest.(check int) "input cc1" 1 (Scoap.cc1 s (node c "a"));
  (* AND: cc1 = cc1(a)+cc1(b)+1 = 3; cc0 = min +1 = 2 *)
  Alcotest.(check int) "and cc1" 3 (Scoap.cc1 s (node c "y"));
  Alcotest.(check int) "and cc0" 2 (Scoap.cc0 s (node c "y"));
  (* NOT inverts: cc1(z) = cc0(y)+1 = 3; cc0(z) = cc1(y)+1 = 4 *)
  Alcotest.(check int) "not cc1" 3 (Scoap.cc1 s (node c "z"));
  Alcotest.(check int) "not cc0" 4 (Scoap.cc0 s (node c "z"))

let test_scoap_observability () =
  let c = and_not () in
  let s = Scoap.compute c in
  Alcotest.(check int) "output co" 0 (Scoap.co s (node c "z"));
  (* through the NOT: co(y) = 0 + 1 = 1 *)
  Alcotest.(check int) "co through NOT" 1 (Scoap.co s (node c "y"));
  (* a through the AND: co(y) + cc1(b) + 1 = 1 + 1 + 1 = 3 *)
  Alcotest.(check int) "co of a" 3 (Scoap.co s (node c "a"))

let test_scoap_xor () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_input b "b";
  Builder.add_gate b "y" Gate.Xor [ "a"; "b" ];
  Builder.add_output b "y";
  let c = Builder.freeze_exn b in
  let s = Scoap.compute c in
  (* XOR: cc1 = min(cc1+cc0, cc0+cc1)+1 = 3; cc0 = min(cc0+cc0, cc1+cc1)+1 = 3 *)
  Alcotest.(check int) "xor cc1" 3 (Scoap.cc1 s (node c "y"));
  Alcotest.(check int) "xor cc0" 3 (Scoap.cc0 s (node c "y"))

let test_scoap_dead_end_unobservable () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_gate b "used" Gate.Not [ "a" ];
  Builder.add_gate b "dead" Gate.Buff [ "a" ];
  Builder.add_output b "used";
  let c = Builder.freeze_exn b in
  let s = Scoap.compute c in
  Alcotest.(check bool) "dead-end co is huge" true
    (Scoap.co s (node c "dead") > 1_000_000)

let test_hardest_gates () =
  let c = Iscas.c17 () in
  let s = Scoap.compute c in
  let hardest = Scoap.hardest_gates s c ~count:3 in
  Alcotest.(check int) "three returned" 3 (Array.length hardest);
  (* scores are non-increasing *)
  let score g = Scoap.gate_testability s c g in
  Alcotest.(check bool) "sorted hardest-first" true
    (score hardest.(0) >= score hardest.(1)
    && score hardest.(1) >= score hardest.(2))

let test_signal_probabilities_known () =
  let c = and_not () in
  let p = Probability.signal_probabilities c in
  Alcotest.(check (float 1e-12)) "P(and)" 0.25 p.(node c "y");
  Alcotest.(check (float 1e-12)) "P(not)" 0.75 p.(node c "z")

let test_signal_probabilities_xor () =
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_input b "b";
  Builder.add_input b "c";
  Builder.add_gate b "y" Gate.Xor [ "a"; "b"; "c" ];
  Builder.add_output b "y";
  let c = Builder.freeze_exn b in
  let p = Probability.signal_probabilities c in
  Alcotest.(check (float 1e-12)) "parity of fair coins" 0.5 p.(node c "y")

let test_probabilities_match_exhaustive () =
  (* fanout-free regions: the independence approximation is exact;
     C17 has reconvergence, so compare on a generated tree instead *)
  let c = Generator.balanced_tree ~depth:3 () in
  let p = Probability.signal_probabilities c in
  let vectors = Iddq_patterns.Pattern_gen.exhaustive c in
  let counts = Array.make (Circuit.num_nodes c) 0 in
  Array.iter
    (fun v ->
      let values = Iddq_patterns.Logic_sim.eval c v in
      Array.iteri (fun id b -> if b then counts.(id) <- counts.(id) + 1) values)
    vectors;
  for id = 0 to Circuit.num_nodes c - 1 do
    let empirical = float_of_int counts.(id) /. float_of_int (Array.length vectors) in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "node %d" id)
      empirical p.(id)
  done

let test_switching_probabilities_bounds () =
  let c = Iscas.c1908_like () in
  let sw = Probability.switching_probabilities c in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "in [0, 0.5]" true (x >= 0.0 && x <= 0.5 +. 1e-12))
    sw

let test_expected_below_pessimistic () =
  let circuit = Iscas.c432_like () in
  let ch = Charac.make ~library:Library.default circuit in
  let gates = Array.init (Charac.num_gates ch) Fun.id in
  let expected = Probability.expected_max_current ch gates in
  let pessimistic = Switching.max_transient_current ch gates in
  Alcotest.(check bool)
    (Printf.sprintf "expected %.3e < pessimistic %.3e" expected pessimistic)
    true (expected < pessimistic);
  Alcotest.(check bool) "positive" true (expected > 0.0)

let qcheck_expected_profile_dominated =
  QCheck.Test.make
    ~name:"expected profile is dominated by the pessimistic profile"
    ~count:25
    QCheck.(pair (int_range 15 70) (int_range 1 100000))
    (fun (gates, seed) ->
      let rng = Rng.create seed in
      let circuit =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:6 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let ch = Charac.make ~library:Library.default circuit in
      let group = Array.init gates Fun.id in
      let expected = Probability.expected_profile ch group in
      let pessimistic = Switching.current_profile ch group in
      Array.for_all Fun.id
        (Array.mapi (fun slot e -> e <= pessimistic.(slot) +. 1e-15) expected))

let tests =
  [
    Alcotest.test_case "scoap controllability" `Quick test_scoap_controllability;
    Alcotest.test_case "scoap observability" `Quick test_scoap_observability;
    Alcotest.test_case "scoap xor" `Quick test_scoap_xor;
    Alcotest.test_case "scoap dead end" `Quick test_scoap_dead_end_unobservable;
    Alcotest.test_case "hardest gates" `Quick test_hardest_gates;
    Alcotest.test_case "signal probabilities" `Quick
      test_signal_probabilities_known;
    Alcotest.test_case "xor probabilities" `Quick test_signal_probabilities_xor;
    Alcotest.test_case "probabilities exact on trees" `Quick
      test_probabilities_match_exhaustive;
    Alcotest.test_case "switching probability bounds" `Quick
      test_switching_probabilities_bounds;
    Alcotest.test_case "expected below pessimistic" `Quick
      test_expected_below_pessimistic;
    QCheck_alcotest.to_alcotest qcheck_expected_profile_dominated;
  ]
