module Placement = Iddq_layout.Placement
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Generator = Iddq_netlist.Generator
module Rng = Iddq_util.Rng

let test_positions_in_bounds () =
  let c = Iscas.c432_like () in
  let p = Placement.place c in
  let w, h = Placement.dimensions p in
  for g = 0 to Circuit.num_gates c - 1 do
    let x, y = Placement.position p g in
    Alcotest.(check bool)
      (Printf.sprintf "gate %d in bounds" g)
      true
      (x >= 0.0 && x <= w && y >= 0.0 && y <= h)
  done

let test_deterministic () =
  let c = Iscas.c432_like () in
  let a = Placement.place ~seed:3 c and b = Placement.place ~seed:3 c in
  for g = 0 to Circuit.num_gates c - 1 do
    Alcotest.(check bool) "same position" true
      (Placement.position a g = Placement.position b g)
  done

let test_mincut_beats_random () =
  (* a connectivity-driven placement must wire a structured circuit
     more tightly than a shuffle *)
  let c = Iscas.c880_like () in
  let placed = Placement.place c in
  let rng = Rng.create 9 in
  let shuffled = Placement.random ~rng c in
  let a = Placement.hpwl placed and b = Placement.hpwl shuffled in
  Alcotest.(check bool)
    (Printf.sprintf "placed %.1f < random %.1f" a b)
    true (a < b)

let test_chain_hpwl_small () =
  (* a chain places onto a line-ish layout: each net spans few cells *)
  let c = Generator.chain ~length:64 () in
  let p = Placement.place c in
  let per_net = Placement.hpwl p /. 63.0 in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f pitches per chain net" per_net)
    true (per_net < 3.0)

let test_net_hpwl_sink () =
  let c = Generator.chain ~length:4 () in
  let p = Placement.place c in
  (* the last gate drives no gate: empty net *)
  Alcotest.(check (float 0.0)) "sink net" 0.0 (Placement.net_hpwl p 3)

let test_module_bbox () =
  let c = Iscas.c432_like () in
  let p = Placement.place c in
  let gates = [| 0; 1; 2; 3; 4 |] in
  let x0, y0, x1, y1 = Placement.module_bbox p gates in
  Alcotest.(check bool) "bbox ordered" true (x0 <= x1 && y0 <= y1);
  Array.iter
    (fun g ->
      let x, y = Placement.position p g in
      Alcotest.(check bool) "inside" true (x >= x0 && x <= x1 && y >= y0 && y <= y1))
    gates;
  Alcotest.(check (float 1e-9)) "rail length = half perimeter"
    (x1 -. x0 +. (y1 -. y0))
    (Placement.module_rail_length p gates);
  Alcotest.(check bool) "empty rejected" true
    (try ignore (Placement.module_bbox p [||]); false
     with Invalid_argument _ -> true)

let test_sensor_chain () =
  let c = Iscas.c432_like () in
  let p = Placement.place c in
  let all = Array.init (Circuit.num_gates c) Fun.id in
  Alcotest.(check (float 0.0)) "one module: no chain" 0.0
    (Placement.sensor_chain_length p [ all ]);
  let halves =
    [ Array.sub all 0 80; Array.sub all 80 80 ]
  in
  Alcotest.(check bool) "two modules: positive chain" true
    (Placement.sensor_chain_length p halves > 0.0);
  (* more modules, longer chain *)
  let quarters =
    [ Array.sub all 0 40; Array.sub all 40 40; Array.sub all 80 40;
      Array.sub all 120 40 ]
  in
  Alcotest.(check bool) "chain grows with module count" true
    (Placement.sensor_chain_length p quarters
    >= Placement.sensor_chain_length p halves)

let test_separation_correlates_with_bbox () =
  (* the paper's S(M) metric should track physical rail length:
     averaged over samples, connected BFS balls need less rail (and
     less separation) than random scatters of the same size *)
  let c = Iscas.c880_like () in
  let p = Placement.place c in
  let u = Iddq_netlist.Graph_algo.undirected_of_circuit c in
  let rng = Rng.create 4 in
  let n = Circuit.num_gates c in
  let size = 12 and samples = 12 in
  let ball () =
    let seen = Hashtbl.create 16 in
    let q = Queue.create () in
    Queue.add (Rng.int rng n) q;
    while Hashtbl.length seen < size && not (Queue.is_empty q) do
      let g = Queue.pop q in
      if not (Hashtbl.mem seen g) then begin
        Hashtbl.replace seen g ();
        Iddq_netlist.Graph_algo.iter_neighbours u g (fun h -> Queue.add h q)
      end
    done;
    Array.of_seq (Hashtbl.to_seq_keys seen)
  in
  let scatter () =
    Rng.sample_without_replacement rng size (Array.init n Fun.id)
  in
  let sep gates =
    float_of_int (Iddq_netlist.Graph_algo.module_separation u ~cutoff:6 gates)
  in
  let rail gates = Placement.module_rail_length p gates in
  let mean f make =
    let total = ref 0.0 in
    for _ = 1 to samples do
      total := !total +. f (make ())
    done;
    !total /. float_of_int samples
  in
  let sep_ball = mean sep ball and sep_scatter = mean sep scatter in
  let rail_ball = mean rail ball and rail_scatter = mean rail scatter in
  Alcotest.(check bool)
    (Printf.sprintf "balls: S=%.0f rail=%.1f; scatters: S=%.0f rail=%.1f"
       sep_ball rail_ball sep_scatter rail_scatter)
    true
    (sep_ball < sep_scatter && rail_ball < rail_scatter)

let tests =
  [
    Alcotest.test_case "positions in bounds" `Quick test_positions_in_bounds;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "mincut beats random" `Quick test_mincut_beats_random;
    Alcotest.test_case "chain hpwl small" `Quick test_chain_hpwl_small;
    Alcotest.test_case "sink net" `Quick test_net_hpwl_sink;
    Alcotest.test_case "module bbox" `Quick test_module_bbox;
    Alcotest.test_case "sensor chain" `Quick test_sensor_chain;
    Alcotest.test_case "separation vs bbox" `Quick
      test_separation_correlates_with_bbox;
  ]
