module Schedule = Iddq_bic.Schedule
module Sensor = Iddq_bic.Sensor
module Test_time = Iddq_bic.Test_time
module Technology = Iddq_celllib.Technology

let tech = Technology.default
let d_bic = 50.0e-9

let sensor peak =
  Sensor.size ~technology:tech ~peak_current:peak ~module_rail_capacitance:5e-12

let sensors peaks = List.mapi (fun i p -> (i, sensor p)) peaks

let test_parallel_matches_test_time () =
  let ss = sensors [ 0.01; 0.02; 0.005 ] in
  let sched = Schedule.parallel ~technology:tech ~d_bic ss in
  Alcotest.(check int) "one session" 1 (List.length sched.Schedule.sessions);
  Alcotest.(check (float 1e-18)) "same as Test_time.per_vector"
    (Test_time.per_vector tech ~d_bic (List.map snd ss))
    sched.Schedule.vector_time

let test_serial_sessions () =
  let ss = sensors [ 0.01; 0.02; 0.005 ] in
  let sched = Schedule.serial ~technology:tech ~d_bic ss in
  Alcotest.(check int) "three sessions" 3 (List.length sched.Schedule.sessions);
  let expected =
    d_bic
    +. List.fold_left (fun acc (_, s) -> acc +. Test_time.settling tech s) 0.0 ss
  in
  Alcotest.(check (float 1e-18)) "sum of settlings" expected
    sched.Schedule.vector_time

let test_budget_packs () =
  let ss = sensors [ 0.010; 0.010; 0.010; 0.010 ] in
  (* budget fits exactly two modules per session *)
  let sched = Schedule.schedule ~technology:tech ~d_bic ~budget:0.020 ss in
  Alcotest.(check int) "two sessions" 2 (List.length sched.Schedule.sessions);
  (* every module appears exactly once *)
  let all =
    List.concat_map (fun s -> s.Schedule.members) sched.Schedule.sessions
    |> List.sort compare
  in
  Alcotest.(check (list int)) "cover" [ 0; 1; 2; 3 ] all

let test_budget_respected () =
  let peaks = [ 0.012; 0.007; 0.018; 0.003; 0.009 ] in
  let ss = sensors peaks in
  let budget = 0.02 in
  let sched = Schedule.schedule ~technology:tech ~d_bic ~budget ss in
  List.iter
    (fun session ->
      let total =
        List.fold_left
          (fun acc m -> acc +. (List.assoc m ss).Sensor.peak_current)
          0.0 session.Schedule.members
      in
      Alcotest.(check bool)
        (Printf.sprintf "session total %.3f within budget" total)
        true (total <= budget +. 1e-12))
    sched.Schedule.sessions

let test_oversize_module_gets_own_session () =
  let ss = sensors [ 0.05; 0.001 ] in
  let sched = Schedule.schedule ~technology:tech ~d_bic ~budget:0.01 ss in
  (* the 0.05 A module exceeds the budget: alone in a session *)
  let solo =
    List.exists
      (fun s -> s.Schedule.members = [ 0 ])
      sched.Schedule.sessions
  in
  Alcotest.(check bool) "oversize isolated" true solo

let test_infinite_budget_is_parallel () =
  let ss = sensors [ 0.01; 0.02; 0.005 ] in
  let sched = Schedule.schedule ~technology:tech ~d_bic ~budget:infinity ss in
  Alcotest.(check int) "one session" 1 (List.length sched.Schedule.sessions)

let test_monotone_in_budget () =
  let ss = sensors [ 0.012; 0.007; 0.018; 0.003; 0.009; 0.02 ] in
  let time budget =
    (Schedule.schedule ~technology:tech ~d_bic ~budget ss).Schedule.vector_time
  in
  Alcotest.(check bool) "tighter budget is never faster" true
    (time 0.01 >= time 0.02 && time 0.02 >= time 1.0)

let test_bad_budget () =
  Alcotest.check_raises "zero budget"
    (Invalid_argument "Schedule.schedule: budget must be positive") (fun () ->
      ignore (Schedule.schedule ~technology:tech ~d_bic ~budget:0.0 (sensors [ 0.01 ])))

let tests =
  [
    Alcotest.test_case "parallel matches test_time" `Quick
      test_parallel_matches_test_time;
    Alcotest.test_case "serial sessions" `Quick test_serial_sessions;
    Alcotest.test_case "budget packs" `Quick test_budget_packs;
    Alcotest.test_case "budget respected" `Quick test_budget_respected;
    Alcotest.test_case "oversize isolated" `Quick
      test_oversize_module_gets_own_session;
    Alcotest.test_case "infinite budget" `Quick test_infinite_budget_is_parallel;
    Alcotest.test_case "monotone in budget" `Quick test_monotone_in_budget;
    Alcotest.test_case "bad budget" `Quick test_bad_budget;
  ]
