module Metrics = Iddq_util.Metrics

let test_record_and_snapshot () =
  let m = Metrics.create () in
  Metrics.record_full m ~gates:100 ~seconds:0.5;
  Metrics.record_full m ~gates:100 ~seconds:0.25;
  Metrics.record_delta m ~gates:10 ~seconds:0.01;
  Metrics.record_hit m;
  Metrics.record_move m;
  Metrics.record_move m;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "full" 2 s.Metrics.full_evals;
  Alcotest.(check int) "delta" 1 s.Metrics.delta_evals;
  Alcotest.(check int) "hits" 1 s.Metrics.cache_hits;
  Alcotest.(check int) "moves" 2 s.Metrics.moves;
  Alcotest.(check int) "gates full" 200 s.Metrics.gates_full;
  Alcotest.(check int) "gates delta" 10 s.Metrics.gates_delta;
  Alcotest.(check (float 1e-12)) "seconds full" 0.75 s.Metrics.seconds_full;
  Alcotest.(check int) "evaluations" 4 (Metrics.evaluations s)

let test_equivalent_evals () =
  let m = Metrics.create () in
  Metrics.record_full m ~gates:100 ~seconds:0.0;
  Metrics.record_delta m ~gates:10 ~seconds:0.0;
  Metrics.record_delta m ~gates:40 ~seconds:0.0;
  let s = Metrics.snapshot m in
  (* 1 full + 50 delta-gates at 100 gates per full = 1.5 *)
  Alcotest.(check (float 1e-12)) "normalized by mean full size" 1.5
    (Metrics.equivalent_evals s);
  Alcotest.(check (float 1e-12)) "speedup = evaluations / equivalents" 2.0
    (Metrics.speedup s)

let test_equivalent_evals_no_full () =
  (* with no full evaluation there is no normalizer: every delta
     counts as a full one (pessimistic) *)
  let m = Metrics.create () in
  Metrics.record_delta m ~gates:7 ~seconds:0.0;
  Metrics.record_delta m ~gates:3 ~seconds:0.0;
  let s = Metrics.snapshot m in
  Alcotest.(check (float 1e-12)) "pessimistic fallback" 2.0
    (Metrics.equivalent_evals s)

let test_diff_and_reset () =
  let m = Metrics.create () in
  Metrics.record_full m ~gates:5 ~seconds:0.0;
  let before = Metrics.snapshot m in
  Metrics.record_delta m ~gates:2 ~seconds:0.0;
  Metrics.record_hit m;
  let d = Metrics.diff (Metrics.snapshot m) before in
  Alcotest.(check int) "full increment" 0 d.Metrics.full_evals;
  Alcotest.(check int) "delta increment" 1 d.Metrics.delta_evals;
  Alcotest.(check int) "hit increment" 1 d.Metrics.cache_hits;
  Metrics.reset m;
  let z = Metrics.snapshot m in
  Alcotest.(check int) "reset evals" 0 (Metrics.evaluations z);
  Alcotest.(check int) "reset gates" 0 z.Metrics.gates_full

let test_domain_safe_recording () =
  (* concurrent recording from several domains loses nothing *)
  let m = Metrics.create () in
  let per_domain = 10_000 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.record_delta m ~gates:3 ~seconds:1e-6;
      Metrics.record_move m
    done
  in
  let domains = Array.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "all deltas counted" (4 * per_domain)
    s.Metrics.delta_evals;
  Alcotest.(check int) "all moves counted" (4 * per_domain) s.Metrics.moves;
  Alcotest.(check int) "all gates counted" (12 * per_domain)
    s.Metrics.gates_delta;
  Alcotest.(check (float 1e-9)) "all seconds accumulated"
    (4.0e-6 *. float_of_int per_domain)
    s.Metrics.seconds_delta

let test_pp_smoke () =
  let m = Metrics.create () in
  Metrics.record_full m ~gates:10 ~seconds:0.1;
  let s = Metrics.snapshot m in
  let str = Format.asprintf "%a" Metrics.pp s in
  Alcotest.(check bool) "mentions evaluations" true
    (String.length str > 0 && String.index_opt str '=' <> None)

let tests =
  [
    Alcotest.test_case "record and snapshot" `Quick test_record_and_snapshot;
    Alcotest.test_case "equivalent evals" `Quick test_equivalent_evals;
    Alcotest.test_case "equivalent evals without full" `Quick
      test_equivalent_evals_no_full;
    Alcotest.test_case "diff and reset" `Quick test_diff_and_reset;
    Alcotest.test_case "domain-safe recording" `Quick test_domain_safe_recording;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
  ]
