(* Edge cases and small utilities not covered elsewhere. *)

module Timing = Iddq_analysis.Timing
module Charac = Iddq_analysis.Charac
module Generator = Iddq_netlist.Generator
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Library = Iddq_celllib.Library
module Cell = Iddq_celllib.Cell
module Gate = Iddq_netlist.Gate
module Rng = Iddq_util.Rng

let make circuit = Charac.make ~library:Library.default circuit

let test_critical_path_chain () =
  let ch = make (Generator.chain ~length:6 ()) in
  let path = Timing.critical_path ch ~gate_delay:(Charac.delay ch) in
  Alcotest.(check (list int)) "whole chain" [ 0; 1; 2; 3; 4; 5 ] path

let test_critical_path_delays_sum () =
  let rng = Rng.create 2 in
  let circuit =
    Generator.layered_dag ~rng ~name:"t" ~num_inputs:8 ~num_outputs:4
      ~num_gates:120 ~depth:10 ()
  in
  let ch = make circuit in
  let delay = Charac.delay ch in
  let path = Timing.critical_path ch ~gate_delay:delay in
  let total = List.fold_left (fun acc g -> acc +. delay g) 0.0 path in
  Alcotest.(check (float 1e-15)) "path delays sum to the longest path"
    (Timing.longest_path ch ~gate_delay:delay)
    total;
  (* every consecutive pair is an actual edge *)
  let c = Charac.circuit ch in
  let rec edges = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "consecutive gates connected" true
        (Array.mem a (Circuit.gate_fanin_gates c b));
      edges rest
    | [ _ ] | [] -> ()
  in
  edges path;
  (* the critical path's gates have zero slack *)
  let slacks = Timing.slacks ch ~gate_delay:delay in
  List.iter
    (fun g -> Alcotest.(check (float 1e-12)) "zero slack on the path" 0.0 slacks.(g))
    path

let test_critical_path_c17 () =
  let ch = make (Iscas.c17 ()) in
  let path = Timing.critical_path ch ~gate_delay:(Charac.delay ch) in
  Alcotest.(check int) "three levels" 3 (List.length path)

let test_cell_array_gate_bounds () =
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (Generator.cell_array_gate ~rows:3 ~cols:3 ~r:3 ~c:0);
       false
     with Invalid_argument _ -> true)

let test_chain_requires_unary_kind () =
  Alcotest.(check bool) "NAND chain rejected" true
    (try
       ignore (Generator.chain ~length:3 ~kind:Gate.Nand ());
       false
     with Invalid_argument _ -> true)

let test_scale_for_fanin_one_input () =
  (* derating only kicks in above the 2-input base *)
  let c = Library.cell Library.default Gate.Not in
  Alcotest.(check bool) "1-input unchanged" true (Cell.scale_for_fanin c 1 = c)

let test_dot_escapes_quotes () =
  let b = Iddq_netlist.Builder.create () in
  Iddq_netlist.Builder.add_input b "a\"b";
  Iddq_netlist.Builder.add_gate b "y" Gate.Not [ "a\"b" ];
  Iddq_netlist.Builder.add_output b "y";
  let c = Iddq_netlist.Builder.freeze_exn b in
  let dot = Iddq_netlist.Dot.of_circuit c in
  Alcotest.(check bool) "escaped quote present" true
    (String.length dot > 0
    &&
    let rec find i =
      i + 1 < String.length dot
      && ((dot.[i] = '\\' && dot.[i + 1] = '"') || find (i + 1))
    in
    find 0)

let test_report_table_mismatched_modules () =
  (* when the two methods land on different module counts the table
     shows both *)
  let row =
    {
      Iddq.Report.circuit_name = "X";
      num_modules_standard = 3;
      num_modules_evolution = 2;
      area_standard = 2.0;
      area_evolution = 1.0;
      area_overhead_percent = 100.0;
      delay_overhead_standard_percent = 0.0;
      delay_overhead_evolution_percent = 0.0;
      test_time_overhead_standard_percent = 0.0;
      test_time_overhead_evolution_percent = 0.0;
    }
  in
  let rendered = Iddq_util.Table.render (Iddq.Report.table [ row ]) in
  let contains sub =
    let n = String.length rendered and m = String.length sub in
    let rec scan i = i + m <= n && (String.sub rendered i m = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "shows 3/2" true (contains "3/2")

let test_activity_pair_count () =
  let circuit = Generator.chain ~length:3 () in
  let ch = make circuit in
  let t =
    Iddq_analysis.Activity.measure ch ~gates:[| 0; 1; 2 |]
      ~vectors:[| [| true |]; [| false |]; [| false |]; [| true |] |]
  in
  Alcotest.(check int) "three pairs" 3
    (Array.length t.Iddq_analysis.Activity.toggles_per_pair)

let test_pipeline_rejects_gateless () =
  let b = Iddq_netlist.Builder.create () in
  Iddq_netlist.Builder.add_input b "a";
  Iddq_netlist.Builder.add_output b "a";
  let c = Iddq_netlist.Builder.freeze_exn b in
  Alcotest.(check bool) "gateless rejected" true
    (try
       ignore (Iddq.Pipeline.run Iddq.Pipeline.Standard c);
       false
     with Invalid_argument _ -> true)

let test_int_in_range_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "min > max"
    (Invalid_argument "Rng.int_in_range: min > max") (fun () ->
      ignore (Rng.int_in_range rng ~min:3 ~max:2))

let tests =
  [
    Alcotest.test_case "critical path chain" `Quick test_critical_path_chain;
    Alcotest.test_case "critical path sums" `Quick test_critical_path_delays_sum;
    Alcotest.test_case "critical path c17" `Quick test_critical_path_c17;
    Alcotest.test_case "cell array bounds" `Quick test_cell_array_gate_bounds;
    Alcotest.test_case "chain kind check" `Quick test_chain_requires_unary_kind;
    Alcotest.test_case "fanin scale base" `Quick test_scale_for_fanin_one_input;
    Alcotest.test_case "dot escapes quotes" `Quick test_dot_escapes_quotes;
    Alcotest.test_case "report table mismatch" `Quick
      test_report_table_mismatched_modules;
    Alcotest.test_case "activity pair count" `Quick test_activity_pair_count;
    Alcotest.test_case "pipeline gateless" `Quick test_pipeline_rejects_gateless;
    Alcotest.test_case "int_in_range validation" `Quick
      test_int_in_range_validation;
  ]
