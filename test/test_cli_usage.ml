(* The CLI's no-args synopsis is generated from the same command list
   Cmd.group dispatches on; this regression test pins the synopsis,
   the dispatch table, and this documented set to each other — adding
   a subcommand without updating the docs (or vice versa) fails
   here. *)

let expected_commands =
  [
    "partition";
    "compare";
    "simulate";
    "diagnose";
    "atpg";
    "testset";
    "dump-library";
    "stats";
    "generate";
    "campaign";
    "serve";
    "client";
    "serve-smoke";
    "loadgen";
  ]

(* dune runs the suite with cwd _build/default/test; the binary is a
   declared dep of the test stanza. *)
let exe = Filename.concat ".." (Filename.concat "bin" "iddq_synth.exe")

let run_capture args =
  let cmd = Filename.quote_command exe args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1024
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  Buffer.contents buf

let test_synopsis_matches_dispatch () =
  Alcotest.(check bool)
    (Printf.sprintf "binary %s present" exe)
    true (Sys.file_exists exe);
  let out = run_capture [] in
  let commands_line =
    List.find_opt
      (fun l -> String.length l >= 9 && String.sub l 0 9 = "commands:")
      (String.split_on_char '\n' out)
  in
  match commands_line with
  | None -> Alcotest.failf "no-args output lacks a commands: line:\n%s" out
  | Some line ->
    let listed =
      String.split_on_char ' '
        (String.sub line 9 (String.length line - 9))
      |> List.filter (fun s -> s <> "")
    in
    Alcotest.(check (list string))
      "synopsis enumerates exactly the documented subcommands"
      (List.sort compare expected_commands)
      (List.sort compare listed)

let test_unknown_subcommand_enumerates () =
  let out = run_capture [ "no-such-subcommand" ] in
  let contains needle =
    let nl = String.length needle and hl = String.length out in
    let rec scan i =
      i + nl <= hl && (String.sub out i nl = needle || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "unknown-command error mentions %S" name)
        true (contains name))
    expected_commands

let tests =
  [
    Alcotest.test_case "synopsis = dispatch table" `Quick
      test_synopsis_matches_dispatch;
    Alcotest.test_case "unknown subcommand enumerates" `Quick
      test_unknown_subcommand_enumerates;
  ]
