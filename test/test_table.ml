module Table = Iddq_util.Table

let test_render () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "long-name"; "12345678" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (match lines with
  | header :: rule :: _ ->
    Alcotest.(check bool) "header mentions both columns" true
      (String.length header >= String.length "name  value");
    Alcotest.(check bool) "rule is dashes" true
      (String.for_all (fun ch -> ch = '-') rule)
  | _ -> Alcotest.fail "missing lines");
  (* right alignment: the value column ends aligned *)
  let row_a = List.nth lines 2 and row_b = List.nth lines 3 in
  Alcotest.(check int) "rows equal width" (String.length row_b)
    (String.length row_a)

let test_arity_check () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_rows_in_order () =
  let t = Table.create [ ("x", Table.Left) ] in
  Table.add_row t [ "first" ];
  Table.add_row t [ "second" ];
  let s = Table.render t in
  let first_at =
    match String.index_opt s 'f' with Some i -> i | None -> max_int
  in
  let second_at =
    match String.index_opt s 's' with Some i -> i | None -> -1
  in
  Alcotest.(check bool) "order preserved" true (first_at < second_at)

let tests =
  [
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "arity check" `Quick test_arity_check;
    Alcotest.test_case "row order" `Quick test_rows_in_order;
  ]
