module Charac = Iddq_analysis.Charac
module Timing = Iddq_analysis.Timing
module Generator = Iddq_netlist.Generator
module Library = Iddq_celllib.Library
module Cell = Iddq_celllib.Cell
module Gate = Iddq_netlist.Gate

let make circuit = Charac.make ~library:Library.default circuit

let test_chain_nominal_delay () =
  let length = 12 in
  let circuit = Generator.chain ~length () in
  let ch = make circuit in
  let not_delay = (Library.cell Library.default Gate.Not).Cell.delay in
  Alcotest.(check (float 1e-15)) "sum of NOT delays"
    (float_of_int length *. not_delay)
    (Timing.nominal_delay ch)

let test_tree_nominal_delay () =
  let circuit = Generator.balanced_tree ~depth:5 () in
  let ch = make circuit in
  let nand_delay = (Library.cell Library.default Gate.Nand).Cell.delay in
  Alcotest.(check (float 1e-15)) "depth x NAND delay" (5.0 *. nand_delay)
    (Timing.nominal_delay ch)

let test_arrival_monotone_along_path () =
  let circuit = Generator.chain ~length:6 () in
  let ch = make circuit in
  let arr = Timing.arrival_times ch ~gate_delay:(Charac.delay ch) in
  for g = 1 to 5 do
    Alcotest.(check bool) "arrival increases" true (arr.(g) > arr.(g - 1))
  done

let test_degradation_limits () =
  let base ~rs ~i =
    Timing.degradation_factor ~vdd:5.0 ~rs ~cs:10e-12 ~rg:4000.0 ~cg:0.2e-12
      ~transient_current:i
  in
  Alcotest.(check (float 1e-12)) "rs=0 -> 1" 1.0 (base ~rs:0.0 ~i:0.01);
  Alcotest.(check bool) "delta >= 1" true (base ~rs:20.0 ~i:0.01 >= 1.0);
  Alcotest.(check bool) "grows with current" true
    (base ~rs:20.0 ~i:0.02 > base ~rs:20.0 ~i:0.01);
  (* sized sensors: rs * imax = r*, so the bounce is bounded by r*
     and delta - 1 <= (r*/vdd)^2 *)
  let r_star = 0.2 in
  let d = base ~rs:(r_star /. 0.01) ~i:0.01 in
  Alcotest.(check bool) "bounded by (r*/vdd)^2" true
    (d -. 1.0 <= (r_star /. 5.0) ** 2.0 +. 1e-12)

let test_bic_delay_at_least_nominal () =
  let circuit = Generator.chain ~length:8 () in
  let ch = make circuit in
  let n = Charac.num_gates ch in
  let module_of_gate = Array.make n 0 in
  let d = Timing.nominal_delay ch in
  let d_bic =
    Timing.bic_delay ch ~module_of_gate
      ~rs_of_module:(fun _ -> 50.0)
      ~cs_of_module:(fun _ -> 5e-12)
      ~module_current:(fun _ _ -> 0.004)
  in
  Alcotest.(check bool) "D_BIC >= D" true (d_bic >= d);
  let d_free =
    Timing.bic_delay ch ~module_of_gate
      ~rs_of_module:(fun _ -> 0.0)
      ~cs_of_module:(fun _ -> 5e-12)
      ~module_current:(fun _ _ -> 0.004)
  in
  Alcotest.(check (float 1e-18)) "rs=0 recovers nominal" d d_free

let test_bic_delay_overhead_scale () =
  (* at the paper's operating point the overhead is far below 1% *)
  let rng = Iddq_util.Rng.create 4 in
  let circuit =
    Generator.layered_dag ~rng ~name:"t" ~num_inputs:16 ~num_outputs:8
      ~num_gates:300 ~depth:20 ()
  in
  let ch = make circuit in
  let p =
    Iddq_core.Partition.create ch
      ~assignment:(Array.init 300 (fun g -> if g < 150 then 0 else 1))
  in
  let b = Iddq_core.Cost.evaluate p in
  Alcotest.(check bool)
    (Printf.sprintf "c2 = %.2e below 1e-2" b.Iddq_core.Cost.c2_delay)
    true
    (b.Iddq_core.Cost.c2_delay < 1e-2 && b.Iddq_core.Cost.c2_delay >= 0.0)

let qcheck_degradation_monotone_rs =
  QCheck.Test.make ~name:"degradation monotone in transient current" ~count:200
    QCheck.(
      triple (float_range 0.1 500.0) (float_range 1e-4 0.05)
        (float_range 1e-4 0.05))
    (fun (rs, i1, i2) ->
      let f i =
        Timing.degradation_factor ~vdd:5.0 ~rs ~cs:10e-12 ~rg:4000.0
          ~cg:0.2e-12 ~transient_current:i
      in
      let lo = Stdlib.min i1 i2 and hi = Stdlib.max i1 i2 in
      f lo <= f hi +. 1e-12)

let test_non_topological_circuit_rejected () =
  (* gate node 1 reads gate node 2: a violation of the topological
     gate-id invariant that Builder.freeze establishes.  The timing
     passes must fail loudly rather than return wrong delays. *)
  let module Circuit = Iddq_netlist.Circuit in
  let bad =
    Circuit.unsafe_make ~name:"bad-topo"
      ~nodes:
        [|
          Circuit.Input;
          Circuit.Gate (Gate.Not, [| 2 |]);
          Circuit.Gate (Gate.Not, [| 0 |]);
        |]
      ~node_names:[| "i"; "g1"; "g0" |] ~num_inputs:1 ~outputs:[| 1 |]
  in
  Alcotest.(check bool) "validate flags it" true
    (Result.is_error (Circuit.validate bad));
  let ch = make bad in
  let descriptive f =
    try
      ignore (f ());
      false
    with Invalid_argument msg ->
      (* the error must say what is wrong, not just that something is *)
      let has needle =
        let ln = String.length needle and lm = String.length msg in
        let rec scan i = i + ln <= lm && (String.sub msg i ln = needle || scan (i + 1)) in
        scan 0
      in
      has "topologically"
  in
  Alcotest.(check bool) "arrival_times raises descriptively" true
    (descriptive (fun () -> Timing.arrival_times ch ~gate_delay:(Charac.delay ch)));
  Alcotest.(check bool) "slacks raises descriptively" true
    (descriptive (fun () -> Timing.slacks ch ~gate_delay:(Charac.delay ch)))

let tests =
  [
    Alcotest.test_case "chain nominal delay" `Quick test_chain_nominal_delay;
    Alcotest.test_case "tree nominal delay" `Quick test_tree_nominal_delay;
    Alcotest.test_case "arrival monotone" `Quick test_arrival_monotone_along_path;
    Alcotest.test_case "degradation limits" `Quick test_degradation_limits;
    Alcotest.test_case "bic delay >= nominal" `Quick test_bic_delay_at_least_nominal;
    Alcotest.test_case "overhead scale" `Quick test_bic_delay_overhead_scale;
    QCheck_alcotest.to_alcotest qcheck_degradation_monotone_rs;
    Alcotest.test_case "non-topological circuit rejected" `Quick
      test_non_topological_circuit_rejected;
  ]
