module Rng = Iddq_util.Rng

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a)
    (Rng.bits64 b);
  (* now they have the same state again; advancing only one diverges *)
  let _ = Rng.bits64 a in
  Alcotest.(check bool) "post-divergence" true (Rng.bits64 a <> Rng.bits64 b)

let test_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = Array.init 32 (fun _ -> Rng.bits64 a) in
  let ys = Array.init 32 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_derive_pure_and_nonadvancing () =
  let a = Rng.create 101 in
  let d1 = Rng.derive a 5 in
  let d2 = Rng.derive a 5 in
  Alcotest.(check int64) "derive is a pure function" (Rng.bits64 d1)
    (Rng.bits64 d2);
  (* deriving did not advance the parent *)
  let fresh = Rng.create 101 in
  Alcotest.(check int64) "parent unchanged" (Rng.bits64 fresh) (Rng.bits64 a)

let test_derive_distinct_streams () =
  let a = Rng.create 101 in
  let streams = List.init 16 (fun i -> Rng.bits64 (Rng.derive a i)) in
  Alcotest.(check int) "16 distinct streams" 16
    (List.length (List.sort_uniq compare streams))

let test_derive_depends_on_state () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different parents derive differently" true
    (Rng.bits64 (Rng.derive a 3) <> Rng.bits64 (Rng.derive b 3));
  (* advancing the parent changes what it derives *)
  let c = Rng.create 1 in
  let before = Rng.bits64 (Rng.derive c 3) in
  let _ = Rng.bits64 c in
  Alcotest.(check bool) "derivation tracks parent state" true
    (Rng.bits64 (Rng.derive c 3) <> before)

let test_int_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_int_rejects_bad_bound () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_covers_all_values () =
  let rng = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_int_in_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 500 do
    let v = Rng.int_in_range rng ~min:(-5) ~max:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  Alcotest.(check int) "degenerate range" 4 (Rng.int_in_range rng ~min:4 ~max:4)

let test_float_range () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_gaussian_moments () =
  let rng = Rng.create 17 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mu:3.0 ~sigma:2.0) in
  let mean = Iddq_util.Stats.mean xs in
  let sd = Iddq_util.Stats.stddev xs in
  Alcotest.(check bool) "mean ~ 3" true (Float.abs (mean -. 3.0) < 0.1);
  Alcotest.(check bool) "sd ~ 2" true (Float.abs (sd -. 2.0) < 0.1)

let test_shuffle_is_permutation () =
  let rng = Rng.create 19 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 50 Fun.id);
  Alcotest.(check bool) "actually shuffled" true (arr <> Array.init 50 Fun.id)

let test_choose () =
  let rng = Rng.create 23 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.choose rng arr) arr)
  done;
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let test_sample_without_replacement () =
  let rng = Rng.create 29 in
  let arr = Array.init 20 Fun.id in
  let s = Rng.sample_without_replacement rng 8 arr in
  Alcotest.(check int) "size" 8 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct =
    Array.for_all Fun.id
      (Array.mapi (fun i v -> i = 0 || sorted.(i - 1) <> v) sorted)
  in
  Alcotest.(check bool) "distinct" true distinct;
  Alcotest.(check int) "oversample clips" 20
    (Array.length (Rng.sample_without_replacement rng 100 arr))

let qcheck_int_uniformish =
  QCheck.Test.make ~name:"Rng.int stays in bounds for any bound/seed" ~count:500
    QCheck.(pair small_int int)
    (fun (bound, seed) ->
      QCheck.assume (bound > 0);
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let tests =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "derive purity" `Quick test_derive_pure_and_nonadvancing;
    Alcotest.test_case "derive distinct streams" `Quick
      test_derive_distinct_streams;
    Alcotest.test_case "derive state dependence" `Quick
      test_derive_depends_on_state;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int bad bound" `Quick test_int_rejects_bad_bound;
    Alcotest.test_case "int covers values" `Quick test_int_covers_all_values;
    Alcotest.test_case "int_in_range" `Quick test_int_in_range;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "choose" `Quick test_choose;
    Alcotest.test_case "sample without replacement" `Quick
      test_sample_without_replacement;
    QCheck_alcotest.to_alcotest qcheck_int_uniformish;
  ]
