module Builder = Iddq_netlist.Builder
module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate
module Graph_algo = Iddq_netlist.Graph_algo
module Generator = Iddq_netlist.Generator

(* a -> g1 -> g2 -> g3 (chain) plus a parallel branch a -> g4 -> g3' *)
let diamond () =
  let b = Builder.create ~name:"diamond" () in
  Builder.add_input b "a";
  Builder.add_gate b "g1" Gate.Not [ "a" ];
  Builder.add_gate b "g2" Gate.Not [ "g1" ];
  Builder.add_gate b "g4" Gate.Not [ "a" ];
  Builder.add_gate b "g3" Gate.Nand [ "g2"; "g4" ];
  Builder.add_output b "g3";
  Builder.freeze_exn b

let gate_of c name =
  Circuit.gate_of_node c (Option.get (Circuit.node_id_of_name c name))

(* per-pair separation via the single-source API (the per-pair entry
   point is gone: hot paths must go through the reusable BFS) *)
let separation u ~cutoff g h = (Graph_algo.separations_from u ~cutoff g).(h)

let test_depths () =
  let c = diamond () in
  let gd = Graph_algo.gate_depths c in
  Alcotest.(check int) "g1 depth" 1 gd.(gate_of c "g1");
  Alcotest.(check int) "g2 depth" 2 gd.(gate_of c "g2");
  Alcotest.(check int) "g4 depth" 1 gd.(gate_of c "g4");
  Alcotest.(check int) "g3 depth = longest" 3 gd.(gate_of c "g3");
  Alcotest.(check int) "circuit depth" 3 (Graph_algo.depth c)

let test_gates_by_depth () =
  let c = diamond () in
  let buckets = Graph_algo.gates_by_depth c in
  Alcotest.(check int) "3 levels" 3 (Array.length buckets);
  Alcotest.(check int) "level 1 has two gates" 2 (Array.length buckets.(0));
  Alcotest.(check int) "level 3 has g3" 1 (Array.length buckets.(2))

let test_chain_depth () =
  let c = Generator.chain ~length:20 () in
  Alcotest.(check int) "depth 20" 20 (Graph_algo.depth c)

let test_undirected_symmetric () =
  let c = diamond () in
  let u = Graph_algo.undirected_of_circuit c in
  for g = 0 to Circuit.num_gates c - 1 do
    Array.iter
      (fun h ->
        Alcotest.(check bool)
          (Printf.sprintf "edge %d-%d symmetric" g h)
          true
          (Array.mem g (Graph_algo.neighbours u h)))
      (Graph_algo.neighbours u g)
  done

let test_separation_values () =
  (* chain g1-g2-g3-g4-g5: separation g1..g3 = 1 (one node between) *)
  let c = Generator.chain ~length:5 () in
  let u = Graph_algo.undirected_of_circuit c in
  Alcotest.(check int) "self" 0 (separation u ~cutoff:10 0 0);
  Alcotest.(check int) "adjacent" 0 (separation u ~cutoff:10 0 1);
  Alcotest.(check int) "one between" 1 (separation u ~cutoff:10 0 2);
  Alcotest.(check int) "three between" 3 (separation u ~cutoff:10 0 4);
  Alcotest.(check int) "cutoff forces p" 2 (separation u ~cutoff:2 0 4)

let test_separation_disconnected () =
  (* two independent chains in one circuit *)
  let b = Builder.create () in
  Builder.add_input b "a";
  Builder.add_input b "b";
  Builder.add_gate b "g1" Gate.Not [ "a" ];
  Builder.add_gate b "g2" Gate.Not [ "b" ];
  Builder.add_output b "g1";
  Builder.add_output b "g2";
  let c = Builder.freeze_exn b in
  let u = Graph_algo.undirected_of_circuit c in
  Alcotest.(check int) "disconnected forces p" 7
    (separation u ~cutoff:7 0 1);
  let comp = Graph_algo.connected_components u in
  Alcotest.(check bool) "two components" true (comp.(0) <> comp.(1))

let test_module_separation_brute_force () =
  let c = diamond () in
  let u = Graph_algo.undirected_of_circuit c in
  let gates = Array.init (Circuit.num_gates c) Fun.id in
  let cutoff = 6 in
  let expected = ref 0 in
  Array.iteri
    (fun i g ->
      Array.iteri
        (fun j h ->
          if j > i then expected := !expected + separation u ~cutoff g h)
        gates;
      ignore g)
    gates;
  Alcotest.(check int) "matches pairwise sum" !expected
    (Graph_algo.module_separation u ~cutoff gates)

let test_module_separation_clique_minimal () =
  (* adjacent pair: S = 0; singleton: S = 0 *)
  let c = Generator.chain ~length:3 () in
  let u = Graph_algo.undirected_of_circuit c in
  Alcotest.(check int) "singleton" 0 (Graph_algo.module_separation u ~cutoff:5 [| 1 |]);
  Alcotest.(check int) "adjacent pair" 0
    (Graph_algo.module_separation u ~cutoff:5 [| 0; 1 |])

let test_reachable () =
  let c = diamond () in
  let seen = Graph_algo.reachable_from c [| 0 |] in
  Alcotest.(check bool) "everything reachable from input" true
    (Array.for_all Fun.id seen)

let test_transitive_fanin () =
  let c = diamond () in
  let g3 = Option.get (Circuit.node_id_of_name c "g3") in
  (* cone of g3: a, g1, g2, g4 *)
  Alcotest.(check int) "cone size" 4 (Graph_algo.transitive_fanin_count c g3)

let qcheck_module_separation_matches_bruteforce =
  QCheck.Test.make ~name:"module_separation = brute-force pairwise sum"
    ~count:30
    QCheck.(triple (int_range 10 60) (int_range 1 100000) (int_range 1 6))
    (fun (gates, seed, cutoff) ->
      let rng = Iddq_util.Rng.create seed in
      let c =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:4 ~num_outputs:2
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let u = Graph_algo.undirected_of_circuit c in
      (* a random subset as the module *)
      let members =
        Array.of_list
          (List.filter (fun _ -> Iddq_util.Rng.bool rng)
             (List.init gates Fun.id))
      in
      let brute = ref 0 in
      Array.iteri
        (fun i g ->
          Array.iteri
            (fun j h ->
              if j > i then brute := !brute + separation u ~cutoff g h)
            members;
          ignore g)
        members;
      Graph_algo.module_separation u ~cutoff members = !brute)

let tests =
  [
    Alcotest.test_case "depths" `Quick test_depths;
    Alcotest.test_case "gates by depth" `Quick test_gates_by_depth;
    Alcotest.test_case "chain depth" `Quick test_chain_depth;
    Alcotest.test_case "undirected symmetric" `Quick test_undirected_symmetric;
    Alcotest.test_case "separation values" `Quick test_separation_values;
    Alcotest.test_case "separation disconnected" `Quick test_separation_disconnected;
    Alcotest.test_case "module separation brute force" `Quick
      test_module_separation_brute_force;
    Alcotest.test_case "module separation minimal" `Quick
      test_module_separation_clique_minimal;
    Alcotest.test_case "reachability" `Quick test_reachable;
    Alcotest.test_case "transitive fanin" `Quick test_transitive_fanin;
    QCheck_alcotest.to_alcotest qcheck_module_separation_matches_bruteforce;
  ]
