(* The resident service: framing, protocol codec, session cache,
   and the socket transport with misbehaving clients. *)

module Json = Iddq_util.Json
module Metrics = Iddq_util.Metrics
module Io = Iddq_util.Io
module Frame = Iddq_server.Frame
module Protocol = Iddq_server.Protocol
module Service = Iddq_server.Service
module Server = Iddq_server.Server
module Client = Iddq_server.Client
module Iscas = Iddq_netlist.Iscas
module Pipeline = Iddq.Pipeline

let json = Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (Json.to_string j)) ( = )

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)
(* ------------------------------------------------------------------ *)

let drain decoder =
  let rec go acc =
    match Frame.next decoder with
    | None -> List.rev acc
    | Some (Frame.Oversized _ as e) -> List.rev (e :: acc)  (* terminal *)
    | Some e -> go (e :: acc)
  in
  go []

let test_frame_roundtrip () =
  let values =
    [
      Json.Obj [ ("op", Json.String "metrics") ];
      Json.Int 42;
      Json.List [ Json.Bool true; Json.Null; Json.Float 2.5 ];
      Json.String "";
    ]
  in
  let d = Frame.create () in
  Frame.feed d (String.concat "" (List.map Frame.encode values));
  Alcotest.(check (list json))
    "all frames decode in order" values
    (List.filter_map
       (function Frame.Frame j -> Some j | _ -> None)
       (drain d))

let qcheck_frame_split_boundaries =
  QCheck.Test.make
    ~name:"frame stream decodes identically under any chunking" ~count:200
    QCheck.(pair (small_list small_int) (int_range 1 13))
    (fun (ids, chunk) ->
      let values =
        List.map
          (fun n ->
            Json.Obj
              [ ("id", Json.Int n); ("tag", Json.String (string_of_int n)) ])
          ids
      in
      let stream = String.concat "" (List.map Frame.encode values) in
      let d = Frame.create () in
      let decoded = ref [] in
      let len = String.length stream in
      let pos = ref 0 in
      while !pos < len do
        let n = min chunk (len - !pos) in
        Frame.feed d (String.sub stream !pos n);
        pos := !pos + n;
        decoded := !decoded @ drain d
      done;
      List.for_all (function Frame.Frame _ -> true | _ -> false) !decoded
      && List.filter_map
           (function Frame.Frame j -> Some j | _ -> None)
           !decoded
         = values
      && Frame.buffered d = 0)

let test_frame_malformed_stays_in_sync () =
  let d = Frame.create () in
  let valid = Json.Obj [ ("op", Json.String "shutdown") ] in
  Frame.feed d (Frame.encode_payload "{not json");
  Frame.feed d (Frame.encode valid);
  match drain d with
  | [ Frame.Malformed _; Frame.Frame j ] ->
    Alcotest.check json "frame after malformed still decodes" valid j
  | events ->
    Alcotest.failf "expected [Malformed; Frame], got %d events"
      (List.length events)

let test_frame_oversized_poisons () =
  let d = Frame.create ~max_frame:16 () in
  Frame.feed d (Frame.encode_payload (String.make 64 'x'));
  (match Frame.next d with
  | Some (Frame.Oversized 64) -> ()
  | _ -> Alcotest.fail "expected Oversized 64");
  Frame.feed d (Frame.encode (Json.Int 1));
  match Frame.next d with
  | Some (Frame.Oversized _) -> ()  (* poisoned for good *)
  | _ -> Alcotest.fail "decoder recovered from an oversized frame"

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                      *)
(* ------------------------------------------------------------------ *)

let all_requests =
  let handle = String.make 32 'a' in
  [
    Protocol.Load_circuit { name = Some "C17"; bench = None };
    Protocol.Load_circuit { name = None; bench = Some "INPUT(a)\n" };
    Protocol.Characterize { handle };
    Protocol.Partition
      {
        handle;
        method_ = Pipeline.Evolution;
        seed = 7;
        module_size = Some 4;
        require_feasible = true;
      };
    Protocol.Fault_sim
      {
        handle;
        method_ = Pipeline.Refined_standard;
        seed = 1;
        vectors = 16;
        defects = 10;
        defect_current = 2.0e-6;
      };
    Protocol.Diagnose
      {
        handle;
        method_ = Pipeline.Standard;
        seed = 3;
        vectors = 32;
        defects = 25;
        defect_current = 2.0e-6;
        epsilon = 0.02;
        trials = 10;
        top_k = 3;
      };
    Protocol.Testset
      {
        handle;
        seed = 9;
        random_vectors = 16;
        max_backtracks = 100;
        budget = Some 500;
        strategy = Iddq_atpg.Atpg.Essential;
      };
    Protocol.Testset
      {
        handle;
        seed = 42;
        random_vectors = 0;
        max_backtracks = 2000;
        budget = None;
        strategy = Iddq_atpg.Atpg.Refined;
      };
    Protocol.Campaign_submit { spec = "circuits = C17\n"; domains = 2 };
    Protocol.Campaign_status { campaign = "campaign-1" };
    Protocol.Metrics;
    Protocol.Shutdown;
  ]

let test_protocol_roundtrip () =
  List.iteri
    (fun i r ->
      match Protocol.request_of_json (Protocol.request_to_json ~id:i r) with
      | Ok (id, r') ->
        Alcotest.(check bool)
          (Printf.sprintf "request %d round-trips" i)
          true
          (id = Some i && r' = r)
      | Error (_, e) ->
        Alcotest.failf "request %d rejected: %s" i e.Protocol.message)
    all_requests

let test_protocol_rejects () =
  let reject ?code j what =
    match Protocol.request_of_json j with
    | Ok _ -> Alcotest.failf "%s was accepted" what
    | Error (_, e) ->
      Option.iter
        (fun c ->
          Alcotest.(check string)
            (what ^ " error code") (Protocol.code_to_string c)
            (Protocol.code_to_string e.Protocol.code))
        code
  in
  reject ~code:Protocol.Unknown_op
    (Json.Obj [ ("op", Json.String "frobnicate") ])
    "unknown op";
  reject ~code:Protocol.Bad_request (Json.Obj []) "missing op";
  reject ~code:Protocol.Bad_request (Json.Int 3) "non-object request";
  reject ~code:Protocol.Bad_request
    (Json.Obj [ ("op", Json.String "characterize") ])
    "characterize without handle";
  reject ~code:Protocol.Bad_request
    (Json.Obj
       [
         ("op", Json.String "load_circuit"); ("name", Json.String "C17");
         ("bench", Json.String "x");
       ])
    "load with both name and bench";
  reject ~code:Protocol.Bad_request
    (Json.Obj
       [
         ("op", Json.String "diagnose"); ("handle", Json.String "h");
         ("epsilon", Json.Float 0.5);
       ])
    "diagnose with epsilon out of range";
  reject ~code:Protocol.Bad_request
    (Json.Obj
       [
         ("op", Json.String "diagnose"); ("handle", Json.String "h");
         ("trials", Json.Int 0);
       ])
    "diagnose with zero trials";
  reject ~code:Protocol.Bad_request
    (Json.Obj
       [
         ("op", Json.String "testset"); ("handle", Json.String "h");
         ("strategy", Json.String "optimal");
       ])
    "testset with an unknown strategy";
  reject ~code:Protocol.Bad_request
    (Json.Obj
       [
         ("op", Json.String "testset"); ("handle", Json.String "h");
         ("random_vectors", Json.Int (-1));
       ])
    "testset with negative random_vectors";
  reject ~code:Protocol.Bad_request
    (Json.Obj
       [
         ("op", Json.String "testset"); ("handle", Json.String "h");
         ("max_backtracks", Json.Int 0);
       ])
    "testset with zero backtracks";
  (* the id is echoed even when the request is bad *)
  match
    Protocol.request_of_json
      (Json.Obj [ ("op", Json.String "frobnicate"); ("id", Json.Int 9) ])
  with
  | Error (Some 9, _) -> ()
  | _ -> Alcotest.fail "id not echoed on a bad request"

let test_response_shapes () =
  let payload = Json.Obj [ ("x", Json.Int 1) ] in
  (match Protocol.response_payload (Protocol.ok_response ~id:(Some 3) payload) with
  | Ok p -> Alcotest.check json "ok payload" payload p
  | Error _ -> Alcotest.fail "ok response read back as error");
  let err = Protocol.error Protocol.Not_found "no such thing" in
  match Protocol.response_payload (Protocol.error_response ~id:None err) with
  | Error e ->
    Alcotest.(check bool) "error code survives" true
      (e.Protocol.code = Protocol.Not_found)
  | Ok _ -> Alcotest.fail "error response read back as ok"

(* ------------------------------------------------------------------ *)
(* Service: cache behaviour through the request handler                *)
(* ------------------------------------------------------------------ *)

let ask service req =
  let resp, _ = Service.handle service (Protocol.request_to_json req) in
  Protocol.response_payload resp

let ask_ok what service req =
  match ask service req with
  | Ok p -> p
  | Error e -> Alcotest.failf "%s: %s" what e.Protocol.message

let load_c17 service =
  let p =
    ask_ok "load_circuit" service
      (Protocol.Load_circuit { name = Some "C17"; bench = None })
  in
  match Option.bind (Json.member "handle" p) Json.to_str with
  | Some h -> h
  | None -> Alcotest.fail "load_circuit returned no handle"

let test_service_cache_hits () =
  let metrics = Metrics.create () in
  let service = Service.create ~metrics () in
  let handle = load_c17 service in
  let partition () =
    ask_ok "partition" service
      (Protocol.Partition
         {
           handle;
           method_ = Pipeline.Standard;
           seed = 5;
           module_size = None;
           require_feasible = false;
         })
  in
  let p1 = partition () in
  let s1 = Metrics.snapshot metrics in
  Alcotest.(check bool) "first partition misses the charac cache" true
    (s1.Metrics.server_cache_misses > 0);
  let hits_before = s1.Metrics.server_cache_hits in
  let p2 = partition () in
  let s2 = Metrics.snapshot metrics in
  Alcotest.(check bool) "second partition hits the charac cache" true
    (s2.Metrics.server_cache_hits > hits_before);
  Alcotest.(check int) "no new cache entries on the second partition"
    s1.Metrics.server_cache_misses s2.Metrics.server_cache_misses;
  Alcotest.check json "cached answers are identical" p1 p2;
  Alcotest.(check bool) "request latency recorded" true
    (s2.Metrics.requests >= 3 && s2.Metrics.seconds_requests >= 0.0);
  Service.stop service

let test_service_errors () =
  let service = Service.create () in
  (match
     ask service (Protocol.Characterize { handle = "deadbeef" })
   with
  | Error e ->
    Alcotest.(check bool) "unknown handle is not_found" true
      (e.Protocol.code = Protocol.Not_found)
  | Ok _ -> Alcotest.fail "characterize of unknown handle succeeded");
  (match
     ask service (Protocol.Load_circuit { name = Some "C9999"; bench = None })
   with
  | Error e ->
    Alcotest.(check bool) "unknown circuit is not_found" true
      (e.Protocol.code = Protocol.Not_found)
  | Ok _ -> Alcotest.fail "unknown circuit loaded");
  let handle = load_c17 service in
  (match
     ask service
       (Protocol.Partition
          {
            handle;
            method_ = Pipeline.Standard;
            seed = 1;
            module_size = Some 0;
            require_feasible = false;
          })
   with
  | Error e ->
    Alcotest.(check bool) "module_size 0 is bad_request" true
      (e.Protocol.code = Protocol.Bad_request)
  | Ok _ -> Alcotest.fail "module_size 0 accepted");
  let failed = (Metrics.snapshot (Service.metrics service)).Metrics.requests_failed in
  Alcotest.(check bool) "failures counted" true (failed >= 3);
  Service.stop service

let test_service_diagnose_cached () =
  let metrics = Metrics.create () in
  let service = Service.create ~metrics () in
  let handle = load_c17 service in
  let diagnose epsilon =
    ask_ok "diagnose" service
      (Protocol.Diagnose
         {
           handle;
           method_ = Pipeline.Standard;
           seed = 2;
           vectors = 16;
           defects = 12;
           defect_current = 2.0e-6;
           epsilon;
           trials = 8;
           top_k = 2;
         })
  in
  let p1 = diagnose 0.0 in
  (match Option.bind (Json.member "top1_class_accuracy" p1) Json.to_float with
  | Some a ->
    Alcotest.(check (float 0.0)) "noiseless top-1 class accuracy" 1.0 a
  | None -> Alcotest.fail "diagnose payload lacks top1_class_accuracy");
  let s1 = Metrics.snapshot metrics in
  let p2 = diagnose 0.0 in
  let s2 = Metrics.snapshot metrics in
  Alcotest.check json "repeated diagnose is identical" p1 p2;
  Alcotest.(check bool) "repeated diagnose hits the engine cache" true
    (s2.Metrics.server_cache_hits > s1.Metrics.server_cache_hits);
  (* the engine cache key deliberately omits the measurement knobs, so
     an epsilon sweep reuses the detection matrix: no new misses *)
  ignore (diagnose 0.05);
  let s3 = Metrics.snapshot metrics in
  Alcotest.(check int) "epsilon sweep reuses the cached engine"
    s2.Metrics.server_cache_misses s3.Metrics.server_cache_misses;
  Service.stop service

let test_service_testset_cached () =
  let metrics = Metrics.create () in
  let service = Service.create ~metrics () in
  let handle = load_c17 service in
  let testset strategy =
    ask_ok "testset" service
      (Protocol.Testset
         {
           handle;
           seed = 4;
           random_vectors = 8;
           max_backtracks = 200;
           budget = None;
           strategy;
         })
  in
  let p1 = testset Iddq_atpg.Atpg.Greedy in
  let s1 = Metrics.snapshot metrics in
  let p2 = testset Iddq_atpg.Atpg.Greedy in
  let s2 = Metrics.snapshot metrics in
  Alcotest.check json "repeated testset is identical" p1 p2;
  Alcotest.(check bool) "repeated testset hits the engine cache" true
    (s2.Metrics.server_cache_hits > s1.Metrics.server_cache_hits);
  (* the memo key deliberately omits the strategy: a strategy sweep
     re-minimizes the cached matrix instead of re-running PODEM *)
  let p3 = testset Iddq_atpg.Atpg.Refined in
  let s3 = Metrics.snapshot metrics in
  Alcotest.(check int) "strategy sweep reuses the cached generation"
    s2.Metrics.server_cache_misses s3.Metrics.server_cache_misses;
  let field name p =
    match Option.bind (Json.member name p) Json.to_int with
    | Some v -> v
    | None -> Alcotest.failf "testset payload lacks %s" name
  in
  Alcotest.(check int) "same full set under both strategies"
    (field "vectors_before" p1) (field "vectors_before" p3);
  Alcotest.(check bool) "refined no larger than greedy" true
    (field "vectors" p3 <= field "vectors" p1);
  (match Option.bind (Json.member "coverage" p1) Json.to_float with
  | Some c -> Alcotest.(check (float 1e-9)) "C17 fully covered" 1.0 c
  | None -> Alcotest.fail "testset payload lacks coverage");
  Service.stop service

let test_service_cache_eviction () =
  let metrics = Metrics.create () in
  let service = Service.create ~metrics ~cache_entries:2 () in
  let load name =
    let p =
      ask_ok "load_circuit" service
        (Protocol.Load_circuit { name = Some name; bench = None })
    in
    Option.get (Option.bind (Json.member "handle" p) Json.to_str)
  in
  let h17 = load "C17" in
  let _h432 = load "C432" in
  let h880 = load "C880" in
  let s = Metrics.snapshot metrics in
  Alcotest.(check bool) "third circuit evicts the oldest" true
    (s.Metrics.server_cache_evictions > 0);
  (* the least-recently-used handle is gone; the newest still answers *)
  (match ask service (Protocol.Characterize { handle = h17 }) with
  | Error e ->
    Alcotest.(check string) "evicted handle is not_found"
      (Protocol.code_to_string Protocol.Not_found)
      (Protocol.code_to_string e.Protocol.code)
  | Ok _ -> Alcotest.fail "evicted handle still resolves");
  ignore (ask_ok "characterize survivor" service
      (Protocol.Characterize { handle = h880 }));
  Service.stop service

(* A client from the future speaks an op this build has never heard
   of.  The contract: a typed unknown_op error with the id echoed —
   never internal, and never a dropped connection. *)
let test_service_future_op_typed () =
  let service = Service.create () in
  let resp, _ =
    Service.handle service
      (Json.Obj [ ("op", Json.String "diagnose_v2"); ("id", Json.Int 4) ])
  in
  (match Protocol.response_payload resp with
  | Error e ->
    Alcotest.(check string) "future op is unknown_op, not internal"
      (Protocol.code_to_string Protocol.Unknown_op)
      (Protocol.code_to_string e.Protocol.code)
  | Ok _ -> Alcotest.fail "future op accepted");
  Alcotest.(check (option int)) "id echoed on a future op" (Some 4)
    (Protocol.response_id resp);
  Service.stop service

let test_service_deterministic_across_instances () =
  (* same request, fresh service: the derived-seed discipline makes
     the answer a function of the request alone *)
  let answer () =
    let service = Service.create ~metrics:(Metrics.create ()) () in
    let handle = load_c17 service in
    let p =
      ask_ok "partition" service
        (Protocol.Partition
           {
             handle;
             method_ = Pipeline.Standard;
             seed = 11;
             module_size = None;
             require_feasible = false;
           })
    in
    Service.stop service;
    Json.to_string p
  in
  Alcotest.(check string) "same answer from a fresh service" (answer ())
    (answer ())

(* ------------------------------------------------------------------ *)
(* Socket transport: concurrent clients, one of them hostile           *)
(* ------------------------------------------------------------------ *)

let with_server f =
  let socket = Filename.temp_file "iddq-test-server" ".sock" in
  let metrics = Metrics.create () in
  match Server.create ~socket ~metrics () with
  | Error e -> Alcotest.fail (Server.create_error_to_string e)
  | Ok srv ->
    let running = Domain.spawn (fun () -> Server.run srv) in
    Fun.protect
      ~finally:(fun () ->
        Server.shutdown srv;
        Domain.join running;
        if Sys.file_exists socket then Sys.remove socket)
      (fun () -> f ~socket ~metrics)

let connect socket =
  match Client.connect ~socket with
  | Ok c -> c
  | Error e -> Alcotest.fail e

let test_two_clients_interleaved () =
  with_server (fun ~socket ~metrics:_ ->
      let fds = Io.open_fd_count () in
      let a = connect socket and b = connect socket in
      let load cl =
        match
          Client.request cl
            (Protocol.Load_circuit { name = Some "C17"; bench = None })
        with
        | Ok p -> Option.get (Option.bind (Json.member "handle" p) Json.to_str)
        | Error e -> Alcotest.fail e
      in
      (* interleaved: a loads, b loads (cache hit on content), a
         partitions while b sends a malformed frame *)
      let ha = load a in
      let hb = load b in
      Alcotest.(check string) "same content, same handle" ha hb;
      Client.send_raw b (Frame.encode_payload "]]] nope");
      let part =
        Client.request a
          (Protocol.Partition
             {
               handle = ha;
               method_ = Pipeline.Standard;
               seed = 3;
               module_size = None;
               require_feasible = false;
             })
      in
      (match part with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "client a disturbed by client b: %s" e);
      (match Client.recv b with
      | Ok resp -> begin
        match Protocol.response_payload resp with
        | Error e ->
          Alcotest.(check bool) "b got malformed_frame" true
            (e.Protocol.code = Protocol.Malformed_frame)
        | Ok _ -> Alcotest.fail "malformed frame answered ok"
      end
      | Error e -> Alcotest.failf "no error response for b: %s" e);
      (* b is still usable after its own malformed frame... *)
      (match Client.request b Protocol.Metrics with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "b lost sync after malformed frame: %s" e);
      (* ...then vanishes mid-frame; a must not notice *)
      Client.send_raw b "\x00\x00\x01\x00only the beginning";
      Client.close b;
      (match Client.request a Protocol.Metrics with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "a disturbed by b's disconnect: %s" e);
      Client.close a;
      (* allow the server to reap both connections, then check fds *)
      let rec settle tries =
        let now = Io.open_fd_count () in
        if now = fds || tries = 0 then now
        else begin
          Unix.sleepf 0.02;
          settle (tries - 1)
        end
      in
      match (fds, settle 100) with
      | Some before, Some after ->
        Alcotest.(check int) "no leaked descriptors" before after
      | _ -> ())

let test_future_op_over_socket () =
  with_server (fun ~socket ~metrics:_ ->
      let c = connect socket in
      Client.send c
        (Json.Obj [ ("op", Json.String "quantum_diagnose"); ("id", Json.Int 41) ]);
      (match Client.recv c with
      | Ok resp -> begin
        Alcotest.(check (option int)) "id echoed over the wire" (Some 41)
          (Protocol.response_id resp);
        match Protocol.response_payload resp with
        | Error e ->
          Alcotest.(check string) "typed unknown_op over the wire"
            (Protocol.code_to_string Protocol.Unknown_op)
            (Protocol.code_to_string e.Protocol.code)
        | Ok _ -> Alcotest.fail "future op answered ok"
      end
      | Error e -> Alcotest.failf "no response to a future op: %s" e);
      (* the connection survives: the same client keeps working *)
      (match Client.request c Protocol.Metrics with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "connection lost after a future op: %s" e);
      Client.close c)

let test_oversized_frame_closes_connection () =
  with_server (fun ~socket ~metrics:_ ->
      let c = connect socket in
      (* a header declaring far more than the cap; the server answers
         with oversized_frame and closes *)
      Client.send_raw c "\x7f\xff\xff\xff";
      (match Client.recv c with
      | Ok resp -> begin
        match Protocol.response_payload resp with
        | Error e ->
          Alcotest.(check bool) "oversized_frame error" true
            (e.Protocol.code = Protocol.Oversized_frame)
        | Ok _ -> Alcotest.fail "oversized frame answered ok"
      end
      | Error e -> Alcotest.failf "no response to oversized frame: %s" e);
      (match Client.recv c with
      | Error _ -> ()  (* EOF: connection closed *)
      | Ok _ -> Alcotest.fail "connection survived an oversized frame");
      Client.close c;
      (* the server is still accepting *)
      let c2 = connect socket in
      (match Client.request c2 Protocol.Metrics with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "server wedged after oversized frame: %s" e);
      Client.close c2)

let test_shutdown_request_stops_server () =
  let socket = Filename.temp_file "iddq-test-shutdown" ".sock" in
  match Server.create ~socket () with
  | Error e -> Alcotest.fail (Server.create_error_to_string e)
  | Ok srv ->
    let running = Domain.spawn (fun () -> Server.run srv) in
    let c = connect socket in
    (match Client.request c Protocol.Shutdown with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    Client.close c;
    Domain.join running;
    Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

(* ------------------------------------------------------------------ *)
(* Adversarial clients                                                 *)
(* ------------------------------------------------------------------ *)

(* A slow-loris client trickles a whole request one byte per write.
   The cursor decoder must absorb it in O(n) and the multiplexer must
   keep serving others meanwhile. *)
let test_slow_loris () =
  with_server (fun ~socket ~metrics:_ ->
      let slow = connect socket in
      let fast = connect socket in
      let frame =
        Frame.encode (Protocol.request_to_json ~id:7 Protocol.Metrics)
      in
      String.iter
        (fun ch ->
          Client.send_raw slow (String.make 1 ch);
          (* the loop stays responsive between the trickled bytes *)
          match Client.request fast Protocol.Metrics with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "fast client starved by slow-loris: %s" e)
        frame;
      (match Client.recv slow with
      | Ok resp ->
        Alcotest.(check (option int))
          "slow-loris request answered, id echoed" (Some 7)
          (Protocol.response_id resp)
      | Error e -> Alcotest.failf "slow-loris request lost: %s" e);
      Client.close slow;
      Client.close fast)

(* The EPIPE regression: a client pipelines requests and vanishes
   without reading any response.  The server must treat the failed
   sends as that connection's death — [with_server]'s teardown joins
   [Server.run] and re-raises anything that escaped. *)
let test_disconnect_before_reading_response () =
  with_server (fun ~socket ~metrics:_ ->
      let c = connect socket in
      let burst =
        String.concat ""
          (List.init 4 (fun i ->
               Frame.encode (Protocol.request_to_json ~id:i Protocol.Metrics)))
      in
      Client.send_raw c burst;
      (* close with every response unread: the server's writes hit a
         dead peer (EPIPE/ECONNRESET) *)
      Client.close c;
      (* the server must still be alive and serving *)
      let c2 = connect socket in
      (match Client.request c2 Protocol.Metrics with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "server died with the client: %s" e);
      Client.close c2)

(* A burst beyond the pipeline-depth limit: the excess is answered
   immediately with [overloaded] (ids echoed), the connection stays
   usable, and the sheds are counted. *)
let test_pipelined_burst_sheds () =
  let socket = Filename.temp_file "iddq-test-overload" ".sock" in
  let metrics = Metrics.create () in
  match Server.create ~socket ~metrics ~max_pipeline:1 () with
  | Error e -> Alcotest.fail (Server.create_error_to_string e)
  | Ok srv ->
    let running = Domain.spawn (fun () -> Server.run srv) in
    Fun.protect
      ~finally:(fun () ->
        Server.shutdown srv;
        Domain.join running;
        if Sys.file_exists socket then Sys.remove socket)
      (fun () ->
        let c = connect socket in
        let n = 6 in
        Client.send_raw c
          (String.concat ""
             (List.init n (fun i ->
                  Frame.encode (Protocol.request_to_json ~id:i Protocol.Metrics))));
        let ok = ref 0 and shed = ref 0 and ids = ref [] in
        for _ = 1 to n do
          match Client.recv c with
          | Error e -> Alcotest.failf "burst response missing: %s" e
          | Ok resp -> begin
            (match Protocol.response_id resp with
            | Some id -> ids := id :: !ids
            | None -> Alcotest.fail "burst response without an id");
            match Protocol.response_payload resp with
            | Ok _ -> incr ok
            | Error { Protocol.code = Protocol.Overloaded; _ } -> incr shed
            | Error e ->
              Alcotest.failf "unexpected burst error: %s" e.Protocol.message
          end
        done;
        Alcotest.(check bool) "some requests served" true (!ok >= 1);
        Alcotest.(check bool) "some requests shed" true (!shed >= 1);
        Alcotest.(check int) "every request answered exactly once" n
          (List.length (List.sort_uniq compare !ids));
        Alcotest.(check bool) "sheds recorded in metrics" true
          ((Metrics.snapshot metrics).Metrics.server_sheds >= 1);
        (* the connection is still usable after being shed *)
        (match Client.request c Protocol.Metrics with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "connection dead after shed: %s" e);
        Client.close c)

(* [create] must refuse a socket path owned by a live server but
   reclaim a stale socket file left by a dead one. *)
let test_address_in_use () =
  with_server (fun ~socket ~metrics:_ ->
      match Server.create ~socket () with
      | Error (Server.Address_in_use _) -> ()
      | Error e ->
        Alcotest.failf "expected address_in_use, got: %s"
          (Server.create_error_to_string e)
      | Ok _ -> Alcotest.fail "second server bound a live socket");
  (* a stale socket file: bound once, listener long gone *)
  let stale = Filename.temp_file "iddq-test-stale" ".sock" in
  Sys.remove stale;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX stale);
  Unix.close fd;
  match Server.create ~socket:stale () with
  | Error e ->
    Alcotest.failf "stale socket not reclaimed: %s"
      (Server.create_error_to_string e)
  | Ok srv ->
    let running = Domain.spawn (fun () -> Server.run srv) in
    Server.shutdown srv;
    Domain.join running;
    if Sys.file_exists stale then Sys.remove stale

(* ------------------------------------------------------------------ *)
(* Cursor decoder vs the old string-concatenation decoder              *)
(* ------------------------------------------------------------------ *)

(* The pre-Netbuf decoder, reimplemented naively as the reference:
   a plain string accumulator with O(n^2) feeding. *)
module Ref_decoder = struct
  type t = { max : int; mutable buf : string; mutable poisoned : int option }

  let create ~max_frame = { max = max_frame; buf = ""; poisoned = None }
  let feed d s = d.buf <- d.buf ^ s

  let next d =
    match d.poisoned with
    | Some n -> Some (Frame.Oversized n)
    | None ->
      let have = String.length d.buf in
      if have < 4 then None
      else begin
        let b i = Char.code d.buf.[i] in
        let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
        if len > d.max then begin
          d.poisoned <- Some len;
          Some (Frame.Oversized len)
        end
        else if have < 4 + len then None
        else begin
          let payload = String.sub d.buf 4 len in
          d.buf <- String.sub d.buf (4 + len) (have - 4 - len);
          match Json.parse payload with
          | Ok j -> Some (Frame.Frame j)
          | Error e -> Some (Frame.Malformed e)
        end
      end
end

let event_str = function
  | Frame.Frame j -> "frame " ^ Json.to_string j
  | Frame.Malformed m -> "malformed " ^ m
  | Frame.Oversized n -> "oversized " ^ string_of_int n

(* One generated stream: well-formed, malformed and oversized frames
   plus trailing garbage, in a random order. *)
let stream_gen =
  QCheck.Gen.(
    let item =
      frequency
        [
          ( 5,
            map
              (fun n ->
                Frame.encode
                  (Json.Obj
                     [ ("id", Json.Int n); ("pad", Json.String (String.make (n land 31) 'x')) ]))
              small_nat );
          (2, map (fun s -> Frame.encode_payload (s ^ "{")) small_string);
          (1, return "\x7f\xff\xff\xffgarbage-after-poison");
        ]
    in
    let* items = list_size (int_range 0 8) item in
    let* cut = int_range 0 3 in
    let s = String.concat "" items in
    (* possibly truncate: partial trailing frames must never produce
       an event *)
    return (String.sub s 0 (String.length s - min cut (String.length s))))

let qcheck_cursor_decoder_equivalent =
  QCheck.Test.make
    ~name:"cursor decoder event-identical to string decoder under any chunking"
    ~count:300
    (QCheck.make
       QCheck.Gen.(pair stream_gen (int_range 1 17))
       ~print:(fun (s, chunk) -> Printf.sprintf "chunk=%d stream=%S" chunk s))
    (fun (stream, chunk) ->
      let cur = Frame.create ~max_frame:1024 () in
      let ref_ = Ref_decoder.create ~max_frame:1024 in
      let drain_both () =
        (* Oversized is terminal for both: they would report it forever *)
        let rec go acc =
          let a = Frame.next cur and b = Ref_decoder.next ref_ in
          match (a, b) with
          | None, None -> List.rev acc
          | Some ea, Some eb when event_str ea = event_str eb -> begin
            match ea with
            | Frame.Oversized _ -> List.rev (event_str ea :: acc)
            | _ -> go (event_str ea :: acc)
          end
          | _ ->
            QCheck.Test.fail_reportf "decoders diverged: %s vs %s"
              (match a with Some e -> event_str e | None -> "<none>")
              (match b with Some e -> event_str e | None -> "<none>")
        in
        go []
      in
      let n = String.length stream in
      let i = ref 0 in
      while !i < n do
        let len = min chunk (n - !i) in
        let piece = String.sub stream !i len in
        Frame.feed cur piece;
        Ref_decoder.feed ref_ piece;
        ignore (drain_both ());
        i := !i + len
      done;
      ignore (drain_both ());
      true)

let tests =
  [
    Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_frame_split_boundaries;
    Alcotest.test_case "frame malformed stays in sync" `Quick
      test_frame_malformed_stays_in_sync;
    Alcotest.test_case "frame oversized poisons" `Quick
      test_frame_oversized_poisons;
    Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol rejects" `Quick test_protocol_rejects;
    Alcotest.test_case "response shapes" `Quick test_response_shapes;
    Alcotest.test_case "service cache hits" `Quick test_service_cache_hits;
    Alcotest.test_case "service errors" `Quick test_service_errors;
    Alcotest.test_case "service diagnose cached" `Quick
      test_service_diagnose_cached;
    Alcotest.test_case "service testset cached" `Quick
      test_service_testset_cached;
    Alcotest.test_case "service cache eviction" `Quick
      test_service_cache_eviction;
    Alcotest.test_case "service future op typed" `Quick
      test_service_future_op_typed;
    Alcotest.test_case "service deterministic" `Quick
      test_service_deterministic_across_instances;
    Alcotest.test_case "two clients interleaved" `Quick
      test_two_clients_interleaved;
    Alcotest.test_case "future op over socket" `Quick
      test_future_op_over_socket;
    Alcotest.test_case "oversized frame closes connection" `Quick
      test_oversized_frame_closes_connection;
    Alcotest.test_case "shutdown request stops server" `Quick
      test_shutdown_request_stops_server;
    Alcotest.test_case "slow-loris client" `Quick test_slow_loris;
    Alcotest.test_case "disconnect before reading response" `Quick
      test_disconnect_before_reading_response;
    Alcotest.test_case "pipelined burst sheds" `Quick
      test_pipelined_burst_sheds;
    Alcotest.test_case "address in use" `Quick test_address_in_use;
    QCheck_alcotest.to_alcotest qcheck_cursor_decoder_equivalent;
  ]
