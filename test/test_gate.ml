module Gate = Iddq_netlist.Gate

let check_eval kind inputs expected =
  Alcotest.(check bool)
    (Printf.sprintf "%s%s" (Gate.to_string kind)
       (String.concat ""
          (List.map (fun b -> if b then "1" else "0") (Array.to_list inputs))))
    expected
    (Gate.eval kind inputs)

let test_two_input_truth_tables () =
  let cases =
    [
      (Gate.And, [ false; false; false; true ]);
      (Gate.Nand, [ true; true; true; false ]);
      (Gate.Or, [ false; true; true; true ]);
      (Gate.Nor, [ true; false; false; false ]);
      (Gate.Xor, [ false; true; true; false ]);
      (Gate.Xnor, [ true; false; false; true ]);
    ]
  in
  List.iter
    (fun (kind, expected) ->
      List.iteri
        (fun i exp ->
          let a = i land 2 <> 0 and b = i land 1 <> 0 in
          check_eval kind [| a; b |] exp)
        expected)
    cases

let test_unary () =
  check_eval Gate.Not [| true |] false;
  check_eval Gate.Not [| false |] true;
  check_eval Gate.Buff [| true |] true;
  check_eval Gate.Buff [| false |] false

let test_wide_gates () =
  check_eval Gate.And [| true; true; true |] true;
  check_eval Gate.And [| true; false; true |] false;
  check_eval Gate.Nor [| false; false; false; false |] true;
  check_eval Gate.Xor [| true; true; true |] true;
  (* parity *)
  check_eval Gate.Xor [| true; true; true; true |] false;
  check_eval Gate.Xnor [| true; true; true |] false

let test_arity_validation () =
  Alcotest.(check bool) "NOT arity 1" true (Gate.arity_ok Gate.Not 1);
  Alcotest.(check bool) "NOT arity 2" false (Gate.arity_ok Gate.Not 2);
  Alcotest.(check bool) "AND arity 1" false (Gate.arity_ok Gate.And 1);
  Alcotest.(check bool) "AND arity 5" true (Gate.arity_ok Gate.And 5);
  Alcotest.check_raises "eval checks arity"
    (Invalid_argument "Gate.eval: NOT with 2 inputs") (fun () ->
      ignore (Gate.eval Gate.Not [| true; false |]))

let test_string_roundtrip () =
  List.iter
    (fun k ->
      match Gate.of_string (Gate.to_string k) with
      | Some k' -> Alcotest.(check bool) (Gate.to_string k) true (Gate.equal k k')
      | None -> Alcotest.fail "roundtrip failed")
    Gate.all_kinds;
  Alcotest.(check bool) "case-insensitive" true
    (Gate.of_string "nand" = Some Gate.Nand);
  Alcotest.(check bool) "BUF synonym" true (Gate.of_string "BUF" = Some Gate.Buff);
  Alcotest.(check bool) "INV synonym" true (Gate.of_string "inv" = Some Gate.Not);
  Alcotest.(check bool) "unknown" true (Gate.of_string "FOO" = None)

let test_all_kinds_complete () =
  Alcotest.(check int) "eight kinds" 8 (List.length Gate.all_kinds)

let qcheck_demorgan =
  (* NAND(a,b) = OR(not a, not b), over arbitrary widths *)
  QCheck.Test.make ~name:"De Morgan: NAND = OR of negations" ~count:200
    QCheck.(array_of_size Gen.(int_range 2 6) bool)
    (fun inputs ->
      Gate.eval Gate.Nand inputs
      = Gate.eval Gate.Or (Array.map not inputs))

let qcheck_xor_assoc =
  QCheck.Test.make ~name:"wide XOR = fold of 2-input XOR" ~count:200
    QCheck.(array_of_size Gen.(int_range 2 8) bool)
    (fun inputs ->
      let folded =
        Array.fold_left
          (fun acc b -> Gate.eval Gate.Xor [| acc; b |])
          inputs.(0)
          (Array.sub inputs 1 (Array.length inputs - 1))
      in
      Gate.eval Gate.Xor inputs = folded)

let tests =
  [
    Alcotest.test_case "2-input truth tables" `Quick test_two_input_truth_tables;
    Alcotest.test_case "unary gates" `Quick test_unary;
    Alcotest.test_case "wide gates" `Quick test_wide_gates;
    Alcotest.test_case "arity validation" `Quick test_arity_validation;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "all kinds" `Quick test_all_kinds_complete;
    QCheck_alcotest.to_alcotest qcheck_demorgan;
    QCheck_alcotest.to_alcotest qcheck_xor_assoc;
  ]
