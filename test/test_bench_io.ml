module Bench_io = Iddq_netlist.Bench_io
module Io_error = Iddq_util.Io_error
module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate
module Iscas = Iddq_netlist.Iscas

let parse_ok text =
  match Bench_io.parse_string text with
  | Ok c -> c
  | Error e -> Alcotest.failf "parse failed: %s" (Io_error.to_string e)

let parse_err text =
  match Bench_io.parse_string text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> Io_error.to_string e

let test_parse_minimal () =
  let c =
    parse_ok "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n"
  in
  Alcotest.(check int) "gates" 1 (Circuit.num_gates c);
  Alcotest.(check int) "inputs" 2 (Circuit.num_inputs c);
  let y = Option.get (Circuit.node_id_of_name c "y") in
  Alcotest.(check bool) "kind" true (Gate.equal (Circuit.gate_kind c y) Gate.Nand)

let test_comments_and_blanks () =
  let c =
    parse_ok
      "# a comment\n\nINPUT(a)\n  # indented comment\nOUTPUT(y)\ny = NOT(a)  \
       # trailing\n\n"
  in
  Alcotest.(check int) "gates" 1 (Circuit.num_gates c)

let test_case_insensitive_keywords () =
  let c = parse_ok "input(a)\noutput(y)\ny = nand(a, a)\n" in
  Alcotest.(check int) "gates" 1 (Circuit.num_gates c)

let test_error_line_numbers () =
  let e = parse_err "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n" in
  Alcotest.(check bool) ("mentions line 3: " ^ e) true
    (String.length e >= 6 && String.sub e 0 6 = "line 3")

let test_error_garbage () =
  let e = parse_err "INPUT(a)\nwhat is this\n" in
  Alcotest.(check bool) ("line 2: " ^ e) true
    (String.length e >= 6 && String.sub e 0 6 = "line 2")

let test_error_undefined () =
  let e = parse_err "INPUT(a)\nOUTPUT(y)\ny = NOT(zzz)\n" in
  Alcotest.(check bool) ("undefined: " ^ e) true
    (String.length e > 0)

let test_roundtrip_c17 () =
  let c = Iscas.c17 () in
  let c' =
    match Bench_io.parse_string ~name:"c17" (Bench_io.to_string c) with
    | Ok c' -> c'
    | Error e -> Alcotest.failf "reparse failed: %s" (Io_error.to_string e)
  in
  Alcotest.(check int) "nodes" (Circuit.num_nodes c) (Circuit.num_nodes c');
  Alcotest.(check int) "outputs" (Circuit.num_outputs c) (Circuit.num_outputs c');
  (* same connectivity by name *)
  Circuit.iter_gates c (fun g kind fanins ->
      let name = Circuit.node_name c (Circuit.node_of_gate c g) in
      let id' = Option.get (Circuit.node_id_of_name c' name) in
      Alcotest.(check bool) ("kind of " ^ name) true
        (Gate.equal kind (Circuit.gate_kind c' id'));
      let fanin_names c cc =
        Array.to_list cc |> List.map (Circuit.node_name c) |> List.sort compare
      in
      Alcotest.(check (list string)) ("fanins of " ^ name)
        (fanin_names c fanins)
        (fanin_names c' (Circuit.fanins c' id')))

let test_roundtrip_generated () =
  let rng = Iddq_util.Rng.create 99 in
  let c =
    Iddq_netlist.Generator.layered_dag ~rng ~name:"rt" ~num_inputs:8
      ~num_outputs:4 ~num_gates:60 ~depth:8 ()
  in
  match Bench_io.parse_string (Bench_io.to_string c) with
  | Error e -> Alcotest.failf "reparse failed: %s" (Io_error.to_string e)
  | Ok c' ->
    Alcotest.(check int) "nodes" (Circuit.num_nodes c) (Circuit.num_nodes c');
    Alcotest.(check int) "gates" (Circuit.num_gates c) (Circuit.num_gates c');
    Alcotest.(check (result unit string)) "valid" (Ok ()) (Circuit.validate c')

let test_file_io () =
  let path = Filename.temp_file "iddq_test" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Bench_io.write_file path (Iscas.c17 ()) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write_file: %s" (Io_error.to_string e));
      match Bench_io.parse_file path with
      | Ok c -> Alcotest.(check int) "gates" 6 (Circuit.num_gates c)
      | Error e -> Alcotest.failf "parse_file: %s" (Io_error.to_string e))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"bench roundtrip preserves structure" ~count:25
    QCheck.(pair (int_range 5 80) (int_range 1 60000))
    (fun (gates, seed) ->
      let rng = Iddq_util.Rng.create seed in
      let depth = 1 + (gates / 10) in
      let c =
        Iddq_netlist.Generator.layered_dag ~rng ~name:"q" ~num_inputs:4
          ~num_outputs:2 ~num_gates:gates ~depth ()
      in
      match Bench_io.parse_string (Bench_io.to_string c) with
      | Error _ -> false
      | Ok c' ->
        Circuit.num_gates c = Circuit.num_gates c'
        && Circuit.num_inputs c = Circuit.num_inputs c'
        && Circuit.num_outputs c = Circuit.num_outputs c')

let tests =
  [
    Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
    Alcotest.test_case "comments/blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "case-insensitive" `Quick test_case_insensitive_keywords;
    Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
    Alcotest.test_case "error on garbage" `Quick test_error_garbage;
    Alcotest.test_case "error on undefined" `Quick test_error_undefined;
    Alcotest.test_case "roundtrip c17" `Quick test_roundtrip_c17;
    Alcotest.test_case "roundtrip generated" `Quick test_roundtrip_generated;
    Alcotest.test_case "file io" `Quick test_file_io;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
