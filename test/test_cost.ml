module Charac = Iddq_analysis.Charac
module Partition = Iddq_core.Partition
module Constraints = Iddq_core.Constraints
module Cost = Iddq_core.Cost
module Cost_eval = Iddq_core.Cost_eval
module Metrics = Iddq_util.Metrics
module Iscas = Iddq_netlist.Iscas
module Generator = Iddq_netlist.Generator
module Library = Iddq_celllib.Library
module Technology = Iddq_celllib.Technology
module Gate = Iddq_netlist.Gate
module Rng = Iddq_util.Rng

let make circuit = Charac.make ~library:Library.default circuit

let library_with_threshold th =
  match
    Library.make ~name:"custom"
      ~technology:{ Technology.default with Technology.iddq_threshold = th }
      ~cells:(List.map (fun k -> (k, Library.cell Library.default k)) Gate.all_kinds)
      ()
  with
  | Ok l -> l
  | Error e -> failwith e

let test_constraints_feasible_default () =
  let ch = make (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  Alcotest.(check bool) "tiny modules trivially feasible" true
    (Constraints.satisfied p);
  Alcotest.(check (float 0.0)) "deficit 0" 0.0 (Constraints.deficit p)

let test_constraints_infeasible () =
  (* a threshold so low that even one NAND gate violates d >= 10 *)
  let ch = Charac.make ~library:(library_with_threshold 1e-12) (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  Alcotest.(check bool) "violated" false (Constraints.satisfied p);
  let violations = Constraints.check p in
  Alcotest.(check int) "both modules listed" 2 (List.length violations);
  List.iter
    (fun v ->
      Alcotest.(check bool) "got < required" true
        (v.Constraints.got < v.Constraints.required))
    violations;
  Alcotest.(check bool) "deficit positive" true (Constraints.deficit p > 0.0)

let test_penalty_applied () =
  let ch = Charac.make ~library:(library_with_threshold 1e-12) (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let b = Cost.evaluate p in
  Alcotest.(check bool) "penalized > total" true (b.Cost.penalized > b.Cost.total);
  Alcotest.(check bool) "flagged infeasible" false b.Cost.feasible

let test_feasible_no_penalty () =
  let ch = make (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let b = Cost.evaluate p in
  Alcotest.(check (float 1e-12)) "penalized = total" b.Cost.total b.Cost.penalized;
  Alcotest.(check bool) "feasible" true b.Cost.feasible

let test_breakdown_sanity () =
  let ch = make (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let b = Cost.evaluate p in
  Alcotest.(check (float 1e-9)) "c1 = log area" (log b.Cost.sensor_area)
    b.Cost.c1_area;
  Alcotest.(check (float 1e-9)) "c5 = module count" 2.0 b.Cost.c5_module_count;
  Alcotest.(check bool) "bic delay >= nominal" true
    (b.Cost.bic_delay >= b.Cost.nominal_delay);
  Alcotest.(check (float 1e-9)) "c2 consistent"
    ((b.Cost.bic_delay -. b.Cost.nominal_delay) /. b.Cost.nominal_delay)
    b.Cost.c2_delay;
  Alcotest.(check bool) "test time per vector > bic delay" true
    (b.Cost.test_time_per_vector > b.Cost.bic_delay)

let test_weights_respected () =
  let ch = make (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let b = Cost.evaluate ~weights:Cost.equal_weights p in
  let expected =
    b.Cost.c1_area +. b.Cost.c2_delay +. b.Cost.c3_separation
    +. b.Cost.c4_test_time +. b.Cost.c5_module_count
  in
  Alcotest.(check (float 1e-9)) "equal weights sum" expected b.Cost.total

let test_paper_weights_values () =
  let w = Cost.paper_weights in
  Alcotest.(check (float 0.0)) "area 9" 9.0 w.Cost.w_area;
  Alcotest.(check (float 0.0)) "delay 1e5" 1.0e5 w.Cost.w_delay;
  Alcotest.(check (float 0.0)) "separation 1" 1.0 w.Cost.w_separation;
  Alcotest.(check (float 0.0)) "test 1" 1.0 w.Cost.w_test_time;
  Alcotest.(check (float 0.0)) "count 10" 10.0 w.Cost.w_module_count

let test_merge_lowers_module_count_cost () =
  let ch = make (Iscas.c17 ()) in
  let two = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let one = Partition.create ch ~assignment:[| 0; 0; 0; 0; 0; 0 |] in
  let b2 = Cost.evaluate two and b1 = Cost.evaluate one in
  Alcotest.(check bool) "c5 smaller" true
    (b1.Cost.c5_module_count < b2.Cost.c5_module_count)

let qcheck_cost_invariant_under_move_roundtrip =
  QCheck.Test.make
    ~name:"cost identical after a move and its inverse" ~count:25
    QCheck.(pair (int_range 20 60) (int_range 1 100000))
    (fun (gates, seed) ->
      let rng = Rng.create seed in
      let circuit =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:6 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let ch = make circuit in
      let p = Partition.create ch ~assignment:(Array.init gates (fun g -> g mod 3)) in
      let before = (Cost.evaluate p).Cost.penalized in
      let g = Rng.int rng gates in
      let src = Partition.module_of_gate p g in
      let target = (src + 1) mod 3 in
      if Partition.size p src > 1 then begin
        Partition.move_gate p g target;
        Partition.move_gate p g src
      end;
      let after = (Cost.evaluate p).Cost.penalized in
      Float.abs (before -. after) < 1e-9 *. Stdlib.max 1.0 (Float.abs before))

let qcheck_incremental_cost_equals_fresh =
  QCheck.Test.make
    ~name:"cost from incremental aggregates = cost from a fresh partition"
    ~count:20
    QCheck.(triple (int_range 20 60) (int_range 2 5) (int_range 1 100000))
    (fun (gates, k, seed) ->
      let rng = Rng.create seed in
      let circuit =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:6 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let ch = make circuit in
      let p = Partition.create ch ~assignment:(Array.init gates (fun g -> g mod k)) in
      (* random walk *)
      for _ = 1 to 40 do
        if Partition.num_modules p >= 2 then begin
          let g = Rng.int rng gates in
          let target = Rng.choose_list rng (Partition.module_ids p) in
          if target <> Partition.module_of_gate p g then
            Partition.move_gate p g target
        end
      done;
      (* rebuild from the final assignment with dense ids *)
      let assignment = Partition.assignment p in
      let live = Partition.module_ids p in
      let remap = Hashtbl.create 8 in
      List.iteri (fun i m -> Hashtbl.replace remap m i) live;
      let dense = Array.map (Hashtbl.find remap) assignment in
      let fresh = Partition.create ch ~assignment:dense in
      let a = (Cost.evaluate p).Cost.penalized in
      let b = (Cost.evaluate fresh).Cost.penalized in
      Float.abs (a -. b) < 1e-9 *. Stdlib.max 1.0 (Float.abs a))

let test_cost_eval_matches_evaluate () =
  let ch = make (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let eval = Cost_eval.create p in
  let d = Cost_eval.breakdown eval in
  let f = Cost.evaluate p in
  Alcotest.(check (float 0.0)) "penalized exact" f.Cost.penalized d.Cost.penalized;
  Alcotest.(check (float 0.0)) "bic exact" f.Cost.bic_delay d.Cost.bic_delay;
  Alcotest.(check (float 0.0)) "area exact" f.Cost.sensor_area d.Cost.sensor_area

let test_cost_eval_counters () =
  let ch = make (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let metrics = Metrics.create () in
  let eval = Cost_eval.create ~metrics p in
  let b1 = Cost_eval.breakdown eval in
  let b2 = Cost_eval.breakdown eval in
  Alcotest.(check (float 0.0)) "cache returns same value" b1.Cost.penalized
    b2.Cost.penalized;
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "one full eval" 1 s.Metrics.full_evals;
  Alcotest.(check int) "one cache hit" 1 s.Metrics.cache_hits;
  Alcotest.(check int) "full eval visited every gate" 6 s.Metrics.gates_full;
  Cost_eval.move eval ~gate:0 ~target:1;
  ignore (Cost_eval.penalized eval);
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "one move" 1 s.Metrics.moves;
  Alcotest.(check int) "one delta eval" 1 s.Metrics.delta_evals;
  Alcotest.(check (result unit string)) "delta matches full" (Ok ())
    (Cost_eval.self_check eval);
  (* moving a gate to its own module is a no-op: nothing recorded *)
  Cost_eval.move eval ~gate:0 ~target:(Partition.module_of_gate p 0);
  ignore (Cost_eval.breakdown eval);
  let s' = Metrics.snapshot metrics in
  Alcotest.(check int) "no-op move not counted" s.Metrics.moves s'.Metrics.moves;
  Cost_eval.invalidate eval;
  ignore (Cost_eval.breakdown eval);
  let s'' = Metrics.snapshot metrics in
  Alcotest.(check int) "invalidate forces a full recompute" 2
    s''.Metrics.full_evals

let test_cost_eval_copy_independent () =
  let ch = make (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let eval = Cost_eval.create ~metrics:(Metrics.create ()) p in
  let before = Cost_eval.penalized eval in
  let dup = Cost_eval.copy eval in
  Cost_eval.move dup ~gate:0 ~target:1;
  Alcotest.(check (float 0.0)) "original untouched by copy's moves" before
    (Cost_eval.penalized eval);
  Alcotest.(check (result unit string)) "copy coherent" (Ok ())
    (Cost_eval.self_check dup);
  Alcotest.(check (result unit string)) "original coherent" (Ok ())
    (Cost_eval.self_check eval)

let test_cost_eval_module_death () =
  let ch = make (Iscas.c17 ()) in
  let p = Partition.create ch ~assignment:[| 0; 1; 0; 1; 0; 1 |] in
  let eval = Cost_eval.create ~metrics:(Metrics.create ()) p in
  ignore (Cost_eval.breakdown eval);
  (* empty module 1 one gate at a time, evaluating between moves *)
  List.iter
    (fun g ->
      Cost_eval.move eval ~gate:g ~target:0;
      Alcotest.(check (result unit string)) "coherent during death" (Ok ())
        (Cost_eval.self_check eval))
    [ 1; 3; 5 ];
  Alcotest.(check int) "module 1 died" 1 (Partition.num_modules p)

let qcheck_delta_equals_full =
  QCheck.Test.make
    ~name:"delta evaluation = full Cost.evaluate over random move sequences"
    ~count:20
    QCheck.(triple (int_range 20 60) (int_range 2 6) (int_range 1 100000))
    (fun (gates, k, seed) ->
      let rng = Rng.create seed in
      let circuit =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:6 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let ch = make circuit in
      let p =
        Partition.create ch ~assignment:(Array.init gates (fun g -> g mod k))
      in
      let eval = Cost_eval.create ~metrics:(Metrics.create ()) p in
      let ok = ref true in
      (* random walk with bursts of moves between evaluations; sources
         empty out along the way, covering module death *)
      for step = 1 to 60 do
        if Partition.num_modules p >= 2 then begin
          let g = Rng.int rng gates in
          let target = Rng.choose_list rng (Partition.module_ids p) in
          Cost_eval.move eval ~gate:g ~target;
          if step mod 3 = 0 then begin
            let d = (Cost_eval.breakdown eval).Cost.penalized in
            let f = (Cost.evaluate p).Cost.penalized in
            if Float.abs (d -. f) > 1e-9 *. Stdlib.max 1.0 (Float.abs f) then
              ok := false
          end
        end
      done;
      !ok && Cost_eval.self_check eval = Ok ())

let tests =
  [
    Alcotest.test_case "constraints feasible" `Quick test_constraints_feasible_default;
    Alcotest.test_case "constraints infeasible" `Quick test_constraints_infeasible;
    Alcotest.test_case "penalty applied" `Quick test_penalty_applied;
    Alcotest.test_case "feasible no penalty" `Quick test_feasible_no_penalty;
    Alcotest.test_case "breakdown sanity" `Quick test_breakdown_sanity;
    Alcotest.test_case "weights respected" `Quick test_weights_respected;
    Alcotest.test_case "paper weights" `Quick test_paper_weights_values;
    Alcotest.test_case "merge lowers c5" `Quick test_merge_lowers_module_count_cost;
    QCheck_alcotest.to_alcotest qcheck_cost_invariant_under_move_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_incremental_cost_equals_fresh;
    Alcotest.test_case "cost_eval matches evaluate" `Quick
      test_cost_eval_matches_evaluate;
    Alcotest.test_case "cost_eval counters" `Quick test_cost_eval_counters;
    Alcotest.test_case "cost_eval copy independent" `Quick
      test_cost_eval_copy_independent;
    Alcotest.test_case "cost_eval module death" `Quick
      test_cost_eval_module_death;
    QCheck_alcotest.to_alcotest qcheck_delta_equals_full;
  ]
