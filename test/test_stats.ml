module Stats = Iddq_util.Stats

let feq = Alcotest.(check (float 1e-9))

let test_mean () =
  feq "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  feq "empty" 0.0 (Stats.mean [||])

let test_sum_kahan () =
  (* many tiny values against one big one: naive summation loses them *)
  let xs = Array.make 10_001 1e-12 in
  xs.(0) <- 1.0;
  feq "kahan" (1.0 +. (1e-12 *. 10_000.0)) (Stats.sum xs)

let test_variance_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  feq "variance" 4.0 (Stats.variance xs);
  feq "stddev" 2.0 (Stats.stddev xs);
  feq "single" 0.0 (Stats.variance [| 42.0 |])

let test_median () =
  feq "odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  feq "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  feq "empty" 0.0 (Stats.median [||]);
  let xs = [| 3.0; 1.0; 2.0 |] in
  let _ = Stats.median xs in
  Alcotest.(check bool) "input not mutated" true (xs = [| 3.0; 1.0; 2.0 |])

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.0 |] in
  feq "min" (-1.0) lo;
  feq "max" 7.0 hi;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.min_max: empty")
    (fun () -> ignore (Stats.min_max [||]))

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  feq "p0" 1.0 (Stats.percentile xs 0.0);
  feq "p50" 3.0 (Stats.percentile xs 50.0);
  feq "p100" 5.0 (Stats.percentile xs 100.0);
  feq "p25" 2.0 (Stats.percentile xs 25.0)

let test_ratio_percent () =
  feq "20% larger" 20.0 (Stats.ratio_percent 1.2 1.0);
  feq "smaller" (-50.0) (Stats.ratio_percent 0.5 1.0)

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.0; 0.1; 0.9; 1.0 |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  Alcotest.(check int) "low bin" 2 (snd h.(0));
  Alcotest.(check int) "high bin" 2 (snd h.(1));
  Alcotest.check_raises "bad bins" (Invalid_argument "Stats.histogram: bins <= 0")
    (fun () -> ignore (Stats.histogram ~bins:0 [| 1.0 |]))

let qcheck_mean_bounded =
  QCheck.Test.make ~name:"mean lies within [min,max]" ~count:300
    QCheck.(array_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let m = Stats.mean xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:300
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 30) (float_bound_exclusive 100.0))
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      let lo = Stdlib.min p1 p2 and hi = Stdlib.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let tests =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "kahan sum" `Quick test_sum_kahan;
    Alcotest.test_case "variance/stddev" `Quick test_variance_stddev;
    Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "min_max" `Quick test_min_max;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "ratio_percent" `Quick test_ratio_percent;
    Alcotest.test_case "histogram" `Quick test_histogram;
    QCheck_alcotest.to_alcotest qcheck_mean_bounded;
    QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
  ]
