module Verilog_io = Iddq_netlist.Verilog_io
module Io_error = Iddq_util.Io_error
module Bench_io = Iddq_netlist.Bench_io
module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate
module Iscas = Iddq_netlist.Iscas
module Generator = Iddq_netlist.Generator
module Logic_sim = Iddq_patterns.Logic_sim

let parse_ok text =
  match Verilog_io.parse_string text with
  | Ok c -> c
  | Error e -> Alcotest.failf "verilog parse failed: %s" (Io_error.to_string e)

let parse_err text =
  match Verilog_io.parse_string text with
  | Ok _ -> Alcotest.fail "expected a verilog parse error"
  | Error e -> Io_error.to_string e

let c17_verilog =
  "module c17 (N1, N2, N3, N6, N7, N22, N23);\n\
   \  input N1, N2, N3, N6, N7;\n\
   \  output N22, N23;\n\
   \  wire N10, N11, N16, N19;\n\
   \  nand g1 (N10, N1, N3);\n\
   \  nand g2 (N11, N3, N6);\n\
   \  nand g3 (N16, N2, N11);\n\
   \  nand g4 (N19, N11, N7);\n\
   \  nand g5 (N22, N10, N16);\n\
   \  nand g6 (N23, N16, N19);\n\
   endmodule\n"

let test_parse_c17 () =
  let c = parse_ok c17_verilog in
  Alcotest.(check string) "name" "c17" (Circuit.name c);
  Alcotest.(check int) "inputs" 5 (Circuit.num_inputs c);
  Alcotest.(check int) "outputs" 2 (Circuit.num_outputs c);
  Alcotest.(check int) "gates" 6 (Circuit.num_gates c);
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Circuit.validate c)

let test_parse_function_matches_bench () =
  (* the same C17 through both formats computes the same function *)
  let v = parse_ok c17_verilog in
  let b = Iscas.c17 () in
  for vec = 0 to 31 do
    let bit i = (vec lsr i) land 1 = 1 in
    let inputs = [| bit 0; bit 1; bit 2; bit 3; bit 4 |] in
    let out c = Logic_sim.output_values c (Logic_sim.eval c inputs) in
    Alcotest.(check bool)
      (Printf.sprintf "vector %d" vec)
      true
      (out v = out b)
  done

let test_comments_and_instance_names () =
  let c =
    parse_ok
      "// header\nmodule m (a, y); /* ports */\n  input a;\n  output y;\n\
       \  not (y, a); // anonymous instance\nendmodule\n"
  in
  Alcotest.(check int) "gates" 1 (Circuit.num_gates c)

let test_parse_errors () =
  let check_mentions text frag =
    let e = parse_err text in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
      m = 0 || scan 0
    in
    Alcotest.(check bool) (frag ^ ": " ^ e) true (contains e frag)
  in
  check_mentions "module m (y); output y; frob (y, y); endmodule" "primitive";
  check_mentions "module m (a); input a;" "endmodule";
  check_mentions "module m (y); output y; not (y); endmodule" "no inputs";
  check_mentions "module m (a, y); input a; output y; not (y, a) endmodule"
    "';'";
  check_mentions "/* unterminated" "comment"

let test_roundtrip_c17 () =
  let c = Iscas.c17 () in
  let c' = parse_ok (Verilog_io.to_string c) in
  Alcotest.(check int) "gates" (Circuit.num_gates c) (Circuit.num_gates c');
  Alcotest.(check int) "inputs" (Circuit.num_inputs c) (Circuit.num_inputs c');
  Alcotest.(check int) "outputs" (Circuit.num_outputs c) (Circuit.num_outputs c');
  (* names like "10" are not Verilog identifiers: the escaped-name
     path must preserve them *)
  Alcotest.(check bool) "net 10 survives" true
    (Circuit.node_id_of_name c' "10" <> None)

let test_roundtrip_generated () =
  let rng = Iddq_util.Rng.create 21 in
  let c =
    Generator.layered_dag ~rng ~name:"rt_v" ~num_inputs:7 ~num_outputs:3
      ~num_gates:70 ~depth:9 ()
  in
  let c' = parse_ok (Verilog_io.to_string c) in
  Alcotest.(check int) "gates" (Circuit.num_gates c) (Circuit.num_gates c');
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Circuit.validate c');
  (* functional equivalence on a few vectors *)
  for seed = 1 to 5 do
    let r = Iddq_util.Rng.create seed in
    let inputs = Array.init 7 (fun _ -> Iddq_util.Rng.bool r) in
    let out c = Logic_sim.output_values c (Logic_sim.eval c inputs) in
    Alcotest.(check bool) "same outputs" true (out c = out c')
  done

let test_bench_to_verilog_bridge () =
  (* bench -> circuit -> verilog -> circuit -> bench survives *)
  let c = Iscas.c17 () in
  let v = parse_ok (Verilog_io.to_string c) in
  match Bench_io.parse_string (Bench_io.to_string v) with
  | Ok c' -> Alcotest.(check int) "gates" 6 (Circuit.num_gates c')
  | Error e -> Alcotest.failf "bench reparse: %s" (Io_error.to_string e)

let test_file_io () =
  let path = Filename.temp_file "iddq_test" ".v" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Verilog_io.write_file path (Iscas.c17 ()) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write_file: %s" (Io_error.to_string e));
      match Verilog_io.parse_file path with
      | Ok c -> Alcotest.(check int) "gates" 6 (Circuit.num_gates c)
      | Error e -> Alcotest.failf "parse_file: %s" (Io_error.to_string e))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"verilog roundtrip preserves structure" ~count:25
    QCheck.(pair (int_range 5 80) (int_range 1 60000))
    (fun (gates, seed) ->
      let rng = Iddq_util.Rng.create seed in
      let c =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:4 ~num_outputs:2
          ~num_gates:gates ~depth:(1 + (gates / 10)) ()
      in
      match Verilog_io.parse_string (Verilog_io.to_string c) with
      | Error _ -> false
      | Ok c' ->
        Circuit.num_gates c = Circuit.num_gates c'
        && Circuit.num_inputs c = Circuit.num_inputs c'
        && Circuit.num_outputs c = Circuit.num_outputs c')

let tests =
  [
    Alcotest.test_case "parse c17" `Quick test_parse_c17;
    Alcotest.test_case "function matches bench" `Quick
      test_parse_function_matches_bench;
    Alcotest.test_case "comments/instances" `Quick
      test_comments_and_instance_names;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "roundtrip c17" `Quick test_roundtrip_c17;
    Alcotest.test_case "roundtrip generated" `Quick test_roundtrip_generated;
    Alcotest.test_case "bench bridge" `Quick test_bench_to_verilog_bridge;
    Alcotest.test_case "file io" `Quick test_file_io;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
