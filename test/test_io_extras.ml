module Pattern_io = Iddq_patterns.Pattern_io
module Pattern_gen = Iddq_patterns.Pattern_gen
module Library_io = Iddq_celllib.Library_io
module Library = Iddq_celllib.Library
module Technology = Iddq_celllib.Technology
module Cell = Iddq_celllib.Cell
module Gate = Iddq_netlist.Gate
module Iscas = Iddq_netlist.Iscas
module Charac = Iddq_analysis.Charac
module Timing = Iddq_analysis.Timing
module Rng = Iddq_util.Rng
module Io_error = Iddq_util.Io_error

let test_pattern_roundtrip () =
  let rng = Rng.create 3 in
  let c = Iscas.c17 () in
  let vectors = Pattern_gen.random ~rng c ~count:20 in
  match Pattern_io.of_string ~expected_width:5 (Pattern_io.to_string vectors) with
  | Error e -> Alcotest.failf "roundtrip: %s" (Io_error.to_string e)
  | Ok v' ->
    Alcotest.(check int) "count" 20 (Array.length v');
    Alcotest.(check bool) "identical" true (vectors = v')

let test_pattern_errors () =
  let err s = Result.is_error (Pattern_io.of_string ~expected_width:3 s) in
  Alcotest.(check bool) "wrong width" true (err "0101\n");
  Alcotest.(check bool) "bad char" true (err "0x1\n");
  Alcotest.(check bool) "comments ok" false (err "# note\n010\n011\n");
  match Pattern_io.of_string ~expected_width:3 "010 # trailing\n" with
  | Ok v -> Alcotest.(check int) "trailing comment" 1 (Array.length v)
  | Error e -> Alcotest.failf "trailing comment: %s" (Io_error.to_string e)

let test_pattern_file () =
  let path = Filename.temp_file "iddq_vec" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Pattern_io.write_file path [| [| true; false |]; [| false; true |] |] with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write_file: %s" (Io_error.to_string e));
      match Pattern_io.read_file ~expected_width:2 path with
      | Ok v -> Alcotest.(check int) "two vectors" 2 (Array.length v)
      | Error e -> Alcotest.failf "read: %s" (Io_error.to_string e))

let test_library_roundtrip () =
  let text = Library_io.to_string Library.default in
  match Library_io.parse_string ~name:"cmos1u" text with
  | Error e -> Alcotest.failf "library roundtrip: %s" (Io_error.to_string e)
  | Ok lib ->
    Alcotest.(check bool) "technology identical" true
      (Library.technology lib = Library.technology Library.default);
    List.iter
      (fun k ->
        Alcotest.(check bool)
          (Gate.to_string k ^ " identical")
          true
          (Library.cell lib k = Library.cell Library.default k))
      Gate.all_kinds

let test_library_partial_technology_defaults () =
  (* only cells + one technology override: the rest defaults *)
  let cells_text =
    String.concat "\n"
      (List.map
         (fun k ->
           let c = Library.cell Library.default k in
           Printf.sprintf
             "[%s]\npeak_current = %g\nleakage = %g\ndelay = %g\n\
              drive_resistance = %g\noutput_capacitance = %g\n\
              rail_capacitance = %g\narea = %g"
             (Gate.to_string k) c.Cell.peak_current c.Cell.leakage c.Cell.delay
             c.Cell.drive_resistance c.Cell.output_capacitance
             c.Cell.rail_capacitance c.Cell.area)
         Gate.all_kinds)
  in
  let text = "[technology]\nvdd = 3.3\n" ^ cells_text ^ "\n" in
  match Library_io.parse_string text with
  | Error e -> Alcotest.failf "parse: %s" (Io_error.to_string e)
  | Ok lib ->
    let t = Library.technology lib in
    Alcotest.(check (float 0.0)) "vdd overridden" 3.3 t.Technology.vdd;
    Alcotest.(check (float 0.0)) "threshold defaulted"
      Technology.default.Technology.iddq_threshold t.Technology.iddq_threshold

let test_library_errors () =
  let err s = Result.is_error (Library_io.parse_string s) in
  Alcotest.(check bool) "missing sections" true (err "[technology]\nvdd = 5\n");
  Alcotest.(check bool) "bad number" true
    (err "[NAND]\npeak_current = banana\n");
  Alcotest.(check bool) "entry before section" true (err "vdd = 5\n");
  Alcotest.(check bool) "unterminated header" true (err "[technology\nvdd = 5\n")

let test_library_file () =
  let path = Filename.temp_file "iddq_lib" ".ini" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Library_io.write_file path Library.default with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write_file: %s" (Io_error.to_string e));
      match Library_io.parse_file path with
      | Ok lib ->
        Alcotest.(check bool) "cells survive" true
          (Library.cell lib Gate.Nand = Library.cell Library.default Gate.Nand)
      | Error e -> Alcotest.failf "parse_file: %s" (Io_error.to_string e))

(* slack property: stretching any single gate by less than its slack
   never lengthens the critical path *)
let qcheck_slack_soundness =
  QCheck.Test.make
    ~name:"slowing a gate within its slack keeps the longest path" ~count:30
    QCheck.(triple (int_range 20 80) (int_range 1 100000) (float_bound_exclusive 1.0))
    (fun (gates, seed, fraction) ->
      let rng = Rng.create seed in
      let circuit =
        Iddq_netlist.Generator.layered_dag ~rng ~name:"q" ~num_inputs:6
          ~num_outputs:3 ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let ch = Charac.make ~library:Library.default circuit in
      let delay = Charac.delay ch in
      let slacks = Timing.slacks ch ~gate_delay:delay in
      let d = Timing.longest_path ch ~gate_delay:delay in
      let victim = Rng.int rng gates in
      let stretched g =
        if g = victim then delay g +. (fraction *. slacks.(g)) else delay g
      in
      let d' = Timing.longest_path ch ~gate_delay:stretched in
      d' <= d +. 1e-12)

let tests =
  [
    Alcotest.test_case "pattern roundtrip" `Quick test_pattern_roundtrip;
    Alcotest.test_case "pattern errors" `Quick test_pattern_errors;
    Alcotest.test_case "pattern file" `Quick test_pattern_file;
    Alcotest.test_case "library roundtrip" `Quick test_library_roundtrip;
    Alcotest.test_case "library partial technology" `Quick
      test_library_partial_technology_defaults;
    Alcotest.test_case "library errors" `Quick test_library_errors;
    Alcotest.test_case "library file" `Quick test_library_file;
    QCheck_alcotest.to_alcotest qcheck_slack_soundness;
  ]
