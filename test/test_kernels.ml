(* The flat-kernel invariants: Bigarray-backed Bitvec against a
   bool-array model (word boundaries included), the CSR circuit
   against its own boxed view, the zero-allocation guarantee of the
   packed evaluation loop, the flat fault-sim engine against the boxed
   oracle, and the incremental c3 bookkeeping against full
   recomputation. *)

module Bitvec = Iddq_util.Bitvec
module Rng = Iddq_util.Rng
module Domain_pool = Iddq_util.Domain_pool
module Circuit = Iddq_netlist.Circuit
module Level_schedule = Iddq_netlist.Level_schedule
module Gate = Iddq_netlist.Gate
module Generator = Iddq_netlist.Generator
module Graph_algo = Iddq_netlist.Graph_algo
module P = Iddq_patterns.Parallel_sim
module Pattern_gen = Iddq_patterns.Pattern_gen
module Fault = Iddq_defects.Fault
module Fault_sim = Iddq_defects.Fault_sim
module Charac = Iddq_analysis.Charac
module Library = Iddq_celllib.Library
module Partition = Iddq_core.Partition

(* ---------------- Bitvec word-index bounds (regressions) ------------- *)

let raises_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_word_bounds_len0 () =
  let v = Bitvec.create 0 in
  Alcotest.(check int) "no words" 0 (Bitvec.num_words v);
  raises_invalid "word 0 of empty" (fun () -> Bitvec.word v 0);
  raises_invalid "word -1 of empty" (fun () -> Bitvec.word v (-1));
  raises_invalid "set_word 0 of empty" (fun () -> Bitvec.set_word v 0 1L);
  raises_invalid "set_word -1 of empty" (fun () -> Bitvec.set_word v (-1) 1L)

let test_word_bounds_multiple_of_64 () =
  (* len mod 64 = 0: the last word is full, there is no tail word *)
  let v = Bitvec.create 128 in
  Alcotest.(check int) "two words" 2 (Bitvec.num_words v);
  Bitvec.set_word v 1 Int64.minus_one;
  Alcotest.(check int64) "full word survives unmasked" Int64.minus_one
    (Bitvec.word v 1);
  Alcotest.(check int) "count" 64 (Bitvec.count v);
  raises_invalid "word 2" (fun () -> Bitvec.word v 2);
  raises_invalid "set_word 2" (fun () -> Bitvec.set_word v 2 1L);
  raises_invalid "word -1" (fun () -> Bitvec.word v (-1))

let test_set_word_masks_tail () =
  let v = Bitvec.create 65 in
  Bitvec.set_word v 1 Int64.minus_one;
  Alcotest.(check int64) "tail masked to 1 bit" 1L (Bitvec.word v 1);
  Alcotest.(check int) "count" 1 (Bitvec.count v)

(* ---------------- Bitvec vs bool-array model (qcheck) ---------------- *)

let bits_gen =
  QCheck.make
    ~print:(fun (len, _) -> Printf.sprintf "len=%d" len)
    QCheck.Gen.(
      int_range 0 200 >>= fun len ->
      list_size (int_range 0 64) (int_range 0 (Stdlib.max 0 (len - 1)))
      >>= fun sets -> return (len, sets))

let qcheck_bitvec_matches_model =
  QCheck.Test.make ~name:"bitvec matches bool-array model" ~count:200 bits_gen
    (fun (len, sets) ->
      let v = Bitvec.create len in
      let model = Array.make len false in
      List.iter
        (fun i ->
          if len > 0 then begin
            Bitvec.set v i;
            model.(i) <- true
          end)
        sets;
      let gets_ok =
        Array.for_all Fun.id (Array.init len (fun i -> Bitvec.get v i = model.(i)))
      in
      let count_ok =
        Bitvec.count v
        = Array.fold_left (fun a b -> if b then a + 1 else a) 0 model
      in
      let first_model =
        let rec scan i =
          if i >= len then -1 else if model.(i) then i else scan (i + 1)
        in
        scan 0
      in
      let words_ok =
        (* every stored word reconstructs the model bit-for-bit *)
        let ok = ref true in
        for w = 0 to Bitvec.num_words v - 1 do
          let word = Bitvec.word v w in
          for k = 0 to 63 do
            let i = (w * 64) + k in
            let bit = Int64.logand (Int64.shift_right_logical word k) 1L = 1L in
            let expected = i < len && model.(i) in
            if bit <> expected then ok := false
          done
        done;
        !ok
      in
      gets_ok && count_ok && Bitvec.first_set v = first_model && words_ok)

let qcheck_bitvec_set_word_roundtrip =
  QCheck.Test.make ~name:"set_word/word roundtrip respects the tail" ~count:200
    QCheck.(pair (int_range 1 200) (map Int64.of_int int))
    (fun (len, pattern) ->
      let v = Bitvec.create len in
      let w = Bitvec.num_words v - 1 in
      Bitvec.set_word v w pattern;
      let stored = Bitvec.word v w in
      (* stored = pattern masked to the bits that exist *)
      let ok = ref true in
      for k = 0 to 63 do
        let i = (w * 64) + k in
        let bit = Int64.logand (Int64.shift_right_logical stored k) 1L = 1L in
        let expected =
          i < len && Int64.logand (Int64.shift_right_logical pattern k) 1L = 1L
        in
        if bit <> expected then ok := false
      done;
      !ok && Bitvec.count v <= len)

(* ---------------- CSR circuit vs its boxed view (qcheck) ------------- *)

let dag_gen =
  QCheck.make
    ~print:(fun (g, s) -> Printf.sprintf "gates=%d seed=%d" g s)
    QCheck.Gen.(pair (int_range 10 120) (int_range 1 1_000_000))

let qcheck_csr_circuit_consistent =
  QCheck.Test.make ~name:"CSR circuit: views, inverse adjacency, validate"
    ~count:60 dag_gen (fun (gates, seed) ->
      let rng = Rng.create seed in
      let c =
        Generator.layered_dag ~rng ~name:"k" ~num_inputs:5 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 6)) ()
      in
      let n = Circuit.num_nodes c in
      let valid = Circuit.validate c = Ok () in
      (* boxed views agree with the allocation-free iterators *)
      let views_ok = ref true in
      for id = 0 to n - 1 do
        let fi = ref [] in
        Circuit.iter_fanins c id (fun s -> fi := s :: !fi);
        if Array.of_list (List.rev !fi) <> Circuit.fanins c id then
          views_ok := false;
        let fo = ref [] in
        Circuit.iter_fanouts c id (fun s -> fo := s :: !fo);
        if Array.of_list (List.rev !fo) <> Circuit.fanouts c id then
          views_ok := false;
        if Circuit.is_gate c id then begin
          match Circuit.node c id with
          | Circuit.Gate (k, fanins) ->
            if Gate.code k <> Circuit.kind_code c id then views_ok := false;
            if fanins <> Circuit.fanins c id then views_ok := false
          | Circuit.Input -> views_ok := false
        end
      done;
      (* fanouts are exactly the inverse of fanins (multiset), sorted
         ascending by sink *)
      let inverse_ok = ref true in
      let expected = Array.make n [] in
      for id = n - 1 downto 0 do
        Circuit.iter_fanins c id (fun src ->
            expected.(src) <- id :: expected.(src))
      done;
      for id = 0 to n - 1 do
        if Array.to_list (Circuit.fanouts c id) <> List.sort compare expected.(id)
        then inverse_ok := false
      done;
      valid && !views_ok && !inverse_ok)

(* ---------------- zero-allocation packed evaluation ------------------ *)

let test_eval_block_allocation_free () =
  let rng = Rng.create 99 in
  let c =
    Generator.layered_dag ~rng ~name:"alloc" ~num_inputs:32 ~num_outputs:16
      ~num_gates:2_000 ~depth:30 ()
  in
  let vectors = Pattern_gen.random ~rng c ~count:128 in
  let packed = P.pack_all vectors in
  let scratch = P.create_scratch c in
  (* warm up: first call may fault pages / fill the scratch *)
  for b = 0 to P.num_blocks packed - 1 do
    P.eval_block c scratch packed ~block:b
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 50 do
    for b = 0 to P.num_blocks packed - 1 do
      P.eval_block c scratch packed ~block:b
    done
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check (float 0.0)) "minor words allocated across 100 block evals"
    0.0 delta

let test_eval_stripe_allocation_free () =
  let rng = Rng.create 77 in
  let c =
    Generator.layered_dag ~rng ~name:"salloc" ~num_inputs:32 ~num_outputs:16
      ~num_gates:2_000 ~depth:30 ()
  in
  let vectors = Pattern_gen.random ~rng c ~count:256 in
  let packed = P.pack_all vectors in
  let nb = P.num_blocks packed in
  let n = Circuit.num_nodes c in
  let sched = Level_schedule.of_circuit c in
  let dst : P.ba =
    Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (n * nb)
  in
  Bigarray.Array1.fill dst 0L;
  P.eval_stripe_into c sched packed ~block0:0 ~width:nb ~stride:nb ~dst;
  let before = Gc.minor_words () in
  for _ = 1 to 50 do
    P.eval_stripe_into c sched packed ~block0:0 ~width:nb ~stride:nb ~dst
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check (float 0.0))
    "minor words allocated across 50 striped full-matrix evals" 0.0 delta

(* ---------------- striped / domain kernels vs per-block -------------- *)

(* The vector counts cover the edge geometry: an empty set (zero
   blocks), exactly one full block, one block plus a one-vector tail,
   and a len mod 64 <> 0 multi-block set. *)
let stripe_vec_counts = [| 0; 1; 64; 65; 130 |]

let striped_gen =
  QCheck.make
    ~print:(fun (g, s, vi) ->
      Printf.sprintf "gates=%d seed=%d nvec=%d" g s stripe_vec_counts.(vi))
    QCheck.Gen.(
      triple (int_range 10 120) (int_range 1 1_000_000)
        (int_range 0 (Array.length stripe_vec_counts - 1)))

let qcheck_striped_matches_blockwise =
  QCheck.Test.make
    ~name:"striped and domain eval_all_into = per-block kernel" ~count:30
    striped_gen (fun (gates, seed, vi) ->
      let rng = Rng.create seed in
      let c =
        Generator.layered_dag ~rng ~name:"k" ~num_inputs:6 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 6)) ()
      in
      let vectors = Pattern_gen.random ~rng c ~count:stripe_vec_counts.(vi) in
      let p = P.pack_all vectors in
      let n = Circuit.num_nodes c in
      let nb = P.num_blocks p in
      (* reference: the levelized per-block kernel, block-major *)
      let reference : P.ba =
        Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (n * nb)
      in
      for b = 0 to nb - 1 do
        P.eval_block_into c p ~block:b ~dst:reference ~off:(b * n)
      done;
      let dst : P.ba =
        Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (n * nb)
      in
      let matches () =
        let ok = ref true in
        for id = 0 to n - 1 do
          for b = 0 to nb - 1 do
            if
              Bigarray.Array1.get dst ((id * nb) + b)
              <> Bigarray.Array1.get reference ((b * n) + id)
            then ok := false
          done
        done;
        !ok
      in
      (* serial striping at widths dividing and not dividing nb *)
      let serial_ok =
        List.for_all
          (fun w ->
            Bigarray.Array1.fill dst Int64.minus_one;
            P.eval_all_into ~stripe:w c p ~dst;
            nb = 0 || matches ())
          [ 1; 2; 3; 8 ]
      in
      (* domain paths: more stripes than domains (whole-stripe chunks)
         and fewer (per-level splitting) *)
      let domain_ok =
        Domain_pool.with_pool ~domains:3 (fun pool ->
            List.for_all
              (fun w ->
                Bigarray.Array1.fill dst Int64.minus_one;
                P.eval_all_into ~pool ~stripe:w c p ~dst;
                nb = 0 || matches ())
              [ 1; Stdlib.max 1 nb ])
      in
      serial_ok && domain_ok)

let qcheck_domain_faultsim_matches_boxed =
  QCheck.Test.make
    ~name:"multi-domain detection matrix and first detections = boxed oracle"
    ~count:15 striped_gen (fun (gates, seed, vi) ->
      let rng = Rng.create seed in
      let c =
        Generator.layered_dag ~rng ~name:"k" ~num_inputs:6 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 6)) ()
      in
      let vectors = Pattern_gen.random ~rng c ~count:stripe_vec_counts.(vi) in
      let faults =
        Fault.random_population ~rng c ~count:40 ~defect_current:2e-6
      in
      let measurable _ = true in
      let boxed =
        Fault_sim.detection_matrix_boxed_with c ~measurable ~vectors ~faults
      in
      List.for_all
        (fun domains ->
          let flat =
            Fault_sim.detection_matrix_with ~domains c ~measurable ~vectors
              ~faults
          in
          let first =
            Fault_sim.first_detections_with ~domains c ~measurable ~vectors
              ~faults
          in
          Fault_sim.equal flat boxed
          && Array.for_all Fun.id
               (Array.mapi
                  (fun f first_v ->
                    first_v = Bitvec.first_set flat.Fault_sim.rows.(f))
                  first))
        [ 1; 3 ])

(* ---------------- flat engine vs boxed oracle (qcheck) --------------- *)

let qcheck_flat_matches_boxed =
  QCheck.Test.make ~name:"flat detection matrix = boxed oracle" ~count:30
    dag_gen (fun (gates, seed) ->
      let rng = Rng.create seed in
      let c =
        Generator.layered_dag ~rng ~name:"k" ~num_inputs:6 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 6)) ()
      in
      let vectors = Pattern_gen.random ~rng c ~count:130 in
      let faults =
        Fault.random_population ~rng c ~count:40 ~defect_current:2e-6
      in
      let measurable _ = true in
      let flat =
        Fault_sim.detection_matrix_with c ~measurable ~vectors ~faults
      in
      let boxed =
        Fault_sim.detection_matrix_boxed_with c ~measurable ~vectors ~faults
      in
      let first =
        Fault_sim.first_detections_with c ~measurable ~vectors ~faults
      in
      (* fault dropping must agree with the first set bit of each row *)
      let first_ok =
        Array.for_all Fun.id
          (Array.mapi
             (fun f first_v -> first_v = Bitvec.first_set flat.Fault_sim.rows.(f))
             first)
      in
      Fault_sim.equal flat boxed && first_ok)

(* ---------------- incremental c3 vs full recomputation --------------- *)

let qcheck_incremental_c3_exact =
  QCheck.Test.make ~name:"incremental c3 = module_separation recomputation"
    ~count:30
    QCheck.(pair (int_range 20 80) (int_range 1 1_000_000))
    (fun (gates, seed) ->
      let rng = Rng.create seed in
      let c =
        Generator.layered_dag ~rng ~name:"c3" ~num_inputs:5 ~num_outputs:3
          ~num_gates:gates ~depth:(1 + (gates / 6)) ()
      in
      let ch = Charac.make ~library:Library.default c in
      let n = Charac.num_gates ch in
      let k = 2 + Rng.int rng 5 in
      let p =
        Partition.create ch ~assignment:(Array.init n (fun g -> g mod k))
      in
      for _ = 1 to 60 do
        let g = Rng.int rng n in
        let target = Rng.int rng k in
        if
          Partition.size p target > 0
          && Partition.size p (Partition.module_of_gate p g) > 1
        then Partition.move_gate p g target
      done;
      (* check_consistent recomputes every module's S(M) with
         Graph_algo.module_separation and demands exact equality *)
      match Partition.check_consistent p with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "inconsistent after moves: %s" e)

let tests =
  [
    Alcotest.test_case "bitvec word bounds: len 0" `Quick test_word_bounds_len0;
    Alcotest.test_case "bitvec word bounds: len mod 64 = 0" `Quick
      test_word_bounds_multiple_of_64;
    Alcotest.test_case "bitvec set_word masks tail" `Quick
      test_set_word_masks_tail;
    Alcotest.test_case "eval_block allocation-free" `Quick
      test_eval_block_allocation_free;
    Alcotest.test_case "eval_stripe allocation-free" `Quick
      test_eval_stripe_allocation_free;
    QCheck_alcotest.to_alcotest qcheck_bitvec_matches_model;
    QCheck_alcotest.to_alcotest qcheck_bitvec_set_word_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_csr_circuit_consistent;
    QCheck_alcotest.to_alcotest qcheck_striped_matches_blockwise;
    QCheck_alcotest.to_alcotest qcheck_domain_faultsim_matches_boxed;
    QCheck_alcotest.to_alcotest qcheck_flat_matches_boxed;
    QCheck_alcotest.to_alcotest qcheck_incremental_c3_exact;
  ]
