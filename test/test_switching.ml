module Charac = Iddq_analysis.Charac
module Switching = Iddq_analysis.Switching
module Iscas = Iddq_netlist.Iscas
module Circuit = Iddq_netlist.Circuit
module Generator = Iddq_netlist.Generator
module Library = Iddq_celllib.Library
module Cell = Iddq_celllib.Cell
module Gate = Iddq_netlist.Gate

let make circuit = Charac.make ~library:Library.default circuit

let gate_of c name =
  Circuit.gate_of_node c (Option.get (Circuit.node_id_of_name c name))

let nand_peak = (Library.cell Library.default Gate.Nand).Cell.peak_current

let test_c17_profile () =
  let circuit = Iscas.c17 () in
  let ch = make circuit in
  let all = Array.init 6 Fun.id in
  let profile = Switching.current_profile ch all in
  (* T sets: slot 1 = {10,11,16,19}, slot 2 = {16,19,22,23},
     slot 3 = {22,23} -> 4, 4, 2 NANDs *)
  Alcotest.(check (float 1e-12)) "slot1" (4.0 *. nand_peak) profile.(1);
  Alcotest.(check (float 1e-12)) "slot2" (4.0 *. nand_peak) profile.(2);
  Alcotest.(check (float 1e-12)) "slot3" (2.0 *. nand_peak) profile.(3);
  Alcotest.(check (float 1e-12)) "max" (4.0 *. nand_peak)
    (Switching.max_transient_current ch all)

let test_c17_counts () =
  let circuit = Iscas.c17 () in
  let ch = make circuit in
  let counts = Switching.count_profile ch (Array.init 6 Fun.id) in
  Alcotest.(check int) "slot1" 4 counts.(1);
  Alcotest.(check int) "slot2" 4 counts.(2);
  Alcotest.(check int) "slot3" 2 counts.(3)

let test_subgroup_profile () =
  let circuit = Iscas.c17 () in
  let ch = make circuit in
  (* module {10,16,22}: slot1 {10,16}, slot2 {16,22}, slot3 {22} *)
  let m = Array.map (gate_of circuit) [| "10"; "16"; "22" |] in
  let profile = Switching.current_profile ch m in
  Alcotest.(check (float 1e-12)) "slot1" (2.0 *. nand_peak) profile.(1);
  Alcotest.(check (float 1e-12)) "slot2" (2.0 *. nand_peak) profile.(2);
  Alcotest.(check (float 1e-12)) "slot3" (1.0 *. nand_peak) profile.(3)

let test_leakage_additive () =
  let circuit = Iscas.c17 () in
  let ch = make circuit in
  let one = Switching.leakage ch [| 0 |] in
  let all = Switching.leakage ch (Array.init 6 Fun.id) in
  Alcotest.(check (float 1e-18)) "six gates" (6.0 *. one) all

let test_discriminability () =
  let circuit = Iscas.c17 () in
  let ch = make circuit in
  let tech = Charac.technology ch in
  let d = Switching.discriminability ch [| 0; 1 |] in
  let expected =
    tech.Iddq_celllib.Technology.iddq_threshold
    /. Switching.leakage ch [| 0; 1 |]
  in
  Alcotest.(check (float 1e-6)) "d" expected d;
  Alcotest.(check bool) "empty group infinite" true
    (Switching.discriminability ch [||] = infinity)

let test_empty_group () =
  let circuit = Iscas.c17 () in
  let ch = make circuit in
  Alcotest.(check (float 0.0)) "max current 0" 0.0
    (Switching.max_transient_current ch [||]);
  Alcotest.(check (float 0.0)) "leak 0" 0.0 (Switching.leakage ch [||])

let test_cell_array_shapes () =
  (* the Fig. 2 property: row modules never stack current, column
     modules stack all of it *)
  let rows = 5 and cols = 4 in
  let circuit = Generator.cell_array ~rows ~cols in
  let ch = make circuit in
  let row r = Array.init cols (fun c -> Generator.cell_array_gate ~rows ~cols ~r ~c) in
  let col c = Array.init rows (fun r -> Generator.cell_array_gate ~rows ~cols ~r ~c) in
  let row_max = Switching.max_transient_current ch (row 0) in
  let col_max = Switching.max_transient_current ch (col 1) in
  Alcotest.(check bool)
    (Printf.sprintf "columns stack current (%.2e vs %.2e)" col_max row_max)
    true
    (col_max > 3.0 *. row_max)

let qcheck_union_monotone =
  QCheck.Test.make
    ~name:"merging groups never lowers max transient current" ~count:40
    QCheck.(pair (int_range 10 80) (int_range 1 100000))
    (fun (gates, seed) ->
      let rng = Iddq_util.Rng.create seed in
      let circuit =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:5 ~num_outputs:2
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let ch = make circuit in
      let a = Array.init (gates / 2) Fun.id in
      let b = Array.init (gates - (gates / 2)) (fun i -> (gates / 2) + i) in
      let union = Array.append a b in
      let m x = Switching.max_transient_current ch x in
      m union >= m a -. 1e-15 && m union >= m b -. 1e-15
      && m union <= m a +. m b +. 1e-15)

let qcheck_leakage_additive =
  QCheck.Test.make ~name:"leakage of disjoint union adds" ~count:40
    QCheck.(pair (int_range 10 60) (int_range 1 100000))
    (fun (gates, seed) ->
      let rng = Iddq_util.Rng.create seed in
      let circuit =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:5 ~num_outputs:2
          ~num_gates:gates ~depth:(1 + (gates / 8)) ()
      in
      let ch = make circuit in
      let a = Array.init (gates / 2) Fun.id in
      let b = Array.init (gates - (gates / 2)) (fun i -> (gates / 2) + i) in
      let union = Array.append a b in
      let l x = Switching.leakage ch x in
      Float.abs (l union -. (l a +. l b)) < 1e-15)

let tests =
  [
    Alcotest.test_case "c17 profile" `Quick test_c17_profile;
    Alcotest.test_case "c17 counts" `Quick test_c17_counts;
    Alcotest.test_case "subgroup profile" `Quick test_subgroup_profile;
    Alcotest.test_case "leakage additive" `Quick test_leakage_additive;
    Alcotest.test_case "discriminability" `Quick test_discriminability;
    Alcotest.test_case "empty group" `Quick test_empty_group;
    Alcotest.test_case "cell array shapes" `Quick test_cell_array_shapes;
    QCheck_alcotest.to_alcotest qcheck_union_monotone;
    QCheck_alcotest.to_alcotest qcheck_leakage_additive;
  ]
