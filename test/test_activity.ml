module Charac = Iddq_analysis.Charac
module Activity = Iddq_analysis.Activity
module Switching = Iddq_analysis.Switching
module Iscas = Iddq_netlist.Iscas
module Generator = Iddq_netlist.Generator
module Library = Iddq_celllib.Library
module Pattern_gen = Iddq_patterns.Pattern_gen
module Rng = Iddq_util.Rng

let make circuit = Charac.make ~library:Library.default circuit

let test_needs_two_vectors () =
  let ch = make (Iscas.c17 ()) in
  Alcotest.check_raises "one vector rejected"
    (Invalid_argument "Activity.measure: need at least two vectors") (fun () ->
      ignore
        (Activity.measure ch ~gates:[| 0 |]
           ~vectors:[| [| true; true; true; true; true |] |]))

let test_chain_full_toggle () =
  (* flipping the single input of a NOT-chain toggles every gate *)
  let circuit = Generator.chain ~length:6 () in
  let ch = make circuit in
  let gates = Array.init 6 Fun.id in
  let t =
    Activity.measure ch ~gates ~vectors:[| [| false |]; [| true |] |]
  in
  Alcotest.(check int) "all gates toggled" 6 t.Activity.toggles_per_pair.(0);
  (* each chain gate switches alone in its slot: the realized max is
     exactly one NOT-gate transient, matching the estimator *)
  Alcotest.(check (float 1e-15)) "realized = estimated for a chain"
    (Switching.max_transient_current ch gates)
    t.Activity.realized_max;
  Alcotest.(check (float 1e-6)) "pessimism ratio 1" 1.0
    (Activity.pessimism_ratio ch ~gates t)

let test_constant_vectors_no_activity () =
  let circuit = Generator.chain ~length:4 () in
  let ch = make circuit in
  let gates = Array.init 4 Fun.id in
  let t =
    Activity.measure ch ~gates ~vectors:[| [| true |]; [| true |]; [| true |] |]
  in
  Alcotest.(check (float 0.0)) "no realized current" 0.0 t.Activity.realized_max;
  Alcotest.(check int) "no toggles" 0 t.Activity.toggles_per_pair.(0);
  Alcotest.(check bool) "ratio infinite" true
    (Activity.pessimism_ratio ch ~gates t = infinity)

let test_estimator_upper_bounds_realization () =
  let rng = Rng.create 8 in
  let circuit =
    Generator.layered_dag ~rng ~name:"t" ~num_inputs:12 ~num_outputs:6
      ~num_gates:150 ~depth:12 ()
  in
  let ch = make circuit in
  let gates = Array.init 150 Fun.id in
  let vectors = Pattern_gen.random ~rng circuit ~count:32 in
  let t = Activity.measure ch ~gates ~vectors in
  Alcotest.(check bool) "estimate >= realized" true
    (Switching.max_transient_current ch gates >= t.Activity.realized_max -. 1e-15);
  Alcotest.(check bool) "ratio >= 1" true
    (Activity.pessimism_ratio ch ~gates t >= 1.0 -. 1e-9)

let qcheck_estimator_upper_bound =
  QCheck.Test.make
    ~name:"pessimistic estimator upper-bounds every realized profile"
    ~count:20
    QCheck.(pair (int_range 20 80) (int_range 1 100000))
    (fun (gates, seed) ->
      let rng = Rng.create seed in
      let circuit =
        Generator.layered_dag ~rng ~name:"q" ~num_inputs:8 ~num_outputs:4
          ~num_gates:gates ~depth:(1 + (gates / 10)) ()
      in
      let ch = make circuit in
      let group =
        Array.of_list
          (List.filter (fun _ -> Rng.bool rng) (List.init gates Fun.id))
      in
      if Array.length group = 0 then true
      else begin
        let vectors = Pattern_gen.random ~rng circuit ~count:12 in
        let t = Activity.measure ch ~gates:group ~vectors in
        let estimated = Switching.current_profile ch group in
        (* per-slot domination, not just the max *)
        Array.for_all Fun.id
          (Array.mapi
             (fun slot realized -> realized <= estimated.(slot) +. 1e-15)
             t.Activity.realized_profile)
      end)

let tests =
  [
    Alcotest.test_case "needs two vectors" `Quick test_needs_two_vectors;
    Alcotest.test_case "chain full toggle" `Quick test_chain_full_toggle;
    Alcotest.test_case "constant vectors" `Quick test_constant_vectors_no_activity;
    Alcotest.test_case "estimator upper bound" `Quick
      test_estimator_upper_bounds_realization;
    QCheck_alcotest.to_alcotest qcheck_estimator_upper_bound;
  ]
