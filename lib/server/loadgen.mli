(** Synthetic load generator for the resident service — the measuring
    half of `iddq_synth loadgen`.

    Drives [clients] concurrent connections from one thread: a
    non-blocking [Unix.select] loop (the mirror image of the server's)
    keeps every connection's pipeline topped up to [pipeline] in-flight
    requests and times each response.  The request mix is a fixed
    weighted distribution over the cheap session-cache-friendly
    operations — characterize, partition, diagnose, campaign_status,
    metrics — drawn from a {!Iddq_util.Rng} stream per client, so a
    run is reproducible from its seed.

    A setup phase over a blocking {!Client} loads the circuit, warms
    the session cache for every operation in the mix, and submits one
    tiny campaign for [campaign_status] to poll: the measured phase
    then exercises the {e transport} (framing, multiplexing,
    scheduling), not the synthesis pipeline. *)

type config = {
  socket : string;  (** A running server's socket path. *)
  clients : int;  (** Concurrent connections (min 1). *)
  requests : int;  (** Requests per client (min 1). *)
  pipeline : int;
      (** Client-side in-flight cap per connection (min 1).  Keep at
          or below the server's [max_pipeline] for a shed-free run. *)
  seed : int;  (** Mix-stream seed. *)
  deadline : float;  (** Overall wall-clock limit, seconds. *)
}

val config :
  socket:string ->
  ?clients:int ->
  ?requests:int ->
  ?pipeline:int ->
  ?seed:int ->
  ?deadline:float ->
  unit ->
  config
(** Defaults: 64 clients, 20 requests each, pipeline 1, seed 42,
    120 s deadline. *)

type totals = {
  clients : int;
  requests_sent : int;
  ok : int;  (** Responses carrying an [ok] payload. *)
  overloaded : int;  (** Responses shed with the [overloaded] code. *)
  failed : int;  (** Responses carrying any other error. *)
  elapsed : float;  (** Measured-phase wall-clock seconds. *)
  throughput : float;  (** Responses per second. *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

val run : config -> (totals, string) result
(** Execute setup then the measured phase.  [Error] on connection
    failure, unexpected EOF, a malformed response stream, or running
    past the deadline. *)

val totals_json : config -> totals -> Iddq_util.Json.t
(** The [BENCH_serve.json] payload: the configuration and every
    {!totals} field. *)

val pp_totals : Format.formatter -> totals -> unit
