(** Request/response vocabulary of the resident partition service.

    One request per frame, one response per frame.  A request is a
    JSON object [{"op": "...", "id": N?, ...parameters}]; the optional
    [id] is echoed in the response so clients may pipeline.  A
    response is [{"id": N?, "ok": payload}] or
    [{"id": N?, "error": {"code": "...", "message": "..."}}].

    Defaults mirror the CLI: seed 42, 64 vectors, 200 defects, 2 µA
    defect current, 1 campaign domain. *)

type request =
  | Load_circuit of { name : string option; bench : string option }
      (** Exactly one of [name] (a built-in
          {!Iddq_netlist.Iscas.by_name} circuit) or [bench] (inline
          ISCAS85 [.bench] text).  Answers with the session [handle]
          (the content hash) every later request refers to. *)
  | Characterize of { handle : string }
  | Partition of {
      handle : string;
      method_ : Iddq.Pipeline.method_;
      seed : int;
      module_size : int option;
      require_feasible : bool;
    }
  | Fault_sim of {
      handle : string;
      method_ : Iddq.Pipeline.method_;
      seed : int;
      vectors : int;
      defects : int;
      defect_current : float;  (** Amperes. *)
    }
  | Diagnose of {
      handle : string;
      method_ : Iddq.Pipeline.method_;
      seed : int;
      vectors : int;
      defects : int;
      defect_current : float;  (** Amperes. *)
      epsilon : float;
          (** Per-measurement flip probability, [0 <= e < 0.5];
              [0.] = noiseless exact matching. *)
      trials : int;  (** Monte-Carlo localization trials. *)
      top_k : int;  (** [k] for the top-[k] module accuracy. *)
    }
      (** Build the diagnosis engine ({!Iddq_diagnose.Diagnose}) for
          the handle's partition — sharing the partition and vector-set
          session cache with [fault_sim] — and answer with its
          diagnosability summary plus measured localization accuracy. *)
  | Testset of {
      handle : string;
      seed : int;
      random_vectors : int;  (** Random vectors before the PODEM top-up. *)
      max_backtracks : int;  (** Per-target PODEM backtrack limit. *)
      budget : int option;
          (** PODEM target-attempt cap; wire field [budget], [0] or
              absent = unlimited. *)
      strategy : Iddq_atpg.Atpg.strategy;
          (** Wire field [strategy]: ["greedy"], ["essential"] or
              ["refined"] (the default). *)
    }
      (** Generate and minimize a stuck-at test set for the handle's
          circuit via the {!Iddq_atpg.Atpg} facade.  Generation is
          memoized in the session cache keyed on everything {e except}
          [strategy], so strategy sweeps reuse one generated set and
          detection matrix.  Answers with vector counts before/after
          minimization, coverage, efficiency and the generation
          statistics. *)
  | Campaign_submit of { spec : string; domains : int }
      (** [spec] is campaign spec-file text ({!Iddq_campaign.Spec.parse}). *)
  | Campaign_status of { campaign : string }
  | Metrics
  | Shutdown

type error_code =
  | Bad_request  (** Missing/ill-typed parameters, bad configs, parse errors. *)
  | Unknown_op
  | Not_found  (** Unknown handle, circuit name, or campaign id. *)
  | Infeasible  (** [require_feasible] was set and the best partition is not. *)
  | Malformed_frame  (** Frame payload was not valid JSON. *)
  | Oversized_frame  (** Frame length above the server's cap. *)
  | Budget_exceeded  (** The request ran past the server's wall-clock budget. *)
  | Overloaded
      (** Load shed: the connection's pipeline-depth limit or the
          server's global queue-depth limit was hit.  The request was
          {e not} queued; retry after draining in-flight responses. *)
  | Internal

type error = { code : error_code; message : string }

val error : error_code -> string -> error
val code_to_string : error_code -> string
val code_of_string : string -> error_code option

val of_pipeline_error : Iddq.Pipeline.error -> error
(** Map the facade's structured error onto a wire error code. *)

val of_atpg_error : Iddq_atpg.Atpg.error -> error
(** Same for the ATPG facade: validation errors become [Bad_request],
    a PODEM budget exhaustion becomes [Budget_exceeded]. *)

(** {1 Requests} *)

val request_of_json :
  Iddq_util.Json.t -> (int option * request, int option * error) result
(** Decode a request frame.  The [int option] is the request [id],
    echoed even on errors when it could be read. *)

val request_to_json : ?id:int -> request -> Iddq_util.Json.t
(** Encode (used by clients and the fuzz corpus);
    [request_of_json (request_to_json ?id r) = Ok (id, r)]. *)

(** {1 Responses} *)

val ok_response : id:int option -> Iddq_util.Json.t -> Iddq_util.Json.t
val error_response : id:int option -> error -> Iddq_util.Json.t

val response_payload :
  Iddq_util.Json.t -> (Iddq_util.Json.t, error) result
(** Split a received response into its [ok] payload or [error]. *)

val response_id : Iddq_util.Json.t -> int option

val snapshot_json : Iddq_util.Metrics.snapshot -> Iddq_util.Json.t
(** The counter set as a JSON object (the [metrics] response payload
    core). *)
