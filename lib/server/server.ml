module Json = Iddq_util.Json

type t = {
  listen_fd : Unix.file_descr;
  socket : string;
  service : Service.t;
  max_frame : int;
  lock : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable conn_domains : unit Domain.t list;
  mutable stopping : bool;
}

let service t = t.service
let socket_path t = t.socket

let create ~socket ?(max_frame = Frame.default_max_frame) ?budget ?metrics ()
    =
  match
    (try if Sys.file_exists socket then Sys.remove socket
     with Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX socket);
       Unix.listen fd 16
     with e ->
       Unix.close fd;
       raise e);
    fd
  with
  | fd ->
    Ok
      {
        listen_fd = fd;
        socket;
        service = Service.create ?metrics ?budget ();
        max_frame;
        lock = Mutex.create ();
        conns = [];
        conn_domains = [];
        stopping = false;
      }
  | exception Unix.Unix_error (err, fn, _) ->
    Error
      (Printf.sprintf "cannot listen on %s: %s (%s)" socket
         (Unix.error_message err) fn)
  | exception Sys_error msg ->
    Error (Printf.sprintf "cannot listen on %s: %s" socket msg)

(* Write the whole frame; Unix.write may be partial. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let n = Unix.write fd b off (len - off) in
      go (off + n)
    end
  in
  go 0

let send fd json = write_all fd (Frame.encode json)

let shutdown t =
  Mutex.lock t.lock;
  let conns = if t.stopping then [] else t.conns in
  let was_stopping = t.stopping in
  t.stopping <- true;
  Mutex.unlock t.lock;
  if not was_stopping then begin
    (* wake a blocked accept: closing the listen fd from another
       domain does not interrupt it, but a dummy connection always
       does — the loop sees [stopping] and exits *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.socket)
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (* give blocked connection reads an EOF; their responses in
       flight still go out (only the receive side is shut) *)
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      conns
  end

let remove_conn t fd =
  Mutex.lock t.lock;
  t.conns <- List.filter (fun f -> f != fd) t.conns;
  Mutex.unlock t.lock;
  try Unix.close fd with Unix.Unix_error _ -> ()

let connection_loop t fd =
  let decoder = Frame.create ~max_frame:t.max_frame () in
  let buf = Bytes.create 4096 in
  let rec drain () =
    match Frame.next decoder with
    | None -> `More
    | Some (Frame.Frame j) -> begin
      let resp, what = Service.handle t.service j in
      send fd resp;
      match what with
      | `Shutdown ->
        shutdown t;
        `Close
      | `Continue -> drain ()
    end
    | Some (Frame.Malformed msg) ->
      send fd
        (Protocol.error_response ~id:None
           (Protocol.error Protocol.Malformed_frame ("bad frame payload: " ^ msg)));
      drain ()
    | Some (Frame.Oversized n) ->
      send fd
        (Protocol.error_response ~id:None
           (Protocol.error Protocol.Oversized_frame
              (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" n
                 t.max_frame)));
      `Close
  in
  let rec read_loop () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()  (* client hung up (possibly mid-frame) *)
    | n -> begin
      Frame.feed_sub decoder buf 0 n;
      match drain () with `More -> read_loop () | `Close -> ()
    end
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
      ->
      ()
  in
  Fun.protect ~finally:(fun () -> remove_conn t fd) read_loop

let run t =
  let rec accept_loop () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
      Mutex.lock t.lock;
      if t.stopping then begin
        Mutex.unlock t.lock;
        (try Unix.close fd with Unix.Unix_error _ -> ())
      end
      else begin
        t.conns <- fd :: t.conns;
        let d = Domain.spawn (fun () -> connection_loop t fd) in
        t.conn_domains <- d :: t.conn_domains;
        Mutex.unlock t.lock
      end;
      if not t.stopping then accept_loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ();
  shutdown t;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* join connection domains; the list only grows from the (finished)
     accept loop, so this snapshot is complete *)
  Mutex.lock t.lock;
  let domains = t.conn_domains in
  t.conn_domains <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join domains;
  Service.stop t.service;
  try if Sys.file_exists t.socket then Sys.remove t.socket
  with Sys_error _ -> ()
