module Json = Iddq_util.Json
module Metrics = Iddq_util.Metrics
module Domain_pool = Iddq_util.Domain_pool

(* ------------------------------------------------------------------ *)
(* Creation errors                                                     *)
(* ------------------------------------------------------------------ *)

type create_error =
  | Address_in_use of string
  | Cannot_listen of { socket : string; message : string }

let create_error_to_string = function
  | Address_in_use socket ->
    Printf.sprintf "%s: address already in use (a live server answers on it)"
      socket
  | Cannot_listen { socket; message } ->
    Printf.sprintf "cannot listen on %s: %s" socket message

(* ------------------------------------------------------------------ *)
(* Connection state (owned by the event loop; the [pending] queue and
   [executing]/[alive] flags are shared with workers under the
   scheduler lock)                                                     *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  decoder : Frame.decoder;
  wbuf : Netbuf.t;  (* encoded responses awaiting the socket *)
  mutable inflight : int;  (* admitted requests not yet answered *)
  mutable read_open : bool;  (* still decoding new requests *)
  mutable close_after_flush : bool;
  (* shared with workers, under the scheduler lock: *)
  pending : Json.t Queue.t;  (* admitted requests not yet claimed *)
  mutable executing : bool;  (* a worker holds one of our requests *)
  mutable alive : bool;  (* false once the event loop dropped us *)
}

type t = {
  listen_fd : Unix.file_descr;
  socket : string;
  service : Service.t;
  metrics : Metrics.t;
  max_frame : int;
  max_pipeline : int;
  max_queue : int;
  drain_timeout : float;
  pool : Domain_pool.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  (* scheduler state, under [m] *)
  m : Mutex.t;
  work_cv : Condition.t;
  ring : conn Queue.t;  (* round-robin of conns with claimable work *)
  completions : (conn * string * [ `Continue | `Shutdown ]) Queue.t;
  mutable queued : int;  (* pending requests across all conns *)
  mutable halt_workers : bool;
  mutable stop_requested : bool;  (* external shutdown ask *)
  mutable wake_open : bool;
}

let service t = t.service
let socket_path t = t.socket

let default_max_pipeline = 8
let default_max_queue = 256

(* ------------------------------------------------------------------ *)
(* create: probe-then-bind                                             *)
(* ------------------------------------------------------------------ *)

(* A connect that succeeds means a live server owns the path; a
   refused/failed connect means the path is stale (or not a socket at
   all) and safe to replace. *)
let probe_live socket =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | fd ->
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    live

let create ~socket ?(max_frame = Frame.default_max_frame) ?(workers = 2)
    ?(max_pipeline = default_max_pipeline) ?(max_queue = default_max_queue)
    ?(drain_timeout = 5.0) ?budget ?metrics ?cache_entries () =
  if Sys.file_exists socket && probe_live socket then
    Error (Address_in_use socket)
  else
    match
      (try if Sys.file_exists socket then Sys.remove socket
       with Sys_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX socket);
         Unix.listen fd 64;
         Unix.set_nonblock fd
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      let wake_r, wake_w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock wake_r;
      Unix.set_nonblock wake_w;
      (fd, wake_r, wake_w)
    with
    | listen_fd, wake_r, wake_w ->
      let service = Service.create ?metrics ?budget ?cache_entries () in
      Ok
        {
          listen_fd;
          socket;
          service;
          metrics = Service.metrics service;
          max_frame;
          max_pipeline = Stdlib.max 1 max_pipeline;
          max_queue = Stdlib.max 1 max_queue;
          drain_timeout;
          pool = Domain_pool.create ~domains:(Stdlib.max 1 workers);
          wake_r;
          wake_w;
          m = Mutex.create ();
          work_cv = Condition.create ();
          ring = Queue.create ();
          completions = Queue.create ();
          queued = 0;
          halt_workers = false;
          stop_requested = false;
          wake_open = true;
        }
    | exception Unix.Unix_error (err, fn, _) ->
      Error
        (Cannot_listen
           {
             socket;
             message = Printf.sprintf "%s (%s)" (Unix.error_message err) fn;
           })
    | exception Sys_error message -> Error (Cannot_listen { socket; message })

(* ------------------------------------------------------------------ *)
(* Waking the event loop from another domain                           *)
(* ------------------------------------------------------------------ *)

let wake_byte = Bytes.make 1 '!'

(* Nonblocking: a full pipe already guarantees a pending wake-up.
   The write happens under the lock so [run]'s teardown (which clears
   [wake_open] under the same lock before closing the pipe) can never
   race us into a recycled descriptor. *)
let wake t =
  Mutex.lock t.m;
  (if t.wake_open then
     match Unix.write t.wake_w wake_byte 0 1 with
     | _ -> ()
     | exception Unix.Unix_error _ -> ());
  Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  t.stop_requested <- true;
  Mutex.unlock t.m;
  wake t

(* ------------------------------------------------------------------ *)
(* Workers: claim one request per conn in ring order (per-client
   round-robin), answer through the completion queue.  A conn is in
   the ring exactly when it is alive, has pending requests, and no
   worker is already serving it — so responses to one connection stay
   in request order and no client monopolizes the crew.               *)
(* ------------------------------------------------------------------ *)

let worker_loop t =
  let rec loop () =
    Mutex.lock t.m;
    while (not t.halt_workers) && Queue.is_empty t.ring do
      Condition.wait t.work_cv t.m
    done;
    if Queue.is_empty t.ring then Mutex.unlock t.m (* halted, drained *)
    else begin
      let c = Queue.pop t.ring in
      if (not c.alive) || Queue.is_empty c.pending then begin
        Mutex.unlock t.m;
        loop ()
      end
      else begin
        let j = Queue.pop c.pending in
        t.queued <- t.queued - 1;
        c.executing <- true;
        Mutex.unlock t.m;
        let resp, what =
          (* [Service.handle] isolates handler exceptions itself; this
             is the last line of defense — a raise here would kill the
             crew and resurface at [Domain.join], the exact teardown
             bug this server exists to prevent. *)
          try Service.handle t.service j
          with e ->
            ( Protocol.error_response ~id:(Protocol.response_id j)
                (Protocol.error Protocol.Internal (Printexc.to_string e)),
              `Continue )
        in
        let bytes = Frame.encode resp in
        Mutex.lock t.m;
        c.executing <- false;
        if c.alive && not (Queue.is_empty c.pending) then begin
          Queue.push c t.ring;
          Condition.signal t.work_cv
        end;
        Queue.push (c, bytes, what) t.completions;
        Mutex.unlock t.m;
        wake t;
        loop ()
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

type loop_state = {
  conns : (Unix.file_descr, conn) Hashtbl.t;
  mutable accepting : bool;
  mutable stopping : bool;
  mutable drain_deadline : float;  (* meaningful once stopping *)
  mutable admitted : int;  (* requests admitted, completions not drained *)
}

let queue_out t conn bytes =
  Netbuf.append_string conn.wbuf bytes;
  Metrics.record_wbuf t.metrics (Netbuf.length conn.wbuf)

let kill t st conn =
  if conn.alive then begin
    Mutex.lock t.m;
    conn.alive <- false;
    (* requests never claimed die with the connection *)
    let dropped = Queue.length conn.pending in
    Queue.clear conn.pending;
    t.queued <- t.queued - dropped;
    Mutex.unlock t.m;
    st.admitted <- st.admitted - dropped;
    Hashtbl.remove st.conns conn.fd;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Close once nothing is owed: no admitted request can still produce a
   response and the write buffer is flushed. *)
let maybe_close t st conn =
  if
    conn.alive && conn.close_after_flush && conn.inflight = 0
    && Netbuf.is_empty conn.wbuf
  then kill t st conn

let shed_response t conn j =
  Metrics.record_shed t.metrics;
  let id = Protocol.response_id j in
  queue_out t conn
    (Frame.encode
       (Protocol.error_response ~id
          (Protocol.error Protocol.Overloaded
             (Printf.sprintf
                "load shed: %d requests in flight on this connection (cap %d), \
                 %d queued server-wide (cap %d)"
                conn.inflight t.max_pipeline t.queued t.max_queue))))

let admit t st conn j =
  Mutex.lock t.m;
  let global_full = t.queued >= t.max_queue in
  if global_full || conn.inflight >= t.max_pipeline then begin
    Mutex.unlock t.m;
    shed_response t conn j
  end
  else begin
    conn.inflight <- conn.inflight + 1;
    st.admitted <- st.admitted + 1;
    Queue.push j conn.pending;
    t.queued <- t.queued + 1;
    Metrics.record_queue_depth t.metrics t.queued;
    if (not conn.executing) && Queue.length conn.pending = 1 then begin
      Queue.push conn t.ring;
      Condition.signal t.work_cv
    end;
    Mutex.unlock t.m
  end

let rec drain_decoder t st conn =
  if conn.read_open then
    match Frame.next conn.decoder with
    | None -> ()
    | Some (Frame.Frame j) ->
      admit t st conn j;
      drain_decoder t st conn
    | Some (Frame.Malformed msg) ->
      queue_out t conn
        (Frame.encode
           (Protocol.error_response ~id:None
              (Protocol.error Protocol.Malformed_frame
                 ("bad frame payload: " ^ msg))));
      drain_decoder t st conn
    | Some (Frame.Oversized n) ->
      queue_out t conn
        (Frame.encode
           (Protocol.error_response ~id:None
              (Protocol.error Protocol.Oversized_frame
                 (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" n
                    t.max_frame))));
      (* the decoder is poisoned: stop reading, answer, close *)
      conn.read_open <- false;
      conn.close_after_flush <- true

let read_conn t st conn rbuf =
  match Unix.read conn.fd rbuf 0 (Bytes.length rbuf) with
  | 0 ->
    (* EOF; anything already admitted still gets flushed *)
    conn.read_open <- false;
    conn.close_after_flush <- true;
    maybe_close t st conn
  | n ->
    Frame.feed_sub conn.decoder rbuf 0 n;
    drain_decoder t st conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error (_, _, _) ->
    (* ECONNRESET and friends: the peer is gone *)
    kill t st conn

let write_conn t st conn =
  let buf, off, len = Netbuf.peek conn.wbuf in
  if len > 0 then begin
    match Unix.write conn.fd buf off len with
    | n ->
      Netbuf.consume conn.wbuf n;
      maybe_close t st conn
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()  (* still in the write set; retried next iteration *)
    | exception Unix.Unix_error (_, _, _) ->
      (* EPIPE/ECONNRESET/EBADF: a dead client is a closed connection,
         never an escaped exception *)
      kill t st conn
  end

let rec accept_all t st =
  if st.accepting then
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      Hashtbl.replace st.conns fd
        {
          fd;
          decoder = Frame.create ~max_frame:t.max_frame ();
          wbuf = Netbuf.create ();
          inflight = 0;
          read_open = true;
          close_after_flush = false;
          pending = Queue.create ();
          executing = false;
          alive = true;
        };
      accept_all t st
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
      accept_all t st
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
      ()  (* descriptor pressure: let the loop retry after some close *)
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      st.accepting <- false

let initiate_stop t st =
  if not st.stopping then begin
    st.stopping <- true;
    st.drain_deadline <- Unix.gettimeofday () +. t.drain_timeout;
    if st.accepting then begin
      st.accepting <- false;
      try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
    end;
    (* no new requests; flush what is owed, then close every conn *)
    Hashtbl.iter
      (fun _ conn ->
        conn.read_open <- false;
        conn.close_after_flush <- true)
      st.conns;
    (* iterate over a snapshot: [maybe_close] removes from the table *)
    let snapshot = Hashtbl.fold (fun _ c acc -> c :: acc) st.conns [] in
    List.iter (fun conn -> maybe_close t st conn) snapshot
  end

let drain_wake_pipe t rbuf =
  let rec go () =
    match Unix.read t.wake_r rbuf 0 (Bytes.length rbuf) with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let drain_completions t st =
  Mutex.lock t.m;
  let batch = Queue.create () in
  Queue.transfer t.completions batch;
  Mutex.unlock t.m;
  let stop = ref false in
  Queue.iter
    (fun (conn, bytes, what) ->
      st.admitted <- st.admitted - 1;
      if conn.alive then begin
        conn.inflight <- conn.inflight - 1;
        queue_out t conn bytes;
        maybe_close t st conn
      end;
      if what = `Shutdown then stop := true)
    batch;
  if !stop then initiate_stop t st

let run t =
  (* a peer closing mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rbuf = Bytes.create 8192 in
  (* The worker crew rides the existing domain pool: one long-lived
     job whose chunks *are* the worker loops, so the pool's spawned
     domains serve requests for the server's lifetime and the barrier
     closes exactly when the crew is told to halt. *)
  let crew =
    Domain.spawn (fun () ->
        ignore
          (Domain_pool.run t.pool ~chunks:(Domain_pool.size t.pool) (fun _ ->
               worker_loop t)))
  in
  let st =
    {
      conns = Hashtbl.create 64;
      accepting = true;
      stopping = false;
      drain_deadline = infinity;
      admitted = 0;
    }
  in
  let finished () =
    st.stopping && st.admitted = 0 && Hashtbl.length st.conns = 0
  in
  while not (finished ()) do
    Mutex.lock t.m;
    let stop_asked = t.stop_requested in
    Mutex.unlock t.m;
    if stop_asked then initiate_stop t st;
    if not (finished ()) then begin
      let reads =
        t.wake_r
        :: (if st.accepting then [ t.listen_fd ] else [])
        @ Hashtbl.fold
            (fun fd conn acc -> if conn.read_open then fd :: acc else acc)
            st.conns []
      in
      let writes =
        Hashtbl.fold
          (fun fd conn acc ->
            if not (Netbuf.is_empty conn.wbuf) then fd :: acc else acc)
          st.conns []
      in
      let timeout =
        if st.stopping then
          Stdlib.max 0.01 (Stdlib.min 0.1 (st.drain_deadline -. Unix.gettimeofday ()))
        else -1.0
      in
      let readable, writable, _ =
        try Unix.select reads writes [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.memq t.wake_r readable then drain_wake_pipe t rbuf;
      drain_completions t st;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt st.conns fd with
          | Some conn -> write_conn t st conn
          | None -> ())
        writable;
      List.iter
        (fun fd ->
          if fd != t.wake_r && fd != t.listen_fd then
            match Hashtbl.find_opt st.conns fd with
            | Some conn -> if conn.read_open then read_conn t st conn rbuf
            | None -> ())
        readable;
      if st.accepting && List.memq t.listen_fd readable then accept_all t st;
      (* a client that never reads must not wedge shutdown *)
      if st.stopping && Unix.gettimeofday () > st.drain_deadline then begin
        let snapshot = Hashtbl.fold (fun _ c acc -> c :: acc) st.conns [] in
        List.iter (fun conn -> kill t st conn) snapshot
      end
    end
  done;
  if st.accepting then begin
    st.accepting <- false;
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end;
  (* halt the crew, close the wake pipe under the lock so a late
     [shutdown] from another domain never writes into a recycled fd *)
  Mutex.lock t.m;
  t.halt_workers <- true;
  t.wake_open <- false;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.m;
  Domain.join crew;
  Domain_pool.shutdown t.pool;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  Service.stop t.service;
  try if Sys.file_exists t.socket then Sys.remove t.socket
  with Sys_error _ -> ()
