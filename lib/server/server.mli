(** The `iddq_synth serve` daemon: a Unix-domain-socket transport
    around {!Service}.

    One [Domain] per accepted connection; the {!Service} (session
    cache, campaign registry, metrics) is shared by all of them.
    Connection-level failures degrade per the protocol contract:

    - a frame whose payload is not valid JSON gets a
      [malformed_frame] error response and the connection continues
      (length prefixing keeps the stream in sync);
    - a frame above the length cap gets an [oversized_frame] error
      response and the connection is closed (the payload is never
      buffered);
    - a client disconnecting — cleanly or mid-frame — closes only its
      own connection;
    - a [shutdown] request is answered, then the listener closes,
      remaining connections are drained, and {!run} returns.

    Descriptors are accounted strictly: every accepted socket is
    closed on every path out of its connection loop. *)

type t

val create :
  socket:string ->
  ?max_frame:int ->
  ?budget:float ->
  ?metrics:Iddq_util.Metrics.t ->
  unit ->
  (t, string) result
(** Bind and listen on [socket] (an existing socket file is replaced).
    [max_frame] caps frame payloads ({!Frame.default_max_frame});
    [budget] and [metrics] configure the {!Service}. *)

val service : t -> Service.t
val socket_path : t -> string

val run : t -> unit
(** Accept and serve until a [shutdown] request (or {!shutdown})
    arrives, then drain connections, join their domains, stop the
    service, and remove the socket file. *)

val shutdown : t -> unit
(** Ask a running {!run} to stop from another domain.  Idempotent. *)
