(** The `iddq_synth serve` daemon: a Unix-domain-socket transport
    around {!Service}.

    The transport is an event-driven multiplexer: one [Unix.select]
    loop owns the listener and every accepted socket (all
    non-blocking), feeds received bytes into a per-connection
    {!Frame.decoder}, and stages encoded responses in a
    per-connection write buffer ({!Netbuf}) drained with partial-write
    continuation as the socket accepts bytes.  Decoded requests are
    executed by a small worker crew riding the
    {!Iddq_util.Domain_pool}; finished responses come back to the
    event loop over a completion queue and a self-pipe wake-up.

    {2 Admission control}

    Every decoded request passes admission before it may queue:

    - at most [max_pipeline] requests per connection may be in flight
      (admitted, response not yet staged);
    - at most [max_queue] admitted requests server-wide may be waiting
      for a worker.

    A request refused by either limit is answered {e immediately} with
    an [overloaded] error (its [id] echoed) and is never queued — the
    connection stays usable.  Sheds and the queue/write-buffer
    high-water marks are recorded in the service's metrics.

    Workers take work per-{e connection}, round-robin, never serving
    one connection twice concurrently — responses stay in request
    order per client and a flooding client cannot starve the rest.

    {2 Failure handling}

    Connection-level failures degrade per the protocol contract:

    - a frame whose payload is not valid JSON gets a
      [malformed_frame] error response and the connection continues
      (length prefixing keeps the stream in sync);
    - a frame above the length cap gets an [oversized_frame] error
      response and the connection is closed after its write buffer
      flushes (the payload is never buffered);
    - a client disconnecting — cleanly, mid-frame, or before reading
      responses it is owed ([EPIPE]/[ECONNRESET] on write) — closes
      only its own connection; {!run} never re-raises transport
      errors;
    - a [shutdown] request is answered, then the listener closes,
      remaining connections are flushed (bounded by the drain
      timeout), and {!run} returns.

    Descriptors are accounted strictly: every accepted socket, the
    listener, and the wake-up pipe are closed by the time {!run}
    returns. *)

type t

type create_error =
  | Address_in_use of string
      (** The socket path is owned by a {e live} server: a probe
          connect succeeded.  {!create} never removes it. *)
  | Cannot_listen of { socket : string; message : string }
      (** bind/listen failed (permissions, path length, missing
          directory, ...). *)

val create_error_to_string : create_error -> string

val create :
  socket:string ->
  ?max_frame:int ->
  ?workers:int ->
  ?max_pipeline:int ->
  ?max_queue:int ->
  ?drain_timeout:float ->
  ?budget:float ->
  ?metrics:Iddq_util.Metrics.t ->
  ?cache_entries:int ->
  unit ->
  (t, create_error) result
(** Bind and listen on [socket].  An existing path is probed with a
    connect first: a live server answers [Error (Address_in_use _)];
    a stale socket file (connect refused) is replaced.

    [max_frame] caps frame payloads ({!Frame.default_max_frame});
    [workers] sizes the execution crew (default 2, min 1);
    [max_pipeline] (default 8) and [max_queue] (default 256) are the
    admission limits above; [drain_timeout] (default 5 s) bounds how
    long shutdown waits for unread responses before dropping the
    connections that own them; [budget], [metrics] and
    [cache_entries] (per-table session-cache bound, LRU eviction)
    configure the {!Service}. *)

val service : t -> Service.t
val socket_path : t -> string

val run : t -> unit
(** Drive the event loop until a [shutdown] request (or {!shutdown})
    arrives, then drain connections, halt and join the worker crew,
    stop the service, and remove the socket file.  Ignores [SIGPIPE]
    for the process. *)

val shutdown : t -> unit
(** Ask a running {!run} to stop from another domain.  Idempotent and
    safe after {!run} has returned. *)
