module Json = Iddq_util.Json
module Rng = Iddq_util.Rng
module Stats = Iddq_util.Stats

type config = {
  socket : string;
  clients : int;
  requests : int;
  pipeline : int;
  seed : int;
  deadline : float;
}

let config ~socket ?(clients = 64) ?(requests = 20) ?(pipeline = 1)
    ?(seed = 42) ?(deadline = 120.0) () =
  {
    socket;
    clients = Stdlib.max 1 clients;
    requests = Stdlib.max 1 requests;
    pipeline = Stdlib.max 1 pipeline;
    seed;
    deadline;
  }

type totals = {
  clients : int;
  requests_sent : int;
  ok : int;
  overloaded : int;
  failed : int;
  elapsed : float;
  throughput : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Request mix                                                         *)
(* ------------------------------------------------------------------ *)

let circuit = "C17"
let mix_method = Iddq.Pipeline.Standard
let mix_seed = 42

let diagnose ~handle =
  Protocol.Diagnose
    {
      handle;
      method_ = mix_method;
      seed = mix_seed;
      vectors = 16;
      defects = 20;
      defect_current = 2.0e-6;
      epsilon = 0.0;
      trials = 8;
      top_k = 2;
    }

let partition ~handle =
  Protocol.Partition
    {
      handle;
      method_ = mix_method;
      seed = mix_seed;
      module_size = None;
      require_feasible = false;
    }

(* characterize 35 / partition 25 / diagnose 15 / campaign_status 15 /
   metrics 10 *)
let pick rng ~handle ~campaign =
  let d = Rng.int rng 100 in
  if d < 35 then Protocol.Characterize { handle }
  else if d < 60 then partition ~handle
  else if d < 75 then diagnose ~handle
  else if d < 90 then Protocol.Campaign_status { campaign }
  else Protocol.Metrics

(* Warm every operation in the mix through a blocking client, so the
   measured phase hits the session cache and benchmarks the transport,
   not the synthesis pipeline.  Returns the circuit handle and the id
   of a submitted campaign for [campaign_status] to poll. *)
let setup (cfg : config) =
  let ( let* ) = Stdlib.Result.bind in
  let* cl = Client.connect ~socket:cfg.socket in
  let finally () = Client.close cl in
  let req what r =
    match Client.request cl r with
    | Ok payload -> Ok payload
    | Error e ->
      finally ();
      Error (Printf.sprintf "loadgen setup: %s: %s" what e)
  in
  let* load =
    req "load_circuit"
      (Protocol.Load_circuit { name = Some circuit; bench = None })
  in
  let* handle =
    match Option.bind (Json.member "handle" load) Json.to_str with
    | Some h -> Ok h
    | None ->
      finally ();
      Error "loadgen setup: load_circuit response lacks a handle"
  in
  let* _ = req "characterize" (Protocol.Characterize { handle }) in
  let* _ = req "partition" (partition ~handle) in
  let* _ = req "diagnose" (diagnose ~handle) in
  let spec =
    Printf.sprintf "circuits = %s\nmethods = standard\nseeds = %d\n" circuit
      mix_seed
  in
  let* submit =
    req "campaign_submit" (Protocol.Campaign_submit { spec; domains = 1 })
  in
  let* campaign =
    match Option.bind (Json.member "campaign" submit) Json.to_str with
    | Some c -> Ok c
    | None ->
      finally ();
      Error "loadgen setup: campaign_submit response lacks a campaign id"
  in
  finally ();
  Ok (handle, campaign)

(* ------------------------------------------------------------------ *)
(* Measured phase: one select loop over all client connections         *)
(* ------------------------------------------------------------------ *)

type cl = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  out : Netbuf.t;
  rng : Rng.t;
  sent_at : (int, float) Hashtbl.t;  (* request id -> send time *)
  mutable sent : int;
  mutable answered : int;
}

exception Fail of string

let connect_all (cfg : config) =
  List.init cfg.clients (fun i ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Unix.connect fd (Unix.ADDR_UNIX cfg.socket) with
      | () -> ()
      | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise
          (Fail
             (Printf.sprintf "loadgen: connect (client %d): %s" i
                (Unix.error_message err))));
      Unix.set_nonblock fd;
      {
        fd;
        dec = Frame.create ();
        out = Netbuf.create ();
        rng = Rng.derive (Rng.create cfg.seed) i;
        sent_at = Hashtbl.create 16;
        sent = 0;
        answered = 0;
      })

let top_up (cfg : config) ~handle ~campaign c =
  while c.sent < cfg.requests && c.sent - c.answered < cfg.pipeline do
    let id = c.sent in
    let r = pick c.rng ~handle ~campaign in
    Netbuf.append_string c.out (Frame.encode (Protocol.request_to_json ~id r));
    Hashtbl.replace c.sent_at id (Unix.gettimeofday ());
    c.sent <- c.sent + 1
  done

let flush_out c =
  let buf, off, len = Netbuf.peek c.out in
  if len > 0 then
    match Unix.write c.fd buf off len with
    | n -> Netbuf.consume c.out n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error (err, _, _) ->
      raise (Fail ("loadgen: write: " ^ Unix.error_message err))

let measure (cfg : config) ~handle ~campaign =
  let clients = connect_all cfg in
  let latencies = ref [] in
  let ok = ref 0 and overloaded = ref 0 and failed = ref 0 in
  let total = cfg.clients * cfg.requests in
  let answered_total = ref 0 in
  let rbuf = Bytes.create 65536 in
  let consume_response c j =
    let now = Unix.gettimeofday () in
    (match Protocol.response_id j with
    | None -> raise (Fail "loadgen: response without an id")
    | Some id -> begin
      match Hashtbl.find_opt c.sent_at id with
      | None -> raise (Fail (Printf.sprintf "loadgen: unknown response id %d" id))
      | Some t0 ->
        Hashtbl.remove c.sent_at id;
        latencies := (now -. t0) *. 1000.0 :: !latencies
    end);
    (match Protocol.response_payload j with
    | Ok _ -> incr ok
    | Error { Protocol.code = Protocol.Overloaded; _ } -> incr overloaded
    | Error _ -> incr failed);
    c.answered <- c.answered + 1;
    incr answered_total
  in
  let drain_decoder c =
    let rec go () =
      match Frame.next c.dec with
      | None -> ()
      | Some (Frame.Frame j) ->
        consume_response c j;
        go ()
      | Some (Frame.Malformed m) -> raise (Fail ("loadgen: bad response: " ^ m))
      | Some (Frame.Oversized n) ->
        raise (Fail (Printf.sprintf "loadgen: oversized response (%d bytes)" n))
    in
    go ()
  in
  let read_in c =
    match Unix.read c.fd rbuf 0 (Bytes.length rbuf) with
    | 0 -> raise (Fail "loadgen: server closed the connection early")
    | n ->
      Frame.feed_sub c.dec rbuf 0 n;
      drain_decoder c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error (err, _, _) ->
      raise (Fail ("loadgen: read: " ^ Unix.error_message err))
  in
  let started = Unix.gettimeofday () in
  let deadline = started +. cfg.deadline in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        clients)
    (fun () ->
      while !answered_total < total do
        if Unix.gettimeofday () > deadline then
          raise
            (Fail
               (Printf.sprintf
                  "loadgen: deadline (%.0f s) hit with %d/%d responses"
                  cfg.deadline !answered_total total));
        List.iter (top_up cfg ~handle ~campaign) clients;
        let reads =
          List.filter_map
            (fun c -> if c.answered < c.sent then Some c.fd else None)
            clients
        and writes =
          List.filter_map
            (fun c -> if not (Netbuf.is_empty c.out) then Some c.fd else None)
            clients
        in
        let readable, writable, _ =
          try Unix.select reads writes [] 0.25
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun c -> if List.memq c.fd writable then flush_out c)
          clients;
        List.iter (fun c -> if List.memq c.fd readable then read_in c) clients
      done;
      let elapsed = Unix.gettimeofday () -. started in
      let lat = Array.of_list !latencies in
      let pct p = if Array.length lat = 0 then 0.0 else Stats.percentile lat p in
      {
        clients = cfg.clients;
        requests_sent = total;
        ok = !ok;
        overloaded = !overloaded;
        failed = !failed;
        elapsed;
        throughput = (if elapsed > 0.0 then float_of_int total /. elapsed else 0.0);
        p50_ms = pct 50.0;
        p95_ms = pct 95.0;
        p99_ms = pct 99.0;
        max_ms = (if Array.length lat = 0 then 0.0 else snd (Stats.min_max lat));
      })

let run (cfg : config) =
  (* writes race client closes; see Server.run *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match setup cfg with
  | Error e -> Error e
  | Ok (handle, campaign) -> begin
    match measure cfg ~handle ~campaign with
    | totals -> Ok totals
    | exception Fail e -> Error e
  end

let totals_json (cfg : config) (t : totals) =
  Json.Obj
    [
      ("bench", Json.String "serve-loadgen");
      ("circuit", Json.String circuit);
      ("clients", Json.Int t.clients);
      ("requests_per_client", Json.Int cfg.requests);
      ("pipeline", Json.Int cfg.pipeline);
      ("seed", Json.Int cfg.seed);
      ("requests", Json.Int t.requests_sent);
      ("ok", Json.Int t.ok);
      ("overloaded", Json.Int t.overloaded);
      ("failed", Json.Int t.failed);
      ("elapsed_s", Json.Float t.elapsed);
      ("throughput_rps", Json.Float t.throughput);
      ("p50_ms", Json.Float t.p50_ms);
      ("p95_ms", Json.Float t.p95_ms);
      ("p99_ms", Json.Float t.p99_ms);
      ("max_ms", Json.Float t.max_ms);
    ]

let pp_totals fmt t =
  Format.fprintf fmt
    "@[<v>%d clients, %d requests: %d ok, %d overloaded, %d failed@,\
     %.2f s, %.1f req/s@,\
     latency p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f ms@]"
    t.clients t.requests_sent t.ok t.overloaded t.failed t.elapsed t.throughput
    t.p50_ms t.p95_ms t.p99_ms t.max_ms
