module Json = Iddq_util.Json
module Metrics = Iddq_util.Metrics
module Rng = Iddq_util.Rng
module Io_error = Iddq_util.Io_error
module Circuit = Iddq_netlist.Circuit
module Bench_io = Iddq_netlist.Bench_io
module Iscas = Iddq_netlist.Iscas
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Pipeline = Iddq.Pipeline
module Spec = Iddq_campaign.Spec
module Store = Iddq_campaign.Store
module Runner = Iddq_campaign.Runner

type campaign_state =
  | Running
  | Finished of Runner.outcome
  | Failed_run of string

type campaign = {
  state : campaign_state ref;
  store_path : string;
  jobs : int;
}

type t = {
  cache : Cache.t;
  metrics : Metrics.t;
  budget : float option;
  lock : Mutex.t;  (* campaign registry *)
  campaigns : (string, campaign) Hashtbl.t;
  mutable campaign_domains : unit Domain.t list;
  mutable next_campaign : int;
}

let create ?metrics ?library ?budget ?cache_entries () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  {
    cache = Cache.create ~metrics ?library ?max_entries:cache_entries ();
    metrics;
    budget;
    lock = Mutex.create ();
    campaigns = Hashtbl.create 8;
    campaign_domains = [];
    next_campaign = 0;
  }

let metrics t = t.metrics

(* FNV-1a over the cache key: the campaign runner's stream-derivation
   discipline applied to requests. *)
let fnv1a64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let derived_seed ~key ~seed =
  let stream = Int64.to_int (Int64.shift_right_logical (fnv1a64 key) 2) in
  let rng = Rng.derive (Rng.create seed) stream in
  Int64.to_int (Int64.shift_right_logical (Rng.bits64 rng) 2)

(* ------------------------------------------------------------------ *)
(* Payload builders                                                    *)
(* ------------------------------------------------------------------ *)

let circuit_payload ~handle c =
  let s = Circuit.stats c in
  Json.Obj
    [
      ("handle", Json.String handle);
      ("name", Json.String (Circuit.name c));
      ("inputs", Json.Int s.Circuit.s_inputs);
      ("outputs", Json.Int s.Circuit.s_outputs);
      ("gates", Json.Int s.Circuit.s_gates);
      ("depth", Json.Int s.Circuit.s_depth);
    ]

let partition_payload (r : Pipeline.t) =
  let sizes =
    List.map
      (fun id -> Partition.size r.Pipeline.partition id)
      (Partition.module_ids r.Pipeline.partition)
  in
  let b = r.Pipeline.breakdown in
  Json.Obj
    [
      ("method", Json.String (Pipeline.method_to_string r.Pipeline.method_used));
      ("modules", Json.Int (Partition.num_modules r.Pipeline.partition));
      ("module_sizes", Json.List (List.map (fun s -> Json.Int s) sizes));
      ("generations", Json.Int r.Pipeline.generations);
      ("cost", Json.Float b.Cost.penalized);
      ("feasible", Json.Bool b.Cost.feasible);
      ("sensor_area", Json.Float b.Cost.sensor_area);
      ("nominal_delay", Json.Float b.Cost.nominal_delay);
      ("bic_delay", Json.Float b.Cost.bic_delay);
      ("test_time_per_vector", Json.Float b.Cost.test_time_per_vector);
      ("min_discriminability", Json.Float b.Cost.min_discriminability);
    ]

let sim_payload (r : Iddq_defects.Iddq_sim.result) =
  Json.Obj
    [
      ("coverage", Json.Float r.Iddq_defects.Iddq_sim.coverage);
      ("test_time", Json.Float r.Iddq_defects.Iddq_sim.test_time);
    ]

(* ------------------------------------------------------------------ *)
(* Handlers                                                            *)
(* ------------------------------------------------------------------ *)

let find_circuit t handle =
  match Cache.find_circuit t.cache handle with
  | Some c -> Ok c
  | None ->
    Error
      (Protocol.error Protocol.Not_found
         (Printf.sprintf "unknown circuit handle %S (load_circuit first)"
            handle))

let load_circuit t ~name ~bench =
  match name, bench with
  | Some n, None -> begin
    match Iscas.by_name n with
    | Some c -> Ok (Cache.add_circuit t.cache c, c)
    | None ->
      Error
        (Protocol.error Protocol.Not_found
           (Printf.sprintf "unknown circuit %S (try %s)" n
              (String.concat ", " Iscas.names)))
  end
  | None, Some text -> begin
    match Bench_io.parse_string ~name:"client" text with
    | Ok c -> Ok (Cache.add_circuit t.cache c, c)
    | Error e ->
      Error
        (Protocol.error Protocol.Bad_request
           ("bench parse: " ^ Io_error.to_string e))
  end
  | _ ->
    (* request decoding enforces exactly-one; belt and braces *)
    Error (Protocol.error Protocol.Bad_request "need \"name\" xor \"bench\"")

let module_size_key = function None -> "-" | Some s -> string_of_int s

let run_partition t ~handle ~method_ ~seed ~module_size ~require_feasible c =
  let key =
    Printf.sprintf "%s:partition:%s:%s" handle
      (Pipeline.method_to_string method_)
      (module_size_key module_size)
  in
  let config =
    Pipeline.config
      ~seed:(derived_seed ~key ~seed)
      ?module_size ~metrics:t.metrics ()
  in
  let ch = Cache.charac t.cache ~handle c in
  Result.map_error Protocol.of_pipeline_error
    (Pipeline.run_charac_result ~config ~require_feasible method_ ch)

let fault_sim t ~handle ~method_ ~seed ~vectors ~defects ~defect_current c =
  match
    run_partition t ~handle ~method_ ~seed ~module_size:None
      ~require_feasible:false c
  with
  | Error e -> Error e
  | Ok r ->
    let vec_seed = derived_seed ~key:(handle ^ ":vectors") ~seed in
    let vs, _packed = Cache.vectors t.cache ~handle ~seed:vec_seed ~count:vectors c in
    let fault_rng = Rng.create (derived_seed ~key:(handle ^ ":faults") ~seed) in
    let faults =
      Iddq_defects.Fault.random_population ~rng:fault_rng c ~count:defects
        ~defect_current
    in
    let part =
      Iddq_defects.Iddq_sim.run_partitioned ~metrics:t.metrics
        r.Pipeline.partition ~vectors:vs ~faults
    in
    let single =
      Iddq_defects.Iddq_sim.run_single_sensor ~metrics:t.metrics
        r.Pipeline.charac ~vectors:vs ~faults
    in
    Ok
      (Json.Obj
         [
           ("handle", Json.String handle);
           ("defects", Json.Int defects);
           ("vectors", Json.Int vectors);
           ("modules", Json.Int (Partition.num_modules r.Pipeline.partition));
           ("partitioned", sim_payload part);
           ("single_sensor", sim_payload single);
         ])

let diagnose t ~handle ~method_ ~seed ~vectors ~defects ~defect_current
    ~epsilon ~trials ~top_k c =
  match
    run_partition t ~handle ~method_ ~seed ~module_size:None
      ~require_feasible:false c
  with
  | Error e -> Error e
  | Ok r ->
    (* The engine key omits the measurement parameters on purpose:
       epsilon/trials/top_k sweeps reuse one simulated matrix. *)
    let key =
      Printf.sprintf "%s:diagnose:%s:%d:%d:%d:%h" handle
        (Pipeline.method_to_string method_)
        seed vectors defects defect_current
    in
    (* Fetched before the diagnosis memo: the cache mutex is not
       re-entrant, so nesting the vectors lookup inside the compute
       closure would self-deadlock. *)
    let vec_seed = derived_seed ~key:(handle ^ ":vectors") ~seed in
    let vs, _packed =
      Cache.vectors t.cache ~handle ~seed:vec_seed ~count:vectors c
    in
    let engine =
      Cache.diagnosis t.cache ~key (fun () ->
          let fault_rng =
            Rng.create (derived_seed ~key:(handle ^ ":faults") ~seed)
          in
          let faults =
            Iddq_defects.Fault.random_population ~rng:fault_rng c
              ~count:defects ~defect_current
          in
          Iddq_diagnose.Diagnose.build ~metrics:t.metrics r.Pipeline.partition
            ~vectors:vs ~faults)
    in
    let s = Iddq_diagnose.Diagnose.diagnosability engine in
    (* Trials draw from a stream keyed by the full request, so replies
       are a pure function of the request whether or not the engine was
       cached. *)
    let trial_rng =
      Rng.create
        (derived_seed
           ~key:(Printf.sprintf "%s:trials:%h:%d:%d" key epsilon trials top_k)
           ~seed)
    in
    let acc =
      Iddq_diagnose.Diagnose.measure_accuracy ~rng:trial_rng ~epsilon ~top_k
        ~trials engine
    in
    Ok
      (Json.Obj
         [
           ("handle", Json.String handle);
           ("modules", Json.Int (Iddq_diagnose.Diagnose.num_modules engine));
           ("vectors", Json.Int vectors);
           ("faults", Json.Int s.Iddq_diagnose.Diagnose.faults);
           ("detectable", Json.Int s.Iddq_diagnose.Diagnose.detectable);
           ("classes", Json.Int s.Iddq_diagnose.Diagnose.classes);
           ("silent", Json.Int s.Iddq_diagnose.Diagnose.silent);
           ("max_class", Json.Int s.Iddq_diagnose.Diagnose.max_class);
           ( "expected_ambiguity",
             Json.Float s.Iddq_diagnose.Diagnose.expected_ambiguity );
           ("entropy_bits", Json.Float s.Iddq_diagnose.Diagnose.entropy_bits);
           ( "diagnosability_cost",
             Json.Float (Iddq_diagnose.Diagnose.c6_diagnosability engine) );
           ("epsilon", Json.Float epsilon);
           ("trials", Json.Int acc.Iddq_diagnose.Diagnose.trials);
           ("top_k", Json.Int top_k);
           ( "top1_class_accuracy",
             Json.Float acc.Iddq_diagnose.Diagnose.top1_class );
           ( "top1_module_accuracy",
             Json.Float acc.Iddq_diagnose.Diagnose.top1_module );
           ( "topk_module_accuracy",
             Json.Float acc.Iddq_diagnose.Diagnose.topk_module );
         ])

let testset t ~handle ~seed ~random_vectors ~max_backtracks ~budget ~strategy c
    =
  (* The generation key omits the strategy on purpose: the cached
     result carries the full-set detection matrix, so strategy sweeps
     re-minimize one generated set instead of re-running PODEM. *)
  let key =
    Printf.sprintf "%s:testset:%d:%d:%d:%d" handle seed random_vectors
      max_backtracks
      (match budget with None -> 0 | Some b -> b)
  in
  let generated =
    Cache.testset t.cache ~key (fun () ->
        let config =
          Iddq_atpg.Atpg.config ~max_backtracks ?budget
            ~strategy:Iddq_atpg.Atpg.Greedy
            ~seed:(derived_seed ~key ~seed) ~random_vectors ()
        in
        Iddq_atpg.Atpg.run_result ~config c)
  in
  match generated with
  | Error e -> Error (Protocol.of_atpg_error e)
  | Ok r -> begin
    let selection =
      if strategy = r.Iddq_atpg.Atpg.strategy then
        Ok r.Iddq_atpg.Atpg.selected
      else
        Iddq_atpg.Atpg.minimize_result ~strategy r.Iddq_atpg.Atpg.matrix
    in
    match selection with
    | Error e -> Error (Protocol.of_atpg_error e)
    | Ok selected ->
      let stats = r.Iddq_atpg.Atpg.stats in
      Ok
        (Json.Obj
           [
             ("handle", Json.String handle);
             ( "strategy",
               Json.String (Iddq_atpg.Atpg.strategy_to_string strategy) );
             ( "faults",
               Json.Int
                 (Iddq_defects.Coverage.num_faults r.Iddq_atpg.Atpg.matrix) );
             ("vectors_before", Json.Int r.Iddq_atpg.Atpg.vectors_before);
             ("vectors", Json.Int (Array.length selected));
             ("coverage", Json.Float r.Iddq_atpg.Atpg.coverage);
             ("efficiency", Json.Float r.Iddq_atpg.Atpg.efficiency);
             ("random", Json.Int stats.Iddq_atpg.Testset.random);
             ("generated", Json.Int stats.Iddq_atpg.Testset.generated);
             ("untestable", Json.Int stats.Iddq_atpg.Testset.untestable);
             ("aborted", Json.Int stats.Iddq_atpg.Testset.aborted);
             ("targeted", Json.Int stats.Iddq_atpg.Testset.targeted);
           ])
  end

let campaign_submit t ~spec ~domains =
  match Spec.parse spec with
  | Error e ->
    Error
      (Protocol.error Protocol.Bad_request ("spec parse: " ^ Io_error.to_string e))
  | Ok spec -> begin
    match Spec.validate spec with
    | Error e -> Error (Protocol.error Protocol.Bad_request ("invalid spec: " ^ e))
    | Ok () ->
      let store_path = Filename.temp_file "iddq-serve-campaign" ".jsonl" in
      let jobs = List.length (Spec.jobs spec) in
      let state = ref Running in
      let campaign_id =
        Mutex.lock t.lock;
        t.next_campaign <- t.next_campaign + 1;
        let id = Printf.sprintf "campaign-%d" t.next_campaign in
        Hashtbl.replace t.campaigns id { state; store_path; jobs };
        Mutex.unlock t.lock;
        id
      in
      let work () =
        let outcome =
          match Store.open_ store_path with
          | Error e -> Error ("store: " ^ Io_error.to_string e)
          | Ok store ->
            Fun.protect
              ~finally:(fun () -> Store.close store)
              (fun () ->
                match Runner.run ~domains ~store spec with
                | Ok o -> Ok o
                | Error e -> Error (Runner.error_to_string e))
        in
        Mutex.lock t.lock;
        (state :=
           match outcome with
           | Ok o -> Finished o
           | Error msg -> Failed_run msg);
        Mutex.unlock t.lock
      in
      let d =
        try Ok (Domain.spawn (fun () -> try work () with _ -> ()))
        with e -> Error (Printexc.to_string e)
      in
      begin
        match d with
        | Ok d ->
          Mutex.lock t.lock;
          t.campaign_domains <- d :: t.campaign_domains;
          Mutex.unlock t.lock;
          Ok
            (Json.Obj
               [
                 ("campaign", Json.String campaign_id);
                 ("jobs", Json.Int jobs);
                 ("store", Json.String store_path);
               ])
        | Error msg ->
          Error (Protocol.error Protocol.Internal ("spawn failed: " ^ msg))
      end
  end

let campaign_status t ~campaign =
  Mutex.lock t.lock;
  let entry = Hashtbl.find_opt t.campaigns campaign in
  let state = Option.map (fun c -> (c, !(c.state))) entry in
  Mutex.unlock t.lock;
  match state with
  | None ->
    Error
      (Protocol.error Protocol.Not_found
         (Printf.sprintf "unknown campaign %S" campaign))
  | Some (c, st) ->
    let base =
      [
        ("campaign", Json.String campaign);
        ("jobs", Json.Int c.jobs);
        ("store", Json.String c.store_path);
      ]
    in
    Ok
      (Json.Obj
         (base
         @
         match st with
         | Running -> [ ("state", Json.String "running") ]
         | Failed_run msg ->
           [ ("state", Json.String "failed"); ("message", Json.String msg) ]
         | Finished o ->
           [
             ("state", Json.String "done");
             ("executed", Json.Int o.Runner.executed);
             ("skipped", Json.Int o.Runner.skipped);
             ("ok", Json.Int o.Runner.ok);
             ("failed", Json.Int o.Runner.failed);
             ("timed_out", Json.Int o.Runner.timed_out);
           ]))

let metrics_payload t =
  let s = Cache.stats t.cache in
  Json.Obj
    [
      ("counters", Protocol.snapshot_json (Metrics.snapshot t.metrics));
      ( "cache",
        Json.Obj
          [
            ("circuits", Json.Int s.Cache.circuits);
            ("characs", Json.Int s.Cache.characs);
            ("vector_sets", Json.Int s.Cache.vector_sets);
            ("diagnoses", Json.Int s.Cache.diagnoses);
            ("testsets", Json.Int s.Cache.testsets);
          ] );
    ]

let dispatch t (req : Protocol.request) =
  match req with
  | Protocol.Load_circuit { name; bench } ->
    Result.map
      (fun (handle, c) -> circuit_payload ~handle c)
      (load_circuit t ~name ~bench)
  | Protocol.Characterize { handle } ->
    Result.map
      (fun c ->
        let ch = Cache.charac t.cache ~handle c in
        Json.Obj
          [
            ("handle", Json.String handle);
            ("gates", Json.Int (Iddq_analysis.Charac.num_gates ch));
            ("depth", Json.Int (Iddq_analysis.Charac.depth ch));
          ])
      (find_circuit t handle)
  | Protocol.Partition { handle; method_; seed; module_size; require_feasible }
    ->
    Result.bind (find_circuit t handle) (fun c ->
        Result.map partition_payload
          (run_partition t ~handle ~method_ ~seed ~module_size
             ~require_feasible c))
  | Protocol.Fault_sim { handle; method_; seed; vectors; defects; defect_current }
    ->
    Result.bind (find_circuit t handle) (fun c ->
        fault_sim t ~handle ~method_ ~seed ~vectors ~defects ~defect_current c)
  | Protocol.Diagnose
      {
        handle;
        method_;
        seed;
        vectors;
        defects;
        defect_current;
        epsilon;
        trials;
        top_k;
      } ->
    Result.bind (find_circuit t handle) (fun c ->
        diagnose t ~handle ~method_ ~seed ~vectors ~defects ~defect_current
          ~epsilon ~trials ~top_k c)
  | Protocol.Testset
      { handle; seed; random_vectors; max_backtracks; budget; strategy } ->
    Result.bind (find_circuit t handle) (fun c ->
        testset t ~handle ~seed ~random_vectors ~max_backtracks ~budget
          ~strategy c)
  | Protocol.Campaign_submit { spec; domains } ->
    campaign_submit t ~spec ~domains
  | Protocol.Campaign_status { campaign } -> campaign_status t ~campaign
  | Protocol.Metrics -> Ok (metrics_payload t)
  | Protocol.Shutdown -> Ok (Json.Obj [ ("shutting_down", Json.Bool true) ])

let handle t j =
  let t0 = Unix.gettimeofday () in
  let id, result, stop =
    match Protocol.request_of_json j with
    | Error (id, err) -> (id, Error err, false)
    | Ok (id, req) ->
      let result =
        (* runner-style isolation: an escaped exception is this
           request's error, never the connection's *)
        try dispatch t req
        with e ->
          Error (Protocol.error Protocol.Internal (Printexc.to_string e))
      in
      (id, result, req = Protocol.Shutdown)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let result =
    match t.budget, result with
    | Some limit, Ok _ when elapsed > limit && not stop ->
      Error
        (Protocol.error Protocol.Budget_exceeded
           (Printf.sprintf "request took %.3fs (budget %.3fs)" elapsed limit))
    | _ -> result
  in
  Metrics.record_request t.metrics ~ok:(Result.is_ok result) ~seconds:elapsed;
  let resp =
    match result with
    | Ok payload -> Protocol.ok_response ~id payload
    | Error err -> Protocol.error_response ~id err
  in
  (resp, if stop then `Shutdown else `Continue)

let stop t =
  Mutex.lock t.lock;
  let domains = t.campaign_domains in
  t.campaign_domains <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join domains
