(** Synchronous client for the daemon's framed-JSON protocol.  Used by
    the `iddq_synth client` subcommand, the serve-smoke check, and the
    integration tests. *)

type t

val connect : socket:string -> (t, string) result

val fd : t -> Unix.file_descr
(** The underlying socket, for tests that disconnect mid-frame. *)

val send : t -> Iddq_util.Json.t -> unit
(** Frame and write one request. *)

val send_raw : t -> string -> unit
(** Write raw bytes — for exercising malformed and truncated frames. *)

val recv : t -> (Iddq_util.Json.t, string) result
(** Read one response frame.  [Error] on EOF or a decode failure. *)

val request :
  t -> ?id:int -> Protocol.request -> (Iddq_util.Json.t, string) result
(** [send] then [recv]: returns the response's [ok] payload, or
    [Error] carrying the server's [error.message] (or a transport
    failure). *)

val close : t -> unit
