module Metrics = Iddq_util.Metrics
module Rng = Iddq_util.Rng
module Circuit = Iddq_netlist.Circuit
module Bench_io = Iddq_netlist.Bench_io
module Charac = Iddq_analysis.Charac
module Parallel_sim = Iddq_patterns.Parallel_sim

type t = {
  metrics : Metrics.t;
  library : Iddq_celllib.Library.t;
  lock : Mutex.t;
  circuits : (string, Circuit.t) Hashtbl.t;
  characs : (string, Charac.t) Hashtbl.t;
  vector_sets :
    (string * int * int, bool array array * Parallel_sim.packed) Hashtbl.t;
  diagnoses : (string, Iddq_diagnose.Diagnose.t) Hashtbl.t;
}

let create ?(metrics = Metrics.global)
    ?(library = Iddq_celllib.Library.default) () =
  {
    metrics;
    library;
    lock = Mutex.create ();
    circuits = Hashtbl.create 16;
    characs = Hashtbl.create 16;
    vector_sets = Hashtbl.create 16;
    diagnoses = Hashtbl.create 16;
  }

let handle_of_circuit c = Digest.to_hex (Digest.string (Bench_io.to_string c))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Memoize under the lock: a derived value is computed at most once,
   concurrent requests for the same key block on the computing one.
   The computations (characterization, vector packing) are linear in
   the circuit, far below any request's own optimization work. *)
let memo t table key compute =
  locked t (fun () ->
      match Hashtbl.find_opt table key with
      | Some v ->
        Metrics.record_server_cache t.metrics ~hit:true;
        v
      | None ->
        Metrics.record_server_cache t.metrics ~hit:false;
        let v = compute () in
        Hashtbl.replace table key v;
        v)

let add_circuit t c =
  let handle = handle_of_circuit c in
  ignore (memo t t.circuits handle (fun () -> c));
  handle

let find_circuit t handle =
  locked t (fun () -> Hashtbl.find_opt t.circuits handle)

let charac t ~handle c =
  memo t t.characs handle (fun () -> Charac.make ~library:t.library c)

let vectors t ~handle ~seed ~count c =
  memo t t.vector_sets (handle, seed, count) (fun () ->
      let rng = Rng.create seed in
      let vs = Iddq_patterns.Pattern_gen.random ~rng c ~count in
      (vs, Parallel_sim.pack_all vs))

let diagnosis t ~key compute = memo t t.diagnoses key compute

type stats = {
  circuits : int;
  characs : int;
  vector_sets : int;
  diagnoses : int;
}

let stats t =
  locked t (fun () ->
      {
        circuits = Hashtbl.length t.circuits;
        characs = Hashtbl.length t.characs;
        vector_sets = Hashtbl.length t.vector_sets;
        diagnoses = Hashtbl.length t.diagnoses;
      })
