module Metrics = Iddq_util.Metrics
module Rng = Iddq_util.Rng
module Circuit = Iddq_netlist.Circuit
module Bench_io = Iddq_netlist.Bench_io
module Charac = Iddq_analysis.Charac
module Parallel_sim = Iddq_patterns.Parallel_sim
module Atpg = Iddq_atpg.Atpg

(* Size-bounded table with least-recently-used eviction.  Recency is a
   global insertion/access tick per cell; eviction scans for the
   minimum tick — O(n) per eviction, and n is the (small) cap, so the
   scan is noise next to the cached computations (characterization,
   fault simulation).  Not domain-safe on its own: every use below sits
   under the cache's one lock. *)
module Lru = struct
  type ('k, 'v) t = {
    table : ('k, 'v * int ref) Hashtbl.t;
    mutable tick : int;
    cap : int;
  }

  let create cap = { table = Hashtbl.create 16; tick = 0; cap = max 1 cap }
  let length t = Hashtbl.length t.table

  let find_opt t k =
    match Hashtbl.find_opt t.table k with
    | None -> None
    | Some (v, cell) ->
      t.tick <- t.tick + 1;
      cell := t.tick;
      Some v

  (* Insert [k], evicting least-recently-used entries while at
     capacity.  Returns the number evicted (0 or 1 in practice). *)
  let insert t k v =
    let evicted = ref 0 in
    while Hashtbl.length t.table >= t.cap && not (Hashtbl.mem t.table k) do
      let victim =
        Hashtbl.fold
          (fun vk (_, cell) acc ->
            match acc with
            | Some (_, best) when best <= !cell -> acc
            | _ -> Some (vk, !cell))
          t.table None
      in
      match victim with
      | Some (vk, _) ->
        Hashtbl.remove t.table vk;
        incr evicted
      | None -> assert false (* at capacity >= 1 the table is non-empty *)
    done;
    t.tick <- t.tick + 1;
    Hashtbl.replace t.table k (v, ref t.tick);
    !evicted
end

type t = {
  metrics : Metrics.t;
  library : Iddq_celllib.Library.t;
  lock : Mutex.t;
  circuits : (string, Circuit.t) Lru.t;
  characs : (string, Charac.t) Lru.t;
  vector_sets :
    (string * int * int, bool array array * Parallel_sim.packed) Lru.t;
  diagnoses : (string, Iddq_diagnose.Diagnose.t) Lru.t;
  testsets : (string, (Atpg.set_result, Atpg.error) result) Lru.t;
}

let default_max_entries = 256

let create ?(metrics = Metrics.global)
    ?(library = Iddq_celllib.Library.default)
    ?(max_entries = default_max_entries) () =
  {
    metrics;
    library;
    lock = Mutex.create ();
    circuits = Lru.create max_entries;
    characs = Lru.create max_entries;
    vector_sets = Lru.create max_entries;
    diagnoses = Lru.create max_entries;
    testsets = Lru.create max_entries;
  }

let handle_of_circuit c = Digest.to_hex (Digest.string (Bench_io.to_string c))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Memoize under the lock: a derived value is computed at most once,
   concurrent requests for the same key block on the computing one.
   The computations (characterization, vector packing) are linear in
   the circuit, far below any request's own optimization work. *)
let memo t table key compute =
  locked t (fun () ->
      match Lru.find_opt table key with
      | Some v ->
        Metrics.record_server_cache t.metrics ~hit:true;
        v
      | None ->
        Metrics.record_server_cache t.metrics ~hit:false;
        let v = compute () in
        let evicted = Lru.insert table key v in
        if evicted > 0 then
          Metrics.record_cache_eviction ~count:evicted t.metrics;
        v)

let add_circuit t c =
  let handle = handle_of_circuit c in
  ignore (memo t t.circuits handle (fun () -> c));
  handle

let find_circuit t handle = locked t (fun () -> Lru.find_opt t.circuits handle)

let charac t ~handle c =
  memo t t.characs handle (fun () -> Charac.make ~library:t.library c)

let vectors t ~handle ~seed ~count c =
  memo t t.vector_sets (handle, seed, count) (fun () ->
      let rng = Rng.create seed in
      let vs = Iddq_patterns.Pattern_gen.random ~rng c ~count in
      (vs, Parallel_sim.pack_all vs))

let diagnosis t ~key compute = memo t t.diagnoses key compute
let testset t ~key compute = memo t t.testsets key compute

type stats = {
  circuits : int;
  characs : int;
  vector_sets : int;
  diagnoses : int;
  testsets : int;
}

let stats t =
  locked t (fun () ->
      {
        circuits = Lru.length t.circuits;
        characs = Lru.length t.characs;
        vector_sets = Lru.length t.vector_sets;
        diagnoses = Lru.length t.diagnoses;
        testsets = Lru.length t.testsets;
      })
