module Json = Iddq_util.Json

type t = { fd : Unix.file_descr; decoder : Frame.decoder }

let fd t = t.fd

let connect ~socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { fd; decoder = Frame.create () }
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket
         (Unix.error_message err))

let send_raw t s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write t.fd b off (len - off))
  in
  go 0

let send t json = send_raw t (Frame.encode json)

let recv t =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Frame.next t.decoder with
    | Some (Frame.Frame j) -> Ok j
    | Some (Frame.Malformed msg) -> Error ("bad response payload: " ^ msg)
    | Some (Frame.Oversized n) ->
      Error (Printf.sprintf "oversized response frame (%d bytes)" n)
    | None -> begin
      match Unix.read t.fd buf 0 (Bytes.length buf) with
      | 0 -> Error "connection closed by server"
      | n ->
        Frame.feed_sub t.decoder buf 0 n;
        go ()
      | exception Unix.Unix_error (err, _, _) ->
        Error ("read: " ^ Unix.error_message err)
    end
  in
  go ()

let request t ?id req =
  send t (Protocol.request_to_json ?id req);
  match recv t with
  | Error _ as e -> e
  | Ok resp -> (
    match Protocol.response_payload resp with
    | Ok payload -> Ok payload
    | Error e ->
      Error
        (Printf.sprintf "%s: %s"
           (Protocol.code_to_string e.Protocol.code)
           e.Protocol.message))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
