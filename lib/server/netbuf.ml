type t = {
  mutable buf : Bytes.t;
  mutable head : int;  (* first unconsumed byte *)
  mutable tail : int;  (* one past the last valid byte *)
}

let create ?(capacity = 256) () =
  { buf = Bytes.create (max 16 capacity); head = 0; tail = 0 }

let length t = t.tail - t.head
let is_empty t = t.tail = t.head

(* Make room for [n] more bytes at the tail.  Compact in place when
   the consumed prefix alone frees enough; otherwise grow by doubling
   (compacting into the fresh buffer).  Either way each live byte
   moves at most once per call, and calls that move bytes at least
   double the free tail room — O(1) amortized per appended byte. *)
let reserve t n =
  let cap = Bytes.length t.buf in
  if t.tail + n > cap then begin
    let len = length t in
    if len + n <= cap / 2 then begin
      Bytes.blit t.buf t.head t.buf 0 len;
      t.head <- 0;
      t.tail <- len
    end
    else begin
      let cap' = ref (max 16 (2 * cap)) in
      while len + n > !cap' do
        cap' := 2 * !cap'
      done;
      let b = Bytes.create !cap' in
      Bytes.blit t.buf t.head b 0 len;
      t.buf <- b;
      t.head <- 0;
      t.tail <- len
    end
  end

let append_sub t b off n =
  if off < 0 || n < 0 || off + n > Bytes.length b then
    invalid_arg "Netbuf.append_sub";
  if n > 0 then begin
    reserve t n;
    Bytes.blit b off t.buf t.tail n;
    t.tail <- t.tail + n
  end

let append_string t s =
  let n = String.length s in
  if n > 0 then begin
    reserve t n;
    Bytes.blit_string s 0 t.buf t.tail n;
    t.tail <- t.tail + n
  end

let get t i =
  if i < 0 || i >= length t then invalid_arg "Netbuf.get";
  Bytes.get t.buf (t.head + i)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then invalid_arg "Netbuf.sub";
  Bytes.sub_string t.buf (t.head + pos) len

let consume t n =
  if n < 0 || n > length t then invalid_arg "Netbuf.consume";
  t.head <- t.head + n;
  if t.head = t.tail then begin
    t.head <- 0;
    t.tail <- 0
  end

let peek t = (t.buf, t.head, length t)
