(** Socket-free request handler: the service's whole behaviour minus
    the transport, so tests drive it directly on JSON values.

    The handler applies the campaign runner's isolation discipline to
    every request: work runs under a per-request seed {e derived} from
    the request's seed and its cache key (so answers are reproducible
    whatever the client interleaving), an escaped exception becomes an
    [internal] error response instead of killing the connection, and
    a request running past the configured wall-clock budget is
    answered with [budget_exceeded] (checked on return — domains
    cannot be preempted).  Every request records its latency and
    outcome in the service's {!Iddq_util.Metrics.t}. *)

type t

val create :
  ?metrics:Iddq_util.Metrics.t ->
  ?library:Iddq_celllib.Library.t ->
  ?budget:float ->
  ?cache_entries:int ->
  unit ->
  t
(** [metrics] (default a private instance) receives request and cache
    counters and is what the [metrics] request reports; [budget] is
    the per-request wall-clock limit in seconds (default: none);
    [cache_entries] bounds each session-cache table
    ({!Cache.create}'s [max_entries], default
    {!Cache.default_max_entries}). *)

val metrics : t -> Iddq_util.Metrics.t

val derived_seed : key:string -> seed:int -> int
(** The per-request seed: the request's [seed] stream-split by a hash
    of the cache key ([handle:op:...]), exactly the campaign runner's
    derivation discipline.  Exposed so clients can reproduce a
    server answer locally. *)

val handle :
  t -> Iddq_util.Json.t -> Iddq_util.Json.t * [ `Continue | `Shutdown ]
(** Answer one decoded request frame.  Never raises.  [`Shutdown]
    asks the transport to stop accepting and drain. *)

val stop : t -> unit
(** Join background campaign domains.  Call once, after the last
    {!handle}. *)
