module Json = Iddq_util.Json

let default_max_frame = 8 * 1024 * 1024
let header_length = 4

let encode_payload payload =
  let len = String.length payload in
  let b = Bytes.create (header_length + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 b header_length len;
  Bytes.unsafe_to_string b

let encode j = encode_payload (Json.to_string j)

type event = Frame of Json.t | Malformed of string | Oversized of int

(* The unconsumed bytes live in a cursor buffer: feeds append at the
   tail, [next] consumes from the head, and compaction is amortized
   inside Netbuf — a byte-at-a-time (slow-loris) feed costs O(n)
   total where the old string-concatenation buffer cost O(n^2). *)
type decoder = {
  max_frame : int;
  buf : Netbuf.t;
  mutable poisoned : int option;  (* declared length of an oversized frame *)
}

let create ?(max_frame = default_max_frame) () =
  { max_frame; buf = Netbuf.create (); poisoned = None }

let feed d s = Netbuf.append_string d.buf s
let feed_sub d b off len = Netbuf.append_sub d.buf b off len
let buffered d = Netbuf.length d.buf

let declared_length d =
  let b i = Char.code (Netbuf.get d.buf i) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let next d =
  match d.poisoned with
  | Some n -> Some (Oversized n)
  | None ->
    let have = Netbuf.length d.buf in
    if have < header_length then None
    else begin
      let len = declared_length d in
      if len > d.max_frame then begin
        d.poisoned <- Some len;
        Some (Oversized len)
      end
      else if have < header_length + len then None
      else begin
        let payload = Netbuf.sub d.buf ~pos:header_length ~len in
        Netbuf.consume d.buf (header_length + len);
        match Json.parse payload with
        | Ok j -> Some (Frame j)
        | Error e -> Some (Malformed e)
      end
    end
