(** A growable byte queue with an offset cursor — the building block
    shared by the frame decoder's receive side and the event loop's
    per-connection write buffers.

    Bytes are appended at the tail and consumed from the head; the
    head is an offset into one backing buffer, so neither operation
    copies the unconsumed middle.  Space is reclaimed by compaction
    (sliding the live bytes to offset 0), performed only when an
    append needs room or the buffer empties — each byte is blitted
    O(1) amortized times, whatever the feed/consume interleaving.
    This is what makes byte-at-a-time (slow-loris) feeds linear where
    a string-concatenation buffer was quadratic.

    Not thread-safe: a buffer is owned by one consumer (the decoder,
    or the event loop). *)

type t

val create : ?capacity:int -> unit -> t
(** An empty buffer with the given initial capacity (default 256;
    grows by doubling). *)

val length : t -> int
(** Unconsumed bytes. *)

val is_empty : t -> bool

val append_string : t -> string -> unit

val append_sub : t -> bytes -> int -> int -> unit
(** [append_sub t b off len] appends [len] bytes of [b] at [off].
    Raises [Invalid_argument] on an out-of-range slice. *)

val get : t -> int -> char
(** [get t i] is the [i]-th unconsumed byte ([0 <= i < length t]).
    Raises [Invalid_argument] out of range. *)

val sub : t -> pos:int -> len:int -> string
(** Copy of [len] unconsumed bytes starting [pos] after the head.
    Raises [Invalid_argument] out of range. *)

val consume : t -> int -> unit
(** Drop [n] bytes from the head.  Raises [Invalid_argument] if
    [n > length t] or [n < 0]. *)

val peek : t -> bytes * int * int
(** [(buf, off, len)] — a borrowed view of the unconsumed bytes, valid
    until the next [append_*]/[consume].  For handing straight to
    [Unix.write]; follow with {!consume} on however much was taken. *)
