module Json = Iddq_util.Json
module Metrics = Iddq_util.Metrics
module Pipeline = Iddq.Pipeline

type request =
  | Load_circuit of { name : string option; bench : string option }
  | Characterize of { handle : string }
  | Partition of {
      handle : string;
      method_ : Pipeline.method_;
      seed : int;
      module_size : int option;
      require_feasible : bool;
    }
  | Fault_sim of {
      handle : string;
      method_ : Pipeline.method_;
      seed : int;
      vectors : int;
      defects : int;
      defect_current : float;
    }
  | Diagnose of {
      handle : string;
      method_ : Pipeline.method_;
      seed : int;
      vectors : int;
      defects : int;
      defect_current : float;
      epsilon : float;
      trials : int;
      top_k : int;
    }
  | Testset of {
      handle : string;
      seed : int;
      random_vectors : int;
      max_backtracks : int;
      budget : int option;
      strategy : Iddq_atpg.Atpg.strategy;
    }
  | Campaign_submit of { spec : string; domains : int }
  | Campaign_status of { campaign : string }
  | Metrics
  | Shutdown

type error_code =
  | Bad_request
  | Unknown_op
  | Not_found
  | Infeasible
  | Malformed_frame
  | Oversized_frame
  | Budget_exceeded
  | Overloaded
  | Internal

type error = { code : error_code; message : string }

let error code message = { code; message }

let code_to_string = function
  | Bad_request -> "bad_request"
  | Unknown_op -> "unknown_op"
  | Not_found -> "not_found"
  | Infeasible -> "infeasible"
  | Malformed_frame -> "malformed_frame"
  | Oversized_frame -> "oversized_frame"
  | Budget_exceeded -> "budget_exceeded"
  | Overloaded -> "overloaded"
  | Internal -> "internal"

let code_of_string = function
  | "bad_request" -> Some Bad_request
  | "unknown_op" -> Some Unknown_op
  | "not_found" -> Some Not_found
  | "infeasible" -> Some Infeasible
  | "malformed_frame" -> Some Malformed_frame
  | "oversized_frame" -> Some Oversized_frame
  | "budget_exceeded" -> Some Budget_exceeded
  | "overloaded" -> Some Overloaded
  | "internal" -> Some Internal
  | _ -> None

let of_pipeline_error (e : Pipeline.error) =
  let message = Pipeline.error_to_string e in
  match e with
  | Pipeline.Empty_circuit | Pipeline.Bad_config _ -> error Bad_request message
  | Pipeline.Characterization_failed _ -> error Bad_request message
  | Pipeline.Infeasible _ -> error Infeasible message
  | Pipeline.Internal _ -> error Internal message

let of_atpg_error (e : Iddq_atpg.Atpg.error) =
  let message = Iddq_atpg.Atpg.error_to_string e in
  match e with
  | Iddq_atpg.Atpg.Empty_fault_list | Iddq_atpg.Atpg.Bad_config _
  | Iddq_atpg.Atpg.Fault_mismatch _ ->
    error Bad_request message
  | Iddq_atpg.Atpg.Budget_exhausted _ -> error Budget_exceeded message
  | Iddq_atpg.Atpg.Internal _ -> error Internal message

(* ------------------------------------------------------------------ *)
(* Request codec                                                       *)
(* ------------------------------------------------------------------ *)

let default_seed = 42
let default_vectors = 64
let default_defects = 200
let default_defect_current = 2.0e-6
let default_domains = 1
let default_epsilon = 0.0
let default_trials = 20
let default_top_k = 3
let default_random_vectors = Iddq_atpg.Atpg.default_config.random_vectors
let default_max_backtracks = Iddq_atpg.Atpg.default_config.max_backtracks

let member_id j = Option.bind (Json.member "id" j) Json.to_int

let request_of_json j =
  let id = member_id j in
  let fail code msg = Error (id, error code msg) in
  let str_field name = Option.bind (Json.member name j) Json.to_str in
  let int_field name ~default =
    match Json.member name j with
    | None -> Ok default
    | Some v -> begin
      match Json.to_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S must be an integer" name)
    end
  in
  let required_str name k =
    match str_field name with
    | Some s -> k s
    | None -> fail Bad_request (Printf.sprintf "missing string field %S" name)
  in
  let with_int name ~default k =
    match int_field name ~default with
    | Ok v -> k v
    | Error msg -> fail Bad_request msg
  in
  let with_method k =
    match Json.member "method" j with
    | None -> k Pipeline.Evolution
    | Some v -> begin
      match Option.bind (Json.to_str v) Pipeline.method_of_string with
      | Some m -> k m
      | None -> fail Bad_request "field \"method\" is not a known method"
    end
  in
  match Json.member "op" j with
  | None -> fail Bad_request "missing \"op\" field"
  | Some op_j -> begin
    match Json.to_str op_j with
    | None -> fail Bad_request "\"op\" must be a string"
    | Some op -> begin
      match op with
      | "load_circuit" -> begin
        let name = str_field "name" and bench = str_field "bench" in
        match name, bench with
        | None, None ->
          fail Bad_request "load_circuit needs \"name\" or \"bench\""
        | Some _, Some _ ->
          fail Bad_request "load_circuit takes \"name\" or \"bench\", not both"
        | _ -> Ok (id, Load_circuit { name; bench })
      end
      | "characterize" ->
        required_str "handle" (fun handle -> Ok (id, Characterize { handle }))
      | "partition" ->
        required_str "handle" (fun handle ->
            with_method (fun method_ ->
                with_int "seed" ~default:default_seed (fun seed ->
                    let module_size =
                      Option.bind (Json.member "module_size" j) Json.to_int
                    in
                    let require_feasible =
                      match
                        Option.bind (Json.member "require_feasible" j)
                          Json.to_bool
                      with
                      | Some b -> b
                      | None -> false
                    in
                    Ok
                      ( id,
                        Partition
                          { handle; method_; seed; module_size; require_feasible }
                      ))))
      | "fault_sim" ->
        required_str "handle" (fun handle ->
            with_method (fun method_ ->
                with_int "seed" ~default:default_seed (fun seed ->
                    with_int "vectors" ~default:default_vectors (fun vectors ->
                        with_int "defects" ~default:default_defects
                          (fun defects ->
                            let defect_current =
                              match
                                Option.bind
                                  (Json.member "defect_current" j)
                                  Json.to_float
                              with
                              | Some c -> c
                              | None -> default_defect_current
                            in
                            if vectors < 1 || defects < 1 then
                              fail Bad_request
                                "fault_sim needs positive \"vectors\" and \
                                 \"defects\""
                            else
                              Ok
                                ( id,
                                  Fault_sim
                                    {
                                      handle;
                                      method_;
                                      seed;
                                      vectors;
                                      defects;
                                      defect_current;
                                    } ))))))
      | "diagnose" ->
        required_str "handle" (fun handle ->
            with_method (fun method_ ->
                with_int "seed" ~default:default_seed (fun seed ->
                    with_int "vectors" ~default:default_vectors (fun vectors ->
                        with_int "defects" ~default:default_defects
                          (fun defects ->
                            with_int "trials" ~default:default_trials
                              (fun trials ->
                                with_int "top_k" ~default:default_top_k
                                  (fun top_k ->
                                    let defect_current =
                                      match
                                        Option.bind
                                          (Json.member "defect_current" j)
                                          Json.to_float
                                      with
                                      | Some c -> c
                                      | None -> default_defect_current
                                    in
                                    let epsilon =
                                      match
                                        Option.bind (Json.member "epsilon" j)
                                          Json.to_float
                                      with
                                      | Some e -> e
                                      | None -> default_epsilon
                                    in
                                    if
                                      vectors < 1 || defects < 1 || trials < 1
                                      || top_k < 1
                                    then
                                      fail Bad_request
                                        "diagnose needs positive \"vectors\", \
                                         \"defects\", \"trials\" and \"top_k\""
                                    else if epsilon < 0. || epsilon >= 0.5 then
                                      fail Bad_request
                                        "\"epsilon\" must lie in [0, 0.5)"
                                    else
                                      Ok
                                        ( id,
                                          Diagnose
                                            {
                                              handle;
                                              method_;
                                              seed;
                                              vectors;
                                              defects;
                                              defect_current;
                                              epsilon;
                                              trials;
                                              top_k;
                                            } ))))))))
      | "testset" ->
        required_str "handle" (fun handle ->
            with_int "seed" ~default:default_seed (fun seed ->
                with_int "random_vectors" ~default:default_random_vectors
                  (fun random_vectors ->
                    with_int "max_backtracks" ~default:default_max_backtracks
                      (fun max_backtracks ->
                        with_int "budget" ~default:0 (fun budget_raw ->
                            let budget =
                              if budget_raw = 0 then None else Some budget_raw
                            in
                            let strategy =
                              match Json.member "strategy" j with
                              | None ->
                                Some Iddq_atpg.Atpg.default_config.strategy
                              | Some v ->
                                Option.bind (Json.to_str v)
                                  Iddq_atpg.Atpg.strategy_of_string
                            in
                            match strategy with
                            | None ->
                              fail Bad_request
                                "\"strategy\" must be \"greedy\", \
                                 \"essential\" or \"refined\""
                            | Some strategy ->
                              if random_vectors < 0 then
                                fail Bad_request
                                  "\"random_vectors\" must be non-negative"
                              else if max_backtracks < 1 then
                                fail Bad_request
                                  "\"max_backtracks\" must be positive"
                              else if budget_raw < 0 then
                                fail Bad_request
                                  "\"budget\" must be positive (or 0 for \
                                   unlimited)"
                              else
                                Ok
                                  ( id,
                                    Testset
                                      {
                                        handle;
                                        seed;
                                        random_vectors;
                                        max_backtracks;
                                        budget;
                                        strategy;
                                      } ))))))
      | "campaign_submit" ->
        required_str "spec" (fun spec ->
            with_int "domains" ~default:default_domains (fun domains ->
                if domains < 1 then
                  fail Bad_request "\"domains\" must be positive"
                else Ok (id, Campaign_submit { spec; domains })))
      | "campaign_status" ->
        required_str "campaign" (fun campaign ->
            Ok (id, Campaign_status { campaign }))
      | "metrics" -> Ok (id, Metrics)
      | "shutdown" -> Ok (id, Shutdown)
      | op -> fail Unknown_op (Printf.sprintf "unknown op %S" op)
    end
  end

let request_to_json ?id r =
  let id_field = match id with None -> [] | Some n -> [ ("id", Json.Int n) ] in
  let fields =
    match r with
    | Load_circuit { name; bench } ->
      ("op", Json.String "load_circuit")
      :: (match name with Some n -> [ ("name", Json.String n) ] | None -> [])
      @ (match bench with Some b -> [ ("bench", Json.String b) ] | None -> [])
    | Characterize { handle } ->
      [ ("op", Json.String "characterize"); ("handle", Json.String handle) ]
    | Partition { handle; method_; seed; module_size; require_feasible } ->
      [
        ("op", Json.String "partition");
        ("handle", Json.String handle);
        ("method", Json.String (Pipeline.method_to_string method_));
        ("seed", Json.Int seed);
      ]
      @ (match module_size with
        | Some s -> [ ("module_size", Json.Int s) ]
        | None -> [])
      @ [ ("require_feasible", Json.Bool require_feasible) ]
    | Fault_sim { handle; method_; seed; vectors; defects; defect_current } ->
      [
        ("op", Json.String "fault_sim");
        ("handle", Json.String handle);
        ("method", Json.String (Pipeline.method_to_string method_));
        ("seed", Json.Int seed);
        ("vectors", Json.Int vectors);
        ("defects", Json.Int defects);
        ("defect_current", Json.Float defect_current);
      ]
    | Diagnose
        {
          handle;
          method_;
          seed;
          vectors;
          defects;
          defect_current;
          epsilon;
          trials;
          top_k;
        } ->
      [
        ("op", Json.String "diagnose");
        ("handle", Json.String handle);
        ("method", Json.String (Pipeline.method_to_string method_));
        ("seed", Json.Int seed);
        ("vectors", Json.Int vectors);
        ("defects", Json.Int defects);
        ("defect_current", Json.Float defect_current);
        ("epsilon", Json.Float epsilon);
        ("trials", Json.Int trials);
        ("top_k", Json.Int top_k);
      ]
    | Testset { handle; seed; random_vectors; max_backtracks; budget; strategy }
      ->
      [
        ("op", Json.String "testset");
        ("handle", Json.String handle);
        ("seed", Json.Int seed);
        ("random_vectors", Json.Int random_vectors);
        ("max_backtracks", Json.Int max_backtracks);
      ]
      @ (match budget with Some b -> [ ("budget", Json.Int b) ] | None -> [])
      @ [
          ( "strategy",
            Json.String (Iddq_atpg.Atpg.strategy_to_string strategy) );
        ]
    | Campaign_submit { spec; domains } ->
      [
        ("op", Json.String "campaign_submit");
        ("spec", Json.String spec);
        ("domains", Json.Int domains);
      ]
    | Campaign_status { campaign } ->
      [
        ("op", Json.String "campaign_status");
        ("campaign", Json.String campaign);
      ]
    | Metrics -> [ ("op", Json.String "metrics") ]
    | Shutdown -> [ ("op", Json.String "shutdown") ]
  in
  Json.Obj (id_field @ fields)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let id_field = function None -> [] | Some n -> [ ("id", Json.Int n) ]

let ok_response ~id payload = Json.Obj (id_field id @ [ ("ok", payload) ])

let error_response ~id { code; message } =
  Json.Obj
    (id_field id
    @ [
        ( "error",
          Json.Obj
            [
              ("code", Json.String (code_to_string code));
              ("message", Json.String message);
            ] );
      ])

let response_id = member_id

let response_payload j =
  match Json.member "ok" j with
  | Some payload -> Ok payload
  | None -> begin
    match Json.member "error" j with
    | Some e ->
      let code =
        match
          Option.bind (Option.bind (Json.member "code" e) Json.to_str)
            code_of_string
        with
        | Some c -> c
        | None -> Internal
      in
      let message =
        match Option.bind (Json.member "message" e) Json.to_str with
        | Some m -> m
        | None -> "unspecified error"
      in
      Error { code; message }
    | None -> Error (error Internal "response carries neither ok nor error")
  end

let snapshot_json (s : Metrics.snapshot) =
  Json.Obj
    [
      ("requests", Json.Int s.Metrics.requests);
      ("requests_failed", Json.Int s.Metrics.requests_failed);
      ("seconds_requests", Json.Float s.Metrics.seconds_requests);
      ("cache_hits", Json.Int s.Metrics.server_cache_hits);
      ("cache_misses", Json.Int s.Metrics.server_cache_misses);
      ("cache_evictions", Json.Int s.Metrics.server_cache_evictions);
      ("full_evals", Json.Int s.Metrics.full_evals);
      ("delta_evals", Json.Int s.Metrics.delta_evals);
      ("eval_cache_hits", Json.Int s.Metrics.cache_hits);
      ("moves", Json.Int s.Metrics.moves);
      ("gates_full", Json.Int s.Metrics.gates_full);
      ("gates_delta", Json.Int s.Metrics.gates_delta);
      ("seconds_full", Json.Float s.Metrics.seconds_full);
      ("seconds_delta", Json.Float s.Metrics.seconds_delta);
      ("sim_blocks", Json.Int s.Metrics.sim_blocks);
      ("sim_fault_blocks", Json.Int s.Metrics.sim_fault_blocks);
      ("sim_faults_dropped", Json.Int s.Metrics.sim_faults_dropped);
      ("sim_steals", Json.Int s.Metrics.sim_steals);
      ("sheds", Json.Int s.Metrics.server_sheds);
      ("queue_peak", Json.Int s.Metrics.server_queue_peak);
      ("wbuf_peak", Json.Int s.Metrics.server_wbuf_peak);
    ]
