(** Length-prefixed JSON framing — the service's wire format.

    One frame is a 4-byte big-endian payload length followed by that
    many bytes of JSON text ({!Iddq_util.Json}).  Length prefixing
    keeps message boundaries exact over a stream socket: a decoder
    never needs to scan the payload, and a malformed JSON payload
    leaves the stream {e in sync} — the next frame still decodes.

    The decoder is incremental: feed it whatever byte chunks the
    socket delivers (any split, including mid-header) and drain
    {!next} until it asks for more.  Buffering is a cursor over one
    growable backing buffer ({!Netbuf}), so feeding [n] bytes in any
    number of chunks — including one byte at a time — costs O(n)
    total.  A declared length above the decoder's cap is unrecoverable
    by design — we refuse to buffer the payload, so the connection
    must be dropped; the decoder stays poisoned and keeps reporting
    [Oversized]. *)

val default_max_frame : int
(** 8 MiB — larger than any legitimate request or response. *)

val header_length : int
(** 4. *)

val encode_payload : string -> string
(** Wrap pre-rendered payload text in a frame. *)

val encode : Iddq_util.Json.t -> string
(** Render and wrap one JSON value. *)

type event =
  | Frame of Iddq_util.Json.t  (** One complete, well-formed frame. *)
  | Malformed of string
      (** The payload was not valid JSON ([Json.parse] diagnostic).
          The stream is still in sync; decoding may continue. *)
  | Oversized of int
      (** A header declared the given length, above the cap.  The
          decoder is poisoned: close the connection. *)

type decoder

val create : ?max_frame:int -> unit -> decoder
(** A fresh decoder accepting payloads up to [max_frame] (default
    {!default_max_frame}) bytes. *)

val feed : decoder -> string -> unit
(** Append received bytes. *)

val feed_sub : decoder -> bytes -> int -> int -> unit
(** [feed_sub d buf off len] — append [len] bytes of [buf] at [off]. *)

val next : decoder -> event option
(** The next decoded event, or [None] when more bytes are needed.
    Never raises, whatever was fed. *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed by {!next}. *)
