(** Session cache of the resident service, keyed by content hash.

    A circuit's {e handle} is the hex digest of its canonical [.bench]
    rendering, so the same netlist loaded twice — by name, by inline
    text, by different clients — lands on one entry, and everything
    derived from it (its {!Iddq_analysis.Charac.t}, its packed random
    vector sets) is computed once and reused across requests.

    All operations are domain-safe (one lock); derived-value lookups
    record hit/miss into the service's {!Iddq_util.Metrics.t}
    ([server_cache_hits]/[server_cache_misses]). *)

type t

val create :
  ?metrics:Iddq_util.Metrics.t -> ?library:Iddq_celllib.Library.t -> unit -> t
(** [metrics] defaults to {!Iddq_util.Metrics.global}; [library] (used
    by {!charac}) to the built-in default. *)

val handle_of_circuit : Iddq_netlist.Circuit.t -> string
(** Content hash of the canonical [.bench] text. *)

val add_circuit : t -> Iddq_netlist.Circuit.t -> string
(** Insert (or find) a circuit; returns its handle.  Re-adding the
    same content is a cache hit. *)

val find_circuit : t -> string -> Iddq_netlist.Circuit.t option

val charac : t -> handle:string -> Iddq_netlist.Circuit.t -> Iddq_analysis.Charac.t
(** The circuit's characterization against the cache's library,
    computed on first use. *)

val vectors :
  t ->
  handle:string ->
  seed:int ->
  count:int ->
  Iddq_netlist.Circuit.t ->
  bool array array * Iddq_patterns.Parallel_sim.packed
(** [count] random vectors for the circuit drawn from a fresh
    [Rng.create seed], together with their 64-way packed form —
    generated and packed once per (handle, seed, count). *)

val diagnosis :
  t -> key:string -> (unit -> Iddq_diagnose.Diagnose.t) -> Iddq_diagnose.Diagnose.t
(** Memoized diagnosis engine ({!Iddq_diagnose.Diagnose.build} is a
    full fault simulation).  The caller's [key] must capture every
    input of the build — handle, method, seed, vectors, defects,
    defect current — but {e not} the measurement parameters (epsilon,
    trials, top_k), so accuracy sweeps over the noise model reuse one
    engine. *)

type stats = {
  circuits : int;
  characs : int;
  vector_sets : int;
  diagnoses : int;
}

val stats : t -> stats
