(** Session cache of the resident service, keyed by content hash.

    A circuit's {e handle} is the hex digest of its canonical [.bench]
    rendering, so the same netlist loaded twice — by name, by inline
    text, by different clients — lands on one entry, and everything
    derived from it (its {!Iddq_analysis.Charac.t}, its packed random
    vector sets, its diagnosis engines and ATPG test sets) is computed
    once and reused across requests.

    Every table is {e size-bounded} with least-recently-used eviction
    ([max_entries] per table, default 256), so a long-lived server fed
    an unbounded stream of distinct circuits holds steady memory
    instead of growing without bound.  Evictions are counted into the
    service's metrics ([server_cache_evictions]); an evicted entry is
    simply recomputed on next use.

    All operations are domain-safe (one lock); derived-value lookups
    record hit/miss into the service's {!Iddq_util.Metrics.t}
    ([server_cache_hits]/[server_cache_misses]). *)

type t

val default_max_entries : int
(** 256. *)

val create :
  ?metrics:Iddq_util.Metrics.t ->
  ?library:Iddq_celllib.Library.t ->
  ?max_entries:int ->
  unit ->
  t
(** [metrics] defaults to {!Iddq_util.Metrics.global}; [library] (used
    by {!charac}) to the built-in default.  [max_entries] (default
    {!default_max_entries}, clamped to at least 1) bounds {e each}
    table independently. *)

val handle_of_circuit : Iddq_netlist.Circuit.t -> string
(** Content hash of the canonical [.bench] text. *)

val add_circuit : t -> Iddq_netlist.Circuit.t -> string
(** Insert (or find) a circuit; returns its handle.  Re-adding the
    same content is a cache hit (and refreshes its recency). *)

val find_circuit : t -> string -> Iddq_netlist.Circuit.t option

val charac : t -> handle:string -> Iddq_netlist.Circuit.t -> Iddq_analysis.Charac.t
(** The circuit's characterization against the cache's library,
    computed on first use. *)

val vectors :
  t ->
  handle:string ->
  seed:int ->
  count:int ->
  Iddq_netlist.Circuit.t ->
  bool array array * Iddq_patterns.Parallel_sim.packed
(** [count] random vectors for the circuit drawn from a fresh
    [Rng.create seed], together with their 64-way packed form —
    generated and packed once per (handle, seed, count). *)

val diagnosis :
  t -> key:string -> (unit -> Iddq_diagnose.Diagnose.t) -> Iddq_diagnose.Diagnose.t
(** Memoized diagnosis engine ({!Iddq_diagnose.Diagnose.build} is a
    full fault simulation).  The caller's [key] must capture every
    input of the build — handle, method, seed, vectors, defects,
    defect current — but {e not} the measurement parameters (epsilon,
    trials, top_k), so accuracy sweeps over the noise model reuse one
    engine. *)

val testset :
  t ->
  key:string ->
  (unit -> (Iddq_atpg.Atpg.set_result, Iddq_atpg.Atpg.error) result) ->
  (Iddq_atpg.Atpg.set_result, Iddq_atpg.Atpg.error) result
(** Memoized ATPG generation ({!Iddq_atpg.Atpg.generate_result} is a
    PODEM loop plus a full detection-matrix build).  The caller's
    [key] must capture every input of {e generation} — handle, seed,
    random vector count, backtrack limit, budget — but {e not} the
    minimization strategy: the cached result carries the full-set
    detection matrix, so strategy sweeps re-minimize
    ({!Iddq_atpg.Atpg.minimize_result}) one cached generation.
    Structured errors are cached too — a budget-exhausted generation
    is deterministic for its key and not worth recomputing. *)

type stats = {
  circuits : int;
  characs : int;
  vector_sets : int;
  diagnoses : int;
  testsets : int;
}

val stats : t -> stats
