type t = {
  path : string;
  table : (string, Job_result.t) Hashtbl.t;
  mutable order : string list;  (* reversed first-appearance order *)
  mutable dropped : int;
  out : out_channel;
}

let load_line t line =
  if String.trim line <> "" then begin
    match Job_result.of_line line with
    | Ok r ->
      if not (Hashtbl.mem t.table r.Job_result.job_id) then
        t.order <- r.Job_result.job_id :: t.order;
      Hashtbl.replace t.table r.Job_result.job_id r
    | Error _ -> t.dropped <- t.dropped + 1
  end

let open_ path =
  let scan =
    if Sys.file_exists path then
      Iddq_util.Io.with_in path (fun ic ->
          let lines = In_channel.input_lines ic in
          (* a file not ending in '\n' was torn mid-write; the next
             append must not glue onto the partial line *)
          let len = in_channel_length ic in
          let torn =
            len > 0
            && (seek_in ic (len - 1);
                input_char ic <> '\n')
          in
          (lines, torn))
    else Ok ([], false)
  in
  match scan with
  | Error e -> Error e
  | Ok (existing, torn_tail) -> begin
    match open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path with
    | exception Sys_error m -> Error (Iddq_util.Io_error.of_sys_error ~path m)
    | out ->
      if torn_tail then output_char out '\n';
      let t =
        { path; table = Hashtbl.create 64; order = []; dropped = 0; out }
      in
      List.iter (load_line t) existing;
      Ok t
  end

let path t = t.path
let find t id = Hashtbl.find_opt t.table id

let records t = List.rev_map (fun id -> Hashtbl.find t.table id) t.order

let count t = Hashtbl.length t.table
let dropped t = t.dropped

let append t r =
  output_string t.out (Job_result.to_line r);
  output_char t.out '\n';
  flush t.out;
  if not (Hashtbl.mem t.table r.Job_result.job_id) then
    t.order <- r.Job_result.job_id :: t.order;
  Hashtbl.replace t.table r.Job_result.job_id r

let close t = close_out t.out
