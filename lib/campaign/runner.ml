module Rng = Iddq_util.Rng
module Metrics = Iddq_util.Metrics
module Pipeline = Iddq.Pipeline
module Es = Iddq_evolution.Es

type outcome = {
  results : Job_result.t list;
  executed : int;
  skipped : int;
  ok : int;
  failed : int;
  timed_out : int;
}

type error = Invalid_spec of string

let error_to_string = function
  | Invalid_spec msg -> "invalid campaign spec: " ^ msg

(* FNV-1a over the job id: a stable, grid-independent stream index. *)
let fnv1a64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let derived_seed (job : Spec.job) =
  let stream = Int64.to_int (Int64.shift_right_logical (fnv1a64 job.Spec.id) 2) in
  let rng = Rng.derive (Rng.create job.Spec.seed) stream in
  Int64.to_int (Int64.shift_right_logical (Rng.bits64 rng) 2)

let job_config (spec : Spec.t) (job : Spec.job) ~reference_sizes ~metrics =
  let es_params =
    match spec.Spec.max_generations with
    | None -> Es.default_params
    | Some g -> { Es.default_params with Es.max_generations = g }
  in
  {
    Pipeline.default_config with
    Pipeline.seed = derived_seed job;
    module_size = job.Spec.module_size;
    reference_sizes;
    es_params;
    metrics;
  }

let execute (spec : Spec.t) ~resolve (job : Spec.job) ~reference_sizes =
  let metrics = Metrics.create () in
  let config = job_config spec job ~reference_sizes ~metrics in
  let derived_seed = config.Pipeline.seed in
  let t0 = Unix.gettimeofday () in
  let finish k =
    let elapsed = Unix.gettimeofday () -. t0 in
    k ~elapsed ~metrics:(Metrics.snapshot metrics)
  in
  match
    match resolve job.Spec.circuit with
    | Some circuit -> Pipeline.run ~config job.Spec.method_ circuit
    | None -> failwith (Printf.sprintf "unknown circuit %S" job.Spec.circuit)
  with
  | result ->
    finish (fun ~elapsed ~metrics ->
        match spec.Spec.timeout with
        | Some limit when elapsed > limit ->
          Job_result.timed_out ~job ~derived_seed ~elapsed ~metrics ~limit
        | _ -> Job_result.of_run ~job ~derived_seed ~elapsed ~metrics result)
  | exception e ->
    finish (fun ~elapsed ~metrics ->
        Job_result.failure ~job ~derived_seed ~elapsed ~metrics
          (Printexc.to_string e))

(* Scheduler state, guarded by one mutex.  Dependency edges only point
   from Standard/Refined_standard jobs to their Evolution sibling, so
   every waiting job is released by exactly one completion and the
   wait graph is acyclic by construction. *)
type state = {
  lock : Mutex.t;
  nonempty : Condition.t;
  ready : Spec.job Queue.t;
  waiting : (string, Spec.job list ref) Hashtbl.t;  (* dep id -> blocked jobs *)
  results : (string, Job_result.t) Hashtbl.t;
  mutable pending : int;  (* jobs not yet recorded this invocation *)
  mutable executed : int;
}

let reference_sizes_of state (job : Spec.job) =
  match job.Spec.depends_on with
  | None -> None
  | Some dep -> begin
    match Hashtbl.find_opt state.results dep with
    | Some r when Job_result.is_ok r && r.Job_result.module_sizes <> [] ->
      Some r.Job_result.module_sizes
    | _ -> None  (* dependency failed: fall back to the default sizes *)
  end

let record state ~store ~on_result (job : Spec.job) result =
  Hashtbl.replace state.results job.Spec.id result;
  Store.append store result;
  state.executed <- state.executed + 1;
  state.pending <- state.pending - 1;
  (match Hashtbl.find_opt state.waiting job.Spec.id with
  | Some blocked ->
    List.iter (fun j -> Queue.push j state.ready) !blocked;
    Hashtbl.remove state.waiting job.Spec.id
  | None -> ());
  on_result job result ~fresh:true;
  Condition.broadcast state.nonempty

let worker state spec ~resolve ~store ~on_result () =
  let rec loop () =
    Mutex.lock state.lock;
    while Queue.is_empty state.ready && state.pending > 0 do
      Condition.wait state.nonempty state.lock
    done;
    if Queue.is_empty state.ready then begin
      Mutex.unlock state.lock;
      ()
    end
    else begin
      let job = Queue.pop state.ready in
      let reference_sizes = reference_sizes_of state job in
      Mutex.unlock state.lock;
      let result = execute spec ~resolve job ~reference_sizes in
      Mutex.lock state.lock;
      record state ~store ~on_result job result;
      Mutex.unlock state.lock;
      loop ()
    end
  in
  loop ()

let run_validated ~domains ~resolve ~on_result ~store spec =
  let jobs = Spec.jobs spec in
  let state =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      ready = Queue.create ();
      waiting = Hashtbl.create 16;
      results = Hashtbl.create (List.length jobs);
      pending = 0;
      executed = 0;
    }
  in
  (* Partition the jobs: stored-Done ones are adopted as-is, the rest
     run — either immediately or once their dependency completes. *)
  let skipped = ref 0 in
  let to_run =
    List.filter
      (fun (job : Spec.job) ->
        match Store.find store job.Spec.id with
        | Some r when Job_result.is_ok r ->
          Hashtbl.replace state.results job.Spec.id r;
          incr skipped;
          on_result job r ~fresh:false;
          false
        | _ -> true)
      jobs
  in
  let running_ids =
    List.fold_left
      (fun acc (j : Spec.job) -> j.Spec.id :: acc)
      [] to_run
  in
  state.pending <- List.length to_run;
  List.iter
    (fun (job : Spec.job) ->
      match job.Spec.depends_on with
      | Some dep when List.mem dep running_ids ->
        let blocked =
          match Hashtbl.find_opt state.waiting dep with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.add state.waiting dep l;
            l
        in
        blocked := job :: !blocked
      | _ -> Queue.push job state.ready)
    to_run;
  let pool = Stdlib.max 1 (Stdlib.min domains (List.length to_run)) in
  let work = worker state spec ~resolve ~store ~on_result in
  if state.pending > 0 then begin
    let spawned = List.init (pool - 1) (fun _ -> Domain.spawn work) in
    work ();
    List.iter Domain.join spawned
  end;
  let results =
    List.map (fun (j : Spec.job) -> Hashtbl.find state.results j.Spec.id) jobs
  in
  let count p = List.length (List.filter p results) in
  {
    results;
    executed = state.executed;
    skipped = !skipped;
    ok = count Job_result.is_ok;
    failed =
      count (fun r ->
          match r.Job_result.status with Job_result.Failed _ -> true | _ -> false);
    timed_out =
      count (fun r ->
          match r.Job_result.status with
          | Job_result.Timeout _ -> true
          | _ -> false);
  }

let run ?(domains = 1) ?(resolve = Iddq_netlist.Iscas.by_name)
    ?(on_result = fun _ _ ~fresh:_ -> ()) ~store spec =
  match Spec.validate spec with
  | Error e -> Error (Invalid_spec e)
  | Ok () -> Ok (run_validated ~domains ~resolve ~on_result ~store spec)
