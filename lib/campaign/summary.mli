(** Campaign-level aggregation of a result store.

    Two views: a per-method roll-up (status counts and mean
    measurements over every [Done] run), and the paper's Table-1 rows
    — per circuit, evolution vs standard, averaged over seeds and
    module sizes — rendered through {!Iddq.Report.table} so the
    campaign reproduces EXPERIMENTS.md's format. *)

type method_agg = {
  method_ : Iddq.Pipeline.method_;
  runs : int;  (** All runs of this method, whatever their status. *)
  ok : int;
  failed : int;
  timed_out : int;
  mean_modules : float;
  mean_cost : float;
  mean_area : float;
  mean_delay_overhead_pct : float;
  mean_test_overhead_pct : float;
  mean_elapsed : float;
}

val by_method : Job_result.t list -> method_agg list
(** One aggregate per method present, in first-appearance order.
    Means are over [Done] runs only (0 when there are none). *)

val method_table : method_agg list -> Iddq_util.Table.t

val table1_rows : Job_result.t list -> Iddq.Report.row list
(** One {!Iddq.Report.row} per circuit that has at least one [Done]
    evolution and one [Done] standard result; measurements are means
    over those runs, module counts the rounded means.  Circuits appear
    in first-appearance order. *)

val failures : Job_result.t list -> Job_result.t list
(** The records whose status is not [Done]. *)

val pp : Format.formatter -> Job_result.t list -> unit
(** Method table, Table-1 table (when derivable) and failure list —
    the campaign's printed summary. *)
