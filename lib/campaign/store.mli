(** Append-only JSONL result store — the campaign's checkpoint.

    One {!Job_result.t} per line, appended and flushed as each job
    finishes, so a killed campaign loses at most the line being
    written.  {!open_} tolerates exactly that: a trailing malformed or
    truncated line (or any corrupt line) is counted in {!dropped} and
    skipped, never fatal.  When a job id appears on several lines —
    a failure re-run after a resume — the {e last} line wins.

    A store handle is not domain-safe; the campaign runner serializes
    access under its scheduler lock. *)

type t

val open_ : string -> (t, Iddq_util.Io_error.t) result
(** Load the records already at [path] (a missing file is an empty
    store) and open it for appending.  An unreadable or unwritable
    path is an [Error] with the path — never an exception — and no
    descriptor is leaked on the failure paths. *)

val path : t -> string

val find : t -> string -> Job_result.t option
(** Latest record for a job id. *)

val records : t -> Job_result.t list
(** Latest record per job id, in first-appearance order. *)

val count : t -> int

val dropped : t -> int
(** Malformed or truncated lines skipped while loading. *)

val append : t -> Job_result.t -> unit
(** Write one line and flush it to the OS. *)

val close : t -> unit
