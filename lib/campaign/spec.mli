(** Declarative campaign specification.

    A campaign is the cartesian grid circuits × methods × seeds ×
    module sizes; {!jobs} expands it into a deterministic job list.
    Each job is one {!Iddq.Pipeline.run}.  The expansion (ids, order,
    dependencies) depends only on the spec, never on how the jobs are
    later scheduled, so a result store written by any domain count can
    resume a campaign run with any other.

    Specs are built in code, from CLI flags, or parsed from a spec
    file of [key = value, value, ...] lines ({!parse}):

    {v
    # Table-1 sweep
    circuits     = C1908, C2670, C3540
    methods      = evolution, standard
    seeds        = 1, 7, 42
    module-sizes = default, 8
    max-generations = 250
    timeout      = 600
    seed-reference-sizes = true
    v} *)

type t = {
  circuits : string list;  (** Built-in circuit names ({!Iddq_netlist.Iscas.by_name}). *)
  methods : Iddq.Pipeline.method_ list;
  seeds : int list;  (** Grid seeds; each job derives its own stream. *)
  module_sizes : int option list;
      (** Target start-module sizes; [None] = the estimated default
          (spelled [default] in spec files). *)
  max_generations : int option;
      (** Cap on ES generations; [None] = {!Iddq_evolution.Es.default_params}. *)
  timeout : float option;
      (** Per-job wall-clock budget in seconds; a job that exceeds it
          records a [Timeout] result.  [None] = unlimited. *)
  seed_reference_sizes : bool;
      (** When true (default) and the grid contains [Evolution],
          [Standard]/[Refined_standard] jobs wait for their evolution
          sibling and take its module sizes as reference — the paper's
          Table-1 protocol. *)
}

val default : t
(** The Table-1 reproduction: the six Table-1 circuits, evolution vs
    standard, seed 42, default module size, no timeout. *)

type job = {
  index : int;  (** Position in the canonical expansion. *)
  id : string;  (** Stable identity, e.g. ["C1908:standard:s42:m-"]. *)
  circuit : string;
  method_ : Iddq.Pipeline.method_;
  seed : int;
  module_size : int option;
  depends_on : string option;
      (** Id of the evolution sibling whose module sizes seed this
          job's reference sizes; [None] for independent jobs. *)
}

val jobs : t -> job list
(** The canonical expansion: circuits × module sizes × seeds ×
    methods, with [Evolution] hoisted to the front of each method
    block so dependencies precede their dependents.  Ids are unique
    (duplicate grid entries are collapsed). *)

val validate : t -> (unit, string) result
(** Non-empty grid, every circuit known, no invalid combination. *)

val parse : string -> (t, Iddq_util.Io_error.t) result
(** Parse spec-file text (see above).  Unknown keys, unknown circuits
    or methods, and empty lists are errors carrying the offending
    line; malformed text never raises.  Omitted keys keep their
    {!default} value, except the grid keys [circuits], [methods],
    [seeds] which fall back to the defaults only when absent. *)

val parse_file : string -> (t, Iddq_util.Io_error.t) result
(** Descriptor-safe read, then {!parse}; a missing or unreadable file
    is an [Error] with the path, never an exception. *)

val to_string : t -> string
(** Render back in spec-file syntax ([parse (to_string t)] = [Ok t]
    up to list order). *)
