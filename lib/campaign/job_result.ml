module Json = Iddq_util.Json
module Metrics = Iddq_util.Metrics
module Pipeline = Iddq.Pipeline
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost

type status = Done | Failed of string | Timeout of float

type t = {
  job_id : string;
  circuit : string;
  method_ : Pipeline.method_;
  seed : int;
  derived_seed : int;
  module_size : int option;
  status : status;
  elapsed : float;
  num_modules : int;
  generations : int;
  module_sizes : int list;
  cost : float;
  feasible : bool;
  sensor_area : float;
  nominal_delay : float;
  bic_delay : float;
  test_time_per_vector : float;
  min_discriminability : float;
  metrics : Metrics.snapshot;
}

let is_ok r = r.status = Done

let empty ~(job : Spec.job) ~derived_seed ~elapsed ~metrics status =
  {
    job_id = job.Spec.id;
    circuit = job.Spec.circuit;
    method_ = job.Spec.method_;
    seed = job.Spec.seed;
    derived_seed;
    module_size = job.Spec.module_size;
    status;
    elapsed;
    num_modules = 0;
    generations = 0;
    module_sizes = [];
    cost = 0.0;
    feasible = false;
    sensor_area = 0.0;
    nominal_delay = 0.0;
    bic_delay = 0.0;
    test_time_per_vector = 0.0;
    min_discriminability = 0.0;
    metrics;
  }

let of_run ~job ~derived_seed ~elapsed ~metrics (r : Pipeline.t) =
  let p = r.Pipeline.partition in
  let b = r.Pipeline.breakdown in
  {
    (empty ~job ~derived_seed ~elapsed ~metrics Done) with
    num_modules = Partition.num_modules p;
    generations = r.Pipeline.generations;
    module_sizes =
      List.map (fun m -> Partition.size p m) (Partition.module_ids p);
    cost = b.Cost.penalized;
    feasible = b.Cost.feasible;
    sensor_area = b.Cost.sensor_area;
    nominal_delay = b.Cost.nominal_delay;
    bic_delay = b.Cost.bic_delay;
    test_time_per_vector = b.Cost.test_time_per_vector;
    min_discriminability = b.Cost.min_discriminability;
  }

let failure ~job ~derived_seed ~elapsed ~metrics msg =
  empty ~job ~derived_seed ~elapsed ~metrics (Failed msg)

let timed_out ~job ~derived_seed ~elapsed ~metrics ~limit =
  empty ~job ~derived_seed ~elapsed ~metrics (Timeout limit)

let delay_overhead_percent r =
  if r.nominal_delay > 0.0 then
    100.0 *. (r.bic_delay -. r.nominal_delay) /. r.nominal_delay
  else 0.0

let test_time_overhead_percent r =
  if r.nominal_delay > 0.0 then
    100.0 *. (r.test_time_per_vector -. r.nominal_delay) /. r.nominal_delay
  else 0.0

let strip_timing r =
  {
    r with
    elapsed = 0.0;
    metrics =
      {
        r.metrics with
        Metrics.seconds_full = 0.0;
        seconds_delta = 0.0;
        seconds_requests = 0.0;
      };
  }

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let status_fields = function
  | Done -> [ ("status", Json.String "ok") ]
  | Failed msg ->
    [ ("status", Json.String "failed"); ("error", Json.String msg) ]
  | Timeout limit ->
    [ ("status", Json.String "timeout"); ("timeout_s", Json.Float limit) ]

let metrics_json (m : Metrics.snapshot) =
  Json.Obj
    [
      ("full", Json.Int m.Metrics.full_evals);
      ("delta", Json.Int m.Metrics.delta_evals);
      ("hits", Json.Int m.Metrics.cache_hits);
      ("moves", Json.Int m.Metrics.moves);
      ("gates_full", Json.Int m.Metrics.gates_full);
      ("gates_delta", Json.Int m.Metrics.gates_delta);
      ("sec_full", Json.Float m.Metrics.seconds_full);
      ("sec_delta", Json.Float m.Metrics.seconds_delta);
      ("sim_blocks", Json.Int m.Metrics.sim_blocks);
      ("sim_fault_blocks", Json.Int m.Metrics.sim_fault_blocks);
      ("sim_dropped", Json.Int m.Metrics.sim_faults_dropped);
      ("sim_steals", Json.Int m.Metrics.sim_steals);
      ("requests", Json.Int m.Metrics.requests);
      ("requests_failed", Json.Int m.Metrics.requests_failed);
      ("sec_requests", Json.Float m.Metrics.seconds_requests);
      ("srv_hits", Json.Int m.Metrics.server_cache_hits);
      ("srv_misses", Json.Int m.Metrics.server_cache_misses);
      ("srv_evictions", Json.Int m.Metrics.server_cache_evictions);
      ("srv_sheds", Json.Int m.Metrics.server_sheds);
      ("srv_queue_peak", Json.Int m.Metrics.server_queue_peak);
      ("srv_wbuf_peak", Json.Int m.Metrics.server_wbuf_peak);
    ]

let to_json r =
  Json.Obj
    ([
       ("job", Json.String r.job_id);
       ("circuit", Json.String r.circuit);
       ("method", Json.String (Pipeline.method_to_string r.method_));
       ("seed", Json.Int r.seed);
       ("derived_seed", Json.Int r.derived_seed);
       ( "module_size",
         match r.module_size with None -> Json.Null | Some s -> Json.Int s );
     ]
    @ status_fields r.status
    @ [
        ("elapsed", Json.Float r.elapsed);
        ("modules", Json.Int r.num_modules);
        ("generations", Json.Int r.generations);
        ("module_sizes", Json.List (List.map (fun s -> Json.Int s) r.module_sizes));
        ("cost", Json.Float r.cost);
        ("feasible", Json.Bool r.feasible);
        ("area", Json.Float r.sensor_area);
        ("nominal_delay", Json.Float r.nominal_delay);
        ("bic_delay", Json.Float r.bic_delay);
        ("test_time", Json.Float r.test_time_per_vector);
        ("min_disc", Json.Float r.min_discriminability);
        ("metrics", metrics_json r.metrics);
      ])

let of_json j =
  let ( let* ) = Stdlib.Result.bind in
  let field name decode =
    match Option.bind (Json.member name j) decode with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "result record: bad or missing %S" name)
  in
  let* job_id = field "job" Json.to_str in
  let* circuit = field "circuit" Json.to_str in
  let* method_name = field "method" Json.to_str in
  let* method_ =
    match Pipeline.method_of_string method_name with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "result record: unknown method %S" method_name)
  in
  let* seed = field "seed" Json.to_int in
  let* derived_seed = field "derived_seed" Json.to_int in
  let* module_size =
    match Json.member "module_size" j with
    | Some Json.Null | None -> Ok None
    | Some v -> begin
      match Json.to_int v with
      | Some i -> Ok (Some i)
      | None -> Error "result record: bad module_size"
    end
  in
  let* status_name = field "status" Json.to_str in
  let* status =
    match status_name with
    | "ok" -> Ok Done
    | "failed" ->
      let* msg = field "error" Json.to_str in
      Ok (Failed msg)
    | "timeout" ->
      let* limit = field "timeout_s" Json.to_float in
      Ok (Timeout limit)
    | s -> Error (Printf.sprintf "result record: unknown status %S" s)
  in
  let* elapsed = field "elapsed" Json.to_float in
  let* num_modules = field "modules" Json.to_int in
  let* generations = field "generations" Json.to_int in
  let* sizes_json = field "module_sizes" Json.to_list in
  let* module_sizes =
    List.fold_right
      (fun v acc ->
        let* tl = acc in
        match Json.to_int v with
        | Some i -> Ok (i :: tl)
        | None -> Error "result record: bad module_sizes entry")
      sizes_json (Ok [])
  in
  let* cost = field "cost" Json.to_float in
  let* feasible = field "feasible" Json.to_bool in
  let* sensor_area = field "area" Json.to_float in
  let* nominal_delay = field "nominal_delay" Json.to_float in
  let* bic_delay = field "bic_delay" Json.to_float in
  let* test_time_per_vector = field "test_time" Json.to_float in
  let* min_discriminability = field "min_disc" Json.to_float in
  let* mj =
    match Json.member "metrics" j with
    | Some m -> Ok m
    | None -> Error "result record: missing metrics"
  in
  let mfield name decode =
    match Option.bind (Json.member name mj) decode with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "result record: bad metrics field %S" name)
  in
  let* full_evals = mfield "full" Json.to_int in
  let* delta_evals = mfield "delta" Json.to_int in
  let* cache_hits = mfield "hits" Json.to_int in
  let* moves = mfield "moves" Json.to_int in
  let* gates_full = mfield "gates_full" Json.to_int in
  let* gates_delta = mfield "gates_delta" Json.to_int in
  let* seconds_full = mfield "sec_full" Json.to_float in
  let* seconds_delta = mfield "sec_delta" Json.to_float in
  (* fault-sim counters postdate the first stores: absent means 0 *)
  let mfield_default name =
    match Option.bind (Json.member name mj) Json.to_int with
    | Some v -> v
    | None -> 0
  in
  let sim_blocks = mfield_default "sim_blocks" in
  let sim_fault_blocks = mfield_default "sim_fault_blocks" in
  let sim_faults_dropped = mfield_default "sim_dropped" in
  let sim_steals = mfield_default "sim_steals" in
  (* server counters postdate the first stores: absent means 0 *)
  let requests = mfield_default "requests" in
  let requests_failed = mfield_default "requests_failed" in
  let seconds_requests =
    match Option.bind (Json.member "sec_requests" mj) Json.to_float with
    | Some v -> v
    | None -> 0.0
  in
  let server_cache_hits = mfield_default "srv_hits" in
  let server_cache_misses = mfield_default "srv_misses" in
  (* eviction counter postdates the first stores: absent means 0 *)
  let server_cache_evictions = mfield_default "srv_evictions" in
  let server_sheds = mfield_default "srv_sheds" in
  let server_queue_peak = mfield_default "srv_queue_peak" in
  let server_wbuf_peak = mfield_default "srv_wbuf_peak" in
  Ok
    {
      job_id;
      circuit;
      method_;
      seed;
      derived_seed;
      module_size;
      status;
      elapsed;
      num_modules;
      generations;
      module_sizes;
      cost;
      feasible;
      sensor_area;
      nominal_delay;
      bic_delay;
      test_time_per_vector;
      min_discriminability;
      metrics =
        {
          Metrics.full_evals;
          delta_evals;
          cache_hits;
          moves;
          gates_full;
          gates_delta;
          seconds_full;
          seconds_delta;
          sim_blocks;
          sim_fault_blocks;
          sim_faults_dropped;
          sim_steals;
          requests;
          requests_failed;
          seconds_requests;
          server_cache_hits;
          server_cache_misses;
          server_cache_evictions;
          server_sheds;
          server_queue_peak;
          server_wbuf_peak;
        };
    }

let to_line r = Json.to_string (to_json r)

let of_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> of_json j
