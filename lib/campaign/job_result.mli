(** One job's durable result: identity, status, measurements, and the
    job's own cost-evaluation counters, as one JSONL line.

    Every numeric measurement is a pure function of the job identity
    (circuit, method, derived seed, configuration), so two runs of the
    same spec produce identical records {e modulo the timing fields}
    ([elapsed] and the metrics seconds) whatever the domain count or
    scheduling order — {!strip_timing} zeroes exactly those fields for
    comparisons. *)

type status =
  | Done
  | Failed of string  (** The job raised; the payload is the exception text. *)
  | Timeout of float  (** Exceeded the wall-clock budget (seconds). *)

type t = {
  job_id : string;
  circuit : string;
  method_ : Iddq.Pipeline.method_;
  seed : int;  (** Grid seed. *)
  derived_seed : int;  (** Per-job seed actually given to the pipeline. *)
  module_size : int option;
  status : status;
  elapsed : float;  (** Wall-clock seconds (timing field). *)
  num_modules : int;
  generations : int;
  module_sizes : int list;
      (** Final module sizes in ascending module-id order; what seeds
          a dependent standard job's reference sizes on resume. *)
  cost : float;  (** Penalized cost. *)
  feasible : bool;
  sensor_area : float;
  nominal_delay : float;
  bic_delay : float;
  test_time_per_vector : float;
  min_discriminability : float;
  metrics : Iddq_util.Metrics.snapshot;
      (** This job's evaluation counters ([seconds_*] are timing
          fields). *)
}

val is_ok : t -> bool
(** [true] iff [status = Done]. *)

val of_run :
  job:Spec.job ->
  derived_seed:int ->
  elapsed:float ->
  metrics:Iddq_util.Metrics.snapshot ->
  Iddq.Pipeline.t ->
  t

val failure :
  job:Spec.job ->
  derived_seed:int ->
  elapsed:float ->
  metrics:Iddq_util.Metrics.snapshot ->
  string ->
  t

val timed_out :
  job:Spec.job ->
  derived_seed:int ->
  elapsed:float ->
  metrics:Iddq_util.Metrics.snapshot ->
  limit:float ->
  t

val delay_overhead_percent : t -> float
(** [100 · (D_BIC − D) / D] — Table 1's delay row. *)

val test_time_overhead_percent : t -> float
(** Per-vector test-time increase over the sensor-less delay, percent. *)

val strip_timing : t -> t
(** Zero [elapsed] and the metrics seconds; everything left is
    deterministic for a given job. *)

val to_json : t -> Iddq_util.Json.t
val of_json : Iddq_util.Json.t -> (t, string) result

val to_line : t -> string
(** One newline-free JSON object (a JSONL record). *)

val of_line : string -> (t, string) result
