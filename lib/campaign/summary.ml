module Table = Iddq_util.Table
module Pipeline = Iddq.Pipeline
module Report = Iddq.Report

type method_agg = {
  method_ : Pipeline.method_;
  runs : int;
  ok : int;
  failed : int;
  timed_out : int;
  mean_modules : float;
  mean_cost : float;
  mean_area : float;
  mean_delay_overhead_pct : float;
  mean_test_overhead_pct : float;
  mean_elapsed : float;
}

let mean f l =
  match l with
  | [] -> 0.0
  | l -> List.fold_left (fun acc x -> acc +. f x) 0.0 l /. float_of_int (List.length l)

(* first-appearance order of [key] over [l] *)
let appearance_order key l =
  List.rev
    (List.fold_left
       (fun acc x ->
         let k = key x in
         if List.mem k acc then acc else k :: acc)
       [] l)

let by_method results =
  List.map
    (fun m ->
      let of_m = List.filter (fun (r : Job_result.t) -> r.Job_result.method_ = m) results in
      let done_ = List.filter Job_result.is_ok of_m in
      let count p = List.length (List.filter p of_m) in
      {
        method_ = m;
        runs = List.length of_m;
        ok = List.length done_;
        failed =
          count (fun r ->
              match r.Job_result.status with
              | Job_result.Failed _ -> true
              | _ -> false);
        timed_out =
          count (fun r ->
              match r.Job_result.status with
              | Job_result.Timeout _ -> true
              | _ -> false);
        mean_modules =
          mean (fun (r : Job_result.t) -> float_of_int r.Job_result.num_modules) done_;
        mean_cost = mean (fun (r : Job_result.t) -> r.Job_result.cost) done_;
        mean_area = mean (fun (r : Job_result.t) -> r.Job_result.sensor_area) done_;
        mean_delay_overhead_pct = mean Job_result.delay_overhead_percent done_;
        mean_test_overhead_pct = mean Job_result.test_time_overhead_percent done_;
        mean_elapsed = mean (fun (r : Job_result.t) -> r.Job_result.elapsed) done_;
      })
    (appearance_order (fun (r : Job_result.t) -> r.Job_result.method_) results)

let method_table aggs =
  let t =
    Table.create
      [
        ("method", Table.Left);
        ("ok/runs", Table.Right);
        ("failed", Table.Right);
        ("timeout", Table.Right);
        ("mean modules", Table.Right);
        ("mean cost", Table.Right);
        ("mean area", Table.Right);
        ("mean delay ovh %", Table.Right);
        ("mean test ovh %", Table.Right);
        ("mean wall (s)", Table.Right);
      ]
  in
  List.iter
    (fun a ->
      Table.add_row t
        [
          Pipeline.method_to_string a.method_;
          Printf.sprintf "%d/%d" a.ok a.runs;
          string_of_int a.failed;
          string_of_int a.timed_out;
          Printf.sprintf "%.1f" a.mean_modules;
          Printf.sprintf "%.2f" a.mean_cost;
          Printf.sprintf "%.3e" a.mean_area;
          Printf.sprintf "%.2e" a.mean_delay_overhead_pct;
          Printf.sprintf "%.2f" a.mean_test_overhead_pct;
          Printf.sprintf "%.2f" a.mean_elapsed;
        ])
    aggs;
  t

let table1_rows results =
  let circuits = appearance_order (fun (r : Job_result.t) -> r.Job_result.circuit) results in
  List.filter_map
    (fun circuit ->
      let done_of m =
        List.filter
          (fun (r : Job_result.t) ->
            r.Job_result.circuit = circuit
            && r.Job_result.method_ = m
            && Job_result.is_ok r)
          results
      in
      let evolution = done_of Pipeline.Evolution in
      let standard = done_of Pipeline.Standard in
      if evolution = [] || standard = [] then None
      else begin
        let area_e = mean (fun (r : Job_result.t) -> r.Job_result.sensor_area) evolution in
        let area_s = mean (fun (r : Job_result.t) -> r.Job_result.sensor_area) standard in
        let modules l =
          int_of_float
            (Float.round
               (mean (fun (r : Job_result.t) -> float_of_int r.Job_result.num_modules) l))
        in
        Some
          {
            Report.circuit_name = circuit;
            num_modules_standard = modules standard;
            num_modules_evolution = modules evolution;
            area_standard = area_s;
            area_evolution = area_e;
            area_overhead_percent =
              (if area_e > 0.0 then 100.0 *. (area_s -. area_e) /. area_e
               else 0.0);
            delay_overhead_standard_percent =
              mean Job_result.delay_overhead_percent standard;
            delay_overhead_evolution_percent =
              mean Job_result.delay_overhead_percent evolution;
            test_time_overhead_standard_percent =
              mean Job_result.test_time_overhead_percent standard;
            test_time_overhead_evolution_percent =
              mean Job_result.test_time_overhead_percent evolution;
          }
      end)
    circuits

let failures results =
  List.filter (fun r -> not (Job_result.is_ok r)) results

let pp fmt results =
  let aggs = by_method results in
  Format.fprintf fmt "per-method summary (means over completed runs):@.%s@."
    (Table.render (method_table aggs));
  (match table1_rows results with
  | [] -> ()
  | rows ->
    Format.fprintf fmt
      "@.Table-1 comparison (means over seeds and module sizes):@.%s@."
      (Table.render (Report.table rows)));
  match failures results with
  | [] -> ()
  | fs ->
    Format.fprintf fmt "@.%d job(s) not completed:@." (List.length fs);
    List.iter
      (fun (r : Job_result.t) ->
        let what =
          match r.Job_result.status with
          | Job_result.Failed msg -> "failed: " ^ msg
          | Job_result.Timeout l -> Printf.sprintf "timeout (> %.1f s)" l
          | Job_result.Done -> assert false
        in
        Format.fprintf fmt "  %s  %s@." r.Job_result.job_id what)
      fs
