module Pipeline = Iddq.Pipeline
module Io = Iddq_util.Io
module Io_error = Iddq_util.Io_error

type t = {
  circuits : string list;
  methods : Pipeline.method_ list;
  seeds : int list;
  module_sizes : int option list;
  max_generations : int option;
  timeout : float option;
  seed_reference_sizes : bool;
}

let default =
  {
    circuits = [ "C1908"; "C2670"; "C3540"; "C5315"; "C6288"; "C7552" ];
    methods = [ Pipeline.Evolution; Pipeline.Standard ];
    seeds = [ 42 ];
    module_sizes = [ None ];
    max_generations = None;
    timeout = None;
    seed_reference_sizes = true;
  }

type job = {
  index : int;
  id : string;
  circuit : string;
  method_ : Pipeline.method_;
  seed : int;
  module_size : int option;
  depends_on : string option;
}

let size_tag = function None -> "m-" | Some s -> Printf.sprintf "m%d" s

let job_id ~circuit ~method_ ~seed ~module_size =
  Printf.sprintf "%s:%s:s%d:%s" circuit
    (Pipeline.method_to_string method_)
    seed (size_tag module_size)

(* Hoist Evolution so that, walking the expansion in order, every
   dependency precedes its dependents; drop duplicate grid entries. *)
let canonical_methods methods =
  let methods =
    List.fold_left
      (fun acc m -> if List.mem m acc then acc else acc @ [ m ])
      [] methods
  in
  if List.mem Pipeline.Evolution methods then
    Pipeline.Evolution :: List.filter (fun m -> m <> Pipeline.Evolution) methods
  else methods

let dedup l =
  List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] l

let jobs t =
  let methods = canonical_methods t.methods in
  let has_evolution = List.mem Pipeline.Evolution methods in
  let next = ref 0 in
  List.concat_map
    (fun circuit ->
      List.concat_map
        (fun module_size ->
          List.concat_map
            (fun seed ->
              List.map
                (fun method_ ->
                  let depends_on =
                    match method_ with
                    | Pipeline.Standard | Pipeline.Refined_standard
                      when t.seed_reference_sizes && has_evolution ->
                      Some
                        (job_id ~circuit ~method_:Pipeline.Evolution ~seed
                           ~module_size)
                    | _ -> None
                  in
                  let index = !next in
                  incr next;
                  {
                    index;
                    id = job_id ~circuit ~method_ ~seed ~module_size;
                    circuit;
                    method_;
                    seed;
                    module_size;
                    depends_on;
                  })
                methods)
            (dedup t.seeds))
        (dedup t.module_sizes))
    (dedup t.circuits)

let validate t =
  let ( let* ) = Stdlib.Result.bind in
  let* () = if t.circuits = [] then Error "spec: no circuits" else Ok () in
  let* () = if t.methods = [] then Error "spec: no methods" else Ok () in
  let* () = if t.seeds = [] then Error "spec: no seeds" else Ok () in
  let* () =
    if t.module_sizes = [] then Error "spec: no module sizes" else Ok ()
  in
  let* () =
    match
      List.find_opt
        (fun c -> Iddq_netlist.Iscas.by_name c = None)
        t.circuits
    with
    | Some c ->
      Error
        (Printf.sprintf "spec: unknown circuit %S (known: %s)" c
           (String.concat ", " Iddq_netlist.Iscas.names))
    | None -> Ok ()
  in
  let* () =
    match List.find_opt (fun s -> s <= 0) (List.filter_map Fun.id t.module_sizes) with
    | Some s -> Error (Printf.sprintf "spec: module size %d is not positive" s)
    | None -> Ok ()
  in
  match t.timeout with
  | Some l when l < 0.0 -> Error "spec: negative timeout"
  | _ -> Ok ()

(* ------------------------------------------------------------------ *)
(* Spec-file syntax                                                    *)
(* ------------------------------------------------------------------ *)

let strip s = String.trim s

let split_values v =
  String.split_on_char ',' v |> List.map strip
  |> List.filter (fun s -> s <> "")

let parse_method s =
  match Pipeline.method_of_string s with
  | Some m -> Ok m
  | None -> Error (Printf.sprintf "unknown method %S" s)

let parse_size = function
  | "default" | "auto" | "-" -> Ok None
  | s -> begin
    match int_of_string_opt s with
    | Some i -> Ok (Some i)
    | None -> Error (Printf.sprintf "invalid module size %S" s)
  end

let parse_int s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "invalid integer %S" s)

let map_result f l =
  List.fold_right
    (fun x acc ->
      match acc, f x with
      | Error e, _ -> Error e
      | _, Error e -> Error e
      | Ok tl, Ok v -> Ok (v :: tl))
    l (Ok [])

let parse text =
  let ( let* ) = Stdlib.Result.bind in
  let lines = String.split_on_char '\n' text in
  let result =
    List.fold_left
      (fun acc (lineno, line) ->
        let* spec = acc in
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = strip line in
        if line = "" then Ok spec
        else begin
          match String.index_opt line '=' with
          | None ->
            Error (Io_error.make ~line:lineno "expected key = values")
          | Some i ->
            let key = strip (String.sub line 0 i) in
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            let values = split_values v in
            let err msg = Io_error.make ~line:lineno msg in
            let one () =
              match values with
              | [ x ] -> Ok x
              | _ -> Error (err (Printf.sprintf "%s takes one value" key))
            in
            (match String.lowercase_ascii key with
            | "circuits" ->
              if values = [] then Error (err "circuits: empty list")
              else
                (* canonical (upper-case) names so job ids don't depend
                   on the spelling in the spec file *)
                Ok
                  {
                    spec with
                    circuits = List.map String.uppercase_ascii values;
                  }
            | "methods" ->
              let* ms =
                Stdlib.Result.map_error err (map_result parse_method values)
              in
              Ok { spec with methods = ms }
            | "seeds" ->
              let* ss = Stdlib.Result.map_error err (map_result parse_int values) in
              Ok { spec with seeds = ss }
            | "module-sizes" ->
              let* zs = Stdlib.Result.map_error err (map_result parse_size values) in
              Ok { spec with module_sizes = zs }
            | "max-generations" ->
              let* x = one () in
              let* g = Stdlib.Result.map_error err (parse_int x) in
              Ok { spec with max_generations = Some g }
            | "timeout" ->
              let* x = one () in begin
              match float_of_string_opt x with
              | Some f -> Ok { spec with timeout = Some f }
              | None -> Error (err (Printf.sprintf "invalid timeout %S" x))
              end
            | "seed-reference-sizes" ->
              let* x = one () in begin
              match bool_of_string_opt (String.lowercase_ascii x) with
              | Some b -> Ok { spec with seed_reference_sizes = b }
              | None -> Error (err (Printf.sprintf "invalid boolean %S" x))
              end
            | _ -> Error (err (Printf.sprintf "unknown key %S" key)))
        end)
      (Ok default)
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  let* spec = result in
  let* () = Stdlib.Result.map_error (fun m -> Io_error.make m) (validate spec) in
  Ok spec

let parse_file path =
  match Io.read_file path with
  | Error e -> Error e
  | Ok text -> Stdlib.Result.map_error (Io_error.with_path path) (parse text)

let to_string t =
  let b = Buffer.create 256 in
  let line key values = Buffer.add_string b (key ^ " = " ^ values ^ "\n") in
  line "circuits" (String.concat ", " t.circuits);
  line "methods"
    (String.concat ", " (List.map Pipeline.method_to_string t.methods));
  line "seeds" (String.concat ", " (List.map string_of_int t.seeds));
  line "module-sizes"
    (String.concat ", "
       (List.map
          (function None -> "default" | Some s -> string_of_int s)
          t.module_sizes));
  Option.iter (fun g -> line "max-generations" (string_of_int g)) t.max_generations;
  Option.iter (fun s -> line "timeout" (Printf.sprintf "%g" s)) t.timeout;
  line "seed-reference-sizes" (string_of_bool t.seed_reference_sizes);
  Buffer.contents b
