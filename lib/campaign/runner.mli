(** Work-queue scheduler: a campaign's jobs over a [Domain] pool.

    Jobs whose latest stored result is [Done] are skipped (checkpoint
    /resume); failed and timed-out jobs re-run.  Each executed job

    - draws its configuration seed from {!derived_seed} — a pure
      function of the job identity, so results are reproducible
      whatever the domain count or scheduling order;
    - records its cost-evaluation counters in a private
      {!Iddq_util.Metrics.t} instance;
    - is isolated: an exception becomes a [Failed] record, a run past
      the spec's wall-clock budget a [Timeout] record, and the
      campaign carries on.  (The budget is checked when the job
      returns — OCaml domains cannot be preempted — so a hung job
      stalls its worker but never corrupts the store.)

    [Standard]/[Refined_standard] jobs with an evolution dependency
    are held back until the dependency's result exists (fresh or from
    the store) and then run with its module sizes as reference sizes —
    the paper's protocol, preserved across resume boundaries. *)

type outcome = {
  results : Job_result.t list;  (** One per job, in spec expansion order. *)
  executed : int;  (** Jobs actually run this invocation. *)
  skipped : int;  (** Jobs satisfied by the store (resume). *)
  ok : int;  (** Jobs whose final status is [Done]. *)
  failed : int;
  timed_out : int;
}

type error = Invalid_spec of string
    (** The spec failed {!Spec.validate}; the payload is its
        diagnostic.  (Job-level failures never surface here — they are
        isolated into [Failed]/[Timeout] records.) *)

val error_to_string : error -> string

val derived_seed : Spec.job -> int
(** Non-negative per-job seed: the job's grid seed stream-split by a
    hash of its id ({!Iddq_util.Rng.derive}).  Depends only on the job
    identity — never on the grid shape, scheduling order or store
    contents. *)

val run :
  ?domains:int ->
  ?resolve:(string -> Iddq_netlist.Circuit.t option) ->
  ?on_result:(Spec.job -> Job_result.t -> fresh:bool -> unit) ->
  store:Store.t ->
  Spec.t ->
  (outcome, error) result
(** Execute the campaign.  [domains] (default 1, clamped to the job
    count) sizes the worker pool.  [resolve] maps circuit names to
    netlists (default {!Iddq_netlist.Iscas.by_name} — lookups return
    [option], a miss becomes the job's [Failed] record; a test hook
    and the place to plug file-loaded netlists in).  [on_result]
    observes every job outcome in completion order, including skipped
    stored results ([fresh:false]); it is called with the scheduler
    lock held from worker domains, so keep it brief.  An invalid spec
    is [Error (Invalid_spec _)] — never an exception. *)
