let with_in path f =
  match open_in_bin path with
  | exception Sys_error m -> Error (Io_error.of_sys_error ~path m)
  | ic -> begin
    match Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic) with
    | v -> Ok v
    | exception Sys_error m -> Error (Io_error.of_sys_error ~path m)
  end

let with_out path f =
  match open_out_bin path with
  | exception Sys_error m -> Error (Io_error.of_sys_error ~path m)
  | oc -> begin
    match Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc) with
    | v -> Ok v
    | exception Sys_error m -> Error (Io_error.of_sys_error ~path m)
  end

let read_file path =
  with_in path (fun ic -> really_input_string ic (in_channel_length ic))

(* Distinct temp names per call so two writers racing on the same
   target never share a scratch file; within one process the counter
   suffices, across processes the rename still keeps the target
   atomic (last rename wins, both contents are complete). *)
let tmp_counter = ref 0

let fresh_tmp path =
  incr tmp_counter;
  Printf.sprintf "%s.tmp.%d" path !tmp_counter

let with_out_atomic path f =
  let tmp = fresh_tmp path in
  let remove_tmp () = try Sys.remove tmp with Sys_error _ -> () in
  match open_out_bin tmp with
  | exception Sys_error m -> Error (Io_error.of_sys_error ~path m)
  | oc -> begin
    match
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
          let v = f oc in
          flush oc;
          v)
    with
    | v -> begin
      match Sys.rename tmp path with
      | () -> Ok v
      | exception Sys_error m ->
        remove_tmp ();
        Error (Io_error.of_sys_error ~path m)
    end
    | exception Sys_error m ->
      remove_tmp ();
      Error (Io_error.of_sys_error ~path m)
    | exception e ->
      (* non-I/O exception from [f]: clean up the scratch file, leave
         the previous [path] contents untouched, and re-raise *)
      remove_tmp ();
      raise e
  end

let write_file_atomic path data =
  with_out_atomic path (fun oc -> output_string oc data)

let open_fd_count () =
  match Sys.readdir "/proc/self/fd" with
  | entries ->
    (* the directory scan itself holds one descriptor *)
    Some (Array.length entries - 1)
  | exception Sys_error _ -> None
