(** A small reusable pool of worker domains with work-stealing chunk
    scheduling.

    [Fault_sim] used to split work into [domains] fixed-size
    contiguous ranges, one [Domain.spawn] per range per call — fine
    for one balanced sweep, wasteful for a levelized evaluation that
    needs a barrier per circuit level (a spawn per level) and unfair
    for fault sweeps where fault dropping empties some ranges early.
    This pool spawns its workers {e once}; each {!run} publishes a job
    of [chunks] indivisible chunks that the caller and every worker
    claim round-robin off one [Atomic] index until none remain, which
    is both the per-level barrier (a {!run} per level) and the
    work-stealing fault scheduler (a chunk per fault batch).

    A pool is owned by one orchestrating caller: concurrent {!run}
    calls on the same pool are not allowed.  The job function must
    only write state disjoint per chunk. *)

type t

val create : domains:int -> t
(** A pool of [max 1 domains] participants: the caller plus
    [domains - 1] spawned workers (none for [domains <= 1]).  Workers
    sleep on a condition variable between jobs. *)

val size : t -> int
(** Participants (caller included). *)

val run : t -> chunks:int -> (int -> unit) -> int
(** [run t ~chunks f] calls [f c] exactly once for every
    [c in 0 .. chunks - 1], distributing chunks over the pool by
    atomic round-robin claiming; returns when all chunks completed
    (the barrier).  The returned count is the {e steals}: chunks
    executed beyond an even static split (the work a fixed-range
    scheduler would have left on an idle domain).  If any [f] raises,
    the first exception re-raises here after the barrier. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent; {!run} after shutdown
    executes inline on the caller. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] — {!create}, run [f], always
    {!shutdown}. *)
