type align = Left | Right

type t = {
  headers : (string * align) array;
  mutable rows : string array list; (* reversed *)
}

let create headers = { headers = Array.of_list headers; rows = [] }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let ncols = Array.length t.headers in
  let widths = Array.map (fun (h, _) -> String.length h) t.headers in
  let rows = List.rev t.rows in
  List.iter
    (fun row ->
      Array.iteri
        (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
        row)
    rows;
  let buf = Buffer.create 256 in
  let emit_row cells =
    for i = 0 to ncols - 1 do
      let _, align = t.headers.(i) in
      Buffer.add_string buf (pad align widths.(i) cells.(i));
      if i < ncols - 1 then Buffer.add_string buf "  "
    done;
    Buffer.add_char buf '\n'
  in
  emit_row (Array.map fst t.headers);
  let rule_len = Array.fold_left ( + ) (2 * (ncols - 1)) widths in
  Buffer.add_string buf (String.make rule_len '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  flush stdout
