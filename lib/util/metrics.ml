type t = {
  full_evals : int Atomic.t;
  delta_evals : int Atomic.t;
  cache_hits : int Atomic.t;
  moves : int Atomic.t;
  gates_full : int Atomic.t;
  gates_delta : int Atomic.t;
  seconds_full : float Atomic.t;
  seconds_delta : float Atomic.t;
  sim_blocks : int Atomic.t;
  sim_fault_blocks : int Atomic.t;
  sim_faults_dropped : int Atomic.t;
  sim_steals : int Atomic.t;
  requests : int Atomic.t;
  requests_failed : int Atomic.t;
  seconds_requests : float Atomic.t;
  server_cache_hits : int Atomic.t;
  server_cache_misses : int Atomic.t;
  server_cache_evictions : int Atomic.t;
  server_sheds : int Atomic.t;
  server_queue_peak : int Atomic.t;
  server_wbuf_peak : int Atomic.t;
}

let create () =
  {
    full_evals = Atomic.make 0;
    delta_evals = Atomic.make 0;
    cache_hits = Atomic.make 0;
    moves = Atomic.make 0;
    gates_full = Atomic.make 0;
    gates_delta = Atomic.make 0;
    seconds_full = Atomic.make 0.0;
    seconds_delta = Atomic.make 0.0;
    sim_blocks = Atomic.make 0;
    sim_fault_blocks = Atomic.make 0;
    sim_faults_dropped = Atomic.make 0;
    sim_steals = Atomic.make 0;
    requests = Atomic.make 0;
    requests_failed = Atomic.make 0;
    seconds_requests = Atomic.make 0.0;
    server_cache_hits = Atomic.make 0;
    server_cache_misses = Atomic.make 0;
    server_cache_evictions = Atomic.make 0;
    server_sheds = Atomic.make 0;
    server_queue_peak = Atomic.make 0;
    server_wbuf_peak = Atomic.make 0;
  }

let global = create ()

(* lock-free add for the float accumulators *)
let rec add_float cell x =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. x)) then add_float cell x

let record_full t ~gates ~seconds =
  ignore (Atomic.fetch_and_add t.full_evals 1);
  ignore (Atomic.fetch_and_add t.gates_full gates);
  add_float t.seconds_full seconds

let record_delta t ~gates ~seconds =
  ignore (Atomic.fetch_and_add t.delta_evals 1);
  ignore (Atomic.fetch_and_add t.gates_delta gates);
  add_float t.seconds_delta seconds

let record_hit t = ignore (Atomic.fetch_and_add t.cache_hits 1)
let record_move t = ignore (Atomic.fetch_and_add t.moves 1)

let record_fault_sim ?(steals = 0) t ~blocks ~fault_blocks ~dropped =
  ignore (Atomic.fetch_and_add t.sim_blocks blocks);
  ignore (Atomic.fetch_and_add t.sim_fault_blocks fault_blocks);
  ignore (Atomic.fetch_and_add t.sim_faults_dropped dropped);
  ignore (Atomic.fetch_and_add t.sim_steals steals)

let record_request t ~ok ~seconds =
  ignore (Atomic.fetch_and_add t.requests 1);
  if not ok then ignore (Atomic.fetch_and_add t.requests_failed 1);
  add_float t.seconds_requests seconds

let record_server_cache t ~hit =
  if hit then ignore (Atomic.fetch_and_add t.server_cache_hits 1)
  else ignore (Atomic.fetch_and_add t.server_cache_misses 1)

let record_cache_eviction ?(count = 1) t =
  ignore (Atomic.fetch_and_add t.server_cache_evictions count)

(* lock-free max for the high-water marks *)
let rec max_int_atomic cell x =
  let cur = Atomic.get cell in
  if x > cur && not (Atomic.compare_and_set cell cur x) then
    max_int_atomic cell x

let record_shed t = ignore (Atomic.fetch_and_add t.server_sheds 1)
let record_queue_depth t depth = max_int_atomic t.server_queue_peak depth
let record_wbuf t bytes = max_int_atomic t.server_wbuf_peak bytes

type snapshot = {
  full_evals : int;
  delta_evals : int;
  cache_hits : int;
  moves : int;
  gates_full : int;
  gates_delta : int;
  seconds_full : float;
  seconds_delta : float;
  sim_blocks : int;
  sim_fault_blocks : int;
  sim_faults_dropped : int;
  sim_steals : int;
  requests : int;
  requests_failed : int;
  seconds_requests : float;
  server_cache_hits : int;
  server_cache_misses : int;
  server_cache_evictions : int;
  server_sheds : int;
  server_queue_peak : int;
  server_wbuf_peak : int;
}

let snapshot (t : t) =
  {
    full_evals = Atomic.get t.full_evals;
    delta_evals = Atomic.get t.delta_evals;
    cache_hits = Atomic.get t.cache_hits;
    moves = Atomic.get t.moves;
    gates_full = Atomic.get t.gates_full;
    gates_delta = Atomic.get t.gates_delta;
    seconds_full = Atomic.get t.seconds_full;
    seconds_delta = Atomic.get t.seconds_delta;
    sim_blocks = Atomic.get t.sim_blocks;
    sim_fault_blocks = Atomic.get t.sim_fault_blocks;
    sim_faults_dropped = Atomic.get t.sim_faults_dropped;
    sim_steals = Atomic.get t.sim_steals;
    requests = Atomic.get t.requests;
    requests_failed = Atomic.get t.requests_failed;
    seconds_requests = Atomic.get t.seconds_requests;
    server_cache_hits = Atomic.get t.server_cache_hits;
    server_cache_misses = Atomic.get t.server_cache_misses;
    server_cache_evictions = Atomic.get t.server_cache_evictions;
    server_sheds = Atomic.get t.server_sheds;
    server_queue_peak = Atomic.get t.server_queue_peak;
    server_wbuf_peak = Atomic.get t.server_wbuf_peak;
  }

let reset (t : t) =
  Atomic.set t.full_evals 0;
  Atomic.set t.delta_evals 0;
  Atomic.set t.cache_hits 0;
  Atomic.set t.moves 0;
  Atomic.set t.gates_full 0;
  Atomic.set t.gates_delta 0;
  Atomic.set t.seconds_full 0.0;
  Atomic.set t.seconds_delta 0.0;
  Atomic.set t.sim_blocks 0;
  Atomic.set t.sim_fault_blocks 0;
  Atomic.set t.sim_faults_dropped 0;
  Atomic.set t.sim_steals 0;
  Atomic.set t.requests 0;
  Atomic.set t.requests_failed 0;
  Atomic.set t.seconds_requests 0.0;
  Atomic.set t.server_cache_hits 0;
  Atomic.set t.server_cache_misses 0;
  Atomic.set t.server_cache_evictions 0;
  Atomic.set t.server_sheds 0;
  Atomic.set t.server_queue_peak 0;
  Atomic.set t.server_wbuf_peak 0

let diff after before =
  {
    full_evals = after.full_evals - before.full_evals;
    delta_evals = after.delta_evals - before.delta_evals;
    cache_hits = after.cache_hits - before.cache_hits;
    moves = after.moves - before.moves;
    gates_full = after.gates_full - before.gates_full;
    gates_delta = after.gates_delta - before.gates_delta;
    seconds_full = after.seconds_full -. before.seconds_full;
    seconds_delta = after.seconds_delta -. before.seconds_delta;
    sim_blocks = after.sim_blocks - before.sim_blocks;
    sim_fault_blocks = after.sim_fault_blocks - before.sim_fault_blocks;
    sim_faults_dropped = after.sim_faults_dropped - before.sim_faults_dropped;
    sim_steals = after.sim_steals - before.sim_steals;
    requests = after.requests - before.requests;
    requests_failed = after.requests_failed - before.requests_failed;
    seconds_requests = after.seconds_requests -. before.seconds_requests;
    server_cache_hits = after.server_cache_hits - before.server_cache_hits;
    server_cache_misses = after.server_cache_misses - before.server_cache_misses;
    server_cache_evictions =
      after.server_cache_evictions - before.server_cache_evictions;
    server_sheds = after.server_sheds - before.server_sheds;
    (* high-water marks, not counters: the later mark is the answer *)
    server_queue_peak = after.server_queue_peak;
    server_wbuf_peak = after.server_wbuf_peak;
  }

let evaluations s = s.full_evals + s.delta_evals + s.cache_hits

let equivalent_evals s =
  if s.full_evals = 0 then float_of_int (s.full_evals + s.delta_evals)
  else begin
    let gates_per_full =
      float_of_int s.gates_full /. float_of_int s.full_evals
    in
    if gates_per_full <= 0.0 then float_of_int (s.full_evals + s.delta_evals)
    else float_of_int s.full_evals +. (float_of_int s.gates_delta /. gates_per_full)
  end

let speedup s =
  let eq = equivalent_evals s in
  if eq <= 0.0 then 1.0 else float_of_int (evaluations s) /. eq

let pp fmt s =
  Format.fprintf fmt
    "evaluations=%d (full=%d delta=%d cached=%d) moves=%d@ gate recomputes: \
     full=%d delta=%d@ evaluate-equivalents=%.1f (%.1fx fewer than naive)@ cpu: \
     full=%.3fs delta=%.3fs@ fault sim: blocks=%d fault-blocks=%d dropped=%d steals=%d@ \
     server: requests=%d (failed=%d, %.3fs) cache hits=%d misses=%d \
     evictions=%d@ \
     server load: sheds=%d queue-peak=%d wbuf-peak=%dB"
    (evaluations s) s.full_evals s.delta_evals s.cache_hits s.moves s.gates_full
    s.gates_delta (equivalent_evals s) (speedup s) s.seconds_full
    s.seconds_delta s.sim_blocks s.sim_fault_blocks s.sim_faults_dropped
    s.sim_steals s.requests s.requests_failed s.seconds_requests s.server_cache_hits
    s.server_cache_misses s.server_cache_evictions s.server_sheds
    s.server_queue_peak s.server_wbuf_peak
