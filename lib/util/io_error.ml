type t = {
  path : string option;
  line : int option;
  offset : int option;
  message : string;
}

let make ?path ?line ?offset message = { path; line; offset; message }

let with_path path e =
  match e.path with None -> { e with path = Some path } | Some _ -> e

(* [Sys_error] messages already lead with the path ("foo: No such
   file..."); strip it so [to_string] does not print the path twice. *)
let of_sys_error ~path message =
  let prefix = path ^ ": " in
  let p = String.length prefix in
  let message =
    if String.length message >= p && String.sub message 0 p = prefix then
      String.sub message p (String.length message - p)
    else message
  in
  make ~path message

let to_string e =
  let where =
    match e.path, e.line, e.offset with
    | Some p, Some l, _ -> Printf.sprintf "%s:%d: " p l
    | Some p, None, Some o -> Printf.sprintf "%s: offset %d: " p o
    | Some p, None, None -> p ^ ": "
    | None, Some l, _ -> Printf.sprintf "line %d: " l
    | None, None, Some o -> Printf.sprintf "offset %d: " o
    | None, None, None -> ""
  in
  where ^ e.message

let pp fmt e = Format.pp_print_string fmt (to_string e)
