(** Deterministic, splittable pseudo-random number generator.

    All stochastic components of the library (evolution strategy,
    Monte-Carlo descendants, pattern generation, defect sampling) draw
    exclusively from this generator so that every experiment is exactly
    reproducible from a seed.  The implementation is SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): a 64-bit state advanced by a
    Weyl sequence and finalized with a variant of the MurmurHash3
    mixer.  It is fast, passes BigCrush, and supports O(1) splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Two
    generators created from the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original
    subsequently evolve independently. *)

val split : t -> t
(** [split t] derives a statistically independent generator and
    advances [t].  Use it to give sub-components their own streams. *)

val derive : t -> int -> t
(** [derive t i] is an independent child stream keyed by [i].  Unlike
    {!split} it does {e not} advance [t]: the child depends only on
    [t]'s current state and [i], so [derive (create seed) i] is a pure
    function of [(seed, i)].  Distinct indices give distinct streams.
    Use it to hand the [i]-th job of a campaign its own reproducible
    generator regardless of the order jobs are scheduled in. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1].  Requires [n > 0].  Uses
    rejection sampling, so the result is exactly uniform. *)

val int_in_range : t -> min:int -> max:int -> int
(** [int_in_range t ~min ~max] is uniform in [min, max] inclusive.
    Requires [min <= max]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via the Box-Muller transform. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  Raises
    [Invalid_argument] on an empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] draws [min k (length arr)]
    distinct elements, in random order. *)
