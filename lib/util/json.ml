type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that parses back to the same float, forced
   to look like a float (so the reader keeps the Int/Float distinction).
   JSON has no literal for non-finite values; encode them as string
   sentinels so they survive a round-trip (decoded by {!to_float})
   instead of degrading to [null]. *)
let float_repr f =
  if Float.is_nan f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else begin
    let shortest = Printf.sprintf "%.15g" f in
    let s =
      if float_of_string shortest = f then shortest
      else Printf.sprintf "%.17g" f
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> fail "invalid \\u escape"
           in
           pos := !pos + 4;
           (* we only ever emit \u00xx for control characters; decode
              the Latin-1 range and substitute elsewhere *)
           if code < 0x100 then Buffer.add_char buf (Char.chr code)
           else Buffer.add_char buf '?'
         | c -> fail (Printf.sprintf "invalid escape \\%c" c));
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  (* the printer's non-finite sentinels (see [float_repr]) *)
  | String "nan" -> Some Float.nan
  | String "inf" -> Some Float.infinity
  | String "-inf" -> Some Float.neg_infinity
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj kvs -> Some kvs | _ -> None
