(** Leak-proof, crash-safe file primitives.

    All file access at the persistence boundary goes through this
    module so that two invariants hold everywhere:

    - {b no descriptor leaks}: channels are closed via [Fun.protect]
      on every path out, including exceptions thrown by the callback;
    - {b no torn artifacts}: writes land in a scratch file that is
      atomically renamed over the target only after a successful
      flush, so a crash mid-write leaves any previous contents of the
      target intact.

    [Sys_error] (missing file, permission, full disk, ...) is captured
    and surfaced as [Error] carrying the path; exceptions that are not
    I/O failures propagate (after cleanup) since they indicate bugs,
    not bad inputs. *)

val with_in : string -> (in_channel -> 'a) -> ('a, Io_error.t) result
(** Open for reading, run the callback, always close. *)

val with_out : string -> (out_channel -> 'a) -> ('a, Io_error.t) result
(** Open for (truncating) writing, run the callback, always close.
    Not atomic — prefer {!with_out_atomic} for artifacts that may
    already exist. *)

val read_file : string -> (string, Io_error.t) result
(** Whole-file read. *)

val with_out_atomic : string -> (out_channel -> 'a) -> ('a, Io_error.t) result
(** Run the callback against a scratch channel, flush, then atomically
    rename over the target.  If the callback raises or the write
    fails, the scratch file is removed and the target keeps its
    previous contents. *)

val write_file_atomic : string -> string -> (unit, Io_error.t) result
(** [write_file_atomic path data] = atomic whole-file write. *)

val open_fd_count : unit -> int option
(** Number of open file descriptors of this process (via
    [/proc/self/fd]), or [None] where that filesystem does not exist.
    Used by the fuzz harness to assert descriptor-leak freedom. *)
