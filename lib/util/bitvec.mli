(** Packed bit vectors over [int64] words.

    The fault-simulation engine stores one detection row per fault —
    bit [v] set iff vector [v] detects the fault — and answers every
    coverage query (curves, subset coverage, greedy compaction gains)
    with word-wide [AND]/[popcount] passes instead of per-bit scans.
    Bits at index [>= length] are kept zero as an invariant, so counts
    never need a trailing mask.

    Storage is a GC-opaque [Bigarray] of [int64] words ([c_layout]):
    million-bit detection matrices cost the garbage collector nothing
    to scan, and the packed fault-simulation kernels write whole words
    through {!unsafe_words} without boxing. *)

type t

val create : int -> t
(** [create n] — [n] zero bits.  Raises [Invalid_argument] on a
    negative length.  [create 0] is valid and empty. *)

val length : t -> int

val copy : t -> t

(** {1 Bit access} *)

val get : t -> int -> bool
val set : t -> int -> unit
(** Both raise [Invalid_argument] out of range. *)

(** {1 Word access}

    The packed fault simulator produces whole 64-bit detection words
    (one per vector block); these avoid 64 single-bit updates. *)

val num_words : t -> int
(** [ceil (length / 64)]. *)

val word : t -> int -> int64
val set_word : t -> int -> int64 -> unit
(** [set_word t w bits] overwrites word [w].  Bits beyond [length] in
    the final word are silently cleared to preserve the invariant.
    Both raise a labeled [Invalid_argument] when [w] is outside
    [0 .. num_words - 1] — in particular {e every} [w] on a
    zero-length vector, mirroring {!get}/{!set}'s checked behaviour. *)

val unsafe_words : t -> (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The backing word buffer, borrowed.  For allocation-free kernels
    that fuse loads, [Int64] ops and stores in single expressions; a
    writer must preserve the tail invariant itself (mask the final
    word with {!unsafe_tail_mask}).  Everyone else wants
    {!word}/{!set_word}. *)

val unsafe_tail_mask : t -> int64
(** All-ones below [length] in the final word ([-1L] when [length] is
    a multiple of 64) — the mask a {!unsafe_words} writer must AND
    into the last word. *)

(** {1 Whole-vector queries} *)

val count : t -> int
(** Number of set bits (popcount). *)

val is_empty : t -> bool

val first_set : t -> int
(** Lowest set bit index, [-1] when none. *)

val equal : t -> t -> bool
(** Same length and same bits. *)

val inter_count : t -> t -> int
(** [popcount (a AND b)].  Raises [Invalid_argument] on a length
    mismatch. *)

val intersects : t -> t -> bool
(** [(a AND b) <> 0], without counting. *)

val diff_inplace : t -> t -> unit
(** [diff_inplace a b] clears in [a] every bit set in [b]
    ([a := a AND NOT b]).  Raises [Invalid_argument] on a length
    mismatch. *)

val iter_set : t -> (int -> unit) -> unit
(** Calls the function on each set bit index, ascending. *)

(** {1 Word primitives} *)

val popcount64 : int64 -> int
(** Branch-free SWAR population count of one word. *)

val ctz64 : int64 -> int
(** Count of trailing zero bits; [64] for [0L]. *)
