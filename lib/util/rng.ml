(* SplitMix64.  The state advances by the golden-ratio Weyl constant;
   each output is the advanced state pushed through a 64-bit finalizer
   (Stafford's "Mix13" variant of the MurmurHash3 mixer). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

(* Pure stream derivation: unlike [split], the parent state is read but
   not advanced, so [derive t i] depends only on (state, i).  Adding a
   distinct multiple of the (odd) golden gamma per index keeps the
   pre-mix keys distinct; two finalizer rounds decorrelate children
   from the parent's own output sequence. *)
let derive t i =
  let key = Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
  { state = mix64 (mix64 key) }

(* Uniform int in [0, n) by rejection on the top of the range, to avoid
   modulo bias.  [n] fits an OCaml int, so working on 62 bits of the
   64-bit output is safe. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical Int64.minus_one 2 in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) mask) in
    let r = v mod n in
    (* reject the final partial block *)
    if v - r > max_int - n + 1 then draw () else r
  in
  draw ()

let int_in_range t ~min ~max =
  if min > max then invalid_arg "Rng.int_in_range: min > max";
  min + int t (max - min + 1)

let float t x =
  (* 53 random bits, scaled to [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  let u = float_of_int bits /. 9007199254740992.0 in
  u *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec non_zero () =
    let u = float t 1.0 in
    if u > 0.0 then u else non_zero ()
  in
  let u1 = non_zero () and u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | l -> List.nth l (int t (List.length l))

let sample_without_replacement t k arr =
  let n = Array.length arr in
  let k = Stdlib.min k n in
  let pool = Array.copy arr in
  for i = 0 to k - 1 do
    let j = int_in_range t ~min:i ~max:(n - 1) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 k
