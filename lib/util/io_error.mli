(** Structured I/O and parse errors.

    Every parser and file reader/writer at the persistence boundary
    reports failures as a value of this type instead of raising, so a
    malformed or unreadable input degrades into a diagnosable [Error]
    that pinpoints where it happened: which file, which line, which
    byte offset. *)

type t = {
  path : string option;  (** The file involved, when one is. *)
  line : int option;  (** 1-based line of the offending input. *)
  offset : int option;  (** Byte offset (or column) when line-less. *)
  message : string;
}

val make : ?path:string -> ?line:int -> ?offset:int -> string -> t

val with_path : string -> t -> t
(** Attach a path to an error produced while parsing in-memory text;
    keeps an already-present path. *)

val of_sys_error : path:string -> string -> t
(** Wrap a [Sys_error] message, stripping the leading ["path: "] the
    runtime prepends so {!to_string} does not repeat it. *)

val to_string : t -> string
(** ["path:line: message"], degrading gracefully when components are
    absent (["line 3: ..."], ["offset 17: ..."], or the bare message). *)

val pp : Format.formatter -> t -> unit
