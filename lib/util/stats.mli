(** Small numerical helpers shared by estimators, benches and reports. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Population variance; 0 if fewer than two samples. *)

val stddev : float array -> float

val median : float array -> float
(** Median (average of the two central elements for even lengths);
    0 on the empty array.  Does not mutate its argument. *)

val min_max : float array -> float * float
(** Raises [Invalid_argument] on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation.
    Raises [Invalid_argument] on the empty array. *)

val sum : float array -> float
(** Numerically stable (Kahan) summation. *)

val ratio_percent : float -> float -> float
(** [ratio_percent a b] is [100 * (a - b) / b]: how much larger [a] is
    than the reference [b], in percent. *)

val histogram : bins:int -> float array -> (float * int) array
(** [histogram ~bins xs] returns [(bin_lower_edge, count)] pairs
    covering [min xs, max xs].  Raises on empty input or [bins <= 0]. *)
