(** Plain-text table rendering for benchmark reports.

    The benchmark harness prints Table-1-style rows; this module keeps
    the column alignment logic in one place. *)

type align = Left | Right

type t

val create : (string * align) list -> t
(** [create headers] starts a table with the given column headers and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Appends a row.  Raises [Invalid_argument] if the arity does not
    match the header. *)

val render : t -> string
(** Renders with a header rule and padded columns. *)

val print : t -> unit
(** [render] to stdout followed by a newline flush. *)
