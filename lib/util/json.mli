(** Minimal JSON reader/writer for the campaign result store.

    Covers exactly what an append-only JSONL file of measurement
    records needs: the seven JSON value forms, a compact one-line
    printer whose floats round-trip exactly, and a strict
    recursive-descent parser with character-offset error reporting.
    No streaming, no Unicode beyond pass-through UTF-8 bytes, no
    dependency beyond the standard library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** Insertion-ordered; keys should be unique. *)

val to_string : t -> string
(** Compact single-line rendering (no newlines — safe for JSONL).
    Floats print with enough digits to round-trip bit-exactly and
    always carry a ['.'] or exponent so they re-parse as [Float];
    non-finite floats render as the string sentinels ["nan"], ["inf"]
    and ["-inf"], which {!to_float} decodes back — so a NaN metric
    survives a JSONL round-trip instead of degrading to [Null]. *)

val parse : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error.  Errors
    carry the byte offset of the failure.  Numbers with a fraction or
    exponent parse as [Float], others as [Int]. *)

(** {1 Accessors}

    Total lookups for decoding records; all return [None] on a shape
    mismatch rather than raising. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the value under the first binding of [k]. *)

val to_int : t -> int option

val to_float : t -> float option
(** [to_float] accepts [Float], [Int], and the non-finite sentinel
    strings ["nan"], ["inf"], ["-inf"] emitted by {!to_string}. *)

val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
