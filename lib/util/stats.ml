let sum xs =
  (* Kahan compensated summation *)
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.map (fun x -> (x -. m) *. (x -. m)) xs in
    sum acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let median xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    if n mod 2 = 1 then s.(n / 2) else 0.5 *. (s.((n / 2) - 1) +. s.(n / 2))
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Stdlib.min lo x, Stdlib.max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let s = Array.copy xs in
  Array.sort compare s;
  let n = Array.length s in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then s.(lo)
  else begin
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. s.(lo)) +. (w *. s.(hi))
  end

let ratio_percent a b = 100.0 *. (a -. b) /. b

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  let place x =
    let i = int_of_float ((x -. lo) /. width) in
    let i = if i >= bins then bins - 1 else i in
    counts.(i) <- counts.(i) + 1
  in
  Array.iter place xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
