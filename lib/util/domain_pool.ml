type job = {
  f : int -> unit;
  chunks : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  claimed : int array; (* per participant; slot i written only by i *)
}

type t = {
  mutable job : job option;
  mutable generation : int;
  mutable stop : bool;
  mutable failure : exn option;
  m : Mutex.t;
  work_cv : Condition.t; (* workers: a new generation is up *)
  done_cv : Condition.t; (* caller: the current job completed *)
  mutable workers : unit Domain.t array;
  size : int;
}

(* Claim chunks round-robin until none remain.  Every claimed chunk
   increments [completed] exactly once (even when [f] raises — the
   failure is recorded and the barrier still closes); whoever
   completes the last chunk wakes the caller. *)
let execute t job me =
  let rec claim () =
    let c = Atomic.fetch_and_add job.next 1 in
    if c < job.chunks then begin
      job.claimed.(me) <- job.claimed.(me) + 1;
      (try job.f c
       with e ->
         Mutex.lock t.m;
         if t.failure = None then t.failure <- Some e;
         Mutex.unlock t.m);
      if Atomic.fetch_and_add job.completed 1 = job.chunks - 1 then begin
        Mutex.lock t.m;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.m
      end;
      claim ()
    end
  in
  claim ()

let worker t me =
  let rec loop last_gen =
    Mutex.lock t.m;
    while (not t.stop) && t.generation = last_gen do
      Condition.wait t.work_cv t.m
    done;
    if t.stop then Mutex.unlock t.m
    else begin
      let gen = t.generation in
      let job = t.job in
      Mutex.unlock t.m;
      (match job with Some j -> execute t j me | None -> ());
      loop gen
    end
  in
  loop 0

let create ~domains =
  let size = Stdlib.max 1 domains in
  let t =
    {
      job = None;
      generation = 0;
      stop = false;
      failure = None;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      workers = [||];
      size;
    }
  in
  t.workers <- Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let size t = t.size

let run t ~chunks f =
  if chunks <= 0 then 0
  else if t.size <= 1 || t.stop || chunks = 1 then begin
    for c = 0 to chunks - 1 do
      f c
    done;
    0
  end
  else begin
    let job =
      {
        f;
        chunks;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        claimed = Array.make t.size 0;
      }
    in
    Mutex.lock t.m;
    t.failure <- None;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.m;
    execute t job 0;
    Mutex.lock t.m;
    while Atomic.get job.completed < chunks do
      Condition.wait t.done_cv t.m
    done;
    let failure = t.failure in
    t.job <- None;
    Mutex.unlock t.m;
    (match failure with Some e -> raise e | None -> ());
    let fair = (chunks + t.size - 1) / t.size in
    Array.fold_left
      (fun acc claimed -> acc + Stdlib.max 0 (claimed - fair))
      0 job.claimed
  end

let shutdown t =
  Mutex.lock t.m;
  let already = t.stop in
  t.stop <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.m;
  if not already then begin
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
