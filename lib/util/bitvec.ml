type words =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { len : int; words : words }

let ba_create n : words =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0L;
  a

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; words = ba_create ((len + 63) / 64) }

let length t = t.len
let num_words t = Bigarray.Array1.dim t.words

let copy t =
  let words = ba_create (num_words t) in
  Bigarray.Array1.blit t.words words;
  { t with words }

let check_index t i op =
  if i < 0 || i >= t.len then invalid_arg ("Bitvec." ^ op ^ ": index out of range")

(* Word indices get the same labeled validation as bit indices: an
   out-of-range [w] must not escape as a bare Bigarray bounds error,
   and [create 0] (zero words) must reject every [w] rather than
   behave differently from the checked bit accessors. *)
let check_word t w op =
  if w < 0 || w >= num_words t then
    invalid_arg ("Bitvec." ^ op ^ ": word index out of range")

let get t i =
  check_index t i "get";
  Int64.logand
    (Int64.shift_right_logical (Bigarray.Array1.unsafe_get t.words (i / 64))
       (i land 63))
    1L
  = 1L

let set t i =
  check_index t i "set";
  Bigarray.Array1.unsafe_set t.words (i / 64)
    (Int64.logor
       (Bigarray.Array1.unsafe_get t.words (i / 64))
       (Int64.shift_left 1L (i land 63)))

(* Bits of the last word at index >= len, as a clearing mask. *)
let tail_mask t =
  let used = t.len land 63 in
  if used = 0 then Int64.minus_one
  else Int64.sub (Int64.shift_left 1L used) 1L

let word t w =
  check_word t w "word";
  Bigarray.Array1.unsafe_get t.words w

let set_word t w bits =
  check_word t w "set_word";
  let bits =
    if w = num_words t - 1 then Int64.logand bits (tail_mask t) else bits
  in
  Bigarray.Array1.unsafe_set t.words w bits

let unsafe_words t = t.words
let unsafe_tail_mask = tail_mask

let popcount64 x =
  let open Int64 in
  let m1 = 0x5555555555555555L in
  let m2 = 0x3333333333333333L in
  let m4 = 0x0F0F0F0F0F0F0F0FL in
  let x = sub x (logand (shift_right_logical x 1) m1) in
  let x = add (logand x m2) (logand (shift_right_logical x 2) m2) in
  let x = logand (add x (shift_right_logical x 4)) m4 in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let ctz64 x =
  if x = 0L then 64
  else popcount64 (Int64.sub (Int64.logand x (Int64.neg x)) 1L)

let count t =
  let acc = ref 0 in
  for w = 0 to num_words t - 1 do
    acc := !acc + popcount64 (Bigarray.Array1.unsafe_get t.words w)
  done;
  !acc

let is_empty t =
  let n = num_words t in
  let rec scan w =
    w >= n || (Bigarray.Array1.unsafe_get t.words w = 0L && scan (w + 1))
  in
  scan 0

let first_set t =
  let n = num_words t in
  let rec scan w =
    if w >= n then -1
    else begin
      let bits = Bigarray.Array1.unsafe_get t.words w in
      if bits = 0L then scan (w + 1) else (w * 64) + ctz64 bits
    end
  in
  scan 0

let equal a b =
  a.len = b.len
  && begin
    let n = num_words a in
    let rec scan w =
      w >= n
      || (Bigarray.Array1.unsafe_get a.words w
            = Bigarray.Array1.unsafe_get b.words w
         && scan (w + 1))
    in
    scan 0
  end

let check_lengths a b op =
  if a.len <> b.len then invalid_arg ("Bitvec." ^ op ^ ": length mismatch")

let inter_count a b =
  check_lengths a b "inter_count";
  let acc = ref 0 in
  for w = 0 to num_words a - 1 do
    acc :=
      !acc
      + popcount64
          (Int64.logand
             (Bigarray.Array1.unsafe_get a.words w)
             (Bigarray.Array1.unsafe_get b.words w))
  done;
  !acc

let intersects a b =
  check_lengths a b "intersects";
  let n = num_words a in
  let rec scan w =
    w < n
    && (Int64.logand
          (Bigarray.Array1.unsafe_get a.words w)
          (Bigarray.Array1.unsafe_get b.words w)
        <> 0L
       || scan (w + 1))
  in
  scan 0

let diff_inplace a b =
  check_lengths a b "diff_inplace";
  for w = 0 to num_words a - 1 do
    Bigarray.Array1.unsafe_set a.words w
      (Int64.logand
         (Bigarray.Array1.unsafe_get a.words w)
         (Int64.lognot (Bigarray.Array1.unsafe_get b.words w)))
  done

let iter_set t f =
  for w = 0 to num_words t - 1 do
    let bits = ref (Bigarray.Array1.unsafe_get t.words w) in
    while !bits <> 0L do
      let k = ctz64 !bits in
      f ((w * 64) + k);
      bits := Int64.logand !bits (Int64.sub !bits 1L)
    done
  done
