type t = { len : int; words : int64 array }

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; words = Array.make ((len + 63) / 64) 0L }

let length t = t.len
let copy t = { t with words = Array.copy t.words }
let num_words t = Array.length t.words

let check_index t i op =
  if i < 0 || i >= t.len then invalid_arg ("Bitvec." ^ op ^ ": index out of range")

let get t i =
  check_index t i "get";
  Int64.logand (Int64.shift_right_logical t.words.(i / 64) (i land 63)) 1L = 1L

let set t i =
  check_index t i "set";
  t.words.(i / 64) <-
    Int64.logor t.words.(i / 64) (Int64.shift_left 1L (i land 63))

(* Bits of the last word at index >= len, as a clearing mask. *)
let tail_mask t =
  let used = t.len land 63 in
  if used = 0 then Int64.minus_one
  else Int64.sub (Int64.shift_left 1L used) 1L

let word t w = t.words.(w)

let set_word t w bits =
  let bits =
    if w = Array.length t.words - 1 then Int64.logand bits (tail_mask t)
    else bits
  in
  t.words.(w) <- bits

let popcount64 x =
  let open Int64 in
  let m1 = 0x5555555555555555L in
  let m2 = 0x3333333333333333L in
  let m4 = 0x0F0F0F0F0F0F0F0FL in
  let x = sub x (logand (shift_right_logical x 1) m1) in
  let x = add (logand x m2) (logand (shift_right_logical x 2) m2) in
  let x = logand (add x (shift_right_logical x 4)) m4 in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let ctz64 x =
  if x = 0L then 64
  else popcount64 (Int64.sub (Int64.logand x (Int64.neg x)) 1L)

let count t = Array.fold_left (fun acc w -> acc + popcount64 w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0L) t.words

let first_set t =
  let n = Array.length t.words in
  let rec scan w =
    if w >= n then -1
    else if t.words.(w) = 0L then scan (w + 1)
    else (w * 64) + ctz64 t.words.(w)
  in
  scan 0

let equal a b = a.len = b.len && a.words = b.words

let check_lengths a b op =
  if a.len <> b.len then invalid_arg ("Bitvec." ^ op ^ ": length mismatch")

let inter_count a b =
  check_lengths a b "inter_count";
  let acc = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    acc := !acc + popcount64 (Int64.logand a.words.(w) b.words.(w))
  done;
  !acc

let intersects a b =
  check_lengths a b "intersects";
  let n = Array.length a.words in
  let rec scan w =
    w < n
    && (Int64.logand a.words.(w) b.words.(w) <> 0L || scan (w + 1))
  in
  scan 0

let diff_inplace a b =
  check_lengths a b "diff_inplace";
  for w = 0 to Array.length a.words - 1 do
    a.words.(w) <- Int64.logand a.words.(w) (Int64.lognot b.words.(w))
  done

let iter_set t f =
  Array.iteri
    (fun w bits ->
      let bits = ref bits in
      while !bits <> 0L do
        let k = ctz64 !bits in
        f ((w * 64) + k);
        bits := Int64.logand !bits (Int64.sub !bits 1L)
      done)
    t.words
