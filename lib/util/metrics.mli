(** Search-observability counters for the cost evaluators.

    Every optimizer in the library spends essentially all of its time
    in cost evaluation, so the counters below make search throughput
    (and regressions in it) visible: how many evaluations ran, how many
    were full recomputations versus cache-assisted delta updates, how
    many were served straight from a cache, and how much per-gate
    degradation work each kind performed.

    Counters are {!Stdlib.Atomic} values: evaluators running in
    parallel [Domain]s (the ES offspring evaluation) may record into
    one shared instance without tearing.  Timings are CPU seconds from
    [Sys.time]. *)

type t
(** A mutable counter set. *)

val create : unit -> t
(** A fresh counter set, all zeros. *)

val global : t
(** The shared default instance.  {!val-Iddq_core.Cost.evaluate} and
    (unless given an explicit instance) [Iddq_core.Cost_eval] record
    here, so snapshots around a phase measure the whole library. *)

(** {1 Recording} *)

val record_full : t -> gates:int -> seconds:float -> unit
(** One complete cost evaluation that recomputed the degradation of
    [gates] gates. *)

val record_delta : t -> gates:int -> seconds:float -> unit
(** One cache-assisted evaluation that recomputed only [gates] gates
    (the modules touched since the previous evaluation). *)

val record_hit : t -> unit
(** One evaluation served entirely from a valid cache. *)

val record_move : t -> unit
(** One gate move applied through an incremental evaluator. *)

val record_fault_sim :
  ?steals:int -> t -> blocks:int -> fault_blocks:int -> dropped:int -> unit
(** One packed fault-simulation run ([Iddq_defects.Fault_sim]):
    [blocks] good-machine 64-vector block evaluations, [fault_blocks]
    per-fault word-operation block passes, [dropped] faults removed
    from further simulation by fault dropping, and [steals] fault
    chunks a pool participant executed beyond an even static split
    (work the round-robin scheduler rebalanced; default [0]). *)

val record_request : t -> ok:bool -> seconds:float -> unit
(** One service request ([Iddq_server.Service]): outcome and
    wall-clock latency.  [ok] is false for requests answered with a
    protocol error. *)

val record_server_cache : t -> hit:bool -> unit
(** One session-cache lookup by the resident service: a [hit] reused a
    parsed circuit, characterization, or packed vector set; a miss
    computed and stored it. *)

val record_cache_eviction : ?count:int -> t -> unit
(** [count] (default 1) session-cache entries evicted by the
    size-bounded LRU policy to make room for new ones. *)

val record_shed : t -> unit
(** One request refused with the [overloaded] error by the server's
    load-shedding admission control (pipeline-depth or queue-depth
    limit hit). *)

val record_queue_depth : t -> int -> unit
(** Observe the server's global pending-request queue depth; keeps the
    high-water mark ({!field-server_queue_peak}). *)

val record_wbuf : t -> int -> unit
(** Observe one connection's write-buffer size in bytes; keeps the
    high-water mark ({!field-server_wbuf_peak}). *)

(** {1 Snapshots} *)

type snapshot = {
  full_evals : int;  (** Complete recomputations. *)
  delta_evals : int;  (** Cache-assisted recomputations. *)
  cache_hits : int;  (** Evaluations served from a valid cache. *)
  moves : int;  (** Moves applied through incremental evaluators. *)
  gates_full : int;
      (** Per-gate degradation recomputations done by full evaluations
          (the sum of circuit sizes over {!field-full_evals}). *)
  gates_delta : int;
      (** Per-gate degradation recomputations done by delta
          evaluations. *)
  seconds_full : float;  (** CPU seconds spent in full evaluations. *)
  seconds_delta : float;  (** CPU seconds spent in delta evaluations. *)
  sim_blocks : int;
      (** Good-machine 64-vector blocks evaluated by the packed fault
          simulator. *)
  sim_fault_blocks : int;
      (** Per-fault block passes (word operations) performed by the
          packed fault simulator. *)
  sim_faults_dropped : int;
      (** Faults dropped (detected, never re-simulated) by the packed
          fault simulator. *)
  sim_steals : int;
      (** Fault chunks executed beyond an even static split by the
          work-stealing scheduler (idle-domain work rebalanced). *)
  requests : int;  (** Service requests answered (ok or error). *)
  requests_failed : int;  (** Requests answered with a protocol error. *)
  seconds_requests : float;
      (** Wall-clock seconds spent answering requests (a timing
          field). *)
  server_cache_hits : int;  (** Session-cache lookups served. *)
  server_cache_misses : int;  (** Session-cache lookups computed. *)
  server_cache_evictions : int;
      (** Session-cache entries evicted by the LRU size bound. *)
  server_sheds : int;
      (** Requests refused with [overloaded] by admission control. *)
  server_queue_peak : int;
      (** High-water mark of the server's pending-request queue. *)
  server_wbuf_peak : int;
      (** High-water mark of any connection's write buffer, bytes. *)
}

val snapshot : t -> snapshot
(** A consistent-enough copy of the counters (each counter is read
    atomically; the set is not read under one lock). *)

val reset : t -> unit

val diff : snapshot -> snapshot -> snapshot
(** [diff after before] — counter increments between two snapshots of
    the same instance.  The high-water marks
    ([server_queue_peak]/[server_wbuf_peak]) are not increments; the
    diff carries [after]'s mark. *)

(** {1 Derived measures} *)

val evaluations : snapshot -> int
(** Cost queries answered: [full + delta + hits]. *)

val equivalent_evals : snapshot -> float
(** The work performed, in units of one full [Cost.evaluate]:
    [full_evals + gates_delta / (gates_full / full_evals)].  The
    normalizer is the mean circuit size seen by the full evaluations;
    when no full evaluation was recorded the delta work cannot be
    normalized and every delta evaluation is counted as a full one
    (a pessimistic upper bound). *)

val speedup : snapshot -> float
(** [evaluations / equivalent_evals]: how many times fewer
    full-evaluation equivalents were performed than a
    recompute-everything evaluator answering the same queries. *)

val pp : Format.formatter -> snapshot -> unit
(** One-paragraph summary of a snapshot. *)
