module Rng = Iddq_util.Rng
module Charac = Iddq_analysis.Charac
module Graph_algo = Iddq_netlist.Graph_algo
module Technology = Iddq_celllib.Technology
module Partition = Iddq_core.Partition

let target_module_size ?(margin = 0.75) ch =
  let n = Charac.num_gates ch in
  let total_leak = ref 0.0 in
  for g = 0 to n - 1 do
    total_leak := !total_leak +. Charac.leakage ch g
  done;
  let mean_leak = !total_leak /. float_of_int (Stdlib.max 1 n) in
  let tech = Charac.technology ch in
  let feasible =
    tech.Technology.iddq_threshold
    /. (tech.Technology.required_discriminability *. mean_leak)
  in
  let size = int_of_float (Float.floor (margin *. feasible)) in
  Stdlib.max 1 (Stdlib.min n size)

(* Grow one module by chains: follow free fanouts toward the outputs;
   when a chain dies, reseed from a free gate adjacent to the module
   (keeping it connected), else from the free gate closest to the
   primary inputs. *)
let chain_partition ~rng ?module_size ch =
  let n = Charac.num_gates ch in
  let size_cap =
    match module_size with Some s -> Stdlib.max 1 s | None -> target_module_size ch
  in
  let c = Charac.circuit ch in
  let u = Charac.undirected ch in
  let depth_of = Array.init n (Charac.gate_depth ch) in
  let assignment = Array.make n (-1) in
  let free_count = ref n in
  (* free gates of minimum depth, with random tie-breaking *)
  let min_depth_free () =
    let best = ref max_int in
    for g = 0 to n - 1 do
      if assignment.(g) < 0 && depth_of.(g) < !best then best := depth_of.(g)
    done;
    let candidates = ref [] in
    for g = 0 to n - 1 do
      if assignment.(g) < 0 && depth_of.(g) = !best then
        candidates := g :: !candidates
    done;
    Rng.choose_list rng !candidates
  in
  let module_id = ref (-1) in
  let module_members = ref [] in
  let module_count = ref 0 in
  let open_module () =
    incr module_id;
    module_members := [];
    module_count := 0
  in
  let claim g =
    assignment.(g) <- !module_id;
    module_members := g :: !module_members;
    incr module_count;
    decr free_count
  in
  (* a free gate adjacent (undirected) to the open module, if any *)
  let adjacent_free () =
    let found = ref [] in
    List.iter
      (fun g ->
        Graph_algo.iter_neighbours u g (fun h ->
            if assignment.(h) < 0 then found := h :: !found))
      !module_members;
    match !found with [] -> None | l -> Some (Rng.choose_list rng l)
  in
  let free_fanout g =
    let options =
      Array.to_list (Iddq_netlist.Circuit.gate_fanout_gates c g)
      |> List.filter (fun h -> assignment.(h) < 0)
    in
    match options with [] -> None | l -> Some (Rng.choose_list rng l)
  in
  open_module ();
  while !free_count > 0 do
    if !module_count >= size_cap then open_module ();
    (* seed a chain *)
    let seed =
      if !module_count = 0 then min_depth_free ()
      else begin
        match adjacent_free () with
        | Some g -> g
        | None -> min_depth_free ()
      end
    in
    claim seed;
    (* follow free fanouts toward a primary output *)
    let rec follow g =
      if !module_count < size_cap then begin
        match free_fanout g with
        | None -> ()
        | Some next ->
          claim next;
          follow next
      end
    in
    follow seed
  done;
  Partition.create ch ~assignment

let population ~rng ?module_size ~count ch =
  List.init count (fun _ -> chain_partition ~rng ?module_size ch)
