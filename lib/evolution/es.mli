(** Generic evolution strategy (paper §4.1, after Rechenberg/Schwefel).

    One cycle: {e recombination} (here plain duplication — the paper
    found one parent per child sufficient), {e mutation} (λ mutated
    children and χ Monte-Carlo children per parent), and {e selection}
    (parents older than the maximum lifetime ω are discarded; the μ
    cheapest individuals survive).  Each descendant carries its own
    mutation step width [m], itself mutated with a normal perturbation
    of standard deviation ε. *)

type params = {
  mu : int;  (** Number of parents μ. *)
  lambda : int;  (** Mutated children per parent λ. *)
  chi : int;  (** Monte-Carlo children per parent χ. *)
  omega : int;  (** Maximum lifetime ω (generations). *)
  m_init : int;  (** Initial step width [m] (max gates moved). *)
  epsilon : float;  (** Std-dev of the step-width mutation ε. *)
  max_generations : int;
  stall_generations : int;
      (** Stop after this many generations without improvement of the
          best cost ("until the results converged", §5.1). *)
  domains : int;
      (** Domains used to evaluate offspring costs in parallel (the
          μ·(λ+χ) candidates of a generation are independent).  All
          rng draws (copying and mutating) stay on the calling domain
          in a fixed order, so the run is deterministic and identical
          for every value of [domains].  With [domains > 1] the
          problem's [cost] must be safe to call concurrently on
          distinct solutions.  Default 1 (fully sequential). *)
}

val default_params : params
(** μ=4, λ=7, χ=2, ω=5, m=4, ε=1.5, 500 generations max, stall 60,
    1 domain. *)

type 'a problem = {
  copy : 'a -> 'a;
  cost : 'a -> float;
      (** Smaller is better; constraint violations must already be
          folded in (penalty). *)
  mutate : Iddq_util.Rng.t -> step:int -> 'a -> unit;
      (** In-place neighbourhood mutation with the given step width. *)
  monte_carlo : Iddq_util.Rng.t -> 'a -> unit;
      (** In-place large random jump. *)
}

type 'a individual = {
  solution : 'a;
  cost : float;
  age : int;
  step : int;
}

type generation_report = {
  generation : int;
  best_cost : float;
  mean_cost : float;
  population : int;
}

val run :
  ?on_generation:(generation_report -> unit) ->
  params ->
  Iddq_util.Rng.t ->
  'a problem ->
  'a list ->
  'a individual * generation_report list
(** [run params rng problem starts] evolves from the given start
    solutions (at least one; they are copied, the inputs are not
    mutated).  Returns the best individual ever seen and the
    per-generation trace (oldest first). *)
