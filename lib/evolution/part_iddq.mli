(** Adaptation of the evolution strategy to PART-IDDQ (paper §4.2).

    Mutation: pick a source module, determine its boundary gates,
    move [m_move ~ U{1 .. min(m, m_boundary)}] randomly chosen
    boundary gates each into a (randomly chosen) module it is
    connected with.  Monte-Carlo descendants move a random number of
    gates of a random module into a random module, deleting the source
    when emptied — a larger jump that keeps the search out of local
    minima. *)

val mutate : Iddq_util.Rng.t -> step:int -> Iddq_core.Partition.t -> unit
(** No-op when the partition has a single module or the chosen source
    has no boundary gates after a few retries. *)

val monte_carlo : Iddq_util.Rng.t -> Iddq_core.Partition.t -> unit

val problem :
  ?weights:Iddq_core.Cost.weights -> unit -> Iddq_core.Partition.t Es.problem
(** The {!Es.problem} instance: cost is the penalized weighted cost
    ({!Iddq_core.Cost.evaluate}). *)

val optimize :
  ?weights:Iddq_core.Cost.weights ->
  ?params:Es.params ->
  ?on_generation:(Es.generation_report -> unit) ->
  rng:Iddq_util.Rng.t ->
  starts:Iddq_core.Partition.t list ->
  unit ->
  Iddq_core.Partition.t Es.individual * Es.generation_report list
(** Runs the ES over partitions from the given start population. *)
