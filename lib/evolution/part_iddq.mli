(** Adaptation of the evolution strategy to PART-IDDQ (paper §4.2).

    Mutation: pick a source module, determine its boundary gates,
    move [m_move ~ U{1 .. min(m, m_boundary)}] randomly chosen
    boundary gates each into a (randomly chosen) module it is
    connected with.  Monte-Carlo descendants move a random number of
    gates of a random module into a random module, deleting the source
    when emptied — a larger jump that keeps the search out of local
    minima.

    The ES evolves {!Iddq_core.Cost_eval.t} individuals: every move a
    mutation makes flows through the evaluator, so a child's cost is a
    delta evaluation touching only the modules the mutation changed
    (one refresh per child, however many gates moved) instead of a
    full {!Iddq_core.Cost.evaluate}.  Offspring evaluators are fully
    independent (deep-copied partitions and caches; the shared
    {!Iddq_util.Metrics.t} is atomic), so offspring costs may be
    computed on parallel domains via {!Es.params.domains}. *)

val mutate : Iddq_util.Rng.t -> step:int -> Iddq_core.Partition.t -> unit
(** No-op when the partition has a single module or the chosen source
    has no boundary gates after a few retries. *)

val monte_carlo : Iddq_util.Rng.t -> Iddq_core.Partition.t -> unit

val mutate_with :
  move:(int -> int -> unit) ->
  Iddq_util.Rng.t ->
  step:int ->
  Iddq_core.Partition.t ->
  unit
(** Core of {!mutate} against an explicit [move gate target] effect;
    [p] is only read.  {!mutate} instantiates it with
    {!Iddq_core.Partition.move_gate}, the ES problem with
    {!Iddq_core.Cost_eval.move} so the evaluator observes every
    move. *)

val monte_carlo_with :
  move:(int -> int -> unit) ->
  Iddq_util.Rng.t ->
  Iddq_core.Partition.t ->
  unit
(** Core of {!monte_carlo}, same convention as {!mutate_with}. *)

val problem : unit -> Iddq_core.Cost_eval.t Es.problem
(** The {!Es.problem} instance over incremental evaluators: [cost] is
    {!Iddq_core.Cost_eval.penalized}; weights and metrics are carried
    by each evaluator (set at {!Iddq_core.Cost_eval.create}, inherited
    by copies). *)

val optimize :
  ?weights:Iddq_core.Cost.weights ->
  ?metrics:Iddq_util.Metrics.t ->
  ?params:Es.params ->
  ?on_generation:(Es.generation_report -> unit) ->
  rng:Iddq_util.Rng.t ->
  starts:Iddq_core.Partition.t list ->
  unit ->
  Iddq_core.Partition.t Es.individual * Es.generation_report list
(** Runs the ES over partitions from the given start population (the
    inputs are copied, not mutated) and returns the best individual
    with its solution converted back to a plain partition.  [metrics]
    defaults to {!Iddq_util.Metrics.global}. *)
