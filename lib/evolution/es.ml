module Rng = Iddq_util.Rng

type params = {
  mu : int;
  lambda : int;
  chi : int;
  omega : int;
  m_init : int;
  epsilon : float;
  max_generations : int;
  stall_generations : int;
}

let default_params =
  {
    mu = 4;
    lambda = 7;
    chi = 2;
    omega = 5;
    m_init = 4;
    epsilon = 1.5;
    max_generations = 500;
    stall_generations = 60;
  }

type 'a problem = {
  copy : 'a -> 'a;
  cost : 'a -> float;
  mutate : Iddq_util.Rng.t -> step:int -> 'a -> unit;
  monte_carlo : Iddq_util.Rng.t -> 'a -> unit;
}

type 'a individual = { solution : 'a; cost : float; age : int; step : int }

type generation_report = {
  generation : int;
  best_cost : float;
  mean_cost : float;
  population : int;
}

let check_params p =
  if p.mu < 1 then invalid_arg "Es.run: mu < 1";
  if p.lambda < 0 || p.chi < 0 then invalid_arg "Es.run: negative offspring";
  if p.lambda + p.chi = 0 then invalid_arg "Es.run: no offspring at all";
  if p.omega < 1 then invalid_arg "Es.run: omega < 1";
  if p.m_init < 1 then invalid_arg "Es.run: m_init < 1";
  if p.epsilon < 0.0 then invalid_arg "Es.run: epsilon < 0"

(* The child's step width is normally distributed around the parent's
   (variance epsilon), clipped to >= 1. *)
let child_step rng params parent_step =
  let s =
    Rng.gaussian rng ~mu:(float_of_int parent_step) ~sigma:params.epsilon
  in
  Stdlib.max 1 (int_of_float (Float.round s))

let run ?(on_generation = fun _ -> ()) params rng (problem : _ problem) starts =
  check_params params;
  if starts = [] then invalid_arg "Es.run: no start solutions";
  let make_individual solution =
    { solution; cost = problem.cost solution; age = 0; step = params.m_init }
  in
  let population = ref (List.map (fun s -> make_individual (problem.copy s)) starts) in
  let best =
    ref
      (List.fold_left
         (fun acc ind -> if ind.cost < acc.cost then ind else acc)
         (List.hd !population) (List.tl !population))
  in
  let best_frozen ind = { ind with solution = problem.copy ind.solution } in
  best := best_frozen !best;
  let trace = ref [] in
  let stall = ref 0 in
  let generation = ref 0 in
  let continue_ = ref true in
  while !continue_ && !generation < params.max_generations do
    incr generation;
    let children = ref [] in
    List.iter
      (fun parent ->
        for _ = 1 to params.lambda do
          let sol = problem.copy parent.solution in
          let step = child_step rng params parent.step in
          problem.mutate rng ~step sol;
          children :=
            { solution = sol; cost = problem.cost sol; age = 0; step }
            :: !children
        done;
        for _ = 1 to params.chi do
          let sol = problem.copy parent.solution in
          problem.monte_carlo rng sol;
          let step = child_step rng params parent.step in
          children :=
            { solution = sol; cost = problem.cost sol; age = 0; step }
            :: !children
        done)
      !population;
    let aged_parents =
      List.filter_map
        (fun ind ->
          if ind.age + 1 > params.omega then None
          else Some { ind with age = ind.age + 1 })
        !population
    in
    let pool = aged_parents @ !children in
    let sorted =
      List.sort (fun a b -> Float.compare a.cost b.cost) pool
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    population := take params.mu sorted;
    (match !population with
    | [] ->
      (* every parent exceeded its lifetime and there were no children:
         impossible because lambda + chi >= 1, but keep the invariant *)
      population := [ !best ]
    | _ -> ());
    let gen_best = List.hd !population in
    if gen_best.cost < !best.cost then begin
      best := best_frozen gen_best;
      stall := 0
    end
    else incr stall;
    let costs = List.map (fun i -> i.cost) !population in
    let report =
      {
        generation = !generation;
        best_cost = !best.cost;
        mean_cost =
          List.fold_left ( +. ) 0.0 costs /. float_of_int (List.length costs);
        population = List.length !population;
      }
    in
    trace := report :: !trace;
    on_generation report;
    if !stall >= params.stall_generations then continue_ := false
  done;
  (!best, List.rev !trace)
