module Rng = Iddq_util.Rng

type params = {
  mu : int;
  lambda : int;
  chi : int;
  omega : int;
  m_init : int;
  epsilon : float;
  max_generations : int;
  stall_generations : int;
  domains : int;
}

let default_params =
  {
    mu = 4;
    lambda = 7;
    chi = 2;
    omega = 5;
    m_init = 4;
    epsilon = 1.5;
    max_generations = 500;
    stall_generations = 60;
    domains = 1;
  }

type 'a problem = {
  copy : 'a -> 'a;
  cost : 'a -> float;
  mutate : Iddq_util.Rng.t -> step:int -> 'a -> unit;
  monte_carlo : Iddq_util.Rng.t -> 'a -> unit;
}

type 'a individual = { solution : 'a; cost : float; age : int; step : int }

type generation_report = {
  generation : int;
  best_cost : float;
  mean_cost : float;
  population : int;
}

let check_params p =
  if p.mu < 1 then invalid_arg "Es.run: mu < 1";
  if p.lambda < 0 || p.chi < 0 then invalid_arg "Es.run: negative offspring";
  if p.lambda + p.chi = 0 then invalid_arg "Es.run: no offspring at all";
  if p.omega < 1 then invalid_arg "Es.run: omega < 1";
  if p.m_init < 1 then invalid_arg "Es.run: m_init < 1";
  if p.epsilon < 0.0 then invalid_arg "Es.run: epsilon < 0";
  if p.domains < 1 then invalid_arg "Es.run: domains < 1"

(* Evaluate [f] over the array on up to [domains] domains, work-stealing
   by index.  [f] must not touch shared mutable state (the ES only maps
   the cost function over freshly built, independent solutions). *)
let parallel_map ~domains f xs =
  let n = Array.length xs in
  if domains <= 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f xs.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init (Stdlib.min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    Array.map (function Some r -> r | None -> assert false) results
  end

(* The child's step width is normally distributed around the parent's
   (variance epsilon), clipped to >= 1. *)
let child_step rng params parent_step =
  let s =
    Rng.gaussian rng ~mu:(float_of_int parent_step) ~sigma:params.epsilon
  in
  Stdlib.max 1 (int_of_float (Float.round s))

let run ?(on_generation = fun _ -> ()) params rng (problem : _ problem) starts =
  check_params params;
  if starts = [] then invalid_arg "Es.run: no start solutions";
  let make_individual solution =
    { solution; cost = problem.cost solution; age = 0; step = params.m_init }
  in
  let population = ref (List.map (fun s -> make_individual (problem.copy s)) starts) in
  let best =
    ref
      (List.fold_left
         (fun acc ind -> if ind.cost < acc.cost then ind else acc)
         (List.hd !population) (List.tl !population))
  in
  let best_frozen ind = { ind with solution = problem.copy ind.solution } in
  best := best_frozen !best;
  let trace = ref [] in
  let stall = ref 0 in
  let generation = ref 0 in
  let continue_ = ref true in
  while !continue_ && !generation < params.max_generations do
    incr generation;
    (* Build every child first (all rng draws happen here, in the same
       order whatever [domains] is), then evaluate the costs — the only
       expensive, rng-free part — in parallel. *)
    let specs = ref [] in
    List.iter
      (fun parent ->
        for _ = 1 to params.lambda do
          let sol = problem.copy parent.solution in
          let step = child_step rng params parent.step in
          problem.mutate rng ~step sol;
          specs := (sol, step) :: !specs
        done;
        for _ = 1 to params.chi do
          let sol = problem.copy parent.solution in
          problem.monte_carlo rng sol;
          let step = child_step rng params parent.step in
          specs := (sol, step) :: !specs
        done)
      !population;
    (* [!specs] is in reverse creation order, matching the list an
       interleaved cons loop would have produced. *)
    let spec_arr = Array.of_list !specs in
    let costs =
      parallel_map ~domains:params.domains
        (fun (sol, _) -> problem.cost sol)
        spec_arr
    in
    let children = ref [] in
    for i = Array.length spec_arr - 1 downto 0 do
      let sol, step = spec_arr.(i) in
      children := { solution = sol; cost = costs.(i); age = 0; step } :: !children
    done;
    let aged_parents =
      List.filter_map
        (fun ind ->
          if ind.age + 1 > params.omega then None
          else Some { ind with age = ind.age + 1 })
        !population
    in
    let pool = aged_parents @ !children in
    let sorted =
      List.sort (fun a b -> Float.compare a.cost b.cost) pool
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    population := take params.mu sorted;
    (match !population with
    | [] ->
      (* every parent exceeded its lifetime and there were no children:
         impossible because lambda + chi >= 1, but keep the invariant *)
      population := [ !best ]
    | _ -> ());
    let gen_best = List.hd !population in
    if gen_best.cost < !best.cost then begin
      best := best_frozen gen_best;
      stall := 0
    end
    else incr stall;
    let costs = List.map (fun i -> i.cost) !population in
    let report =
      {
        generation = !generation;
        best_cost = !best.cost;
        mean_cost =
          List.fold_left ( +. ) 0.0 costs /. float_of_int (List.length costs);
        population = List.length !population;
      }
    in
    trace := report :: !trace;
    on_generation report;
    if !stall >= params.stall_generations then continue_ := false
  done;
  (!best, List.rev !trace)
