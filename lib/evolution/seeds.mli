(** Start-population construction (paper §4.2).

    The appropriate module size is first estimated from the simplified
    cost picture with average parameters: area and module count favour
    the largest module that still meets the discriminability
    constraint, so the target size is
    [margin * I_DDQ,th / (d * mean gate leakage)].
    Gates are then clustered into modules by chains grown from gates
    close to a primary input toward the primary outputs; a module is
    closed when it reaches the target size, and a new chain seed
    prefers free gates adjacent to the open module so modules stay
    connected.  Different random tie-breaking yields the different
    start partitions of the population. *)

val target_module_size :
  ?margin:float -> Iddq_analysis.Charac.t -> int
(** Largest feasible module size derated by [margin] (default 0.75),
    clipped to [1 .. num_gates]. *)

val chain_partition :
  rng:Iddq_util.Rng.t ->
  ?module_size:int ->
  Iddq_analysis.Charac.t ->
  Iddq_core.Partition.t
(** One chain-clustered start partition.  [module_size] defaults to
    {!target_module_size}. *)

val population :
  rng:Iddq_util.Rng.t ->
  ?module_size:int ->
  count:int ->
  Iddq_analysis.Charac.t ->
  Iddq_core.Partition.t list
(** [count] start partitions with independent tie-breaking. *)
