module Rng = Iddq_util.Rng
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost

let random_live_module rng p =
  Rng.choose_list rng (Partition.module_ids p)

let mutate rng ~step p =
  if Partition.num_modules p >= 2 then begin
    (* a source with boundary gates exists whenever K >= 2 and the
       partition covers a connected circuit; retry a few picks *)
    let rec pick_source tries =
      if tries = 0 then None
      else begin
        let src = random_live_module rng p in
        let boundary = Partition.boundary_gates p src in
        if Array.length boundary > 0 then Some boundary
        else pick_source (tries - 1)
      end
    in
    match pick_source 8 with
    | None -> ()
    | Some boundary ->
      let bound = Stdlib.min step (Array.length boundary) in
      let m_move = 1 + Rng.int rng bound in
      let chosen = Rng.sample_without_replacement rng m_move boundary in
      Array.iter
        (fun g ->
          match Partition.neighbour_modules p g with
          | [] -> ()
          | targets -> Partition.move_gate p g (Rng.choose_list rng targets))
        chosen
  end

let monte_carlo rng p =
  if Partition.num_modules p >= 2 then begin
    let src = random_live_module rng p in
    let target =
      let rec pick () =
        let m = random_live_module rng p in
        if m = src then pick () else m
      in
      pick ()
    in
    let gates = Partition.members p src in
    let count = 1 + Rng.int rng (Array.length gates) in
    let chosen = Rng.sample_without_replacement rng count gates in
    Array.iter (fun g -> Partition.move_gate p g target) chosen
  end

let problem ?weights () =
  {
    Es.copy = Partition.copy;
    cost = (fun p -> (Cost.evaluate ?weights p).Cost.penalized);
    mutate;
    monte_carlo;
  }

let optimize ?weights ?(params = Es.default_params) ?on_generation ~rng ~starts
    () =
  Es.run ?on_generation params rng (problem ?weights ()) starts
