module Rng = Iddq_util.Rng
module Partition = Iddq_core.Partition
module Cost = Iddq_core.Cost
module Cost_eval = Iddq_core.Cost_eval

let random_live_module rng p =
  Rng.choose_list rng (Partition.module_ids p)

(* The mutation cores are written against a read view [p] and a [move]
   callback so the same logic drives both a bare partition and an
   incremental evaluator (which must observe every move to stay
   coherent). *)
let mutate_with ~move rng ~step p =
  if Partition.num_modules p >= 2 then begin
    (* a source with boundary gates exists whenever K >= 2 and the
       partition covers a connected circuit; retry a few picks *)
    let rec pick_source tries =
      if tries = 0 then None
      else begin
        let src = random_live_module rng p in
        let boundary = Partition.boundary_gates p src in
        if Array.length boundary > 0 then Some boundary
        else pick_source (tries - 1)
      end
    in
    match pick_source 8 with
    | None -> ()
    | Some boundary ->
      let bound = Stdlib.min step (Array.length boundary) in
      let m_move = 1 + Rng.int rng bound in
      let chosen = Rng.sample_without_replacement rng m_move boundary in
      Array.iter
        (fun g ->
          match Partition.neighbour_modules p g with
          | [] -> ()
          | targets -> move g (Rng.choose_list rng targets))
        chosen
  end

let monte_carlo_with ~move rng p =
  if Partition.num_modules p >= 2 then begin
    let src = random_live_module rng p in
    let target =
      let rec pick () =
        let m = random_live_module rng p in
        if m = src then pick () else m
      in
      pick ()
    in
    let gates = Partition.members p src in
    let count = 1 + Rng.int rng (Array.length gates) in
    let chosen = Rng.sample_without_replacement rng count gates in
    Array.iter (fun g -> move g target) chosen
  end

let mutate rng ~step p = mutate_with ~move:(Partition.move_gate p) rng ~step p
let monte_carlo rng p = monte_carlo_with ~move:(Partition.move_gate p) rng p

let problem () =
  {
    Es.copy = Cost_eval.copy;
    cost = Cost_eval.penalized;
    mutate =
      (fun rng ~step e ->
        mutate_with
          ~move:(fun gate target -> Cost_eval.move e ~gate ~target)
          rng ~step (Cost_eval.partition e));
    monte_carlo =
      (fun rng e ->
        monte_carlo_with
          ~move:(fun gate target -> Cost_eval.move e ~gate ~target)
          rng (Cost_eval.partition e));
  }

let optimize ?weights ?metrics ?(params = Es.default_params) ?on_generation
    ~rng ~starts () =
  let eval_starts =
    List.map
      (fun p -> Cost_eval.create ?weights ?metrics (Partition.copy p))
      starts
  in
  let best, trace =
    Es.run ?on_generation params rng (problem ()) eval_starts
  in
  ( {
      Es.solution = Cost_eval.partition best.Es.solution;
      cost = best.Es.cost;
      age = best.Es.age;
      step = best.Es.step;
    },
    trace )
