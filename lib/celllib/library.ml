module Gate = Iddq_netlist.Gate

type t = {
  name : string;
  technology : Technology.t;
  cells : Cell.t array; (* indexed by gate kind tag *)
}

let kind_index = function
  | Gate.And -> 0
  | Gate.Nand -> 1
  | Gate.Or -> 2
  | Gate.Nor -> 3
  | Gate.Xor -> 4
  | Gate.Xnor -> 5
  | Gate.Not -> 6
  | Gate.Buff -> 7

let num_kinds = List.length Gate.all_kinds

let check_cell kind (c : Cell.t) =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let pos name v =
    if v <= 0.0 then err "%s: %s must be positive" (Gate.to_string kind) name
    else Ok ()
  in
  let ( let* ) r f = Result.bind r f in
  let* () = pos "peak_current" c.Cell.peak_current in
  let* () = pos "leakage" c.Cell.leakage in
  let* () = pos "delay" c.Cell.delay in
  let* () = pos "drive_resistance" c.Cell.drive_resistance in
  let* () = pos "output_capacitance" c.Cell.output_capacitance in
  let* () = pos "rail_capacitance" c.Cell.rail_capacitance in
  pos "area" c.Cell.area

let make ?(name = "library") ~technology ~cells () =
  let ( let* ) r f = Result.bind r f in
  let* () = Technology.validate technology in
  let slots = Array.make num_kinds None in
  let rec fill = function
    | [] -> Ok ()
    | (kind, cell) :: rest ->
      let i = kind_index kind in
      if slots.(i) <> None then
        Error (Printf.sprintf "kind %s characterized twice" (Gate.to_string kind))
      else begin
        let* () = check_cell kind cell in
        slots.(i) <- Some cell;
        fill rest
      end
  in
  let* () = fill cells in
  let missing =
    List.filter (fun k -> slots.(kind_index k) = None) Gate.all_kinds
  in
  match missing with
  | k :: _ -> Error (Printf.sprintf "kind %s not characterized" (Gate.to_string k))
  | [] ->
    let cells =
      Array.map (function Some c -> c | None -> assert false) slots
    in
    Ok { name; technology; cells }

let name t = t.name
let technology t = t.technology
let cell t kind = t.cells.(kind_index kind)
let cell_for t kind ~fanin = Cell.scale_for_fanin (cell t kind) fanin

let with_technology t technology =
  let cells = List.map (fun k -> (k, cell t k)) Gate.all_kinds in
  make ~name:t.name ~technology ~cells ()

let map_cells t ~f =
  let cells = List.map (fun k -> (k, f k (cell t k))) Gate.all_kinds in
  make ~name:t.name ~technology:t.technology ~cells ()

(* Representative 1 um / 5 V CMOS values.  Leakage is calibrated so
   that the paper's Table-1 module counts keep discriminability >= 10
   at a 1 uA threshold (~0.15 nA mean gate leakage, see DESIGN.md). *)
let default_cells =
  let ns = 1.0e-9 and ma = 1.0e-3 and na = 1.0e-9 and pf = 1.0e-12 in
  let cell ~ipk ~leak ~d ~rg ~cg ~crail ~area =
    {
      Cell.peak_current = ipk *. ma;
      leakage = leak *. na;
      delay = d *. ns;
      drive_resistance = rg;
      output_capacitance = cg *. pf;
      rail_capacitance = crail *. pf;
      area;
    }
  in
  [
    (Gate.Nand, cell ~ipk:0.6 ~leak:0.12 ~d:0.8 ~rg:4200.0 ~cg:0.18 ~crail:0.05 ~area:4.0);
    (Gate.Nor, cell ~ipk:0.7 ~leak:0.14 ~d:0.9 ~rg:4600.0 ~cg:0.20 ~crail:0.05 ~area:4.0);
    (Gate.And, cell ~ipk:0.8 ~leak:0.18 ~d:1.1 ~rg:4200.0 ~cg:0.20 ~crail:0.07 ~area:6.0);
    (Gate.Or, cell ~ipk:0.8 ~leak:0.18 ~d:1.1 ~rg:4600.0 ~cg:0.22 ~crail:0.07 ~area:6.0);
    (Gate.Xor, cell ~ipk:1.2 ~leak:0.25 ~d:1.6 ~rg:5200.0 ~cg:0.30 ~crail:0.10 ~area:10.0);
    (Gate.Xnor, cell ~ipk:1.2 ~leak:0.25 ~d:1.7 ~rg:5200.0 ~cg:0.30 ~crail:0.10 ~area:10.0);
    (Gate.Not, cell ~ipk:0.4 ~leak:0.08 ~d:0.5 ~rg:3600.0 ~cg:0.12 ~crail:0.03 ~area:2.0);
    (Gate.Buff, cell ~ipk:0.5 ~leak:0.10 ~d:0.6 ~rg:3600.0 ~cg:0.14 ~crail:0.04 ~area:3.0);
  ]

let default =
  match make ~name:"cmos1u" ~technology:Technology.default ~cells:default_cells () with
  | Ok t -> t
  | Error e -> failwith ("Library.default: " ^ e)

let pp fmt t =
  Format.fprintf fmt "library %s: %a@." t.name Technology.pp t.technology;
  List.iter
    (fun k ->
      Format.fprintf fmt "  %-4s %a@." (Gate.to_string k) Cell.pp (cell t k))
    Gate.all_kinds
