(** A characterized target cell library: one {!Cell.t} per gate kind
    plus the {!Technology.t} parameters. *)

type t

val make :
  ?name:string ->
  technology:Technology.t ->
  cells:(Iddq_netlist.Gate.kind * Cell.t) list ->
  unit ->
  (t, string) result
(** Fails if a gate kind is missing, a kind is characterized twice, or
    a cell/technology parameter is out of range. *)

val name : t -> string
val technology : t -> Technology.t

val cell : t -> Iddq_netlist.Gate.kind -> Cell.t
(** Base (2-input) characterization of a kind. *)

val cell_for : t -> Iddq_netlist.Gate.kind -> fanin:int -> Cell.t
(** Characterization derated for the actual fanin count
    ({!Cell.scale_for_fanin}). *)

val default : t
(** A 1 um-class 5 V CMOS library (values representative of the
    paper's mid-90s technology; see DESIGN.md §2 on calibration). *)

val with_technology : t -> Technology.t -> (t, string) result
(** Same cells, different technology constants (validated) — used by
    sensor-variant and threshold-sweep experiments. *)

val map_cells : t -> f:(Iddq_netlist.Gate.kind -> Cell.t -> Cell.t) -> (t, string) result
(** Re-derive every cell (validated) — e.g. scaling leakage for a
    leakier process corner. *)

val pp : Format.formatter -> t -> unit
