type t = {
  peak_current : float;
  leakage : float;
  delay : float;
  drive_resistance : float;
  output_capacitance : float;
  rail_capacitance : float;
  area : float;
}

let low_power_variant cell =
  {
    peak_current = cell.peak_current *. 0.55;
    leakage = cell.leakage *. 0.85;
    delay = cell.delay *. 1.5;
    drive_resistance = cell.drive_resistance *. 1.8;
    output_capacitance = cell.output_capacitance;
    rail_capacitance = cell.rail_capacitance *. 0.9;
    area = cell.area *. 0.85;
  }

let scale_for_fanin cell n =
  let base = 2 in
  if n <= base then cell
  else begin
    let extra = float_of_int (n - base) in
    {
      peak_current = cell.peak_current *. (1.0 +. (0.15 *. extra));
      leakage = cell.leakage *. (1.0 +. (0.20 *. extra));
      delay = cell.delay *. (1.0 +. (0.25 *. extra));
      drive_resistance = cell.drive_resistance *. (1.0 +. (0.10 *. extra));
      output_capacitance = cell.output_capacitance *. (1.0 +. (0.10 *. extra));
      rail_capacitance = cell.rail_capacitance *. (1.0 +. (0.20 *. extra));
      area = cell.area *. (1.0 +. (0.30 *. extra));
    }
  end

let pp fmt c =
  Format.fprintf fmt
    "{ipeak=%.3eA leak=%.3eA delay=%.3es rg=%.1fohm cg=%.3eF crail=%.3eF \
     area=%.1f}"
    c.peak_current c.leakage c.delay c.drive_resistance c.output_capacitance
    c.rail_capacitance c.area
