type t = {
  vdd : float;
  iddq_threshold : float;
  required_discriminability : float;
  rail_budget : float;
  separation_cutoff : int;
  sensor_area_fixed : float;
  sensor_area_conductance : float;
  sensor_rail_capacitance : float;
  settling_decades : float;
}

let default =
  {
    vdd = 5.0;
    iddq_threshold = 1.0e-6;
    required_discriminability = 10.0;
    rail_budget = 0.2;
    separation_cutoff = 6;
    sensor_area_fixed = 2.0e4;
    sensor_area_conductance = 1.0e7;
    sensor_rail_capacitance = 2.0e-12;
    settling_decades = 9.2;
    (* ln(1e4): a ~10 mA transient decaying below a 1 uA threshold *)
  }

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if t.vdd <= 0.0 then err "vdd must be positive"
  else if t.iddq_threshold <= 0.0 then err "iddq_threshold must be positive"
  else if t.required_discriminability < 1.0 then
    err "required_discriminability must be >= 1"
  else if t.rail_budget <= 0.0 || t.rail_budget >= t.vdd then
    err "rail_budget must be in (0, vdd)"
  else if t.separation_cutoff < 1 then err "separation_cutoff must be >= 1"
  else if t.sensor_area_fixed < 0.0 || t.sensor_area_conductance <= 0.0 then
    err "sensor area model coefficients out of range"
  else if t.sensor_rail_capacitance < 0.0 then
    err "sensor_rail_capacitance must be >= 0"
  else if t.settling_decades <= 0.0 then err "settling_decades must be positive"
  else Ok ()

let pp fmt t =
  Format.fprintf fmt
    "{vdd=%.1fV ith=%.2eA d=%.1f r*=%.2fV p=%d A0=%.2e A1=%.2e Cs0=%.2eF \
     k=%.1f}"
    t.vdd t.iddq_threshold t.required_discriminability t.rail_budget
    t.separation_cutoff t.sensor_area_fixed t.sensor_area_conductance
    t.sensor_rail_capacitance t.settling_decades
