(** Electrical characterization of one library cell.

    The paper assumes "a target cell library fully characterized at
    electrical level"; these are exactly the per-cell scalars its
    estimators consume.  Units are SI (amperes, seconds, ohms,
    farads); cell area is in technology-relative units, matching the
    paper's "units whose actual size depends on technology". *)

type t = {
  peak_current : float;
      (** Maximum transient supply current drawn while the cell
          switches (A). *)
  leakage : float;
      (** Non-defective quiescent current contribution, I_DDQ (A). *)
  delay : float;  (** Nominal propagation delay D(g) (s). *)
  drive_resistance : float;
      (** R_g: average equivalent ON resistance of the discharging
          network (ohm). *)
  output_capacitance : float;  (** C_g: equivalent output load (F). *)
  rail_capacitance : float;
      (** Parasitic capacitance the cell adds to the virtual rail
          (junctions on the sources tied to virtual ground) (F). *)
  area : float;  (** Cell area (relative units). *)
}

val low_power_variant : t -> t
(** The low-drive version of a cell, as offered by dual-drive
    libraries: the output stage is weaker, so the switching transient
    peak drops (x0.55) at the price of a slower transition (x1.5) and
    a higher effective drive resistance; quiescent leakage drops
    slightly (longer channel), and the cell is marginally smaller. *)

val scale_for_fanin : t -> int -> t
(** [scale_for_fanin cell n] derates a characterized 2-input (or
    1-input for inverting buffers) cell to an [n]-input instance:
    stacked transistors slow the cell and raise its capacitances and
    currents roughly linearly in the extra inputs. *)

val pp : Format.formatter -> t -> unit
