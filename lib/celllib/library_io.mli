(** Cell-library files: a small INI-style format so downstream users
    can characterize their own technology without recompiling.

    {v
    # my 0.8um library
    [technology]
    vdd = 5.0
    iddq_threshold = 1e-6
    required_discriminability = 10
    rail_budget = 0.2
    separation_cutoff = 6
    sensor_area_fixed = 2e4
    sensor_area_conductance = 1e7
    sensor_rail_capacitance = 2e-12
    settling_decades = 9.2

    [NAND]
    peak_current = 0.6e-3
    leakage = 0.12e-9
    delay = 0.8e-9
    drive_resistance = 4200
    output_capacitance = 0.18e-12
    rail_capacitance = 0.05e-12
    area = 4
    v}

    Every gate kind needs a section with all seven cell fields; the
    [technology] section accepts the nine technology fields.  Missing
    technology keys fall back to {!Technology.default}; missing cell
    sections or fields are errors.

    {b Error contract.}  Malformed text and unreadable files come back
    as [Error] values carrying line/path context; parsing never
    raises. *)

val parse_string :
  ?name:string -> string -> (Library.t, Iddq_util.Io_error.t) result

val parse_file : string -> (Library.t, Iddq_util.Io_error.t) result
(** Descriptor-safe read, then {!parse_string}; errors gain the path. *)

val to_string : Library.t -> string
(** [parse_string (to_string lib)] reproduces the library. *)

val write_file : string -> Library.t -> (unit, Iddq_util.Io_error.t) result
(** Atomic write (scratch file + rename): a crash mid-write leaves any
    previous file at this path intact. *)
