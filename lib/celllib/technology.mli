(** Technology-level parameters of the IDDQ test strategy.

    These are the knobs the paper's constraints and estimators use:
    the detection threshold I_DDQ,th, the required discriminability
    [d], the virtual-rail perturbation budget [r*], the separation
    cutoff [p], and the BIC sensor area model [A0 + A1 / R_s]. *)

type t = {
  vdd : float;  (** Supply voltage (V). *)
  iddq_threshold : float;
      (** I_DDQ,th: smallest defective current that must be flagged
          (A); the paper's typical value is 1 uA. *)
  required_discriminability : float;
      (** d: required I_DDQ,th / I_DDQ,nd ratio per module, >= 1;
          typically 10. *)
  rail_budget : float;
      (** r*: maximum allowed virtual-rail perturbation (V),
          100-300 mV in the paper. *)
  separation_cutoff : int;
      (** p: forced value of the separation parameter for distant or
          disconnected gate pairs. *)
  sensor_area_fixed : float;
      (** A0: area of the detection circuitry (units). *)
  sensor_area_conductance : float;
      (** A1: area per siemens of bypass conductance; the bypass and
          sensing devices cost [A1 / R_s] units. *)
  sensor_rail_capacitance : float;
      (** Intrinsic capacitance the sensor itself adds to the virtual
          rail (F). *)
  settling_decades : float;
      (** Multiplier k in the settling model Delta(tau) = k * tau:
          the number of time constants for i_DD to decay from its
          transient peak below I_DDQ,th (from SPICE in the paper,
          analytic ln(I_peak / I_th) here). *)
}

val default : t
(** 5 V, 1 uA threshold, d = 10, r* = 200 mV, p = 6; sensor area
    A0 = 2.0e4 units, A1 = 1.0e7 units per siemens. *)

val validate : t -> (unit, string) result
(** Positivity / range checks. *)

val pp : Format.formatter -> t -> unit
