module Gate = Iddq_netlist.Gate
module Io = Iddq_util.Io
module Io_error = Iddq_util.Io_error

(* line-oriented INI subset: [section] headers and key = value pairs *)
let parse_sections text =
  let exception Bad of int * string in
  try
    let sections = ref [] in
    (* (name, (key, value) list) in reverse order *)
    let current = ref None in
    let close () =
      match !current with
      | None -> ()
      | Some (name, entries) -> sections := (name, List.rev entries) :: !sections
    in
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        let line =
          match String.index_opt raw '#' with
          | None -> String.trim raw
          | Some j -> String.trim (String.sub raw 0 j)
        in
        if line <> "" then begin
          if line.[0] = '[' then begin
            if line.[String.length line - 1] <> ']' then
              raise (Bad (lineno, "unterminated section header"));
            close ();
            current := Some (String.trim (String.sub line 1 (String.length line - 2)), [])
          end
          else begin
            match String.index_opt line '=' with
            | None -> raise (Bad (lineno, "expected 'key = value'"))
            | Some eq -> begin
              let key = String.trim (String.sub line 0 eq) in
              let value =
                String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
              in
              match !current with
              | None -> raise (Bad (lineno, "entry before any [section]"))
              | Some (name, entries) -> current := Some (name, (key, lineno, value) :: entries)
            end
          end
        end)
      (String.split_on_char '\n' text);
    close ();
    Ok (List.rev !sections)
  with Bad (lineno, m) -> Error (Io_error.make ~line:lineno m)

let float_field entries section key =
  match List.find_opt (fun (k, _, _) -> k = key) entries with
  | None ->
    Error (Io_error.make (Printf.sprintf "section [%s]: missing %s" section key))
  | Some (_, lineno, v) -> begin
    match float_of_string_opt v with
    | Some f -> Ok f
    | None ->
      Error
        (Io_error.make ~line:lineno (Printf.sprintf "%s is not a number" key))
  end

let parse_string ?(name = "library") text =
  let ( let* ) r f = Result.bind r f in
  let* sections = parse_sections text in
  (* technology *)
  let* technology =
    match List.assoc_opt "technology" sections with
    | None -> Ok Technology.default
    | Some entries ->
      let field key fallback =
        if List.exists (fun (k, _, _) -> k = key) entries then
          float_field entries "technology" key
        else Ok fallback
      in
      let d = Technology.default in
      let* vdd = field "vdd" d.Technology.vdd in
      let* iddq_threshold = field "iddq_threshold" d.Technology.iddq_threshold in
      let* required_discriminability =
        field "required_discriminability" d.Technology.required_discriminability
      in
      let* rail_budget = field "rail_budget" d.Technology.rail_budget in
      let* cutoff =
        field "separation_cutoff" (float_of_int d.Technology.separation_cutoff)
      in
      let* sensor_area_fixed = field "sensor_area_fixed" d.Technology.sensor_area_fixed in
      let* sensor_area_conductance =
        field "sensor_area_conductance" d.Technology.sensor_area_conductance
      in
      let* sensor_rail_capacitance =
        field "sensor_rail_capacitance" d.Technology.sensor_rail_capacitance
      in
      let* settling_decades = field "settling_decades" d.Technology.settling_decades in
      Ok
        {
          Technology.vdd;
          iddq_threshold;
          required_discriminability;
          rail_budget;
          separation_cutoff = int_of_float cutoff;
          sensor_area_fixed;
          sensor_area_conductance;
          sensor_rail_capacitance;
          settling_decades;
        }
  in
  (* cells *)
  let rec build_cells acc = function
    | [] -> Ok (List.rev acc)
    | kind :: rest -> begin
      let section = Gate.to_string kind in
      match List.assoc_opt section sections with
      | None -> Error (Io_error.make (Printf.sprintf "missing section [%s]" section))
      | Some entries ->
        let* peak_current = float_field entries section "peak_current" in
        let* leakage = float_field entries section "leakage" in
        let* delay = float_field entries section "delay" in
        let* drive_resistance = float_field entries section "drive_resistance" in
        let* output_capacitance = float_field entries section "output_capacitance" in
        let* rail_capacitance = float_field entries section "rail_capacitance" in
        let* area = float_field entries section "area" in
        build_cells
          (( kind,
             {
               Cell.peak_current;
               leakage;
               delay;
               drive_resistance;
               output_capacitance;
               rail_capacitance;
               area;
             } )
          :: acc)
          rest
    end
  in
  let* cells = build_cells [] Gate.all_kinds in
  Result.map_error
    (fun m -> Io_error.make m)
    (Library.make ~name ~technology ~cells ())

let parse_file path =
  match Io.read_file path with
  | Error e -> Error e
  | Ok text ->
    Result.map_error (Io_error.with_path path)
      (parse_string
         ~name:(Filename.remove_extension (Filename.basename path))
         text)

let to_string lib =
  let buf = Buffer.create 2048 in
  let t = Library.technology lib in
  Buffer.add_string buf (Printf.sprintf "# %s\n[technology]\n" (Library.name lib));
  Buffer.add_string buf (Printf.sprintf "vdd = %.17g\n" t.Technology.vdd);
  Buffer.add_string buf
    (Printf.sprintf "iddq_threshold = %.17g\n" t.Technology.iddq_threshold);
  Buffer.add_string buf
    (Printf.sprintf "required_discriminability = %.17g\n"
       t.Technology.required_discriminability);
  Buffer.add_string buf (Printf.sprintf "rail_budget = %.17g\n" t.Technology.rail_budget);
  Buffer.add_string buf
    (Printf.sprintf "separation_cutoff = %d\n" t.Technology.separation_cutoff);
  Buffer.add_string buf
    (Printf.sprintf "sensor_area_fixed = %.17g\n" t.Technology.sensor_area_fixed);
  Buffer.add_string buf
    (Printf.sprintf "sensor_area_conductance = %.17g\n"
       t.Technology.sensor_area_conductance);
  Buffer.add_string buf
    (Printf.sprintf "sensor_rail_capacitance = %.17g\n"
       t.Technology.sensor_rail_capacitance);
  Buffer.add_string buf
    (Printf.sprintf "settling_decades = %.17g\n" t.Technology.settling_decades);
  List.iter
    (fun kind ->
      let c = Library.cell lib kind in
      Buffer.add_string buf (Printf.sprintf "\n[%s]\n" (Gate.to_string kind));
      Buffer.add_string buf (Printf.sprintf "peak_current = %.17g\n" c.Cell.peak_current);
      Buffer.add_string buf (Printf.sprintf "leakage = %.17g\n" c.Cell.leakage);
      Buffer.add_string buf (Printf.sprintf "delay = %.17g\n" c.Cell.delay);
      Buffer.add_string buf
        (Printf.sprintf "drive_resistance = %.17g\n" c.Cell.drive_resistance);
      Buffer.add_string buf
        (Printf.sprintf "output_capacitance = %.17g\n" c.Cell.output_capacitance);
      Buffer.add_string buf
        (Printf.sprintf "rail_capacitance = %.17g\n" c.Cell.rail_capacitance);
      Buffer.add_string buf (Printf.sprintf "area = %.17g\n" c.Cell.area))
    Gate.all_kinds;
  Buffer.contents buf

let write_file path lib = Io.write_file_atomic path (to_string lib)
