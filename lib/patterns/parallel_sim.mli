(** Bit-parallel logic simulation: 64 vectors per pass.

    The classic PPSFP trick — each net holds an [int64] whose bit [k]
    is the net's value under vector [k], and every gate evaluates all
    64 vectors with a couple of machine instructions.  Fault
    simulation over realistic vector sets gets ~50x faster than
    vector-at-a-time simulation ({!Iddq_defects.Stuck_at} uses this
    internally). *)

val pack : bool array array -> start:int -> int64 array
(** [pack vectors ~start] packs vectors [start .. start+63] (fewer at
    the tail) into one word per circuit input: bit [k] of word [i] is
    input [i] of vector [start + k].

    [start] may equal the vector count: the block is empty and every
    word is [0L] — in particular, packing an empty vector set at
    [start = 0] is a valid no-op returning [[||]], so zero-pattern
    simulation needs no special-casing in callers.  Raises
    [Invalid_argument] if [start < 0], [start] exceeds the vector
    count, or the vectors have inconsistent widths. *)

val active_mask : bool array array -> start:int -> int64
(** Bits corresponding to real vectors in the packed block (all-ones
    except at the tail; [0L] for an empty block — same [start] range
    as {!pack}). *)

(** {1 Whole-set packing}

    Fault simulation re-reads the same vector set once per fault (or
    per fault chunk); packing it {e once} into blocks amortizes the
    bit transposition across every fault and every [Domain]. *)

type packed
(** An immutable vector set packed into 64-wide blocks. *)

val pack_all : bool array array -> packed
(** Pack the whole set: block [b] holds vectors [64b .. 64b+63].
    Raises [Invalid_argument] on inconsistent vector widths.  An empty
    set packs to zero blocks. *)

val n_vectors : packed -> int
val num_blocks : packed -> int

val block : packed -> int -> int64 array
(** The packed input words of one block ({!pack} of its range).  The
    returned array must not be mutated. *)

val block_mask : packed -> int -> int64
(** {!active_mask} of the block: all-ones except at the tail. *)

(** {1 Flat GC-free kernel}

    The hot path: packed blocks live in one block-major [Bigarray] of
    [int64] words, gate evaluation walks the circuit's CSR arrays, and
    a preallocated scratch holds the node words — a block evaluates
    with {e zero} minor-heap allocation (asserted by the kernel
    tests).  Scratch ownership: one scratch per domain; the engine
    never shares a scratch across concurrent evaluations. *)

type ba = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The word-buffer type every flat kernel trades in. *)

val packed_words : packed -> ba
(** The packed input words, flattened block-major: block [b]'s word
    for input [i] sits at [b * num_inputs + i].  Borrowed — do not
    mutate. *)

val eval_block_into : Iddq_netlist.Circuit.t -> packed -> block:int -> dst:ba -> off:int -> unit
(** [eval_block_into c p ~block ~dst ~off] evaluates one packed block
    and writes one word per node into [dst.(off) ..
    dst.(off + num_nodes - 1)].  Gates are visited in the circuit's
    cached {!Iddq_netlist.Level_schedule} order (one cache probe per
    call; the gate loop itself is allocation-free).  Raises
    [Invalid_argument] on a bad block index, an input-width mismatch,
    a too-small destination, or a zero-fanin gate. *)

type scratch
(** Preallocated per-domain node-word buffer (plus the circuit's
    levelized order, resolved once at creation). *)

val create_scratch : Iddq_netlist.Circuit.t -> scratch
val eval_block : Iddq_netlist.Circuit.t -> scratch -> packed -> block:int -> unit
(** {!eval_block_into} at offset 0 of the scratch's buffer.
    Allocation-free: the scratch carries the schedule, so no cache
    probe. *)

val scratch_values : scratch -> ba
(** The scratch buffer (one word per node after {!eval_block}).
    Borrowed — valid until the next {!eval_block} on the same
    scratch. *)

(** {1 Striped levelized kernels}

    The multi-word evaluation engine: node-major value matrices hold
    [stride] consecutive block words per node ([id * stride + blk]),
    and one gate visit evaluates [width] consecutive blocks — one CSR
    traversal (dispatch byte, fanin indices) amortized over [width]
    words, every fanin read a contiguous run (at width 8, exactly one
    fully-used 64-byte cache line).  Independent stripes, and
    independent gates of one level within a stripe, may evaluate on
    different domains concurrently: all writes are disjoint. *)

val seed_inputs_striped :
  Iddq_netlist.Circuit.t ->
  packed ->
  block0:int ->
  width:int ->
  stride:int ->
  dst:ba ->
  unit
(** Transpose the packed input words of blocks
    [block0 .. block0 + width - 1] into the node-major matrix rows of
    [dst] ([input i, block b] at [i * stride + b]).  Allocation-free.
    Raises [Invalid_argument] on a bad block range, an input-width
    mismatch, a stride smaller than [block0 + width], or a too-small
    destination. *)

val eval_order_range_striped :
  Iddq_netlist.Circuit.t ->
  order:int array ->
  lo:int ->
  hi:int ->
  block0:int ->
  width:int ->
  stride:int ->
  dst:ba ->
  unit
(** Evaluate gates [order.(lo) .. order.(hi - 1)] over blocks
    [block0 .. block0 + width - 1] of the node-major matrix [dst].
    The caller guarantees every fanin of the slice already holds its
    value for the same blocks — any slice of a topological [order]
    whose prefix is complete qualifies (whole prefixes, or one level's
    sub-range once all earlier levels are done).  Allocation-free.
    Raises [Invalid_argument] on bad ranges or a zero-fanin gate. *)

val eval_stripe_into :
  Iddq_netlist.Circuit.t ->
  Iddq_netlist.Level_schedule.t ->
  packed ->
  block0:int ->
  width:int ->
  stride:int ->
  dst:ba ->
  unit
(** Seed the stripe's inputs and evaluate the whole circuit in level
    order for [width] consecutive blocks.  Allocation-free (the
    schedule comes in explicitly — resolve it once with
    {!Iddq_netlist.Level_schedule.of_circuit} and reuse). *)

val default_stripe : int
(** Words evaluated per gate visit by {!eval_all_into} unless
    overridden: [8], one cache line. *)

val eval_all_into :
  ?pool:Iddq_util.Domain_pool.t ->
  ?stripe:int ->
  Iddq_netlist.Circuit.t ->
  packed ->
  dst:ba ->
  unit
(** Evaluate {e every} packed block into the node-major matrix [dst]
    (node [id], block [b] at [id * num_blocks p + b]; [dst] must hold
    [num_nodes * num_blocks] words).  Work is cut into stripes of
    [stripe] blocks (clamped to the block count; default
    {!default_stripe}).  Without a [pool] (or with a 1-domain pool)
    the stripes evaluate serially on the caller.  With a pool, whole
    stripes are distributed when there are at least as many stripes as
    domains; otherwise each level of each stripe is split across the
    pool with a barrier per level, narrow levels (under ~1k gates)
    running inline because the job-publish cost would dominate.
    Raises [Invalid_argument] on a bad [stripe], a too-small [dst], or
    a zero-fanin gate. *)

val eval_word : Iddq_netlist.Gate.kind -> int64 array -> int64
(** One gate over packed fanin words.  Raises [Invalid_argument] when
    the word count violates the gate's arity (in particular zero
    fanins, which a silent fold would turn into a constant). *)

val eval : Iddq_netlist.Circuit.t -> int64 array -> int64 array
(** [eval c packed_inputs] returns one word per node.  The input array
    must have [num_inputs] words. *)

val eval_with_stuck_node :
  Iddq_netlist.Circuit.t -> node:int -> value:bool -> int64 array -> int64 array
(** Faulty evaluation with a stem stuck-at. *)

val eval_with_stuck_pin :
  Iddq_netlist.Circuit.t ->
  gate:int ->
  pin:int ->
  value:bool ->
  int64 array ->
  int64 array
(** Faulty evaluation with one gate input pin stuck ([gate] is the
    node id of the reading gate). *)

val output_diff : Iddq_netlist.Circuit.t -> int64 array -> int64 array -> int64
(** OR over the primary outputs of (good XOR faulty): bit [k] set iff
    vector [k] exposes a difference at some output. *)
