(** Bit-parallel logic simulation: 64 vectors per pass.

    The classic PPSFP trick — each net holds an [int64] whose bit [k]
    is the net's value under vector [k], and every gate evaluates all
    64 vectors with a couple of machine instructions.  Fault
    simulation over realistic vector sets gets ~50x faster than
    vector-at-a-time simulation ({!Iddq_defects.Stuck_at} uses this
    internally). *)

val pack : bool array array -> start:int -> int64 array
(** [pack vectors ~start] packs vectors [start .. start+63] (fewer at
    the tail) into one word per circuit input: bit [k] of word [i] is
    input [i] of vector [start + k].

    [start] may equal the vector count: the block is empty and every
    word is [0L] — in particular, packing an empty vector set at
    [start = 0] is a valid no-op returning [[||]], so zero-pattern
    simulation needs no special-casing in callers.  Raises
    [Invalid_argument] if [start < 0], [start] exceeds the vector
    count, or the vectors have inconsistent widths. *)

val active_mask : bool array array -> start:int -> int64
(** Bits corresponding to real vectors in the packed block (all-ones
    except at the tail; [0L] for an empty block — same [start] range
    as {!pack}). *)

(** {1 Whole-set packing}

    Fault simulation re-reads the same vector set once per fault (or
    per fault chunk); packing it {e once} into blocks amortizes the
    bit transposition across every fault and every [Domain]. *)

type packed
(** An immutable vector set packed into 64-wide blocks. *)

val pack_all : bool array array -> packed
(** Pack the whole set: block [b] holds vectors [64b .. 64b+63].
    Raises [Invalid_argument] on inconsistent vector widths.  An empty
    set packs to zero blocks. *)

val n_vectors : packed -> int
val num_blocks : packed -> int

val block : packed -> int -> int64 array
(** The packed input words of one block ({!pack} of its range).  The
    returned array must not be mutated. *)

val block_mask : packed -> int -> int64
(** {!active_mask} of the block: all-ones except at the tail. *)

(** {1 Flat GC-free kernel}

    The hot path: packed blocks live in one block-major [Bigarray] of
    [int64] words, gate evaluation walks the circuit's CSR arrays, and
    a preallocated scratch holds the node words — a block evaluates
    with {e zero} minor-heap allocation (asserted by the kernel
    tests).  Scratch ownership: one scratch per domain; the engine
    never shares a scratch across concurrent evaluations. *)

type ba = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The word-buffer type every flat kernel trades in. *)

val packed_words : packed -> ba
(** The packed input words, flattened block-major: block [b]'s word
    for input [i] sits at [b * num_inputs + i].  Borrowed — do not
    mutate. *)

val eval_block_into : Iddq_netlist.Circuit.t -> packed -> block:int -> dst:ba -> off:int -> unit
(** [eval_block_into c p ~block ~dst ~off] evaluates one packed block
    and writes one word per node into [dst.(off) ..
    dst.(off + num_nodes - 1)].  Allocation-free.  Raises
    [Invalid_argument] on a bad block index, an input-width mismatch,
    a too-small destination, or a zero-fanin gate. *)

type scratch
(** Preallocated per-domain node-word buffer. *)

val create_scratch : Iddq_netlist.Circuit.t -> scratch
val eval_block : Iddq_netlist.Circuit.t -> scratch -> packed -> block:int -> unit
(** {!eval_block_into} at offset 0 of the scratch's buffer. *)

val scratch_values : scratch -> ba
(** The scratch buffer (one word per node after {!eval_block}).
    Borrowed — valid until the next {!eval_block} on the same
    scratch. *)

val eval_word : Iddq_netlist.Gate.kind -> int64 array -> int64
(** One gate over packed fanin words.  Raises [Invalid_argument] when
    the word count violates the gate's arity (in particular zero
    fanins, which a silent fold would turn into a constant). *)

val eval : Iddq_netlist.Circuit.t -> int64 array -> int64 array
(** [eval c packed_inputs] returns one word per node.  The input array
    must have [num_inputs] words. *)

val eval_with_stuck_node :
  Iddq_netlist.Circuit.t -> node:int -> value:bool -> int64 array -> int64 array
(** Faulty evaluation with a stem stuck-at. *)

val eval_with_stuck_pin :
  Iddq_netlist.Circuit.t ->
  gate:int ->
  pin:int ->
  value:bool ->
  int64 array ->
  int64 array
(** Faulty evaluation with one gate input pin stuck ([gate] is the
    node id of the reading gate). *)

val output_diff : Iddq_netlist.Circuit.t -> int64 array -> int64 array -> int64
(** OR over the primary outputs of (good XOR faulty): bit [k] set iff
    vector [k] exposes a difference at some output. *)
