(** Test-vector generation.

    The paper assumes a precomputed vector set (partitioning never
    changes the logic, so the set is unchanged); for the end-to-end
    defect experiments we generate pseudo-random sets, exhaustive sets
    for small circuits, and LFSR sequences as a BIST-flavoured
    source. *)

val random :
  rng:Iddq_util.Rng.t -> Iddq_netlist.Circuit.t -> count:int -> bool array array
(** [count] uniform random vectors. *)

val exhaustive : Iddq_netlist.Circuit.t -> bool array array
(** All [2^n] input vectors in counting order.  Raises
    [Invalid_argument] for more than 20 inputs. *)

val lfsr :
  Iddq_netlist.Circuit.t -> seed:int -> count:int -> bool array array
(** Vectors from a 32-bit maximal-length Fibonacci LFSR (taps
    32,22,2,1), one bit shifted out per input bit.  [seed] must be
    non-zero modulo 2^32. *)
