(** Plain-text vector files: one test vector per line as a string of
    [0]/[1] characters, most-significant input first matching the
    circuit's input order; [#] comments and blank lines ignored.

    {v
    # 5 inputs: 1 2 3 6 7
    01101
    11100
    v} *)

val to_string : bool array array -> string

val of_string : expected_width:int -> string -> (bool array array, string) result
(** Errors carry a line number; every vector must have
    [expected_width] bits. *)

val write_file : string -> bool array array -> unit
val read_file : expected_width:int -> string -> (bool array array, string) result
