(** Plain-text vector files: one test vector per line as a string of
    [0]/[1] characters, most-significant input first matching the
    circuit's input order; [#] comments and blank lines ignored.

    {v
    # 5 inputs: 1 2 3 6 7
    01101
    11100
    v}

    {b Error contract.}  Malformed text and unreadable files come back
    as [Error] values with line/path context; parsing never raises. *)

val to_string : bool array array -> string

val of_string :
  expected_width:int -> string -> (bool array array, Iddq_util.Io_error.t) result
(** Errors carry a line number; every vector must have
    [expected_width] bits. *)

val write_file : string -> bool array array -> (unit, Iddq_util.Io_error.t) result
(** Atomic write (scratch file + rename): a crash mid-write leaves any
    previous file at this path intact. *)

val read_file :
  expected_width:int -> string -> (bool array array, Iddq_util.Io_error.t) result
(** Descriptor-safe read, then {!of_string}; errors gain the path. *)
