module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate
module Level_schedule = Iddq_netlist.Level_schedule
module Domain_pool = Iddq_util.Domain_pool

type ba = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let ba_create n : ba =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0L;
  a

let pack vectors ~start =
  let n = Array.length vectors in
  if start < 0 || start > n then invalid_arg "Parallel_sim.pack: bad start";
  (* [start = n] (in particular an empty vector set): a valid empty
     block.  The vector width — the word count — comes from any
     vector when one exists, and degenerates to 0 words otherwise. *)
  let width = if n = 0 then 0 else Array.length vectors.(0) in
  let count = Stdlib.min 64 (n - start) in
  Array.init width (fun i ->
      let word = ref 0L in
      for k = 0 to count - 1 do
        let v = vectors.(start + k) in
        if Array.length v <> width then
          invalid_arg "Parallel_sim.pack: inconsistent vector widths";
        if v.(i) then word := Int64.logor !word (Int64.shift_left 1L k)
      done;
      !word)

let active_mask vectors ~start =
  let n = Array.length vectors in
  if start < 0 || start > n then
    invalid_arg "Parallel_sim.active_mask: bad start";
  let count = Stdlib.min 64 (n - start) in
  if count = 64 then Int64.minus_one
  else Int64.sub (Int64.shift_left 1L count) 1L

type packed = {
  n_vectors : int;
  n_inputs : int; (* words per block *)
  blocks : int64 array array; (* block -> one word per circuit input *)
  words : ba; (* the same words flattened block-major: block b at b * n_inputs *)
  masks : int64 array; (* block -> bits backed by real vectors *)
}

let pack_all vectors =
  let n = Array.length vectors in
  let n_blocks = (n + 63) / 64 in
  let n_inputs = if n = 0 then 0 else Array.length vectors.(0) in
  let blocks = Array.init n_blocks (fun b -> pack vectors ~start:(b * 64)) in
  let words = ba_create (n_blocks * n_inputs) in
  Array.iteri
    (fun b block ->
      Array.iteri
        (fun i w -> Bigarray.Array1.unsafe_set words ((b * n_inputs) + i) w)
        block)
    blocks;
  {
    n_vectors = n;
    n_inputs;
    blocks;
    words;
    masks = Array.init n_blocks (fun b -> active_mask vectors ~start:(b * 64));
  }

let n_vectors p = p.n_vectors
let num_blocks p = Array.length p.blocks
let block p b = p.blocks.(b)
let block_mask p b = p.masks.(b)
let packed_words p = p.words

let eval_word kind words =
  (* An [And]/[Nand] fold over zero fanins would silently yield
     all-ones (and [Or]/[Nor] all-zeros): reject bad arities exactly
     like the scalar [Gate.eval]. *)
  if not (Gate.arity_ok kind (Array.length words)) then
    invalid_arg
      (Printf.sprintf "Parallel_sim.eval_word: %s with %d inputs"
         (Gate.to_string kind) (Array.length words));
  let fold f init = Array.fold_left f init words in
  match kind with
  | Gate.And -> fold Int64.logand Int64.minus_one
  | Gate.Nand -> Int64.lognot (fold Int64.logand Int64.minus_one)
  | Gate.Or -> fold Int64.logor 0L
  | Gate.Nor -> Int64.lognot (fold Int64.logor 0L)
  | Gate.Xor -> fold Int64.logxor 0L
  | Gate.Xnor -> Int64.lognot (fold Int64.logxor 0L)
  | Gate.Not -> Int64.lognot words.(0)
  | Gate.Buff -> words.(0)

(* ------------------------------------------------------------------ *)
(* Boxed evaluation (reference path)                                   *)
(* ------------------------------------------------------------------ *)

let eval_internal c packed_inputs ~stuck ~stuck_pin =
  if Array.length packed_inputs <> Circuit.num_inputs c then
    invalid_arg "Parallel_sim.eval: input word count mismatch";
  let values = Array.make (Circuit.num_nodes c) 0L in
  Array.blit packed_inputs 0 values 0 (Array.length packed_inputs);
  (match stuck with
  | Some (node, value) when Circuit.is_input c node ->
    values.(node) <- (if value then Int64.minus_one else 0L)
  | Some _ | None -> ());
  Circuit.iter_gates c (fun g kind fanins ->
      let id = Circuit.node_of_gate c g in
      let words =
        Array.mapi
          (fun pin src ->
            match stuck_pin with
            | Some (gate, p, value) when gate = id && p = pin ->
              if value then Int64.minus_one else 0L
            | Some _ | None -> values.(src))
          fanins
      in
      let word = eval_word kind words in
      values.(id) <-
        (match stuck with
        | Some (node, value) when node = id ->
          if value then Int64.minus_one else 0L
        | Some _ | None -> word));
  values

let eval c packed_inputs =
  eval_internal c packed_inputs ~stuck:None ~stuck_pin:None

let eval_with_stuck_node c ~node ~value packed_inputs =
  eval_internal c packed_inputs ~stuck:(Some (node, value)) ~stuck_pin:None

let eval_with_stuck_pin c ~gate ~pin ~value packed_inputs =
  eval_internal c packed_inputs ~stuck:None ~stuck_pin:(Some (gate, pin, value))

let output_diff c good bad =
  Array.fold_left
    (fun acc id -> Int64.logor acc (Int64.logxor good.(id) bad.(id)))
    0L (Circuit.outputs c)

(* ------------------------------------------------------------------ *)
(* Flat CSR evaluation (hot path)                                      *)
(* ------------------------------------------------------------------ *)

(* The whole loop is fused loads / [Int64] intrinsics / stores in
   single expressions: on the non-flambda compiler that is what keeps
   every intermediate word unboxed, so one block costs zero minor
   words (asserted by the kernel tests).  Gate dispatch is a byte read
   from the CSR kind array; fanin folds are read-modify-write against
   the destination cell.

   The gate loop walks the circuit's levelized [order] (level-major,
   any topological order is equivalent serially) rather than raw id
   order: the same traversal the striped and domain-parallel drivers
   below slice up, so all flat kernels share one schedule. *)
let eval_block_order_into c ~order p ~block ~(dst : ba) ~off =
  if block < 0 || block >= Array.length p.blocks then
    invalid_arg "Parallel_sim.eval_block_into: bad block";
  let n = Circuit.num_nodes c in
  let ni = Circuit.num_inputs c in
  if p.n_inputs <> ni then
    invalid_arg "Parallel_sim.eval_block_into: input word count mismatch";
  if off < 0 || off + n > Bigarray.Array1.dim dst then
    invalid_arg "Parallel_sim.eval_block_into: destination too small";
  let words = p.words in
  let base = block * ni in
  for i = 0 to ni - 1 do
    Bigarray.Array1.unsafe_set dst (off + i)
      (Bigarray.Array1.unsafe_get words (base + i))
  done;
  let kinds = Circuit.Csr.kinds c in
  let offsets = Circuit.Csr.fanin_offsets c in
  let targets = Circuit.Csr.fanin_targets c in
  for g = 0 to Array.length order - 1 do
    let id = Array.unsafe_get order g in
    let s = Array.unsafe_get offsets id in
    let e = Array.unsafe_get offsets (id + 1) in
    let code = Char.code (Bytes.unsafe_get kinds id) in
    (* a zero-fanin gate would make the fold read out of bounds (the
       boxed [eval_word] rejects it as a bad arity) *)
    if e <= s then
      invalid_arg "Parallel_sim.eval_block_into: gate with no fanins";
    (match code with
    | 0 | 1 ->
      (* And / Nand *)
      Bigarray.Array1.unsafe_set dst (off + id)
        (Bigarray.Array1.unsafe_get dst (off + Array.unsafe_get targets s));
      for k = s + 1 to e - 1 do
        Bigarray.Array1.unsafe_set dst (off + id)
          (Int64.logand
             (Bigarray.Array1.unsafe_get dst (off + id))
             (Bigarray.Array1.unsafe_get dst
                (off + Array.unsafe_get targets k)))
      done
    | 2 | 3 ->
      (* Or / Nor *)
      Bigarray.Array1.unsafe_set dst (off + id)
        (Bigarray.Array1.unsafe_get dst (off + Array.unsafe_get targets s));
      for k = s + 1 to e - 1 do
        Bigarray.Array1.unsafe_set dst (off + id)
          (Int64.logor
             (Bigarray.Array1.unsafe_get dst (off + id))
             (Bigarray.Array1.unsafe_get dst
                (off + Array.unsafe_get targets k)))
      done
    | 4 | 5 ->
      (* Xor / Xnor *)
      Bigarray.Array1.unsafe_set dst (off + id)
        (Bigarray.Array1.unsafe_get dst (off + Array.unsafe_get targets s));
      for k = s + 1 to e - 1 do
        Bigarray.Array1.unsafe_set dst (off + id)
          (Int64.logxor
             (Bigarray.Array1.unsafe_get dst (off + id))
             (Bigarray.Array1.unsafe_get dst
                (off + Array.unsafe_get targets k)))
      done
    | 6 ->
      (* Not *)
      Bigarray.Array1.unsafe_set dst (off + id)
        (Int64.lognot
           (Bigarray.Array1.unsafe_get dst (off + Array.unsafe_get targets s)))
    | _ ->
      (* Buff *)
      Bigarray.Array1.unsafe_set dst (off + id)
        (Bigarray.Array1.unsafe_get dst (off + Array.unsafe_get targets s)));
    (* the inverting kinds share the fold above; flip in place *)
    if code = 1 || code = 3 || code = 5 then
      Bigarray.Array1.unsafe_set dst (off + id)
        (Int64.lognot (Bigarray.Array1.unsafe_get dst (off + id)))
  done

let eval_block_into c p ~block ~(dst : ba) ~off =
  let sched = Level_schedule.of_circuit c in
  eval_block_order_into c ~order:(Level_schedule.order sched) p ~block ~dst ~off

type scratch = { values : ba; order : int array }

let create_scratch c =
  {
    values = ba_create (Circuit.num_nodes c);
    order = Level_schedule.order (Level_schedule.of_circuit c);
  }

let scratch_values s = s.values

let eval_block c s p ~block =
  if Bigarray.Array1.dim s.values < Circuit.num_nodes c then
    invalid_arg "Parallel_sim.eval_block: scratch sized for another circuit";
  eval_block_order_into c ~order:s.order p ~block ~dst:s.values ~off:0

(* ------------------------------------------------------------------ *)
(* Striped levelized evaluation                                        *)
(* ------------------------------------------------------------------ *)

(* Node-major striping: the value matrix holds [stride] consecutive
   block words per node ([dst.(id * stride + blk)]), and one gate
   visit evaluates [width] consecutive blocks.  One CSR traversal —
   dispatch byte, fanin indices, bounds — is amortized over [width]
   words, and every fanin read is a contiguous [width]-word run: at
   width 8 exactly one 64-byte cache line, fully used, where the
   block-at-a-time kernel uses 8 bytes per line touched. *)

let seed_inputs_striped c p ~block0 ~width ~stride ~(dst : ba) =
  let ni = Circuit.num_inputs c in
  if p.n_inputs <> ni then
    invalid_arg "Parallel_sim.seed_inputs_striped: input word count mismatch";
  let nb = Array.length p.blocks in
  if block0 < 0 || width < 0 || block0 + width > nb then
    invalid_arg "Parallel_sim.seed_inputs_striped: bad block range";
  if stride < block0 + width then
    invalid_arg "Parallel_sim.seed_inputs_striped: stride below block range";
  if Circuit.num_nodes c * stride > Bigarray.Array1.dim dst then
    invalid_arg "Parallel_sim.seed_inputs_striped: destination too small";
  let words = p.words in
  (* packed words are block-major (block b, input i at b*ni + i);
     transpose the stripe into node-major rows *)
  for i = 0 to ni - 1 do
    for w = 0 to width - 1 do
      Bigarray.Array1.unsafe_set dst ((i * stride) + block0 + w)
        (Bigarray.Array1.unsafe_get words (((block0 + w) * ni) + i))
    done
  done

(* The striped gate kernel over one contiguous slice of the level
   order.  The caller guarantees every fanin row of the slice is
   already computed for the same stripe: any [lo, hi) prefix-closed
   under levels qualifies, which is what the level barriers in
   [eval_all_into] provide.  Allocation-free (the schedule arrays come
   in as plain [int array]s; no closures, no boxed intermediates). *)
let eval_order_range_striped c ~order ~lo ~hi ~block0 ~width ~stride ~(dst : ba)
    =
  if lo < 0 || hi > Array.length order || lo > hi then
    invalid_arg "Parallel_sim.eval_order_range_striped: bad order range";
  if block0 < 0 || width < 0 || stride < block0 + width then
    invalid_arg "Parallel_sim.eval_order_range_striped: bad stripe";
  if Circuit.num_nodes c * stride > Bigarray.Array1.dim dst then
    invalid_arg "Parallel_sim.eval_order_range_striped: destination too small";
  let kinds = Circuit.Csr.kinds c in
  let offsets = Circuit.Csr.fanin_offsets c in
  let targets = Circuit.Csr.fanin_targets c in
  for g = lo to hi - 1 do
    let id = Array.unsafe_get order g in
    let s = Array.unsafe_get offsets id in
    let e = Array.unsafe_get offsets (id + 1) in
    let code = Char.code (Bytes.unsafe_get kinds id) in
    if e <= s then
      invalid_arg "Parallel_sim.eval_order_range_striped: gate with no fanins";
    let row = (id * stride) + block0 in
    let f0 = (Array.unsafe_get targets s * stride) + block0 in
    (match code with
    | 0 | 1 ->
      (* And / Nand *)
      for w = 0 to width - 1 do
        Bigarray.Array1.unsafe_set dst (row + w)
          (Bigarray.Array1.unsafe_get dst (f0 + w))
      done;
      for k = s + 1 to e - 1 do
        let fk = (Array.unsafe_get targets k * stride) + block0 in
        for w = 0 to width - 1 do
          Bigarray.Array1.unsafe_set dst (row + w)
            (Int64.logand
               (Bigarray.Array1.unsafe_get dst (row + w))
               (Bigarray.Array1.unsafe_get dst (fk + w)))
        done
      done
    | 2 | 3 ->
      (* Or / Nor *)
      for w = 0 to width - 1 do
        Bigarray.Array1.unsafe_set dst (row + w)
          (Bigarray.Array1.unsafe_get dst (f0 + w))
      done;
      for k = s + 1 to e - 1 do
        let fk = (Array.unsafe_get targets k * stride) + block0 in
        for w = 0 to width - 1 do
          Bigarray.Array1.unsafe_set dst (row + w)
            (Int64.logor
               (Bigarray.Array1.unsafe_get dst (row + w))
               (Bigarray.Array1.unsafe_get dst (fk + w)))
        done
      done
    | 4 | 5 ->
      (* Xor / Xnor *)
      for w = 0 to width - 1 do
        Bigarray.Array1.unsafe_set dst (row + w)
          (Bigarray.Array1.unsafe_get dst (f0 + w))
      done;
      for k = s + 1 to e - 1 do
        let fk = (Array.unsafe_get targets k * stride) + block0 in
        for w = 0 to width - 1 do
          Bigarray.Array1.unsafe_set dst (row + w)
            (Int64.logxor
               (Bigarray.Array1.unsafe_get dst (row + w))
               (Bigarray.Array1.unsafe_get dst (fk + w)))
        done
      done
    | 6 ->
      (* Not *)
      for w = 0 to width - 1 do
        Bigarray.Array1.unsafe_set dst (row + w)
          (Int64.lognot (Bigarray.Array1.unsafe_get dst (f0 + w)))
      done
    | _ ->
      (* Buff *)
      for w = 0 to width - 1 do
        Bigarray.Array1.unsafe_set dst (row + w)
          (Bigarray.Array1.unsafe_get dst (f0 + w))
      done);
    if code = 1 || code = 3 || code = 5 then
      for w = 0 to width - 1 do
        Bigarray.Array1.unsafe_set dst (row + w)
          (Int64.lognot (Bigarray.Array1.unsafe_get dst (row + w)))
      done
  done

let eval_stripe_into c sched p ~block0 ~width ~stride ~(dst : ba) =
  seed_inputs_striped c p ~block0 ~width ~stride ~dst;
  let order = Level_schedule.order sched in
  eval_order_range_striped c ~order ~lo:0 ~hi:(Array.length order) ~block0
    ~width ~stride ~dst

let default_stripe = 8

(* Below this many gates a level is evaluated inline by the caller:
   publishing a pool job (mutex + broadcast + atomic claims) costs on
   the order of a few microseconds, which only pays for itself once a
   level carries roughly a thousand gate visits of real work. *)
let min_split_width = 1024

let eval_all_into ?pool ?(stripe = default_stripe) c p ~(dst : ba) =
  if stripe < 1 then invalid_arg "Parallel_sim.eval_all_into: bad stripe";
  let nb = Array.length p.blocks in
  let n = Circuit.num_nodes c in
  if n * nb > Bigarray.Array1.dim dst then
    invalid_arg "Parallel_sim.eval_all_into: destination too small";
  if nb = 0 then ()
  else begin
    let sched = Level_schedule.of_circuit c in
    let w = Stdlib.min stripe nb in
    let stripes = (nb + w - 1) / w in
    let eval_stripe s =
      let block0 = s * w in
      let width = Stdlib.min w (nb - block0) in
      eval_stripe_into c sched p ~block0 ~width ~stride:nb ~dst
    in
    let psize = match pool with None -> 1 | Some t -> Domain_pool.size t in
    match pool with
    | None ->
      for s = 0 to stripes - 1 do
        eval_stripe s
      done
    | Some _ when psize <= 1 ->
      for s = 0 to stripes - 1 do
        eval_stripe s
      done
    | Some pool when stripes >= psize ->
      (* Whole stripes are the coarsest independent unit: each chunk
         seeds and evaluates disjoint columns, no barrier needed. *)
      ignore (Domain_pool.run pool ~chunks:stripes eval_stripe)
    | Some pool ->
      (* Fewer stripes than domains: split inside levels instead.  A
         [Domain_pool.run] per level is the barrier; narrow levels run
         inline on the caller to dodge the publish cost. *)
      let order = Level_schedule.order sched in
      let offsets = Level_schedule.offsets sched in
      for s = 0 to stripes - 1 do
        let block0 = s * w in
        let width = Stdlib.min w (nb - block0) in
        seed_inputs_striped c p ~block0 ~width ~stride:nb ~dst;
        for l = 1 to Level_schedule.num_levels sched do
          let lo = offsets.(l - 1) and hi = offsets.(l) in
          let lw = hi - lo in
          if lw < min_split_width then
            eval_order_range_striped c ~order ~lo ~hi ~block0 ~width ~stride:nb
              ~dst
          else begin
            let per = (lw + psize - 1) / psize in
            ignore
              (Domain_pool.run pool ~chunks:psize (fun k ->
                   let clo = lo + (k * per) in
                   let chi = Stdlib.min hi (clo + per) in
                   if clo < chi then
                     eval_order_range_striped c ~order ~lo:clo ~hi:chi ~block0
                       ~width ~stride:nb ~dst))
          end
        done
      done
  end
