module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate

let pack vectors ~start =
  let n = Array.length vectors in
  if start < 0 || start > n then invalid_arg "Parallel_sim.pack: bad start";
  (* [start = n] (in particular an empty vector set): a valid empty
     block.  The vector width — the word count — comes from any
     vector when one exists, and degenerates to 0 words otherwise. *)
  let width = if n = 0 then 0 else Array.length vectors.(0) in
  let count = Stdlib.min 64 (n - start) in
  Array.init width (fun i ->
      let word = ref 0L in
      for k = 0 to count - 1 do
        let v = vectors.(start + k) in
        if Array.length v <> width then
          invalid_arg "Parallel_sim.pack: inconsistent vector widths";
        if v.(i) then word := Int64.logor !word (Int64.shift_left 1L k)
      done;
      !word)

let active_mask vectors ~start =
  let n = Array.length vectors in
  if start < 0 || start > n then
    invalid_arg "Parallel_sim.active_mask: bad start";
  let count = Stdlib.min 64 (n - start) in
  if count = 64 then Int64.minus_one
  else Int64.sub (Int64.shift_left 1L count) 1L

type packed = {
  n_vectors : int;
  blocks : int64 array array; (* block -> one word per circuit input *)
  masks : int64 array; (* block -> bits backed by real vectors *)
}

let pack_all vectors =
  let n = Array.length vectors in
  let n_blocks = (n + 63) / 64 in
  {
    n_vectors = n;
    blocks = Array.init n_blocks (fun b -> pack vectors ~start:(b * 64));
    masks = Array.init n_blocks (fun b -> active_mask vectors ~start:(b * 64));
  }

let n_vectors p = p.n_vectors
let num_blocks p = Array.length p.blocks
let block p b = p.blocks.(b)
let block_mask p b = p.masks.(b)

let eval_word kind words =
  (* An [And]/[Nand] fold over zero fanins would silently yield
     all-ones (and [Or]/[Nor] all-zeros): reject bad arities exactly
     like the scalar [Gate.eval]. *)
  if not (Gate.arity_ok kind (Array.length words)) then
    invalid_arg
      (Printf.sprintf "Parallel_sim.eval_word: %s with %d inputs"
         (Gate.to_string kind) (Array.length words));
  let fold f init = Array.fold_left f init words in
  match kind with
  | Gate.And -> fold Int64.logand Int64.minus_one
  | Gate.Nand -> Int64.lognot (fold Int64.logand Int64.minus_one)
  | Gate.Or -> fold Int64.logor 0L
  | Gate.Nor -> Int64.lognot (fold Int64.logor 0L)
  | Gate.Xor -> fold Int64.logxor 0L
  | Gate.Xnor -> Int64.lognot (fold Int64.logxor 0L)
  | Gate.Not -> Int64.lognot words.(0)
  | Gate.Buff -> words.(0)

let eval_internal c packed_inputs ~stuck ~stuck_pin =
  if Array.length packed_inputs <> Circuit.num_inputs c then
    invalid_arg "Parallel_sim.eval: input word count mismatch";
  let values = Array.make (Circuit.num_nodes c) 0L in
  Array.blit packed_inputs 0 values 0 (Array.length packed_inputs);
  (match stuck with
  | Some (node, value) when Circuit.is_input c node ->
    values.(node) <- (if value then Int64.minus_one else 0L)
  | Some _ | None -> ());
  Circuit.iter_gates c (fun g kind fanins ->
      let id = Circuit.node_of_gate c g in
      let words =
        Array.mapi
          (fun pin src ->
            match stuck_pin with
            | Some (gate, p, value) when gate = id && p = pin ->
              if value then Int64.minus_one else 0L
            | Some _ | None -> values.(src))
          fanins
      in
      let word = eval_word kind words in
      values.(id) <-
        (match stuck with
        | Some (node, value) when node = id ->
          if value then Int64.minus_one else 0L
        | Some _ | None -> word));
  values

let eval c packed_inputs =
  eval_internal c packed_inputs ~stuck:None ~stuck_pin:None

let eval_with_stuck_node c ~node ~value packed_inputs =
  eval_internal c packed_inputs ~stuck:(Some (node, value)) ~stuck_pin:None

let eval_with_stuck_pin c ~gate ~pin ~value packed_inputs =
  eval_internal c packed_inputs ~stuck:None ~stuck_pin:(Some (gate, pin, value))

let output_diff c good bad =
  Array.fold_left
    (fun acc id -> Int64.logor acc (Int64.logxor good.(id) bad.(id)))
    0L (Circuit.outputs c)
