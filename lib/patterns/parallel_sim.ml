module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate

type ba = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let ba_create n : ba =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0L;
  a

let pack vectors ~start =
  let n = Array.length vectors in
  if start < 0 || start > n then invalid_arg "Parallel_sim.pack: bad start";
  (* [start = n] (in particular an empty vector set): a valid empty
     block.  The vector width — the word count — comes from any
     vector when one exists, and degenerates to 0 words otherwise. *)
  let width = if n = 0 then 0 else Array.length vectors.(0) in
  let count = Stdlib.min 64 (n - start) in
  Array.init width (fun i ->
      let word = ref 0L in
      for k = 0 to count - 1 do
        let v = vectors.(start + k) in
        if Array.length v <> width then
          invalid_arg "Parallel_sim.pack: inconsistent vector widths";
        if v.(i) then word := Int64.logor !word (Int64.shift_left 1L k)
      done;
      !word)

let active_mask vectors ~start =
  let n = Array.length vectors in
  if start < 0 || start > n then
    invalid_arg "Parallel_sim.active_mask: bad start";
  let count = Stdlib.min 64 (n - start) in
  if count = 64 then Int64.minus_one
  else Int64.sub (Int64.shift_left 1L count) 1L

type packed = {
  n_vectors : int;
  n_inputs : int; (* words per block *)
  blocks : int64 array array; (* block -> one word per circuit input *)
  words : ba; (* the same words flattened block-major: block b at b * n_inputs *)
  masks : int64 array; (* block -> bits backed by real vectors *)
}

let pack_all vectors =
  let n = Array.length vectors in
  let n_blocks = (n + 63) / 64 in
  let n_inputs = if n = 0 then 0 else Array.length vectors.(0) in
  let blocks = Array.init n_blocks (fun b -> pack vectors ~start:(b * 64)) in
  let words = ba_create (n_blocks * n_inputs) in
  Array.iteri
    (fun b block ->
      Array.iteri
        (fun i w -> Bigarray.Array1.unsafe_set words ((b * n_inputs) + i) w)
        block)
    blocks;
  {
    n_vectors = n;
    n_inputs;
    blocks;
    words;
    masks = Array.init n_blocks (fun b -> active_mask vectors ~start:(b * 64));
  }

let n_vectors p = p.n_vectors
let num_blocks p = Array.length p.blocks
let block p b = p.blocks.(b)
let block_mask p b = p.masks.(b)
let packed_words p = p.words

let eval_word kind words =
  (* An [And]/[Nand] fold over zero fanins would silently yield
     all-ones (and [Or]/[Nor] all-zeros): reject bad arities exactly
     like the scalar [Gate.eval]. *)
  if not (Gate.arity_ok kind (Array.length words)) then
    invalid_arg
      (Printf.sprintf "Parallel_sim.eval_word: %s with %d inputs"
         (Gate.to_string kind) (Array.length words));
  let fold f init = Array.fold_left f init words in
  match kind with
  | Gate.And -> fold Int64.logand Int64.minus_one
  | Gate.Nand -> Int64.lognot (fold Int64.logand Int64.minus_one)
  | Gate.Or -> fold Int64.logor 0L
  | Gate.Nor -> Int64.lognot (fold Int64.logor 0L)
  | Gate.Xor -> fold Int64.logxor 0L
  | Gate.Xnor -> Int64.lognot (fold Int64.logxor 0L)
  | Gate.Not -> Int64.lognot words.(0)
  | Gate.Buff -> words.(0)

(* ------------------------------------------------------------------ *)
(* Boxed evaluation (reference path)                                   *)
(* ------------------------------------------------------------------ *)

let eval_internal c packed_inputs ~stuck ~stuck_pin =
  if Array.length packed_inputs <> Circuit.num_inputs c then
    invalid_arg "Parallel_sim.eval: input word count mismatch";
  let values = Array.make (Circuit.num_nodes c) 0L in
  Array.blit packed_inputs 0 values 0 (Array.length packed_inputs);
  (match stuck with
  | Some (node, value) when Circuit.is_input c node ->
    values.(node) <- (if value then Int64.minus_one else 0L)
  | Some _ | None -> ());
  Circuit.iter_gates c (fun g kind fanins ->
      let id = Circuit.node_of_gate c g in
      let words =
        Array.mapi
          (fun pin src ->
            match stuck_pin with
            | Some (gate, p, value) when gate = id && p = pin ->
              if value then Int64.minus_one else 0L
            | Some _ | None -> values.(src))
          fanins
      in
      let word = eval_word kind words in
      values.(id) <-
        (match stuck with
        | Some (node, value) when node = id ->
          if value then Int64.minus_one else 0L
        | Some _ | None -> word));
  values

let eval c packed_inputs =
  eval_internal c packed_inputs ~stuck:None ~stuck_pin:None

let eval_with_stuck_node c ~node ~value packed_inputs =
  eval_internal c packed_inputs ~stuck:(Some (node, value)) ~stuck_pin:None

let eval_with_stuck_pin c ~gate ~pin ~value packed_inputs =
  eval_internal c packed_inputs ~stuck:None ~stuck_pin:(Some (gate, pin, value))

let output_diff c good bad =
  Array.fold_left
    (fun acc id -> Int64.logor acc (Int64.logxor good.(id) bad.(id)))
    0L (Circuit.outputs c)

(* ------------------------------------------------------------------ *)
(* Flat CSR evaluation (hot path)                                      *)
(* ------------------------------------------------------------------ *)

(* The whole loop is fused loads / [Int64] intrinsics / stores in
   single expressions: on the non-flambda compiler that is what keeps
   every intermediate word unboxed, so one block costs zero minor
   words (asserted by the kernel tests).  Gate dispatch is a byte read
   from the CSR kind array; fanin folds are read-modify-write against
   the destination cell. *)
let eval_block_into c p ~block ~(dst : ba) ~off =
  if block < 0 || block >= Array.length p.blocks then
    invalid_arg "Parallel_sim.eval_block_into: bad block";
  let n = Circuit.num_nodes c in
  let ni = Circuit.num_inputs c in
  if p.n_inputs <> ni then
    invalid_arg "Parallel_sim.eval_block_into: input word count mismatch";
  if off < 0 || off + n > Bigarray.Array1.dim dst then
    invalid_arg "Parallel_sim.eval_block_into: destination too small";
  let words = p.words in
  let base = block * ni in
  for i = 0 to ni - 1 do
    Bigarray.Array1.unsafe_set dst (off + i)
      (Bigarray.Array1.unsafe_get words (base + i))
  done;
  let kinds = Circuit.Csr.kinds c in
  let offsets = Circuit.Csr.fanin_offsets c in
  let targets = Circuit.Csr.fanin_targets c in
  for id = ni to n - 1 do
    let s = Array.unsafe_get offsets id in
    let e = Array.unsafe_get offsets (id + 1) in
    let code = Char.code (Bytes.unsafe_get kinds id) in
    (* a zero-fanin gate would make the fold read out of bounds (the
       boxed [eval_word] rejects it as a bad arity) *)
    if e <= s then
      invalid_arg "Parallel_sim.eval_block_into: gate with no fanins";
    (match code with
    | 0 | 1 ->
      (* And / Nand *)
      Bigarray.Array1.unsafe_set dst (off + id)
        (Bigarray.Array1.unsafe_get dst (off + Array.unsafe_get targets s));
      for k = s + 1 to e - 1 do
        Bigarray.Array1.unsafe_set dst (off + id)
          (Int64.logand
             (Bigarray.Array1.unsafe_get dst (off + id))
             (Bigarray.Array1.unsafe_get dst
                (off + Array.unsafe_get targets k)))
      done
    | 2 | 3 ->
      (* Or / Nor *)
      Bigarray.Array1.unsafe_set dst (off + id)
        (Bigarray.Array1.unsafe_get dst (off + Array.unsafe_get targets s));
      for k = s + 1 to e - 1 do
        Bigarray.Array1.unsafe_set dst (off + id)
          (Int64.logor
             (Bigarray.Array1.unsafe_get dst (off + id))
             (Bigarray.Array1.unsafe_get dst
                (off + Array.unsafe_get targets k)))
      done
    | 4 | 5 ->
      (* Xor / Xnor *)
      Bigarray.Array1.unsafe_set dst (off + id)
        (Bigarray.Array1.unsafe_get dst (off + Array.unsafe_get targets s));
      for k = s + 1 to e - 1 do
        Bigarray.Array1.unsafe_set dst (off + id)
          (Int64.logxor
             (Bigarray.Array1.unsafe_get dst (off + id))
             (Bigarray.Array1.unsafe_get dst
                (off + Array.unsafe_get targets k)))
      done
    | 6 ->
      (* Not *)
      Bigarray.Array1.unsafe_set dst (off + id)
        (Int64.lognot
           (Bigarray.Array1.unsafe_get dst (off + Array.unsafe_get targets s)))
    | _ ->
      (* Buff *)
      Bigarray.Array1.unsafe_set dst (off + id)
        (Bigarray.Array1.unsafe_get dst (off + Array.unsafe_get targets s)));
    (* the inverting kinds share the fold above; flip in place *)
    if code = 1 || code = 3 || code = 5 then
      Bigarray.Array1.unsafe_set dst (off + id)
        (Int64.lognot (Bigarray.Array1.unsafe_get dst (off + id)))
  done

type scratch = { values : ba }

let create_scratch c = { values = ba_create (Circuit.num_nodes c) }
let scratch_values s = s.values

let eval_block c s p ~block =
  if Bigarray.Array1.dim s.values < Circuit.num_nodes c then
    invalid_arg "Parallel_sim.eval_block: scratch sized for another circuit";
  eval_block_into c p ~block ~dst:s.values ~off:0
