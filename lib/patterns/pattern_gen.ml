module Rng = Iddq_util.Rng
module Circuit = Iddq_netlist.Circuit

let random ~rng c ~count =
  let n = Circuit.num_inputs c in
  Array.init count (fun _ -> Array.init n (fun _ -> Rng.bool rng))

let exhaustive c =
  let n = Circuit.num_inputs c in
  if n > 20 then invalid_arg "Pattern_gen.exhaustive: too many inputs";
  Array.init (1 lsl n) (fun v ->
      Array.init n (fun bit -> (v lsr bit) land 1 = 1))

let lfsr c ~seed ~count =
  let n = Circuit.num_inputs c in
  let state = ref (seed land 0xFFFFFFFF) in
  if !state = 0 then invalid_arg "Pattern_gen.lfsr: zero seed";
  let step () =
    (* Fibonacci LFSR, taps 32 22 2 1 (x^32 + x^22 + x^2 + x + 1) *)
    let s = !state in
    let bit =
      (s lxor (s lsr 10) lxor (s lsr 30) lxor (s lsr 31)) land 1
    in
    state := ((s lsr 1) lor (bit lsl 31)) land 0xFFFFFFFF;
    bit = 1
  in
  Array.init count (fun _ -> Array.init n (fun _ -> step ()))
