module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate

type values = bool array

let eval c inputs =
  if Array.length inputs <> Circuit.num_inputs c then
    invalid_arg "Logic_sim.eval: input vector length mismatch";
  let values = Array.make (Circuit.num_nodes c) false in
  Array.blit inputs 0 values 0 (Array.length inputs);
  Circuit.iter_gates c (fun g kind fanins ->
      let id = Circuit.node_of_gate c g in
      values.(id) <- Gate.eval kind (Array.map (fun src -> values.(src)) fanins));
  values

let output_values c values =
  Array.map (fun id -> values.(id)) (Circuit.outputs c)

let toggles c before after =
  let count = ref 0 in
  for id = Circuit.num_inputs c to Circuit.num_nodes c - 1 do
    if before.(id) <> after.(id) then incr count
  done;
  !count

let toggled_gates c before after =
  let out = ref [] in
  for id = Circuit.num_nodes c - 1 downto Circuit.num_inputs c do
    if before.(id) <> after.(id) then out := Circuit.gate_of_node c id :: !out
  done;
  Array.of_list !out
