module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate
module Level_schedule = Iddq_netlist.Level_schedule

type values = bool array

(* Straight over the CSR arrays: no per-gate fanin array, no closure —
   this is the inner loop of every scalar estimator and of the
   vector-at-a-time oracle.  Gates are visited in the circuit's cached
   levelized order, the same schedule the packed kernels run on. *)
let eval c inputs =
  if Array.length inputs <> Circuit.num_inputs c then
    invalid_arg "Logic_sim.eval: input vector length mismatch";
  let n = Circuit.num_nodes c in
  let values = Array.make n false in
  Array.blit inputs 0 values 0 (Array.length inputs);
  let kinds = Circuit.Csr.kinds c in
  let offsets = Circuit.Csr.fanin_offsets c in
  let targets = Circuit.Csr.fanin_targets c in
  let order = Level_schedule.order (Level_schedule.of_circuit c) in
  for g = 0 to Array.length order - 1 do
    let id = Array.unsafe_get order g in
    let s = Array.unsafe_get offsets id in
    let e = Array.unsafe_get offsets (id + 1) in
    if e <= s then invalid_arg "Logic_sim.eval: gate with no fanins";
    let code = Char.code (Bytes.unsafe_get kinds id) in
    let v =
      match code with
      | 0 | 1 ->
        (* And / Nand *)
        let acc = ref true in
        for k = s to e - 1 do
          acc := !acc && Array.unsafe_get values (Array.unsafe_get targets k)
        done;
        if code = 0 then !acc else not !acc
      | 2 | 3 ->
        (* Or / Nor *)
        let acc = ref false in
        for k = s to e - 1 do
          acc := !acc || Array.unsafe_get values (Array.unsafe_get targets k)
        done;
        if code = 2 then !acc else not !acc
      | 4 | 5 ->
        (* Xor / Xnor *)
        let acc = ref false in
        for k = s to e - 1 do
          if Array.unsafe_get values (Array.unsafe_get targets k) then
            acc := not !acc
        done;
        if code = 4 then !acc else not !acc
      | 6 -> not (Array.unsafe_get values (Array.unsafe_get targets s))
      | _ -> Array.unsafe_get values (Array.unsafe_get targets s)
    in
    Array.unsafe_set values id v
  done;
  values

let output_values c values =
  Array.map (fun id -> values.(id)) (Circuit.outputs c)

let toggles c before after =
  let count = ref 0 in
  for id = Circuit.num_inputs c to Circuit.num_nodes c - 1 do
    if before.(id) <> after.(id) then incr count
  done;
  !count

let toggled_gates c before after =
  let out = ref [] in
  for id = Circuit.num_nodes c - 1 downto Circuit.num_inputs c do
    if before.(id) <> after.(id) then out := Circuit.gate_of_node c id :: !out
  done;
  Array.of_list !out
