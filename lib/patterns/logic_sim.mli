(** Plain two-valued logic simulation of a circuit.

    IDDQ testing applies a precomputed vector set and measures the
    quiescent current after each vector settles; this simulator
    provides the node values a defect model needs to decide whether a
    defect is {e activated} (e.g. a bridge driven to opposite values),
    and per-vector switching activity for workload studies. *)

type values = bool array
(** One value per node id ([Circuit.num_nodes] long). *)

val eval : Iddq_netlist.Circuit.t -> bool array -> values
(** [eval c inputs] with [inputs] of length [num_inputs c].  Raises
    [Invalid_argument] on length mismatch. *)

val output_values : Iddq_netlist.Circuit.t -> values -> bool array
(** Values of the primary outputs, in output order. *)

val toggles : Iddq_netlist.Circuit.t -> values -> values -> int
(** Number of {e gates} whose output differs between two evaluated
    vectors: the realized switching activity of the vector pair. *)

val toggled_gates : Iddq_netlist.Circuit.t -> values -> values -> int array
(** Gate indices that toggle between the two vectors. *)
