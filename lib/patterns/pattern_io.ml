let to_string vectors =
  let buf = Buffer.create (Array.length vectors * 16) in
  Array.iter
    (fun v ->
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) v;
      Buffer.add_char buf '\n')
    vectors;
  Buffer.contents buf

let of_string ~expected_width text =
  let exception Bad of string in
  try
    let vectors = ref [] in
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        let line =
          match String.index_opt raw '#' with
          | None -> String.trim raw
          | Some j -> String.trim (String.sub raw 0 j)
        in
        if line <> "" then begin
          if String.length line <> expected_width then
            raise
              (Bad
                 (Printf.sprintf "line %d: expected %d bits, got %d" lineno
                    expected_width (String.length line)));
          let v =
            Array.init expected_width (fun j ->
                match line.[j] with
                | '1' -> true
                | '0' -> false
                | ch ->
                  raise
                    (Bad (Printf.sprintf "line %d: bad character %C" lineno ch)))
          in
          vectors := v :: !vectors
        end)
      (String.split_on_char '\n' text);
    Ok (Array.of_list (List.rev !vectors))
  with Bad m -> Error m

let write_file path vectors =
  let oc = open_out path in
  output_string oc (to_string vectors);
  close_out oc

let read_file ~expected_width path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string ~expected_width text
