module Io = Iddq_util.Io
module Io_error = Iddq_util.Io_error

let to_string vectors =
  let buf = Buffer.create (Array.length vectors * 16) in
  Array.iter
    (fun v ->
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) v;
      Buffer.add_char buf '\n')
    vectors;
  Buffer.contents buf

let of_string ~expected_width text =
  let exception Bad of int * string in
  try
    let vectors = ref [] in
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        let line =
          match String.index_opt raw '#' with
          | None -> String.trim raw
          | Some j -> String.trim (String.sub raw 0 j)
        in
        if line <> "" then begin
          if String.length line <> expected_width then
            raise
              (Bad
                 ( lineno,
                   Printf.sprintf "expected %d bits, got %d" expected_width
                     (String.length line) ));
          let v =
            Array.init expected_width (fun j ->
                match line.[j] with
                | '1' -> true
                | '0' -> false
                | ch ->
                  raise
                    (Bad (lineno, Printf.sprintf "bad character %C" ch)))
          in
          vectors := v :: !vectors
        end)
      (String.split_on_char '\n' text);
    Ok (Array.of_list (List.rev !vectors))
  with Bad (lineno, m) -> Error (Io_error.make ~line:lineno m)

let write_file path vectors = Io.write_file_atomic path (to_string vectors)

let read_file ~expected_width path =
  match Io.read_file path with
  | Error e -> Error e
  | Ok text ->
    Result.map_error (Io_error.with_path path) (of_string ~expected_width text)
