module Technology = Iddq_celllib.Technology

let current_profile ch gates =
  let profile = Array.make (Charac.depth ch + 1) 0.0 in
  Array.iter
    (fun g ->
      let ipk = Charac.peak_current ch g in
      Charac.iter_switch_slots ch g (fun slot ->
          profile.(slot) <- profile.(slot) +. ipk))
    gates;
  profile

let count_profile ch gates =
  let profile = Array.make (Charac.depth ch + 1) 0 in
  Array.iter
    (fun g ->
      Charac.iter_switch_slots ch g (fun slot ->
          profile.(slot) <- profile.(slot) + 1))
    gates;
  profile

let max_transient_current ch gates =
  Array.fold_left Stdlib.max 0.0 (current_profile ch gates)

let leakage ch gates =
  Array.fold_left (fun acc g -> acc +. Charac.leakage ch g) 0.0 gates

let rail_capacitance ch gates =
  Array.fold_left (fun acc g -> acc +. Charac.rail_capacitance ch g) 0.0 gates

let discriminability ch gates =
  let nd = leakage ch gates in
  if nd <= 0.0 then infinity
  else (Charac.technology ch).Technology.iddq_threshold /. nd
