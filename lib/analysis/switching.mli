(** Module-level transient-current estimators (paper §3.1).

    The maximum transient current of a group of gates is estimated by
    the pessimistic rule of the paper: all gates of the group that
    share a possible transition time switch together, and their peak
    currents add:
    [î_DD,max(M) = max over t of sum over g in M with t in T(g) of
    i_peak(g)]. *)

val current_profile : Charac.t -> int array -> float array
(** [current_profile ch gates].(t) is the summed peak current of the
    group's gates that can switch at slot [t] (index 0 unused — gates
    switch at slots [1 .. depth]). *)

val count_profile : Charac.t -> int array -> int array
(** Same, counting gates instead of summing current: the activity
    n(t) used by the delay-degradation model. *)

val max_transient_current : Charac.t -> int array -> float
(** [max over t] of {!current_profile}; 0 for an empty group. *)

val leakage : Charac.t -> int array -> float
(** Non-defective quiescent current I_DDQ,nd of the group. *)

val rail_capacitance : Charac.t -> int array -> float
(** Parasitic capacitance the group's gates put on the shared virtual
    rail (excluding the sensor's own contribution). *)

val discriminability : Charac.t -> int array -> float
(** [d(M) = I_DDQ,th / I_DDQ,nd(M)]; [infinity] for an empty group. *)
