module Circuit = Iddq_netlist.Circuit
module Technology = Iddq_celllib.Technology

(* Both passes below walk gates by increasing (or decreasing) id and
   read values already written for neighbours, so they are only
   correct when gate ids are topologically ordered — every fanin of a
   gate has a smaller gate id.  [Builder.freeze] establishes this for
   every circuit constructor in the library; [Circuit.unsafe_make]
   trusts its caller.  Rather than silently producing wrong delays on
   a violating circuit, the passes check the invariant on the edges
   they traverse anyway (negligible cost) and fail loudly. *)
let out_of_order ~where ~gate ~neighbour =
  invalid_arg
    (Printf.sprintf
       "Timing.%s: circuit is not topologically ordered: gate %d reads gate \
        %d, which does not precede it (was the circuit built with \
        Circuit.unsafe_make? use Builder.freeze / Circuit.validate)"
       where gate neighbour)

let arrival_times ch ~gate_delay =
  let c = Charac.circuit ch in
  let arr = Array.make (Charac.num_gates ch) 0.0 in
  Circuit.iter_gates c (fun g _ fanins ->
      let latest =
        Array.fold_left
          (fun acc src ->
            if Circuit.is_input c src then acc
            else begin
              let h = Circuit.gate_of_node c src in
              if h >= g then
                out_of_order ~where:"arrival_times" ~gate:g ~neighbour:h;
              Stdlib.max acc arr.(h)
            end)
          0.0 fanins
      in
      arr.(g) <- latest +. gate_delay g);
  arr

let longest_path ch ~gate_delay =
  let c = Charac.circuit ch in
  let arr = arrival_times ch ~gate_delay in
  Array.fold_left
    (fun acc id ->
      if Circuit.is_gate c id then
        Stdlib.max acc arr.(Circuit.gate_of_node c id)
      else acc)
    0.0 (Circuit.outputs c)

let nominal_delay ch = longest_path ch ~gate_delay:(Charac.delay ch)

let critical_path ch ~gate_delay =
  let c = Charac.circuit ch in
  let arr = arrival_times ch ~gate_delay in
  (* end of the path: the latest-arriving output gate *)
  let last =
    Array.fold_left
      (fun acc id ->
        if Circuit.is_gate c id then begin
          let g = Circuit.gate_of_node c id in
          match acc with
          | Some best when arr.(best) >= arr.(g) -> acc
          | Some _ | None -> Some g
        end
        else acc)
      None (Circuit.outputs c)
  in
  (* walk backwards through the latest-arriving gate fanin each time *)
  let rec walk g acc =
    let acc = g :: acc in
    let pred =
      Array.fold_left
        (fun best h ->
          match best with
          | Some b when arr.(b) >= arr.(h) -> best
          | Some _ | None -> Some h)
        None
        (Circuit.gate_fanin_gates c g)
    in
    match pred with None -> acc | Some p -> walk p acc
  in
  match last with None -> [] | Some g -> walk g []

let slacks ch ~gate_delay =
  let c = Charac.circuit ch in
  let n = Charac.num_gates ch in
  let arr = arrival_times ch ~gate_delay in
  let total =
    Array.fold_left
      (fun acc id ->
        if Circuit.is_gate c id then Stdlib.max acc arr.(Circuit.gate_of_node c id)
        else acc)
      0.0 (Circuit.outputs c)
  in
  (* required time at each gate's *output*, computed in reverse
     topological order: outputs are required at [total]; an internal
     gate must settle before every reader's required time minus that
     reader's own delay. *)
  let required = Array.make n infinity in
  Array.iter
    (fun id ->
      if Circuit.is_gate c id then required.(Circuit.gate_of_node c id) <- total)
    (Circuit.outputs c);
  for g = n - 1 downto 0 do
    Array.iter
      (fun reader ->
        if reader <= g then
          out_of_order ~where:"slacks" ~gate:g ~neighbour:reader;
        let candidate = required.(reader) -. gate_delay reader in
        if candidate < required.(g) then required.(g) <- candidate)
      (Circuit.gate_fanout_gates c g)
  done;
  Array.init n (fun g ->
      if required.(g) = infinity then
        (* dead-end gate driving no output: unconstrained *)
        total -. arr.(g)
      else required.(g) -. arr.(g))

let degradation_factor ~vdd ~rs ~cs ~rg ~cg ~transient_current =
  let bounce = rs *. transient_current in
  let tau_s = rs *. cs and tau_g = rg *. cg in
  let overlap =
    if tau_s +. tau_g <= 0.0 then 0.0 else tau_s /. (tau_s +. tau_g)
  in
  let loss = bounce /. vdd in
  1.0 +. (loss *. loss *. overlap)

let bic_delay ch ~module_of_gate ~rs_of_module ~cs_of_module ~module_current =
  let vdd = (Charac.technology ch).Technology.vdd in
  let gate_delay g =
    let m = module_of_gate.(g) in
    let t = Charac.gate_depth ch g in
    let delta =
      degradation_factor ~vdd ~rs:(rs_of_module m) ~cs:(cs_of_module m)
        ~rg:(Charac.drive_resistance ch g)
        ~cg:(Charac.output_capacitance ch g)
        ~transient_current:(module_current m t)
    in
    Charac.delay ch g *. delta
  in
  longest_path ch ~gate_delay
