module Circuit = Iddq_netlist.Circuit

type t = {
  realized_profile : float array;
  realized_max : float;
  toggles_per_pair : int array;
}

(* Minimal local evaluation to avoid a dependency cycle with
   iddq_patterns: plain two-valued simulation. *)
let eval circuit inputs =
  let values = Array.make (Circuit.num_nodes circuit) false in
  Array.blit inputs 0 values 0 (Array.length inputs);
  Circuit.iter_gates circuit (fun g kind fanins ->
      let id = Circuit.node_of_gate circuit g in
      values.(id) <-
        Iddq_netlist.Gate.eval kind (Array.map (fun src -> values.(src)) fanins));
  values

let measure ch ~gates ~vectors =
  if Array.length vectors < 2 then
    invalid_arg "Activity.measure: need at least two vectors";
  let circuit = Charac.circuit ch in
  let depth = Charac.depth ch in
  let worst = Array.make (depth + 1) 0.0 in
  let toggles = Array.make (Array.length vectors - 1) 0 in
  let previous = ref (eval circuit vectors.(0)) in
  for v = 1 to Array.length vectors - 1 do
    let current = eval circuit vectors.(v) in
    let pair_profile = Array.make (depth + 1) 0.0 in
    let pair_toggles = ref 0 in
    Array.iter
      (fun g ->
        let id = Circuit.node_of_gate circuit g in
        if !previous.(id) <> current.(id) then begin
          incr pair_toggles;
          (* the transient is drawn at the gate's switching depth *)
          let slot = Charac.gate_depth ch g in
          pair_profile.(slot) <-
            pair_profile.(slot) +. Charac.peak_current ch g
        end)
      gates;
    toggles.(v - 1) <- !pair_toggles;
    for slot = 0 to depth do
      if pair_profile.(slot) > worst.(slot) then worst.(slot) <- pair_profile.(slot)
    done;
    previous := current
  done;
  {
    realized_profile = worst;
    realized_max = Array.fold_left Stdlib.max 0.0 worst;
    toggles_per_pair = toggles;
  }

let pessimism_ratio ch ~gates t =
  let estimated = Switching.max_transient_current ch gates in
  if t.realized_max <= 0.0 then infinity else estimated /. t.realized_max
