(** Signal and switching probabilities under the random-vector model.

    Primary inputs are independent fair coins; gate output
    probabilities follow from the gate function under the classical
    independence approximation (exact on fanout-free regions,
    approximate under reconvergence).  Two consecutive independent
    vectors toggle a net with probability [2 p (1-p)].

    This yields a middle-ground current estimator between the paper's
    pessimistic worst case and a full logic simulation: the
    {e expected} per-slot transient, used by the validation experiment
    and available for probabilistic sensor sizing. *)

val signal_probabilities : Iddq_netlist.Circuit.t -> float array
(** [P(node = 1)] per node id, inputs at 0.5. *)

val switching_probabilities : Iddq_netlist.Circuit.t -> float array
(** Per {e gate index}: [2 p (1-p)], the probability the gate toggles
    between two independent random vectors. *)

val expected_profile : Charac.t -> int array -> float array
(** Expected per-slot transient current of a gate group under one
    random vector pair: each gate contributes
    [p_switch * i_peak / |T(g)|] to each of its transition slots
    (its toggle lands in exactly one of them).  Indexed like
    {!Switching.current_profile}. *)

val expected_max_current : Charac.t -> int array -> float
(** Max over slots of {!expected_profile}.  Always dominated by the
    pessimistic î_DD,max; being an {e expectation} over one vector
    pair, it can fall below the worst case observed across many pairs
    (use {!Activity} for observed maxima). *)
