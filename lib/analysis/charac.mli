(** Characterized circuit: the gate-level netlist annotated with the
    electrical data of the target cell library, plus the two derived
    structures every estimator needs — the per-gate {e transition-time
    sets} and the undirected gate graph.

    The transition-time set [T(g)] of the paper (§3.1) is the set of
    logic depths at which gate [g] can switch: the lengths of all
    input-to-[g] paths.  Inputs switch at time 0, so
    [T(g) = union over fanins f of (T(f) + 1)].  The estimators
    pessimistically assume that all gates sharing a possible
    transition time switch simultaneously. *)

type t

val make : library:Iddq_celllib.Library.t -> Iddq_netlist.Circuit.t -> t

val circuit : t -> Iddq_netlist.Circuit.t
val library : t -> Iddq_celllib.Library.t
val technology : t -> Iddq_celllib.Technology.t

val num_gates : t -> int

val depth : t -> int
(** Logic depth of the circuit = largest possible transition time. *)

val gate_depth : t -> int -> int
(** Depth (latest transition time) of a gate index. *)

(** {1 Per-gate electrical data} (indexed by gate index, already
    derated for the gate's fanin count) *)

val peak_current : t -> int -> float
val leakage : t -> int -> float
val delay : t -> int -> float
val drive_resistance : t -> int -> float
val output_capacitance : t -> int -> float
val rail_capacitance : t -> int -> float

(** {1 Transition times} *)

val can_switch_at : t -> int -> int -> bool
(** [can_switch_at t g slot] — may gate [g] switch at time [slot]
    (1-based: slot 0 is the primary inputs' transition)? *)

val iter_switch_slots : t -> int -> (int -> unit) -> unit
(** Iterate the transition times of a gate in increasing order. *)

val switch_slot_count : t -> int -> int

(** {1 Drive selection}

    Dual-drive libraries offer a low-power variant of each cell
    ({!Iddq_celllib.Cell.low_power_variant}); the resynthesis pass
    swaps peak-defining gates with timing slack to the weak drive. *)

val with_low_power : t -> gates:int array -> t
(** A new characterization with the listed gates re-characterized as
    low-drive (idempotent per gate; other gates unchanged; transition
    times and graph structure are shared). *)

val is_low_power : t -> int -> bool

(** {1 Undirected view} *)

val undirected : t -> Iddq_netlist.Graph_algo.undirected
(** Cached undirected gate graph for separation queries. *)

val separation_cutoff : t -> int
(** The technology's [p]. *)
