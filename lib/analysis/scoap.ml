module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate

type t = { cc0 : int array; cc1 : int array; co : int array }

let unobservable = max_int / 2
let sat_add a b = if a >= unobservable || b >= unobservable then unobservable else a + b

(* Parity DP for wide XOR/XNOR: cheapest assignment cost reaching even
   / odd parity over the fanins. *)
let parity_costs cc0 cc1 fanins =
  Array.fold_left
    (fun (even, odd) src ->
      let c0 = cc0.(src) and c1 = cc1.(src) in
      ( Stdlib.min (sat_add even c0) (sat_add odd c1),
        Stdlib.min (sat_add odd c0) (sat_add even c1) ))
    (0, unobservable) fanins

let compute c =
  let n = Circuit.num_nodes c in
  let cc0 = Array.make n 1 and cc1 = Array.make n 1 in
  (* controllability: forward topological pass *)
  Circuit.iter_gates c (fun g kind fanins ->
      let id = Circuit.node_of_gate c g in
      let sum cc = Array.fold_left (fun acc s -> sat_add acc cc.(s)) 0 fanins in
      let minimum cc =
        Array.fold_left (fun acc s -> Stdlib.min acc cc.(s)) unobservable fanins
      in
      let c0, c1 =
        match kind with
        | Gate.And -> (minimum cc0, sum cc1)
        | Gate.Nand -> (sum cc1, minimum cc0)
        | Gate.Or -> (sum cc0, minimum cc1)
        | Gate.Nor -> (minimum cc1, sum cc0)
        | Gate.Not -> (cc1.(fanins.(0)), cc0.(fanins.(0)))
        | Gate.Buff -> (cc0.(fanins.(0)), cc1.(fanins.(0)))
        | Gate.Xor ->
          let even, odd = parity_costs cc0 cc1 fanins in
          (even, odd)
        | Gate.Xnor ->
          let even, odd = parity_costs cc0 cc1 fanins in
          (odd, even)
      in
      cc0.(id) <- sat_add c0 1;
      cc1.(id) <- sat_add c1 1);
  (* observability: reverse topological pass *)
  let co = Array.make n unobservable in
  Array.iter (fun id -> co.(id) <- 0) (Circuit.outputs c);
  for id = n - 1 downto 0 do
    if Circuit.is_gate c id then begin
      let kind = Circuit.gate_kind c id in
      let fanins =
        match Circuit.node c id with
        | Circuit.Input -> [||]
        | Circuit.Gate (_, fi) -> fi
      in
      let side_cost keep_index =
        (* cost of setting the *other* fanins to the non-controlling
           (or cheapest, for parity gates) values *)
        let total = ref 0 in
        Array.iteri
          (fun j src ->
            if j <> keep_index then begin
              let contribution =
                match kind with
                | Gate.And | Gate.Nand -> cc1.(src)
                | Gate.Or | Gate.Nor -> cc0.(src)
                | Gate.Not | Gate.Buff -> 0
                | Gate.Xor | Gate.Xnor -> Stdlib.min cc0.(src) cc1.(src)
              in
              total := sat_add !total contribution
            end)
          fanins;
        !total
      in
      Array.iteri
        (fun j src ->
          let through = sat_add (sat_add co.(id) (side_cost j)) 1 in
          if through < co.(src) then co.(src) <- through)
        fanins
    end
  done;
  { cc0; cc1; co }

let cc0 t id = t.cc0.(id)
let cc1 t id = t.cc1.(id)
let co t id = t.co.(id)

let gate_testability t c g =
  let id = Circuit.node_of_gate c g in
  sat_add t.co.(id) (Stdlib.min t.cc0.(id) t.cc1.(id))

let hardest_gates t c ~count =
  let ng = Circuit.num_gates c in
  let scored = Array.init ng (fun g -> (gate_testability t c g, g)) in
  Array.sort (fun (a, _) (b, _) -> Stdlib.compare b a) scored;
  Array.map snd (Array.sub scored 0 (Stdlib.min count ng))
