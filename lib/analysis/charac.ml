module Circuit = Iddq_netlist.Circuit
module Graph_algo = Iddq_netlist.Graph_algo
module Library = Iddq_celllib.Library
module Cell = Iddq_celllib.Cell

type t = {
  circuit : Circuit.t;
  library : Library.t;
  depth : int;
  gate_depth : int array;
  cells : Cell.t array; (* per gate, fanin-derated *)
  times : Bytes.t array; (* per gate: bitset over slots 1..depth *)
  low_power : bool array;
  undirected : Graph_algo.undirected;
}

let bit_get bs i = Char.code (Bytes.get bs (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set bs i =
  let byte = i lsr 3 in
  Bytes.set bs byte (Char.chr (Char.code (Bytes.get bs byte) lor (1 lsl (i land 7))))

let make ~library circuit =
  let ng = Circuit.num_gates circuit in
  let gate_depth = Graph_algo.gate_depths circuit in
  let depth = Array.fold_left Stdlib.max 0 gate_depth in
  let words = (depth / 8) + 1 in
  let times = Array.init ng (fun _ -> Bytes.make words '\000') in
  (* T(g) = union over fanins of (T(fanin) + 1); inputs switch at 0 *)
  Circuit.iter_gates circuit (fun g _ fanins ->
      let mine = times.(g) in
      Array.iter
        (fun src ->
          if Circuit.is_input circuit src then bit_set mine 1
          else begin
            let src_g = Circuit.gate_of_node circuit src in
            let theirs = times.(src_g) in
            for slot = 1 to gate_depth.(src_g) do
              if bit_get theirs slot then bit_set mine (slot + 1)
            done
          end)
        fanins);
  let cells =
    Array.init ng (fun g ->
        let id = Circuit.node_of_gate circuit g in
        let kind = Circuit.gate_kind circuit id in
        Library.cell_for library kind ~fanin:(Circuit.fanin_count circuit id))
  in
  {
    circuit;
    library;
    depth;
    gate_depth;
    cells;
    times;
    low_power = Array.make ng false;
    undirected = Graph_algo.undirected_of_circuit circuit;
  }

let circuit t = t.circuit
let library t = t.library
let technology t = Library.technology t.library
let num_gates t = Array.length t.cells
let depth t = t.depth
let gate_depth t g = t.gate_depth.(g)
let peak_current t g = t.cells.(g).Cell.peak_current
let leakage t g = t.cells.(g).Cell.leakage
let delay t g = t.cells.(g).Cell.delay
let drive_resistance t g = t.cells.(g).Cell.drive_resistance
let output_capacitance t g = t.cells.(g).Cell.output_capacitance
let rail_capacitance t g = t.cells.(g).Cell.rail_capacitance

let can_switch_at t g slot =
  slot >= 1 && slot <= t.gate_depth.(g) && bit_get t.times.(g) slot

let iter_switch_slots t g f =
  for slot = 1 to t.gate_depth.(g) do
    if bit_get t.times.(g) slot then f slot
  done

let switch_slot_count t g =
  let n = ref 0 in
  iter_switch_slots t g (fun _ -> incr n);
  !n

let with_low_power t ~gates =
  let cells = Array.copy t.cells in
  let low_power = Array.copy t.low_power in
  Array.iter
    (fun g ->
      if not low_power.(g) then begin
        low_power.(g) <- true;
        cells.(g) <- Cell.low_power_variant cells.(g)
      end)
    gates;
  { t with cells; low_power }

let is_low_power t g = t.low_power.(g)

let undirected t = t.undirected
let separation_cutoff t = (technology t).Iddq_celllib.Technology.separation_cutoff
