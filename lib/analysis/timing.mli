(** Longest-path delay analysis (paper §3.2).

    The nominal delay [D] sums cell delays along the critical path.
    With BIC sensors, each gate delay is stretched by a degradation
    factor [delta(g,t) >= 1]: the gates of a module switching in slot
    [t] push their combined transient current through the sensor's
    bypass resistance [R_s], bouncing the virtual ground by
    [dV(t) = R_s * i(t)] and eating into the drive voltage.  The paper
    derives [delta] from a second-order network in
    {R_s, C_s, C_g, R_g, n(t)}; the original expression is lost to
    OCR, and we use the documented reconstruction (DESIGN.md §2):

    [delta = 1 + (dV(t) / V_dd)^2 * tau_s / (tau_s + tau_g)]

    with [tau_s = R_s * C_s], [tau_g = R_g * C_g], and
    [dV(t) = R_s * i(t)], [i(t) = n(t) * i_peak] the module's
    transient at slot [t].  The perturbation enters {e quadratically}
    — it both reduces the drive voltage and decays away during the
    transition, so the slowdown is the product of the voltage-loss
    fraction and the (equally [dV]-proportional) fraction of the
    transition it survives — weighted by the RC overlap
    [tau_s / (tau_s + tau_g)] (a stiff rail, large [C_s], small
    [tau_s/tau_g] ratio... the factor tends to 0 as [R_s] tends
    to 0).  Since sensors are sized as [R_s = r* / î_max], the bounce
    never exceeds [r*] and [delta - 1 <= (r*/V_dd)^2], reproducing
    the sub-0.1% overhead scale of the paper's Table 1. *)

val arrival_times : Charac.t -> gate_delay:(int -> float) -> float array
(** Longest-path arrival time at each gate's output: [arr(g) =
    gate_delay g + max over gate fanins] (primary inputs arrive
    at 0).

    The single forward pass requires gate ids to be topologically
    ordered (every fanin gate id smaller than its reader's), which
    [Builder.freeze] guarantees for all library-built circuits.  On a
    violating circuit (hand-built via [Circuit.unsafe_make]) the pass
    — and likewise {!slacks}' reverse pass — raises a descriptive
    [Invalid_argument] instead of returning silently wrong delays. *)

val longest_path : Charac.t -> gate_delay:(int -> float) -> float
(** Maximum arrival over the primary outputs. *)

val nominal_delay : Charac.t -> float
(** [longest_path] with the nominal cell delays: the paper's [D]. *)

val critical_path : Charac.t -> gate_delay:(int -> float) -> int list
(** The gate indices of one longest path, input side first — the
    gates whose delays sum to {!longest_path}.  Empty only for a
    gateless circuit. *)

val slacks : Charac.t -> gate_delay:(int -> float) -> float array
(** Per-gate timing slack against the circuit's own longest path:
    [slack(g) = required(g) - arrival(g)] with every primary output
    required at the longest-path delay.  A gate may be slowed by up
    to its slack without stretching the critical path; critical gates
    have slack 0 (up to rounding). *)

val degradation_factor :
  vdd:float ->
  rs:float ->
  cs:float ->
  rg:float ->
  cg:float ->
  transient_current:float ->
  float
(** [delta(g,t)] above; [transient_current] is the module's summed
    peak current at the slot, [i(t)]. *)

val bic_delay :
  Charac.t ->
  module_of_gate:int array ->
  rs_of_module:(int -> float) ->
  cs_of_module:(int -> float) ->
  module_current:(int -> int -> float) ->
  float
(** [bic_delay ch ~module_of_gate ~rs_of_module ~cs_of_module
    ~module_current] is [D_BIC]: the longest path where gate [g],
    switching at its depth slot [t], is slowed by [delta] computed
    from its module's sensor and the module transient
    [module_current m t]. *)
