(** SCOAP combinational testability measures (Goldstein 1979; the
    testability-analysis substrate behind the paper's ref [16],
    Brglez et al.).

    Controllability [CC0]/[CC1] counts, per net, the minimum number of
    primary-input assignments needed to drive it to 0/1 (primary
    inputs cost 1); observability [CO] counts the assignments needed
    to propagate the net to a primary output (outputs cost 0).  Large
    values flag hard-to-test regions — used here to rank defect sites
    and to sanity-check generated workloads. *)

type t

val compute : Iddq_netlist.Circuit.t -> t

val cc0 : t -> int -> int
(** 0-controllability of a node id. *)

val cc1 : t -> int -> int
val co : t -> int -> int
(** Observability of a node id; [max_int/2]-capped for unobservable
    (dead-end) nets. *)

val gate_testability : t -> Iddq_netlist.Circuit.t -> int -> int
(** Combined difficulty of a gate index: [co + min cc0 cc1] at its
    output — the standard SCOAP detectability proxy. *)

val hardest_gates : t -> Iddq_netlist.Circuit.t -> count:int -> int array
(** The [count] gate indices with the largest combined testability
    (hardest first). *)
