module Circuit = Iddq_netlist.Circuit
module Gate = Iddq_netlist.Gate

let signal_probabilities c =
  let n = Circuit.num_nodes c in
  let p = Array.make n 0.5 in
  Circuit.iter_gates c (fun g kind fanins ->
      let id = Circuit.node_of_gate c g in
      let conj () =
        Array.fold_left (fun acc src -> acc *. p.(src)) 1.0 fanins
      in
      let disj () =
        1.0
        -. Array.fold_left (fun acc src -> acc *. (1.0 -. p.(src))) 1.0 fanins
      in
      let parity () =
        (* P(odd number of ones), folded pairwise *)
        Array.fold_left
          (fun acc src -> (acc *. (1.0 -. p.(src))) +. ((1.0 -. acc) *. p.(src)))
          0.0 fanins
      in
      p.(id) <-
        (match kind with
        | Gate.And -> conj ()
        | Gate.Nand -> 1.0 -. conj ()
        | Gate.Or -> disj ()
        | Gate.Nor -> 1.0 -. disj ()
        | Gate.Xor -> parity ()
        | Gate.Xnor -> 1.0 -. parity ()
        | Gate.Not -> 1.0 -. p.(fanins.(0))
        | Gate.Buff -> p.(fanins.(0))));
  p

let switching_probabilities c =
  let p = signal_probabilities c in
  Array.init (Circuit.num_gates c) (fun g ->
      let prob = p.(Circuit.node_of_gate c g) in
      2.0 *. prob *. (1.0 -. prob))

let expected_profile ch gates =
  let c = Charac.circuit ch in
  let p_sw = switching_probabilities c in
  let profile = Array.make (Charac.depth ch + 1) 0.0 in
  Array.iter
    (fun g ->
      let slots = Charac.switch_slot_count ch g in
      if slots > 0 then begin
        let share =
          p_sw.(g) *. Charac.peak_current ch g /. float_of_int slots
        in
        Charac.iter_switch_slots ch g (fun slot ->
            profile.(slot) <- profile.(slot) +. share)
      end)
    gates;
  profile

let expected_max_current ch gates =
  Array.fold_left Stdlib.max 0.0 (expected_profile ch gates)
