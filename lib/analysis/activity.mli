(** Realized switching activity from logic simulation.

    The paper's î_DD,max estimator (§3.1) is deliberately pessimistic:
    every gate that {e can} switch in a slot is assumed to switch.
    This module measures what a concrete vector sequence actually
    does: between two consecutive vectors, a gate contributes to slot
    [t] if it toggles and can switch at [t] (it draws its transient at
    its switching depth).  Comparing the two quantifies the
    estimator's pessimism — the validation experiment of
    EXPERIMENTS.md. *)

type t = {
  realized_profile : float array;
      (** Worst realized per-slot current over all vector pairs (A). *)
  realized_max : float;
      (** Max over slots — the realized counterpart of î_DD,max. *)
  toggles_per_pair : int array;
      (** Gates toggled for each consecutive vector pair. *)
}

val measure :
  Charac.t -> gates:int array -> vectors:bool array array -> t
(** [measure ch ~gates ~vectors] simulates the vector sequence and
    accumulates the realized switching profile of the given gate
    group.  Needs at least two vectors; raises [Invalid_argument]
    otherwise. *)

val pessimism_ratio : Charac.t -> gates:int array -> t -> float
(** Estimated î_DD,max divided by the realized maximum; [infinity]
    when nothing toggled.  Always >= 1 up to rounding: the estimator
    upper-bounds every realization. *)
