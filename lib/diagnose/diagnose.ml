module Bitvec = Iddq_util.Bitvec
module Rng = Iddq_util.Rng
module Metrics = Iddq_util.Metrics
module Partition = Iddq_core.Partition
module Charac = Iddq_analysis.Charac
module Fault = Iddq_defects.Fault
module Fault_sim = Iddq_defects.Fault_sim

type signature = { n_vectors : int; fails : Bitvec.t array }

type mode = Exact | Noisy of float

type candidate = {
  fault : int;
  class_id : int;
  distance : int;
  log_likelihood : float;
}

type summary = {
  faults : int;
  detectable : int;
  classes : int;
  silent : int;
  max_class : int;
  expected_ambiguity : float;
  entropy_bits : float;
}

type accuracy = {
  trials : int;
  top_k : int;
  epsilon : float;
  top1_class : float;
  top1_module : float;
  topk_module : float;
}

type t = {
  n_vectors : int;
  n_modules : int;
  mod_ids : int array;  (* dense index -> live module id *)
  faults : Fault.injected array;
  rows : Bitvec.t array;  (* per fault: detecting vectors at its module *)
  row_counts : int array;  (* popcount of each row *)
  fault_mod : int array;  (* per fault: dense module index *)
  class_ids : int array;  (* per fault: ambiguity class *)
  class_members : int array array;  (* per class: fault indices, ascending *)
  silent_cls : int option;
}

let check_epsilon e =
  if not (e > 0. && e < 0.5) then
    invalid_arg
      (Printf.sprintf "Diagnose: epsilon %g outside (0, 0.5)" e)

(* Ambiguity-class key: the packed row words prefixed by the module
   index.  Silent faults (empty row) are indistinguishable wherever
   they sit, so they all map to one module-less key. *)
let class_key ~module_idx row =
  if Bitvec.is_empty row then "~silent"
  else begin
    let b = Buffer.create (8 * (Bitvec.num_words row + 1)) in
    Buffer.add_string b (string_of_int module_idx);
    Buffer.add_char b ':';
    for w = 0 to Bitvec.num_words row - 1 do
      Buffer.add_int64_le b (Bitvec.word row w)
    done;
    Buffer.contents b
  end

let build ?domains ?metrics partition ~vectors ~faults =
  let circuit = Charac.circuit (Partition.charac partition) in
  let mod_ids = Array.of_list (Partition.module_ids partition) in
  let dense = Hashtbl.create (Array.length mod_ids) in
  Array.iteri (fun i id -> Hashtbl.replace dense id i) mod_ids;
  let matrix =
    Fault_sim.detection_matrix ?domains ?metrics partition ~vectors ~faults
  in
  let faults = Array.of_list faults in
  let fault_mod =
    Array.map
      (fun (inj : Fault.injected) ->
        let gate = Fault.location circuit inj.fault in
        Hashtbl.find dense (Partition.module_of_gate partition gate))
      faults
  in
  let row_counts = Array.map Bitvec.count matrix.rows in
  (* Ambiguity classes: identical (module, row) — one shared class for
     all silent faults. *)
  let by_key = Hashtbl.create (Array.length faults) in
  let class_ids = Array.make (Array.length faults) 0 in
  let next = ref 0 in
  let silent_cls = ref None in
  Array.iteri
    (fun f row ->
      let key = class_key ~module_idx:fault_mod.(f) row in
      let id =
        match Hashtbl.find_opt by_key key with
        | Some id -> id
        | None ->
            let id = !next in
            incr next;
            Hashtbl.replace by_key key id;
            if Bitvec.is_empty row then silent_cls := Some id;
            id
      in
      class_ids.(f) <- id)
    matrix.rows;
  let members = Array.make !next [] in
  for f = Array.length faults - 1 downto 0 do
    let c = class_ids.(f) in
    members.(c) <- f :: members.(c)
  done;
  {
    n_vectors = matrix.n_vectors;
    n_modules = Array.length mod_ids;
    mod_ids;
    faults;
    rows = matrix.rows;
    row_counts;
    fault_mod;
    class_ids;
    class_members = Array.map Array.of_list members;
    silent_cls = !silent_cls;
  }

let num_faults t = Array.length t.faults
let num_vectors t = t.n_vectors
let num_modules t = t.n_modules
let module_ids t = Array.copy t.mod_ids
let fault t i = t.faults.(i)
let fault_module t i = t.fault_mod.(i)
let detectable t i = t.row_counts.(i) > 0

let predicted t i =
  let fails =
    Array.init t.n_modules (fun m ->
        if m = t.fault_mod.(i) then Bitvec.copy t.rows.(i)
        else Bitvec.create t.n_vectors)
  in
  { n_vectors = t.n_vectors; fails }

let observe_noisy ~rng ~epsilon t i =
  if epsilon < 0. || epsilon >= 0.5 then
    invalid_arg
      (Printf.sprintf "Diagnose.observe_noisy: epsilon %g outside [0, 0.5)"
         epsilon);
  let s = predicted t i in
  if epsilon > 0. then
    Array.iter
      (fun row ->
        for v = 0 to t.n_vectors - 1 do
          if Rng.float rng 1.0 < epsilon then
            let w = v / 64 in
            Bitvec.set_word row w
              (Int64.logxor (Bitvec.word row w)
                 (Int64.shift_left 1L (v land 63)))
        done)
      s.fails;
  s

let check_shape t (s : signature) =
  if s.n_vectors <> t.n_vectors || Array.length s.fails <> t.n_modules then
    invalid_arg
      (Printf.sprintf
         "Diagnose: signature shape %dx%d does not match engine %dx%d"
         (Array.length s.fails) s.n_vectors t.n_modules t.n_vectors)

(* d(f) = total + |row_f| - 2 * |obs_{m(f)} AND row_f|: the observation
   must be explained as row_f at module m(f) and silence elsewhere, so
   every observed fail outside the overlap and every predicted fail the
   observation misses each cost one. *)
let distance_with ~total t (s : signature) f =
  total + t.row_counts.(f)
  - (2 * Bitvec.inter_count s.fails.(t.fault_mod.(f)) t.rows.(f))

let distance t s f =
  check_shape t s;
  let total = Array.fold_left (fun acc r -> acc + Bitvec.count r) 0 s.fails in
  distance_with ~total t s f

let rank ?(mode = Exact) t s =
  check_shape t s;
  (match mode with Noisy e -> check_epsilon e | Exact -> ());
  let total = Array.fold_left (fun acc r -> acc + Bitvec.count r) 0 s.fails in
  let n = Array.length t.faults in
  let ds = Array.init n (fun f -> distance_with ~total t s f) in
  let order = Array.init n (fun f -> f) in
  Array.sort
    (fun a b ->
      let c = compare ds.(a) ds.(b) in
      if c <> 0 then c else compare a b)
    order;
  let cells = float_of_int (t.n_modules * t.n_vectors) in
  let ll d =
    match mode with
    | Exact -> 0.
    | Noisy e ->
        let d = float_of_int d in
        ((cells -. d) *. log (1. -. e)) +. (d *. log e)
  in
  let keep f = match mode with Exact -> ds.(f) = 0 | Noisy _ -> true in
  Array.fold_left
    (fun acc f ->
      if keep f then
        {
          fault = f;
          class_id = t.class_ids.(f);
          distance = ds.(f);
          log_likelihood = ll ds.(f);
        }
        :: acc
      else acc)
    [] order
  |> List.rev

let top_modules ?mode t s =
  let seen = Array.make t.n_modules false in
  List.filter_map
    (fun c ->
      let m = t.fault_mod.(c.fault) in
      if seen.(m) then None
      else begin
        seen.(m) <- true;
        Some t.mod_ids.(m)
      end)
    (rank ?mode t s)

let num_classes t = Array.length t.class_members
let class_of t i = t.class_ids.(i)
let class_members t c = Array.copy t.class_members.(c)
let silent_class t = t.silent_cls

let diagnosability t =
  let n = Array.length t.faults in
  let detectable =
    Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 t.row_counts
  in
  let silent =
    match t.silent_cls with
    | None -> 0
    | Some c -> Array.length t.class_members.(c)
  in
  let max_class =
    Array.fold_left (fun m c -> max m (Array.length c)) 0 t.class_members
  in
  let fn = float_of_int n in
  let expected, entropy =
    if n = 0 then (0., 0.)
    else
      Array.fold_left
        (fun (ea, h) c ->
          let s = float_of_int (Array.length c) in
          let p = s /. fn in
          (ea +. (s *. s /. fn), h -. (p *. (log p /. log 2.))))
        (0., 0.) t.class_members
  in
  {
    faults = n;
    detectable;
    classes = Array.length t.class_members;
    silent;
    max_class;
    expected_ambiguity = expected;
    entropy_bits = entropy;
  }

let c6_diagnosability t =
  let s = diagnosability t in
  if s.faults = 0 then 0. else log s.expected_ambiguity

let measure_accuracy ~rng ?(epsilon = 0.) ?(top_k = 3) ?(trials = 50) t =
  if trials < 0 then invalid_arg "Diagnose.measure_accuracy: trials < 0";
  if top_k < 1 then invalid_arg "Diagnose.measure_accuracy: top_k < 1";
  let det =
    Array.of_list
      (List.filter
         (fun f -> detectable t f)
         (List.init (num_faults t) (fun f -> f)))
  in
  if Array.length det = 0 || trials = 0 then
    {
      trials = 0;
      top_k;
      epsilon;
      top1_class = 0.;
      top1_module = 0.;
      topk_module = 0.;
    }
  else begin
    let mode = if epsilon > 0. then Noisy epsilon else Exact in
    let c1 = ref 0 and m1 = ref 0 and mk = ref 0 in
    for _ = 1 to trials do
      let truth = det.(Rng.int rng (Array.length det)) in
      let obs =
        if epsilon > 0. then observe_noisy ~rng ~epsilon t truth
        else predicted t truth
      in
      (match rank ~mode t obs with
      | best :: _ when best.class_id = t.class_ids.(truth) -> incr c1
      | _ -> ());
      let true_id = t.mod_ids.(t.fault_mod.(truth)) in
      (match top_modules ~mode t obs with
      | first :: _ as mods ->
          if first = true_id then incr m1;
          let rec within k = function
            | [] -> false
            | _ when k = 0 -> false
            | m :: rest -> m = true_id || within (k - 1) rest
          in
          if within top_k mods then incr mk
      | [] -> ())
    done;
    let rate r = float_of_int !r /. float_of_int trials in
    {
      trials;
      top_k;
      epsilon;
      top1_class = rate c1;
      top1_module = rate m1;
      topk_module = rate mk;
    }
  end
