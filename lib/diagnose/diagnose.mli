(** Signature-based defect diagnosis over the per-module detection
    matrix (DESIGN.md §11).

    The paper's partitioning argument runs in one direction — enough
    modules that every defect's current crosses its sensor's threshold.
    This module runs the arrow backwards, in the spirit of E-QED's
    electrical bug localization: an observed {e signature} (pass/fail
    per applied vector and per module sensor) is matched against the
    signature each candidate defect {e would} produce, and candidates
    are ranked by consistency.

    Concretely, for fault [f] located in module [m(f)], the predicted
    signature is zero everywhere except row [m(f)], where it equals
    fault [f]'s packed detection row from
    {!Iddq_defects.Fault_sim.detection_matrix}.  Scoring an observation
    [o] against candidate [f] is a Hamming distance over the
    [modules x vectors] grid, computed in O(words of one row):

    {v d(f) = |o| - |o_{m(f)}| + hamming(o_{m(f)}, row_f) v}

    Under the symmetric per-measurement noise model (each of the
    [modules x vectors] pass/fail cells flips independently with
    probability [e < 1/2]) the log-likelihood of [o] given [f] is
    [(cells - d) log (1-e) + d log e] — {e monotone decreasing} in
    [d(f)], so noisy maximum-likelihood ranking and Hamming ranking
    order candidates identically; the noisy mode only changes which
    candidates are kept and attaches the likelihood score.

    Faults with identical predicted signatures are indistinguishable by
    IDDQ measurement no matter which vectors are applied — they form
    {e ambiguity classes} (found by hashing the packed rows), and the
    distribution of class sizes yields the {e diagnosability} of a
    partition: the expected ambiguity-set size a uniformly random
    defect leaves after perfect diagnosis, and the resolution entropy
    in bits.  {!c6_diagnosability} packages the former as a candidate
    cost term alongside c1–c5 (see DESIGN.md §11.4; it is {e not} wired
    into {!Iddq_core.Cost.evaluate}). *)

module Bitvec = Iddq_util.Bitvec
module Rng = Iddq_util.Rng
module Metrics = Iddq_util.Metrics

type t
(** A diagnosis engine: detection matrix + fault locations + ambiguity
    classes for one (partition, vector set, fault population). *)

type signature = {
  n_vectors : int;
  fails : Bitvec.t array;
      (** One row per live module, in the dense order of
          {!module_ids}; bit [v] set iff the module's sensor flagged
          vector [v] as failing. *)
}

type mode =
  | Exact  (** Keep only candidates fully consistent with the
               observation (Hamming distance 0). *)
  | Noisy of float
      (** Per-measurement flip probability [e], [0 < e < 1/2]; every
          candidate is kept, ranked by log-likelihood (equivalently,
          Hamming distance). *)

type candidate = {
  fault : int;  (** Index into the engine's fault population. *)
  class_id : int;  (** Ambiguity class of the fault. *)
  distance : int;  (** Hamming distance over the modules x vectors grid. *)
  log_likelihood : float;
      (** Log-likelihood of the observation under the candidate and the
          [Noisy] flip probability; [0.] in [Exact] mode. *)
}

type summary = {
  faults : int;  (** Population size. *)
  detectable : int;  (** Faults with at least one failing cell. *)
  classes : int;  (** Number of ambiguity classes. *)
  silent : int;  (** Size of the all-pass class (0 when absent). *)
  max_class : int;  (** Largest class size. *)
  expected_ambiguity : float;
      (** Expected ambiguity-set size of a uniformly random fault:
          [sum |c|^2 / faults].  [1.0] = perfect resolution. *)
  entropy_bits : float;
      (** Resolution entropy [- sum (|c|/N) log2 (|c|/N)]: bits of
          localization the signature carries about the fault. *)
}

type accuracy = {
  trials : int;
  top_k : int;
  epsilon : float;
  top1_class : float;
      (** Fraction of trials where the best-ranked candidate's
          ambiguity class is the true fault's class. *)
  top1_module : float;
      (** Fraction where the best-ranked module is the true one. *)
  topk_module : float;
      (** Fraction where the true module appears among the first
          [top_k] distinct ranked modules. *)
}

(** {1 Construction} *)

val build :
  ?domains:int ->
  ?metrics:Metrics.t ->
  Iddq_core.Partition.t ->
  vectors:bool array array ->
  faults:Iddq_defects.Fault.injected list ->
  t
(** Runs the packed fault simulator
    ({!Iddq_defects.Fault_sim.detection_matrix}) and indexes the result
    for diagnosis: per-fault module locations
    ({!Iddq_defects.Fault.location} + partition lookup) and ambiguity
    classes (packed rows hashed with the module index; all silent
    faults share one class regardless of location). *)

val num_faults : t -> int
val num_vectors : t -> int
val num_modules : t -> int

val module_ids : t -> int array
(** Live module ids in dense order — index [i] of a signature's
    [fails] array corresponds to module id [(module_ids t).(i)]. *)

val fault : t -> int -> Iddq_defects.Fault.injected
val fault_module : t -> int -> int
(** Dense module index ([0 .. num_modules - 1]) of the fault's
    location. *)

val detectable : t -> int -> bool
(** At least one (vector, module) cell fails for this fault. *)

(** {1 Signatures} *)

val predicted : t -> int -> signature
(** The noiseless signature fault [i] produces (fresh copy). *)

val observe_noisy : rng:Rng.t -> epsilon:float -> t -> int -> signature
(** {!predicted} with every cell of the [modules x vectors] grid
    flipped independently with probability [epsilon].  Raises
    [Invalid_argument] unless [0 <= epsilon < 0.5]. *)

(** {1 Ranking} *)

val distance : t -> signature -> int -> int
(** Hamming distance between the observation and fault [i]'s predicted
    signature, over the full [modules x vectors] grid.  Raises
    [Invalid_argument] if the signature's shape does not match the
    engine. *)

val rank : ?mode:mode -> t -> signature -> candidate list
(** Candidates sorted by ascending distance (ties by ascending fault
    index, so the order is total and reproducible).  [Exact] (default)
    keeps only distance-0 candidates — possibly none for a noisy
    observation; [Noisy e] keeps all and fills in log-likelihoods.
    Raises [Invalid_argument] on a shape mismatch or an out-of-range
    [e]. *)

val top_modules : ?mode:mode -> t -> signature -> int list
(** Distinct module {e ids} in first-appearance order of the ranked
    candidates — the localization answer ("look in module 3, else 7,
    else ..."). *)

(** {1 Ambiguity} *)

val num_classes : t -> int
val class_of : t -> int -> int
val class_members : t -> int -> int array
(** Fault indices of a class, ascending. *)

val silent_class : t -> int option
(** The class of faults with all-pass signatures, when any. *)

val diagnosability : t -> summary

val c6_diagnosability : t -> float
(** Candidate cost term: [log expected_ambiguity] — [0.] at perfect
    resolution, growing with the ambiguity a partition leaves.  [0.]
    for an empty population. *)

(** {1 Accuracy harness} *)

val measure_accuracy :
  rng:Rng.t ->
  ?epsilon:float ->
  ?top_k:int ->
  ?trials:int ->
  t ->
  accuracy
(** Monte-Carlo localization accuracy: each trial draws a uniform
    {e detectable} fault, observes its signature ([epsilon = 0.], the
    default, means noiseless + [Exact] ranking; [> 0.] means
    {!observe_noisy} + [Noisy] ranking) and checks the ranking against
    the truth.  [trials] defaults to 50, [top_k] to 3.  Returns zeroed
    rates with [trials = 0] when no fault is detectable. *)
