(** Standard-cell-style placement and wirelength estimation.

    The paper defers wiring: "as technology mapping is not carried out
    so far wiring is not considered", arguing the routing costs of the
    compared partitions should not differ much.  This module checks
    that claim: a recursive min-cut bisection placement (FM-refined)
    assigns every gate a position on a unit grid, and half-perimeter
    wirelength (HPWL) plus per-module bounding boxes estimate the
    routing the partitions would actually cost — the virtual rail must
    reach every gate of a module, and the test clock/output lines must
    chain the sensors. *)

type t

val place : ?seed:int -> Iddq_netlist.Circuit.t -> t
(** Recursive bisection on the undirected gate graph, cut minimized by
    Fiduccia–Mattheyses-style passes, alternating horizontal/vertical
    splits.  Deterministic for a given seed (default 1). *)

val random : rng:Iddq_util.Rng.t -> Iddq_netlist.Circuit.t -> t
(** Gates shuffled onto the same grid — the quality baseline. *)

val position : t -> int -> float * float
(** Position of a gate index, in cell pitches. *)

val dimensions : t -> float * float
(** Width and height of the placement region. *)

val hpwl : t -> float
(** Total half-perimeter wirelength over all gate-to-gate nets (one
    net per driving gate spanning it and its gate fanouts; primary
    I/O excluded). *)

val net_hpwl : t -> int -> float
(** HPWL of the net driven by one gate index (0 for no gate fanout). *)

val module_bbox : t -> int array -> float * float * float * float
(** [(x0, y0, x1, y1)] bounding box of a gate group.  Raises
    [Invalid_argument] on an empty group. *)

val module_rail_length : t -> int array -> float
(** Half-perimeter of the group's bounding box: the scale of the
    virtual-rail routing a module's sensor needs. *)

val sensor_chain_length : t -> int array list -> float
(** Nearest-neighbour chain through the modules' centroids: the test
    clock/test output routing among the BIC sensors (the c5 cost's
    physical counterpart). *)
