module Circuit = Iddq_netlist.Circuit
module Graph_algo = Iddq_netlist.Graph_algo
module Rng = Iddq_util.Rng

type t = {
  circuit : Circuit.t;
  positions : (float * float) array; (* per gate index *)
  width : float;
  height : float;
}

(* One Fiduccia-Mattheyses-flavoured refinement pass over a bipartition
   of [gates] (side.(i) for gates.(i)): repeatedly move the best-gain
   unlocked gate while keeping the sides within one gate of balance.
   Adjacency is looked up through [local], mapping global gate index
   to position in [gates] (or -1). *)
let fm_pass u gates local side =
  let n = Array.length gates in
  let count_side s =
    let c = ref 0 in
    Array.iter (fun x -> if x = s then incr c) side;
    !c
  in
  let left = ref (count_side 0) in
  let right = ref (n - !left) in
  let locked = Array.make n false in
  let gain i =
    (* edges to the other side minus edges to the own side *)
    let own = side.(i) in
    let g = ref 0 in
    Graph_algo.iter_neighbours u gates.(i) (fun h ->
        let j = local.(h) in
        if j >= 0 then if side.(j) = own then decr g else incr g);
    !g
  in
  let moved = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    (* best unlocked move that keeps balance *)
    let best = ref (-1) and best_gain = ref min_int in
    for i = 0 to n - 1 do
      if not locked.(i) then begin
        let balance_ok =
          if side.(i) = 0 then !left - 1 >= (n / 2) - 1
          else !right - 1 >= (n / 2) - 1
        in
        if balance_ok then begin
          let g = gain i in
          if g > !best_gain then begin
            best_gain := g;
            best := i
          end
        end
      end
    done;
    if !best < 0 || !best_gain <= 0 then continue_ := false
    else begin
      let i = !best in
      if side.(i) = 0 then begin
        side.(i) <- 1;
        decr left;
        incr right
      end
      else begin
        side.(i) <- 0;
        incr left;
        decr right
      end;
      locked.(i) <- true;
      incr moved
    end
  done;
  !moved

(* Split [gates] into two balanced halves with a small cut: seed the
   first half by BFS growth from a random gate (keeps it connected),
   then refine with FM passes. *)
let bisect u rng gates local side_buffer =
  let n = Array.length gates in
  Array.iteri (fun i g -> local.(g) <- i) gates;
  let side = side_buffer in
  Array.fill side 0 n 1;
  let half = n / 2 in
  (* BFS growth *)
  let taken = ref 0 in
  let q = Queue.create () in
  let seen = Array.make n false in
  let start = Rng.int rng n in
  Queue.add start q;
  seen.(start) <- true;
  while !taken < half && not (Queue.is_empty q) do
    let i = Queue.pop q in
    side.(i) <- 0;
    incr taken;
    Graph_algo.iter_neighbours u gates.(i) (fun h ->
        let j = local.(h) in
        if j >= 0 && not seen.(j) then begin
          seen.(j) <- true;
          Queue.add j q
        end)
  done;
  (* disconnected remainder: top up arbitrarily *)
  let i = ref 0 in
  while !taken < half && !i < n do
    if side.(!i) = 1 then begin
      side.(!i) <- 0;
      incr taken
    end;
    incr i
  done;
  for _ = 1 to 2 do
    ignore (fm_pass u gates local side)
  done;
  let a = ref [] and b = ref [] in
  for i = n - 1 downto 0 do
    if side.(i) = 0 then a := gates.(i) :: !a else b := gates.(i) :: !b
  done;
  (* reset the scratch mapping *)
  Array.iter (fun g -> local.(g) <- -1) gates;
  (Array.of_list !a, Array.of_list !b)

let place ?(seed = 1) circuit =
  let ng = Circuit.num_gates circuit in
  let u = Graph_algo.undirected_of_circuit circuit in
  let rng = Rng.create seed in
  let positions = Array.make (Stdlib.max 1 ng) (0.0, 0.0) in
  let local = Array.make ng (-1) in
  let side_buffer = Array.make ng 0 in
  (* region = (x0, y0, x1, y1); alternate the split axis with depth *)
  let rec layout gates (x0, y0, x1, y1) vertical =
    let n = Array.length gates in
    if n = 0 then ()
    else if n <= 4 then begin
      (* leaf: a little row-major grid *)
      let cols = int_of_float (Float.ceil (sqrt (float_of_int n))) in
      Array.iteri
        (fun i g ->
          let cx = i mod cols and cy = i / cols in
          let fx = (float_of_int cx +. 0.5) /. float_of_int cols in
          let rows = ((n - 1) / cols) + 1 in
          let fy = (float_of_int cy +. 0.5) /. float_of_int rows in
          positions.(g) <- (x0 +. (fx *. (x1 -. x0)), y0 +. (fy *. (y1 -. y0))))
        gates
    end
    else begin
      let a, b = bisect u rng gates local (Array.sub side_buffer 0 n) in
      let wa = float_of_int (Array.length a) /. float_of_int n in
      if vertical then begin
        let xm = x0 +. (wa *. (x1 -. x0)) in
        layout a (x0, y0, xm, y1) (not vertical);
        layout b (xm, y0, x1, y1) (not vertical)
      end
      else begin
        let ym = y0 +. (wa *. (y1 -. y0)) in
        layout a (x0, y0, x1, ym) (not vertical);
        layout b (x0, ym, x1, y1) (not vertical)
      end
    end
  in
  let side = Float.ceil (sqrt (float_of_int (Stdlib.max 1 ng))) in
  layout (Array.init ng Fun.id) (0.0, 0.0, side, side) true;
  { circuit; positions; width = side; height = side }

let random ~rng circuit =
  let ng = Circuit.num_gates circuit in
  let side_cells = int_of_float (Float.ceil (sqrt (float_of_int (Stdlib.max 1 ng)))) in
  let slots = Array.init (side_cells * side_cells) Fun.id in
  Rng.shuffle_in_place rng slots;
  let positions =
    Array.init (Stdlib.max 1 ng) (fun g ->
        let s = slots.(g) in
        ( (float_of_int (s mod side_cells)) +. 0.5,
          (float_of_int (s / side_cells)) +. 0.5 ))
  in
  let side = float_of_int side_cells in
  { circuit; positions; width = side; height = side }

let position t g = t.positions.(g)
let dimensions t = (t.width, t.height)

let net_hpwl t g =
  let readers = Circuit.gate_fanout_gates t.circuit g in
  if Array.length readers = 0 then 0.0
  else begin
    let x, y = t.positions.(g) in
    let x0 = ref x and x1 = ref x and y0 = ref y and y1 = ref y in
    Array.iter
      (fun h ->
        let hx, hy = t.positions.(h) in
        if hx < !x0 then x0 := hx;
        if hx > !x1 then x1 := hx;
        if hy < !y0 then y0 := hy;
        if hy > !y1 then y1 := hy)
      readers;
    !x1 -. !x0 +. (!y1 -. !y0)
  end

let hpwl t =
  let total = ref 0.0 in
  for g = 0 to Circuit.num_gates t.circuit - 1 do
    total := !total +. net_hpwl t g
  done;
  !total

let module_bbox t gates =
  if Array.length gates = 0 then invalid_arg "Placement.module_bbox: empty";
  let x, y = t.positions.(gates.(0)) in
  let x0 = ref x and x1 = ref x and y0 = ref y and y1 = ref y in
  Array.iter
    (fun g ->
      let gx, gy = t.positions.(g) in
      if gx < !x0 then x0 := gx;
      if gx > !x1 then x1 := gx;
      if gy < !y0 then y0 := gy;
      if gy > !y1 then y1 := gy)
    gates;
  (!x0, !y0, !x1, !y1)

let module_rail_length t gates =
  let x0, y0, x1, y1 = module_bbox t gates in
  x1 -. x0 +. (y1 -. y0)

let centroid t gates =
  let sx = ref 0.0 and sy = ref 0.0 in
  Array.iter
    (fun g ->
      let x, y = t.positions.(g) in
      sx := !sx +. x;
      sy := !sy +. y)
    gates;
  let n = float_of_int (Array.length gates) in
  (!sx /. n, !sy /. n)

let sensor_chain_length t modules =
  match List.filter (fun m -> Array.length m > 0) modules with
  | [] | [ _ ] -> 0.0
  | ms ->
    let centers = Array.of_list (List.map (centroid t) ms) in
    let n = Array.length centers in
    let visited = Array.make n false in
    let dist (ax, ay) (bx, by) = Float.abs (ax -. bx) +. Float.abs (ay -. by) in
    (* nearest-neighbour chain from the first module *)
    let total = ref 0.0 in
    let current = ref 0 in
    visited.(0) <- true;
    for _ = 2 to n do
      let best = ref (-1) and best_d = ref infinity in
      for j = 0 to n - 1 do
        if (not visited.(j)) && dist centers.(!current) centers.(j) < !best_d
        then begin
          best := j;
          best_d := dist centers.(!current) centers.(j)
        end
      done;
      total := !total +. !best_d;
      visited.(!best) <- true;
      current := !best
    done;
    !total
