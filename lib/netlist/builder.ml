type decl = Decl_input | Decl_gate of Gate.kind * string list

type t = {
  mutable circuit_name : string;
  decls : (string, decl) Hashtbl.t;
  mutable order : string list; (* declaration order, reversed *)
  mutable output_names : string list; (* reversed, unique *)
  output_seen : (string, unit) Hashtbl.t;
}

let create ?(name = "circuit") () =
  {
    circuit_name = name;
    decls = Hashtbl.create 64;
    order = [];
    output_names = [];
    output_seen = Hashtbl.create 16;
  }

let declare b name decl =
  if Hashtbl.mem b.decls name then
    invalid_arg (Printf.sprintf "Builder: duplicate declaration of %S" name);
  Hashtbl.replace b.decls name decl;
  b.order <- name :: b.order

let add_input b name = declare b name Decl_input

let add_gate b name kind fanins =
  if not (Gate.arity_ok kind (List.length fanins)) then
    invalid_arg
      (Printf.sprintf "Builder: %s gate %S with %d fanins" (Gate.to_string kind)
         name (List.length fanins));
  declare b name (Decl_gate (kind, fanins))

let add_output b name =
  if not (Hashtbl.mem b.output_seen name) then begin
    Hashtbl.replace b.output_seen name ();
    b.output_names <- name :: b.output_names
  end

(* Topological sort of the gates (inputs first, declaration order kept
   where possible), by DFS with an explicit three-colour marking so
   cycles are reported rather than overflowing the stack. *)
let freeze b =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let names_in_order = List.rev b.order in
  let input_names, gate_names =
    List.partition
      (fun n ->
        match Hashtbl.find b.decls n with
        | Decl_input -> true
        | Decl_gate _ -> false)
      names_in_order
  in
  (* Check all fanins are declared. *)
  let undefined = ref None in
  List.iter
    (fun n ->
      match Hashtbl.find b.decls n with
      | Decl_input -> ()
      | Decl_gate (_, fanins) ->
        List.iter
          (fun f ->
            if (not (Hashtbl.mem b.decls f)) && !undefined = None then
              undefined := Some (n, f))
          fanins)
    names_in_order;
  match !undefined with
  | Some (gate, fanin) -> err "gate %S references undefined net %S" gate fanin
  | None -> begin
    let missing_output =
      List.find_opt (fun n -> not (Hashtbl.mem b.decls n)) b.output_names
    in
    match missing_output with
    | Some n -> err "output %S names an undeclared net" n
    | None ->
      if b.output_names = [] then err "circuit has no outputs"
      else begin
        (* Iterative DFS topological sort over gates. *)
        let color = Hashtbl.create 64 in
        (* 0 = white (absent), 1 = grey, 2 = black *)
        let sorted = ref [] in
        let cycle = ref None in
        let rec visit name =
          match Hashtbl.find_opt color name with
          | Some 2 -> ()
          | Some 1 -> if !cycle = None then cycle := Some name
          | Some _ | None -> begin
            match Hashtbl.find b.decls name with
            | Decl_input -> Hashtbl.replace color name 2
            | Decl_gate (_, fanins) ->
              Hashtbl.replace color name 1;
              List.iter visit fanins;
              Hashtbl.replace color name 2;
              sorted := name :: !sorted
          end
        in
        List.iter visit gate_names;
        match !cycle with
        | Some n -> err "combinational cycle through net %S" n
        | None ->
          let gate_order = List.rev !sorted in
          let all_names = Array.of_list (input_names @ gate_order) in
          let index = Hashtbl.create (Array.length all_names) in
          Array.iteri (fun i n -> Hashtbl.replace index n i) all_names;
          let nodes =
            Array.map
              (fun n ->
                match Hashtbl.find b.decls n with
                | Decl_input -> Circuit.Input
                | Decl_gate (kind, fanins) ->
                  let ids =
                    Array.of_list
                      (List.map (fun f -> Hashtbl.find index f) fanins)
                  in
                  Circuit.Gate (kind, ids))
              all_names
          in
          let outputs =
            Array.of_list
              (List.rev_map (fun n -> Hashtbl.find index n) b.output_names)
          in
          Ok
            (Circuit.unsafe_make ~name:b.circuit_name ~nodes
               ~node_names:all_names
               ~num_inputs:(List.length input_names)
               ~outputs)
      end
  end

let freeze_exn b =
  match freeze b with Ok c -> c | Error e -> failwith ("Builder.freeze: " ^ e)
