(** ISCAS85 benchmark circuits.

    [c17] is the exact published netlist.  The six Table-1 circuits
    (C1908 … C7552) are {e structure-matched synthetic stand-ins}:
    deterministic layered DAGs reproducing each benchmark's published
    primary-input, primary-output and gate counts and logic depth
    (DESIGN.md §2 records the substitution).  Generation is seeded per
    circuit, so every call returns an identical netlist. *)

val c17 : unit -> Circuit.t
(** The real C17: 5 inputs, 2 outputs, 6 NAND gates.  Node names
    follow the original numbering (nets 1,2,3,6,7 in; 10,11,16,19,22,
    23 gates; 22,23 out). *)

val c17_paper_gate_names : string array
(** The paper's worked example (Figs. 3–5) numbers the C17 gates 1–6;
    entry [i] is the net name of the paper's gate [i+1]. *)

val c432_like : unit -> Circuit.t
(** Mid-size stand-in (36 in / 7 out / 160 gates / depth 17),
    handy for fast integration tests. *)

val c499_like : unit -> Circuit.t
(** 41 in / 32 out / 202 gates / depth 11, XOR-heavy mix (C499 is the
    32-bit single-error-correcting circuit). *)

val c880_like : unit -> Circuit.t
(** 60 in / 26 out / 383 gates / depth 24. *)

val c1355_like : unit -> Circuit.t
(** 41 in / 32 out / 546 gates / depth 24, NAND-heavy mix (C1355 is
    C499's NAND expansion). *)

val c1908_like : unit -> Circuit.t
val c2670_like : unit -> Circuit.t
val c3540_like : unit -> Circuit.t
val c5315_like : unit -> Circuit.t
val c6288_like : unit -> Circuit.t
val c7552_like : unit -> Circuit.t

val table1_suite : unit -> (string * Circuit.t) list
(** The six circuits of the paper's Table 1 in publication order,
    under their paper names (the paper's "C7522" is the well-known
    typo for C7552). *)

val names : string list
(** Canonical names of every built-in circuit, [c17] plus the ten
    stand-ins, in size order. *)

val by_name : string -> Circuit.t option
(** Case-insensitive lookup of a built-in circuit by its {!names}
    entry; [None] for unknown names.  Each call constructs a fresh
    (deterministic) netlist. *)
