type kind = And | Nand | Or | Nor | Xor | Xnor | Not | Buff

let all_kinds = [ And; Nand; Or; Nor; Xor; Xnor; Not; Buff ]

let to_string = function
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Not -> "NOT"
  | Buff -> "BUFF"

let of_string s =
  match String.uppercase_ascii s with
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "NOT" | "INV" -> Some Not
  | "BUFF" | "BUF" -> Some Buff
  | _ -> None

let arity_ok kind n =
  match kind with
  | Not | Buff -> n = 1
  | And | Nand | Or | Nor | Xor | Xnor -> n >= 2

let eval kind inputs =
  let n = Array.length inputs in
  if not (arity_ok kind n) then
    invalid_arg
      (Printf.sprintf "Gate.eval: %s with %d inputs" (to_string kind) n);
  let conj () = Array.for_all Fun.id inputs in
  let disj () = Array.exists Fun.id inputs in
  let parity () =
    Array.fold_left (fun acc b -> if b then not acc else acc) false inputs
  in
  match kind with
  | And -> conj ()
  | Nand -> not (conj ())
  | Or -> disj ()
  | Nor -> not (disj ())
  | Xor -> parity ()
  | Xnor -> not (parity ())
  | Not -> not inputs.(0)
  | Buff -> inputs.(0)

let code = function
  | And -> 0
  | Nand -> 1
  | Or -> 2
  | Nor -> 3
  | Xor -> 4
  | Xnor -> 5
  | Not -> 6
  | Buff -> 7

let of_code = function
  | 0 -> And
  | 1 -> Nand
  | 2 -> Or
  | 3 -> Nor
  | 4 -> Xor
  | 5 -> Xnor
  | 6 -> Not
  | 7 -> Buff
  | c -> invalid_arg (Printf.sprintf "Gate.of_code: %d" c)

let pp fmt kind = Format.pp_print_string fmt (to_string kind)
let equal (a : kind) b = a = b
let compare (a : kind) b = Stdlib.compare a b
