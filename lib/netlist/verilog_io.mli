(** Reader and writer for gate-level structural Verilog.

    The supported subset is what gate-level netlists use: one module,
    [input]/[output]/[wire] declarations, and primitive gate
    instantiations

    {v
    module c17 (N1, N2, N3, N6, N7, N22, N23);
      input N1, N2, N3, N6, N7;
      output N22, N23;
      wire N10, N11, N16, N19;
      nand g10 (N10, N1, N3);
      ...
    endmodule
    v}

    Primitives: [and or nand nor xor xnor not buf], first terminal is
    the output.  Instance names are optional on parse and generated on
    print.  Comments ([//] and [/* ... */]) are ignored.

    {b Error contract.}  Lex, parse and structural failures — and, for
    {!parse_file}, unreadable files — are reported as [Error] values
    with line (and path) context; malformed input never raises. *)

val parse_string : string -> (Circuit.t, Iddq_util.Io_error.t) result
(** Errors carry a line number.  The circuit takes the Verilog
    module's name. *)

val parse_file : string -> (Circuit.t, Iddq_util.Io_error.t) result
(** Descriptor-safe file read, then {!parse_string}; errors gain the
    path. *)

val to_string : Circuit.t -> string
(** [parse_string (to_string c)] is a circuit isomorphic to [c].
    Net names that are not Verilog identifiers are escaped with the
    [\ ] syntax. *)

val write_file : string -> Circuit.t -> (unit, Iddq_util.Io_error.t) result
(** Atomic write (scratch file + rename): a crash mid-write leaves any
    previous file at this path intact. *)
