(** Reader and writer for gate-level structural Verilog.

    The supported subset is what gate-level netlists use: one module,
    [input]/[output]/[wire] declarations, and primitive gate
    instantiations

    {v
    module c17 (N1, N2, N3, N6, N7, N22, N23);
      input N1, N2, N3, N6, N7;
      output N22, N23;
      wire N10, N11, N16, N19;
      nand g10 (N10, N1, N3);
      ...
    endmodule
    v}

    Primitives: [and or nand nor xor xnor not buf], first terminal is
    the output.  Instance names are optional on parse and generated on
    print.  Comments ([//] and [/* ... */]) are ignored. *)

val parse_string : string -> (Circuit.t, string) result
(** Errors carry a line number.  The circuit takes the Verilog
    module's name. *)

val parse_file : string -> (Circuit.t, string) result

val to_string : Circuit.t -> string
(** [parse_string (to_string c)] is a circuit isomorphic to [c].
    Net names that are not Verilog identifiers are escaped with the
    [\ ] syntax. *)

val write_file : string -> Circuit.t -> unit
