(** Mutable circuit construction.

    Nodes are declared by name in any order; fanins may reference
    names that are declared later.  [freeze] resolves names,
    topologically sorts the gates, checks the structural invariants
    and produces an immutable {!Circuit.t}. *)

type t

val create : ?name:string -> unit -> t

val add_input : t -> string -> unit
(** Declares a primary input.  Raises [Invalid_argument] on duplicate
    declaration of the name (input or gate). *)

val add_gate : t -> string -> Gate.kind -> string list -> unit
(** [add_gate b name kind fanins] declares a gate driving net [name].
    Raises [Invalid_argument] on duplicate names or invalid arity. *)

val add_output : t -> string -> unit
(** Marks a net as primary output (it must be declared before
    [freeze]; declaration order does not matter).  Duplicate output
    declarations are idempotent. *)

val freeze : t -> (Circuit.t, string) result
(** Resolves and validates.  Errors on: undefined fanin names,
    combinational cycles, zero outputs, outputs naming undeclared
    nets. *)

val freeze_exn : t -> Circuit.t
(** [freeze] or [Failure]. *)
