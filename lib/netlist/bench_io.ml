let strip s = String.trim s

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

(* "INPUT(G1)" -> Some ("INPUT", "G1") ; tolerant of inner spaces. *)
let parse_call s =
  match String.index_opt s '(' with
  | None -> None
  | Some lp ->
    if String.length s = 0 || s.[String.length s - 1] <> ')' then None
    else begin
      let keyword = strip (String.sub s 0 lp) in
      let args = String.sub s (lp + 1) (String.length s - lp - 2) in
      Some (keyword, args)
    end

let split_args args =
  String.split_on_char ',' args |> List.map strip
  |> List.filter (fun s -> s <> "")

module Io = Iddq_util.Io
module Io_error = Iddq_util.Io_error

let parse_string ?(name = "bench") text =
  let b = Builder.create ~name () in
  let lines = String.split_on_char '\n' text in
  let exception Parse_error of int * string in
  let fail lineno fmt =
    Format.kasprintf (fun m -> raise (Parse_error (lineno, m))) fmt
  in
  try
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        let line = strip (strip_comment raw) in
        if line <> "" then begin
          match String.index_opt line '=' with
          | Some eq ->
            let lhs = strip (String.sub line 0 eq) in
            let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
            if lhs = "" then fail lineno "missing net name before '='";
            begin
              match parse_call rhs with
              | None -> fail lineno "expected KIND(arg, ...) after '='"
              | Some (kw, args) -> begin
                match Gate.of_string kw with
                | None -> fail lineno "unknown gate kind %S" kw
                | Some kind -> begin
                  let fanins = split_args args in
                  if fanins = [] then fail lineno "gate %S has no fanins" lhs;
                  try Builder.add_gate b lhs kind fanins
                  with Invalid_argument m -> fail lineno "%s" m
                end
              end
            end
          | None -> begin
            match parse_call line with
            | Some (kw, args) -> begin
              match String.uppercase_ascii kw, split_args args with
              | "INPUT", [ n ] -> begin
                try Builder.add_input b n
                with Invalid_argument m -> fail lineno "%s" m
              end
              | "OUTPUT", [ n ] -> begin
                try Builder.add_output b n
                with Invalid_argument m -> fail lineno "%s" m
              end
              | ("INPUT" | "OUTPUT"), _ ->
                fail lineno "%s takes exactly one net name" kw
              | _, _ -> fail lineno "unknown directive %S" kw
            end
            | None -> fail lineno "cannot parse %S" line
          end
        end)
      lines;
    Result.map_error (fun m -> Io_error.make m) (Builder.freeze b)
  with Parse_error (lineno, m) -> Error (Io_error.make ~line:lineno m)

let parse_file path =
  match Io.read_file path with
  | Error e -> Error e
  | Ok text ->
    let base = Filename.remove_extension (Filename.basename path) in
    Result.map_error (Io_error.with_path path) (parse_string ~name:base text)

let to_string c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Circuit.name c));
  Array.iter
    (fun id ->
      Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Circuit.node_name c id)))
    (Circuit.inputs c);
  Array.iter
    (fun id ->
      Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Circuit.node_name c id)))
    (Circuit.outputs c);
  Circuit.iter_gates c (fun g kind fanins ->
      let id = Circuit.node_of_gate c g in
      let args =
        Array.to_list fanins
        |> List.map (Circuit.node_name c)
        |> String.concat ", "
      in
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" (Circuit.node_name c id)
           (Gate.to_string kind) args));
  Buffer.contents buf

let write_file path c = Io.write_file_atomic path (to_string c)
