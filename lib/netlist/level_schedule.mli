(** Levelized evaluation schedule.

    A topological {e levelization} of a circuit: every primary input
    sits at level 0 and every gate at one plus the maximum level of
    its fanins, so all gates of one level are pairwise independent —
    they can be evaluated in any order (or in parallel) once every
    earlier level is done.  Simulation kernels use the flat arrays
    below to sweep the circuit level by level instead of node by
    node; the within-level independence is what the domain-parallel
    evaluation driver splits across workers.

    Like the CSR circuit itself the schedule is all flat [int] arrays
    (built by the same counting-sort recipe as the fanout arrays), and
    it is {e cached per circuit}: {!of_circuit} memoizes on the
    circuit's physical identity behind a mutex, so the scalar
    simulator can ask for it on every call without rebuilding. *)

type t

val of_circuit : Circuit.t -> t
(** The circuit's schedule, computed on first use and cached (weakly,
    keyed on physical identity — dropping the circuit drops the
    schedule).  Thread-safe; cheap after the first call. *)

val compute : Circuit.t -> t
(** Build a fresh schedule, bypassing the cache (tests). *)

val num_levels : t -> int
(** Number of gate levels — the circuit's logic depth.  [0] for a
    gate-free circuit. *)

val num_gates : t -> int

val level_of_node : t -> int -> int
(** Level of a node id: [0] for inputs, [>= 1] for gates. *)

val order : t -> int array
(** All gate node ids, level-major (level 1 first), ascending id
    within a level.  Every non-input node appears exactly once; any
    prefix is closed under fanins — a valid topological order.
    Borrowed — do not mutate. *)

val offsets : t -> int array
(** Length [num_levels + 1]: level [l] ([1]-based) occupies
    [order.(offsets.(l-1)) .. order.(offsets.(l) - 1)].  Borrowed —
    do not mutate. *)

val level_width : t -> int -> int
(** Gates in ([1]-based) level [l]. *)

val max_level_width : t -> int
(** The widest level — the parallelism cap for within-level
    splitting. *)

val validate : Circuit.t -> t -> (unit, string) result
(** Re-checks the schedule invariants against the circuit: offsets
    partition [order], every gate appears exactly once, every fanin
    sits at a strictly smaller level, every gate at exactly one plus
    its deepest fanin.  Tests and deserialization. *)
