(* A small hand-rolled lexer/parser for the structural subset.  The
   grammar is regular enough that a token stream plus a few recursive
   descent functions keep this dependency-free. *)

module Io = Iddq_util.Io
module Io_error = Iddq_util.Io_error

type token =
  | Ident of string
  | Punct of char (* ( ) , ; *)
  | Kw_module
  | Kw_endmodule
  | Kw_input
  | Kw_output
  | Kw_wire

exception Lex_error of int * string

let keyword = function
  | "module" -> Some Kw_module
  | "endmodule" -> Some Kw_endmodule
  | "input" -> Some Kw_input
  | "output" -> Some Kw_output
  | "wire" -> Some Kw_wire
  | _ -> None

let is_ident_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'

let is_ident_char ch =
  is_ident_start ch || (ch >= '0' && ch <= '9') || ch = '$'

(* tokens paired with their line numbers *)
let lex text =
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push tok = tokens := (tok, !line) :: !tokens in
  while !i < n do
    let ch = text.[!i] in
    if ch = '\n' then begin
      incr line;
      incr i
    end
    else if ch = ' ' || ch = '\t' || ch = '\r' then incr i
    else if ch = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if ch = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if text.[!i] = '\n' then incr line;
        if !i + 1 < n && text.[!i] = '*' && text.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then raise (Lex_error (!line, "unterminated comment"))
    end
    else if ch = '(' || ch = ')' || ch = ',' || ch = ';' then begin
      push (Punct ch);
      incr i
    end
    else if ch = '\\' then begin
      (* escaped identifier: up to the next whitespace *)
      let start = !i + 1 in
      let j = ref start in
      while
        !j < n && text.[!j] <> ' ' && text.[!j] <> '\t' && text.[!j] <> '\n'
        && text.[!j] <> '\r'
      do
        incr j
      done;
      if !j = start then raise (Lex_error (!line, "empty escaped identifier"));
      push (Ident (String.sub text start (!j - start)));
      i := !j
    end
    else if is_ident_start ch then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      let word = String.sub text start (!i - start) in
      match keyword word with Some kw -> push kw | None -> push (Ident word)
    end
    else if ch >= '0' && ch <= '9' then begin
      (* bare numbers appear as net names in some netlists; treat a
         digit-led word as an identifier *)
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      push (Ident (String.sub text start (!i - start)))
    end
    else raise (Lex_error (!line, Printf.sprintf "unexpected character %C" ch))
  done;
  List.rev !tokens

exception Parse_error of int * string

let parse_string text =
  try
    let tokens = ref (lex text) in
    let line_of = function [] -> 0 | (_, l) :: _ -> l in
    let fail fmt =
      Format.kasprintf (fun m -> raise (Parse_error (line_of !tokens, m))) fmt
    in
    let next () =
      match !tokens with
      | [] -> fail "unexpected end of input"
      | (tok, _) :: rest ->
        tokens := rest;
        tok
    in
    let peek () = match !tokens with [] -> None | (tok, _) :: _ -> Some tok in
    let expect tok what =
      let got = next () in
      if got <> tok then fail "expected %s" what
    in
    let ident what =
      match next () with Ident s -> s | _ -> fail "expected %s" what
    in
    (* identifier list up to ';' *)
    let rec ident_list acc =
      let name = ident "a net name" in
      match next () with
      | Punct ',' -> ident_list (name :: acc)
      | Punct ';' -> List.rev (name :: acc)
      | _ -> fail "expected ',' or ';' in a declaration"
    in
    expect Kw_module "'module'";
    let module_name = ident "the module name" in
    (* port list: names only; directions come from declarations *)
    expect (Punct '(') "'('";
    let rec ports acc =
      match next () with
      | Punct ')' -> List.rev acc
      | Ident s -> begin
        match next () with
        | Punct ',' -> ports (s :: acc)
        | Punct ')' -> List.rev (s :: acc)
        | _ -> fail "expected ',' or ')' in the port list"
      end
      | _ -> fail "expected a port name"
    in
    let _port_names = ports [] in
    expect (Punct ';') "';' after the port list";
    let b = Builder.create ~name:module_name () in
    let outputs = ref [] in
    let rec body () =
      match peek () with
      | Some Kw_endmodule ->
        ignore (next ());
        ()
      | Some Kw_input ->
        ignore (next ());
        List.iter (Builder.add_input b) (ident_list []);
        body ()
      | Some Kw_output ->
        ignore (next ());
        outputs := !outputs @ ident_list [];
        body ()
      | Some Kw_wire ->
        ignore (next ());
        ignore (ident_list []);
        body ()
      | Some (Ident prim) -> begin
        ignore (next ());
        match Gate.of_string prim with
        | None -> fail "unknown primitive %S" prim
        | Some kind -> begin
          (* optional instance name *)
          (match peek () with
          | Some (Ident _) -> ignore (next ())
          | Some _ | None -> ());
          expect (Punct '(') "'(' after a primitive";
          let rec terminals acc =
            let t = ident "a terminal net" in
            match next () with
            | Punct ',' -> terminals (t :: acc)
            | Punct ')' -> List.rev (t :: acc)
            | _ -> fail "expected ',' or ')' in a terminal list"
          in
          let terms = terminals [] in
          expect (Punct ';') "';' after an instantiation";
          match terms with
          | [] -> fail "primitive with no terminals"
          | [ _ ] -> fail "primitive with no inputs"
          | out :: fanins ->
            (try Builder.add_gate b out kind fanins
             with Invalid_argument m -> fail "%s" m);
            body ()
        end
      end
      | Some (Punct ch) -> fail "unexpected %C" ch
      | Some (Kw_module) -> fail "nested modules are not supported"
      | None -> fail "missing 'endmodule'"
    in
    body ();
    List.iter (Builder.add_output b) !outputs;
    Result.map_error (fun m -> Io_error.make m) (Builder.freeze b)
  with
  | Lex_error (line, m) | Parse_error (line, m) ->
    Error (Io_error.make ~line m)

let parse_file path =
  match Io.read_file path with
  | Error e -> Error e
  | Ok text -> Result.map_error (Io_error.with_path path) (parse_string text)

let valid_ident s =
  s <> ""
  && is_ident_start s.[0]
  && String.for_all is_ident_char s
  && keyword s = None

let emit_name s = if valid_ident s then s else "\\" ^ s ^ " "

let sanitize_module_name s =
  if valid_ident s then s
  else begin
    let cleaned =
      String.map (fun ch -> if is_ident_char ch then ch else '_') s
    in
    if cleaned <> "" && is_ident_start cleaned.[0] then cleaned
    else "m_" ^ cleaned
  end

let to_string c =
  let buf = Buffer.create 4096 in
  let name id = emit_name (Circuit.node_name c id) in
  let inputs = Circuit.inputs c in
  let outputs = Circuit.outputs c in
  let join ids = String.concat ", " (List.map name (Array.to_list ids)) in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n"
       (sanitize_module_name (Circuit.name c))
       (join (Array.append inputs outputs)));
  Buffer.add_string buf (Printf.sprintf "  input %s;\n" (join inputs));
  Buffer.add_string buf (Printf.sprintf "  output %s;\n" (join outputs));
  let internal =
    Array.init (Circuit.num_gates c) (fun g -> Circuit.node_of_gate c g)
    |> Array.to_list
    |> List.filter (fun id -> not (Circuit.is_output c id))
  in
  if internal <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  wire %s;\n"
         (String.concat ", " (List.map name internal)));
  Circuit.iter_gates c (fun g kind fanins ->
      let id = Circuit.node_of_gate c g in
      let prim =
        match kind with
        | Gate.Buff -> "buf"
        | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor
        | Gate.Not ->
          String.lowercase_ascii (Gate.to_string kind)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s g%d (%s, %s);\n" prim g (name id)
           (String.concat ", " (List.map name (Array.to_list fanins)))));
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file path c = Io.write_file_atomic path (to_string c)
