type t = {
  node_level : int array; (* per node id; inputs at 0 *)
  offsets : int array; (* length num_levels + 1, indexes order *)
  order : int array; (* gate node ids, level-major, ascending id per level *)
}

(* One pass in id order computes every node's level (fanins have
   smaller ids), then a counting sort places the gates level-major —
   the same recipe as [Circuit.build_fanouts_csr], so filling in id
   order keeps each level's ids ascending. *)
let compute c =
  let n = Circuit.num_nodes c in
  let ni = Circuit.num_inputs c in
  let fanin_offsets = Circuit.Csr.fanin_offsets c in
  let fanin_targets = Circuit.Csr.fanin_targets c in
  let node_level = Array.make n 0 in
  let max_level = ref 0 in
  for id = ni to n - 1 do
    let d = ref 0 in
    for k = fanin_offsets.(id) to fanin_offsets.(id + 1) - 1 do
      let src = Array.unsafe_get fanin_targets k in
      if node_level.(src) > !d then d := node_level.(src)
    done;
    let d = !d + 1 in
    node_level.(id) <- d;
    if d > !max_level then max_level := d
  done;
  let offsets = Array.make (!max_level + 1) 0 in
  for id = ni to n - 1 do
    offsets.(node_level.(id)) <- offsets.(node_level.(id)) + 1
  done;
  (* offsets.(l) currently holds the width of level l+1 (slot 0 is
     unused by gates); shift into a prefix sum over levels 1.. *)
  let acc = ref 0 in
  for l = 1 to !max_level do
    let w = offsets.(l) in
    offsets.(l - 1) <- !acc;
    acc := !acc + w
  done;
  offsets.(!max_level) <- !acc;
  let fill = Array.sub offsets 0 (Stdlib.max 1 !max_level) in
  let order = Array.make (n - ni) 0 in
  for id = ni to n - 1 do
    let l = node_level.(id) - 1 in
    order.(fill.(l)) <- id;
    fill.(l) <- fill.(l) + 1
  done;
  { node_level; offsets; order }

(* Per-circuit cache, keyed on physical identity so structurally
   equal circuits don't alias and a dead circuit doesn't pin its
   schedule.  The ephemeron table is not domain-safe; every access
   holds the mutex (the computation itself runs outside it only on
   the cold path, where recomputing twice is harmless). *)
module Cache = Ephemeron.K1.Make (struct
  type nonrec t = Circuit.t

  let equal = ( == )
  let hash c = Hashtbl.hash (Circuit.name c, Circuit.num_nodes c)
end)

let cache : t Cache.t = Cache.create 16
let cache_mutex = Mutex.create ()

let of_circuit c =
  let cached =
    Mutex.protect cache_mutex (fun () -> Cache.find_opt cache c)
  in
  match cached with
  | Some s -> s
  | None ->
    let s = compute c in
    Mutex.protect cache_mutex (fun () -> Cache.replace cache c s);
    s

let num_levels t = Array.length t.offsets - 1
let num_gates t = Array.length t.order
let level_of_node t id = t.node_level.(id)
let order t = t.order
let offsets t = t.offsets

let level_width t l =
  if l < 1 || l > num_levels t then
    invalid_arg "Level_schedule.level_width: bad level";
  t.offsets.(l) - t.offsets.(l - 1)

let max_level_width t =
  let w = ref 0 in
  for l = 1 to num_levels t do
    let lw = level_width t l in
    if lw > !w then w := lw
  done;
  !w

let validate c t =
  let n = Circuit.num_nodes c in
  let ni = Circuit.num_inputs c in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let nl = num_levels t in
  if Array.length t.node_level <> n then err "node_level length drifted"
  else if Array.length t.order <> n - ni then err "order length drifted"
  else if t.offsets.(0) <> 0 || t.offsets.(nl) <> n - ni then
    err "offsets do not span the gates"
  else begin
    let monotone = ref true in
    for l = 0 to nl - 1 do
      if t.offsets.(l + 1) < t.offsets.(l) then monotone := false
    done;
    if not !monotone then err "offsets not monotone"
    else begin
      let seen = Array.make n false in
      let bad = ref None in
      for l = 1 to nl do
        for k = t.offsets.(l - 1) to t.offsets.(l) - 1 do
          let id = t.order.(k) in
          if id < ni || id >= n then bad := Some (err "order id %d out of range" id)
          else if seen.(id) then bad := Some (err "node %d scheduled twice" id)
          else begin
            seen.(id) <- true;
            if t.node_level.(id) <> l then
              bad := Some (err "node %d filed under level %d" id l);
            let deepest = ref 0 in
            Circuit.iter_fanins c id (fun src ->
                if t.node_level.(src) >= l then
                  bad := Some (err "node %d: fanin %d not at an earlier level" id src);
                if t.node_level.(src) > !deepest then deepest := t.node_level.(src));
            if !deepest + 1 <> l then
              bad := Some (err "node %d: level %d but deepest fanin %d" id l !deepest)
          end
        done
      done;
      match !bad with
      | Some e -> e
      | None ->
        let missing = ref (-1) in
        for id = ni to n - 1 do
          if not seen.(id) then missing := id
        done;
        if !missing >= 0 then err "gate node %d never scheduled" !missing
        else Ok ()
    end
  end
