(** Graph algorithms over circuits.

    Everything here treats the circuit either as the directed DAG of
    its nodes, or — for the separation metric of the paper — as the
    corresponding undirected graph. *)

(** {1 Levelization} *)

val node_depths : Circuit.t -> int array
(** [node_depths c].(id) is the longest distance (in gates) from any
    primary input to node [id]; inputs have depth 0 and a gate's depth
    is [1 + max] over its fanins. *)

val gate_depths : Circuit.t -> int array
(** Depths indexed by gate index. *)

val depth : Circuit.t -> int
(** Maximum gate depth (the circuit's logic depth). *)

val gates_by_depth : Circuit.t -> int array array
(** [gates_by_depth c].(d) lists the gate indices at depth [d+1]
    (slot 0 holds depth-1 gates; inputs are not listed). *)

(** {1 Undirected separation (paper §3.3)} *)

type undirected
(** Adjacency of the undirected version of the circuit graph over
    {e gate indices} (primary inputs are excluded: the paper's
    separation measures routing between gates of a module). *)

val undirected_of_circuit : Circuit.t -> undirected

val neighbours : undirected -> int -> int array

val iter_neighbours : undirected -> int -> (int -> unit) -> unit
(** Allocation-free iteration over a gate's undirected neighbours. *)

val exists_neighbour : undirected -> int -> (int -> bool) -> bool

val separation : undirected -> cutoff:int -> int -> int -> int
(** [separation u ~cutoff g1 g2] is the paper's [S(g_i,g_j)]: the
    number of intermediate nodes on a shortest undirected path between
    the two gates (0 for adjacent gates and for [g1 = g2]); when the
    distance exceeds [cutoff] or no path exists, the result is the
    forced value [cutoff]. *)

val separations_from : undirected -> cutoff:int -> int -> int array
(** Single-source BFS truncated at [cutoff]; entry [g] is the
    separation from the source to [g] (sources at 0), [cutoff] where
    unreachable within the horizon. *)

val module_separation : undirected -> cutoff:int -> int array -> int
(** [module_separation u ~cutoff gates] is [S(M)]: the sum of
    pairwise separations over all unordered gate pairs of the module. *)

(** {1 Reachability and components} *)

val reachable_from : Circuit.t -> int array -> bool array
(** Forward reachability over node ids from a seed set. *)

val connected_components : undirected -> int array
(** Component label per gate index (labels are dense from 0). *)

val transitive_fanin_count : Circuit.t -> int -> int
(** Number of nodes (inputs and gates) in the transitive fanin cone of
    a node id, the node itself excluded. *)
