(** Graph algorithms over circuits.

    Everything here treats the circuit either as the directed DAG of
    its nodes, or — for the separation metric of the paper — as the
    corresponding undirected graph. *)

(** {1 Levelization} *)

val node_depths : Circuit.t -> int array
(** [node_depths c].(id) is the longest distance (in gates) from any
    primary input to node [id]; inputs have depth 0 and a gate's depth
    is [1 + max] over its fanins. *)

val gate_depths : Circuit.t -> int array
(** Depths indexed by gate index. *)

val depth : Circuit.t -> int
(** Maximum gate depth (the circuit's logic depth). *)

val gates_by_depth : Circuit.t -> int array array
(** [gates_by_depth c].(d) lists the gate indices at depth [d+1]
    (slot 0 holds depth-1 gates; inputs are not listed). *)

(** {1 Undirected separation (paper §3.3)} *)

type undirected
(** Adjacency of the undirected version of the circuit graph over
    {e gate indices} (primary inputs are excluded: the paper's
    separation measures routing between gates of a module).  Stored in
    CSR form — two flat int arrays — so a million-gate graph costs two
    arrays, not a million boxed neighbour lists. *)

val undirected_of_circuit : Circuit.t -> undirected

val num_gates : undirected -> int

val neighbours : undirected -> int -> int array
(** A fresh array of the gate's neighbours, sorted ascending, no
    duplicates. *)

val iter_neighbours : undirected -> int -> (int -> unit) -> unit
(** Allocation-free iteration over a gate's undirected neighbours. *)

val exists_neighbour : undirected -> int -> (int -> bool) -> bool

(** {2 Reusable truncated BFS}

    Separation queries from a source are truncated BFS traversals.
    The workspace below makes each traversal O(visited): visited marks
    are epoch stamps (starting a traversal clears nothing) and the
    discovery queue doubles as the visited list, which is what lets
    partition moves touch only the BFS horizon instead of every gate.
    One workspace per owner — never share across concurrent users. *)

type bfs
(** A reusable single-source BFS workspace sized for one graph. *)

val make_bfs : undirected -> bfs

val bfs_from : undirected -> bfs -> cutoff:int -> int -> unit
(** Run a truncated BFS from a source gate, overwriting the
    workspace's previous traversal.  Nodes are expanded only while
    their separation from the source is below [cutoff].  Raises
    [Invalid_argument] if the workspace was sized for a different
    graph. *)

val bfs_visited_count : bfs -> int
val bfs_visited : bfs -> int -> int
(** The gates discovered by the last {!bfs_from}, in discovery order
    ([bfs_visited b 0] is the source). *)

val bfs_separation : bfs -> cutoff:int -> int -> int
(** Separation from the last traversal's source to a gate: the
    paper's [S(g_i,g_j)] — intermediate-node count on a shortest
    undirected path, 0 for the source itself and for adjacent gates,
    the forced value [cutoff] beyond the horizon.  Every gate {e not}
    in the visited set is at [cutoff]. *)

val separations_from : undirected -> cutoff:int -> int -> int array
(** Single-source BFS truncated at [cutoff]; entry [g] is the
    separation from the source to [g] (sources at 0), [cutoff] where
    unreachable within the horizon.  Allocates a fresh workspace and a
    dense array — use the {!bfs} API on hot paths. *)

val module_separation : undirected -> cutoff:int -> int array -> int
(** [module_separation u ~cutoff gates] is [S(M)]: the sum of
    pairwise separations over all unordered gate pairs of the module. *)

(** {1 Reachability and components} *)

val reachable_from : Circuit.t -> int array -> bool array
(** Forward reachability over node ids from a seed set. *)

val connected_components : undirected -> int array
(** Component label per gate index (labels are dense from 0). *)

val transitive_fanin_count : Circuit.t -> int -> int
(** Number of nodes (inputs and gates) in the transitive fanin cone of
    a node id, the node itself excluded. *)
