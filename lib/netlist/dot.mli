(** Graphviz (DOT) export of circuits, optionally colored by a
    partition — handy for inspecting what the optimizer produced. *)

val of_circuit :
  ?module_of_gate:(int -> int) -> ?title:string -> Circuit.t -> string
(** [of_circuit c] renders the circuit as a [digraph]: primary inputs
    as plain boxes, gates as record nodes labelled [name : KIND],
    primary outputs double-circled.  With [module_of_gate], gates are
    clustered into one [subgraph cluster_k] per module and given a
    module-indexed fill colour. *)

val write_file :
  ?module_of_gate:(int -> int) ->
  ?title:string ->
  string ->
  Circuit.t ->
  (unit, Iddq_util.Io_error.t) result
(** Atomic write (scratch file + rename); an unwritable path is an
    [Error], never an exception. *)
