(** Reader and writer for the ISCAS85 [.bench] netlist format.

    The format is line-oriented:
    {v
    # comment
    INPUT(G1)
    OUTPUT(G22)
    G10 = NAND(G1, G3)
    v}
    Blank lines and [#] comments are ignored; keywords and gate
    mnemonics are case-insensitive; net names are case-sensitive.

    {b Error contract.}  Parsing never raises on malformed input:
    every syntactic or structural problem (and, for {!parse_file},
    every [Sys_error]) comes back as [Error] carrying the offending
    line and, when reading a file, the path. *)

val parse_string :
  ?name:string -> string -> (Circuit.t, Iddq_util.Io_error.t) result
(** Parse a full [.bench] document.  Errors carry a line number. *)

val parse_file : string -> (Circuit.t, Iddq_util.Io_error.t) result
(** [parse_file path] reads and parses; the circuit is named after the
    file's basename without extension.  A missing or unreadable file
    is an [Error] with the path, never an exception, and the
    descriptor is closed on every path out. *)

val to_string : Circuit.t -> string
(** Render back to [.bench].  [parse_string (to_string c)] yields a
    circuit isomorphic to [c] (same names, kinds, connectivity,
    outputs). *)

val write_file : string -> Circuit.t -> (unit, Iddq_util.Io_error.t) result
(** Atomic write (scratch file + rename): a crash mid-write leaves any
    previous file at this path intact. *)
