(** Reader and writer for the ISCAS85 [.bench] netlist format.

    The format is line-oriented:
    {v
    # comment
    INPUT(G1)
    OUTPUT(G22)
    G10 = NAND(G1, G3)
    v}
    Blank lines and [#] comments are ignored; keywords and gate
    mnemonics are case-insensitive; net names are case-sensitive. *)

val parse_string : ?name:string -> string -> (Circuit.t, string) result
(** Parse a full [.bench] document.  Errors carry a line number. *)

val parse_file : string -> (Circuit.t, string) result
(** [parse_file path] reads and parses; the circuit is named after the
    file's basename without extension. *)

val to_string : Circuit.t -> string
(** Render back to [.bench].  [parse_string (to_string c)] yields a
    circuit isomorphic to [c] (same names, kinds, connectivity,
    outputs). *)

val write_file : string -> Circuit.t -> unit
