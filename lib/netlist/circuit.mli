(** Immutable gate-level circuit graph.

    A circuit is a DAG of [n] nodes.  Node ids [0 .. num_inputs-1] are
    the primary inputs; node ids [num_inputs .. n-1] are gates, stored
    in topological order (every fanin of a node has a smaller id).
    Gates additionally carry a dense {e gate index} in
    [0 .. num_gates-1]; the partitioning machinery works on gate
    indices.  Use {!Builder} to construct circuits.

    Internally the graph is stored in CSR (structure-of-arrays) form:
    gate kinds as one byte per node, fanins and fanouts as flat
    offsets+targets [int] arrays.  The accessors below are views over
    that layout; simulation kernels that cannot afford per-node
    allocation read the flat arrays directly through {!Csr} and
    {!kind_code}. *)

type node = Input | Gate of Gate.kind * int array
(** A node is a primary input or a gate with its fanin node ids.
    A construction/inspection view — the stored form is CSR. *)

type t

(** {1 Accessors} *)

val name : t -> string
val num_nodes : t -> int
val num_inputs : t -> int
val num_gates : t -> int
val num_outputs : t -> int

val node : t -> int -> node
(** [node c id] for [0 <= id < num_nodes c]. *)

val node_name : t -> int -> string
val node_id_of_name : t -> string -> int option

val outputs : t -> int array
(** Node ids of the primary outputs (a gate or even an input may be an
    output).  Fresh copy. *)

val inputs : t -> int array
(** Node ids [0 .. num_inputs-1].  Fresh copy. *)

val fanins : t -> int -> int array
(** Fanin node ids of a node (empty for inputs).  Fresh copy. *)

val fanouts : t -> int -> int array
(** Fanout node ids of a node.  Fresh copy. *)

val fanout_count : t -> int -> int
val fanin_count : t -> int -> int

val iter_fanins : t -> int -> (int -> unit) -> unit
(** Allocation-free iteration over a node's fanin node ids. *)

val iter_fanouts : t -> int -> (int -> unit) -> unit
(** Allocation-free iteration over a node's fanout node ids. *)

val is_gate : t -> int -> bool
val is_input : t -> int -> bool
val is_output : t -> int -> bool

val gate_kind : t -> int -> Gate.kind
(** Raises [Invalid_argument] if the node is a primary input. *)

(** {1 Gate indexing}

    Gate index [g] (dense, [0 .. num_gates-1]) corresponds to node id
    [num_inputs + g]; the two functions below convert. *)

val node_of_gate : t -> int -> int
val gate_of_node : t -> int -> int

val gate_fanin_gates : t -> int -> int array
(** [gate_fanin_gates c g] — fanins of gate index [g] that are
    themselves gates, as gate indices.  Fresh copy. *)

val gate_fanout_gates : t -> int -> int array
(** Fanouts of gate index [g] that are gates, as gate indices. *)

(** {1 Iteration} *)

val iter_gates : t -> (int -> Gate.kind -> int array -> unit) -> unit
(** [iter_gates c f] calls [f gate_index kind fanin_node_ids] in
    topological order.  The fanin array must not be mutated. *)

val fold_gates : t -> init:'a -> f:('a -> int -> Gate.kind -> 'a) -> 'a

(** {1 Flat CSR access (simulation kernels)}

    The borrowed arrays are the circuit's own storage: callers MUST
    NOT mutate them (the type system cannot enforce this without
    copying, which is exactly what these accessors exist to avoid).
    Layout: node [id]'s fanins are
    [fanin_targets.(fanin_offsets.(id)) ..
     fanin_targets.(fanin_offsets.(id+1) - 1)], and symmetrically for
    fanouts; fanout lists are ascending by sink id. *)

val input_code : int
(** The {!kind_code} of a primary input ([255], outside [Gate.code]'s
    [0..7] range). *)

val kind_code : t -> int -> int
(** [Gate.code] of the node's kind, or {!input_code} for inputs.
    Branch-free byte read — the kernels' dispatch key. *)

module Csr : sig
  val kinds : t -> Bytes.t
  (** One {!kind_code} byte per node.  Borrowed — do not mutate. *)

  val fanin_offsets : t -> int array
  (** Length [num_nodes + 1].  Borrowed — do not mutate. *)

  val fanin_targets : t -> int array
  (** Borrowed — do not mutate. *)

  val fanout_offsets : t -> int array
  (** Length [num_nodes + 1].  Borrowed — do not mutate. *)

  val fanout_targets : t -> int array
  (** Borrowed — do not mutate. *)
end

(** {1 Statistics and validation} *)

type stats = {
  s_inputs : int;
  s_outputs : int;
  s_gates : int;
  s_depth : int; (* max gate depth, inputs at depth 0 *)
  s_kind_counts : (Gate.kind * int) list;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val validate : t -> (unit, string) result
(** Re-checks the structural invariants (topological fanins, arities,
    fanout consistency, output ids in range).  Builders establish
    them; this is used by tests and after deserialization. *)

(** {1 Construction (internal)}

    [unsafe_make] is the raw constructor used by {!Builder} and
    {!Bench_io}; it trusts its arguments.  Library users should go
    through {!Builder.freeze}. *)

val unsafe_make :
  name:string ->
  nodes:node array ->
  node_names:string array ->
  num_inputs:int ->
  outputs:int array ->
  t

val unsafe_make_csr :
  name:string ->
  num_inputs:int ->
  kinds:Bytes.t ->
  fanin_offsets:int array ->
  fanin_targets:int array ->
  node_names:string array ->
  outputs:int array ->
  t
(** Raw CSR constructor for generators that already hold the flat
    form: one kind-code byte per node ({!input_code} for inputs),
    fanin offsets of length [n + 1].  Takes ownership of every array
    (no copies); trusts topological order and arities like
    {!unsafe_make}.  Fanouts are derived by counting sort. *)
