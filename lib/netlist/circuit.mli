(** Immutable gate-level circuit graph.

    A circuit is a DAG of [n] nodes.  Node ids [0 .. num_inputs-1] are
    the primary inputs; node ids [num_inputs .. n-1] are gates, stored
    in topological order (every fanin of a node has a smaller id).
    Gates additionally carry a dense {e gate index} in
    [0 .. num_gates-1]; the partitioning machinery works on gate
    indices.  Use {!Builder} to construct circuits. *)

type node = Input | Gate of Gate.kind * int array
(** A node is a primary input or a gate with its fanin node ids. *)

type t

(** {1 Accessors} *)

val name : t -> string
val num_nodes : t -> int
val num_inputs : t -> int
val num_gates : t -> int
val num_outputs : t -> int

val node : t -> int -> node
(** [node c id] for [0 <= id < num_nodes c]. *)

val node_name : t -> int -> string
val node_id_of_name : t -> string -> int option

val outputs : t -> int array
(** Node ids of the primary outputs (a gate or even an input may be an
    output).  Fresh copy. *)

val inputs : t -> int array
(** Node ids [0 .. num_inputs-1].  Fresh copy. *)

val fanins : t -> int -> int array
(** Fanin node ids of a node (empty for inputs).  Fresh copy. *)

val fanouts : t -> int -> int array
(** Fanout node ids of a node.  Fresh copy. *)

val fanout_count : t -> int -> int
val fanin_count : t -> int -> int

val is_gate : t -> int -> bool
val is_input : t -> int -> bool
val is_output : t -> int -> bool

val gate_kind : t -> int -> Gate.kind
(** Raises [Invalid_argument] if the node is a primary input. *)

(** {1 Gate indexing}

    Gate index [g] (dense, [0 .. num_gates-1]) corresponds to node id
    [num_inputs + g]; the two functions below convert. *)

val node_of_gate : t -> int -> int
val gate_of_node : t -> int -> int

val gate_fanin_gates : t -> int -> int array
(** [gate_fanin_gates c g] — fanins of gate index [g] that are
    themselves gates, as gate indices.  Fresh copy. *)

val gate_fanout_gates : t -> int -> int array
(** Fanouts of gate index [g] that are gates, as gate indices. *)

(** {1 Iteration} *)

val iter_gates : t -> (int -> Gate.kind -> int array -> unit) -> unit
(** [iter_gates c f] calls [f gate_index kind fanin_node_ids] in
    topological order.  The fanin array must not be mutated. *)

val fold_gates : t -> init:'a -> f:('a -> int -> Gate.kind -> 'a) -> 'a

(** {1 Statistics and validation} *)

type stats = {
  s_inputs : int;
  s_outputs : int;
  s_gates : int;
  s_depth : int; (* max gate depth, inputs at depth 0 *)
  s_kind_counts : (Gate.kind * int) list;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val validate : t -> (unit, string) result
(** Re-checks the structural invariants (topological fanins, arities,
    fanout consistency, output ids in range).  Builders establish
    them; this is used by tests and after deserialization. *)

(** {1 Construction (internal)}

    [unsafe_make] is the raw constructor used by {!Builder} and
    {!Bench_io}; it trusts its arguments.  Library users should go
    through {!Builder.freeze}. *)

val unsafe_make :
  name:string ->
  nodes:node array ->
  node_names:string array ->
  num_inputs:int ->
  outputs:int array ->
  t
