(** Synthetic circuit generators.

    The Table-1 reproduction runs on structure-matched synthetic
    stand-ins for the ISCAS85 netlists (see DESIGN.md §2); all
    generators are deterministic given the RNG state. *)

type kind_mix = (Gate.kind * float) list
(** Weighted gate-kind distribution; weights need not sum to 1. *)

val iscas_kind_mix : kind_mix
(** NAND/NOR-heavy mix resembling the ISCAS85 profile. *)

val layered_dag :
  rng:Iddq_util.Rng.t ->
  name:string ->
  num_inputs:int ->
  num_outputs:int ->
  num_gates:int ->
  depth:int ->
  ?kind_mix:kind_mix ->
  ?max_fanin:int ->
  unit ->
  Circuit.t
(** Random layered DAG with exactly [num_gates] gates and logic depth
    exactly [depth] (requires [num_gates >= depth >= 1] and
    [num_inputs >= 1]).  Every gate at layer [d] has at least one
    fanin at layer [d-1] (layer 0 = primary inputs), the remaining
    fanins are drawn from strictly earlier layers with a locality
    bias.  Outputs are drawn from the fanout-free gates first. *)

val cell_array :
  rows:int -> cols:int -> Circuit.t
(** The 2-D cell array of the paper's Figure 2.  Cell [(r,c)] is a
    2-input gate whose kind cycles with [r mod 3] (the three cell
    types C1, C2, C3); its fanins are cells [(r, c-1)] and
    [(r+1 mod rows, c-1)] (column 0 reads the per-row primary
    inputs), so every cell of column [c] switches at depth [c+1].
    A row-shaped module therefore never switches two cells in the
    same time slot, while a column-shaped module switches all [rows]
    cells simultaneously — the shape effect of Figure 2. *)

val cell_array_gate : rows:int -> cols:int -> r:int -> c:int -> int
(** Gate index of cell [(r,c)] in [cell_array]. *)

val chain : length:int -> ?kind:Gate.kind -> unit -> Circuit.t
(** A single chain of [length] one-input gates ([Not] by default):
    worst-case depth, minimal parallelism. *)

val balanced_tree : depth:int -> ?kind:Gate.kind -> unit -> Circuit.t
(** Complete binary reduction tree of 2-input gates ([Nand] by
    default) with [2^depth] leaves/primary inputs. *)

val multiplier_array : n:int -> Circuit.t
(** C6288-style [n * n] array multiplier: an AND partial-product
    matrix reduced by ripple-carry rows of half/full adders.  Deep
    carry chains, heavy reconvergence. *)
