module Rng = Iddq_util.Rng

type kind_mix = (Gate.kind * float) list

let iscas_kind_mix =
  [
    (Gate.Nand, 0.30);
    (Gate.Nor, 0.18);
    (Gate.And, 0.14);
    (Gate.Or, 0.10);
    (Gate.Not, 0.16);
    (Gate.Buff, 0.04);
    (Gate.Xor, 0.05);
    (Gate.Xnor, 0.03);
  ]

let pick_kind rng mix =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix in
  let x = Rng.float rng total in
  let rec walk acc = function
    | [] -> invalid_arg "Generator.pick_kind: empty mix"
    | [ (k, _) ] -> k
    | (k, w) :: rest -> if x < acc +. w then k else walk (acc +. w) rest
  in
  walk 0.0 mix

(* Layer sizes: every layer gets one gate, the surplus is spread with a
   bias toward the early layers (circuits tend to be wide near the
   inputs and narrow toward the outputs). *)
let layer_sizes rng ~num_gates ~depth =
  let sizes = Array.make depth 1 in
  let surplus = num_gates - depth in
  for _ = 1 to surplus do
    (* triangular bias: min of two uniforms leans early *)
    let a = Rng.int rng depth and b = Rng.int rng depth in
    let layer = Stdlib.min a b in
    sizes.(layer) <- sizes.(layer) + 1
  done;
  sizes

(* Built straight in CSR over integer node ids — no Builder, no name
   hashtables on the construction path, and O(1) fresh-gate tracking —
   so a million-gate DAG generates in linear time.  Names are still
   materialized ("I1..", "G1.." in creation order) for the Circuit
   view. *)
let layered_dag ~rng ~name ~num_inputs ~num_outputs ~num_gates ~depth
    ?(kind_mix = iscas_kind_mix) ?(max_fanin = 4) () =
  if num_inputs < 1 then invalid_arg "Generator.layered_dag: no inputs";
  if depth < 1 || num_gates < depth then
    invalid_arg "Generator.layered_dag: need num_gates >= depth >= 1";
  if num_outputs < 1 then invalid_arg "Generator.layered_dag: no outputs";
  let n = num_inputs + num_gates in
  let kinds = Bytes.make n (Char.chr Circuit.input_code) in
  let node_names =
    Array.init n (fun id ->
        if id < num_inputs then Printf.sprintf "I%d" (id + 1)
        else Printf.sprintf "G%d" (id - num_inputs + 1))
  in
  let fanin_offsets = Array.make (n + 1) 0 in
  (* arity is capped at 4 below, so this bound is exact *)
  let fanin_targets = Array.make (4 * num_gates) 0 in
  let tpos = ref 0 in
  let sizes = layer_sizes rng ~num_gates ~depth in
  (* layers.(0) = input ids; layers.(d) = node ids of gates at depth d *)
  let layers = Array.make (depth + 1) [||] in
  layers.(0) <- Array.init num_inputs Fun.id;
  (* The still-unread nodes of each finished layer, as a compact array
     with a position index per node — membership test, uniform pick
     and removal are all O(1) (the old per-pick list filter made
     generation quadratic in the layer width). *)
  let fresh = Array.make (depth + 1) [||] in
  let fresh_count = Array.make (depth + 1) 0 in
  let fresh_pos = Array.make n (-1) in
  let node_layer = Array.make n 0 in
  let init_fresh l ids =
    fresh.(l) <- Array.copy ids;
    fresh_count.(l) <- Array.length ids;
    Array.iteri
      (fun i id ->
        fresh_pos.(id) <- i;
        node_layer.(id) <- l)
      ids
  in
  init_fresh 0 layers.(0);
  let has_fanout = Array.make n false in
  let bump id =
    has_fanout.(id) <- true;
    if fresh_pos.(id) >= 0 then begin
      let l = node_layer.(id) in
      let i = fresh_pos.(id) in
      let last = fresh_count.(l) - 1 in
      let moved = fresh.(l).(last) in
      fresh.(l).(i) <- moved;
      fresh_pos.(moved) <- i;
      fresh_count.(l) <- last;
      fresh_pos.(id) <- -1
    end
  in
  (* geometric locality bias: fanins come mostly from nearby layers *)
  let pick_source_layer d =
    let rec back l = if l <= 0 then 0 else if Rng.float rng 1.0 < 0.55 then l else back (l - 1) in
    back (d - 1)
  in
  let counter = ref num_inputs in
  for d = 1 to depth do
    let here =
      Array.init sizes.(d - 1) (fun _ ->
          let id = !counter in
          incr counter;
          let kind = pick_kind rng kind_mix in
          Bytes.set kinds id (Char.chr (Gate.code kind));
          let arity =
            match kind with
            | Gate.Not | Gate.Buff -> 1
            | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
              (* mostly 2-input, like the real benchmarks; wide gates
                 make circuits random-pattern-resistant *)
              let roll = Rng.float rng 1.0 in
              if roll < 0.80 || max_fanin <= 2 then 2
              else if roll < 0.95 || max_fanin <= 3 then 3
              else Stdlib.min max_fanin 4
          in
          let first = Rng.choose rng layers.(d - 1) in
          let rest = ref [] in
          for _ = 2 to arity do
            let source_layer = pick_source_layer d in
            (* prefer a still-unread gate of the source layer: real
               netlists have no dangling logic, so soak up would-be
               sinks as fanins (inputs and primary outputs aside) *)
            let candidate =
              if
                fresh_count.(source_layer) > 0
                && source_layer > 0
                && Rng.float rng 1.0 < 0.8
              then fresh.(source_layer).(Rng.int rng fresh_count.(source_layer))
              else Rng.choose rng layers.(source_layer)
            in
            (* a few attempts at distinct fanins; duplicates are legal *)
            let candidate =
              if candidate = first || List.mem candidate !rest then
                Rng.choose rng layers.(pick_source_layer d)
              else candidate
            in
            rest := candidate :: !rest
          done;
          fanin_offsets.(id) <- !tpos;
          let push src =
            bump src;
            fanin_targets.(!tpos) <- src;
            incr tpos
          in
          push first;
          List.iter push (List.rev !rest);
          id)
    in
    layers.(d) <- here;
    init_fresh d here
  done;
  fanin_offsets.(n) <- !tpos;
  (* Outputs: fanout-free gates first (deep first), then random gates. *)
  let chosen = Array.make n false in
  let n_chosen = ref 0 in
  let out_rev = ref [] in
  let add_output id =
    if !n_chosen < num_outputs && not chosen.(id) then begin
      chosen.(id) <- true;
      incr n_chosen;
      out_rev := id :: !out_rev
    end
  in
  for id = n - 1 downto num_inputs do
    if not has_fanout.(id) then add_output id
  done;
  (* top up from the deepest layers *)
  let rec top_up d =
    if !n_chosen < num_outputs && d >= 1 then begin
      Array.iter add_output layers.(d);
      top_up (d - 1)
    end
  in
  top_up depth;
  Circuit.unsafe_make_csr ~name ~num_inputs ~kinds ~fanin_offsets
    ~fanin_targets:(Array.sub fanin_targets 0 !tpos)
    ~node_names
    ~outputs:(Array.of_list (List.rev !out_rev))

let cell_kind_of_row r =
  match r mod 3 with
  | 0 -> Gate.Nand
  | 1 -> Gate.Nor
  | 2 -> Gate.And
  | _ -> assert false

let cell_array ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Generator.cell_array: empty array";
  let b = Builder.create ~name:(Printf.sprintf "array%dx%d" rows cols) () in
  let input_name r = Printf.sprintf "IR%d" r in
  for r = 0 to rows - 1 do
    Builder.add_input b (input_name r)
  done;
  let cell_name r c = Printf.sprintf "X_%d_%d" r c in
  for c = 0 to cols - 1 do
    for r = 0 to rows - 1 do
      let prev r' = if c = 0 then input_name r' else cell_name r' (c - 1) in
      let fanins = [ prev r; prev ((r + 1) mod rows) ] in
      let kind = cell_kind_of_row r in
      (* two-input cells; for rows = 1 both fanins coincide, allowed *)
      Builder.add_gate b (cell_name r c) kind fanins
    done
  done;
  for r = 0 to rows - 1 do
    Builder.add_output b (cell_name r (cols - 1))
  done;
  Builder.freeze_exn b

let cell_array_gate ~rows ~cols ~r ~c =
  if r < 0 || r >= rows || c < 0 || c >= cols then
    invalid_arg "Generator.cell_array_gate: out of range";
  (c * rows) + r

let chain ~length ?(kind = Gate.Not) () =
  if length < 1 then invalid_arg "Generator.chain: empty";
  if not (Gate.arity_ok kind 1) then
    invalid_arg "Generator.chain: kind must be one-input";
  let b = Builder.create ~name:(Printf.sprintf "chain%d" length) () in
  Builder.add_input b "I1";
  let prev = ref "I1" in
  for i = 1 to length do
    let nm = Printf.sprintf "G%d" i in
    Builder.add_gate b nm kind [ !prev ];
    prev := nm
  done;
  Builder.add_output b !prev;
  Builder.freeze_exn b

let balanced_tree ~depth ?(kind = Gate.Nand) () =
  if depth < 1 then invalid_arg "Generator.balanced_tree: depth < 1";
  if not (Gate.arity_ok kind 2) then
    invalid_arg "Generator.balanced_tree: kind must be two-input";
  let b = Builder.create ~name:(Printf.sprintf "tree%d" depth) () in
  let leaves = 1 lsl depth in
  let level0 =
    Array.init leaves (fun i ->
        let nm = Printf.sprintf "I%d" (i + 1) in
        Builder.add_input b nm;
        nm)
  in
  let counter = ref 0 in
  let rec reduce level names =
    if Array.length names = 1 then names.(0)
    else begin
      let half = Array.length names / 2 in
      let next =
        Array.init half (fun i ->
            incr counter;
            let nm = Printf.sprintf "G%d" !counter in
            Builder.add_gate b nm kind [ names.(2 * i); names.((2 * i) + 1) ];
            nm)
      in
      reduce (level + 1) next
    end
  in
  let root = reduce 0 level0 in
  Builder.add_output b root;
  Builder.freeze_exn b

(* School-book array multiplier.  Partial products pp(i,j) = a_i AND
   b_j; row i (i >= 1) is added to the running sum with a ripple
   carry-propagate row, C6288's structure in spirit. *)
let multiplier_array ~n =
  if n < 2 then invalid_arg "Generator.multiplier_array: n < 2";
  let b = Builder.create ~name:(Printf.sprintf "mult%dx%d" n n) () in
  let a i = Printf.sprintf "A%d" i and bb j = Printf.sprintf "B%d" j in
  for i = 0 to n - 1 do
    Builder.add_input b (a i)
  done;
  for j = 0 to n - 1 do
    Builder.add_input b (bb j)
  done;
  let fresh =
    let counter = ref 0 in
    fun prefix ->
      incr counter;
      Printf.sprintf "%s%d" prefix !counter
  in
  let pp i j =
    let nm = Printf.sprintf "PP_%d_%d" i j in
    Builder.add_gate b nm Gate.And [ a i; bb j ];
    nm
  in
  let half_adder x y =
    let s = fresh "S" and c = fresh "C" in
    Builder.add_gate b s Gate.Xor [ x; y ];
    Builder.add_gate b c Gate.And [ x; y ];
    (s, c)
  in
  let full_adder x y z =
    let s1 = fresh "S" in
    Builder.add_gate b s1 Gate.Xor [ x; y ];
    let s = fresh "S" in
    Builder.add_gate b s Gate.Xor [ s1; z ];
    let c1 = fresh "C" and c2 = fresh "C" and c = fresh "C" in
    Builder.add_gate b c1 Gate.And [ x; y ];
    Builder.add_gate b c2 Gate.And [ s1; z ];
    Builder.add_gate b c Gate.Or [ c1; c2 ];
    (s, c)
  in
  (* Ripple addition of two little-endian bit vectors of wire names;
     the result may be one bit wider than the widest operand. *)
  let add_vectors xs ys =
    let out = ref [] and carry = ref None in
    let width = Stdlib.max (Array.length xs) (Array.length ys) in
    for j = 0 to width - 1 do
      let bit arr = if j < Array.length arr then Some arr.(j) else None in
      let s, c =
        match bit xs, bit ys, !carry with
        | Some x, Some y, Some cy ->
          let s, c = full_adder x y cy in
          (s, Some c)
        | Some x, Some y, None ->
          let s, c = half_adder x y in
          (s, Some c)
        | Some x, None, Some cy | None, Some x, Some cy ->
          let s, c = half_adder x cy in
          (s, Some c)
        | Some x, None, None | None, Some x, None -> (x, None)
        | None, None, (Some _ | None) -> assert false
      in
      out := s :: !out;
      carry := c
    done;
    let bits = match !carry with None -> !out | Some cy -> cy :: !out in
    Array.of_list (List.rev bits)
  in
  (* Shift-and-add over the partial-product rows.  After row i the low
     bit of the accumulator is the final product bit i. *)
  let final_bits = ref [] in
  let acc = ref (Array.init n (fun j -> pp 0 j)) in
  for i = 1 to n - 1 do
    let row = Array.init n (fun j -> pp i j) in
    final_bits := !acc.(0) :: !final_bits;
    let high = Array.sub !acc 1 (Array.length !acc - 1) in
    acc := add_vectors high row
  done;
  Array.iter (fun s -> final_bits := s :: !final_bits) !acc;
  List.iter (Builder.add_output b) (List.rev !final_bits);
  Builder.freeze_exn b
