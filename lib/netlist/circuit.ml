type node = Input | Gate of Gate.kind * int array

(* CSR (structure-of-arrays) adjacency: one byte of gate-kind code per
   node (inputs hold [input_code]), fanins and fanouts as flat target
   arrays indexed by an offsets array of length [n + 1].  Everything a
   hot kernel touches is a flat unboxed array; the [node] variant above
   survives only as a construction/inspection view. *)
type t = {
  name : string;
  num_inputs : int;
  kinds : Bytes.t; (* per node: Gate.code, or input_code for inputs *)
  fanin_offsets : int array; (* length n+1, non-decreasing *)
  fanin_targets : int array; (* concatenated fanin node ids *)
  fanout_offsets : int array; (* length n+1 *)
  fanout_targets : int array; (* concatenated fanout node ids, ascending *)
  node_names : string array;
  outputs : int array;
  output_set : bool array;
  name_index : (string, int) Hashtbl.t Lazy.t;
}

let input_code = 255

(* Counting sort of the reversed edges.  Iterating sinks in id order
   keeps each node's fanout list ascending (and preserves duplicate
   edges), exactly like the old per-node append order. *)
let build_fanouts_csr n fanin_offsets fanin_targets =
  let ne = Array.length fanin_targets in
  let fanout_offsets = Array.make (n + 1) 0 in
  for k = 0 to ne - 1 do
    let src = fanin_targets.(k) in
    fanout_offsets.(src + 1) <- fanout_offsets.(src + 1) + 1
  done;
  for id = 0 to n - 1 do
    fanout_offsets.(id + 1) <- fanout_offsets.(id + 1) + fanout_offsets.(id)
  done;
  let fill = Array.sub fanout_offsets 0 n in
  let fanout_targets = Array.make ne 0 in
  for id = 0 to n - 1 do
    for k = fanin_offsets.(id) to fanin_offsets.(id + 1) - 1 do
      let src = fanin_targets.(k) in
      fanout_targets.(fill.(src)) <- id;
      fill.(src) <- fill.(src) + 1
    done
  done;
  (fanout_offsets, fanout_targets)

let lazy_name_index node_names =
  lazy
    (let index = Hashtbl.create (2 * Array.length node_names) in
     Array.iteri (fun id nm -> Hashtbl.replace index nm id) node_names;
     index)

let unsafe_make_csr ~name ~num_inputs ~kinds ~fanin_offsets ~fanin_targets
    ~node_names ~outputs =
  let n = Bytes.length kinds in
  let output_set = Array.make n false in
  Array.iter (fun id -> output_set.(id) <- true) outputs;
  let fanout_offsets, fanout_targets =
    build_fanouts_csr n fanin_offsets fanin_targets
  in
  {
    name;
    num_inputs;
    kinds;
    fanin_offsets;
    fanin_targets;
    fanout_offsets;
    fanout_targets;
    node_names;
    outputs;
    output_set;
    name_index = lazy_name_index node_names;
  }

let unsafe_make ~name ~nodes ~node_names ~num_inputs ~outputs =
  let n = Array.length nodes in
  let kinds = Bytes.make n (Char.chr input_code) in
  let total_fanins =
    Array.fold_left
      (fun acc -> function Input -> acc | Gate (_, fi) -> acc + Array.length fi)
      0 nodes
  in
  let fanin_offsets = Array.make (n + 1) 0 in
  let fanin_targets = Array.make total_fanins 0 in
  let pos = ref 0 in
  Array.iteri
    (fun id node ->
      fanin_offsets.(id) <- !pos;
      match node with
      | Input -> ()
      | Gate (kind, fanins) ->
        Bytes.set kinds id (Char.chr (Gate.code kind));
        Array.iter
          (fun src ->
            fanin_targets.(!pos) <- src;
            incr pos)
          fanins)
    nodes;
  fanin_offsets.(n) <- !pos;
  unsafe_make_csr ~name ~num_inputs ~kinds ~fanin_offsets ~fanin_targets
    ~node_names:(Array.copy node_names) ~outputs:(Array.copy outputs)

let name c = c.name
let num_nodes c = Bytes.length c.kinds
let num_inputs c = c.num_inputs
let num_gates c = Bytes.length c.kinds - c.num_inputs
let num_outputs c = Array.length c.outputs
let kind_code c id = Char.code (Bytes.unsafe_get c.kinds id)

let node c id =
  let code = kind_code c id in
  if code = input_code then Input
  else
    let s = c.fanin_offsets.(id) in
    Gate (Gate.of_code code, Array.sub c.fanin_targets s (c.fanin_offsets.(id + 1) - s))

let node_name c id = c.node_names.(id)
let node_id_of_name c nm = Hashtbl.find_opt (Lazy.force c.name_index) nm
let outputs c = Array.copy c.outputs
let inputs c = Array.init c.num_inputs Fun.id

let fanins c id =
  let s = c.fanin_offsets.(id) in
  Array.sub c.fanin_targets s (c.fanin_offsets.(id + 1) - s)

let fanouts c id =
  let s = c.fanout_offsets.(id) in
  Array.sub c.fanout_targets s (c.fanout_offsets.(id + 1) - s)

let fanout_count c id = c.fanout_offsets.(id + 1) - c.fanout_offsets.(id)
let fanin_count c id = c.fanin_offsets.(id + 1) - c.fanin_offsets.(id)

let iter_fanins c id f =
  for k = c.fanin_offsets.(id) to c.fanin_offsets.(id + 1) - 1 do
    f (Array.unsafe_get c.fanin_targets k)
  done

let iter_fanouts c id f =
  for k = c.fanout_offsets.(id) to c.fanout_offsets.(id + 1) - 1 do
    f (Array.unsafe_get c.fanout_targets k)
  done

let is_gate c id = id >= c.num_inputs
let is_input c id = id < c.num_inputs
let is_output c id = c.output_set.(id)

let gate_kind c id =
  let code = kind_code c id in
  if code = input_code then
    invalid_arg "Circuit.gate_kind: node is a primary input"
  else Gate.of_code code

let node_of_gate c g = c.num_inputs + g
let gate_of_node c id = id - c.num_inputs

let gate_fanin_gates c g =
  let id = node_of_gate c g in
  let out = ref [] in
  for k = c.fanin_offsets.(id + 1) - 1 downto c.fanin_offsets.(id) do
    let src = c.fanin_targets.(k) in
    if is_gate c src then out := gate_of_node c src :: !out
  done;
  Array.of_list !out

let gate_fanout_gates c g =
  let id = node_of_gate c g in
  let out = ref [] in
  for k = c.fanout_offsets.(id + 1) - 1 downto c.fanout_offsets.(id) do
    let dst = c.fanout_targets.(k) in
    if is_gate c dst then out := gate_of_node c dst :: !out
  done;
  Array.of_list !out

let iter_gates c f =
  for id = c.num_inputs to num_nodes c - 1 do
    let code = kind_code c id in
    assert (code <> input_code);
    f (gate_of_node c id) (Gate.of_code code) (fanins c id)
  done

let fold_gates c ~init ~f =
  let acc = ref init in
  iter_gates c (fun g kind _ -> acc := f !acc g kind);
  !acc

module Csr = struct
  let kinds c = c.kinds
  let fanin_offsets c = c.fanin_offsets
  let fanin_targets c = c.fanin_targets
  let fanout_offsets c = c.fanout_offsets
  let fanout_targets c = c.fanout_targets
end

type stats = {
  s_inputs : int;
  s_outputs : int;
  s_gates : int;
  s_depth : int;
  s_kind_counts : (Gate.kind * int) list;
}

let stats c =
  let n = num_nodes c in
  let depth = Array.make n 0 in
  let max_depth = ref 0 in
  for id = c.num_inputs to n - 1 do
    let d = ref 0 in
    iter_fanins c id (fun src -> d := Stdlib.max !d depth.(src));
    let d = !d + 1 in
    depth.(id) <- d;
    if d > !max_depth then max_depth := d
  done;
  let counts = Array.make 8 0 in
  for id = c.num_inputs to n - 1 do
    let code = kind_code c id in
    counts.(code) <- counts.(code) + 1
  done;
  let kind_counts =
    List.filter_map
      (fun k ->
        let v = counts.(Gate.code k) in
        if v > 0 then Some (k, v) else None)
      Gate.all_kinds
  in
  {
    s_inputs = num_inputs c;
    s_outputs = num_outputs c;
    s_gates = num_gates c;
    s_depth = !max_depth;
    s_kind_counts = kind_counts;
  }

let pp_stats fmt s =
  Format.fprintf fmt "inputs=%d outputs=%d gates=%d depth=%d [%a]" s.s_inputs
    s.s_outputs s.s_gates s.s_depth
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
       (fun fmt (k, n) -> Format.fprintf fmt "%a:%d" Gate.pp k n))
    s.s_kind_counts

let validate c =
  let n = num_nodes c in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_node id =
    let code = kind_code c id in
    if code = input_code then begin
      if id >= c.num_inputs then err "gate slot %d holds an Input node" id
      else if fanin_count c id <> 0 then err "input %d has fanins" id
      else Ok ()
    end
    else if code > 7 then err "node %d: bad kind code %d" id code
    else if id < c.num_inputs then err "input slot %d holds a gate" id
    else begin
      let kind = Gate.of_code code in
      let nf = fanin_count c id in
      if not (Gate.arity_ok kind nf) then
        err "node %d: %s with %d fanins" id (Gate.to_string kind) nf
      else begin
        let bad = ref false in
        iter_fanins c id (fun src -> if src < 0 || src >= id then bad := true);
        if !bad then err "node %d: fanin out of topological order" id
        else Ok ()
      end
    end
  in
  let rec check_all id =
    if id >= n then Ok ()
    else begin
      match check_node id with Ok () -> check_all (id + 1) | Error e -> Error e
    end
  in
  let check_offsets offsets label =
    if Array.length offsets <> n + 1 then err "%s offsets length drifted" label
    else if offsets.(0) <> 0 then err "%s offsets do not start at 0" label
    else begin
      let monotone = ref true in
      for id = 0 to n - 1 do
        if offsets.(id + 1) < offsets.(id) then monotone := false
      done;
      if not !monotone then err "%s offsets not monotone" label else Ok ()
    end
  in
  match check_offsets c.fanin_offsets "fanin" with
  | Error e -> Error e
  | Ok () -> begin
    match check_offsets c.fanout_offsets "fanout" with
    | Error e -> Error e
    | Ok () -> begin
      match check_all 0 with
      | Error e -> Error e
      | Ok () ->
        if Array.exists (fun o -> o < 0 || o >= n) c.outputs then
          err "output id out of range"
        else if Array.length c.outputs = 0 then err "circuit has no outputs"
        else Ok ()
    end
  end
