type node = Input | Gate of Gate.kind * int array

type t = {
  name : string;
  nodes : node array;
  node_names : string array;
  num_inputs : int;
  outputs : int array;
  output_set : bool array;
  fanouts : int array array;
  name_index : (string, int) Hashtbl.t;
}

let build_fanouts nodes =
  let n = Array.length nodes in
  let counts = Array.make n 0 in
  let record_fanin id = counts.(id) <- counts.(id) + 1 in
  Array.iter
    (function Input -> () | Gate (_, fanins) -> Array.iter record_fanin fanins)
    nodes;
  let fanouts = Array.map (fun c -> Array.make c (-1)) counts in
  let fill = Array.make n 0 in
  Array.iteri
    (fun id node ->
      match node with
      | Input -> ()
      | Gate (_, fanins) ->
        Array.iter
          (fun src ->
            fanouts.(src).(fill.(src)) <- id;
            fill.(src) <- fill.(src) + 1)
          fanins)
    nodes;
  fanouts

let unsafe_make ~name ~nodes ~node_names ~num_inputs ~outputs =
  let n = Array.length nodes in
  let output_set = Array.make n false in
  Array.iter (fun id -> output_set.(id) <- true) outputs;
  let name_index = Hashtbl.create (2 * n) in
  Array.iteri (fun id nm -> Hashtbl.replace name_index nm id) node_names;
  {
    name;
    nodes = Array.copy nodes;
    node_names = Array.copy node_names;
    num_inputs;
    outputs = Array.copy outputs;
    output_set;
    fanouts = build_fanouts nodes;
    name_index;
  }

let name c = c.name
let num_nodes c = Array.length c.nodes
let num_inputs c = c.num_inputs
let num_gates c = Array.length c.nodes - c.num_inputs
let num_outputs c = Array.length c.outputs
let node c id = c.nodes.(id)
let node_name c id = c.node_names.(id)
let node_id_of_name c nm = Hashtbl.find_opt c.name_index nm
let outputs c = Array.copy c.outputs
let inputs c = Array.init c.num_inputs Fun.id

let fanins c id =
  match c.nodes.(id) with Input -> [||] | Gate (_, fi) -> Array.copy fi

let fanouts c id = Array.copy c.fanouts.(id)
let fanout_count c id = Array.length c.fanouts.(id)

let fanin_count c id =
  match c.nodes.(id) with Input -> 0 | Gate (_, fi) -> Array.length fi

let is_gate c id = id >= c.num_inputs
let is_input c id = id < c.num_inputs
let is_output c id = c.output_set.(id)

let gate_kind c id =
  match c.nodes.(id) with
  | Input -> invalid_arg "Circuit.gate_kind: node is a primary input"
  | Gate (kind, _) -> kind

let node_of_gate c g = c.num_inputs + g
let gate_of_node c id = id - c.num_inputs

let gate_fanin_gates c g =
  match c.nodes.(node_of_gate c g) with
  | Input -> [||]
  | Gate (_, fi) ->
    Array.of_list
      (Array.fold_right
         (fun id acc -> if is_gate c id then gate_of_node c id :: acc else acc)
         fi [])

let gate_fanout_gates c g =
  let fo = c.fanouts.(node_of_gate c g) in
  Array.of_list
    (Array.fold_right
       (fun id acc -> if is_gate c id then gate_of_node c id :: acc else acc)
       fo [])

let iter_gates c f =
  for id = c.num_inputs to Array.length c.nodes - 1 do
    match c.nodes.(id) with
    | Input -> assert false
    | Gate (kind, fanins) -> f (gate_of_node c id) kind fanins
  done

let fold_gates c ~init ~f =
  let acc = ref init in
  iter_gates c (fun g kind _ -> acc := f !acc g kind);
  !acc

type stats = {
  s_inputs : int;
  s_outputs : int;
  s_gates : int;
  s_depth : int;
  s_kind_counts : (Gate.kind * int) list;
}

let stats c =
  let n = num_nodes c in
  let depth = Array.make n 0 in
  let max_depth = ref 0 in
  for id = c.num_inputs to n - 1 do
    match c.nodes.(id) with
    | Input -> ()
    | Gate (_, fanins) ->
      let d =
        Array.fold_left (fun acc src -> Stdlib.max acc depth.(src)) 0 fanins + 1
      in
      depth.(id) <- d;
      if d > !max_depth then max_depth := d
  done;
  let counts = Hashtbl.create 8 in
  iter_gates c (fun _ kind _ ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt counts kind) in
      Hashtbl.replace counts kind (cur + 1));
  let kind_counts =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt counts k with
        | Some v -> Some (k, v)
        | None -> None)
      Gate.all_kinds
  in
  {
    s_inputs = num_inputs c;
    s_outputs = num_outputs c;
    s_gates = num_gates c;
    s_depth = !max_depth;
    s_kind_counts = kind_counts;
  }

let pp_stats fmt s =
  Format.fprintf fmt "inputs=%d outputs=%d gates=%d depth=%d [%a]" s.s_inputs
    s.s_outputs s.s_gates s.s_depth
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
       (fun fmt (k, n) -> Format.fprintf fmt "%a:%d" Gate.pp k n))
    s.s_kind_counts

let validate c =
  let n = num_nodes c in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_node id =
    match c.nodes.(id) with
    | Input ->
      if id >= c.num_inputs then err "gate slot %d holds an Input node" id
      else Ok ()
    | Gate (kind, fanins) ->
      if id < c.num_inputs then err "input slot %d holds a gate" id
      else if not (Gate.arity_ok kind (Array.length fanins)) then
        err "node %d: %s with %d fanins" id (Gate.to_string kind)
          (Array.length fanins)
      else if Array.exists (fun src -> src < 0 || src >= id) fanins then
        err "node %d: fanin out of topological order" id
      else Ok ()
  in
  let rec check_all id =
    if id >= n then Ok ()
    else begin
      match check_node id with Ok () -> check_all (id + 1) | Error e -> Error e
    end
  in
  match check_all 0 with
  | Error e -> Error e
  | Ok () ->
    if Array.exists (fun o -> o < 0 || o >= n) c.outputs then
      err "output id out of range"
    else if Array.length c.outputs = 0 then err "circuit has no outputs"
    else Ok ()
