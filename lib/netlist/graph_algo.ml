let node_depths c =
  let n = Circuit.num_nodes c in
  let depth = Array.make n 0 in
  for id = Circuit.num_inputs c to n - 1 do
    let d = ref 0 in
    Circuit.iter_fanins c id (fun src ->
        let ds = Array.unsafe_get depth src in
        if ds > !d then d := ds);
    depth.(id) <- !d + 1
  done;
  depth

let gate_depths c =
  let nd = node_depths c in
  Array.init (Circuit.num_gates c) (fun g -> nd.(Circuit.node_of_gate c g))

let depth c = Array.fold_left Stdlib.max 0 (gate_depths c)

let gates_by_depth c =
  let gd = gate_depths c in
  let dmax = Array.fold_left Stdlib.max 0 gd in
  let buckets = Array.make dmax [] in
  (* iterate in reverse so each bucket list ends up in ascending order *)
  for g = Array.length gd - 1 downto 0 do
    let d = gd.(g) in
    buckets.(d - 1) <- g :: buckets.(d - 1)
  done;
  Array.map Array.of_list buckets

(* The undirected gate graph in the same CSR shape as the circuit:
   flat offsets + targets, one segment of sorted unique neighbours per
   gate.  A million-gate graph is two int arrays, not a million boxed
   neighbour arrays. *)
type undirected = { offsets : int array; targets : int array }

let undirected_of_circuit c =
  let ng = Circuit.num_gates c in
  let ni = Circuit.num_inputs c in
  (* upper-bound degrees (parallel edges still included) *)
  let counts = Array.make (ng + 1) 0 in
  for g = 0 to ng - 1 do
    let id = Circuit.node_of_gate c g in
    let d = ref 0 in
    Circuit.iter_fanins c id (fun src ->
        if src >= ni && src <> id then incr d);
    Circuit.iter_fanouts c id (fun dst ->
        if dst >= ni && dst <> id then incr d);
    counts.(g + 1) <- !d
  done;
  let raw_offsets = Array.make (ng + 1) 0 in
  for g = 0 to ng - 1 do
    raw_offsets.(g + 1) <- raw_offsets.(g) + counts.(g + 1)
  done;
  let raw = Array.make raw_offsets.(ng) 0 in
  let fill = Array.init ng (fun g -> raw_offsets.(g)) in
  for g = 0 to ng - 1 do
    let id = Circuit.node_of_gate c g in
    let add other_id =
      if other_id >= ni && other_id <> id then begin
        raw.(fill.(g)) <- other_id - ni;
        fill.(g) <- fill.(g) + 1
      end
    in
    Circuit.iter_fanins c id add;
    Circuit.iter_fanouts c id add
  done;
  (* per-segment insertion sort (degrees are small) + dedup compaction *)
  let offsets = Array.make (ng + 1) 0 in
  let pos = ref 0 in
  let targets = Array.make (Array.length raw) 0 in
  for g = 0 to ng - 1 do
    offsets.(g) <- !pos;
    let s = raw_offsets.(g) and e = raw_offsets.(g + 1) in
    for k = s + 1 to e - 1 do
      let v = raw.(k) in
      let j = ref (k - 1) in
      while !j >= s && raw.(!j) > v do
        raw.(!j + 1) <- raw.(!j);
        decr j
      done;
      raw.(!j + 1) <- v
    done;
    for k = s to e - 1 do
      if k = s || raw.(k) <> raw.(k - 1) then begin
        targets.(!pos) <- raw.(k);
        incr pos
      end
    done
  done;
  offsets.(ng) <- !pos;
  { offsets; targets = Array.sub targets 0 !pos }

let num_gates u = Array.length u.offsets - 1

let neighbours u g =
  let s = u.offsets.(g) in
  Array.sub u.targets s (u.offsets.(g + 1) - s)

let iter_neighbours u g f =
  for k = u.offsets.(g) to u.offsets.(g + 1) - 1 do
    f (Array.unsafe_get u.targets k)
  done

let exists_neighbour u g f =
  let e = u.offsets.(g + 1) in
  let rec scan k = k < e && (f (Array.unsafe_get u.targets k) || scan (k + 1)) in
  scan u.offsets.(g)

(* Reusable truncated-BFS workspace.  Visited marks are epoch stamps,
   so starting a new traversal is O(1) — no clearing pass; the queue
   array doubles as the visited list in discovery order.  One
   workspace per owner: traversals from two domains (or two partitions)
   must not share one. *)
type bfs = {
  stamp : int array; (* stamp.(g) = epoch when g was last discovered *)
  dist : int array; (* BFS distance, valid where stamp.(g) = epoch *)
  queue : int array; (* discovery order; doubles as the visited list *)
  mutable epoch : int;
  mutable n_visited : int;
}

let make_bfs u =
  let n = num_gates u in
  {
    stamp = Array.make n 0;
    dist = Array.make n 0;
    queue = Array.make (Stdlib.max n 1) 0;
    epoch = 0;
    n_visited = 0;
  }

(* BFS truncated at [cutoff] intermediate nodes.  The separation of a
   direct neighbour is 0, so BFS distance d corresponds to separation
   d - 1; source separation is 0 as well.  Only nodes whose separation
   would still be below the cutoff are expanded. *)
let bfs_from u b ~cutoff source =
  if Array.length b.stamp <> num_gates u then
    invalid_arg "Graph_algo.bfs_from: workspace sized for another graph";
  b.epoch <- b.epoch + 1;
  let epoch = b.epoch in
  b.stamp.(source) <- epoch;
  b.dist.(source) <- 0;
  b.queue.(0) <- source;
  b.n_visited <- 1;
  let head = ref 0 in
  while !head < b.n_visited do
    let v = Array.unsafe_get b.queue !head in
    incr head;
    let d = Array.unsafe_get b.dist v in
    (* a node at BFS distance d+1 has separation d; only expand while
       the next separation would still be below the cutoff *)
    if d < cutoff then
      for k = u.offsets.(v) to u.offsets.(v + 1) - 1 do
        let w = Array.unsafe_get u.targets k in
        if Array.unsafe_get b.stamp w <> epoch then begin
          Array.unsafe_set b.stamp w epoch;
          Array.unsafe_set b.dist w (d + 1);
          Array.unsafe_set b.queue b.n_visited w;
          b.n_visited <- b.n_visited + 1
        end
      done
  done

let bfs_visited_count b = b.n_visited
let bfs_visited b i = b.queue.(i)

let bfs_separation b ~cutoff g =
  if b.stamp.(g) = b.epoch then begin
    let d = b.dist.(g) in
    if d = 0 then 0 else Stdlib.min cutoff (d - 1)
  end
  else cutoff

let separations_from u ~cutoff source =
  let b = make_bfs u in
  bfs_from u b ~cutoff source;
  Array.init (num_gates u) (fun g -> bfs_separation b ~cutoff g)

let module_separation u ~cutoff gates =
  let k = Array.length gates in
  if k < 2 then 0
  else begin
    let b = make_bfs u in
    let total = ref 0 in
    (* one truncated BFS per gate; count each unordered pair once *)
    Array.iteri
      (fun i g ->
        bfs_from u b ~cutoff g;
        Array.iteri
          (fun j h ->
            if j > i then total := !total + bfs_separation b ~cutoff h)
          gates)
      gates;
    !total
  end

let reachable_from c seeds =
  let n = Circuit.num_nodes c in
  let seen = Array.make n false in
  let q = Queue.create () in
  Array.iter
    (fun id ->
      if not seen.(id) then begin
        seen.(id) <- true;
        Queue.add id q
      end)
    seeds;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Circuit.iter_fanouts c v (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w q
        end)
  done;
  seen

let connected_components u =
  let n = num_gates u in
  let label = Array.make n (-1) in
  let next = ref 0 in
  let q = Queue.create () in
  for g = 0 to n - 1 do
    if label.(g) < 0 then begin
      let l = !next in
      incr next;
      label.(g) <- l;
      Queue.add g q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        iter_neighbours u v (fun w ->
            if label.(w) < 0 then begin
              label.(w) <- l;
              Queue.add w q
            end)
      done
    end
  done;
  label

let transitive_fanin_count c id =
  let seen = Hashtbl.create 64 in
  let rec visit v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      Circuit.iter_fanins c v visit
    end
  in
  Circuit.iter_fanins c id visit;
  Hashtbl.length seen
