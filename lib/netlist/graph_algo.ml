let node_depths c =
  let n = Circuit.num_nodes c in
  let depth = Array.make n 0 in
  for id = Circuit.num_inputs c to n - 1 do
    match Circuit.node c id with
    | Circuit.Input -> ()
    | Circuit.Gate (_, fanins) ->
      depth.(id) <-
        Array.fold_left (fun acc src -> Stdlib.max acc depth.(src)) 0 fanins + 1
  done;
  depth

let gate_depths c =
  let nd = node_depths c in
  Array.init (Circuit.num_gates c) (fun g -> nd.(Circuit.node_of_gate c g))

let depth c = Array.fold_left Stdlib.max 0 (gate_depths c)

let gates_by_depth c =
  let gd = gate_depths c in
  let dmax = Array.fold_left Stdlib.max 0 gd in
  let buckets = Array.make dmax [] in
  (* iterate in reverse so each bucket list ends up in ascending order *)
  for g = Array.length gd - 1 downto 0 do
    let d = gd.(g) in
    buckets.(d - 1) <- g :: buckets.(d - 1)
  done;
  Array.map Array.of_list buckets

type undirected = int array array

let undirected_of_circuit c =
  let ng = Circuit.num_gates c in
  let adj = Array.make ng [] in
  Circuit.iter_gates c (fun g _ _ ->
      let add other = if other <> g then adj.(g) <- other :: adj.(g) in
      Array.iter add (Circuit.gate_fanin_gates c g);
      Array.iter add (Circuit.gate_fanout_gates c g));
  (* dedupe parallel edges *)
  Array.map
    (fun l ->
      let sorted = List.sort_uniq Stdlib.compare l in
      Array.of_list sorted)
    adj

let neighbours u g = Array.copy u.(g)
let iter_neighbours u g f = Array.iter f u.(g)
let exists_neighbour u g f = Array.exists f u.(g)

(* BFS truncated at [cutoff] intermediate nodes.  The separation of a
   direct neighbour is 0, so BFS distance d corresponds to separation
   d - 1; source separation is 0 as well. *)
let separations_from u ~cutoff source =
  let n = Array.length u in
  let sep = Array.make n cutoff in
  let dist = Array.make n (-1) in
  dist.(source) <- 0;
  sep.(source) <- 0;
  let q = Queue.create () in
  Queue.add source q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let d = dist.(v) in
    (* a node at BFS distance d+1 has separation d; only expand while
       the next separation would still be below the cutoff *)
    if d < cutoff then
      Array.iter
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- d + 1;
            sep.(w) <- Stdlib.min cutoff d;
            Queue.add w q
          end)
        u.(v)
  done;
  sep

let separation u ~cutoff g1 g2 =
  if g1 = g2 then 0
  else begin
    let sep = separations_from u ~cutoff g1 in
    sep.(g2)
  end

let module_separation u ~cutoff gates =
  let k = Array.length gates in
  if k < 2 then 0
  else begin
    let total = ref 0 in
    (* one truncated BFS per gate; count each unordered pair once *)
    Array.iteri
      (fun i g ->
        let sep = separations_from u ~cutoff g in
        Array.iteri (fun j h -> if j > i then total := !total + sep.(h)) gates)
      gates;
    !total
  end

let reachable_from c seeds =
  let n = Circuit.num_nodes c in
  let seen = Array.make n false in
  let q = Queue.create () in
  Array.iter
    (fun id ->
      if not seen.(id) then begin
        seen.(id) <- true;
        Queue.add id q
      end)
    seeds;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w q
        end)
      (Circuit.fanouts c v)
  done;
  seen

let connected_components u =
  let n = Array.length u in
  let label = Array.make n (-1) in
  let next = ref 0 in
  for g = 0 to n - 1 do
    if label.(g) < 0 then begin
      let l = !next in
      incr next;
      let q = Queue.create () in
      label.(g) <- l;
      Queue.add g q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        Array.iter
          (fun w ->
            if label.(w) < 0 then begin
              label.(w) <- l;
              Queue.add w q
            end)
          u.(v)
      done
    end
  done;
  label

let transitive_fanin_count c id =
  let seen = Hashtbl.create 64 in
  let rec visit v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      match Circuit.node c v with
      | Circuit.Input -> ()
      | Circuit.Gate (_, fanins) -> Array.iter visit fanins
    end
  in
  (match Circuit.node c id with
  | Circuit.Input -> ()
  | Circuit.Gate (_, fanins) -> Array.iter visit fanins);
  Hashtbl.length seen
