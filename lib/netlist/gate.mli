(** Combinational gate kinds.

    The set matches what the ISCAS85 benchmark format uses.  Every
    kind except [Not] and [Buff] accepts two or more inputs. *)

type kind =
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Not
  | Buff

val all_kinds : kind list

val to_string : kind -> string
(** Upper-case ISCAS85 mnemonic, e.g. ["NAND"]. *)

val of_string : string -> kind option
(** Case-insensitive parse of the ISCAS85 mnemonic.  [BUF] is accepted
    as a synonym for [BUFF]. *)

val code : kind -> int
(** Dense integer code in [0..7], stable across runs.  The CSR circuit
    form stores one code per gate in a byte array; the packed
    simulation kernels dispatch on it without touching the boxed
    constructor. *)

val of_code : int -> kind
(** Inverse of {!code}.  Raises [Invalid_argument] outside [0..7]. *)

val arity_ok : kind -> int -> bool
(** [arity_ok k n] checks that a gate of kind [k] may have [n] inputs. *)

val eval : kind -> bool array -> bool
(** Boolean function of the gate.  Raises [Invalid_argument] when the
    arity is invalid for the kind. *)

val pp : Format.formatter -> kind -> unit

val equal : kind -> kind -> bool
val compare : kind -> kind -> int
