let palette =
  [| "#a6cee3"; "#b2df8a"; "#fb9a99"; "#fdbf6f"; "#cab2d6"; "#ffff99";
     "#1f78b4"; "#33a02c"; "#e31a1c"; "#ff7f00" |]

let escape name =
  let buf = Buffer.create (String.length name + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      if ch = '"' || ch = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf ch)
    name;
  Buffer.add_char buf '"';
  Buffer.contents buf

let of_circuit ?module_of_gate ?title c =
  let buf = Buffer.create 4096 in
  let title = Option.value ~default:(Circuit.name c) title in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" (escape title));
  Buffer.add_string buf "  rankdir=LR;\n  node [fontname=\"monospace\"];\n";
  let node_decl id =
    let name = Circuit.node_name c id in
    if Circuit.is_input c id then
      Printf.sprintf "  %s [shape=box];\n" (escape name)
    else begin
      let kind = Gate.to_string (Circuit.gate_kind c id) in
      let shape = if Circuit.is_output c id then "doublecircle" else "ellipse" in
      let fill =
        match module_of_gate with
        | None -> ""
        | Some f ->
          let m = f (Circuit.gate_of_node c id) in
          Printf.sprintf ", style=filled, fillcolor=\"%s\""
            palette.(m mod Array.length palette)
      in
      Printf.sprintf "  %s [shape=%s, label=\"%s\\n%s\"%s];\n" (escape name)
        shape
        (String.map (fun ch -> if ch = '"' then '\'' else ch) name)
        kind fill
    end
  in
  (match module_of_gate with
  | None ->
    for id = 0 to Circuit.num_nodes c - 1 do
      Buffer.add_string buf (node_decl id)
    done
  | Some f ->
    (* inputs outside the clusters *)
    Array.iter (fun id -> Buffer.add_string buf (node_decl id)) (Circuit.inputs c);
    (* gates grouped per module *)
    let by_module = Hashtbl.create 8 in
    Circuit.iter_gates c (fun g _ _ ->
        let m = f g in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_module m) in
        Hashtbl.replace by_module m (Circuit.node_of_gate c g :: cur));
    let modules =
      Hashtbl.fold (fun m ids acc -> (m, List.rev ids) :: acc) by_module []
      |> List.sort compare
    in
    List.iter
      (fun (m, ids) ->
        Buffer.add_string buf
          (Printf.sprintf "  subgraph cluster_%d {\n    label=\"module %d (BIC sensor %d)\";\n"
             m m m);
        List.iter (fun id -> Buffer.add_string buf ("  " ^ node_decl id)) ids;
        Buffer.add_string buf "  }\n")
      modules);
  for id = 0 to Circuit.num_nodes c - 1 do
    Array.iter
      (fun dst ->
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s;\n"
             (escape (Circuit.node_name c id))
             (escape (Circuit.node_name c dst))))
      (Circuit.fanouts c id)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?module_of_gate ?title path c =
  Iddq_util.Io.write_file_atomic path (of_circuit ?module_of_gate ?title c)
