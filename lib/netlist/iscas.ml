module Rng = Iddq_util.Rng
module Gate = Gate

let c17_bench =
  "# c17 (ISCAS85)\n\
   INPUT(1)\n\
   INPUT(2)\n\
   INPUT(3)\n\
   INPUT(6)\n\
   INPUT(7)\n\
   OUTPUT(22)\n\
   OUTPUT(23)\n\
   10 = NAND(1, 3)\n\
   11 = NAND(3, 6)\n\
   16 = NAND(2, 11)\n\
   19 = NAND(11, 7)\n\
   22 = NAND(10, 16)\n\
   23 = NAND(16, 19)\n"

let c17 () =
  match Bench_io.parse_string ~name:"c17" c17_bench with
  | Ok c -> c
  | Error e -> failwith ("Iscas.c17: " ^ Iddq_util.Io_error.to_string e)

(* Paper gate g1..g6 <-> original nets; chosen so that the paper's
   optimum {(1,3,5), (2,4,6)} corresponds to the two output cones
   {10,16,22} and {11,19,23}. *)
let c17_paper_gate_names = [| "10"; "11"; "16"; "19"; "22"; "23" |]

let synthetic ?kind_mix ~name ~seed ~num_inputs ~num_outputs ~num_gates ~depth () =
  let rng = Rng.create seed in
  Generator.layered_dag ~rng ~name ~num_inputs ~num_outputs ~num_gates ~depth
    ?kind_mix ()

(* C499/C1355 implement the same 32-bit single-error-correcting
   function; C499 is XOR-rich, C1355 its NAND expansion. *)
let xor_heavy_mix =
  [
    (Gate.Xor, 0.40); (Gate.And, 0.15); (Gate.Or, 0.12); (Gate.Nand, 0.12);
    (Gate.Nor, 0.08); (Gate.Not, 0.10); (Gate.Buff, 0.03);
  ]

let nand_heavy_mix =
  [ (Gate.Nand, 0.70); (Gate.Not, 0.15); (Gate.And, 0.10); (Gate.Buff, 0.05) ]

(* Published ISCAS85 characteristics: (inputs, outputs, gates, depth). *)
let c432_like () =
  synthetic ~name:"C432" ~seed:432 ~num_inputs:36 ~num_outputs:7 ~num_gates:160
    ~depth:17 ()

let c499_like () =
  synthetic ~kind_mix:xor_heavy_mix ~name:"C499" ~seed:499 ~num_inputs:41
    ~num_outputs:32 ~num_gates:202 ~depth:11 ()

let c880_like () =
  synthetic ~name:"C880" ~seed:880 ~num_inputs:60 ~num_outputs:26 ~num_gates:383
    ~depth:24 ()

let c1355_like () =
  synthetic ~kind_mix:nand_heavy_mix ~name:"C1355" ~seed:1355 ~num_inputs:41
    ~num_outputs:32 ~num_gates:546 ~depth:24 ()

let c1908_like () =
  synthetic ~name:"C1908" ~seed:1908 ~num_inputs:33 ~num_outputs:25
    ~num_gates:880 ~depth:40 ()

let c2670_like () =
  synthetic ~name:"C2670" ~seed:2670 ~num_inputs:233 ~num_outputs:140
    ~num_gates:1193 ~depth:32 ()

let c3540_like () =
  synthetic ~name:"C3540" ~seed:3540 ~num_inputs:50 ~num_outputs:22
    ~num_gates:1669 ~depth:47 ()

let c5315_like () =
  synthetic ~name:"C5315" ~seed:5315 ~num_inputs:178 ~num_outputs:123
    ~num_gates:2307 ~depth:49 ()

let c6288_like () =
  synthetic ~name:"C6288" ~seed:6288 ~num_inputs:32 ~num_outputs:32
    ~num_gates:2416 ~depth:124 ()

let c7552_like () =
  synthetic ~name:"C7552" ~seed:7552 ~num_inputs:207 ~num_outputs:108
    ~num_gates:3512 ~depth:43 ()

let table1_suite () =
  [
    ("C1908", c1908_like ());
    ("C2670", c2670_like ());
    ("C3540", c3540_like ());
    ("C5315", c5315_like ());
    ("C6288", c6288_like ());
    ("C7552", c7552_like ());
  ]

(* The single place the built-in circuit list lives; the CLI and the
   campaign spec parser both resolve names through [by_name]. *)
let builtins =
  [
    ("C17", c17);
    ("C432", c432_like);
    ("C499", c499_like);
    ("C880", c880_like);
    ("C1355", c1355_like);
    ("C1908", c1908_like);
    ("C2670", c2670_like);
    ("C3540", c3540_like);
    ("C5315", c5315_like);
    ("C6288", c6288_like);
    ("C7552", c7552_like);
  ]

let names = List.map fst builtins

let by_name name =
  Option.map
    (fun f -> f ())
    (List.assoc_opt (String.uppercase_ascii name) builtins)
