module Technology = Iddq_celllib.Technology
module Charac = Iddq_analysis.Charac
module Switching = Iddq_analysis.Switching

type t = {
  rs : float;
  cs : float;
  area : float;
  tau : float;
  peak_current : float;
}

let max_rs = 1.0e5

let size ~technology ~peak_current ~module_rail_capacitance =
  let budget = technology.Technology.rail_budget in
  let rs =
    if peak_current <= 0.0 then max_rs
    else Stdlib.min max_rs (budget /. peak_current)
  in
  let cs =
    module_rail_capacitance +. technology.Technology.sensor_rail_capacitance
  in
  let area =
    technology.Technology.sensor_area_fixed
    +. (technology.Technology.sensor_area_conductance /. rs)
  in
  { rs; cs; area; tau = rs *. cs; peak_current }

let for_module ch gates =
  size
    ~technology:(Charac.technology ch)
    ~peak_current:(Switching.max_transient_current ch gates)
    ~module_rail_capacitance:(Switching.rail_capacitance ch gates)

let rail_perturbation t ~current = t.rs *. current

let pp fmt t =
  Format.fprintf fmt "{rs=%.1fohm cs=%.3eF area=%.3e tau=%.3es imax=%.3eA}"
    t.rs t.cs t.area t.tau t.peak_current
