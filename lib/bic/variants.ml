module Technology = Iddq_celllib.Technology

type kind = Bypass_mos | Pn_junction | Proportional

let all = [ Bypass_mos; Pn_junction; Proportional ]

let to_string = function
  | Bypass_mos -> "bypass-mos"
  | Pn_junction -> "pn-junction"
  | Proportional -> "proportional"

let junction_drop = 0.5

let technology_for tech = function
  | Bypass_mos -> tech
  | Pn_junction ->
    {
      tech with
      Technology.rail_budget = junction_drop;
      (* no bypass switch to size: only the detection circuitry and a
         minimum-size junction remain (modelled by a tiny residual
         conductance coefficient so R_s bookkeeping stays finite) *)
      sensor_area_conductance = tech.Technology.sensor_area_conductance /. 100.0;
      settling_decades = tech.Technology.settling_decades *. 0.7;
    }
  | Proportional ->
    {
      tech with
      Technology.sensor_area_fixed = tech.Technology.sensor_area_fixed *. 2.0;
      sensor_area_conductance = tech.Technology.sensor_area_conductance *. 0.6;
      settling_decades = tech.Technology.settling_decades *. 0.5;
    }
